#include "core/datapath_frontend.hh"

#include <utility>

#include "fault/fault.hh"
#include "sim/log.hh"

namespace dssd
{

FrontEndDatapath::FrontEndDatapath(const DatapathEnv &env) : Datapath(env)
{
    for (unsigned ch = 0; ch < env.config.geom.channels; ++ch) {
        _ecc.push_back(std::make_unique<EccEngine>(
            env.engine, strformat("front-ecc-ch%u", ch),
            env.config.ecc));
    }
}

EccEngine &
FrontEndDatapath::eccFor(unsigned ch)
{
    if (ch >= _ecc.size())
        panic("channel %u out of range", ch);
    return *_ecc[ch];
}

void
FrontEndDatapath::registerChannelStats(StatRegistry &reg,
                                       const std::string &channel_prefix,
                                       unsigned ch) const
{
    _ecc[ch]->registerStats(reg, channel_prefix + ".front_ecc");
}

void
FrontEndDatapath::copyPage(const PhysAddr &src, const PhysAddr &dst,
                           int tag, std::shared_ptr<LatencyBreakdown> bd,
                           Callback done)
{
    std::uint64_t page = _env.config.geom.pageBytes;
    unsigned sch = src.channel;
    _env.channels[sch]->read(src, 1, tag, [this, sch, src, page, dst,
                                           tag, bd, done] {
        runReadRecovery(
            _env.engine, *_ecc[sch], _fault, src, page, tag, bd.get(),
            [this, sch, src, tag, bd](Callback rr) {
                _env.channels[sch]->read(src, 1, tag, std::move(rr),
                                         bd.get());
            },
            [this, src, page, dst, tag, bd, done](ReadSeverity sev) {
            if (sev == ReadSeverity::Uncorrectable) {
                // Salvage what the firmware can and escalate; the copy
                // itself still lands so GC forward progress holds.
                _fault->reportBlockFault(src,
                                         FaultKind::UncorrectableRead);
            }
            Tick t1 = _env.engine.now();
            _env.systemBus.channel().transfer(page, tag,
                                              [this, page, dst, tag, bd,
                                               t1, done] {
                bdSpanClose(_env.engine, bd.get(), bdSystemBus, t1);
                Tick t2 = _env.engine.now();
                _env.dram.port().transfer(page, tag,
                                          [this, page, dst, tag, bd, t2,
                                           done] {
                    bdSpanClose(_env.engine, bd.get(), bdDram, t2);
                    Tick fw0 = _env.engine.now();
                    bdSpanCloseAt(_env.engine, bd.get(), bdOther, fw0,
                                  fw0 + _env.config.gcFirmwareLatency);
                    _env.engine.schedule(_env.config.gcFirmwareLatency,
                                         [this, page, dst, tag, bd,
                                          done] {
                        Tick t3 = _env.engine.now();
                        _env.dram.port().transfer(page, tag,
                                                  [this, page, dst, tag,
                                                   bd, t3, done] {
                            bdSpanClose(_env.engine, bd.get(), bdDram,
                                        t3);
                            Tick t4 = _env.engine.now();
                            _env.systemBus.channel().transfer(
                                page, tag,
                                [this, dst, tag, bd, t4, done] {
                                bdSpanClose(_env.engine, bd.get(),
                                            bdSystemBus, t4);
                                _env.channels[dst.channel]->program(
                                    dst, 1, tag, done, bd.get());
                            });
                        });
                    });
                });
            });
        });
    }, bd.get());
}

} // namespace dssd
