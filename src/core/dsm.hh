/**
 * @file
 * Dynamic superblock management in the timing simulator (Sec 5).
 *
 * The fast-path EnduranceSim (src/reliability) answers lifetime
 * questions over millions of P/E cycles; this engine runs the same
 * schemes through the *full timed datapath* so the repair mechanics
 * and their cost are visible:
 *
 *  - wear-out failures are detected by the controller's ECC during a
 *    program/erase cycle;
 *  - under RECYCLED/RESERV, the decoupled controller takes a spare
 *    from its RBT, inserts the SRT remapping, and relocates the
 *    failing sub-block's valid pages with *global copyback* — all
 *    without the FTL's involvement (the SuperblockMapping is never
 *    told);
 *  - when no repair is possible, the superblock dies the conventional
 *    way: the FTL relocates every valid page to a fresh superblock
 *    and retires the old one (this is the expensive path the hardware
 *    scheme avoids).
 */

#ifndef DSSD_CORE_DSM_HH
#define DSSD_CORE_DSM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ssd.hh"
#include "ftl/superblock.hh"
#include "reliability/wear.hh"

namespace dssd
{

/** Superblock-management scheme run by the engine. */
enum class DsmScheme
{
    Static,   ///< conventional: first bad sub-block kills the group
    Recycled, ///< hardware RBT/SRT recycling (Sec 5.1)
    Reserv,   ///< recycled + reserved provisioning (Sec 5.3)
};

const char *dsmSchemeName(DsmScheme s);

/** Engine parameters. */
struct DsmParams
{
    DsmScheme scheme = DsmScheme::Static;
    WearModel wear;
    /// Reserv: fraction of superblocks provisioned as recycled blocks.
    double reservedFraction = 0.07;
    std::uint64_t seed = 7;
};

/** Measured outcomes. */
struct DsmStats
{
    std::uint64_t cycles = 0;          ///< superblock P/E cycles run
    std::uint64_t bytesWritten = 0;
    std::uint32_t deadSuperblocks = 0;
    std::uint64_t remapEvents = 0;     ///< SRT insertions/updates
    std::uint64_t faultEvents = 0;     ///< escalated media faults
    std::uint64_t repairPagesCopied = 0; ///< via global copyback
    std::uint64_t deathPagesCopied = 0;  ///< via conventional FTL path
    Tick firstDeathTime = 0;
    /// (bytesWritten, deadSuperblocks) recorded at each death.
    std::vector<std::pair<double, std::uint32_t>> curve;
};

/**
 * Drives program/erase cycles over the superblock pool on a dSSD and
 * performs scheme-appropriate failure handling through the decoupled
 * controllers.
 *
 * When the SSD carries a FaultModel the engine installs itself as the
 * fault sink: escalated media faults (uncorrectable reads,
 * program/erase failures) are queued against the owning superblock and
 * merged into the next wear check, so random faults flow through
 * exactly the same repair/kill paths as wear-out.
 */
class DynamicSuperblockEngine : public FaultSink
{
  public:
    using Callback = Engine::Callback;

    /**
     * @param ssd A decoupled-architecture SSD (needs the controllers'
     *        SRT/RBT and global copyback).
     * @param map Superblock mapping created with zero over-provision
     *        (the engine assigns identity LPN ranges per superblock).
     */
    DynamicSuperblockEngine(Ssd &ssd, SuperblockMapping &map,
                            const DsmParams &params);

    ~DynamicSuperblockEngine() override;

    DynamicSuperblockEngine(const DynamicSuperblockEngine &) = delete;
    DynamicSuperblockEngine &
    operator=(const DynamicSuperblockEngine &) = delete;

    /**
     * Run wear cycles round-robin over the live superblocks until
     * @p max_cycles cycles have executed or fewer than two live
     * superblocks remain; @p done fires at completion.
     */
    void run(std::uint64_t max_cycles, Callback done);

    const DsmStats &stats() const { return _stats; }
    const DsmParams &params() const { return _params; }

    /** Physical block currently backing sub-block of @p sb on
     *  @p unit (identity unless remapped). */
    ChannelBlockId physicalBlock(std::uint32_t sb,
                                 std::uint32_t unit) const;

    /** FaultSink: queue an escalated media fault against its owning
     *  superblock (merged into the next wear check). */
    void onBlockFault(const PhysAddr &addr, FaultKind kind) override;

  private:
    struct Wear
    {
        std::uint32_t pe = 0;
        std::uint32_t limit = 0;
    };

    void cycleNext();
    void programPhase(std::uint32_t sb);
    void checkFailures(std::uint32_t sb);
    void processRepairs(std::uint32_t sb,
                        std::shared_ptr<std::vector<std::uint32_t>>
                            failing,
                        std::size_t idx);
    /** Repair sub-block @p unit of @p sb; false if impossible. */
    bool tryRepair(std::uint32_t sb, std::uint32_t unit,
                   Callback repaired);
    void killSuperblock(std::uint32_t sb);
    void erasePhase(std::uint32_t sb);

    PhysAddr resolved(const PhysAddr &addr) const;
    Wear &wearOf(std::uint32_t channel, ChannelBlockId block);

    Ssd &_ssd;
    SuperblockMapping &_map;
    DsmParams _params;
    Rng _rng;
    /// Auditor the DSM checks were registered with (DSSD_AUDIT builds).
    Auditor *_auditor = nullptr;
    std::vector<std::size_t> _auditIds;
    /// _wear[channel][block-id-in-channel]
    std::vector<std::vector<Wear>> _wear;
    /// _pendingFaultUnits[sb]: units with an escalated fault awaiting
    /// the superblock's next failure check.
    std::vector<std::vector<std::uint32_t>> _pendingFaultUnits;
    DsmStats _stats;
    std::uint64_t _remaining = 0;
    std::uint32_t _cursor = 0;
    Callback _done;
};

} // namespace dssd

#endif // DSSD_CORE_DSM_HH
