#include "core/dsm.hh"

#include <memory>
#include <utility>

#include "sim/audit.hh"
#include "sim/log.hh"

namespace dssd
{

const char *
dsmSchemeName(DsmScheme s)
{
    switch (s) {
      case DsmScheme::Static:
        return "STATIC";
      case DsmScheme::Recycled:
        return "RECYCLED";
      case DsmScheme::Reserv:
        return "RESERV";
    }
    return "?";
}

DynamicSuperblockEngine::DynamicSuperblockEngine(Ssd &ssd,
                                                 SuperblockMapping &map,
                                                 const DsmParams &params)
    : _ssd(ssd), _map(map), _params(params), _rng(params.seed)
{
    const FlashGeometry &g = _map.geometry();
    if (_params.scheme != DsmScheme::Static &&
        !isDecoupled(_ssd.config().arch)) {
        fatal("RECYCLED/RESERV need a decoupled architecture");
    }

    // Per-channel, per-physical-block wear limits.
    std::uint32_t blocks_per_channel = g.ways * g.diesPerWay *
                                       g.planesPerDie * g.blocksPerPlane;
    _wear.resize(g.channels);
    for (auto &v : _wear) {
        v.resize(blocks_per_channel);
        for (auto &w : v)
            w.limit = _params.wear.sampleLimit(_rng);
    }

    // RESERV: provision the tail superblocks as recycled blocks.
    if (_params.scheme == DsmScheme::Reserv) {
        std::uint32_t reserved = static_cast<std::uint32_t>(
            _params.reservedFraction *
            static_cast<double>(_map.superblockCount()));
        for (std::uint32_t i = 0; i < reserved; ++i) {
            std::uint32_t sb = _map.superblockCount() - 1 - i;
            _map.reserveSuperblock(sb);
            for (std::uint32_t u = 0; u < _map.unitCount(); ++u) {
                PhysAddr a = _map.slotAddr(sb, u);
                DecoupledController *dc =
                    _ssd.decoupledController(a.channel);
                dc->rbt().add(channelBlockId(g, a));
            }
        }
    }

    // Under fault injection, divert escalated media faults into this
    // engine's failure state machine for as long as it lives.
    _pendingFaultUnits.resize(_map.superblockCount());
    if (_ssd.faultModel())
        _ssd.setFaultSink(this);

    // DSSD_AUDIT builds: fold this engine's state into the SSD's
    // periodic invariant audit for as long as the engine lives.
    if ((_auditor = _ssd.auditor())) {
        _auditIds.push_back(_auditor->addCheck(
            "dsm.superblocks",
            [this](AuditReport &r) { _map.audit(r); }));
        _auditIds.push_back(_auditor->addCheck(
            "dsm.stats", [this](AuditReport &r) {
                if (_stats.curve.size() != _stats.deadSuperblocks) {
                    r.fail("death curve has %zu points for %u dead "
                           "superblocks",
                           _stats.curve.size(), _stats.deadSuperblocks);
                }
                if (_map.deadSuperblocks() != _stats.deadSuperblocks) {
                    r.fail("mapping reports %u dead superblocks, stats "
                           "counted %u",
                           _map.deadSuperblocks(),
                           _stats.deadSuperblocks);
                }
            }));
    }
}

DynamicSuperblockEngine::~DynamicSuperblockEngine()
{
    if (_ssd.faultModel())
        _ssd.setFaultSink(nullptr);
    if (_auditor) {
        for (std::size_t id : _auditIds)
            _auditor->removeCheck(id);
    }
}

void
DynamicSuperblockEngine::onBlockFault(const PhysAddr &addr,
                                      FaultKind kind)
{
    (void)kind;
    ++_stats.faultEvents;

    // Map the faulted physical block back to its owning (sb, unit)
    // slot: the fault address is post-SRT, so compare against each
    // slot's *current* backing block.
    const FlashGeometry &g = _map.geometry();
    ChannelBlockId phys = channelBlockId(g, addr);
    for (std::uint32_t sb = 0; sb < _map.superblockCount(); ++sb) {
        if (_map.info(sb).state == SuperblockState::Dead)
            continue;
        for (std::uint32_t u = 0; u < _map.unitCount(); ++u) {
            PhysAddr slot = _map.slotAddr(sb, u);
            if (slot.channel != addr.channel)
                continue;
            if (physicalBlock(sb, u) != phys)
                continue;
            auto &pending = _pendingFaultUnits[sb];
            for (std::uint32_t q : pending) {
                if (q == u)
                    return; // already queued
            }
            pending.push_back(u);
            return;
        }
    }
    // Not part of any live superblock (e.g. an RBT spare): counted,
    // nothing to queue.
}

DynamicSuperblockEngine::Wear &
DynamicSuperblockEngine::wearOf(std::uint32_t channel,
                                ChannelBlockId block)
{
    return _wear[channel][block];
}

ChannelBlockId
DynamicSuperblockEngine::physicalBlock(std::uint32_t sb,
                                       std::uint32_t unit) const
{
    PhysAddr a = _map.slotAddr(sb, unit);
    ChannelBlockId orig = channelBlockId(_map.geometry(), a);
    DecoupledController *dc =
        const_cast<Ssd &>(_ssd).decoupledController(a.channel);
    if (!dc)
        return orig;
    auto hit = dc->srt().lookup(orig);
    return hit ? *hit : orig;
}

PhysAddr
DynamicSuperblockEngine::resolved(const PhysAddr &addr) const
{
    DecoupledController *dc =
        const_cast<Ssd &>(_ssd).decoupledController(addr.channel);
    if (!dc)
        return addr;
    return dc->remap(addr);
}

void
DynamicSuperblockEngine::run(std::uint64_t max_cycles, Callback done)
{
    _remaining = max_cycles;
    _done = std::move(done);
    cycleNext();
}

void
DynamicSuperblockEngine::cycleNext()
{
    std::uint32_t live = _map.superblockCount() - _map.deadSuperblocks() -
                         _map.reservedSuperblocks();
    if (_remaining == 0 || live < 2 || _map.freeSuperblocks() < 2) {
        if (_done) {
            Callback cb = std::move(_done);
            _done = nullptr;
            cb();
        }
        return;
    }

    // Next free superblock, round-robin.
    std::uint32_t n = _map.superblockCount();
    std::uint32_t sb = n;
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t cand = (_cursor + i) % n;
        if (_map.info(cand).state == SuperblockState::Free) {
            sb = cand;
            _cursor = (cand + 1) % n;
            break;
        }
    }
    if (sb == n)
        panic("no free superblock despite the free-list check");

    --_remaining;
    ++_stats.cycles;
    _map.fillAll(sb, static_cast<Lpn>(sb) * _map.pagesPerSuperblock());
    programPhase(sb);
}

void
DynamicSuperblockEngine::programPhase(std::uint32_t sb)
{
    std::uint32_t pages = _map.pagesPerSuperblock();
    _stats.bytesWritten +=
        static_cast<std::uint64_t>(pages) * _map.geometry().pageBytes;

    auto remaining = std::make_shared<std::uint32_t>(pages);
    for (std::uint32_t slot = 0; slot < pages; ++slot) {
        PhysAddr target = resolved(_map.slotAddr(sb, slot));
        _ssd.channel(target.channel)
            .program(target, 1, tagIo, [this, sb, remaining] {
                if (--*remaining == 0)
                    checkFailures(sb);
            });
    }
}

void
DynamicSuperblockEngine::checkFailures(std::uint32_t sb)
{
    // Sub-blocks at their endurance limit fail this cycle's
    // read-verify (detected by the controller-integrated ECC).
    auto failing = std::make_shared<std::vector<std::uint32_t>>();
    const FlashGeometry &g = _map.geometry();
    for (std::uint32_t u = 0; u < _map.unitCount(); ++u) {
        PhysAddr a = _map.slotAddr(sb, u);
        Wear &w = wearOf(a.channel, physicalBlock(sb, u));
        if (w.pe + 1 >= w.limit)
            failing->push_back(u);
    }
    (void)g;

    // Merge escalated media faults queued against this superblock:
    // those units fail this cycle regardless of wear.
    for (std::uint32_t u : _pendingFaultUnits[sb]) {
        bool present = false;
        for (std::uint32_t f : *failing) {
            if (f == u) {
                present = true;
                break;
            }
        }
        if (!present)
            failing->push_back(u);
    }
    _pendingFaultUnits[sb].clear();

    if (failing->empty()) {
        erasePhase(sb);
        return;
    }
    if (_params.scheme == DsmScheme::Static) {
        killSuperblock(sb);
        return;
    }
    processRepairs(sb, failing, 0);
}

void
DynamicSuperblockEngine::processRepairs(
    std::uint32_t sb,
    std::shared_ptr<std::vector<std::uint32_t>> failing, std::size_t idx)
{
    // Repair failing sub-blocks one after another; any unrepairable
    // failure kills the whole superblock.
    if (idx >= failing->size()) {
        erasePhase(sb);
        return;
    }
    std::uint32_t unit = (*failing)[idx];
    if (!tryRepair(sb, unit, [this, sb, failing, idx] {
            processRepairs(sb, failing, idx + 1);
        })) {
        killSuperblock(sb);
    }
}

bool
DynamicSuperblockEngine::tryRepair(std::uint32_t sb, std::uint32_t unit,
                                   Callback repaired)
{
    const FlashGeometry &g = _map.geometry();
    PhysAddr orig_addr = _map.slotAddr(sb, unit);
    std::uint32_t channel = orig_addr.channel;
    DecoupledController *dc = _ssd.decoupledController(channel);
    if (!dc)
        return false;

    // Take a usable spare from this channel's recycling bin.
    ChannelBlockId spare = 0;
    bool found = false;
    while (!dc->rbt().empty()) {
        spare = dc->rbt().take();
        Wear &w = wearOf(channel, spare);
        if (w.pe + 1 < w.limit) {
            found = true;
            break;
        }
    }
    if (!found)
        return false;

    ChannelBlockId orig = channelBlockId(g, orig_addr);
    bool was_remapped = dc->srt().lookup(orig).has_value();
    if (!was_remapped && dc->srt().full()) {
        dc->rbt().add(spare); // give the spare back
        return false;
    }

    // Relocate the failing sub-block's pages into the spare with
    // same-channel global copybacks; the SRT entry activates once the
    // data has moved.
    ChannelBlockId old_phys = physicalBlock(sb, unit);
    PhysAddr src_base = channelBlockAddr(g, channel, old_phys);
    PhysAddr dst_base = channelBlockAddr(g, channel, spare);
    std::uint32_t pages = g.pagesPerBlock;
    _stats.repairPagesCopied += pages;

    auto remaining = std::make_shared<std::uint32_t>(pages);
    for (std::uint32_t p = 0; p < pages; ++p) {
        PhysAddr src = src_base;
        src.page = p;
        PhysAddr dst = dst_base;
        dst.page = p;
        dc->globalCopyback(src, dst, nullptr, tagGc,
                           [this, dc, orig, spare, was_remapped,
                            remaining, repaired] {
            if (--*remaining != 0)
                return;
            if (was_remapped)
                dc->srt().erase(orig);
            if (!dc->srt().insert(orig, spare))
                panic("SRT insert failed after capacity check");
            ++_stats.remapEvents;
            repaired();
        });
    }
    return true;
}

void
DynamicSuperblockEngine::killSuperblock(std::uint32_t sb)
{
    const FlashGeometry &g = _map.geometry();

    // Salvage still-good sub-blocks into the RBTs and free any SRT
    // entries this superblock held.
    if (_params.scheme != DsmScheme::Static) {
        for (std::uint32_t u = 0; u < _map.unitCount(); ++u) {
            PhysAddr a = _map.slotAddr(sb, u);
            DecoupledController *dc = _ssd.decoupledController(a.channel);
            ChannelBlockId phys = physicalBlock(sb, u);
            ChannelBlockId orig = channelBlockId(g, a);
            if (dc->srt().lookup(orig))
                dc->srt().erase(orig);
            Wear &w = wearOf(a.channel, phys);
            if (w.pe + 1 < w.limit)
                dc->rbt().add(phys);
        }
    }

    // Conventional bad-superblock handling: the FTL relocates every
    // valid page to a fresh superblock, then retires this one.
    std::uint32_t dst = _map.superblockCount();
    for (std::uint32_t s = 0; s < _map.superblockCount(); ++s) {
        if (_map.info(s).state == SuperblockState::Free) {
            dst = s;
            break;
        }
    }

    auto finish = [this, sb] {
        _map.retireSuperblock(sb);
        ++_stats.deadSuperblocks;
        if (_stats.deadSuperblocks == 1)
            _stats.firstDeathTime = _ssd.engine().now();
        _stats.curve.push_back({static_cast<double>(_stats.bytesWritten),
                                _stats.deadSuperblocks});
        cycleNext();
    };

    // The mapping update itself is instant; the dying superblock's
    // pages are dropped logically (the cycling workload overwrites
    // each range every cycle anyway) and the *cost* of the relocation
    // is paid through the timed GC datapath below.
    _map.invalidateAll(sb);

    if (dst == _map.superblockCount()) {
        // Nowhere to move the data: end-of-life device.
        finish();
        return;
    }

    std::uint32_t pages = _map.pagesPerSuperblock();
    _stats.deathPagesCopied += pages;
    auto remaining = std::make_shared<std::uint32_t>(pages);
    for (std::uint32_t slot = 0; slot < pages; ++slot) {
        PhysAddr src = resolved(_map.slotAddr(sb, slot));
        PhysAddr dstAddr = resolved(_map.slotAddr(dst, slot));
        _ssd.gcCopyPage(src, dstAddr, [remaining, finish] {
            if (--*remaining == 0)
                finish();
        });
    }
}

void
DynamicSuperblockEngine::erasePhase(std::uint32_t sb)
{
    std::uint32_t units = _map.unitCount();
    auto remaining = std::make_shared<std::uint32_t>(units);
    for (std::uint32_t u = 0; u < units; ++u) {
        PhysAddr block_addr = _map.slotAddr(sb, u);
        block_addr.page = 0;
        PhysAddr target = resolved(block_addr);
        std::uint32_t channel = target.channel;
        ChannelBlockId phys =
            channelBlockId(_map.geometry(), target);
        _ssd.channel(channel).erase(target, tagGc,
                                    [this, sb, channel, phys,
                                     remaining] {
            ++wearOf(channel, phys).pe;
            if (--*remaining == 0) {
                _map.invalidateAll(sb);
                _map.eraseSuperblock(sb);
                cycleNext();
            }
        });
    }
}

} // namespace dssd
