/**
 * @file
 * Decoupled datapath (dSSD, dSSD_b, dSSD_f — Fig 4).
 *
 * Owns one DecoupledController per channel (integrated ECC, dBUFs,
 * SRT/RBT) and the flash-to-flash interconnect the architecture
 * prescribes: the shared system bus (dSSD), a dedicated controller bus
 * (dSSD_b), or the fNoC (dSSD_f). GC copies are global copybacks that
 * never touch the front-end; I/O addresses are filtered through the
 * SRT; and block faults can be repaired in place from the RBT spare
 * pool without the FTL ever learning anything happened.
 */

#ifndef DSSD_CORE_DATAPATH_DECOUPLED_HH
#define DSSD_CORE_DATAPATH_DECOUPLED_HH

#include <memory>
#include <vector>

#include "controller/decoupled.hh"
#include "core/datapath.hh"

namespace dssd
{

/** dSSD family: decoupled controllers + flash interconnect. */
class DecoupledDatapath : public Datapath
{
  public:
    explicit DecoupledDatapath(const DatapathEnv &env);

    /** SRT filter (when config.applySrtRemap). */
    PhysAddr resolve(const PhysAddr &addr) const override;

    /** Global copyback through the decoupled controllers. */
    void copyPage(const PhysAddr &src, const PhysAddr &dst, int tag,
                  std::shared_ptr<LatencyBreakdown> bd,
                  Callback done) override;

    EccEngine &eccFor(unsigned ch) override;

    DecoupledController *controller(unsigned ch) override;

    Interconnect *interconnect() override { return _interconnect.get(); }

    void attachFaults(FaultModel *fault,
                      RecoveryEngine *recovery) override;

    bool tryHardwareRepair(const PhysAddr &addr,
                           RecoveryEngine &recovery) override;

    PhysAddr unresolve(const PhysAddr &addr) const override;

    void seedRbtSpares(PageMapping &mapping) override;

    void registerChannelStats(StatRegistry &reg,
                              const std::string &channel_prefix,
                              unsigned ch) const override;

    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const override;

    void registerAudits(Auditor &auditor,
                        const std::string &prefix) override;

  private:
    std::vector<std::unique_ptr<DecoupledController>> _controllers;
    std::unique_ptr<Interconnect> _interconnect;
};

} // namespace dssd

#endif // DSSD_CORE_DATAPATH_DECOUPLED_HH
