/**
 * @file
 * SSD configuration: Table 1 parameters and the Table 2 architecture
 * configurations (Baseline, BW, dSSD, dSSD_b, dSSD_f).
 */

#ifndef DSSD_CORE_CONFIG_HH
#define DSSD_CORE_CONFIG_HH

#include <string>

#include "controller/channel.hh"
#include "controller/decoupled.hh"
#include "fault/fault.hh"
#include "ftl/mapping.hh"
#include "ftl/policy.hh"
#include "ftl/writebuffer.hh"
#include "nand/geometry.hh"
#include "nand/timing.hh"
#include "noc/network.hh"

namespace dssd
{

/** The five architecture configurations of Table 2. */
enum class ArchKind
{
    Baseline, ///< conventional SSD with parallel GC (PaGC)
    BW,       ///< Baseline + extra system-bus bandwidth
    DSSD,     ///< decoupled controllers; copyback over the system bus
    DSSDBus,  ///< decoupled controllers + dedicated flash-ctrl bus
    DSSDNoc,  ///< decoupled controllers + fNoC
};

const char *archName(ArchKind k);

/** Whether an architecture has decoupled controllers. */
inline bool
isDecoupled(ArchKind k)
{
    return k == ArchKind::DSSD || k == ArchKind::DSSDBus ||
           k == ArchKind::DSSDNoc;
}

/** Full SSD configuration. */
struct SsdConfig
{
    ArchKind arch = ArchKind::Baseline;

    FlashGeometry geom;
    NandTiming timing = ullTiming();

    /// Base system-bus bandwidth (Table 1: 8 GB/s, equal to the
    /// aggregate flash-channel bandwidth).
    BytesPerTick systemBusBandwidth = gbPerSec(8.0);
    /// Total on-chip bandwidth factor relative to Baseline (Table 2:
    /// non-baseline configs have 1.25x). BW/dSSD put the extra into
    /// the system bus; dSSD_b/dSSD_f put it into the flash-controller
    /// interconnect.
    double onChipBandwidthFactor = 1.25;
    BytesPerTick dramBandwidth = gbPerSec(8.0);

    ChannelParams channel;
    EccParams ecc;
    DecoupledParams decoupled;
    NocParams noc;
    /// When true, use noc.linkBandwidth verbatim; otherwise derive it
    /// so fNoC bisection bandwidth equals the extra on-chip bandwidth.
    bool nocExplicitBandwidth = false;
    std::string nocTopology = "mesh";

    WriteBufferParams writeBuffer;
    GcParams gc;
    /// Fault injection (disabled by default: no FaultModel is built
    /// and the datapath is bit-identical to a fault-free simulator).
    FaultParams fault;

    double overProvision = 0.07;
    std::uint32_t gcFreeBlockThreshold = 2;
    std::uint32_t gcFreeBlockTarget = 4;

    /// FTL firmware processing per host request.
    Tick firmwareLatency = usToTicks(1);
    /// FTL overhead per GC page copy (baseline write issue, Fig 1 (3)).
    Tick gcFirmwareLatency = 500;
    /// Pages flushed from the write buffer per flush round.
    unsigned flushBatchPages = 32;
    /// Concurrent flush programs in flight.
    unsigned flushInFlight = 16;
    /// Apply SRT remapping to I/O addresses (decoupled archs only).
    bool applySrtRemap = true;

    /// Statistics window (Fig 2 plots per-millisecond bandwidth).
    Tick statWindow = tickMs;

    std::uint64_t seed = 1;

    /** Effective system-bus bandwidth for this architecture. */
    BytesPerTick effectiveSystemBusBandwidth() const;

    /** Extra on-chip bandwidth assigned to the flash interconnect. */
    BytesPerTick interconnectBandwidth() const;
};

/**
 * Table 1 geometry: 8 channels x 8 ways x 1 die x 8 planes,
 * 1384 blocks x 384 pages x 4 KB (ULL).
 */
FlashGeometry paperUllGeometry();

/**
 * Superblock-study geometry: 8 channels x 4 ways x 2 dies x 2 planes,
 * 32 pages/block, 16 KB pages (TLC; pages/block simplified exactly as
 * in the paper).
 */
FlashGeometry paperTlcGeometry();

/**
 * A proportionally reduced geometry for fast simulation: identical
 * channel/way/plane ratios, fewer blocks and pages per block.
 */
FlashGeometry reducedUllGeometry();

/** Named configuration factory for the Table 2 comparison points. */
SsdConfig makeConfig(ArchKind arch, bool reduced_geometry = true);

} // namespace dssd

#endif // DSSD_CORE_CONFIG_HH
