#include "core/config.hh"

#include "noc/topology.hh"
#include "sim/log.hh"

namespace dssd
{

const char *
archName(ArchKind k)
{
    switch (k) {
      case ArchKind::Baseline:
        return "Baseline";
      case ArchKind::BW:
        return "BW";
      case ArchKind::DSSD:
        return "dSSD";
      case ArchKind::DSSDBus:
        return "dSSD_b";
      case ArchKind::DSSDNoc:
        return "dSSD_f";
    }
    return "?";
}

BytesPerTick
SsdConfig::effectiveSystemBusBandwidth() const
{
    switch (arch) {
      case ArchKind::Baseline:
        return systemBusBandwidth;
      case ArchKind::BW:
      case ArchKind::DSSD:
        // The extra on-chip bandwidth widens the system bus.
        return systemBusBandwidth * onChipBandwidthFactor;
      case ArchKind::DSSDBus:
      case ArchKind::DSSDNoc:
        // The extra bandwidth lives in the dedicated interconnect.
        return systemBusBandwidth;
    }
    return systemBusBandwidth;
}

BytesPerTick
SsdConfig::interconnectBandwidth() const
{
    return systemBusBandwidth * (onChipBandwidthFactor - 1.0);
}

FlashGeometry
paperUllGeometry()
{
    FlashGeometry g;
    g.channels = 8;
    g.ways = 8;
    g.diesPerWay = 1;
    g.planesPerDie = 8;
    g.blocksPerPlane = 1384;
    g.pagesPerBlock = 384;
    g.pageBytes = 4 * kKiB;
    return g;
}

FlashGeometry
paperTlcGeometry()
{
    FlashGeometry g;
    g.channels = 8;
    g.ways = 4;
    g.diesPerWay = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 64;
    g.pagesPerBlock = 32;
    g.pageBytes = 16 * kKiB;
    return g;
}

FlashGeometry
reducedUllGeometry()
{
    FlashGeometry g = paperUllGeometry();
    // Keep every parallelism ratio; shrink capacity so full-device
    // experiments finish quickly (the paper applied the same trick to
    // its superblock study).
    g.blocksPerPlane = 24;
    g.pagesPerBlock = 32;
    return g;
}

SsdConfig
makeConfig(ArchKind arch, bool reduced_geometry)
{
    SsdConfig c;
    c.arch = arch;
    c.geom = reduced_geometry ? reducedUllGeometry() : paperUllGeometry();
    c.timing = ullTiming();
    c.onChipBandwidthFactor = arch == ArchKind::Baseline ? 1.0 : 1.25;
    if (arch == ArchKind::DSSDNoc)
        c.nocTopology = "mesh";
    return c;
}

} // namespace dssd
