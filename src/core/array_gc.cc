#include "core/array_gc.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

const char *
arrayGcPolicyName(ArrayGcPolicy policy)
{
    switch (policy) {
      case ArrayGcPolicy::Uncoordinated:
        return "uncoordinated";
      case ArrayGcPolicy::Staggered:
        return "staggered";
      case ArrayGcPolicy::TokenBucket:
        return "token";
      case ArrayGcPolicy::GlobalGreedy:
        return "greedy";
    }
    return "?";
}

std::optional<ArrayGcPolicy>
parseArrayGcPolicy(const std::string &name)
{
    if (name == "uncoordinated")
        return ArrayGcPolicy::Uncoordinated;
    if (name == "staggered")
        return ArrayGcPolicy::Staggered;
    if (name == "token")
        return ArrayGcPolicy::TokenBucket;
    if (name == "greedy")
        return ArrayGcPolicy::GlobalGreedy;
    return std::nullopt;
}

ArrayGcScheduler::ArrayGcScheduler(Engine &host,
                                   const ArrayGcParams &params,
                                   unsigned shards, GrantFn deliver)
    : _host(host), _params(params), _deliver(std::move(deliver)),
      _state(shards, ShardState::Idle), _requestAt(shards, 0),
      _grantAt(shards, 0), _reserved(shards, 0),
      _tokens(std::min<std::int64_t>(
          _params.tokenCap,
          static_cast<std::int64_t>(_params.tokensPerEpoch)))
{
    if (shards == 0)
        fatal("ArrayGcScheduler needs at least one shard");
    if (_params.maxConcurrent == 0)
        fatal("ArrayGcScheduler maxConcurrent must be >= 1");
    if (_params.policy == ArrayGcPolicy::TokenBucket &&
        (_params.tokensPerEpoch == 0 || _params.tokenEpoch == 0)) {
        fatal("TokenBucket needs a positive refill rate and epoch");
    }
}

void
ArrayGcScheduler::requestGrant(unsigned shard, std::uint32_t pressure)
{
    if (shard >= _state.size())
        panic("requestGrant for shard %u of %zu", shard, _state.size());
    if (_state[shard] != ShardState::Idle)
        panic("shard %u requested a grant it already holds or awaits",
              shard);
    ++_requests;
    _state[shard] = ShardState::Waiting;
    _requestAt[shard] = _host.now();
    _queue.push_back({shard, pressure, _seq++});
    std::size_t before = _queue.size();
    pump();
    // Still queued after the pump: the policy made it wait.
    if (_queue.size() == before)
        ++_waits;
}

void
ArrayGcScheduler::releaseGrant(unsigned shard, std::uint64_t copies,
                               std::uint64_t erases)
{
    if (shard >= _state.size() || _state[shard] != ShardState::Granted)
        panic("releaseGrant from shard %u without a grant", shard);
    _state[shard] = ShardState::Idle;
    --_active;
    ++_releases;
    _grantTicks.sample(
        static_cast<double>(_host.now() - _grantAt[shard]));
    if (_params.policy == ArrayGcPolicy::TokenBucket) {
        // Reconcile the up-front reservation against the window's
        // actual cost; cheap windows refund, expensive ones leave the
        // bucket in debt.
        std::int64_t cost = static_cast<std::int64_t>(copies + erases);
        _tokens = std::min<std::int64_t>(
            _params.tokenCap, _tokens - (cost - _reserved[shard]));
        _reserved[shard] = 0;
        _tokensSpent += copies + erases;
    }
#if DSSD_TRACING
    Tracer *tr = _host.tracer();
    if (tr) {
        int pid = tr->process("array");
        tr->asyncEnd(pid, "array-gc", "grant-window", shard,
                     _host.now());
    }
#endif
    pump();
}

void
ArrayGcScheduler::grantAt(std::size_t queue_index)
{
    Waiter w = _queue[queue_index];
    _queue.erase(_queue.begin() +
                 static_cast<std::ptrdiff_t>(queue_index));
    _state[w.shard] = ShardState::Granted;
    ++_active;
    ++_grants;
    if (_params.policy == ArrayGcPolicy::TokenBucket) {
        _reserved[w.shard] =
            static_cast<std::int64_t>(_params.tokensPerEpoch);
        _tokens -= _reserved[w.shard];
    }
    _grantAt[w.shard] = _host.now();
    _grantLog.push_back(w.shard);
    _waitTicks.sample(
        static_cast<double>(_host.now() - _requestAt[w.shard]));
#if DSSD_TRACING
    Tracer *tr = _host.tracer();
    if (tr) {
        int pid = tr->process("array");
        tr->asyncBegin(pid, "array-gc", "grant-window", w.shard,
                       _host.now());
    }
#endif
    _deliver(w.shard);
}

void
ArrayGcScheduler::pump()
{
    switch (_params.policy) {
      case ArrayGcPolicy::Uncoordinated:
        while (!_queue.empty())
            grantAt(0);
        return;
      case ArrayGcPolicy::Staggered:
        while (_active < _params.maxConcurrent && !_queue.empty())
            grantAt(0);
        return;
      case ArrayGcPolicy::GlobalGreedy:
        while (_active < _params.maxConcurrent && !_queue.empty()) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < _queue.size(); ++i) {
                if (_queue[i].pressure > _queue[best].pressure ||
                    (_queue[i].pressure == _queue[best].pressure &&
                     _queue[i].shard < _queue[best].shard)) {
                    best = i;
                }
            }
            grantAt(best);
        }
        return;
      case ArrayGcPolicy::TokenBucket:
        refillTokens();
        // Each grant reserves an epoch's refill, so one pump admits
        // only as many shards as the bucket can cover.
        while (!_queue.empty() && _tokens > 0)
            grantAt(0);
        if (!_queue.empty())
            scheduleTokenWake();
        return;
    }
}

void
ArrayGcScheduler::refillTokens()
{
    std::uint64_t epochs = _host.now() / _params.tokenEpoch;
    if (epochs <= _epochsCredited)
        return;
    std::uint64_t delta = epochs - _epochsCredited;
    _epochsCredited = epochs;
    _tokens = std::min<std::int64_t>(
        _params.tokenCap,
        _tokens +
            static_cast<std::int64_t>(delta * _params.tokensPerEpoch));
}

void
ArrayGcScheduler::scheduleTokenWake()
{
    if (_wakeArmed)
        return;
    _wakeArmed = true;
    Tick now = _host.now();
    Tick next = (now / _params.tokenEpoch + 1) * _params.tokenEpoch;
    if (next <= now)
        panic("token epoch boundary did not advance past now");
    _host.schedule(next - now, [this] {
        _wakeArmed = false;
        pump();
    });
}

void
ArrayGcScheduler::registerStats(StatRegistry &reg,
                                const std::string &prefix) const
{
    reg.addScalar(prefix + ".requests", [this] {
        return static_cast<double>(_requests);
    });
    reg.addScalar(prefix + ".grants", [this] {
        return static_cast<double>(_grants);
    });
    reg.addScalar(prefix + ".waits", [this] {
        return static_cast<double>(_waits);
    });
    reg.addScalar(prefix + ".releases", [this] {
        return static_cast<double>(_releases);
    });
    reg.addScalar(prefix + ".active", [this] {
        return static_cast<double>(_active);
    });
    reg.addScalar(prefix + ".tokens_spent", [this] {
        return static_cast<double>(_tokensSpent);
    });
    reg.addScalar(prefix + ".tokens", [this] {
        return static_cast<double>(_tokens);
    });
    reg.addSample(prefix + ".wait_ticks", &_waitTicks);
    reg.addSample(prefix + ".grant_window", &_grantTicks);
}

} // namespace dssd
