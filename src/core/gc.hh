/**
 * @file
 * The garbage-collection engine.
 *
 * Scheduling follows the configured GcParams policy (PaGC parallel
 * baseline, PreemptiveGC, TinyTail); the copy datapath is delegated to
 * Ssd::gcCopyPage, which routes through the front-end (Baseline/BW)
 * or through global copyback (dSSD family).
 *
 * Two trigger modes:
 *  - threshold-driven: noteAllocation() checks the per-unit free-block
 *    threshold and starts collection until the target is restored;
 *  - forced: forceAll(victims) collects a fixed number of victim
 *    blocks per unit, used by benches that measure GC performance as
 *    time-to-reclaim under concurrent I/O.
 */

#ifndef DSSD_CORE_GC_HH
#define DSSD_CORE_GC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ftl/policy.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"

namespace dssd
{

class Ssd;
class StatRegistry;

/** Per-architecture garbage-collection engine. */
class GcEngine
{
  public:
    using Callback = Engine::Callback;

    GcEngine(Ssd &ssd, const GcParams &params);

    /**
     * Notify that a page allocation happened in @p unit; starts GC on
     * that unit if the free-block threshold tripped.
     */
    void noteAllocation(std::uint32_t unit);

    /**
     * Force GC of @p victims_per_unit victim blocks on every unit;
     * @p done fires when every unit finishes.
     */
    void forceAll(unsigned victims_per_unit, Callback done);

    bool anyActive() const { return _activeUnits > 0; }
    unsigned activeUnits() const { return _activeUnits; }

    std::uint64_t pagesMoved() const { return _pagesMoved; }
    std::uint64_t blocksErased() const { return _blocksErased; }

    /** First tick GC became active (maxTick if never). */
    Tick firstGcStart() const { return _firstStart; }
    /** Last tick all GC drained (0 if never). */
    Tick lastGcEnd() const { return _lastEnd; }

    /** Per-copied-page end-to-end latency. */
    const SampleStat &copyLatency() const { return _copyLatency; }

    const GcParams &params() const { return _params; }

    /** Register GC counters and copy-latency stats under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct UnitState
    {
        bool active = false;
        bool erasing = false; ///< victim erase in flight
        bool forced = false;
        unsigned forcedRemaining = 0;
        std::uint32_t victim = 0;
        std::vector<std::uint64_t> lpns; ///< valid pages of the victim
        std::size_t nextLpn = 0;
        unsigned inFlight = 0;
        unsigned sliceCopies = 0;
    };

    void startUnit(std::uint32_t unit);
    void collectNext(std::uint32_t unit);
    void pumpCopies(std::uint32_t unit);
    void issueCopy(std::uint32_t unit, std::uint64_t lpn,
                   std::uint32_t dst_unit);
    void victimDrained(std::uint32_t unit);
    void finishUnit(std::uint32_t unit);

    /**
     * Pick a destination unit (global free-block selection, falling
     * back to the source unit's reserved block under space pressure).
     * Empty when no unit currently has space: the caller retries.
     */
    std::optional<std::uint32_t>
    chooseDestination(std::uint32_t src_unit);

    /** Policy gate: may @p unit issue a copy right now? If not, a
     *  recheck is scheduled and false is returned. */
    bool policyAllowsCopy(std::uint32_t unit);

    Ssd &_ssd;
    GcParams _params;
    std::vector<UnitState> _units;
    unsigned _activeUnits = 0;
    std::uint32_t _dstCursor = 0;
    std::uint64_t _pagesMoved = 0;
    std::uint64_t _blocksErased = 0;
    Tick _firstStart;
    Tick _lastEnd = 0;
    SampleStat _copyLatency{"gc-copy-latency"};
    Callback _forceDone;
    unsigned _forcedPending = 0;
};

} // namespace dssd

#endif // DSSD_CORE_GC_HH
