/**
 * @file
 * The garbage-collection engine.
 *
 * Scheduling follows the configured GcParams policy (PaGC parallel
 * baseline, PreemptiveGC, TinyTail); the copy datapath is delegated to
 * Ssd::gcCopyPage, which routes through the front-end (Baseline/BW)
 * or through global copyback (dSSD family).
 *
 * Two trigger modes:
 *  - threshold-driven: noteAllocation() checks the per-unit free-block
 *    threshold and starts collection until the target is restored;
 *  - forced: forceAll(victims) collects a fixed number of victim
 *    blocks per unit, used by benches that measure GC performance as
 *    time-to-reclaim under concurrent I/O.
 */

#ifndef DSSD_CORE_GC_HH
#define DSSD_CORE_GC_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ftl/policy.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"

namespace dssd
{

class Ssd;
class StatRegistry;

/**
 * Array-level coordination hooks (installed through
 * GcEngine::setCoordination by an SsdArray whose ArrayGcScheduler
 * governs this shard; see core/array_gc.hh).
 *
 * Protocol: when coordinated, the engine never starts collection on
 * its own. It fires @ref request (at most one outstanding at a time),
 * waits for grantCollection(), runs every pending round under that
 * grant, and fires @ref release when the last active unit drains.
 * Both hooks run on the shard's engine; in group mode the installer
 * is expected to bounce them to the host via EngineGroup::postToHost.
 */
struct GcCoordinationHooks
{
    /** A collection grant is wanted; @p pressure is the worst
     *  per-unit free-block pressure at request time. */
    std::function<void(std::uint32_t pressure)> request;
    /** The grant window closed; @p copies / @p erases count the GC
     *  work done inside it (token budget accounting). */
    std::function<void(std::uint64_t copies, std::uint64_t erases)>
        release;
};

/** Per-architecture garbage-collection engine. */
class GcEngine
{
  public:
    using Callback = Engine::Callback;

    GcEngine(Ssd &ssd, const GcParams &params);

    /**
     * Notify that a page allocation happened in @p unit; starts GC on
     * that unit if the free-block threshold tripped (or queues a grant
     * request when coordinated).
     */
    void noteAllocation(std::uint32_t unit);

    /**
     * Force GC of @p victims_per_unit victim blocks on every unit;
     * @p done fires when every unit finishes. When coordinated the
     * round is deferred until the scheduler grants collection.
     */
    void forceAll(unsigned victims_per_unit, Callback done);

    /** Install array-level coordination hooks (see above). Must be
     *  called before any collection activity. */
    void setCoordination(GcCoordinationHooks hooks);

    /** Whether coordination hooks are installed. */
    bool coordinated() const { return static_cast<bool>(_hooks.request); }

    /**
     * Deliver the grant answering the last request hook: every round
     * queued behind the request (forced and threshold) starts now.
     * Panics without an outstanding request.
     */
    void grantCollection();

    /** Whether a grant is currently held / requested. */
    bool grantHeld() const { return _grant == GrantState::Held; }
    bool grantRequested() const
    {
        return _grant == GrantState::Requested;
    }

    /** Worst per-unit free-block pressure right now (see
     *  PageMapping::freeBlockPressure). */
    std::uint32_t freeBlockPressure() const;

    bool anyActive() const { return _activeUnits > 0; }
    unsigned activeUnits() const { return _activeUnits; }

    /** Whether a GC round is active on @p unit (paused or not); the
     *  conflict-aware allocation policy probes this through
     *  PageMapping::setGcBusyProbe. */
    bool unitActive(std::uint32_t unit) const
    {
        return _units[unit].active;
    }

    /** Units currently paused by preemptible GC. */
    unsigned pausedUnits() const { return _pausedUnits; }

    std::uint64_t preemptYields() const { return _preemptYields; }
    std::uint64_t preemptResumes() const { return _preemptResumes; }

    std::uint64_t pagesMoved() const { return _pagesMoved; }
    std::uint64_t blocksErased() const { return _blocksErased; }

    /** First tick GC became active (maxTick if never). */
    Tick firstGcStart() const { return _firstStart; }
    /** Last tick all GC drained (0 if never). */
    Tick lastGcEnd() const { return _lastEnd; }

    /** Start tick of the latest round (first unit going active while
     *  none were; maxTick if GC never ran). */
    Tick lastRoundStart() const { return _roundStart; }
    /** Rounds started so far (0 -> >0 active-unit transitions). */
    std::uint64_t roundsStarted() const { return _rounds; }
    /** Per-round wall duration samples, one per drained round. */
    const SampleStat &roundDuration() const { return _roundDuration; }

    /** Per-copied-page end-to-end latency. */
    const SampleStat &copyLatency() const { return _copyLatency; }

    const GcParams &params() const { return _params; }

    /** Register GC counters and copy-latency stats under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct UnitState
    {
        bool active = false;
        bool erasing = false; ///< victim erase in flight
        bool forced = false;
        /// The current victim was picked while forced: only then does
        /// its erase consume the forced budget. A threshold victim
        /// already in flight when forceAll lands keeps this false so
        /// the forced round is not short-changed.
        bool victimForced = false;
        /// Threshold GC wanted but deferred behind a grant request.
        bool wantsGc = false;
        unsigned forcedRemaining = 0;
        std::uint32_t victim = 0;
        std::vector<std::uint64_t> lpns; ///< valid pages of the victim
        std::size_t nextLpn = 0;
        unsigned inFlight = 0;
        unsigned sliceCopies = 0;
        /// Preemptible GC: the round is paused mid-victim; no new
        /// copies issue until the resume timer fires.
        bool paused = false;
        /// Paused under coordination after the grant was yielded;
        /// waiting for the next grant to resume.
        bool wantsResume = false;
        /// Copies issued since the last preemption check.
        unsigned quantumCopies = 0;
    };

    enum class GrantState
    {
        None,      ///< no request outstanding
        Requested, ///< request hook fired, grant not yet delivered
        Held,      ///< collecting under a grant
    };

    void startUnit(std::uint32_t unit);
    void beginForcedRound(unsigned victims_per_unit, Callback done);
    void requestIfNeeded();
    void maybeReleaseGrant();
    void collectNext(std::uint32_t unit);
    void pumpCopies(std::uint32_t unit);
    /** Preemptible GC: pause @p unit's round and schedule a resume
     *  check after preemptResumeNs. */
    void pauseUnit(std::uint32_t unit);
    /** Resume-timer body: resume now or, if the grant was yielded,
     *  re-request it and resume on the next grantCollection(). */
    void resumeCheck(std::uint32_t unit);
    void resumeUnit(std::uint32_t unit);
    /** Yield the grant while every active unit is paused (partial
     *  round: copies/erases done so far are reported). */
    void maybeYieldGrantPaused();
    void issueCopy(std::uint32_t unit, std::uint64_t lpn,
                   std::uint32_t dst_unit);
    void victimDrained(std::uint32_t unit);
    void finishUnit(std::uint32_t unit);

    /**
     * Pick a destination unit (global free-block selection, falling
     * back to the source unit's reserved block under space pressure).
     * Empty when no unit currently has space: the caller retries.
     */
    std::optional<std::uint32_t>
    chooseDestination(std::uint32_t src_unit);

    /** Policy gate: may @p unit issue a copy right now? If not, a
     *  recheck is scheduled and false is returned. */
    bool policyAllowsCopy(std::uint32_t unit);

    Ssd &_ssd;
    GcParams _params;
    std::vector<UnitState> _units;
    unsigned _activeUnits = 0;
    unsigned _pausedUnits = 0;
    std::uint64_t _preemptYields = 0;
    std::uint64_t _preemptResumes = 0;
    std::uint32_t _dstCursor = 0;
    std::uint64_t _pagesMoved = 0;
    std::uint64_t _blocksErased = 0;
    Tick _firstStart;
    Tick _lastEnd = 0;
    Tick _roundStart;
    std::uint64_t _rounds = 0;
    SampleStat _copyLatency{"gc-copy-latency"};
    SampleStat _roundDuration{"gc-round-duration"};
    Callback _forceDone;
    unsigned _forcedPending = 0;

    GcCoordinationHooks _hooks;
    GrantState _grant = GrantState::None;
    /// Forced round parked behind a grant request.
    bool _pendingForce = false;
    unsigned _pendingForceVictims = 0;
    Callback _pendingForceDone;
    /// GC work counters snapshotted when the grant was delivered.
    std::uint64_t _grantCopies0 = 0;
    std::uint64_t _grantErases0 = 0;
    /// Non-zero while a batch of startUnit calls is in progress, so a
    /// synchronously-finishing unit cannot release the grant early.
    unsigned _startingBatch = 0;
};

} // namespace dssd

#endif // DSSD_CORE_GC_HH
