/**
 * @file
 * The SSD top-level shell: owns the architecture-independent substrate
 * (system bus, DRAM, flash channels, FTL mapping, write buffer, GC)
 * and wires the layered subsystems over it:
 *
 *  - Datapath (core/datapath.hh): the architecture strategy — host
 *    read-miss route, SRT address filter, GC copy route, and the
 *    family-specific hardware (front-end ECC vs decoupled controllers
 *    plus interconnect);
 *  - FlushEngine (ftl/flush.hh): background write-buffer drain and the
 *    write-cache backpressure host writes stall on;
 *  - RecoveryEngine (fault/recovery.hh): repair-or-retire handling of
 *    terminal block faults and the copyback fallback.
 *
 * The shell itself keeps only the routes that are identical across
 * architectures (buffer-hit reads, buffered/direct writes) and the
 * host-facing bookkeeping.
 */

#ifndef DSSD_CORE_SSD_HH
#define DSSD_CORE_SSD_HH

#include <memory>
#include <vector>

#include "bus/system_bus.hh"
#include "controller/decoupled.hh"
#include "core/config.hh"
#include "core/datapath.hh"
#include "fault/recovery.hh"
#include "ftl/flush.hh"
#include "ftl/mapping.hh"
#include "ftl/writebuffer.hh"
#include "noc/network.hh"
#include "sim/audit.hh"
#include "sim/engine.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"
#include "workload/request.hh"

namespace dssd
{

class GcEngine;
class StatRegistry;

/** Aggregated mean latency breakdowns (Fig 9). */
struct BreakdownStats
{
    LatencyBreakdown sum;
    std::uint64_t count = 0;

    void
    add(const LatencyBreakdown &bd)
    {
        sum += bd;
        ++count;
    }

    /** Mean contribution of each component, in ticks. */
    LatencyBreakdown mean() const;
};

/** The simulated SSD. */
class Ssd
{
  public:
    using Callback = Engine::Callback;

    Ssd(Engine &engine, const SsdConfig &config);
    ~Ssd();

    Ssd(const Ssd &) = delete;
    Ssd &operator=(const Ssd &) = delete;

    /**
     * Submit a host request; @p done fires when every page of the
     * request completes.
     */
    void submit(const IoRequest &req, Callback done);

    /** Page-granularity host read. */
    void readPage(Lpn lpn, Callback done);

    /** Page-granularity host write. */
    void writePage(Lpn lpn, Callback done);

    /**
     * Fill the device logically (no simulated time) so GC has work:
     * see PageMapping::prefill.
     */
    void prefill(double fill_fraction, double invalid_fraction);

    Engine &engine() { return _engine; }
    const SsdConfig &config() const { return _config; }
    PageMapping &mapping() { return *_mapping; }
    WriteBuffer &writeBuffer() { return *_writeBuffer; }
    SystemBus &systemBus() { return *_systemBus; }
    Dram &dram() { return *_dram; }
    GcEngine &gc() { return *_gc; }
    FlashChannel &channel(unsigned ch);
    unsigned channelCount() const;

    /** The architecture datapath strategy. */
    Datapath &datapath() { return *_datapath; }

    /** The background write-buffer flusher. */
    FlushEngine &flushEngine() { return *_flush; }

    /** The fault recovery engine; null when faults are disabled. */
    RecoveryEngine *recoveryEngine() { return _recovery.get(); }

    /** Decoupled controller of @p ch; null on Baseline/BW. */
    DecoupledController *decoupledController(unsigned ch)
    {
        return _datapath->controller(ch);
    }

    /** The flash-to-flash interconnect; null on Baseline/BW. */
    Interconnect *interconnect() { return _datapath->interconnect(); }

    /** The fNoC, when arch == DSSDNoc. */
    NocNetwork *noc() { return asNoc(_datapath->interconnect()); }

    /** The fault model; null when config.fault.enabled is false. */
    FaultModel *faultModel() { return _fault.get(); }

    /**
     * Divert terminal block faults to @p sink instead of the built-in
     * repair/retire handling (DynamicSuperblockEngine installs itself
     * so media faults merge into its wear-cycle state machine); null
     * restores the default.
     */
    void setFaultSink(FaultSink *sink)
    {
        if (_recovery)
            _recovery->setOverrideSink(sink);
    }

    /** Windowed system-bus utilization (Fig 2(c,d), Fig 7(b)). */
    UtilizationRecorder &busRecorder() { return *_busRecorder; }

    /**
     * Register this SSD's invariant checks with @p auditor: FTL
     * mapping bijectivity, write-buffer residency, each decoupled
     * controller's copyback/SRT/RBT consistency, and fNoC packet and
     * credit conservation. Check names gain @p prefix (an SsdArray
     * passes "shardN."). The auditor must not outlive this Ssd.
     */
    void registerAudits(Auditor &auditor, const std::string &prefix = "");

    /**
     * The automatically attached auditor of DSSD_AUDIT builds; null
     * otherwise. DSSD_AUDIT_EVERY in the environment overrides the
     * audit interval (executed events between runs; 0 disables the
     * periodic hook).
     */
    Auditor *auditor() { return _auditor.get(); }

    /**
     * Register every component's statistics under @p prefix
     * ("ssd0"): host counters, write buffer, system bus, DRAM,
     * per-channel controllers (bus, page buffer, dies, and — when
     * decoupled — dBUFs, ECC, copyback stages), GC, and the fNoC.
     * The registry borrows; it must not outlive this Ssd.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /** Host page operations currently in flight. */
    unsigned ioOutstanding() const { return _ioOutstanding; }

    const BreakdownStats &ioBreakdown() const { return _ioBreakdown; }
    const BreakdownStats &copybackBreakdown() const
    {
        return _cbBreakdown;
    }

    std::uint64_t hostReads() const { return _hostReads; }
    std::uint64_t hostWrites() const { return _hostWritesOps; }
    std::uint64_t flushedPages() const { return _flush->flushedPages(); }

    //
    // Internal datapath entry points for the GC engine.
    //

    /**
     * Move one valid page from @p src to @p dst using this
     * architecture's GC datapath. @p done fires when the destination
     * program completes.
     */
    void gcCopyPage(const PhysAddr &src, const PhysAddr &dst,
                    Callback done);

    /** Erase @p block of @p unit on the flash array. */
    void gcEraseBlock(std::uint32_t unit, std::uint32_t block,
                      Callback done);

  private:
    void readPageInternal(Lpn lpn, Callback done);
    void writePageInternal(Lpn lpn, Callback done);
    /** Buffered write with write-cache backpressure (stalls while the
     *  buffer is full and the flusher is draining). */
    void bufferedWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                       Callback finish);
    /** Direct write with free-space backpressure (retries until GC
     *  frees a block). */
    void retryDirectWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                          Callback finish);
    void directWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                     Callback finish);

    /** Apply SRT remapping when this architecture supports it. */
    PhysAddr resolve(const PhysAddr &addr) const
    {
        return _datapath->resolve(addr);
    }

    Engine &_engine;
    SsdConfig _config;
    Rng _rng;
    /// Recycles the per-page-op LatencyBreakdown nodes (the write
    /// path's only steady-state heap traffic). Shared ownership: nodes
    /// parked in pending events pin the pool past this Ssd's lifetime.
    PoolPtr _bdPool = PoolPtr::make();

    std::unique_ptr<UtilizationRecorder> _busRecorder;
    std::unique_ptr<SystemBus> _systemBus;
    std::unique_ptr<Dram> _dram;
    std::vector<std::unique_ptr<FlashChannel>> _channels;
    std::unique_ptr<Datapath> _datapath;
    std::unique_ptr<PageMapping> _mapping;
    std::unique_ptr<WriteBuffer> _writeBuffer;
    std::unique_ptr<GcEngine> _gc;
    std::unique_ptr<FlushEngine> _flush;
    std::unique_ptr<FaultModel> _fault;
    std::unique_ptr<RecoveryEngine> _recovery;
    std::unique_ptr<Auditor> _auditor;

    unsigned _ioOutstanding = 0;
    std::uint64_t _hostReads = 0;
    std::uint64_t _hostWritesOps = 0;
    BreakdownStats _ioBreakdown;
    BreakdownStats _cbBreakdown;
};

} // namespace dssd

#endif // DSSD_CORE_SSD_HH
