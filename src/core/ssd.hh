/**
 * @file
 * The SSD top-level: wires host interface, FTL state, write buffer,
 * system bus, DRAM, ECC engines, flash channels, decoupled
 * controllers, and the flash-to-flash interconnect according to an
 * ArchKind (Table 2), and implements every datapath:
 *
 *  - host read (DRAM hit):   DRAM port -> system bus
 *  - host read (miss):       flash ch -> ECC -> system bus
 *  - host write (buffered):  system bus -> DRAM port (ack), flushed in
 *                            the background: DRAM -> system bus ->
 *                            flash ch -> program
 *  - GC copy (Baseline/BW):  flash ch -> ECC -> system bus -> DRAM ->
 *                            system bus -> flash ch -> program
 *  - GC copy (dSSD family):  global copyback in the decoupled
 *                            controllers (never touches the front-end)
 */

#ifndef DSSD_CORE_SSD_HH
#define DSSD_CORE_SSD_HH

#include <memory>
#include <vector>

#include "bus/system_bus.hh"
#include "controller/decoupled.hh"
#include "core/config.hh"
#include "ftl/mapping.hh"
#include "ftl/writebuffer.hh"
#include "noc/network.hh"
#include "sim/audit.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "workload/request.hh"

namespace dssd
{

class GcEngine;
class StatRegistry;

/** Aggregated mean latency breakdowns (Fig 9). */
struct BreakdownStats
{
    LatencyBreakdown sum;
    std::uint64_t count = 0;

    void
    add(const LatencyBreakdown &bd)
    {
        sum += bd;
        ++count;
    }

    /** Mean contribution of each component, in ticks. */
    LatencyBreakdown mean() const;
};

/** The simulated SSD. */
class Ssd
{
  public:
    using Callback = Engine::Callback;

    Ssd(Engine &engine, const SsdConfig &config);
    ~Ssd();

    Ssd(const Ssd &) = delete;
    Ssd &operator=(const Ssd &) = delete;

    /**
     * Submit a host request; @p done fires when every page of the
     * request completes.
     */
    void submit(const IoRequest &req, Callback done);

    /** Page-granularity host read. */
    void readPage(Lpn lpn, Callback done);

    /** Page-granularity host write. */
    void writePage(Lpn lpn, Callback done);

    /**
     * Fill the device logically (no simulated time) so GC has work:
     * see PageMapping::prefill.
     */
    void prefill(double fill_fraction, double invalid_fraction);

    Engine &engine() { return _engine; }
    const SsdConfig &config() const { return _config; }
    PageMapping &mapping() { return *_mapping; }
    WriteBuffer &writeBuffer() { return *_writeBuffer; }
    SystemBus &systemBus() { return *_systemBus; }
    Dram &dram() { return *_dram; }
    GcEngine &gc() { return *_gc; }
    FlashChannel &channel(unsigned ch);
    unsigned channelCount() const;

    /** Decoupled controller of @p ch; null on Baseline/BW. */
    DecoupledController *decoupledController(unsigned ch);

    /** The flash-to-flash interconnect; null on Baseline/BW. */
    Interconnect *interconnect() { return _interconnect.get(); }

    /** The fNoC, when arch == DSSDNoc. */
    NocNetwork *noc() { return _noc; }

    /** The fault model; null when config.fault.enabled is false. */
    FaultModel *faultModel() { return _fault.get(); }

    /**
     * Divert terminal block faults to @p sink instead of the built-in
     * repair/retire handling (DynamicSuperblockEngine installs itself
     * so media faults merge into its wear-cycle state machine); null
     * restores the default.
     */
    void setFaultSink(FaultSink *sink) { _faultSink = sink; }

    /** Windowed system-bus utilization (Fig 2(c,d), Fig 7(b)). */
    UtilizationRecorder &busRecorder() { return *_busRecorder; }

    /**
     * Register this SSD's invariant checks with @p auditor: FTL
     * mapping bijectivity, write-buffer residency, each decoupled
     * controller's copyback/SRT/RBT consistency, and fNoC packet and
     * credit conservation. The auditor must not outlive this Ssd.
     */
    void registerAudits(Auditor &auditor);

    /**
     * The automatically attached auditor of DSSD_AUDIT builds; null
     * otherwise. DSSD_AUDIT_EVERY in the environment overrides the
     * audit interval (executed events between runs; 0 disables the
     * periodic hook).
     */
    Auditor *auditor() { return _auditor.get(); }

    /**
     * Register every component's statistics under @p prefix
     * ("ssd0"): host counters, write buffer, system bus, DRAM,
     * per-channel controllers (bus, page buffer, dies, and — when
     * decoupled — dBUFs, ECC, copyback stages), GC, and the fNoC.
     * The registry borrows; it must not outlive this Ssd.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /** Host page operations currently in flight. */
    unsigned ioOutstanding() const { return _ioOutstanding; }

    const BreakdownStats &ioBreakdown() const { return _ioBreakdown; }
    const BreakdownStats &copybackBreakdown() const
    {
        return _cbBreakdown;
    }

    std::uint64_t hostReads() const { return _hostReads; }
    std::uint64_t hostWrites() const { return _hostWritesOps; }
    std::uint64_t flushedPages() const { return _flushedPages; }

    //
    // Internal datapath entry points for the GC engine.
    //

    /**
     * Move one valid page from @p src to @p dst using this
     * architecture's GC datapath. @p done fires when the destination
     * program completes.
     */
    void gcCopyPage(const PhysAddr &src, const PhysAddr &dst,
                    Callback done);

    /** Erase @p block of @p unit on the flash array. */
    void gcEraseBlock(std::uint32_t unit, std::uint32_t block,
                      Callback done);

  private:
    void readPageInternal(Lpn lpn, Callback done);
    void writePageInternal(Lpn lpn, Callback done);
    /** Buffered write with write-cache backpressure (stalls while the
     *  buffer is full and the flusher is draining). */
    void bufferedWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                       Callback finish);
    /** Direct write with free-space backpressure (retries until GC
     *  frees a block). */
    void retryDirectWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                          Callback finish);
    void directWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                     Callback finish);
    void maybeStartFlush();
    void flushPump();
    void flushOne(Lpn lpn, Callback done);

    /** Trace the write-buffer fill level as a counter sample. */
    void traceWriteBufferOccupancy();

    /** Apply SRT remapping when this architecture supports it. */
    PhysAddr resolve(const PhysAddr &addr) const;

    //
    // Fault handling (all no-ops when no fault model is attached).
    //

    /** Default terminal-fault handler: repair in hardware (decoupled)
     *  or retire through the FTL. */
    void handleBlockFault(const PhysAddr &addr, FaultKind kind);
    /** RBT/SRT repair of the faulted block via same-channel global
     *  copybacks; false when no spare/SRT room (caller retires). */
    bool tryHardwareRepair(const PhysAddr &addr);
    /** FTL bad-block retirement: relocate valid pages over the timed
     *  GC datapath, then never reuse the block. */
    void retireBlockFrontEnd(const PhysAddr &addr);
    /** Relocate the remaining @p lpns (from @p idx) of a retiring
     *  block, one at a time. */
    void relocateRetired(std::shared_ptr<std::vector<Lpn>> lpns,
                         std::size_t idx, std::uint32_t unit,
                         std::uint32_t block);
    /** Front-end re-read of a copyback page the channel ECC could not
     *  correct (installed into each DecoupledController). */
    void copybackFallback(const PhysAddr &src, const PhysAddr &dst,
                          int tag, LatencyBreakdown *bd, Callback done);

    Engine &_engine;
    SsdConfig _config;
    Rng _rng;

    std::unique_ptr<UtilizationRecorder> _busRecorder;
    std::unique_ptr<SystemBus> _systemBus;
    std::unique_ptr<Dram> _dram;
    std::vector<std::unique_ptr<FlashChannel>> _channels;
    /// Front-end ECC engines (one per channel) for Baseline/BW.
    std::vector<std::unique_ptr<EccEngine>> _frontEcc;
    std::vector<std::unique_ptr<DecoupledController>> _decoupled;
    std::unique_ptr<Interconnect> _interconnect;
    NocNetwork *_noc = nullptr; ///< borrowed view of _interconnect
    std::unique_ptr<PageMapping> _mapping;
    std::unique_ptr<WriteBuffer> _writeBuffer;
    std::unique_ptr<GcEngine> _gc;
    std::unique_ptr<FaultModel> _fault;
    std::unique_ptr<Auditor> _auditor;

    FaultSink *_faultSink = nullptr;
    /// _faultedBlocks[channel][channelBlockId]: escalate each physical
    /// block at most once (retries keep reporting the same block).
    std::vector<std::vector<bool>> _faultedBlocks;
    std::uint32_t _faultDstCursor = 0;
    std::uint64_t _blocksRepaired = 0;
    std::uint64_t _blocksRetired = 0;
    std::uint64_t _repairPagesCopied = 0;
    std::uint64_t _retirePagesCopied = 0;
    std::uint64_t _cbFallbacks = 0;
    std::uint64_t _remapEvents = 0;

    int _wbufTracePid = -1; ///< cached trace row (write-buffer counter)
    unsigned _ioOutstanding = 0;
    bool _flushActive = false;
    unsigned _flushInFlight = 0;
    std::uint64_t _hostReads = 0;
    std::uint64_t _hostWritesOps = 0;
    std::uint64_t _flushedPages = 0;
    BreakdownStats _ioBreakdown;
    BreakdownStats _cbBreakdown;
};

} // namespace dssd

#endif // DSSD_CORE_SSD_HH
