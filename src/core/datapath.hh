/**
 * @file
 * Architecture datapath strategies.
 *
 * The five Table 2 configurations differ in which hardware sits
 * between the flash array and the rest of the device: Baseline/BW
 * route everything through front-end ECC, the system bus, and DRAM,
 * while the dSSD family adds decoupled per-channel controllers and a
 * flash-to-flash interconnect. The Ssd shell used to special-case
 * every route with `if (arch)` branches; those routes now live behind
 * two narrow strategy interfaces:
 *
 *  - IoDatapath: the host-I/O routes that depend on the architecture
 *    (the flash read miss with its ECC/recovery ladder, and the SRT
 *    address filter applied to every flash operation);
 *  - GcDatapath: the GC page-copy route (front-end bounce vs global
 *    copyback in the decoupled controllers).
 *
 * One concrete Datapath per architecture family implements both and
 * additionally owns the family's hardware: FrontEndDatapath
 * (datapath_frontend.hh) owns the per-channel front-end ECC engines;
 * DecoupledDatapath (datapath_decoupled.hh) owns the decoupled
 * controllers and the interconnect. The Ssd shell owns the shared
 * substrate (channels, system bus, DRAM) and lends it to the strategy
 * through DatapathEnv; the strategy must not outlive the Ssd.
 */

#ifndef DSSD_CORE_DATAPATH_HH
#define DSSD_CORE_DATAPATH_HH

#include <memory>
#include <string>
#include <vector>

#include "bus/interconnect.hh"
#include "bus/system_bus.hh"
#include "controller/channel.hh"
#include "core/config.hh"
#include "sim/engine.hh"
#include "sim/latency.hh"

namespace dssd
{

class Auditor;
class DecoupledController;
class PageMapping;
class RecoveryEngine;
class StatRegistry;

/**
 * Borrowed view of the architecture-independent hardware the Ssd
 * shell owns. Every reference must outlive the Datapath built over it.
 */
struct DatapathEnv
{
    Engine &engine;
    const SsdConfig &config;
    std::vector<std::unique_ptr<FlashChannel>> &channels;
    SystemBus &systemBus;
    Dram &dram;
};

/** Host-I/O routes that vary with the architecture. */
class IoDatapath
{
  public:
    using Callback = Engine::Callback;

    virtual ~IoDatapath() = default;

    /**
     * Serve a host read miss of the (already resolved) flash page at
     * @p addr: flash read, the recovery ladder of this architecture's
     * ECC engine, then the system bus to the host.
     */
    virtual void hostReadMiss(const PhysAddr &addr,
                              std::shared_ptr<LatencyBreakdown> bd,
                              Callback done) = 0;

    /**
     * Filter a flash address through the architecture's remapping
     * hardware (SRT on decoupled controllers; identity on the
     * front-end architectures).
     */
    virtual PhysAddr resolve(const PhysAddr &addr) const = 0;
};

/** The GC page-copy route. */
class GcDatapath
{
  public:
    using Callback = Engine::Callback;

    virtual ~GcDatapath() = default;

    /**
     * Move one valid page from @p src to @p dst (both resolved) over
     * this architecture's copy route; @p done fires when the
     * destination program completes.
     */
    virtual void copyPage(const PhysAddr &src, const PhysAddr &dst,
                          int tag, std::shared_ptr<LatencyBreakdown> bd,
                          Callback done) = 0;
};

/**
 * One architecture family's datapath: both strategy interfaces plus
 * ownership of the family-specific hardware and its wiring hooks.
 */
class Datapath : public IoDatapath, public GcDatapath
{
  public:
    using Callback = Engine::Callback;

    explicit Datapath(const DatapathEnv &env) : _env(env) {}

    /** Shared miss route (both families differ only in eccFor()). */
    void hostReadMiss(const PhysAddr &addr,
                      std::shared_ptr<LatencyBreakdown> bd,
                      Callback done) override;

    /** The ECC engine that checks pages read on channel @p ch. */
    virtual EccEngine &eccFor(unsigned ch) = 0;

    /**
     * Decoupled controller of @p ch; null on front-end architectures,
     * panics when @p ch is out of range on decoupled ones.
     */
    virtual DecoupledController *controller(unsigned ch)
    {
        (void)ch;
        return nullptr;
    }

    /** The flash-to-flash interconnect; null on front-end archs. */
    virtual Interconnect *interconnect() { return nullptr; }

    /**
     * Attach the fault model to this family's hardware (ECC recovery
     * draws, per-controller fallbacks, fNoC CRC stream). @p recovery
     * handles the escalations the hardware cannot absorb.
     */
    virtual void attachFaults(FaultModel *fault, RecoveryEngine *recovery)
    {
        (void)recovery;
        _fault = fault;
    }

    /**
     * In-place hardware repair of the faulted block (RBT spare + SRT
     * remap, dSSD family only); false when this architecture cannot
     * repair and the block must be retired through the FTL.
     */
    virtual bool tryHardwareRepair(const PhysAddr &addr,
                                   RecoveryEngine &recovery)
    {
        (void)addr;
        (void)recovery;
        return false;
    }

    /** Invert resolve(): the FTL-visible address behind a (possibly
     *  remapped) physical one. Identity on front-end architectures. */
    virtual PhysAddr unresolve(const PhysAddr &addr) const { return addr; }

    /**
     * Pull config.fault.rbtSparesPerChannel blocks per channel out of
     * FTL circulation and seed them into the repair hardware's RBT.
     * No-op on front-end architectures (no repair hardware).
     */
    virtual void seedRbtSpares(PageMapping &mapping) { (void)mapping; }

    /** Register the family-owned hardware of channel @p ch under
     *  @p channel_prefix (the channel's own stats are registered by
     *  the Ssd). */
    virtual void registerChannelStats(StatRegistry &reg,
                                      const std::string &channel_prefix,
                                      unsigned ch) const
    {
        (void)reg;
        (void)channel_prefix;
        (void)ch;
    }

    /** Register family-wide hardware stats under the device prefix. */
    virtual void registerStats(StatRegistry &reg,
                               const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }

    /** Register the family-owned hardware's invariant checks, named
     *  under @p prefix. */
    virtual void registerAudits(Auditor &auditor,
                                const std::string &prefix)
    {
        (void)auditor;
        (void)prefix;
    }

  protected:
    DatapathEnv _env;
    FaultModel *_fault = nullptr;
};

/** Build the datapath for env.config.arch over the shared hardware. */
std::unique_ptr<Datapath> makeDatapath(const DatapathEnv &env);

} // namespace dssd

#endif // DSSD_CORE_DATAPATH_HH
