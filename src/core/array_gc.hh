/**
 * @file
 * Array-level garbage-collection scheduler.
 *
 * `SsdArray` fans host I/O out over N independent shards; left alone,
 * every shard also collects garbage whenever its own thresholds trip.
 * Uncoordinated per-device GC is what destroys array-level tail
 * latency: a request striped over all shards is as slow as the one
 * shard that happens to be collecting. The scheduler gives the array
 * an opinion about *when* shards may collect.
 *
 * Shards never collect on their own once coordinated (see
 * GcCoordinationHooks in core/gc.hh): they request a grant, the
 * scheduler answers according to its policy, and they release the
 * grant when the collection round drains, reporting the copy/erase
 * work done inside the window.
 *
 * Policies:
 *  - Uncoordinated: every request is granted immediately (the
 *    baseline; equivalent to today's behavior up to the grant
 *    delivery latency).
 *  - Staggered: at most `maxConcurrent` shards hold a grant at once;
 *    excess requests queue FIFO, so grants rotate across shards.
 *  - TokenBucket: one array-wide bucket refilled with
 *    `tokensPerEpoch` tokens every `tokenEpoch` ticks (capped at
 *    `tokenCap`). A grant needs a positive bucket and reserves one
 *    epoch's worth of tokens up front — so grants pace out at about
 *    one per epoch under pressure — and the window's actual copies +
 *    erases are reconciled against the reservation on release (the
 *    bucket may go negative: debt delays the next grant).
 *  - GlobalGreedy: like Staggered, but the queued shard with the
 *    worst free-block pressure is granted first (ties to the lower
 *    shard index).
 *
 * The scheduler lives entirely on the host engine: every decision is
 * a host-engine event, so grant order is deterministic for any
 * `--engine-threads` count (requests and releases arrive through the
 * group's deterministic completion merge).
 */

#ifndef DSSD_CORE_ARRAY_GC_HH
#define DSSD_CORE_ARRAY_GC_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/stats.hh"

namespace dssd
{

class StatRegistry;

/** When may a shard collect garbage? */
enum class ArrayGcPolicy
{
    Uncoordinated, ///< grant immediately (baseline)
    Staggered,     ///< at most K shards at once, FIFO rotation
    TokenBucket,   ///< array-wide copy/erase budget per epoch
    GlobalGreedy,  ///< worst free-block pressure first
};

const char *arrayGcPolicyName(ArrayGcPolicy policy);

/** Parse a policy name (uncoordinated|staggered|token|greedy);
 *  empty when unrecognized. */
std::optional<ArrayGcPolicy> parseArrayGcPolicy(const std::string &name);

struct ArrayGcParams
{
    ArrayGcPolicy policy = ArrayGcPolicy::Uncoordinated;
    /** Staggered/GlobalGreedy: shards allowed to collect at once. */
    unsigned maxConcurrent = 1;
    /** TokenBucket: tokens credited to the array-wide bucket per
     *  epoch (also the per-grant up-front reservation). */
    std::uint64_t tokensPerEpoch = 256;
    /** TokenBucket: refill period. The default is on the scale of a
     *  GC round, so grants pace out visibly under sustained load. */
    Tick tokenEpoch = usToTicks(2000);
    /** TokenBucket: bucket ceiling (hoarding bound). */
    std::int64_t tokenCap = 512;
};

/** Host-side grant arbiter for the shards' GC engines. */
class ArrayGcScheduler
{
  public:
    /** Delivers a grant to shard s (the SsdArray bridges it to the
     *  shard's GcEngine::grantCollection with the proper latency). */
    using GrantFn = std::function<void(unsigned shard)>;

    ArrayGcScheduler(Engine &host, const ArrayGcParams &params,
                     unsigned shards, GrantFn deliver);

    /**
     * Shard @p shard asks to collect; @p pressure is its worst
     * per-unit free-block pressure at request time (GlobalGreedy
     * ranking key). Host-engine context; at most one outstanding
     * request per shard (the GcEngine state machine guarantees it).
     */
    void requestGrant(unsigned shard, std::uint32_t pressure);

    /**
     * Shard @p shard finished every round run under its grant;
     * @p copies / @p erases are the GC work done inside the window
     * (TokenBucket charges them against the bucket).
     */
    void releaseGrant(unsigned shard, std::uint64_t copies,
                      std::uint64_t erases);

    /** Whether @p shard currently holds a grant (the degraded-read
     *  busy predicate; pure host state). */
    bool granted(unsigned shard) const
    {
        return _state[shard] == ShardState::Granted;
    }

    unsigned activeGrants() const { return _active; }

    std::uint64_t requests() const { return _requests; }
    std::uint64_t grants() const { return _grants; }
    std::uint64_t waits() const { return _waits; }
    std::uint64_t releases() const { return _releases; }
    std::uint64_t tokensSpent() const { return _tokensSpent; }
    std::int64_t tokens() const { return _tokens; }

    /** Shards in grant-delivery order since construction — the
     *  determinism witness compared across worker counts. */
    const std::vector<unsigned> &grantLog() const { return _grantLog; }

    const ArrayGcParams &params() const { return _params; }

    /** Register scheduler counters under @p prefix
     *  (e.g. "<array>.array.gc"). */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    enum class ShardState
    {
        Idle,
        Waiting,
        Granted,
    };

    struct Waiter
    {
        unsigned shard;
        std::uint32_t pressure;
        std::uint64_t seq; ///< arrival order (FIFO key)
    };

    /** Grant the waiter at @p queue_index and deliver it. */
    void grantAt(std::size_t queue_index);
    /** Grant as many waiters as the policy allows right now. */
    void pump();
    /** Credit token buckets for epochs elapsed since the last call. */
    void refillTokens();
    /** Arm a host event at the next token epoch boundary. */
    void scheduleTokenWake();

    Engine &_host;
    ArrayGcParams _params;
    GrantFn _deliver;
    std::vector<ShardState> _state;
    std::vector<Tick> _requestAt;
    std::vector<Tick> _grantAt;
    /// Tokens reserved by each shard's outstanding grant (reconciled
    /// against the actual copy/erase cost at release).
    std::vector<std::int64_t> _reserved;
    std::int64_t _tokens = 0;
    std::vector<Waiter> _queue;
    std::uint64_t _seq = 0;
    std::uint64_t _epochsCredited = 0;
    unsigned _active = 0;
    bool _wakeArmed = false;

    std::uint64_t _requests = 0;
    std::uint64_t _grants = 0;
    std::uint64_t _waits = 0;
    std::uint64_t _releases = 0;
    std::uint64_t _tokensSpent = 0;
    std::vector<unsigned> _grantLog;
    SampleStat _waitTicks{"array-gc-wait"};
    SampleStat _grantTicks{"array-gc-window"};
};

} // namespace dssd

#endif // DSSD_CORE_ARRAY_GC_HH
