#include "core/gc.hh"

#include <algorithm>
#include <utility>

#include "core/ssd.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

GcEngine::GcEngine(Ssd &ssd, const GcParams &params)
    : _ssd(ssd), _params(params),
      _units(ssd.mapping().unitCount()), _firstStart(maxTick),
      _roundStart(maxTick)
{
    if (_params.preemptQuantumPages == 0)
        _params.preemptQuantumPages = 1;
}

void
GcEngine::noteAllocation(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    if (u.active)
        return;
    if (!_ssd.mapping().gcNeeded(unit))
        return;
    // Under a held grant collection may start directly; otherwise a
    // coordinated engine queues the unit behind a grant request.
    if (coordinated() && _grant != GrantState::Held) {
        u.wantsGc = true;
        requestIfNeeded();
        return;
    }
    startUnit(unit);
}

void
GcEngine::forceAll(unsigned victims_per_unit, Callback done)
{
    if (_forcedPending != 0 || _pendingForce)
        panic("forceAll while a forced GC round is still running");
    if (coordinated() && _grant != GrantState::Held) {
        _pendingForce = true;
        _pendingForceVictims = victims_per_unit;
        _pendingForceDone = std::move(done);
        requestIfNeeded();
        return;
    }
    beginForcedRound(victims_per_unit, std::move(done));
}

void
GcEngine::beginForcedRound(unsigned victims_per_unit, Callback done)
{
    _forceDone = std::move(done);
    _forcedPending = static_cast<unsigned>(_units.size());
    ++_startingBatch;
    for (std::uint32_t unit = 0; unit < _units.size(); ++unit) {
        UnitState &u = _units[unit];
        u.forced = true;
        u.forcedRemaining = victims_per_unit;
        u.wantsGc = false; // the forced round covers every unit
        if (!u.active)
            startUnit(unit);
    }
    --_startingBatch;
    maybeReleaseGrant();
}

void
GcEngine::setCoordination(GcCoordinationHooks hooks)
{
    if (_activeUnits != 0 || _grant != GrantState::None)
        panic("setCoordination while collection is in progress");
    _hooks = std::move(hooks);
}

void
GcEngine::grantCollection()
{
    if (_grant != GrantState::Requested)
        panic("grantCollection without an outstanding request");
    _grant = GrantState::Held;
    _grantCopies0 = _pagesMoved;
    _grantErases0 = _blocksErased;
    ++_startingBatch;
    if (_pendingForce) {
        _pendingForce = false;
        Callback done = std::move(_pendingForceDone);
        _pendingForceDone = nullptr;
        beginForcedRound(_pendingForceVictims, std::move(done));
    }
    for (std::uint32_t unit = 0; unit < _units.size(); ++unit) {
        UnitState &u = _units[unit];
        // Rounds preempted while the grant was yielded resume first.
        if (u.active && u.paused && u.wantsResume)
            resumeUnit(unit);
        if (!u.wantsGc)
            continue;
        u.wantsGc = false;
        // The threshold may have been restored while the request was
        // queued (e.g. by a forced round that just ran).
        if (!u.active && _ssd.mapping().gcNeeded(unit))
            startUnit(unit);
    }
    --_startingBatch;
    maybeReleaseGrant();
    maybeYieldGrantPaused();
}

std::uint32_t
GcEngine::freeBlockPressure() const
{
    const PageMapping &map = _ssd.mapping();
    std::uint32_t worst = 0;
    for (std::uint32_t unit = 0; unit < map.unitCount(); ++unit)
        worst = std::max(worst, map.freeBlockPressure(unit));
    return worst;
}

void
GcEngine::requestIfNeeded()
{
    if (_grant != GrantState::None)
        return;
    bool want = _pendingForce;
    for (std::uint32_t unit = 0; !want && unit < _units.size(); ++unit)
        want = _units[unit].wantsGc || _units[unit].wantsResume;
    if (!want)
        return;
    _grant = GrantState::Requested;
    _hooks.request(freeBlockPressure());
}

void
GcEngine::maybeReleaseGrant()
{
    if (_grant != GrantState::Held || _startingBatch != 0 ||
        _activeUnits != 0) {
        return;
    }
    _grant = GrantState::None;
    std::uint64_t copies = _pagesMoved - _grantCopies0;
    std::uint64_t erases = _blocksErased - _grantErases0;
    if (_hooks.release)
        _hooks.release(copies, erases);
    // Work queued while the window was closing asks again.
    requestIfNeeded();
}

void
GcEngine::startUnit(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    u.active = true;
    // The preemption quantum spans the whole round (victims are often
    // nearly empty, so a per-victim quantum would never fill).
    u.quantumCopies = 0;
    ++_activeUnits;
    if (_firstStart == maxTick)
        _firstStart = _ssd.engine().now();
    if (_activeUnits == 1) {
        _roundStart = _ssd.engine().now();
        ++_rounds;
    }
#if DSSD_TRACING
    Tracer *tr = _ssd.engine().tracer();
    if (tr) {
        int pid = tr->process("gc");
        tr->asyncBegin(pid, "gc", "gc-round", unit,
                       _ssd.engine().now());
    }
#endif
    collectNext(unit);
}

void
GcEngine::collectNext(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    PageMapping &map = _ssd.mapping();

    bool keep_going;
    if (u.forced)
        keep_going = u.forcedRemaining > 0;
    else
        keep_going = !map.gcSatisfied(unit);
    if (!keep_going) {
        finishUnit(unit);
        return;
    }

    auto victim = map.pickVictim(unit);
    if (!victim) {
        finishUnit(unit);
        return;
    }
    u.victim = *victim;
    u.victimForced = u.forced;
    u.lpns = map.validLpns(unit, u.victim);
    u.nextLpn = 0;
    u.inFlight = 0;
    u.sliceCopies = 0;
    u.erasing = false;

    if (u.lpns.empty())
        victimDrained(unit);
    else
        pumpCopies(unit);
}

bool
GcEngine::policyAllowsCopy(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    Engine &eng = _ssd.engine();

    switch (_params.policy) {
      case GcPolicy::Parallel:
        return true;
      case GcPolicy::Preemptive:
        // Postpone GC while host I/O is pending, unless free blocks
        // are critically low (the FTL "can no longer postpone GC").
        if (_ssd.ioOutstanding() > 0 &&
            _ssd.mapping().freeBlockCount(unit) >
                _params.preemptiveForcedFreeBlocks) {
            eng.schedule(_params.tinyTailYieldNs,
                         [this, unit] { pumpCopies(unit); });
            return false;
        }
        return true;
      case GcPolicy::TinyTail:
        // Yield to I/O after each small copy slice.
        if (u.sliceCopies >= _params.tinyTailSlicePages &&
            _ssd.ioOutstanding() > 0) {
            u.sliceCopies = 0;
            eng.schedule(_params.tinyTailYieldNs,
                         [this, unit] { pumpCopies(unit); });
            return false;
        }
        return true;
    }
    return true;
}

std::optional<std::uint32_t>
GcEngine::chooseDestination(std::uint32_t src_unit)
{
    PageMapping &map = _ssd.mapping();
    if (!_params.globalDestination) {
        if (!map.canAllocate(src_unit))
            return std::nullopt;
        return src_unit;
    }
    std::uint32_t n = map.unitCount();
    // Global free-block selection: round-robin over units comfortably
    // above the GC threshold.
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t unit = _dstCursor;
        _dstCursor = (_dstCursor + 1) % n;
        if (!map.canAllocate(unit))
            continue;
        if (map.freeBlockCount(unit) > map.params().gcFreeBlockThreshold)
            return unit;
    }
    // Space crunch: fall back to the source unit's reserved block so
    // this victim can drain locally and its erase restores space.
    if (map.canAllocate(src_unit))
        return src_unit;
    // Last resort: anything with room.
    for (std::uint32_t unit = 0; unit < n; ++unit) {
        if (map.canAllocate(unit))
            return unit;
    }
    return std::nullopt;
}

void
GcEngine::pumpCopies(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    PageMapping &map = _ssd.mapping();

    // Stale wakeups (policy rechecks, space-wait retries) may land
    // after the victim drained, the unit finished, or the round was
    // preempted; ignore them.
    if (!u.active || u.erasing || u.paused)
        return;

    while (u.inFlight < _params.copiesInFlightPerUnit &&
           u.nextLpn < u.lpns.size()) {
        // Preemptible GC: after each copy quantum, yield to pending
        // host I/O and resume deterministically later. A threshold
        // round runs while free <= gcFreeBlockThreshold by definition,
        // so the livelock guard is the critical floor instead: once a
        // unit is down to its last reserve blocks the round must run
        // to completion — it is what restores space.
        if (_params.preemptible &&
            u.quantumCopies >= _params.preemptQuantumPages &&
            _ssd.ioOutstanding() > 0 &&
            map.freeBlockCount(unit) >
                _params.preemptiveForcedFreeBlocks) {
            pauseUnit(unit);
            return;
        }
        if (!policyAllowsCopy(unit))
            return;
        // Skip pages the host rewrote while this victim was queued.
        std::uint64_t lpn = u.lpns[u.nextLpn];
        auto ppn = map.translate(lpn);
        if (!ppn) {
            ++u.nextLpn;
            continue;
        }
        PhysAddr src = map.geometry().pageAddr(*ppn);
        if (map.unitOf(src) != unit || src.block != u.victim) {
            ++u.nextLpn;
            continue;
        }
        auto dst_unit = chooseDestination(unit);
        if (!dst_unit) {
            // Nowhere to relocate right now; wait for an erase to
            // restore space somewhere, then resume.
            _ssd.engine().schedule(usToTicks(2),
                                   [this, unit] { pumpCopies(unit); });
            return;
        }
        ++u.nextLpn;
        issueCopy(unit, lpn, *dst_unit);
    }
    if (u.nextLpn >= u.lpns.size() && u.inFlight == 0)
        victimDrained(unit);
}

void
GcEngine::pauseUnit(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    u.paused = true;
    u.quantumCopies = 0;
    ++_pausedUnits;
    ++_preemptYields;
#if DSSD_TRACING
    Tracer *tr = _ssd.engine().tracer();
    if (tr) {
        int pid = tr->process("gc");
        tr->counter(pid, "gc-paused-units", _ssd.engine().now(),
                    static_cast<double>(_pausedUnits));
    }
#endif
    _ssd.engine().schedule(_params.preemptResumeNs,
                           [this, unit] { resumeCheck(unit); });
    maybeYieldGrantPaused();
}

void
GcEngine::resumeCheck(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    if (!u.active || !u.paused)
        return;
    // The grant was yielded while this unit slept: re-request it and
    // resume when the scheduler grants collection again.
    if (coordinated() && _grant != GrantState::Held) {
        u.wantsResume = true;
        requestIfNeeded();
        return;
    }
    resumeUnit(unit);
}

void
GcEngine::resumeUnit(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    u.paused = false;
    u.wantsResume = false;
    u.quantumCopies = 0;
    --_pausedUnits;
    ++_preemptResumes;
#if DSSD_TRACING
    Tracer *tr = _ssd.engine().tracer();
    if (tr) {
        int pid = tr->process("gc");
        tr->counter(pid, "gc-paused-units", _ssd.engine().now(),
                    static_cast<double>(_pausedUnits));
    }
#endif
    pumpCopies(unit);
}

void
GcEngine::maybeYieldGrantPaused()
{
    if (!_params.preemptible)
        return;
    if (_grant != GrantState::Held || _startingBatch != 0)
        return;
    if (_activeUnits == 0 || _pausedUnits != _activeUnits)
        return;
    // Every active round is paused: yield the grant so other shards
    // can collect, reporting the partial round's work. Paused rounds
    // re-request the grant from their resume timers.
    _grant = GrantState::None;
    std::uint64_t copies = _pagesMoved - _grantCopies0;
    std::uint64_t erases = _blocksErased - _grantErases0;
    if (_hooks.release)
        _hooks.release(copies, erases);
    requestIfNeeded();
}

void
GcEngine::issueCopy(std::uint32_t unit, std::uint64_t lpn,
                    std::uint32_t dst_unit)
{
    UnitState &u = _units[unit];
    PageMapping &map = _ssd.mapping();

    PhysAddr src = map.geometry().pageAddr(*map.translate(lpn));
    PhysAddr dst = map.allocateInUnit(lpn, dst_unit);

    ++u.inFlight;
    ++u.sliceCopies;
    ++u.quantumCopies;
    Tick t0 = _ssd.engine().now();
    _ssd.gcCopyPage(src, dst, [this, unit, lpn, dst, t0] {
        _ssd.mapping().commitRelocation(lpn, dst);
        ++_pagesMoved;
        _copyLatency.sample(
            static_cast<double>(_ssd.engine().now() - t0));
        UnitState &uu = _units[unit];
        --uu.inFlight;
        pumpCopies(unit);
    });
}

void
GcEngine::victimDrained(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    if (u.erasing)
        return;
    u.erasing = true;
    std::uint32_t victim = u.victim;
    _ssd.gcEraseBlock(unit, victim, [this, unit, victim] {
        _ssd.mapping().eraseBlock(unit, victim);
        ++_blocksErased;
        UnitState &uu = _units[unit];
        // Only victims picked under force consume the forced budget;
        // a threshold victim that straddled forceAll does not.
        if (uu.victimForced && uu.forcedRemaining > 0)
            --uu.forcedRemaining;
        collectNext(unit);
    });
}

void
GcEngine::finishUnit(std::uint32_t unit)
{
    UnitState &u = _units[unit];
    u.active = false;
    --_activeUnits;
#if DSSD_TRACING
    Tracer *tr = _ssd.engine().tracer();
    if (tr) {
        int pid = tr->process("gc");
        tr->asyncEnd(pid, "gc", "gc-round", unit, _ssd.engine().now());
    }
#endif
    if (_activeUnits == 0) {
        _lastEnd = _ssd.engine().now();
        _roundDuration.sample(
            static_cast<double>(_lastEnd - _roundStart));
    }
    if (u.forced) {
        u.forced = false;
        u.victimForced = false;
        u.forcedRemaining = 0;
        if (_forcedPending == 0)
            panic("forced GC accounting underflow");
        if (--_forcedPending == 0 && _forceDone) {
            Callback cb = std::move(_forceDone);
            _forceDone = nullptr;
            cb();
        }
    }
    maybeReleaseGrant();
    // The last runnable unit may leave only paused rounds behind.
    maybeYieldGrantPaused();
}

void
GcEngine::registerStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addScalar(prefix + ".pages_moved", [this] {
        return static_cast<double>(_pagesMoved);
    });
    reg.addScalar(prefix + ".blocks_erased", [this] {
        return static_cast<double>(_blocksErased);
    });
    reg.addScalar(prefix + ".active_units", [this] {
        return static_cast<double>(_activeUnits);
    });
    reg.addScalar(prefix + ".rounds", [this] {
        return static_cast<double>(_rounds);
    });
    reg.addSample(prefix + ".copy_latency", &_copyLatency);
    reg.addSample(prefix + ".round_duration", &_roundDuration);
    // Preemption counters only exist when the feature is on, so
    // default runs keep their historical --stats output.
    if (_params.preemptible) {
        reg.addScalar(prefix + ".preempt_yields", [this] {
            return static_cast<double>(_preemptYields);
        });
        reg.addScalar(prefix + ".preempt_resumes", [this] {
            return static_cast<double>(_preemptResumes);
        });
    }
}

} // namespace dssd
