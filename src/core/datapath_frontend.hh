/**
 * @file
 * Front-end datapath (Baseline and BW, Fig 1).
 *
 * These architectures have no flash-to-flash hardware: every page that
 * leaves a channel is checked by a per-channel front-end ECC engine
 * and every GC copy bounces through the whole controller — flash read,
 * ECC, system bus, DRAM, FTL firmware, and back out through the system
 * bus to the destination program. Addresses are never remapped
 * (resolve() is the identity) and block faults can only be handled by
 * FTL retirement, so the repair hooks keep their refusing defaults.
 */

#ifndef DSSD_CORE_DATAPATH_FRONTEND_HH
#define DSSD_CORE_DATAPATH_FRONTEND_HH

#include <memory>
#include <vector>

#include "core/datapath.hh"

namespace dssd
{

/** Baseline/BW: front-end ECC, conventional GC bounce. */
class FrontEndDatapath : public Datapath
{
  public:
    explicit FrontEndDatapath(const DatapathEnv &env);

    PhysAddr resolve(const PhysAddr &addr) const override
    {
        return addr;
    }

    /** Conventional copy (Fig 1): read -> ECC -> system bus -> DRAM,
     *  then the FTL issues the write: DRAM -> system bus -> program. */
    void copyPage(const PhysAddr &src, const PhysAddr &dst, int tag,
                  std::shared_ptr<LatencyBreakdown> bd,
                  Callback done) override;

    EccEngine &eccFor(unsigned ch) override;

    void registerChannelStats(StatRegistry &reg,
                              const std::string &channel_prefix,
                              unsigned ch) const override;

  private:
    /// Front-end ECC engines, one per channel.
    std::vector<std::unique_ptr<EccEngine>> _ecc;
};

} // namespace dssd

#endif // DSSD_CORE_DATAPATH_FRONTEND_HH
