#include "core/ssd.hh"

#include <cstdlib>
#include <memory>
#include <utility>

#include "core/gc.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

LatencyBreakdown
BreakdownStats::mean() const
{
    LatencyBreakdown m;
    if (count == 0)
        return m;
    m.flashMem = sum.flashMem / count;
    m.flashBus = sum.flashBus / count;
    m.systemBus = sum.systemBus / count;
    m.dram = sum.dram / count;
    m.ecc = sum.ecc / count;
    m.noc = sum.noc / count;
    m.other = sum.other / count;
    return m;
}

Ssd::Ssd(Engine &engine, const SsdConfig &config)
    : _engine(engine), _config(config), _rng(config.seed)
{
    _config.geom.validate();

    _busRecorder =
        std::make_unique<UtilizationRecorder>(_config.statWindow);
    _systemBus = std::make_unique<SystemBus>(
        engine, _config.effectiveSystemBusBandwidth());
    _systemBus->attachRecorder(_busRecorder.get());
    _dram = std::make_unique<Dram>(engine, _config.dramBandwidth);

    _channels.reserve(_config.geom.channels);
    for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
        _channels.push_back(std::make_unique<FlashChannel>(
            engine, _config.geom, _config.timing, ch, _config.channel));
    }

    _datapath = makeDatapath(
        DatapathEnv{engine, _config, _channels, *_systemBus, *_dram});

    MappingParams mp;
    mp.geom = _config.geom;
    mp.overProvision = _config.overProvision;
    mp.gcFreeBlockThreshold = _config.gcFreeBlockThreshold;
    mp.gcFreeBlockTarget = _config.gcFreeBlockTarget;
    mp.victimPolicy = _config.gc.victimPolicy;
    mp.allocPolicy = _config.gc.allocPolicy;
    mp.victimWindow = _config.gc.victimWindow;
    _mapping = std::make_unique<PageMapping>(mp);

    _writeBuffer = std::make_unique<WriteBuffer>(_config.writeBuffer);
    _gc = std::make_unique<GcEngine>(*this, _config.gc);
    // The conflict-aware allocator asks the mapping whether a unit is
    // GC-busy; round activity is known only up here, so inject it.
    _mapping->setGcBusyProbe(
        [this](std::uint32_t unit) { return _gc->unitActive(unit); });

    _flush = std::make_unique<FlushEngine>(
        engine, *_mapping, *_writeBuffer, _config.flushInFlight,
        [this](const PhysAddr &addr) { return _datapath->resolve(addr); },
        [this](const PhysAddr &target, Callback done) {
            // Write-back: DRAM read -> system bus -> flash program.
            std::uint64_t page = _config.geom.pageBytes;
            _dram->port().transfer(page, tagIo,
                                   [this, page, target,
                                    done = std::move(done)]() mutable {
                _systemBus->channel().transfer(page, tagIo,
                                               [this, target,
                                                done = std::move(done)]()
                                                   mutable {
                    _channels[target.channel]->program(target, 1, tagIo,
                                                       std::move(done));
                });
            });
        },
        [this](std::uint32_t unit) { _gc->noteAllocation(unit); });

    if (_config.fault.enabled) {
        _fault =
            std::make_unique<FaultModel>(_config.geom, _config.fault);

        RecoveryEngine::Routes routes;
        routes.copyPage = [this](const PhysAddr &src, const PhysAddr &dst,
                                 Callback done) {
            gcCopyPage(src, dst, std::move(done));
        };
        routes.unremap = [this](const PhysAddr &addr) {
            return _datapath->unresolve(addr);
        };
        routes.channelRead = [this](const PhysAddr &addr, int tag,
                                    LatencyBreakdown *bd, Callback done) {
            _channels[addr.channel]->read(addr, 1, tag, std::move(done),
                                          bd);
        };
        routes.softDecode = [this](unsigned ch, std::uint64_t bytes,
                                   int tag, Callback done) {
            _datapath->eccFor(ch).processSoft(bytes, tag,
                                              std::move(done));
        };
        routes.channelProgram = [this](const PhysAddr &addr, int tag,
                                       LatencyBreakdown *bd,
                                       Callback done) {
            _channels[addr.channel]->program(addr, 1, tag,
                                             std::move(done), bd);
        };
        if (isDecoupled(_config.arch)) {
            routes.hardwareRepair = [this](const PhysAddr &addr) {
                return _datapath->tryHardwareRepair(addr, *_recovery);
            };
        }
        _recovery = std::make_unique<RecoveryEngine>(
            engine, _config.geom, *_mapping, *_systemBus, *_dram,
            _config.gcFirmwareLatency, std::move(routes));

        _fault->setSink([this](const PhysAddr &a, FaultKind k) {
            _recovery->onBlockFault(a, k);
        });
        for (auto &ch : _channels)
            ch->setFaultModel(_fault.get());
        _datapath->attachFaults(_fault.get(), _recovery.get());

        // Pre-seed each decoupled controller's RBT with spare blocks
        // pulled out of FTL visibility, so runtime hardware repair has
        // material to work with (the RESERV idea applied to bad-block
        // management).
        _datapath->seedRbtSpares(*_mapping);
    }

#ifdef DSSD_AUDIT
    // Debug-gated invariant auditing: cross-check the model every N
    // executed events and abort on the first violation. The interval
    // trades detection latency against audit cost (each run walks the
    // whole mapping).
    _auditor = std::make_unique<Auditor>(AuditMode::Abort);
    registerAudits(*_auditor);
    std::uint64_t every = 65536;
    // Read-only env probe at construction; nothing in the simulator
    // calls setenv, so the mt-unsafe concern does not apply.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("DSSD_AUDIT_EVERY"))
        every = std::strtoull(env, nullptr, 10);
    if (every != 0)
        _auditor->attach(_engine, every);
#endif
}

Ssd::~Ssd() = default;

void
Ssd::registerAudits(Auditor &auditor, const std::string &prefix)
{
    auditor.addCheck(prefix + "ftl.mapping", [this](AuditReport &r) {
        _mapping->audit(r);
    });
    auditor.addCheck(prefix + "ftl.writebuffer", [this](AuditReport &r) {
        _writeBuffer->audit(r);
    });
    _datapath->registerAudits(auditor, prefix);
}

void
Ssd::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addScalar(prefix + ".host.reads", [this] {
        return static_cast<double>(_hostReads);
    });
    reg.addScalar(prefix + ".host.writes", [this] {
        return static_cast<double>(_hostWritesOps);
    });
    reg.addScalar(prefix + ".host.flushed_pages", [this] {
        return static_cast<double>(_flush->flushedPages());
    });
    reg.addScalar(prefix + ".host.outstanding", [this] {
        return static_cast<double>(_ioOutstanding);
    });

    _writeBuffer->registerStats(reg, prefix + ".wbuf");
    _systemBus->registerStats(reg, prefix + ".sysbus");
    _dram->registerStats(reg, prefix + ".dram");

    for (std::size_t ch = 0; ch < _channels.size(); ++ch) {
        std::string chp = prefix + strformat(".ch%zu", ch);
        _channels[ch]->registerStats(reg, chp);
        _datapath->registerChannelStats(reg, chp,
                                        static_cast<unsigned>(ch));
    }

    _gc->registerStats(reg, prefix + ".gc");
    _datapath->registerStats(reg, prefix);

    // Policy-tagged counters appear only under a non-default policy
    // configuration, keeping the default --stats output byte-identical
    // with pre-policy-seam builds.
    if (_config.gc.victimPolicy != "greedy" ||
        _config.gc.allocPolicy != "rr" || _config.gc.preemptible) {
        _mapping->registerPolicyStats(reg, prefix + ".ftl.policy");
    }

    if (_fault) {
        _fault->registerStats(reg, prefix + ".fault");
        reg.addScalar(prefix + ".fault.repairs", [this] {
            return static_cast<double>(_recovery->blocksRepaired());
        });
        reg.addScalar(prefix + ".fault.retirements", [this] {
            return static_cast<double>(_recovery->blocksRetired());
        });
        reg.addScalar(prefix + ".fault.repair_pages", [this] {
            return static_cast<double>(_recovery->repairPagesCopied());
        });
        reg.addScalar(prefix + ".fault.retire_pages", [this] {
            return static_cast<double>(_recovery->retirePagesCopied());
        });
        reg.addScalar(prefix + ".fault.copyback_fallbacks", [this] {
            return static_cast<double>(_recovery->copybackFallbacks());
        });
        reg.addScalar(prefix + ".fault.remaps", [this] {
            return static_cast<double>(_recovery->remapEvents());
        });
    }
}

FlashChannel &
Ssd::channel(unsigned ch)
{
    if (ch >= _channels.size())
        panic("channel %u out of range", ch);
    return *_channels[ch];
}

unsigned
Ssd::channelCount() const
{
    return static_cast<unsigned>(_channels.size());
}

void
Ssd::prefill(double fill_fraction, double invalid_fraction)
{
    _mapping->prefill(fill_fraction, invalid_fraction, _rng);
}

void
Ssd::submit(const IoRequest &req, Callback done)
{
    std::uint64_t page = _config.geom.pageBytes;
    Lpn first = req.offset / page;
    std::uint64_t end = req.offset + std::max<std::uint64_t>(req.bytes, 1);
    std::uint64_t pages = (end + page - 1) / page - first;
    Lpn lpn_count = _mapping->lpnCount();

    auto remaining = std::make_shared<std::uint64_t>(pages);
    auto page_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };

    // Firmware (FTL request handling) is charged once per request.
    _engine.schedule(_config.firmwareLatency,
                     [this, req, first, pages, lpn_count, page_done] {
        for (std::uint64_t i = 0; i < pages; ++i) {
            Lpn lpn = (first + i) % lpn_count;
            if (req.isRead())
                readPage(lpn, page_done);
            else
                writePage(lpn, page_done);
        }
    });
}

void
Ssd::readPage(Lpn lpn, Callback done)
{
    ++_ioOutstanding;
    ++_hostReads;
    readPageInternal(lpn, std::move(done));
}

void
Ssd::writePage(Lpn lpn, Callback done)
{
    ++_ioOutstanding;
    ++_hostWritesOps;
    writePageInternal(lpn, std::move(done));
}

void
Ssd::readPageInternal(Lpn lpn, Callback done)
{
    auto bd = makePooled<LatencyBreakdown>(_bdPool);
    auto finish = [this, bd, cb = std::move(done)] {
        _ioBreakdown.add(*bd);
        --_ioOutstanding;
        cb();
    };

    std::uint64_t page = _config.geom.pageBytes;
    bool hit = _writeBuffer->readHit(lpn);
    _writeBuffer->recordProbe(hit);

    if (hit) {
        // Buffer-cache hit: DRAM port then system bus, no flash.
        Tick t0 = _engine.now();
        _dram->port().transfer(page, tagIo, [this, page, bd, t0, finish] {
            bdSpanClose(_engine, bd.get(), bdDram, t0);
            Tick t1 = _engine.now();
            _systemBus->channel().transfer(page, tagIo,
                                           [this, bd, t1, finish] {
                bdSpanClose(_engine, bd.get(), bdSystemBus, t1);
                finish();
            });
        });
        return;
    }

    auto ppn = _mapping->translate(lpn);
    if (!ppn) {
        // Unwritten logical page: served as zeroes by the firmware.
        _engine.schedule(0, finish);
        return;
    }
    PhysAddr addr = resolve(_config.geom.pageAddr(*ppn));
    _datapath->hostReadMiss(addr, bd, std::move(finish));
}

void
Ssd::writePageInternal(Lpn lpn, Callback done)
{
    auto bd = makePooled<LatencyBreakdown>(_bdPool);
    auto finish = [this, bd, cb = std::move(done)] {
        _ioBreakdown.add(*bd);
        --_ioOutstanding;
        cb();
    };

    if (_writeBuffer->mode() != BufferMode::AlwaysMiss) {
        bufferedWrite(lpn, bd, std::move(finish));
        return;
    }

    // Direct (write-through) path: allocate, cross the bus, program.
    // Under heavy write bursts the free pool can be momentarily
    // exhausted; stall the write until GC reclaims a block (this is
    // exactly the blocking behind the paper's I/O-bandwidth dips).
    retryDirectWrite(lpn, bd, finish);
}

void
Ssd::bufferedWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                   Callback finish)
{
    // Buffered write: host -> system bus -> DRAM, then ack. Flash
    // programs happen lazily in the flush path. When the buffer is
    // full the host write stalls until the flusher drains — write-
    // cache backpressure is what turns flash/GC slowness into
    // host-visible latency.
    if (_writeBuffer->mode() == BufferMode::Real &&
        _writeBuffer->occupancy() >= _writeBuffer->capacity() &&
        !_writeBuffer->readHit(lpn)) {
        bd->other += usToTicks(2);
        if (bd->other > tickSec)
            panic("buffered write stalled >1s: flush path wedged");
        _engine.schedule(usToTicks(2), [this, lpn, bd, finish] {
            bufferedWrite(lpn, bd, finish);
        });
        _flush->maybeStart();
        return;
    }

    std::uint64_t page = _config.geom.pageBytes;
    Tick t0 = _engine.now();
    _systemBus->channel().transfer(page, tagIo,
                                   [this, lpn, page, bd, t0, finish] {
        bdSpanClose(_engine, bd.get(), bdSystemBus, t0);
        Tick t1 = _engine.now();
        _dram->port().transfer(page, tagIo, [this, lpn, bd, t1, finish] {
            bdSpanClose(_engine, bd.get(), bdDram, t1);
            _writeBuffer->insert(lpn);
            _flush->traceOccupancy();
            finish();
            _flush->maybeStart();
        });
    });
}

void
Ssd::retryDirectWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                      Callback finish)
{
    if (!_mapping->hostCanAllocate()) {
        bd->other += usToTicks(2);
        if (bd->other > tickSec)
            panic("host write stalled >1s: device full and GC cannot "
                  "reclaim space");
        _engine.schedule(usToTicks(2), [this, lpn, bd, finish] {
            retryDirectWrite(lpn, bd, finish);
        });
        return;
    }
    directWrite(lpn, bd, std::move(finish));
}

void
Ssd::directWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                 Callback finish)
{
    std::uint64_t page = _config.geom.pageBytes;
    PhysAddr addr = _mapping->allocate(lpn);
    std::uint32_t unit = _mapping->unitOf(addr);
    PhysAddr target = resolve(addr);
    Tick t0 = _engine.now();
    _systemBus->channel().transfer(page, tagIo,
                                   [this, target, bd, t0,
                                    finish = std::move(finish)] {
        bdSpanClose(_engine, bd.get(), bdSystemBus, t0);
        _channels[target.channel]->program(target, 1, tagIo, finish,
                                           bd.get());
    });
    _gc->noteAllocation(unit);
}

void
Ssd::gcCopyPage(const PhysAddr &src, const PhysAddr &dst, Callback done)
{
    auto bd = makePooled<LatencyBreakdown>(_bdPool);
    auto finish = [this, bd, cb = std::move(done)] {
        _cbBreakdown.add(*bd);
        cb();
    };
    _datapath->copyPage(src, dst, tagGc, bd, std::move(finish));
}

void
Ssd::gcEraseBlock(std::uint32_t unit, std::uint32_t block, Callback done)
{
    PhysAddr addr = _mapping->unitBlockAddr(unit, block);
    PhysAddr target = resolve(addr);
    _channels[target.channel]->erase(target, tagGc, std::move(done));
}

} // namespace dssd
