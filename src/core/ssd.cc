#include "core/ssd.hh"

#include <cstdlib>
#include <memory>
#include <utility>

#include "core/gc.hh"
#include "noc/topology.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

LatencyBreakdown
BreakdownStats::mean() const
{
    LatencyBreakdown m;
    if (count == 0)
        return m;
    m.flashMem = sum.flashMem / count;
    m.flashBus = sum.flashBus / count;
    m.systemBus = sum.systemBus / count;
    m.dram = sum.dram / count;
    m.ecc = sum.ecc / count;
    m.noc = sum.noc / count;
    m.other = sum.other / count;
    return m;
}

Ssd::Ssd(Engine &engine, const SsdConfig &config)
    : _engine(engine), _config(config), _rng(config.seed)
{
    _config.geom.validate();

    _busRecorder =
        std::make_unique<UtilizationRecorder>(_config.statWindow);
    _systemBus = std::make_unique<SystemBus>(
        engine, _config.effectiveSystemBusBandwidth());
    _systemBus->attachRecorder(_busRecorder.get());
    _dram = std::make_unique<Dram>(engine, _config.dramBandwidth);

    _channels.reserve(_config.geom.channels);
    for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
        _channels.push_back(std::make_unique<FlashChannel>(
            engine, _config.geom, _config.timing, ch, _config.channel));
    }

    if (isDecoupled(_config.arch)) {
        DecoupledParams dp = _config.decoupled;
        dp.ecc = _config.ecc;
        _decoupled.reserve(_config.geom.channels);
        for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
            _decoupled.push_back(std::make_unique<DecoupledController>(
                engine, *_channels[ch], dp));
        }
        switch (_config.arch) {
          case ArchKind::DSSD:
            _interconnect =
                std::make_unique<SystemBusInterconnect>(*_systemBus);
            break;
          case ArchKind::DSSDBus:
            _interconnect = std::make_unique<DedicatedBusInterconnect>(
                engine, _config.interconnectBandwidth());
            break;
          case ArchKind::DSSDNoc: {
            auto topo =
                makeTopology(_config.nocTopology, _config.geom.channels);
            NocParams np = _config.noc;
            if (!_config.nocExplicitBandwidth) {
                np.linkBandwidth = _config.interconnectBandwidth() /
                                   topo->bisectionLinks();
            }
            auto noc = std::make_unique<NocNetwork>(engine,
                                                    std::move(topo), np);
            _noc = noc.get();
            _interconnect = std::move(noc);
            break;
          }
          default:
            panic("decoupled arch without interconnect mapping");
        }
        for (unsigned ch = 0; ch < _config.geom.channels; ++ch)
            _decoupled[ch]->setInterconnect(_interconnect.get(), ch);
    } else {
        for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
            _frontEcc.push_back(std::make_unique<EccEngine>(
                engine, strformat("front-ecc-ch%u", ch), _config.ecc));
        }
    }

    MappingParams mp;
    mp.geom = _config.geom;
    mp.overProvision = _config.overProvision;
    mp.gcFreeBlockThreshold = _config.gcFreeBlockThreshold;
    mp.gcFreeBlockTarget = _config.gcFreeBlockTarget;
    _mapping = std::make_unique<PageMapping>(mp);

    _writeBuffer = std::make_unique<WriteBuffer>(_config.writeBuffer);
    _gc = std::make_unique<GcEngine>(*this, _config.gc);

#ifdef DSSD_AUDIT
    // Debug-gated invariant auditing: cross-check the model every N
    // executed events and abort on the first violation. The interval
    // trades detection latency against audit cost (each run walks the
    // whole mapping).
    _auditor = std::make_unique<Auditor>(AuditMode::Abort);
    registerAudits(*_auditor);
    std::uint64_t every = 65536;
    // Read-only env probe at construction; nothing in the simulator
    // calls setenv, so the mt-unsafe concern does not apply.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("DSSD_AUDIT_EVERY"))
        every = std::strtoull(env, nullptr, 10);
    if (every != 0)
        _auditor->attach(_engine, every);
#endif
}

Ssd::~Ssd() = default;

void
Ssd::registerAudits(Auditor &auditor)
{
    auditor.addCheck("ftl.mapping", [this](AuditReport &r) {
        _mapping->audit(r);
    });
    auditor.addCheck("ftl.writebuffer", [this](AuditReport &r) {
        _writeBuffer->audit(r);
    });
    for (auto &dc : _decoupled) {
        auditor.addCheck(
            strformat("controller.ch%u", dc->channel().channelId()),
            [c = dc.get()](AuditReport &r) { c->audit(r); });
    }
    if (_noc) {
        auditor.addCheck("noc.network", [n = _noc](AuditReport &r) {
            n->audit(r);
        });
    }
}

void
Ssd::traceWriteBufferOccupancy()
{
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        if (_wbufTracePid < 0)
            _wbufTracePid = tr->process("occupancy");
        tr->counter(_wbufTracePid, "write-buffer", _engine.now(),
                    static_cast<double>(_writeBuffer->occupancy()));
    }
#endif
}

void
Ssd::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addScalar(prefix + ".host.reads", [this] {
        return static_cast<double>(_hostReads);
    });
    reg.addScalar(prefix + ".host.writes", [this] {
        return static_cast<double>(_hostWritesOps);
    });
    reg.addScalar(prefix + ".host.flushed_pages", [this] {
        return static_cast<double>(_flushedPages);
    });
    reg.addScalar(prefix + ".host.outstanding", [this] {
        return static_cast<double>(_ioOutstanding);
    });

    _writeBuffer->registerStats(reg, prefix + ".wbuf");
    _systemBus->registerStats(reg, prefix + ".sysbus");
    _dram->registerStats(reg, prefix + ".dram");

    for (std::size_t ch = 0; ch < _channels.size(); ++ch) {
        std::string chp = prefix + strformat(".ch%zu", ch);
        _channels[ch]->registerStats(reg, chp);
        if (ch < _decoupled.size())
            _decoupled[ch]->registerStats(reg, chp + ".cd");
    }
    for (std::size_t ch = 0; ch < _frontEcc.size(); ++ch) {
        _frontEcc[ch]->registerStats(
            reg, prefix + strformat(".ch%zu.front_ecc", ch));
    }

    _gc->registerStats(reg, prefix + ".gc");
    if (_noc)
        _noc->registerStats(reg, prefix + ".noc");
}

FlashChannel &
Ssd::channel(unsigned ch)
{
    if (ch >= _channels.size())
        panic("channel %u out of range", ch);
    return *_channels[ch];
}

unsigned
Ssd::channelCount() const
{
    return static_cast<unsigned>(_channels.size());
}

DecoupledController *
Ssd::decoupledController(unsigned ch)
{
    if (!isDecoupled(_config.arch))
        return nullptr;
    if (ch >= _decoupled.size())
        panic("channel %u out of range", ch);
    return _decoupled[ch].get();
}

void
Ssd::prefill(double fill_fraction, double invalid_fraction)
{
    _mapping->prefill(fill_fraction, invalid_fraction, _rng);
}

PhysAddr
Ssd::resolve(const PhysAddr &addr) const
{
    if (!isDecoupled(_config.arch) || !_config.applySrtRemap)
        return addr;
    return _decoupled[addr.channel]->remap(addr);
}

void
Ssd::submit(const IoRequest &req, Callback done)
{
    std::uint64_t page = _config.geom.pageBytes;
    Lpn first = req.offset / page;
    std::uint64_t end = req.offset + std::max<std::uint64_t>(req.bytes, 1);
    std::uint64_t pages = (end + page - 1) / page - first;
    Lpn lpn_count = _mapping->lpnCount();

    auto remaining = std::make_shared<std::uint64_t>(pages);
    auto page_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };

    // Firmware (FTL request handling) is charged once per request.
    _engine.schedule(_config.firmwareLatency,
                     [this, req, first, pages, lpn_count, page_done] {
        for (std::uint64_t i = 0; i < pages; ++i) {
            Lpn lpn = (first + i) % lpn_count;
            if (req.isRead())
                readPage(lpn, page_done);
            else
                writePage(lpn, page_done);
        }
    });
}

void
Ssd::readPage(Lpn lpn, Callback done)
{
    ++_ioOutstanding;
    ++_hostReads;
    readPageInternal(lpn, std::move(done));
}

void
Ssd::writePage(Lpn lpn, Callback done)
{
    ++_ioOutstanding;
    ++_hostWritesOps;
    writePageInternal(lpn, std::move(done));
}

void
Ssd::readPageInternal(Lpn lpn, Callback done)
{
    auto bd = std::make_shared<LatencyBreakdown>();
    auto finish = [this, bd, cb = std::move(done)] {
        _ioBreakdown.add(*bd);
        --_ioOutstanding;
        cb();
    };

    std::uint64_t page = _config.geom.pageBytes;
    bool hit = _writeBuffer->readHit(lpn);
    _writeBuffer->recordProbe(hit);

    if (hit) {
        // Buffer-cache hit: DRAM port then system bus, no flash.
        Tick t0 = _engine.now();
        _dram->port().transfer(page, tagIo, [this, page, bd, t0, finish] {
            bdSpanClose(_engine, bd.get(), bdDram, t0);
            Tick t1 = _engine.now();
            _systemBus->channel().transfer(page, tagIo,
                                           [this, bd, t1, finish] {
                bdSpanClose(_engine, bd.get(), bdSystemBus, t1);
                finish();
            });
        });
        return;
    }

    auto ppn = _mapping->translate(lpn);
    if (!ppn) {
        // Unwritten logical page: served as zeroes by the firmware.
        _engine.schedule(0, finish);
        return;
    }
    PhysAddr addr = resolve(_config.geom.pageAddr(*ppn));
    unsigned ch = addr.channel;

    _channels[ch]->read(addr, 1, tagIo, [this, ch, page, bd, finish] {
        // Error check, then cross the system bus to the host.
        EccEngine &ecc = isDecoupled(_config.arch)
                             ? _decoupled[ch]->ecc()
                             : *_frontEcc[ch];
        Tick t0 = _engine.now();
        ecc.process(page, tagIo, [this, page, bd, t0, finish] {
            bdSpanClose(_engine, bd.get(), bdEcc, t0);
            Tick t1 = _engine.now();
            _systemBus->channel().transfer(page, tagIo,
                                           [this, bd, t1, finish] {
                bdSpanClose(_engine, bd.get(), bdSystemBus, t1);
                finish();
            });
        });
    }, bd.get());
}

void
Ssd::writePageInternal(Lpn lpn, Callback done)
{
    auto bd = std::make_shared<LatencyBreakdown>();
    auto finish = [this, bd, cb = std::move(done)] {
        _ioBreakdown.add(*bd);
        --_ioOutstanding;
        cb();
    };

    if (_writeBuffer->mode() != BufferMode::AlwaysMiss) {
        bufferedWrite(lpn, bd, std::move(finish));
        return;
    }

    // Direct (write-through) path: allocate, cross the bus, program.
    // Under heavy write bursts the free pool can be momentarily
    // exhausted; stall the write until GC reclaims a block (this is
    // exactly the blocking behind the paper's I/O-bandwidth dips).
    retryDirectWrite(lpn, bd, finish);
}

void
Ssd::bufferedWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                   Callback finish)
{
    // Buffered write: host -> system bus -> DRAM, then ack. Flash
    // programs happen lazily in the flush path. When the buffer is
    // full the host write stalls until the flusher drains — write-
    // cache backpressure is what turns flash/GC slowness into
    // host-visible latency.
    if (_writeBuffer->mode() == BufferMode::Real &&
        _writeBuffer->occupancy() >= _writeBuffer->capacity() &&
        !_writeBuffer->readHit(lpn)) {
        bd->other += usToTicks(2);
        if (bd->other > tickSec)
            panic("buffered write stalled >1s: flush path wedged");
        _engine.schedule(usToTicks(2), [this, lpn, bd, finish] {
            bufferedWrite(lpn, bd, finish);
        });
        maybeStartFlush();
        return;
    }

    std::uint64_t page = _config.geom.pageBytes;
    Tick t0 = _engine.now();
    _systemBus->channel().transfer(page, tagIo,
                                   [this, lpn, page, bd, t0, finish] {
        bdSpanClose(_engine, bd.get(), bdSystemBus, t0);
        Tick t1 = _engine.now();
        _dram->port().transfer(page, tagIo, [this, lpn, bd, t1, finish] {
            bdSpanClose(_engine, bd.get(), bdDram, t1);
            _writeBuffer->insert(lpn);
            traceWriteBufferOccupancy();
            finish();
            maybeStartFlush();
        });
    });
}

void
Ssd::retryDirectWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                      Callback finish)
{
    if (!_mapping->hostCanAllocate()) {
        bd->other += usToTicks(2);
        if (bd->other > tickSec)
            panic("host write stalled >1s: device full and GC cannot "
                  "reclaim space");
        _engine.schedule(usToTicks(2), [this, lpn, bd, finish] {
            retryDirectWrite(lpn, bd, finish);
        });
        return;
    }
    directWrite(lpn, bd, std::move(finish));
}

void
Ssd::directWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                 Callback finish)
{
    std::uint64_t page = _config.geom.pageBytes;
    PhysAddr addr = _mapping->allocate(lpn);
    std::uint32_t unit = _mapping->unitOf(addr);
    PhysAddr target = resolve(addr);
    Tick t0 = _engine.now();
    _systemBus->channel().transfer(page, tagIo,
                                   [this, target, bd, t0,
                                    finish = std::move(finish)] {
        bdSpanClose(_engine, bd.get(), bdSystemBus, t0);
        _channels[target.channel]->program(target, 1, tagIo, finish,
                                           bd.get());
    });
    _gc->noteAllocation(unit);
}

void
Ssd::maybeStartFlush()
{
    if (_writeBuffer->mode() != BufferMode::Real)
        return;
    if (_flushActive || !_writeBuffer->flushNeeded())
        return;
    _flushActive = true;
    flushPump();
}

void
Ssd::flushPump()
{
    while (_flushInFlight < _config.flushInFlight) {
        if (_writeBuffer->flushSatisfied())
            break;
        auto batch = _writeBuffer->drainForFlush(1);
        if (batch.empty())
            break;
        traceWriteBufferOccupancy();
        ++_flushInFlight;
        flushOne(batch.front(), [this] {
            --_flushInFlight;
            ++_flushedPages;
            flushPump();
        });
    }
    if (_flushInFlight == 0)
        _flushActive = false;
}

void
Ssd::flushOne(Lpn lpn, Callback done)
{
    if (!_mapping->hostCanAllocate()) {
        // Free pool exhausted: hold this flush until GC reclaims.
        _engine.schedule(usToTicks(2),
                         [this, lpn, done = std::move(done)]() mutable {
            flushOne(lpn, std::move(done));
        });
        return;
    }
    std::uint64_t page = _config.geom.pageBytes;
    PhysAddr addr = _mapping->allocate(lpn);
    std::uint32_t unit = _mapping->unitOf(addr);
    PhysAddr target = resolve(addr);

    // Write-back: DRAM read -> system bus -> flash program.
    _dram->port().transfer(page, tagIo,
                           [this, page, target, done = std::move(done)]()
                               mutable {
        _systemBus->channel().transfer(page, tagIo,
                                       [this, target,
                                        done = std::move(done)]() mutable {
            _channels[target.channel]->program(target, 1, tagIo,
                                               std::move(done));
        });
    });
    _gc->noteAllocation(unit);
}

void
Ssd::gcCopyPage(const PhysAddr &src, const PhysAddr &dst, Callback done)
{
    auto bd = std::make_shared<LatencyBreakdown>();
    auto finish = [this, bd, cb = std::move(done)] {
        _cbBreakdown.add(*bd);
        cb();
    };

    std::uint64_t page = _config.geom.pageBytes;

    if (isDecoupled(_config.arch)) {
        DecoupledController *sc = _decoupled[src.channel].get();
        DecoupledController *dc = _decoupled[dst.channel].get();
        sc->globalCopyback(src, dst, dc, tagGc, finish, bd.get());
        return;
    }

    // Conventional path (Fig 1): read -> ECC -> system bus -> DRAM,
    // then the FTL issues the write: DRAM -> system bus -> program.
    unsigned sch = src.channel;
    _channels[sch]->read(src, 1, tagGc, [this, sch, page, dst, bd, finish] {
        Tick t0 = _engine.now();
        _frontEcc[sch]->process(page, tagGc,
                                [this, page, dst, bd, t0, finish] {
            bdSpanClose(_engine, bd.get(), bdEcc, t0);
            Tick t1 = _engine.now();
            _systemBus->channel().transfer(page, tagGc,
                                           [this, page, dst, bd, t1,
                                            finish] {
                bdSpanClose(_engine, bd.get(), bdSystemBus, t1);
                Tick t2 = _engine.now();
                _dram->port().transfer(page, tagGc,
                                       [this, page, dst, bd, t2, finish] {
                    bdSpanClose(_engine, bd.get(), bdDram, t2);
                    Tick fw0 = _engine.now();
                    bdSpanCloseAt(_engine, bd.get(), bdOther, fw0,
                                  fw0 + _config.gcFirmwareLatency);
                    _engine.schedule(_config.gcFirmwareLatency,
                                     [this, page, dst, bd, finish] {
                        Tick t3 = _engine.now();
                        _dram->port().transfer(page, tagGc,
                                               [this, page, dst, bd, t3,
                                                finish] {
                            bdSpanClose(_engine, bd.get(), bdDram, t3);
                            Tick t4 = _engine.now();
                            _systemBus->channel().transfer(
                                page, tagGc,
                                [this, dst, bd, t4, finish] {
                                bdSpanClose(_engine, bd.get(),
                                            bdSystemBus, t4);
                                _channels[dst.channel]->program(
                                    dst, 1, tagGc, finish, bd.get());
                            });
                        });
                    });
                });
            });
        });
    }, bd.get());
}

void
Ssd::gcEraseBlock(std::uint32_t unit, std::uint32_t block, Callback done)
{
    PhysAddr addr = _mapping->unitBlockAddr(unit, block);
    PhysAddr target = resolve(addr);
    _channels[target.channel]->erase(target, tagGc, std::move(done));
}

} // namespace dssd
