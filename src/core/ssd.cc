#include "core/ssd.hh"

#include <cstdlib>
#include <memory>
#include <utility>

#include "core/gc.hh"
#include "noc/topology.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

LatencyBreakdown
BreakdownStats::mean() const
{
    LatencyBreakdown m;
    if (count == 0)
        return m;
    m.flashMem = sum.flashMem / count;
    m.flashBus = sum.flashBus / count;
    m.systemBus = sum.systemBus / count;
    m.dram = sum.dram / count;
    m.ecc = sum.ecc / count;
    m.noc = sum.noc / count;
    m.other = sum.other / count;
    return m;
}

Ssd::Ssd(Engine &engine, const SsdConfig &config)
    : _engine(engine), _config(config), _rng(config.seed)
{
    _config.geom.validate();

    _busRecorder =
        std::make_unique<UtilizationRecorder>(_config.statWindow);
    _systemBus = std::make_unique<SystemBus>(
        engine, _config.effectiveSystemBusBandwidth());
    _systemBus->attachRecorder(_busRecorder.get());
    _dram = std::make_unique<Dram>(engine, _config.dramBandwidth);

    _channels.reserve(_config.geom.channels);
    for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
        _channels.push_back(std::make_unique<FlashChannel>(
            engine, _config.geom, _config.timing, ch, _config.channel));
    }

    if (isDecoupled(_config.arch)) {
        DecoupledParams dp = _config.decoupled;
        dp.ecc = _config.ecc;
        _decoupled.reserve(_config.geom.channels);
        for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
            _decoupled.push_back(std::make_unique<DecoupledController>(
                engine, *_channels[ch], dp));
        }
        switch (_config.arch) {
          case ArchKind::DSSD:
            _interconnect =
                std::make_unique<SystemBusInterconnect>(*_systemBus);
            break;
          case ArchKind::DSSDBus:
            _interconnect = std::make_unique<DedicatedBusInterconnect>(
                engine, _config.interconnectBandwidth());
            break;
          case ArchKind::DSSDNoc: {
            auto topo =
                makeTopology(_config.nocTopology, _config.geom.channels);
            NocParams np = _config.noc;
            if (!_config.nocExplicitBandwidth) {
                np.linkBandwidth = _config.interconnectBandwidth() /
                                   topo->bisectionLinks();
            }
            auto noc = std::make_unique<NocNetwork>(engine,
                                                    std::move(topo), np);
            _noc = noc.get();
            _interconnect = std::move(noc);
            break;
          }
          default:
            panic("decoupled arch without interconnect mapping");
        }
        for (unsigned ch = 0; ch < _config.geom.channels; ++ch)
            _decoupled[ch]->setInterconnect(_interconnect.get(), ch);
    } else {
        for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
            _frontEcc.push_back(std::make_unique<EccEngine>(
                engine, strformat("front-ecc-ch%u", ch), _config.ecc));
        }
    }

    MappingParams mp;
    mp.geom = _config.geom;
    mp.overProvision = _config.overProvision;
    mp.gcFreeBlockThreshold = _config.gcFreeBlockThreshold;
    mp.gcFreeBlockTarget = _config.gcFreeBlockTarget;
    _mapping = std::make_unique<PageMapping>(mp);

    _writeBuffer = std::make_unique<WriteBuffer>(_config.writeBuffer);
    _gc = std::make_unique<GcEngine>(*this, _config.gc);

    if (_config.fault.enabled) {
        _fault =
            std::make_unique<FaultModel>(_config.geom, _config.fault);
        _fault->setSink([this](const PhysAddr &a, FaultKind k) {
            handleBlockFault(a, k);
        });

        std::uint32_t blocks_per_channel =
            _config.geom.ways * _config.geom.diesPerWay *
            _config.geom.planesPerDie * _config.geom.blocksPerPlane;
        _faultedBlocks.resize(_config.geom.channels);
        for (auto &v : _faultedBlocks)
            v.assign(blocks_per_channel, false);

        for (auto &ch : _channels)
            ch->setFaultModel(_fault.get());
        if (_noc)
            _noc->setFaultModel(_fault.get());
        for (auto &dc : _decoupled) {
            dc->setFaultModel(_fault.get());
            dc->setCopybackFallback(
                [this](const PhysAddr &src, const PhysAddr &dst,
                       int tag, LatencyBreakdown *bd, Callback done) {
                copybackFallback(src, dst, tag, bd, std::move(done));
            });
        }

        // Pre-seed each decoupled controller's RBT with spare blocks
        // pulled out of FTL visibility, so runtime hardware repair has
        // material to work with (the RESERV idea applied to bad-block
        // management).
        if (!_decoupled.empty()) {
            for (unsigned ch = 0; ch < _config.geom.channels; ++ch) {
                for (unsigned i = 0;
                     i < _config.fault.rbtSparesPerChannel; ++i) {
                    PhysAddr a;
                    a.channel = ch;
                    a.way = 0;
                    a.die = 0;
                    a.plane = i % _config.geom.planesPerDie;
                    a.block = _config.geom.blocksPerPlane - 1 -
                              i / _config.geom.planesPerDie;
                    _mapping->retireBlock(_mapping->unitOf(a), a.block);
                    _decoupled[ch]->rbt().add(
                        channelBlockId(_config.geom, a));
                }
            }
        }
    }

#ifdef DSSD_AUDIT
    // Debug-gated invariant auditing: cross-check the model every N
    // executed events and abort on the first violation. The interval
    // trades detection latency against audit cost (each run walks the
    // whole mapping).
    _auditor = std::make_unique<Auditor>(AuditMode::Abort);
    registerAudits(*_auditor);
    std::uint64_t every = 65536;
    // Read-only env probe at construction; nothing in the simulator
    // calls setenv, so the mt-unsafe concern does not apply.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("DSSD_AUDIT_EVERY"))
        every = std::strtoull(env, nullptr, 10);
    if (every != 0)
        _auditor->attach(_engine, every);
#endif
}

Ssd::~Ssd() = default;

void
Ssd::registerAudits(Auditor &auditor)
{
    auditor.addCheck("ftl.mapping", [this](AuditReport &r) {
        _mapping->audit(r);
    });
    auditor.addCheck("ftl.writebuffer", [this](AuditReport &r) {
        _writeBuffer->audit(r);
    });
    for (auto &dc : _decoupled) {
        auditor.addCheck(
            strformat("controller.ch%u", dc->channel().channelId()),
            [c = dc.get()](AuditReport &r) { c->audit(r); });
    }
    if (_noc) {
        auditor.addCheck("noc.network", [n = _noc](AuditReport &r) {
            n->audit(r);
        });
    }
}

void
Ssd::traceWriteBufferOccupancy()
{
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        if (_wbufTracePid < 0)
            _wbufTracePid = tr->process("occupancy");
        tr->counter(_wbufTracePid, "write-buffer", _engine.now(),
                    static_cast<double>(_writeBuffer->occupancy()));
    }
#endif
}

void
Ssd::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addScalar(prefix + ".host.reads", [this] {
        return static_cast<double>(_hostReads);
    });
    reg.addScalar(prefix + ".host.writes", [this] {
        return static_cast<double>(_hostWritesOps);
    });
    reg.addScalar(prefix + ".host.flushed_pages", [this] {
        return static_cast<double>(_flushedPages);
    });
    reg.addScalar(prefix + ".host.outstanding", [this] {
        return static_cast<double>(_ioOutstanding);
    });

    _writeBuffer->registerStats(reg, prefix + ".wbuf");
    _systemBus->registerStats(reg, prefix + ".sysbus");
    _dram->registerStats(reg, prefix + ".dram");

    for (std::size_t ch = 0; ch < _channels.size(); ++ch) {
        std::string chp = prefix + strformat(".ch%zu", ch);
        _channels[ch]->registerStats(reg, chp);
        if (ch < _decoupled.size())
            _decoupled[ch]->registerStats(reg, chp + ".cd");
    }
    for (std::size_t ch = 0; ch < _frontEcc.size(); ++ch) {
        _frontEcc[ch]->registerStats(
            reg, prefix + strformat(".ch%zu.front_ecc", ch));
    }

    _gc->registerStats(reg, prefix + ".gc");
    if (_noc)
        _noc->registerStats(reg, prefix + ".noc");

    if (_fault) {
        _fault->registerStats(reg, prefix + ".fault");
        reg.addScalar(prefix + ".fault.repairs", [this] {
            return static_cast<double>(_blocksRepaired);
        });
        reg.addScalar(prefix + ".fault.retirements", [this] {
            return static_cast<double>(_blocksRetired);
        });
        reg.addScalar(prefix + ".fault.repair_pages", [this] {
            return static_cast<double>(_repairPagesCopied);
        });
        reg.addScalar(prefix + ".fault.retire_pages", [this] {
            return static_cast<double>(_retirePagesCopied);
        });
        reg.addScalar(prefix + ".fault.copyback_fallbacks", [this] {
            return static_cast<double>(_cbFallbacks);
        });
        reg.addScalar(prefix + ".fault.remaps", [this] {
            return static_cast<double>(_remapEvents);
        });
    }
}

FlashChannel &
Ssd::channel(unsigned ch)
{
    if (ch >= _channels.size())
        panic("channel %u out of range", ch);
    return *_channels[ch];
}

unsigned
Ssd::channelCount() const
{
    return static_cast<unsigned>(_channels.size());
}

DecoupledController *
Ssd::decoupledController(unsigned ch)
{
    if (!isDecoupled(_config.arch))
        return nullptr;
    if (ch >= _decoupled.size())
        panic("channel %u out of range", ch);
    return _decoupled[ch].get();
}

void
Ssd::prefill(double fill_fraction, double invalid_fraction)
{
    _mapping->prefill(fill_fraction, invalid_fraction, _rng);
}

PhysAddr
Ssd::resolve(const PhysAddr &addr) const
{
    if (!isDecoupled(_config.arch) || !_config.applySrtRemap)
        return addr;
    return _decoupled[addr.channel]->remap(addr);
}

void
Ssd::submit(const IoRequest &req, Callback done)
{
    std::uint64_t page = _config.geom.pageBytes;
    Lpn first = req.offset / page;
    std::uint64_t end = req.offset + std::max<std::uint64_t>(req.bytes, 1);
    std::uint64_t pages = (end + page - 1) / page - first;
    Lpn lpn_count = _mapping->lpnCount();

    auto remaining = std::make_shared<std::uint64_t>(pages);
    auto page_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };

    // Firmware (FTL request handling) is charged once per request.
    _engine.schedule(_config.firmwareLatency,
                     [this, req, first, pages, lpn_count, page_done] {
        for (std::uint64_t i = 0; i < pages; ++i) {
            Lpn lpn = (first + i) % lpn_count;
            if (req.isRead())
                readPage(lpn, page_done);
            else
                writePage(lpn, page_done);
        }
    });
}

void
Ssd::readPage(Lpn lpn, Callback done)
{
    ++_ioOutstanding;
    ++_hostReads;
    readPageInternal(lpn, std::move(done));
}

void
Ssd::writePage(Lpn lpn, Callback done)
{
    ++_ioOutstanding;
    ++_hostWritesOps;
    writePageInternal(lpn, std::move(done));
}

void
Ssd::readPageInternal(Lpn lpn, Callback done)
{
    auto bd = std::make_shared<LatencyBreakdown>();
    auto finish = [this, bd, cb = std::move(done)] {
        _ioBreakdown.add(*bd);
        --_ioOutstanding;
        cb();
    };

    std::uint64_t page = _config.geom.pageBytes;
    bool hit = _writeBuffer->readHit(lpn);
    _writeBuffer->recordProbe(hit);

    if (hit) {
        // Buffer-cache hit: DRAM port then system bus, no flash.
        Tick t0 = _engine.now();
        _dram->port().transfer(page, tagIo, [this, page, bd, t0, finish] {
            bdSpanClose(_engine, bd.get(), bdDram, t0);
            Tick t1 = _engine.now();
            _systemBus->channel().transfer(page, tagIo,
                                           [this, bd, t1, finish] {
                bdSpanClose(_engine, bd.get(), bdSystemBus, t1);
                finish();
            });
        });
        return;
    }

    auto ppn = _mapping->translate(lpn);
    if (!ppn) {
        // Unwritten logical page: served as zeroes by the firmware.
        _engine.schedule(0, finish);
        return;
    }
    PhysAddr addr = resolve(_config.geom.pageAddr(*ppn));
    unsigned ch = addr.channel;

    _channels[ch]->read(addr, 1, tagIo, [this, ch, addr, page, bd,
                                         finish] {
        // Error check (the full recovery ladder under faults), then
        // cross the system bus to the host.
        EccEngine &ecc = isDecoupled(_config.arch)
                             ? _decoupled[ch]->ecc()
                             : *_frontEcc[ch];
        runReadRecovery(
            _engine, ecc, _fault.get(), addr, page, tagIo, bd.get(),
            [this, ch, addr, bd](Callback rr) {
                _channels[ch]->read(addr, 1, tagIo, std::move(rr),
                                    bd.get());
            },
            [this, addr, page, bd, finish](ReadSeverity sev) {
                if (sev == ReadSeverity::Uncorrectable) {
                    // The firmware recovers what it can and escalates
                    // the block; the host request still completes.
                    _fault->reportBlockFault(
                        addr, FaultKind::UncorrectableRead);
                }
                Tick t1 = _engine.now();
                _systemBus->channel().transfer(page, tagIo,
                                               [this, bd, t1, finish] {
                    bdSpanClose(_engine, bd.get(), bdSystemBus, t1);
                    finish();
                });
            });
    }, bd.get());
}

void
Ssd::writePageInternal(Lpn lpn, Callback done)
{
    auto bd = std::make_shared<LatencyBreakdown>();
    auto finish = [this, bd, cb = std::move(done)] {
        _ioBreakdown.add(*bd);
        --_ioOutstanding;
        cb();
    };

    if (_writeBuffer->mode() != BufferMode::AlwaysMiss) {
        bufferedWrite(lpn, bd, std::move(finish));
        return;
    }

    // Direct (write-through) path: allocate, cross the bus, program.
    // Under heavy write bursts the free pool can be momentarily
    // exhausted; stall the write until GC reclaims a block (this is
    // exactly the blocking behind the paper's I/O-bandwidth dips).
    retryDirectWrite(lpn, bd, finish);
}

void
Ssd::bufferedWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                   Callback finish)
{
    // Buffered write: host -> system bus -> DRAM, then ack. Flash
    // programs happen lazily in the flush path. When the buffer is
    // full the host write stalls until the flusher drains — write-
    // cache backpressure is what turns flash/GC slowness into
    // host-visible latency.
    if (_writeBuffer->mode() == BufferMode::Real &&
        _writeBuffer->occupancy() >= _writeBuffer->capacity() &&
        !_writeBuffer->readHit(lpn)) {
        bd->other += usToTicks(2);
        if (bd->other > tickSec)
            panic("buffered write stalled >1s: flush path wedged");
        _engine.schedule(usToTicks(2), [this, lpn, bd, finish] {
            bufferedWrite(lpn, bd, finish);
        });
        maybeStartFlush();
        return;
    }

    std::uint64_t page = _config.geom.pageBytes;
    Tick t0 = _engine.now();
    _systemBus->channel().transfer(page, tagIo,
                                   [this, lpn, page, bd, t0, finish] {
        bdSpanClose(_engine, bd.get(), bdSystemBus, t0);
        Tick t1 = _engine.now();
        _dram->port().transfer(page, tagIo, [this, lpn, bd, t1, finish] {
            bdSpanClose(_engine, bd.get(), bdDram, t1);
            _writeBuffer->insert(lpn);
            traceWriteBufferOccupancy();
            finish();
            maybeStartFlush();
        });
    });
}

void
Ssd::retryDirectWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                      Callback finish)
{
    if (!_mapping->hostCanAllocate()) {
        bd->other += usToTicks(2);
        if (bd->other > tickSec)
            panic("host write stalled >1s: device full and GC cannot "
                  "reclaim space");
        _engine.schedule(usToTicks(2), [this, lpn, bd, finish] {
            retryDirectWrite(lpn, bd, finish);
        });
        return;
    }
    directWrite(lpn, bd, std::move(finish));
}

void
Ssd::directWrite(Lpn lpn, std::shared_ptr<LatencyBreakdown> bd,
                 Callback finish)
{
    std::uint64_t page = _config.geom.pageBytes;
    PhysAddr addr = _mapping->allocate(lpn);
    std::uint32_t unit = _mapping->unitOf(addr);
    PhysAddr target = resolve(addr);
    Tick t0 = _engine.now();
    _systemBus->channel().transfer(page, tagIo,
                                   [this, target, bd, t0,
                                    finish = std::move(finish)] {
        bdSpanClose(_engine, bd.get(), bdSystemBus, t0);
        _channels[target.channel]->program(target, 1, tagIo, finish,
                                           bd.get());
    });
    _gc->noteAllocation(unit);
}

void
Ssd::maybeStartFlush()
{
    if (_writeBuffer->mode() != BufferMode::Real)
        return;
    if (_flushActive || !_writeBuffer->flushNeeded())
        return;
    _flushActive = true;
    flushPump();
}

void
Ssd::flushPump()
{
    while (_flushInFlight < _config.flushInFlight) {
        if (_writeBuffer->flushSatisfied())
            break;
        auto batch = _writeBuffer->drainForFlush(1);
        if (batch.empty())
            break;
        traceWriteBufferOccupancy();
        ++_flushInFlight;
        flushOne(batch.front(), [this] {
            --_flushInFlight;
            ++_flushedPages;
            flushPump();
        });
    }
    if (_flushInFlight == 0)
        _flushActive = false;
}

void
Ssd::flushOne(Lpn lpn, Callback done)
{
    if (!_mapping->hostCanAllocate()) {
        // Free pool exhausted: hold this flush until GC reclaims.
        _engine.schedule(usToTicks(2),
                         [this, lpn, done = std::move(done)]() mutable {
            flushOne(lpn, std::move(done));
        });
        return;
    }
    std::uint64_t page = _config.geom.pageBytes;
    PhysAddr addr = _mapping->allocate(lpn);
    std::uint32_t unit = _mapping->unitOf(addr);
    PhysAddr target = resolve(addr);

    // Write-back: DRAM read -> system bus -> flash program.
    _dram->port().transfer(page, tagIo,
                           [this, page, target, done = std::move(done)]()
                               mutable {
        _systemBus->channel().transfer(page, tagIo,
                                       [this, target,
                                        done = std::move(done)]() mutable {
            _channels[target.channel]->program(target, 1, tagIo,
                                               std::move(done));
        });
    });
    _gc->noteAllocation(unit);
}

void
Ssd::gcCopyPage(const PhysAddr &src, const PhysAddr &dst, Callback done)
{
    auto bd = std::make_shared<LatencyBreakdown>();
    auto finish = [this, bd, cb = std::move(done)] {
        _cbBreakdown.add(*bd);
        cb();
    };

    std::uint64_t page = _config.geom.pageBytes;

    if (isDecoupled(_config.arch)) {
        DecoupledController *sc = _decoupled[src.channel].get();
        DecoupledController *dc = _decoupled[dst.channel].get();
        sc->globalCopyback(src, dst, dc, tagGc, finish, bd.get());
        return;
    }

    // Conventional path (Fig 1): read -> ECC -> system bus -> DRAM,
    // then the FTL issues the write: DRAM -> system bus -> program.
    unsigned sch = src.channel;
    _channels[sch]->read(src, 1, tagGc, [this, sch, src, page, dst, bd,
                                         finish] {
        runReadRecovery(
            _engine, *_frontEcc[sch], _fault.get(), src, page, tagGc,
            bd.get(),
            [this, sch, src, bd](Callback rr) {
                _channels[sch]->read(src, 1, tagGc, std::move(rr),
                                     bd.get());
            },
            [this, src, page, dst, bd, finish](ReadSeverity sev) {
            if (sev == ReadSeverity::Uncorrectable) {
                // Salvage what the firmware can and escalate; the copy
                // itself still lands so GC forward progress holds.
                _fault->reportBlockFault(src,
                                         FaultKind::UncorrectableRead);
            }
            Tick t1 = _engine.now();
            _systemBus->channel().transfer(page, tagGc,
                                           [this, page, dst, bd, t1,
                                            finish] {
                bdSpanClose(_engine, bd.get(), bdSystemBus, t1);
                Tick t2 = _engine.now();
                _dram->port().transfer(page, tagGc,
                                       [this, page, dst, bd, t2, finish] {
                    bdSpanClose(_engine, bd.get(), bdDram, t2);
                    Tick fw0 = _engine.now();
                    bdSpanCloseAt(_engine, bd.get(), bdOther, fw0,
                                  fw0 + _config.gcFirmwareLatency);
                    _engine.schedule(_config.gcFirmwareLatency,
                                     [this, page, dst, bd, finish] {
                        Tick t3 = _engine.now();
                        _dram->port().transfer(page, tagGc,
                                               [this, page, dst, bd, t3,
                                                finish] {
                            bdSpanClose(_engine, bd.get(), bdDram, t3);
                            Tick t4 = _engine.now();
                            _systemBus->channel().transfer(
                                page, tagGc,
                                [this, dst, bd, t4, finish] {
                                bdSpanClose(_engine, bd.get(),
                                            bdSystemBus, t4);
                                _channels[dst.channel]->program(
                                    dst, 1, tagGc, finish, bd.get());
                            });
                        });
                    });
                });
            });
        });
    }, bd.get());
}

void
Ssd::gcEraseBlock(std::uint32_t unit, std::uint32_t block, Callback done)
{
    PhysAddr addr = _mapping->unitBlockAddr(unit, block);
    PhysAddr target = resolve(addr);
    _channels[target.channel]->erase(target, tagGc, std::move(done));
}

void
Ssd::handleBlockFault(const PhysAddr &addr, FaultKind kind)
{
    if (_faultSink) {
        // A DSM engine owns failure handling while attached.
        _faultSink->onBlockFault(addr, kind);
        return;
    }
    // Escalate each physical block once: program retries and repeated
    // uncorrectable reads keep reporting the same block while its
    // repair/retirement is already under way.
    ChannelBlockId id = channelBlockId(_config.geom, addr);
    if (_faultedBlocks[addr.channel][id])
        return;
    _faultedBlocks[addr.channel][id] = true;

    if (isDecoupled(_config.arch) && tryHardwareRepair(addr)) {
        ++_blocksRepaired;
        return;
    }
    ++_blocksRetired;
    retireBlockFrontEnd(addr);
}

bool
Ssd::tryHardwareRepair(const PhysAddr &addr)
{
    DecoupledController *dc = _decoupled[addr.channel].get();
    const FlashGeometry &g = _config.geom;
    ChannelBlockId phys = channelBlockId(g, addr);

    // The faulted block may itself be a remap target; the SRT entry to
    // rewrite is the FTL-visible source id behind it.
    ChannelBlockId from = phys;
    bool was_remapped = false;
    for (const auto &entry : dc->srt().entriesSorted()) {
        if (entry.second == phys) {
            from = entry.first;
            was_remapped = true;
            break;
        }
    }
    if (!was_remapped && dc->srt().full())
        return false;

    // Take a spare that has not itself faulted.
    ChannelBlockId spare = 0;
    bool found = false;
    while (!dc->rbt().empty()) {
        spare = dc->rbt().take();
        if (!_faultedBlocks[addr.channel][spare]) {
            found = true;
            break;
        }
    }
    if (!found)
        return false;

    // Relocate the failing block's pages into the spare with
    // same-channel global copybacks; the SRT entry activates once the
    // data has moved. The FTL never learns anything happened.
    PhysAddr src_base = channelBlockAddr(g, addr.channel, phys);
    PhysAddr dst_base = channelBlockAddr(g, addr.channel, spare);
    std::uint32_t pages = g.pagesPerBlock;
    _repairPagesCopied += pages;

    auto remaining = std::make_shared<std::uint32_t>(pages);
    for (std::uint32_t p = 0; p < pages; ++p) {
        PhysAddr s = src_base;
        s.page = p;
        PhysAddr d = dst_base;
        d.page = p;
        dc->globalCopyback(s, d, nullptr, tagGc,
                           [this, dc, from, spare, was_remapped,
                            remaining] {
            if (--*remaining != 0)
                return;
            if (was_remapped)
                dc->srt().erase(from);
            if (!dc->srt().insert(from, spare))
                panic("SRT insert failed after capacity check");
            ++_remapEvents;
        });
    }
    return true;
}

void
Ssd::retireBlockFrontEnd(const PhysAddr &addr)
{
    // Conventional bad-block management: find the FTL-visible block
    // (undoing any SRT remapping), retire it, and relocate its valid
    // pages over the timed GC datapath.
    const FlashGeometry &g = _config.geom;
    PhysAddr logical = addr;
    if (isDecoupled(_config.arch)) {
        ChannelBlockId phys = channelBlockId(g, addr);
        for (const auto &entry :
             _decoupled[addr.channel]->srt().entriesSorted()) {
            if (entry.second == phys) {
                logical = channelBlockAddr(g, addr.channel, entry.first);
                break;
            }
        }
    }
    std::uint32_t unit = _mapping->unitOf(logical);
    std::uint32_t block = logical.block;
    if (_mapping->blockState(unit, block).isBad)
        return; // already out of FTL circulation (e.g. an RBT spare)

    auto lpns = std::make_shared<std::vector<Lpn>>(
        _mapping->validLpns(unit, block));
    _mapping->retireBlock(unit, block);
    relocateRetired(lpns, 0, unit, block);
}

void
Ssd::relocateRetired(std::shared_ptr<std::vector<Lpn>> lpns,
                     std::size_t idx, std::uint32_t unit,
                     std::uint32_t block)
{
    PageMapping &map = *_mapping;
    while (idx < lpns->size()) {
        // Skip pages the host rewrote since the retirement snapshot.
        Lpn lpn = (*lpns)[idx];
        auto ppn = map.translate(lpn);
        if (!ppn) {
            ++idx;
            continue;
        }
        PhysAddr src = map.geometry().pageAddr(*ppn);
        if (map.unitOf(src) != unit || src.block != block) {
            ++idx;
            continue;
        }
        // Round-robin over units with room; wait for GC if none.
        std::uint32_t n = map.unitCount();
        std::uint32_t dst_unit = n;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t cand = _faultDstCursor;
            _faultDstCursor = (_faultDstCursor + 1) % n;
            if (map.canAllocate(cand)) {
                dst_unit = cand;
                break;
            }
        }
        if (dst_unit == n) {
            _engine.schedule(usToTicks(2),
                             [this, lpns, idx, unit, block] {
                relocateRetired(lpns, idx, unit, block);
            });
            return;
        }
        PhysAddr dst = map.allocateInUnit(lpn, dst_unit);
        ++_retirePagesCopied;
        gcCopyPage(src, dst, [this, lpns, idx, unit, block, lpn, dst] {
            _mapping->commitRelocation(lpn, dst);
            relocateRetired(lpns, idx + 1, unit, block);
        });
        return;
    }
}

void
Ssd::copybackFallback(const PhysAddr &src, const PhysAddr &dst, int tag,
                      LatencyBreakdown *bd, Callback done)
{
    // Last-resort recovery of a copyback page the channel ECC could
    // not correct: re-read the die, force the page through the slow
    // soft decoder with firmware assistance, then route it the
    // conventional way — system bus, DRAM, FTL firmware, and back out
    // to the destination program. Expensive by design: this is the
    // cost a decoupled copyback pays when it trips over a bad page.
    ++_cbFallbacks;
    std::uint64_t page = _config.geom.pageBytes;
#if DSSD_TRACING
    std::uint64_t span_id = _cbFallbacks;
    Tracer *tr = _engine.tracer();
    if (tr) {
        tr->asyncBegin(tr->process("fault"), "fault", "fallback",
                       span_id, _engine.now());
    }
    auto trace_end = [this, span_id] {
        Tracer *etr = _engine.tracer();
        if (etr) {
            etr->asyncEnd(etr->process("fault"), "fault", "fallback",
                          span_id, _engine.now());
        }
    };
#else
    auto trace_end = [] {};
#endif

    DecoupledController *dc = _decoupled[src.channel].get();
    _channels[src.channel]->read(src, 1, tag,
                                 [this, dc, page, dst, tag, bd, done,
                                  trace_end] {
        Tick t0 = _engine.now();
        dc->ecc().processSoft(page, tag, [this, page, dst, tag, bd, t0,
                                          done, trace_end] {
            bdSpanClose(_engine, bd, bdEcc, t0);
            Tick t1 = _engine.now();
            _systemBus->channel().transfer(page, tag,
                                           [this, page, dst, tag, bd,
                                            t1, done, trace_end] {
                bdSpanClose(_engine, bd, bdSystemBus, t1);
                Tick t2 = _engine.now();
                _dram->port().transfer(page, tag,
                                       [this, page, dst, tag, bd, t2,
                                        done, trace_end] {
                    bdSpanClose(_engine, bd, bdDram, t2);
                    Tick fw0 = _engine.now();
                    bdSpanCloseAt(_engine, bd, bdOther, fw0,
                                  fw0 + _config.gcFirmwareLatency);
                    _engine.schedule(_config.gcFirmwareLatency,
                                     [this, page, dst, tag, bd, done,
                                      trace_end] {
                        Tick t3 = _engine.now();
                        _dram->port().transfer(page, tag,
                                               [this, page, dst, tag,
                                                bd, t3, done,
                                                trace_end] {
                            bdSpanClose(_engine, bd, bdDram, t3);
                            Tick t4 = _engine.now();
                            _systemBus->channel().transfer(
                                page, tag,
                                [this, dst, tag, bd, t4, done,
                                 trace_end] {
                                bdSpanClose(_engine, bd, bdSystemBus,
                                            t4);
                                _channels[dst.channel]->program(
                                    dst, 1, tag, [done, trace_end] {
                                    trace_end();
                                    done();
                                }, bd);
                            });
                        });
                    });
                });
            });
        });
    }, bd);
}

} // namespace dssd
