#include "core/datapath.hh"

#include <utility>

#include "core/datapath_decoupled.hh"
#include "core/datapath_frontend.hh"
#include "fault/fault.hh"

namespace dssd
{

void
Datapath::hostReadMiss(const PhysAddr &addr,
                       std::shared_ptr<LatencyBreakdown> bd, Callback done)
{
    std::uint64_t page = _env.config.geom.pageBytes;
    unsigned ch = addr.channel;

    _env.channels[ch]->read(addr, 1, tagIo, [this, ch, addr, page, bd,
                                             done] {
        // Error check (the full recovery ladder under faults), then
        // cross the system bus to the host.
        EccEngine &ecc = eccFor(ch);
        runReadRecovery(
            _env.engine, ecc, _fault, addr, page, tagIo, bd.get(),
            [this, ch, addr, bd](Callback rr) {
                _env.channels[ch]->read(addr, 1, tagIo, std::move(rr),
                                        bd.get());
            },
            [this, addr, page, bd, done](ReadSeverity sev) {
                if (sev == ReadSeverity::Uncorrectable) {
                    // The firmware recovers what it can and escalates
                    // the block; the host request still completes.
                    _fault->reportBlockFault(
                        addr, FaultKind::UncorrectableRead);
                }
                Tick t1 = _env.engine.now();
                _env.systemBus.channel().transfer(page, tagIo,
                                                  [this, bd, t1, done] {
                    bdSpanClose(_env.engine, bd.get(), bdSystemBus, t1);
                    done();
                });
            });
    }, bd.get());
}

std::unique_ptr<Datapath>
makeDatapath(const DatapathEnv &env)
{
    if (isDecoupled(env.config.arch))
        return std::make_unique<DecoupledDatapath>(env);
    return std::make_unique<FrontEndDatapath>(env);
}

} // namespace dssd
