/**
 * @file
 * Sharded SSD array front-end.
 *
 * Scales the decoupled architecture out the way the paper's Fig 18
 * projection does: N independent Ssd shards, each with its own FTL,
 * write buffer, GC, and (on the dSSD family) decoupled controllers and
 * interconnect, behind one logical LPN space. The array only splits
 * and fans out host requests and aggregates statistics; nothing is
 * shared between shards, so host bandwidth scales with the shard count
 * until the workload itself serializes.
 *
 * Two sharding functions:
 *  - Modulo (default): lpn % N picks the shard; striping spreads any
 *    contiguous host range across all shards;
 *  - Range: the LPN space is cut into N contiguous extents; locality
 *    stays within one shard.
 *
 * Two execution modes, selected by SsdArrayParams::engineThreads:
 *  - 0 (legacy): every shard shares the caller's engine; the caller
 *    drives that engine directly (run()/runUntil()). Fan-out is an
 *    ordinary event at +firmwareLatency.
 *  - >= 1 (engine group): each shard owns a private Engine inside a
 *    conservatively-synchronized EngineGroup (sim/engine_group.hh);
 *    fan-out becomes cross-engine message posting with the firmware
 *    latency as the lookahead, and completions merge back into the
 *    host engine deterministically. The caller must drive the array
 *    through SsdArray::run()/runUntil() so the group's epoch protocol
 *    runs; 1 is the serial reference and any higher count is
 *    bit-identical to it by construction. In this mode the
 *    page-granular readPage/writePage also charge the firmware
 *    fan-out latency (the group's lookahead floor). A tracer
 *    attached to the host engine before construction is propagated
 *    to the shard engines through per-shard buffered Tracers that
 *    the group drains at every epoch barrier (EngineGroup::
 *    attachTracer), so --trace works for any worker count and the
 *    trace file is byte-identical across counts.
 *
 * Array GC coordination (core/array_gc.hh): with any policy other
 * than Uncoordinated — or whenever parity is on — the array installs
 * GcCoordinationHooks on every shard's GcEngine and arbitrates
 * collection grants on the host engine. Legacy mode then charges the
 * same firmware latency on the grant/force paths that group mode pays
 * through postToShard, so the coordinated schedule is identical for
 * engineThreads 0 and >= 1.
 *
 * Parity (params.parity, Modulo sharding, N >= 2 shards): RAID-5
 * style rotating parity. Stripe g holds one page at local LPN g on
 * every shard; shard g % N stores the stripe's parity page and the
 * other N-1 shards store data, so the host-visible LPN space shrinks
 * to (N-1)/N of the raw capacity. Every data write also issues a
 * parity update to the stripe's parity shard (the stolen-bandwidth
 * cost) and completes only when both land. While a shard holds a GC
 * grant, reads targeting it are served degraded: the N-1 peer pages
 * of the stripe are read instead and the data is reconstructed,
 * trading one busy-shard access for a fan-out over idle shards.
 */

#ifndef DSSD_CORE_ARRAY_HH
#define DSSD_CORE_ARRAY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/array_gc.hh"
#include "core/ssd.hh"
#include "sim/engine_group.hh"

namespace dssd
{

/** How the array's LPN space maps onto shards. */
enum class ShardingKind
{
    Modulo, ///< lpn % N (striped)
    Range,  ///< contiguous extents (partitioned)
};

struct SsdArrayParams
{
    unsigned shards = 1;
    ShardingKind sharding = ShardingKind::Modulo;
    /**
     * 0: all shards share the caller's engine (legacy serial mode).
     * >= 1: per-shard engines under an EngineGroup, with this many
     * worker threads running the shard phases (clamped to the shard
     * count; 1 keeps everything on the calling thread).
     */
    unsigned engineThreads = 0;
    /** Array-level GC scheduling (see core/array_gc.hh). */
    ArrayGcParams gc;
    /** Rotating-parity striping + degraded reads (Modulo, N >= 2). */
    bool parity = false;
};

/** N independent Ssd shards behind one logical LPN space. */
class SsdArray
{
  public:
    using Callback = Engine::Callback;

    /**
     * Build @p params.shards copies of @p config; shard s seeds its
     * RNG with config.seed + s so prefill layouts decorrelate.
     */
    SsdArray(Engine &engine, const SsdConfig &config,
             const SsdArrayParams &params);
    ~SsdArray();

    SsdArray(const SsdArray &) = delete;
    SsdArray &operator=(const SsdArray &) = delete;

    /** Split a host request across shards; @p done fires when every
     *  page of every shard completes. */
    void submit(const IoRequest &req, Callback done);

    /** Page-granularity host read of a global LPN. */
    void readPage(Lpn lpn, Callback done);

    /** Page-granularity host write of a global LPN. */
    void writePage(Lpn lpn, Callback done);

    /** Prefill every shard (see Ssd::prefill). */
    void prefill(double fill_fraction, double invalid_fraction);

    /** Force GC of @p victims_per_unit blocks on every unit of every
     *  shard; @p done fires when all shards finish. */
    void forceAllGc(unsigned victims_per_unit, Callback done);

    Engine &engine() { return _engine; }
    const SsdConfig &config() const { return _shards.front()->config(); }
    const SsdArrayParams &params() const { return _params; }

    /** The engine group, or null in legacy shared-engine mode. */
    EngineGroup *engineGroup() { return _group.get(); }

    /**
     * Drive the simulation to @p until: the group's epoch protocol
     * when one exists, otherwise the shared engine directly. Use these
     * instead of touching engine() so the same driver code works in
     * both modes.
     */
    void runUntil(Tick until);

    /** Drive the simulation until no work remains anywhere. */
    void run();

    unsigned shardCount() const
    {
        return static_cast<unsigned>(_shards.size());
    }
    Ssd &shard(unsigned s) { return *_shards[s]; }
    const Ssd &shard(unsigned s) const { return *_shards[s]; }

    /** Total host-visible logical pages across the array ((N-1)/N of
     *  the raw capacity when parity is on). */
    Lpn lpnCount() const;

    /** The shard serving global @p lpn (the data shard with parity). */
    unsigned shardOf(Lpn lpn) const;
    /** @p lpn translated into its shard's local LPN space (the stripe
     *  index when parity is on). */
    Lpn localLpn(Lpn lpn) const;

    /** The stripe global @p lpn belongs to (parity mode). */
    Lpn stripeOf(Lpn lpn) const;
    /** The shard holding stripe @p stripe's parity page. */
    unsigned parityShardOf(Lpn stripe) const
    {
        return static_cast<unsigned>(stripe % _shards.size());
    }

    /** The grant arbiter, or null when the array is uncoordinated. */
    ArrayGcScheduler *gcScheduler() { return _gcSched.get(); }

    bool parityEnabled() const { return _params.parity; }
    std::uint64_t degradedReads() const { return _degradedReads; }
    std::uint64_t reconstructionReads() const { return _reconReads; }
    std::uint64_t parityWrites() const { return _parityWrites; }
    std::uint64_t parityWritesInFlight() const
    {
        return _parityInFlight;
    }

    //
    // Aggregates over all shards.
    //

    std::uint64_t hostReads() const;
    std::uint64_t hostWrites() const;
    std::uint64_t flushedPages() const;
    unsigned ioOutstanding() const;
    std::uint64_t gcPagesMoved() const;
    /** Earliest firstGcStart across shards (maxTick if GC never ran). */
    Tick gcFirstStart() const;
    /** Latest lastGcEnd across shards (0 if GC never ran). */
    Tick gcLastEnd() const;
    BreakdownStats ioBreakdown() const;
    BreakdownStats copybackBreakdown() const;

    /**
     * Register array-level host aggregates under @p prefix plus every
     * shard's full stats under @p prefix + ".shardN". The registry
     * borrows; it must not outlive this array.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /** Register every shard's invariant checks, named "shardN.<check>",
     *  plus the array's parity-group consistency check when parity is
     *  on. The auditor must not outlive this array. */
    void registerAudits(Auditor &auditor);

  private:
    /** Whether the GC scheduler + coordination hooks are installed. */
    bool coordinated() const { return _gcSched != nullptr; }

    /** Install the scheduler and per-shard GcCoordinationHooks. */
    void installCoordination();

    /** Send a grant to shard @p s (postToShard in group mode, a
     *  firmware-latency event in legacy mode — same charge). */
    void deliverGrant(unsigned s);

    /** Cross into shard @p s and read/write local @p lpn, paying the
     *  firmware fan-out latency in both modes; @p done runs host-side. */
    void dispatchRead(unsigned s, Lpn lpn, Callback done);
    void dispatchWrite(unsigned s, Lpn lpn, Callback done);

    /** Parity-aware per-page host paths (parity mode only). */
    void parityRead(Lpn lpn, Callback done);
    void parityWrite(Lpn lpn, Callback done);

    Engine &_engine;
    SsdArrayParams _params;
    /// Declared before _shards: shard Ssds borrow the group's engines,
    /// so they must be destroyed first (reverse member order).
    std::unique_ptr<EngineGroup> _group;
    std::vector<std::unique_ptr<Ssd>> _shards;
    Lpn _lpnsPerShard = 0;

    std::unique_ptr<ArrayGcScheduler> _gcSched;

    // Parity bookkeeping (empty when parity is off). Versions are
    // per-stripe write sequence numbers; every data write bumps the
    // stripe's data version at issue and its parity version when the
    // parity update lands, so at any host instant
    //   sum(data - parity) == in-flight parity updates
    // (the auditor's parity-group consistency check).
    std::vector<std::uint32_t> _dataVersion;
    std::vector<std::uint32_t> _parityVersion;
    std::uint64_t _parityInFlight = 0;
    std::uint64_t _parityWrites = 0;
    std::uint64_t _degradedReads = 0;
    std::uint64_t _reconReads = 0;
};

} // namespace dssd

#endif // DSSD_CORE_ARRAY_HH
