/**
 * @file
 * Sharded SSD array front-end.
 *
 * Scales the decoupled architecture out the way the paper's Fig 18
 * projection does: N independent Ssd shards, each with its own FTL,
 * write buffer, GC, and (on the dSSD family) decoupled controllers and
 * interconnect, behind one logical LPN space. The array only splits
 * and fans out host requests and aggregates statistics; nothing is
 * shared between shards, so host bandwidth scales with the shard count
 * until the workload itself serializes.
 *
 * Two sharding functions:
 *  - Modulo (default): lpn % N picks the shard; striping spreads any
 *    contiguous host range across all shards;
 *  - Range: the LPN space is cut into N contiguous extents; locality
 *    stays within one shard.
 *
 * Two execution modes, selected by SsdArrayParams::engineThreads:
 *  - 0 (legacy): every shard shares the caller's engine; the caller
 *    drives that engine directly (run()/runUntil()). Fan-out is an
 *    ordinary event at +firmwareLatency.
 *  - >= 1 (engine group): each shard owns a private Engine inside a
 *    conservatively-synchronized EngineGroup (sim/engine_group.hh);
 *    fan-out becomes cross-engine message posting with the firmware
 *    latency as the lookahead, and completions merge back into the
 *    host engine deterministically. The caller must drive the array
 *    through SsdArray::run()/runUntil() so the group's epoch protocol
 *    runs; 1 is the serial reference and any higher count is
 *    bit-identical to it by construction. In this mode the
 *    page-granular readPage/writePage also charge the firmware
 *    fan-out latency (the group's lookahead floor). A tracer
 *    attached to the host engine before construction is propagated
 *    to the shard engines through per-shard buffered Tracers that
 *    the group drains at every epoch barrier (EngineGroup::
 *    attachTracer), so --trace works for any worker count and the
 *    trace file is byte-identical across counts.
 */

#ifndef DSSD_CORE_ARRAY_HH
#define DSSD_CORE_ARRAY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/ssd.hh"
#include "sim/engine_group.hh"

namespace dssd
{

/** How the array's LPN space maps onto shards. */
enum class ShardingKind
{
    Modulo, ///< lpn % N (striped)
    Range,  ///< contiguous extents (partitioned)
};

struct SsdArrayParams
{
    unsigned shards = 1;
    ShardingKind sharding = ShardingKind::Modulo;
    /**
     * 0: all shards share the caller's engine (legacy serial mode).
     * >= 1: per-shard engines under an EngineGroup, with this many
     * worker threads running the shard phases (clamped to the shard
     * count; 1 keeps everything on the calling thread).
     */
    unsigned engineThreads = 0;
};

/** N independent Ssd shards behind one logical LPN space. */
class SsdArray
{
  public:
    using Callback = Engine::Callback;

    /**
     * Build @p params.shards copies of @p config; shard s seeds its
     * RNG with config.seed + s so prefill layouts decorrelate.
     */
    SsdArray(Engine &engine, const SsdConfig &config,
             const SsdArrayParams &params);
    ~SsdArray();

    SsdArray(const SsdArray &) = delete;
    SsdArray &operator=(const SsdArray &) = delete;

    /** Split a host request across shards; @p done fires when every
     *  page of every shard completes. */
    void submit(const IoRequest &req, Callback done);

    /** Page-granularity host read of a global LPN. */
    void readPage(Lpn lpn, Callback done);

    /** Page-granularity host write of a global LPN. */
    void writePage(Lpn lpn, Callback done);

    /** Prefill every shard (see Ssd::prefill). */
    void prefill(double fill_fraction, double invalid_fraction);

    /** Force GC of @p victims_per_unit blocks on every unit of every
     *  shard; @p done fires when all shards finish. */
    void forceAllGc(unsigned victims_per_unit, Callback done);

    Engine &engine() { return _engine; }
    const SsdConfig &config() const { return _shards.front()->config(); }
    const SsdArrayParams &params() const { return _params; }

    /** The engine group, or null in legacy shared-engine mode. */
    EngineGroup *engineGroup() { return _group.get(); }

    /**
     * Drive the simulation to @p until: the group's epoch protocol
     * when one exists, otherwise the shared engine directly. Use these
     * instead of touching engine() so the same driver code works in
     * both modes.
     */
    void runUntil(Tick until);

    /** Drive the simulation until no work remains anywhere. */
    void run();

    unsigned shardCount() const
    {
        return static_cast<unsigned>(_shards.size());
    }
    Ssd &shard(unsigned s) { return *_shards[s]; }
    const Ssd &shard(unsigned s) const { return *_shards[s]; }

    /** Total logical pages across the array. */
    Lpn lpnCount() const;

    /** The shard serving global @p lpn. */
    unsigned shardOf(Lpn lpn) const;
    /** @p lpn translated into its shard's local LPN space. */
    Lpn localLpn(Lpn lpn) const;

    //
    // Aggregates over all shards.
    //

    std::uint64_t hostReads() const;
    std::uint64_t hostWrites() const;
    std::uint64_t flushedPages() const;
    unsigned ioOutstanding() const;
    std::uint64_t gcPagesMoved() const;
    /** Earliest firstGcStart across shards (maxTick if GC never ran). */
    Tick gcFirstStart() const;
    /** Latest lastGcEnd across shards (0 if GC never ran). */
    Tick gcLastEnd() const;
    BreakdownStats ioBreakdown() const;
    BreakdownStats copybackBreakdown() const;

    /**
     * Register array-level host aggregates under @p prefix plus every
     * shard's full stats under @p prefix + ".shardN". The registry
     * borrows; it must not outlive this array.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /** Register every shard's invariant checks, named "shardN.<check>".
     *  The auditor must not outlive this array. */
    void registerAudits(Auditor &auditor);

  private:
    Engine &_engine;
    SsdArrayParams _params;
    /// Declared before _shards: shard Ssds borrow the group's engines,
    /// so they must be destroyed first (reverse member order).
    std::unique_ptr<EngineGroup> _group;
    std::vector<std::unique_ptr<Ssd>> _shards;
    Lpn _lpnsPerShard = 0;
};

} // namespace dssd

#endif // DSSD_CORE_ARRAY_HH
