#include "core/array.hh"

#include <algorithm>
#include <utility>

#include "core/gc.hh"
#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

SsdArray::SsdArray(Engine &engine, const SsdConfig &config,
                   const SsdArrayParams &params)
    : _engine(engine), _params(params)
{
    if (_params.shards == 0)
        fatal("SsdArray needs at least one shard");
    _shards.reserve(_params.shards);
    for (unsigned s = 0; s < _params.shards; ++s) {
        SsdConfig cfg = config;
        cfg.seed = config.seed + s;
        _shards.push_back(std::make_unique<Ssd>(engine, cfg));
    }
    _lpnsPerShard = _shards.front()->mapping().lpnCount();
}

SsdArray::~SsdArray() = default;

Lpn
SsdArray::lpnCount() const
{
    return _lpnsPerShard * _shards.size();
}

unsigned
SsdArray::shardOf(Lpn lpn) const
{
    if (_params.sharding == ShardingKind::Modulo)
        return static_cast<unsigned>(lpn % _shards.size());
    return static_cast<unsigned>(lpn / _lpnsPerShard);
}

Lpn
SsdArray::localLpn(Lpn lpn) const
{
    if (_params.sharding == ShardingKind::Modulo)
        return lpn / _shards.size();
    return lpn % _lpnsPerShard;
}

void
SsdArray::readPage(Lpn lpn, Callback done)
{
    _shards[shardOf(lpn)]->readPage(localLpn(lpn), std::move(done));
}

void
SsdArray::writePage(Lpn lpn, Callback done)
{
    _shards[shardOf(lpn)]->writePage(localLpn(lpn), std::move(done));
}

void
SsdArray::prefill(double fill_fraction, double invalid_fraction)
{
    for (auto &s : _shards)
        s->prefill(fill_fraction, invalid_fraction);
}

void
SsdArray::submit(const IoRequest &req, Callback done)
{
    std::uint64_t page = config().geom.pageBytes;
    Lpn first = req.offset / page;
    std::uint64_t end = req.offset + std::max<std::uint64_t>(req.bytes, 1);
    std::uint64_t pages = (end + page - 1) / page - first;
    Lpn total = lpnCount();

    // Split the request's pages by owning shard; each shard then
    // behaves exactly like a standalone device handling its slice
    // (its own per-request firmware charge included).
    std::vector<std::vector<Lpn>> split(_shards.size());
    for (std::uint64_t i = 0; i < pages; ++i) {
        Lpn lpn = (first + i) % total;
        split[shardOf(lpn)].push_back(localLpn(lpn));
    }

    auto remaining = std::make_shared<std::uint64_t>(pages);
    Callback page_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };

    Tick fw = config().firmwareLatency;
    for (unsigned s = 0; s < _shards.size(); ++s) {
        if (split[s].empty())
            continue;
        auto batch =
            std::make_shared<std::vector<Lpn>>(std::move(split[s]));
        _engine.schedule(fw, [this, s, batch, page_done,
                              is_read = req.isRead()] {
            for (Lpn lpn : *batch) {
                if (is_read)
                    _shards[s]->readPage(lpn, page_done);
                else
                    _shards[s]->writePage(lpn, page_done);
            }
        });
    }
}

void
SsdArray::forceAllGc(unsigned victims_per_unit, Callback done)
{
    auto remaining = std::make_shared<unsigned>(
        static_cast<unsigned>(_shards.size()));
    for (auto &s : _shards) {
        s->gc().forceAll(victims_per_unit,
                         [remaining, done] {
            if (--*remaining == 0)
                done();
        });
    }
}

std::uint64_t
SsdArray::hostReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->hostReads();
    return n;
}

std::uint64_t
SsdArray::hostWrites() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->hostWrites();
    return n;
}

std::uint64_t
SsdArray::flushedPages() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->flushedPages();
    return n;
}

unsigned
SsdArray::ioOutstanding() const
{
    unsigned n = 0;
    for (const auto &s : _shards)
        n += s->ioOutstanding();
    return n;
}

std::uint64_t
SsdArray::gcPagesMoved() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->gc().pagesMoved();
    return n;
}

Tick
SsdArray::gcFirstStart() const
{
    Tick t = maxTick;
    for (const auto &s : _shards)
        t = std::min(t, s->gc().firstGcStart());
    return t;
}

Tick
SsdArray::gcLastEnd() const
{
    Tick t = 0;
    for (const auto &s : _shards)
        t = std::max(t, s->gc().lastGcEnd());
    return t;
}

BreakdownStats
SsdArray::ioBreakdown() const
{
    BreakdownStats agg;
    for (const auto &s : _shards) {
        agg.sum += s->ioBreakdown().sum;
        agg.count += s->ioBreakdown().count;
    }
    return agg;
}

BreakdownStats
SsdArray::copybackBreakdown() const
{
    BreakdownStats agg;
    for (const auto &s : _shards) {
        agg.sum += s->copybackBreakdown().sum;
        agg.count += s->copybackBreakdown().count;
    }
    return agg;
}

void
SsdArray::registerStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addScalar(prefix + ".host.reads", [this] {
        return static_cast<double>(hostReads());
    });
    reg.addScalar(prefix + ".host.writes", [this] {
        return static_cast<double>(hostWrites());
    });
    reg.addScalar(prefix + ".host.flushed_pages", [this] {
        return static_cast<double>(flushedPages());
    });
    reg.addScalar(prefix + ".host.outstanding", [this] {
        return static_cast<double>(ioOutstanding());
    });
    reg.addScalar(prefix + ".shards", [this] {
        return static_cast<double>(_shards.size());
    });
    for (std::size_t s = 0; s < _shards.size(); ++s) {
        _shards[s]->registerStats(reg,
                                  prefix + strformat(".shard%zu", s));
    }
}

void
SsdArray::registerAudits(Auditor &auditor)
{
    for (std::size_t s = 0; s < _shards.size(); ++s)
        _shards[s]->registerAudits(auditor, strformat("shard%zu.", s));
}

} // namespace dssd
