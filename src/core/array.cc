#include "core/array.hh"

#include <algorithm>
#include <utility>

#include "core/gc.hh"
#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

SsdArray::SsdArray(Engine &engine, const SsdConfig &config,
                   const SsdArrayParams &params)
    : _engine(engine), _params(params)
{
    if (_params.shards == 0)
        fatal("SsdArray needs at least one shard");
    if (_params.engineThreads > 0) {
        // The firmware fan-out latency is the minimum host-to-shard
        // delay, so it is the group's conservative lookahead.
        _group = std::make_unique<EngineGroup>(engine, _params.shards,
                                               config.firmwareLatency,
                                               _params.engineThreads);
        // Route shard-engine trace emissions through per-shard
        // buffers merged at the epoch barriers (sim/trace.hh); must
        // happen before the shard Ssds register their tracks below.
        if (engine.tracer())
            _group->attachTracer(engine.tracer());
    }
    _shards.reserve(_params.shards);
    for (unsigned s = 0; s < _params.shards; ++s) {
        SsdConfig cfg = config;
        cfg.seed = config.seed + s;
        Engine &shard_engine = _group ? _group->shardEngine(s) : engine;
        _shards.push_back(std::make_unique<Ssd>(shard_engine, cfg));
    }
    _lpnsPerShard = _shards.front()->mapping().lpnCount();
}

SsdArray::~SsdArray() = default;

Lpn
SsdArray::lpnCount() const
{
    return _lpnsPerShard * _shards.size();
}

unsigned
SsdArray::shardOf(Lpn lpn) const
{
    if (_params.sharding == ShardingKind::Modulo)
        return static_cast<unsigned>(lpn % _shards.size());
    return static_cast<unsigned>(lpn / _lpnsPerShard);
}

Lpn
SsdArray::localLpn(Lpn lpn) const
{
    if (_params.sharding == ShardingKind::Modulo)
        return lpn / _shards.size();
    return lpn % _lpnsPerShard;
}

void
SsdArray::runUntil(Tick until)
{
    if (_group)
        _group->runUntil(until);
    else
        _engine.runUntil(until);
}

void
SsdArray::run()
{
    if (_group)
        _group->run();
    else
        _engine.run();
}

void
SsdArray::readPage(Lpn lpn, Callback done)
{
    unsigned s = shardOf(lpn);
    Lpn local = localLpn(lpn);
    if (!_group) {
        _shards[s]->readPage(local, std::move(done));
        return;
    }
    _group->postToShard(
        s, config().firmwareLatency,
        [this, s, local, cb = std::move(done)] {
            _shards[s]->readPage(local, [this, s, cb] {
                _group->postToHost(s, cb);
            });
        });
}

void
SsdArray::writePage(Lpn lpn, Callback done)
{
    unsigned s = shardOf(lpn);
    Lpn local = localLpn(lpn);
    if (!_group) {
        _shards[s]->writePage(local, std::move(done));
        return;
    }
    _group->postToShard(
        s, config().firmwareLatency,
        [this, s, local, cb = std::move(done)] {
            _shards[s]->writePage(local, [this, s, cb] {
                _group->postToHost(s, cb);
            });
        });
}

void
SsdArray::prefill(double fill_fraction, double invalid_fraction)
{
    for (auto &s : _shards)
        s->prefill(fill_fraction, invalid_fraction);
}

void
SsdArray::submit(const IoRequest &req, Callback done)
{
    std::uint64_t page = config().geom.pageBytes;
    Lpn first = req.offset / page;
    std::uint64_t end = req.offset + std::max<std::uint64_t>(req.bytes, 1);
    std::uint64_t pages = (end + page - 1) / page - first;
    Lpn total = lpnCount();

    // Split the request's pages by owning shard; each shard then
    // behaves exactly like a standalone device handling its slice
    // (its own per-request firmware charge included).
    std::vector<std::vector<Lpn>> split(_shards.size());
    for (std::uint64_t i = 0; i < pages; ++i) {
        Lpn lpn = (first + i) % total;
        split[shardOf(lpn)].push_back(localLpn(lpn));
    }

    // `remaining` is only ever decremented on the host side: in group
    // mode every per-page completion comes back through postToHost and
    // runs as a host-engine event, so no atomics are needed and the
    // countdown order is the deterministic merge order.
    auto remaining = std::make_shared<std::uint64_t>(pages);
    Callback page_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };

    Tick fw = config().firmwareLatency;
    for (unsigned s = 0; s < _shards.size(); ++s) {
        if (split[s].empty())
            continue;
        auto batch =
            std::make_shared<std::vector<Lpn>>(std::move(split[s]));
        if (_group) {
            _group->postToShard(s, fw, [this, s, batch, page_done,
                                        is_read = req.isRead()] {
                Callback local_done = [this, s, page_done] {
                    _group->postToHost(s, page_done);
                };
                for (Lpn lpn : *batch) {
                    if (is_read)
                        _shards[s]->readPage(lpn, local_done);
                    else
                        _shards[s]->writePage(lpn, local_done);
                }
            });
            continue;
        }
        _engine.schedule(fw, [this, s, batch, page_done,
                              is_read = req.isRead()] {
            for (Lpn lpn : *batch) {
                if (is_read)
                    _shards[s]->readPage(lpn, page_done);
                else
                    _shards[s]->writePage(lpn, page_done);
            }
        });
    }
}

void
SsdArray::forceAllGc(unsigned victims_per_unit, Callback done)
{
    auto remaining = std::make_shared<unsigned>(
        static_cast<unsigned>(_shards.size()));
    Callback shard_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };
    if (_group) {
        // Like host I/O, the kick must cross into the shard domains:
        // charge the lookahead and bring completions home through the
        // deterministic merge.
        for (unsigned s = 0; s < _shards.size(); ++s) {
            _group->postToShard(
                s, _group->lookahead(),
                [this, s, victims_per_unit, shard_done] {
                    _shards[s]->gc().forceAll(
                        victims_per_unit, [this, s, shard_done] {
                            _group->postToHost(s, shard_done);
                        });
                });
        }
        return;
    }
    for (auto &s : _shards)
        s->gc().forceAll(victims_per_unit, shard_done);
}

std::uint64_t
SsdArray::hostReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->hostReads();
    return n;
}

std::uint64_t
SsdArray::hostWrites() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->hostWrites();
    return n;
}

std::uint64_t
SsdArray::flushedPages() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->flushedPages();
    return n;
}

unsigned
SsdArray::ioOutstanding() const
{
    unsigned n = 0;
    for (const auto &s : _shards)
        n += s->ioOutstanding();
    return n;
}

std::uint64_t
SsdArray::gcPagesMoved() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->gc().pagesMoved();
    return n;
}

Tick
SsdArray::gcFirstStart() const
{
    Tick t = maxTick;
    for (const auto &s : _shards)
        t = std::min(t, s->gc().firstGcStart());
    return t;
}

Tick
SsdArray::gcLastEnd() const
{
    Tick t = 0;
    for (const auto &s : _shards)
        t = std::max(t, s->gc().lastGcEnd());
    return t;
}

BreakdownStats
SsdArray::ioBreakdown() const
{
    BreakdownStats agg;
    for (const auto &s : _shards) {
        agg.sum += s->ioBreakdown().sum;
        agg.count += s->ioBreakdown().count;
    }
    return agg;
}

BreakdownStats
SsdArray::copybackBreakdown() const
{
    BreakdownStats agg;
    for (const auto &s : _shards) {
        agg.sum += s->copybackBreakdown().sum;
        agg.count += s->copybackBreakdown().count;
    }
    return agg;
}

void
SsdArray::registerStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addScalar(prefix + ".host.reads", [this] {
        return static_cast<double>(hostReads());
    });
    reg.addScalar(prefix + ".host.writes", [this] {
        return static_cast<double>(hostWrites());
    });
    reg.addScalar(prefix + ".host.flushed_pages", [this] {
        return static_cast<double>(flushedPages());
    });
    reg.addScalar(prefix + ".host.outstanding", [this] {
        return static_cast<double>(ioOutstanding());
    });
    reg.addScalar(prefix + ".shards", [this] {
        return static_cast<double>(_shards.size());
    });
    if (_group)
        _group->registerStats(reg, prefix + ".group");
    for (std::size_t s = 0; s < _shards.size(); ++s) {
        _shards[s]->registerStats(reg,
                                  prefix + strformat(".shard%zu", s));
    }
}

void
SsdArray::registerAudits(Auditor &auditor)
{
    for (std::size_t s = 0; s < _shards.size(); ++s)
        _shards[s]->registerAudits(auditor, strformat("shard%zu.", s));
}

} // namespace dssd
