#include "core/array.hh"

#include <algorithm>
#include <utility>

#include "core/gc.hh"
#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

SsdArray::SsdArray(Engine &engine, const SsdConfig &config,
                   const SsdArrayParams &params)
    : _engine(engine), _params(params)
{
    if (_params.shards == 0)
        fatal("SsdArray needs at least one shard");
    if (_params.parity) {
        if (_params.shards < 2)
            fatal("parity striping needs at least two shards");
        if (_params.sharding != ShardingKind::Modulo)
            fatal("parity striping requires Modulo sharding");
    }
    if (_params.engineThreads > 0) {
        // The firmware fan-out latency is the minimum host-to-shard
        // delay, so it is the group's conservative lookahead.
        _group = std::make_unique<EngineGroup>(engine, _params.shards,
                                               config.firmwareLatency,
                                               _params.engineThreads);
        // Route shard-engine trace emissions through per-shard
        // buffers merged at the epoch barriers (sim/trace.hh); must
        // happen before the shard Ssds register their tracks below.
        if (engine.tracer())
            _group->attachTracer(engine.tracer());
    }
    _shards.reserve(_params.shards);
    for (unsigned s = 0; s < _params.shards; ++s) {
        SsdConfig cfg = config;
        cfg.seed = config.seed + s;
        Engine &shard_engine = _group ? _group->shardEngine(s) : engine;
        _shards.push_back(std::make_unique<Ssd>(shard_engine, cfg));
    }
    _lpnsPerShard = _shards.front()->mapping().lpnCount();
    if (_params.parity) {
        _dataVersion.assign(_lpnsPerShard, 0);
        _parityVersion.assign(_lpnsPerShard, 0);
    }
    // The scheduler exists whenever grant windows matter: for any
    // coordinating policy, and for parity (degraded reads key off the
    // grant state even under Uncoordinated's immediate grants). A
    // plain uncoordinated parity-off array keeps today's direct paths.
    if (_params.gc.policy != ArrayGcPolicy::Uncoordinated ||
        _params.parity) {
        installCoordination();
    }
}

SsdArray::~SsdArray() = default;

void
SsdArray::installCoordination()
{
    _gcSched = std::make_unique<ArrayGcScheduler>(
        _engine, _params.gc, _params.shards,
        [this](unsigned s) { deliverGrant(s); });
    for (unsigned s = 0; s < _params.shards; ++s) {
        // Both hooks run on the shard's engine; in group mode they
        // bounce to the host through the deterministic merge, in
        // legacy mode the shared engine *is* the host engine, so the
        // scheduler sees the same ticks either way.
        GcCoordinationHooks hooks;
        hooks.request = [this, s](std::uint32_t pressure) {
            if (_group) {
                _group->postToHost(s, [this, s, pressure] {
                    _gcSched->requestGrant(s, pressure);
                });
                return;
            }
            _gcSched->requestGrant(s, pressure);
        };
        hooks.release = [this, s](std::uint64_t copies,
                                  std::uint64_t erases) {
            if (_group) {
                _group->postToHost(s, [this, s, copies, erases] {
                    _gcSched->releaseGrant(s, copies, erases);
                });
                return;
            }
            _gcSched->releaseGrant(s, copies, erases);
        };
        _shards[s]->gc().setCoordination(std::move(hooks));
    }
}

void
SsdArray::deliverGrant(unsigned s)
{
    if (_group) {
        _group->postToShard(s, _group->lookahead(), [this, s] {
            _shards[s]->gc().grantCollection();
        });
        return;
    }
    // Legacy mode charges the same firmware latency the group pays
    // through postToShard, keeping the coordinated schedule identical
    // across engineThreads counts.
    _engine.schedule(config().firmwareLatency, [this, s] {
        _shards[s]->gc().grantCollection();
    });
}

Lpn
SsdArray::lpnCount() const
{
    if (_params.parity)
        return _lpnsPerShard * (_shards.size() - 1);
    return _lpnsPerShard * _shards.size();
}

unsigned
SsdArray::shardOf(Lpn lpn) const
{
    if (_params.parity) {
        // Stripe g puts its parity page on shard g % N; the stripe's
        // N-1 data positions map onto the remaining shards in index
        // order (skip the parity shard).
        std::size_t n = _shards.size();
        Lpn stripe = lpn / (n - 1);
        unsigned pos = static_cast<unsigned>(lpn % (n - 1));
        unsigned parity = static_cast<unsigned>(stripe % n);
        return pos >= parity ? pos + 1 : pos;
    }
    if (_params.sharding == ShardingKind::Modulo)
        return static_cast<unsigned>(lpn % _shards.size());
    return static_cast<unsigned>(lpn / _lpnsPerShard);
}

Lpn
SsdArray::localLpn(Lpn lpn) const
{
    if (_params.parity)
        return lpn / (_shards.size() - 1);
    if (_params.sharding == ShardingKind::Modulo)
        return lpn / _shards.size();
    return lpn % _lpnsPerShard;
}

Lpn
SsdArray::stripeOf(Lpn lpn) const
{
    if (_params.parity)
        return lpn / (_shards.size() - 1);
    return localLpn(lpn);
}

void
SsdArray::runUntil(Tick until)
{
    if (_group)
        _group->runUntil(until);
    else
        _engine.runUntil(until);
}

void
SsdArray::run()
{
    if (_group)
        _group->run();
    else
        _engine.run();
}

void
SsdArray::readPage(Lpn lpn, Callback done)
{
    if (_params.parity) {
        parityRead(lpn, std::move(done));
        return;
    }
    unsigned s = shardOf(lpn);
    Lpn local = localLpn(lpn);
    if (!_group) {
        _shards[s]->readPage(local, std::move(done));
        return;
    }
    _group->postToShard(
        s, config().firmwareLatency,
        [this, s, local, cb = std::move(done)] {
            _shards[s]->readPage(local, [this, s, cb] {
                _group->postToHost(s, cb);
            });
        });
}

void
SsdArray::writePage(Lpn lpn, Callback done)
{
    if (_params.parity) {
        parityWrite(lpn, std::move(done));
        return;
    }
    unsigned s = shardOf(lpn);
    Lpn local = localLpn(lpn);
    if (!_group) {
        _shards[s]->writePage(local, std::move(done));
        return;
    }
    _group->postToShard(
        s, config().firmwareLatency,
        [this, s, local, cb = std::move(done)] {
            _shards[s]->writePage(local, [this, s, cb] {
                _group->postToHost(s, cb);
            });
        });
}

void
SsdArray::dispatchRead(unsigned s, Lpn lpn, Callback done)
{
    if (_group) {
        _group->postToShard(
            s, _group->lookahead(),
            [this, s, lpn, cb = std::move(done)] {
                _shards[s]->readPage(lpn, [this, s, cb] {
                    _group->postToHost(s, cb);
                });
            });
        return;
    }
    // Charge the same firmware fan-out latency group mode pays, so
    // parity timing is identical across engineThreads counts.
    _engine.schedule(config().firmwareLatency,
                     [this, s, lpn, cb = std::move(done)] {
                         _shards[s]->readPage(lpn, cb);
                     });
}

void
SsdArray::dispatchWrite(unsigned s, Lpn lpn, Callback done)
{
    if (_group) {
        _group->postToShard(
            s, _group->lookahead(),
            [this, s, lpn, cb = std::move(done)] {
                _shards[s]->writePage(lpn, [this, s, cb] {
                    _group->postToHost(s, cb);
                });
            });
        return;
    }
    _engine.schedule(config().firmwareLatency,
                     [this, s, lpn, cb = std::move(done)] {
                         _shards[s]->writePage(lpn, cb);
                     });
}

void
SsdArray::parityRead(Lpn lpn, Callback done)
{
    unsigned s = shardOf(lpn);
    Lpn stripe = stripeOf(lpn);
    // Degraded read: while the data shard holds a GC grant, read the
    // stripe's N-1 peer pages (data siblings + parity) instead and
    // reconstruct. The grant state is host-owned, so the decision is
    // deterministic for any worker count. The parity shard is never
    // the data shard, so reconstruction is always possible.
    if (!coordinated() || !_gcSched->granted(s)) {
        dispatchRead(s, stripe, std::move(done));
        return;
    }
    ++_degradedReads;
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    int pid = 0;
    std::uint64_t span = 0;
    if (tr) {
        pid = tr->process("array");
        span = tr->nextSpanId();
        tr->asyncBegin(pid, "array-parity", "reconstruct", span,
                       _engine.now());
    }
#endif
    unsigned n = shardCount();
    auto remaining = std::make_shared<unsigned>(n - 1);
    Callback part = [this, remaining,
#if DSSD_TRACING
                     pid, span,
#endif
                     cb = std::move(done)] {
        if (--*remaining != 0)
            return;
#if DSSD_TRACING
        Tracer *tr = _engine.tracer();
        if (tr) {
            tr->asyncEnd(pid, "array-parity", "reconstruct", span,
                         _engine.now());
        }
#endif
        cb();
    };
    for (unsigned q = 0; q < n; ++q) {
        if (q == s)
            continue;
        ++_reconReads;
        dispatchRead(q, stripe, part);
    }
}

void
SsdArray::parityWrite(Lpn lpn, Callback done)
{
    unsigned s = shardOf(lpn);
    Lpn stripe = stripeOf(lpn);
    unsigned p = parityShardOf(stripe);
    ++_dataVersion[stripe];
    ++_parityInFlight;
    ++_parityWrites;
    // A parity-protected write completes only when both the data page
    // and the read-modify-written parity page land.
    auto remaining = std::make_shared<unsigned>(2);
    Callback both = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };
    dispatchWrite(s, stripe, both);
    dispatchWrite(p, stripe, [this, stripe, both] {
        ++_parityVersion[stripe];
        --_parityInFlight;
        both();
    });
}

void
SsdArray::prefill(double fill_fraction, double invalid_fraction)
{
    for (auto &s : _shards)
        s->prefill(fill_fraction, invalid_fraction);
}

void
SsdArray::submit(const IoRequest &req, Callback done)
{
    std::uint64_t page = config().geom.pageBytes;
    Lpn first = req.offset / page;
    std::uint64_t end = req.offset + std::max<std::uint64_t>(req.bytes, 1);
    std::uint64_t pages = (end + page - 1) / page - first;
    Lpn total = lpnCount();

    // A request past the end of the array is a caller bug: refuse it
    // loudly (same contract as the single-device trace validation in
    // workload/generator.cc) instead of silently aliasing the excess
    // pages onto low LPNs.
    if (first >= total || pages > total - first) {
        fatal("array request [%llu, %llu) extends beyond the "
              "%llu-page array (offset %llu, %llu bytes)",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(first + pages),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(req.offset),
              static_cast<unsigned long long>(req.bytes));
    }

    // `remaining` is only ever decremented on the host side: in group
    // mode every per-page completion comes back through postToHost and
    // runs as a host-engine event, so no atomics are needed and the
    // countdown order is the deterministic merge order.
    auto remaining = std::make_shared<std::uint64_t>(pages);
    Callback page_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };

    // Parity mode dispatches page by page: each write fans out to its
    // data + parity shard, and each read may fan out to the N-1 peers
    // when its data shard is mid-collection.
    if (_params.parity) {
        for (std::uint64_t i = 0; i < pages; ++i) {
            Lpn lpn = first + i;
            if (req.isRead())
                parityRead(lpn, page_done);
            else
                parityWrite(lpn, page_done);
        }
        return;
    }

    // Split the request's pages by owning shard; each shard then
    // behaves exactly like a standalone device handling its slice
    // (its own per-request firmware charge included).
    std::vector<std::vector<Lpn>> split(_shards.size());
    for (std::uint64_t i = 0; i < pages; ++i) {
        Lpn lpn = first + i;
        split[shardOf(lpn)].push_back(localLpn(lpn));
    }

    Tick fw = config().firmwareLatency;
    for (unsigned s = 0; s < _shards.size(); ++s) {
        if (split[s].empty())
            continue;
        auto batch =
            std::make_shared<std::vector<Lpn>>(std::move(split[s]));
        if (_group) {
            _group->postToShard(s, fw, [this, s, batch, page_done,
                                        is_read = req.isRead()] {
                Callback local_done = [this, s, page_done] {
                    _group->postToHost(s, page_done);
                };
                for (Lpn lpn : *batch) {
                    if (is_read)
                        _shards[s]->readPage(lpn, local_done);
                    else
                        _shards[s]->writePage(lpn, local_done);
                }
            });
            continue;
        }
        _engine.schedule(fw, [this, s, batch, page_done,
                              is_read = req.isRead()] {
            for (Lpn lpn : *batch) {
                if (is_read)
                    _shards[s]->readPage(lpn, page_done);
                else
                    _shards[s]->writePage(lpn, page_done);
            }
        });
    }
}

void
SsdArray::forceAllGc(unsigned victims_per_unit, Callback done)
{
    auto remaining = std::make_shared<unsigned>(
        static_cast<unsigned>(_shards.size()));
    Callback shard_done = [remaining, cb = std::move(done)] {
        if (--*remaining == 0)
            cb();
    };
    if (_group) {
        // Like host I/O, the kick must cross into the shard domains:
        // charge the lookahead and bring completions home through the
        // deterministic merge.
        for (unsigned s = 0; s < _shards.size(); ++s) {
            _group->postToShard(
                s, _group->lookahead(),
                [this, s, victims_per_unit, shard_done] {
                    _shards[s]->gc().forceAll(
                        victims_per_unit, [this, s, shard_done] {
                            _group->postToHost(s, shard_done);
                        });
                });
        }
        return;
    }
    for (unsigned s = 0; s < _shards.size(); ++s) {
        if (coordinated()) {
            // Mirror group mode's postToShard charge so a coordinated
            // array's forced rounds land at the same ticks for
            // engineThreads 0 and >= 1.
            _engine.schedule(config().firmwareLatency,
                             [this, s, victims_per_unit, shard_done] {
                                 _shards[s]->gc().forceAll(
                                     victims_per_unit, shard_done);
                             });
            continue;
        }
        _shards[s]->gc().forceAll(victims_per_unit, shard_done);
    }
}

std::uint64_t
SsdArray::hostReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->hostReads();
    return n;
}

std::uint64_t
SsdArray::hostWrites() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->hostWrites();
    return n;
}

std::uint64_t
SsdArray::flushedPages() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->flushedPages();
    return n;
}

unsigned
SsdArray::ioOutstanding() const
{
    unsigned n = 0;
    for (const auto &s : _shards)
        n += s->ioOutstanding();
    return n;
}

std::uint64_t
SsdArray::gcPagesMoved() const
{
    std::uint64_t n = 0;
    for (const auto &s : _shards)
        n += s->gc().pagesMoved();
    return n;
}

Tick
SsdArray::gcFirstStart() const
{
    Tick t = maxTick;
    for (const auto &s : _shards)
        t = std::min(t, s->gc().firstGcStart());
    return t;
}

Tick
SsdArray::gcLastEnd() const
{
    Tick t = 0;
    for (const auto &s : _shards)
        t = std::max(t, s->gc().lastGcEnd());
    return t;
}

BreakdownStats
SsdArray::ioBreakdown() const
{
    BreakdownStats agg;
    for (const auto &s : _shards) {
        agg.sum += s->ioBreakdown().sum;
        agg.count += s->ioBreakdown().count;
    }
    return agg;
}

BreakdownStats
SsdArray::copybackBreakdown() const
{
    BreakdownStats agg;
    for (const auto &s : _shards) {
        agg.sum += s->copybackBreakdown().sum;
        agg.count += s->copybackBreakdown().count;
    }
    return agg;
}

void
SsdArray::registerStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addScalar(prefix + ".host.reads", [this] {
        return static_cast<double>(hostReads());
    });
    reg.addScalar(prefix + ".host.writes", [this] {
        return static_cast<double>(hostWrites());
    });
    reg.addScalar(prefix + ".host.flushed_pages", [this] {
        return static_cast<double>(flushedPages());
    });
    reg.addScalar(prefix + ".host.outstanding", [this] {
        return static_cast<double>(ioOutstanding());
    });
    reg.addScalar(prefix + ".shards", [this] {
        return static_cast<double>(_shards.size());
    });
    if (_gcSched)
        _gcSched->registerStats(reg, prefix + ".array.gc");
    if (_params.parity) {
        reg.addScalar(prefix + ".array.parity.degraded_reads", [this] {
            return static_cast<double>(_degradedReads);
        });
        reg.addScalar(prefix + ".array.parity.reconstruction_reads",
                      [this] {
                          return static_cast<double>(_reconReads);
                      });
        reg.addScalar(prefix + ".array.parity.parity_writes", [this] {
            return static_cast<double>(_parityWrites);
        });
        // Bandwidth the redundancy layer steals from the host: every
        // parity update is one extra page program.
        reg.addScalar(prefix + ".array.parity.stolen_bytes", [this] {
            return static_cast<double>(_parityWrites) *
                   static_cast<double>(config().geom.pageBytes);
        });
        reg.addScalar(prefix + ".array.parity.in_flight", [this] {
            return static_cast<double>(_parityInFlight);
        });
    }
    if (_group)
        _group->registerStats(reg, prefix + ".group");
    for (std::size_t s = 0; s < _shards.size(); ++s) {
        _shards[s]->registerStats(reg,
                                  prefix + strformat(".shard%zu", s));
    }
}

void
SsdArray::registerAudits(Auditor &auditor)
{
    for (std::size_t s = 0; s < _shards.size(); ++s)
        _shards[s]->registerAudits(auditor, strformat("shard%zu.", s));
    if (!_params.parity)
        return;
    // Parity-group consistency: every data write bumps its stripe's
    // data version at issue and the parity version when the update
    // lands, so per stripe the parity version never runs ahead and
    // the total lag equals the in-flight parity updates.
    auditor.addCheck("array.parity", [this](AuditReport &r) {
        std::uint64_t lag = 0;
        for (Lpn g = 0; g < _lpnsPerShard; ++g) {
            if (_parityVersion[g] > _dataVersion[g]) {
                r.fail("stripe %llu: parity version %u ahead of data "
                       "version %u",
                       static_cast<unsigned long long>(g),
                       _parityVersion[g], _dataVersion[g]);
                continue;
            }
            lag += _dataVersion[g] - _parityVersion[g];
        }
        if (lag != _parityInFlight) {
            r.fail("parity-group lag %llu != %llu in-flight parity "
                   "updates",
                   static_cast<unsigned long long>(lag),
                   static_cast<unsigned long long>(_parityInFlight));
        }
    });
}

} // namespace dssd
