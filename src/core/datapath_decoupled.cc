#include "core/datapath_decoupled.hh"

#include <utility>

#include "fault/recovery.hh"
#include "ftl/mapping.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

DecoupledDatapath::DecoupledDatapath(const DatapathEnv &env)
    : Datapath(env)
{
    const SsdConfig &config = env.config;
    DecoupledParams dp = config.decoupled;
    dp.ecc = config.ecc;
    _controllers.reserve(config.geom.channels);
    for (unsigned ch = 0; ch < config.geom.channels; ++ch) {
        _controllers.push_back(std::make_unique<DecoupledController>(
            env.engine, *env.channels[ch], dp));
    }
    switch (config.arch) {
      case ArchKind::DSSD:
        _interconnect =
            std::make_unique<SystemBusInterconnect>(env.systemBus);
        break;
      case ArchKind::DSSDBus:
        _interconnect = std::make_unique<DedicatedBusInterconnect>(
            env.engine, config.interconnectBandwidth());
        break;
      case ArchKind::DSSDNoc: {
        auto topo = makeTopology(config.nocTopology, config.geom.channels);
        NocParams np = config.noc;
        if (!config.nocExplicitBandwidth) {
            np.linkBandwidth =
                config.interconnectBandwidth() / topo->bisectionLinks();
        }
        _interconnect = std::make_unique<NocNetwork>(
            env.engine, std::move(topo), np);
        break;
      }
      default:
        panic("decoupled arch without interconnect mapping");
    }
    for (unsigned ch = 0; ch < config.geom.channels; ++ch)
        _controllers[ch]->setInterconnect(_interconnect.get(), ch);
}

PhysAddr
DecoupledDatapath::resolve(const PhysAddr &addr) const
{
    if (!_env.config.applySrtRemap)
        return addr;
    return _controllers[addr.channel]->remap(addr);
}

void
DecoupledDatapath::copyPage(const PhysAddr &src, const PhysAddr &dst,
                            int tag,
                            std::shared_ptr<LatencyBreakdown> bd,
                            Callback done)
{
    DecoupledController *sc = _controllers[src.channel].get();
    DecoupledController *dc = _controllers[dst.channel].get();
    sc->globalCopyback(src, dst, dc, tag, std::move(done), bd.get());
}

EccEngine &
DecoupledDatapath::eccFor(unsigned ch)
{
    return controller(ch)->ecc();
}

DecoupledController *
DecoupledDatapath::controller(unsigned ch)
{
    if (ch >= _controllers.size())
        panic("channel %u out of range", ch);
    return _controllers[ch].get();
}

void
DecoupledDatapath::attachFaults(FaultModel *fault,
                                RecoveryEngine *recovery)
{
    Datapath::attachFaults(fault, recovery);
    if (NocNetwork *noc = asNoc(_interconnect.get()))
        noc->setFaultModel(fault);
    for (auto &dc : _controllers) {
        dc->setFaultModel(fault);
        dc->setCopybackFallback(
            [recovery](const PhysAddr &src, const PhysAddr &dst, int tag,
                       LatencyBreakdown *bd, Callback done) {
            recovery->copybackFallback(src, dst, tag, bd,
                                       std::move(done));
        });
    }
}

bool
DecoupledDatapath::tryHardwareRepair(const PhysAddr &addr,
                                     RecoveryEngine &recovery)
{
    DecoupledController *dc = _controllers[addr.channel].get();
    const FlashGeometry &g = _env.config.geom;
    ChannelBlockId phys = channelBlockId(g, addr);

    // The faulted block may itself be a remap target; the SRT entry to
    // rewrite is the FTL-visible source id behind it.
    ChannelBlockId from = phys;
    bool was_remapped = false;
    for (const auto &entry : dc->srt().entriesSorted()) {
        if (entry.second == phys) {
            from = entry.first;
            was_remapped = true;
            break;
        }
    }
    if (!was_remapped && dc->srt().full())
        return false;

    // Take a spare that has not itself faulted.
    ChannelBlockId spare = 0;
    bool found = false;
    while (!dc->rbt().empty()) {
        spare = dc->rbt().take();
        if (!recovery.blockFaulted(
                channelBlockAddr(g, addr.channel, spare))) {
            found = true;
            break;
        }
    }
    if (!found)
        return false;

    // Relocate the failing block's pages into the spare with
    // same-channel global copybacks; the SRT entry activates once the
    // data has moved. The FTL never learns anything happened.
    PhysAddr src_base = channelBlockAddr(g, addr.channel, phys);
    PhysAddr dst_base = channelBlockAddr(g, addr.channel, spare);
    std::uint32_t pages = g.pagesPerBlock;
    recovery.noteRepairPages(pages);

    auto remaining = std::make_shared<std::uint32_t>(pages);
    for (std::uint32_t p = 0; p < pages; ++p) {
        PhysAddr s = src_base;
        s.page = p;
        PhysAddr d = dst_base;
        d.page = p;
        dc->globalCopyback(s, d, nullptr, tagGc,
                           [dc, from, spare, was_remapped, remaining,
                            rec = &recovery] {
            if (--*remaining != 0)
                return;
            if (was_remapped)
                dc->srt().erase(from);
            if (!dc->srt().insert(from, spare))
                panic("SRT insert failed after capacity check");
            rec->noteRemap();
        });
    }
    return true;
}

PhysAddr
DecoupledDatapath::unresolve(const PhysAddr &addr) const
{
    const FlashGeometry &g = _env.config.geom;
    ChannelBlockId phys = channelBlockId(g, addr);
    for (const auto &entry :
         _controllers[addr.channel]->srt().entriesSorted()) {
        if (entry.second == phys)
            return channelBlockAddr(g, addr.channel, entry.first);
    }
    return addr;
}

void
DecoupledDatapath::seedRbtSpares(PageMapping &mapping)
{
    const FlashGeometry &g = _env.config.geom;
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        for (unsigned i = 0; i < _env.config.fault.rbtSparesPerChannel;
             ++i) {
            PhysAddr a;
            a.channel = ch;
            a.way = 0;
            a.die = 0;
            a.plane = i % g.planesPerDie;
            a.block = g.blocksPerPlane - 1 - i / g.planesPerDie;
            mapping.retireBlock(mapping.unitOf(a), a.block);
            _controllers[ch]->rbt().add(channelBlockId(g, a));
        }
    }
}

void
DecoupledDatapath::registerChannelStats(StatRegistry &reg,
                                        const std::string &channel_prefix,
                                        unsigned ch) const
{
    _controllers[ch]->registerStats(reg, channel_prefix + ".cd");
}

void
DecoupledDatapath::registerStats(StatRegistry &reg,
                                 const std::string &prefix) const
{
    if (const NocNetwork *noc = asNoc(_interconnect.get()))
        noc->registerStats(reg, prefix + ".noc");
}

void
DecoupledDatapath::registerAudits(Auditor &auditor,
                                  const std::string &prefix)
{
    for (auto &dc : _controllers) {
        auditor.addCheck(
            prefix +
                strformat("controller.ch%u", dc->channel().channelId()),
            [c = dc.get()](AuditReport &r) { c->audit(r); });
    }
    if (NocNetwork *noc = asNoc(_interconnect.get())) {
        auditor.addCheck(prefix + "noc.network",
                         [noc](AuditReport &r) { noc->audit(r); });
    }
}

} // namespace dssd
