/**
 * @file
 * fNoC topologies: 1-D mesh (the paper's default, k=8 n=1), ring, and
 * crossbar (Sec 6.3, Fig 13).
 *
 * A topology enumerates directed links and computes deterministic
 * minimal routes. Bisection link counts let benches hold bisection
 * bandwidth constant across topologies, exactly as Fig 13 does.
 */

#ifndef DSSD_NOC_TOPOLOGY_HH
#define DSSD_NOC_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dssd
{

/** A directed link between two routers. */
struct NocLink
{
    unsigned id;
    unsigned from;
    unsigned to;
};

/** Abstract base for fNoC topologies. */
class Topology
{
  public:
    virtual ~Topology() = default;

    virtual const std::string &name() const = 0;
    virtual unsigned numNodes() const = 0;
    virtual unsigned numLinks() const = 0;
    virtual const NocLink &link(unsigned id) const = 0;

    /**
     * Deterministic minimal route from @p src to @p dst as an ordered
     * list of link ids. Empty when src == dst.
     */
    virtual std::vector<unsigned> route(unsigned src, unsigned dst)
        const = 0;

    /**
     * Number of unidirectional links crossing the worst-case bisection.
     * Bisection bandwidth = bisectionLinks() * per-link bandwidth.
     */
    virtual unsigned bisectionLinks() const = 0;

    /**
     * Whether a route's links are occupied simultaneously (crossbar
     * input+output port model) instead of hop-by-hop.
     */
    virtual bool simultaneousLinks() const { return false; }

    /**
     * Whether @p link_id crosses the dateline (ring wrap-around).
     * Packets switch to the escape virtual channel there, the classic
     * deadlock-avoidance rule for rings.
     */
    virtual bool datelineLink(unsigned link_id) const
    {
        (void)link_id;
        return false;
    }

    /** Average hop count over all src!=dst pairs. */
    double averageHops() const;
};

/**
 * 1-D mesh (a line of k routers). Dimension-order routing degenerates
 * to "walk toward the destination". Matches the paper's fNoC default
 * (k=8, n=1) and the linear floorplan of flash controllers.
 */
class Mesh1D : public Topology
{
  public:
    explicit Mesh1D(unsigned k);

    const std::string &name() const override { return _name; }
    unsigned numNodes() const override { return _k; }
    unsigned numLinks() const override
    {
        return static_cast<unsigned>(_links.size());
    }
    const NocLink &link(unsigned id) const override { return _links[id]; }
    std::vector<unsigned> route(unsigned src, unsigned dst) const override;
    unsigned bisectionLinks() const override { return 2; }

  private:
    /** Link id for the hop from node n toward n+1 (dir=0) or n-1 (1). */
    unsigned hopLink(unsigned node, bool backward) const;

    unsigned _k;
    std::string _name;
    std::vector<NocLink> _links;
};

/** Bidirectional ring; packets take the shorter direction. */
class Ring : public Topology
{
  public:
    explicit Ring(unsigned k);

    const std::string &name() const override { return _name; }
    unsigned numNodes() const override { return _k; }
    unsigned numLinks() const override
    {
        return static_cast<unsigned>(_links.size());
    }
    const NocLink &link(unsigned id) const override { return _links[id]; }
    std::vector<unsigned> route(unsigned src, unsigned dst) const override;
    unsigned bisectionLinks() const override { return 4; }
    bool datelineLink(unsigned link_id) const override
    {
        return link_id == _k - 1 || link_id == _k;
    }

  private:
    unsigned _k;
    std::string _name;
    std::vector<NocLink> _links;
};

/**
 * Non-blocking crossbar: every node has one input port and one output
 * port into the switch; a transfer occupies the source's output port
 * and the destination's input port simultaneously.
 */
class Crossbar : public Topology
{
  public:
    explicit Crossbar(unsigned k);

    const std::string &name() const override { return _name; }
    unsigned numNodes() const override { return _k; }
    unsigned numLinks() const override
    {
        return static_cast<unsigned>(_links.size());
    }
    const NocLink &link(unsigned id) const override { return _links[id]; }
    std::vector<unsigned> route(unsigned src, unsigned dst) const override;
    unsigned bisectionLinks() const override { return _k; }
    bool simultaneousLinks() const override { return true; }

  private:
    unsigned _k;
    std::string _name;
    std::vector<NocLink> _links;
};

/** Factory by name: "mesh", "ring", "crossbar". */
std::unique_ptr<Topology> makeTopology(const std::string &kind, unsigned k);

} // namespace dssd

#endif // DSSD_NOC_TOPOLOGY_HH
