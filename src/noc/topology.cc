#include "noc/topology.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dssd
{

double
Topology::averageHops() const
{
    unsigned n = numNodes();
    if (n < 2)
        return 0.0;
    std::uint64_t hops = 0;
    std::uint64_t pairs = 0;
    for (unsigned s = 0; s < n; ++s) {
        for (unsigned d = 0; d < n; ++d) {
            if (s == d)
                continue;
            hops += route(s, d).size();
            ++pairs;
        }
    }
    return static_cast<double>(hops) / static_cast<double>(pairs);
}

//
// Mesh1D
//

Mesh1D::Mesh1D(unsigned k) : _k(k), _name("mesh1d")
{
    if (k < 2)
        fatal("Mesh1D needs at least 2 nodes");
    // Forward links 0..k-2: n -> n+1; backward links k-1..2k-3: n -> n-1.
    _links.reserve(2 * (static_cast<std::size_t>(k) - 1));
    for (unsigned n = 0; n + 1 < k; ++n)
        _links.push_back({static_cast<unsigned>(_links.size()), n, n + 1});
    for (unsigned n = 1; n < k; ++n)
        _links.push_back({static_cast<unsigned>(_links.size()), n, n - 1});
}

unsigned
Mesh1D::hopLink(unsigned node, bool backward) const
{
    if (!backward)
        return node;                 // n -> n+1 stored at index n
    return (_k - 1) + (node - 1);    // n -> n-1 stored after forwards
}

std::vector<unsigned>
Mesh1D::route(unsigned src, unsigned dst) const
{
    if (src >= _k || dst >= _k)
        panic("Mesh1D route out of range: %u -> %u", src, dst);
    std::vector<unsigned> r;
    r.reserve(src < dst ? dst - src : src - dst);
    unsigned n = src;
    while (n < dst) {
        r.push_back(hopLink(n, false));
        ++n;
    }
    while (n > dst) {
        r.push_back(hopLink(n, true));
        --n;
    }
    return r;
}

//
// Ring
//

Ring::Ring(unsigned k) : _k(k), _name("ring")
{
    if (k < 3)
        fatal("Ring needs at least 3 nodes");
    // Clockwise links 0..k-1: n -> (n+1)%k; counter-clockwise k..2k-1.
    _links.reserve(2 * static_cast<std::size_t>(k));
    for (unsigned n = 0; n < k; ++n)
        _links.push_back({n, n, (n + 1) % k});
    for (unsigned n = 0; n < k; ++n)
        _links.push_back({k + n, n, (n + k - 1) % k});
}

std::vector<unsigned>
Ring::route(unsigned src, unsigned dst) const
{
    if (src >= _k || dst >= _k)
        panic("Ring route out of range: %u -> %u", src, dst);
    std::vector<unsigned> r;
    if (src == dst)
        return r;
    unsigned cw = (dst + _k - src) % _k;
    unsigned ccw = _k - cw;
    r.reserve(std::min(cw, ccw));
    unsigned n = src;
    if (cw <= ccw) {
        for (unsigned i = 0; i < cw; ++i) {
            r.push_back(n); // clockwise link id == node id
            n = (n + 1) % _k;
        }
    } else {
        for (unsigned i = 0; i < ccw; ++i) {
            r.push_back(_k + n);
            n = (n + _k - 1) % _k;
        }
    }
    return r;
}

//
// Crossbar
//

Crossbar::Crossbar(unsigned k) : _k(k), _name("crossbar")
{
    if (k < 2)
        fatal("Crossbar needs at least 2 nodes");
    // Output ports 0..k-1 (node -> switch), input ports k..2k-1
    // (switch -> node). The 'from'/'to' fields both name the node.
    _links.reserve(2 * static_cast<std::size_t>(k));
    for (unsigned n = 0; n < k; ++n)
        _links.push_back({n, n, n});
    for (unsigned n = 0; n < k; ++n)
        _links.push_back({k + n, n, n});
}

std::vector<unsigned>
Crossbar::route(unsigned src, unsigned dst) const
{
    if (src >= _k || dst >= _k)
        panic("Crossbar route out of range: %u -> %u", src, dst);
    if (src == dst)
        return {};
    return {src, _k + dst};
}

std::unique_ptr<Topology>
makeTopology(const std::string &kind, unsigned k)
{
    if (kind == "mesh" || kind == "mesh1d")
        return std::make_unique<Mesh1D>(k);
    if (kind == "ring")
        return std::make_unique<Ring>(k);
    if (kind == "crossbar" || kind == "xbar")
        return std::make_unique<Crossbar>(k);
    fatal("unknown topology '%s'", kind.c_str());
}

} // namespace dssd
