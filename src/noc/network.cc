#include "noc/network.hh"

#include <algorithm>
#include <utility>

#include "fault/fault.hh"
#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

/** Per-packet in-flight state. */
struct NocNetwork::Transit
{
    unsigned src = 0;
    unsigned dst = 0;
    std::uint64_t totalBytes = 0;
    int tag = tagGc;
    std::vector<unsigned> route;
    unsigned hop = 0;
    unsigned vc = 0;
    /// Buffer index (node*2+vc) currently held, or -1.
    int heldBuffer = -1;
    Tick injectTime = 0;
    /// Tail arrival time at the node reached by the last transmitted hop.
    Tick tailArrive = 0;
    /// Trace span id (Tracer::nextSpanId; 0 when tracing is off). Spans
    /// must match begin to end across the packet's lifetime, so the id
    /// lives here rather than being an object address — addresses would
    /// make the trace file differ run to run.
    std::uint64_t spanId = 0;
    Callback done;
};

NocNetwork::NocNetwork(Engine &engine, std::unique_ptr<Topology> topo,
                       const NocParams &params)
    : _engine(engine), _topo(std::move(topo)), _params(params)
{
    if (_params.linkBandwidth <= 0.0)
        fatal("NocNetwork: link bandwidth must be positive");
    _links.reserve(_topo->numLinks());
    for (unsigned l = 0; l < _topo->numLinks(); ++l) {
        _links.push_back(std::make_unique<BandwidthResource>(
            _engine, strformat("%s-link%u", _topo->name().c_str(), l),
            _params.linkBandwidth));
    }
    _buffers.reserve(static_cast<std::size_t>(_topo->numLinks()) * 2);
    for (unsigned l = 0; l < _topo->numLinks(); ++l) {
        for (unsigned vc = 0; vc < 2; ++vc) {
            _buffers.push_back(std::make_unique<SlotResource>(
                _engine, strformat("link%u-vc%u-buf", l, vc),
                _params.bufferPackets));
        }
    }
}

SlotResource &
NocNetwork::buffer(unsigned link, unsigned vc)
{
    return *_buffers[link * 2 + vc];
}

void
NocNetwork::tracePacketBegin(Transit &t)
{
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        int pid = tr->process("noc");
        t.spanId = tr->nextSpanId();
        tr->asyncBegin(pid, "packet", "packet", t.spanId, t.injectTime);
    }
#endif
}

void
NocNetwork::tracePacketEnd(const Transit &t)
{
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        int pid = tr->process("noc");
        tr->asyncEnd(pid, "packet", "packet", t.spanId, _engine.now());
    }
#endif
}

void
NocNetwork::send(unsigned src, unsigned dst, std::uint64_t bytes, int tag,
                 Callback done)
{
    if (src >= _topo->numNodes() || dst >= _topo->numNodes())
        panic("NocNetwork::send out of range: %u -> %u", src, dst);

    auto t = std::make_shared<Transit>();
    t->src = src;
    t->dst = dst;
    t->totalBytes = bytes + _params.headerBytes;
    t->tag = tag;
    t->route = _topo->route(src, dst);
    t->injectTime = _engine.now();
    t->done = std::move(done);
    ++_inFlight;
    ++_packetsInjected;
    tracePacketBegin(*t);

    if (t->route.empty()) {
        // Degenerate src == dst injection: loop through the local NI.
        Tick lat = _params.hopLatency;
        _engine.schedule(lat, [this, t] {
            _latency.sample(static_cast<double>(_engine.now() -
                                                t->injectTime));
            tracePacketEnd(*t);
            ++_packetsDelivered;
            _bytesDelivered += t->totalBytes;
            --_inFlight;
            t->done();
        });
        return;
    }

    advance(t);
}

void
NocNetwork::advance(const std::shared_ptr<Transit> &t)
{
    if (t->hop >= t->route.size())
        panic("advance past end of route");

    if (_topo->simultaneousLinks()) {
        // Crossbar: hold a credit at the destination's input port,
        // then occupy the source output port and destination input
        // port together.
        buffer(t->route[1], 0).acquire([this, t] { transmit(t); });
        return;
    }

    unsigned link_id = t->route[t->hop];
    unsigned vc = t->vc;
    if (_topo->datelineLink(link_id))
        vc = 1; // escape VC past the ring dateline
    buffer(link_id, vc).acquire([this, t, vc] {
        t->vc = vc;
        transmit(t);
    });
}

bool
NocNetwork::deliveryCorrupted()
{
    if (_forceCorrupt > 0) {
        --_forceCorrupt;
        return true;
    }
    return _fault && _fault->packetCorrupted();
}

void
NocNetwork::retransmit(const std::shared_ptr<Transit> &t)
{
    // CRC failure detected at the destination NI: the packet is
    // dropped there (its input-buffer credit was already released, so
    // credit accounting is untouched), a NACK/timeout elapses, and the
    // source injects a fresh copy along the same route. The packet
    // stays in flight until a good copy lands, preserving packet
    // conservation; its latency sample includes every retransmission.
    ++_crcDrops;
    ++_retransmitsPending;
    Tick nack = _fault ? _fault->params().nocNackDelay : usToTicks(2);
    std::uint64_t span_id = 0;
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        int pid = tr->process("fault");
        span_id = tr->nextSpanId();
        tr->asyncBegin(pid, "fault", "retransmit", span_id,
                       _engine.now());
    }
#endif
    _engine.schedule(nack, [this, t, span_id] {
        (void)span_id;
#if DSSD_TRACING
        Tracer *etr = _engine.tracer();
        if (etr) {
            int pid = etr->process("fault");
            etr->asyncEnd(pid, "fault", "retransmit", span_id,
                          _engine.now());
        }
#endif
        --_retransmitsPending;
        ++_retransmits;
        t->hop = 0;
        t->vc = 0;
        t->heldBuffer = -1;
        advance(t);
    });
}

void
NocNetwork::transmit(const std::shared_ptr<Transit> &t)
{
    if (_topo->simultaneousLinks()) {
        BandwidthResource &out = *_links[t->route[0]];
        BandwidthResource &in = *_links[t->route[1]];
        Tick start = std::max({_engine.now(), out.busyUntil(),
                               in.busyUntil()});
        out.reserveFrom(start, t->totalBytes, t->tag);
        Tick end = in.reserveFrom(start, t->totalBytes, t->tag);
        Tick arrive = end + _params.hopLatency;
        int held = static_cast<int>(t->route[1] * 2);
        _engine.scheduleAbs(arrive, [this, t, held] {
            _buffers[static_cast<unsigned>(held)]->release();
            if (deliveryCorrupted()) {
                retransmit(t);
                return;
            }
            _latency.sample(static_cast<double>(_engine.now() -
                                                t->injectTime));
            tracePacketEnd(*t);
            ++_packetsDelivered;
            _bytesDelivered += t->totalBytes;
            --_inFlight;
            t->done();
        });
        return;
    }

    unsigned link_id = t->route[t->hop];
    BandwidthResource &link = *_links[link_id];

    Tick end = link.reserve(t->totalBytes, t->tag);
    Tick start = end - link.duration(t->totalBytes);
    Tick head_arrive = start + _params.hopLatency;
    Tick tail_arrive = end + _params.hopLatency;

    // The packet's tail leaves the upstream node once it has fully
    // serialized onto this link; free that node's input buffer then.
    if (t->heldBuffer >= 0) {
        unsigned held = static_cast<unsigned>(t->heldBuffer);
        _engine.scheduleAbs(end, [this, held] {
            _buffers[held]->release();
        });
    }
    t->heldBuffer = static_cast<int>(link_id * 2 + t->vc);
    t->tailArrive = tail_arrive;
    ++t->hop;

    if (t->hop == t->route.size()) {
        // Delivered once the tail reaches the destination router; the
        // NI then drains it into the dBUF and frees the input buffer.
        _engine.scheduleAbs(tail_arrive, [this, t] {
            unsigned held = static_cast<unsigned>(t->heldBuffer);
            _buffers[held]->release();
            if (deliveryCorrupted()) {
                retransmit(t);
                return;
            }
            _latency.sample(static_cast<double>(_engine.now() -
                                                t->injectTime));
            tracePacketEnd(*t);
            ++_packetsDelivered;
            _bytesDelivered += t->totalBytes;
            --_inFlight;
            t->done();
        });
    } else {
        // Cut-through: the next hop may begin once the head arrives.
        _engine.scheduleAbs(head_arrive, [this, t] { advance(t); });
    }
}

Tick
NocNetwork::totalBusyTicks() const
{
    Tick sum = 0;
    for (const auto &l : _links)
        sum += l->totalBusyTicks();
    return sum;
}

Tick
NocNetwork::linkBusyTicks(unsigned link) const
{
    if (link >= _links.size())
        return 0;
    return _links[link]->totalBusyTicks();
}

void
NocNetwork::setLinkBandwidth(BytesPerTick bw)
{
    _params.linkBandwidth = bw;
    for (auto &l : _links)
        l->setBandwidth(bw);
}

void
NocNetwork::audit(AuditReport &r) const
{
    // Packet conservation: every injected packet is either still in
    // the network or was delivered, never duplicated or dropped.
    if (_packetsInjected != _packetsDelivered + _inFlight) {
        r.fail("packet conservation: %llu injected != %llu delivered "
               "+ %llu in flight",
               static_cast<unsigned long long>(_packetsInjected),
               static_cast<unsigned long long>(_packetsDelivered),
               static_cast<unsigned long long>(_inFlight));
    }
    if (_bytesDelivered <
        _packetsDelivered * _params.headerBytes) {
        r.fail("delivered %llu bytes for %llu packets, below the "
               "header overhead alone",
               static_cast<unsigned long long>(_bytesDelivered),
               static_cast<unsigned long long>(_packetsDelivered));
    }

    // Retransmission accounting: every CRC drop is either already
    // retransmitted or waiting out its NACK delay, and an idle network
    // has nothing waiting.
    if (_crcDrops != _retransmits + _retransmitsPending) {
        r.fail("retransmit conservation: %llu CRC drops != %llu "
               "retransmits + %llu pending",
               static_cast<unsigned long long>(_crcDrops),
               static_cast<unsigned long long>(_retransmits),
               static_cast<unsigned long long>(_retransmitsPending));
    }
    if (_inFlight == 0 && _retransmitsPending != 0) {
        r.fail("retransmit leak: %llu NACKs pending with no packet in "
               "flight",
               static_cast<unsigned long long>(_retransmitsPending));
    }

    // Credit conservation at each router input buffer.
    for (const auto &buf : _buffers) {
        if (buf->freeSlots() > buf->capacity()) {
            r.fail("credit overflow: buffer %s reports %u free slots "
                   "of %u",
                   buf->name().c_str(), buf->freeSlots(),
                   buf->capacity());
        }
        if (_inFlight == 0 && buf->freeSlots() != buf->capacity()) {
            r.fail("credit leak: buffer %s holds %u credits with no "
                   "packet in flight",
                   buf->name().c_str(),
                   buf->capacity() - buf->freeSlots());
        }
    }
}

void
NocNetwork::debugDropCredit(unsigned link, unsigned vc)
{
    buffer(link, vc).tryAcquire();
}

void
NocNetwork::registerStats(StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.addScalar(prefix + ".packets_injected", [this] {
        return static_cast<double>(_packetsInjected);
    });
    reg.addScalar(prefix + ".packets_delivered", [this] {
        return static_cast<double>(_packetsDelivered);
    });
    reg.addScalar(prefix + ".bytes_delivered", [this] {
        return static_cast<double>(_bytesDelivered);
    });
    reg.addScalar(prefix + ".crc_drops", [this] {
        return static_cast<double>(_crcDrops);
    });
    reg.addScalar(prefix + ".retransmits", [this] {
        return static_cast<double>(_retransmits);
    });
    reg.addSample(prefix + ".latency", &_latency);
    for (std::size_t l = 0; l < _links.size(); ++l)
        _links[l]->registerStats(reg, prefix + strformat(".link%zu", l));
    for (std::size_t b = 0; b < _buffers.size(); ++b) {
        _buffers[b]->registerStats(reg,
                                   prefix + "." + _buffers[b]->name());
    }
}

} // namespace dssd
