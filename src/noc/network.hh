/**
 * @file
 * fNoC network model: packet-granularity virtual cut-through with
 * credit-based (finite input buffer) backpressure.
 *
 * A packet carries one page plus a header ("the data is appended with
 * the command information as well as the packet header"). At each hop
 * the packet (1) waits for an input-buffer credit at the downstream
 * router, (2) serializes over the link (bytes / link-bandwidth), and
 * (3) incurs the router pipeline + wire latency. Transmission on hop
 * h+1 begins when the head arrives (cut-through), so a long packet
 * occupies consecutive links simultaneously but each link only for its
 * serialization time — bandwidth behaviour matches a wormhole network
 * at packet granularity.
 *
 * Ring deadlock freedom uses the classic dateline rule: packets switch
 * to virtual channel 1 when crossing the wrap-around link.
 */

#ifndef DSSD_NOC_NETWORK_HH
#define DSSD_NOC_NETWORK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bus/interconnect.hh"
#include "noc/topology.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace dssd
{

class AuditReport;
class FaultModel;
class StatRegistry;

/** Tunables for the fNoC (Fig 12/13 sweep these). */
struct NocParams
{
    /// Per-link (router channel) bandwidth. The paper expresses this as
    /// a ratio to the 1 GB/s flash-channel bandwidth.
    BytesPerTick linkBandwidth = gbPerSec(2.0);
    /// Router pipeline + link traversal latency per hop.
    Tick hopLatency = 10;
    /// Input buffer depth per router per virtual channel, in packets.
    unsigned bufferPackets = 4;
    /// Packet header + command/address overhead appended to the page.
    std::uint64_t headerBytes = 32;
};

/**
 * The flash-controller network-on-chip. Implements Interconnect so
 * the dSSD_f configuration can plug it into the copyback datapath.
 */
class NocNetwork : public Interconnect
{
  public:
    NocNetwork(Engine &engine, std::unique_ptr<Topology> topo,
               const NocParams &params);

    InterconnectKind kind() const override
    {
        return InterconnectKind::Noc;
    }

    /** Inject a packet of @p bytes payload from @p src to @p dst. */
    void send(unsigned src, unsigned dst, std::uint64_t bytes, int tag,
              Callback done) override;

    Tick totalBusyTicks() const override;
    std::uint64_t bytesDelivered() const override { return _bytesDelivered; }

    std::uint64_t packetsDelivered() const { return _packetsDelivered; }
    std::uint64_t packetsInFlight() const { return _inFlight; }
    std::uint64_t packetsInjected() const { return _packetsInjected; }
    /** Packets whose CRC check failed at the destination NI. */
    std::uint64_t crcDrops() const { return _crcDrops; }
    /** Completed NACK/timeout retransmissions. */
    std::uint64_t retransmits() const { return _retransmits; }

    /**
     * Attach the fault model (null = fault-free). Each delivery then
     * samples a CRC check; corrupted packets are dropped at the
     * destination NI and retransmitted from the source after the
     * NACK/timeout delay, without disturbing credit accounting.
     */
    void setFaultModel(FaultModel *fault) { _fault = fault; }

    /** Test hook: corrupt the next delivery attempt (FIFO count),
     *  regardless of the fault model's CRC probability. */
    void debugCorruptNext() { ++_forceCorrupt; }

    /** End-to-end packet latency distribution (ticks). */
    const SampleStat &latency() const { return _latency; }

    const Topology &topology() const { return *_topo; }
    const NocParams &params() const { return _params; }

    /** Per-link busy ticks, for utilization reporting. */
    Tick linkBusyTicks(unsigned link) const;

    /** Change every link's bandwidth (used by the Fig 12 sweeps). */
    void setLinkBandwidth(BytesPerTick bw);

    /**
     * Cross-check flit/credit conservation: injected packets equal
     * delivered plus in-flight, input-buffer credit counts never
     * exceed their capacity, and an idle network (nothing in flight)
     * holds every credit free. See sim/audit.hh.
     */
    void audit(AuditReport &report) const;

    /**
     * Fault-injection hook for auditor tests ONLY: silently consume
     * one input-buffer credit on @p link / @p vc, as a lost credit
     * release would.
     */
    void debugDropCredit(unsigned link, unsigned vc);

    /** Register packet counters, latency, links, and buffers under
     *  @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Transit;

    /** Open/close the end-to-end per-packet trace span. */
    void tracePacketBegin(Transit &t);
    void tracePacketEnd(const Transit &t);

    /** Move @p t through its next hop (or deliver it). */
    void advance(const std::shared_ptr<Transit> &t);

    /** Sample (or force) CRC corruption for a delivery attempt. */
    bool deliveryCorrupted();

    /** Drop @p t at the destination NI and re-inject after the NACK
     *  delay. */
    void retransmit(const std::shared_ptr<Transit> &t);

    /** Transmit @p t over route link index t->hop once credit is held. */
    void transmit(const std::shared_ptr<Transit> &t);

    /**
     * Input-port buffer at the downstream router of @p link. Buffers
     * are per input port (per link), as in a real router — sharing one
     * pool per node would let forward and backward traffic deadlock
     * each other.
     */
    SlotResource &buffer(unsigned link, unsigned vc);

    Engine &_engine;
    std::unique_ptr<Topology> _topo;
    NocParams _params;
    std::vector<std::unique_ptr<BandwidthResource>> _links;
    /// _buffers[link * 2 + vc]
    std::vector<std::unique_ptr<SlotResource>> _buffers;

    FaultModel *_fault = nullptr;
    unsigned _forceCorrupt = 0;

    SampleStat _latency{"noc-packet-latency"};
    std::uint64_t _packetsDelivered = 0;
    std::uint64_t _bytesDelivered = 0;
    std::uint64_t _inFlight = 0;
    std::uint64_t _packetsInjected = 0;
    std::uint64_t _crcDrops = 0;
    std::uint64_t _retransmits = 0;
    std::uint64_t _retransmitsPending = 0;
};

/**
 * Checked downcast: the fNoC behind @p ic, or null when @p ic is null
 * or a different interconnect kind. Replaces cached NocNetwork* views
 * sitting next to the owning pointer.
 */
inline NocNetwork *
asNoc(Interconnect *ic)
{
    if (!ic || ic->kind() != InterconnectKind::Noc)
        return nullptr;
    return static_cast<NocNetwork *>(ic);
}

inline const NocNetwork *
asNoc(const Interconnect *ic)
{
    if (!ic || ic->kind() != InterconnectKind::Noc)
        return nullptr;
    return static_cast<const NocNetwork *>(ic);
}

} // namespace dssd

#endif // DSSD_NOC_NETWORK_HH
