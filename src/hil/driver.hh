/**
 * @file
 * Host-interface queue driver.
 *
 * Pumps requests from a Generator into the SSD keeping a fixed number
 * outstanding (the paper uses queue depth 64 "to fully utilize the
 * SSD"), and collects end-to-end latency and bandwidth statistics.
 * Requests carrying absolute timestamps (trace replay) are not issued
 * before their issueAt time.
 */

#ifndef DSSD_HIL_DRIVER_HH
#define DSSD_HIL_DRIVER_HH

#include <functional>

#include "sim/engine.hh"
#include "sim/stats.hh"
#include "workload/generator.hh"

namespace dssd
{

class StatRegistry;

/** Queue-depth-driven request pump with latency/bandwidth stats. */
class QueueDriver
{
  public:
    /** The SSD entry point: process @p req, call the callback at
     *  completion. */
    using SubmitFn =
        std::function<void(const IoRequest &, Engine::Callback)>;

    /**
     * @param window Stat window for the bandwidth time series
     *        (Fig 2 uses 1 ms).
     */
    QueueDriver(Engine &engine, Generator &gen, SubmitFn submit,
                unsigned queue_depth, Tick window = tickMs);

    /** Begin issuing requests. */
    void start();

    /** Stop pulling new requests (in-flight ones complete). */
    void stop() { _stopped = true; }

    unsigned queueDepth() const { return _queueDepth; }

    /**
     * Retarget the queue depth at runtime. Growing while running pumps
     * immediately to fill the new slots; shrinking lets the excess
     * in-flight requests drain naturally (none are cancelled).
     */
    void setQueueDepth(unsigned queue_depth);

    /** Window of the bandwidth time series, in ticks. */
    Tick statWindow() const { return _ioBytes.window(); }

    /**
     * Rebuild the bandwidth time series with a new window width.
     * Discards samples collected so far; meant to be called before
     * start() when one driver instance serves differently-scaled runs.
     */
    void setStatWindow(Tick window);

    bool finished() const { return _finished; }
    std::uint64_t completed() const { return _completed; }
    std::uint64_t outstanding() const { return _outstanding; }

    const SampleStat &readLatency() const { return _readLat; }
    const SampleStat &writeLatency() const { return _writeLat; }
    const SampleStat &allLatency() const { return _allLat; }

    /** Completed I/O bytes per window: the I/O-bandwidth series. */
    const RateSeries &ioBytes() const { return _ioBytes; }

    /** Called once when the generator drains and all I/O completes. */
    void onFinished(Engine::Callback cb) { _onFinished = std::move(cb); }

    /** Register completion counters and latency/bandwidth stats
     *  under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    void pump();
    void issue(const IoRequest &req);

    Engine &_engine;
    Generator &_gen;
    SubmitFn _submit;
    unsigned _queueDepth;
    unsigned _outstanding = 0;
    bool _started = false;
    bool _exhausted = false;
    bool _stopped = false;
    bool _finished = false;
    std::uint64_t _completed = 0;
    std::uint64_t _nextReqId = 0; ///< trace span ids (see issue)
    SampleStat _readLat{"read-latency"};
    SampleStat _writeLat{"write-latency"};
    SampleStat _allLat{"io-latency"};
    RateSeries _ioBytes;
    Engine::Callback _onFinished;
};

} // namespace dssd

#endif // DSSD_HIL_DRIVER_HH
