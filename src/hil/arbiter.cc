#include "hil/arbiter.hh"

#include "sim/log.hh"

namespace dssd
{

const char *
arbiterPolicyName(ArbiterPolicy policy)
{
    switch (policy) {
      case ArbiterPolicy::RoundRobin:
        return "rr";
      case ArbiterPolicy::WeightedRoundRobin:
        return "wrr";
      case ArbiterPolicy::StrictPriority:
        return "prio";
    }
    return "?";
}

std::optional<ArbiterPolicy>
parseArbiterPolicy(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return ArbiterPolicy::RoundRobin;
    if (name == "wrr" || name == "weighted")
        return ArbiterPolicy::WeightedRoundRobin;
    if (name == "prio" || name == "priority")
        return ArbiterPolicy::StrictPriority;
    return std::nullopt;
}

Arbiter::Arbiter(ArbiterPolicy policy, std::uint64_t quantum_bytes)
    : _policy(policy), _quantum(quantum_bytes)
{
    if (quantum_bytes == 0)
        fatal("arbiter quantum must be > 0");
}

unsigned
Arbiter::addQueue(unsigned weight, unsigned priority)
{
    if (weight == 0)
        fatal("arbiter queue weight must be > 0");
    _weights.push_back(weight);
    _priorities.push_back(priority);
    _deficit.push_back(0);
    return static_cast<unsigned>(_weights.size() - 1);
}

int
Arbiter::pick(const std::vector<ArbiterQueueState> &states)
{
    if (states.size() != _weights.size())
        fatal("arbiter pick: %zu states for %zu queues", states.size(),
              _weights.size());
    if (states.empty())
        return -1;
    switch (_policy) {
      case ArbiterPolicy::RoundRobin:
        return pickRoundRobin(states);
      case ArbiterPolicy::WeightedRoundRobin:
        return pickWeighted(states);
      case ArbiterPolicy::StrictPriority:
        return pickPriority(states);
    }
    return -1;
}

int
Arbiter::pickRoundRobin(const std::vector<ArbiterQueueState> &states)
{
    unsigned n = queueCount();
    for (unsigned step = 1; step <= n; ++step) {
        unsigned q = (_cursor + step) % n;
        if (states[q].eligible) {
            _cursor = q;
            return static_cast<int>(q);
        }
    }
    return -1;
}

int
Arbiter::pickWeighted(const std::vector<ArbiterQueueState> &states)
{
    unsigned n = queueCount();
    bool any = false;
    for (const ArbiterQueueState &s : states)
        any = any || s.eligible;
    if (!any)
        return -1;

    // Deficit round robin: continue serving the cursor's queue while
    // its deficit covers the head; otherwise advance, recharging each
    // eligible queue by quantum * weight on entry. An ineligible
    // (empty or blocked) queue forfeits its deficit, per DRR.
    unsigned q = _cursor;
    // Large requests may need several whole recharge rounds; the cap
    // only guards against a logic error, not a legitimate state.
    std::uint64_t guard = 0;
    std::uint64_t max_rounds = 0;
    for (const ArbiterQueueState &s : states) {
        if (s.eligible)
            max_rounds = std::max(max_rounds,
                                  s.headBytes / _quantum + 2);
    }
    while (guard++ <= static_cast<std::uint64_t>(n) * max_rounds) {
        if (states[q].eligible) {
            if (!_charged) {
                _deficit[q] += _quantum * _weights[q];
                _charged = true;
            }
            if (_deficit[q] >= states[q].headBytes) {
                _deficit[q] -= states[q].headBytes;
                _cursor = q;
                return static_cast<int>(q);
            }
        } else {
            _deficit[q] = 0;
        }
        q = (q + 1) % n;
        _charged = false;
    }
    fatal("weighted arbiter failed to converge");
}

int
Arbiter::pickPriority(const std::vector<ArbiterQueueState> &states)
{
    unsigned n = queueCount();
    bool any = false;
    unsigned best = 0;
    for (unsigned q = 0; q < n; ++q) {
        if (states[q].eligible) {
            if (!any || _priorities[q] > best)
                best = _priorities[q];
            any = true;
        }
    }
    if (!any)
        return -1;
    // Round-robin within the winning priority level.
    for (unsigned step = 1; step <= n; ++step) {
        unsigned q = (_cursor + step) % n;
        if (states[q].eligible && _priorities[q] == best) {
            _cursor = q;
            return static_cast<int>(q);
        }
    }
    return -1;
}

} // namespace dssd
