#include "hil/driver.hh"

#include <utility>

#include "sim/log.hh"

namespace dssd
{

QueueDriver::QueueDriver(Engine &engine, Generator &gen, SubmitFn submit,
                         unsigned queue_depth, Tick window)
    : _engine(engine), _gen(gen), _submit(std::move(submit)),
      _queueDepth(queue_depth), _ioBytes(window, "io-bytes")
{
    if (queue_depth == 0)
        fatal("queue depth must be > 0");
}

void
QueueDriver::start()
{
    pump();
}

void
QueueDriver::pump()
{
    while (!_stopped && !_exhausted && _outstanding < _queueDepth) {
        auto req = _gen.next();
        if (!req) {
            _exhausted = true;
            break;
        }
        if (req->issueAt > _engine.now()) {
            // Trace replay: hold this request until its timestamp.
            ++_outstanding; // reserve the slot while waiting
            _engine.scheduleAbs(req->issueAt, [this, r = *req] {
                --_outstanding;
                issue(r);
                pump();
            });
            break;
        }
        issue(*req);
    }
    if ((_exhausted || _stopped) && _outstanding == 0 && !_finished) {
        _finished = true;
        if (_onFinished)
            _onFinished();
    }
}

void
QueueDriver::issue(const IoRequest &req)
{
    ++_outstanding;
    Tick submit_time = _engine.now();
    _submit(req, [this, req, submit_time] {
        Tick lat = _engine.now() - submit_time;
        double lat_d = static_cast<double>(lat);
        _allLat.sample(lat_d);
        if (req.isRead())
            _readLat.sample(lat_d);
        else
            _writeLat.sample(lat_d);
        _ioBytes.add(_engine.now(), static_cast<double>(req.bytes));
        ++_completed;
        --_outstanding;
        pump();
    });
}

} // namespace dssd
