#include "hil/driver.hh"

#include <utility>

#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

QueueDriver::QueueDriver(Engine &engine, Generator &gen, SubmitFn submit,
                         unsigned queue_depth, Tick window)
    : _engine(engine), _gen(gen), _submit(std::move(submit)),
      _queueDepth(queue_depth), _ioBytes(window, "io-bytes")
{
    if (queue_depth == 0)
        fatal("queue depth must be > 0");
}

void
QueueDriver::start()
{
    _started = true;
    pump();
}

void
QueueDriver::setQueueDepth(unsigned queue_depth)
{
    if (queue_depth == 0)
        fatal("queue depth must be > 0");
    bool grew = queue_depth > _queueDepth;
    _queueDepth = queue_depth;
    if (grew && _started)
        pump();
}

void
QueueDriver::setStatWindow(Tick window)
{
    _ioBytes = RateSeries(window, "io-bytes");
}

void
QueueDriver::pump()
{
    while (!_stopped && !_exhausted && _outstanding < _queueDepth) {
        auto req = _gen.next();
        if (!req) {
            _exhausted = true;
            break;
        }
        if (req->issueAt > _engine.now()) {
            // Trace replay: hold this request until its timestamp,
            // keeping a queue slot reserved for it. Continue pulling —
            // a `break` here would serialize burst arrivals behind one
            // timer and deadlock behind an out-of-order issueAt; with
            // one slot held per waiting request, up to QD future
            // requests wait concurrently, each firing at its own time.
            ++_outstanding; // reserve the slot while waiting
            _engine.scheduleAbs(req->issueAt, [this, r = *req] {
                --_outstanding;
                issue(r);
                pump();
            });
            continue;
        }
        issue(*req);
    }
    if ((_exhausted || _stopped) && _outstanding == 0 && !_finished) {
        _finished = true;
        if (_onFinished)
            _onFinished();
    }
}

void
QueueDriver::issue(const IoRequest &req)
{
    ++_outstanding;
    Tick submit_time = _engine.now();
    std::uint64_t req_id = _nextReqId++;
#if DSSD_TRACING
    if (Tracer *tr = _engine.tracer()) {
        int pid = tr->process("host");
        tr->asyncBegin(pid, "io", req.isRead() ? "read" : "write",
                       req_id, submit_time);
    }
#endif
    _submit(req, [this, req, submit_time, req_id] {
        Tick lat = _engine.now() - submit_time;
        double lat_d = static_cast<double>(lat);
        _allLat.sample(lat_d);
        if (req.isRead())
            _readLat.sample(lat_d);
        else
            _writeLat.sample(lat_d);
        _ioBytes.add(_engine.now(), static_cast<double>(req.bytes));
#if DSSD_TRACING
        if (Tracer *tr = _engine.tracer()) {
            int pid = tr->process("host");
            tr->asyncEnd(pid, "io", req.isRead() ? "read" : "write",
                         req_id, _engine.now());
        }
#endif
        ++_completed;
        --_outstanding;
        pump();
    });
}

void
QueueDriver::registerStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.addScalar(prefix + ".completed", [this] {
        return static_cast<double>(_completed);
    });
    reg.addScalar(prefix + ".outstanding", [this] {
        return static_cast<double>(_outstanding);
    });
    reg.addSample(prefix + ".latency.read", &_readLat);
    reg.addSample(prefix + ".latency.write", &_writeLat);
    reg.addSample(prefix + ".latency.all", &_allLat);
    reg.addRate(prefix + ".io_bytes", &_ioBytes);
}

} // namespace dssd
