/**
 * @file
 * Multi-queue NVMe-style host front-end.
 *
 * Where QueueDriver models a single closed-loop initiator, NvmeHost
 * models a fleet host: N tenants, each owning one submission queue
 * with its own depth, arbitration weight/priority, token-bucket rate
 * limit, and latency SLO. An Arbiter decides which queue's head
 * enters the device whenever a shared device slot frees, so tenants
 * contend the way NVMe submission queues do in front of a controller.
 *
 * Two per-tenant source modes:
 *
 *  - Closed-loop: the tenant's generator is pulled only while the
 *    tenant holds fewer than queueDepth entries (queued + in flight +
 *    timestamp-held), exactly like QueueDriver. With a single tenant,
 *    round-robin arbitration, and a device depth equal to the queue
 *    depth, the submit schedule — and therefore every latency sample —
 *    is identical to QueueDriver's (regression-tested).
 *
 *  - Open-loop: requests arrive at their generator-stamped issueAt
 *    times regardless of queue occupancy; the submission queue grows
 *    without bound under overload, which is the point — offered load
 *    beyond capacity shows up as unbounded queueing delay instead of
 *    silently throttling the generator.
 *
 * stop() semantics: no request is ever cancelled. In-flight requests
 * complete, queued closed-loop requests still enter the device, and
 * timestamp-held closed-loop requests still issue (QueueDriver
 * parity). Only open-loop backlog is dropped — waiting arrivals are
 * counted per tenant as `dropped` so an overloaded run's stats are
 * not dominated by the post-window drain.
 *
 * Determinism: the host runs entirely on the (single) host engine and
 * consumes device completions in the engine's deterministic order, so
 * results are byte-identical run to run and across --engine-threads.
 */

#ifndef DSSD_HIL_NVME_HOST_HH
#define DSSD_HIL_NVME_HOST_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "hil/arbiter.hh"
#include "hil/tenant.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"
#include "workload/generator.hh"

namespace dssd
{

class StatRegistry;

/** Host-wide front-end configuration. */
struct NvmeHostParams
{
    ArbiterPolicy policy = ArbiterPolicy::RoundRobin;
    /// DRR recharge per unit weight (WeightedRoundRobin).
    std::uint64_t quantumBytes = 4 * kKiB;
    /// Shared device-slot budget gating arbitration; 0 means the sum
    /// of tenant queue depths (every SQ entry can be in flight, i.e.
    /// the device never back-pressures arbitration).
    unsigned deviceDepth = 0;
    /// Stat window for bandwidth time series.
    Tick window = tickMs;
};

/** Multi-queue, multi-tenant request front-end (see file comment). */
class NvmeHost
{
  public:
    /** The SSD entry point: process @p req, call the callback at
     *  completion. */
    using SubmitFn =
        std::function<void(const IoRequest &, Engine::Callback)>;

    NvmeHost(Engine &engine, SubmitFn submit,
             const NvmeHostParams &params);

    /**
     * Register a tenant with its request source. Must be called
     * before start(); @p source must outlive the host.
     * @param open_loop arrival-timestamp mode (see file comment).
     * @return the tenant index.
     */
    unsigned addTenant(const TenantParams &params, Generator &source,
                       bool open_loop = false);

    unsigned tenantCount() const
    {
        return static_cast<unsigned>(_tenants.size());
    }

    /** Begin issuing requests. */
    void start();

    /** Stop pulling new requests; drop open-loop backlog (see file
     *  comment for the full semantics). */
    void stop();

    bool finished() const { return _finished; }
    std::uint64_t completed() const { return _completed; }
    unsigned deviceOutstanding() const { return _deviceOutstanding; }
    unsigned deviceDepth() const { return _deviceDepth; }

    /** Aggregate stats across tenants (QueueDriver-shaped). */
    const SampleStat &readLatency() const { return _readLat; }
    const SampleStat &writeLatency() const { return _writeLat; }
    const SampleStat &allLatency() const { return _allLat; }
    const RateSeries &ioBytes() const { return _ioBytes; }

    /** Per-tenant stats (latency, bandwidth, SLO compliance). */
    const TenantStats &tenantStats(unsigned tenant) const;
    const TenantParams &tenantParams(unsigned tenant) const;
    /** Open-loop requests still waiting in tenant @p tenant's SQ. */
    std::size_t tenantQueued(unsigned tenant) const;

    /** Called once when every source drains and all I/O completes. */
    void onFinished(Engine::Callback cb) { _onFinished = std::move(cb); }

    /**
     * Register aggregate stats under @p prefix (same shape as
     * QueueDriver) plus per-tenant stats under
     * "<prefix>.tenant.<i>.*".
     */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    /** One submission queue entry. */
    struct SqEntry
    {
        IoRequest req;
        std::uint64_t spanId;
        Tick enqueued;
    };

    /** One tenant: queue, limiter, stats, source. */
    struct Tenant
    {
        TenantParams params;
        std::string name;
        Generator *source;
        bool openLoop;
        TokenBucket bucket;
        TenantStats stats;
        std::deque<SqEntry> queue;
        unsigned inflight = 0;
        /// Closed-loop entries reserved for timestamp-held requests.
        unsigned held = 0;
        bool exhausted = false;
    };

    void pumpTenant(unsigned q);
    void scheduleArrival(unsigned q);
    void enqueue(unsigned q, const IoRequest &req);
    void arbitrate();
    void arbitrateOnce();
    void submitHead(unsigned q);
    void scheduleTokenRetry(Tick at);
    void maybeFinish();

    Engine &_engine;
    SubmitFn _submit;
    Arbiter _arbiter;
    Tick _window;
    unsigned _deviceDepth;
    unsigned _deviceDepthParam;
    unsigned _deviceOutstanding = 0;
    bool _started = false;
    bool _stopped = false;
    bool _finished = false;
    bool _arbitrating = false;
    bool _arbitrateAgain = false;
    /// Earliest pending token-retry event, 0 when none.
    Tick _retryAt = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _nextReqId = 0;
    std::vector<Tenant> _tenants;
    std::vector<ArbiterQueueState> _states; ///< pick() scratch
    SampleStat _readLat{"read-latency"};
    SampleStat _writeLat{"write-latency"};
    SampleStat _allLat{"io-latency"};
    RateSeries _ioBytes;
    Engine::Callback _onFinished;
};

} // namespace dssd

#endif // DSSD_HIL_NVME_HOST_HH
