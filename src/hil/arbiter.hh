/**
 * @file
 * NVMe-style submission-queue arbitration.
 *
 * The multi-queue host front-end (hil/nvme_host.hh) keeps one
 * Arbiter deciding which queue's head request enters the device when
 * a device slot frees. Three policies, mirroring the NVMe arbitration
 * mechanisms:
 *
 *  - RoundRobin: rotate over queues with an eligible head;
 *  - WeightedRoundRobin: deficit round robin — each visit to a queue
 *    recharges a byte deficit proportional to its weight, and the
 *    queue keeps sending while its deficit covers the head request,
 *    so bandwidth shares converge to the weight ratio regardless of
 *    request sizes;
 *  - StrictPriority: the highest-priority eligible queue always wins;
 *    ties rotate round-robin within the priority level.
 *
 * The arbiter is a pure deterministic state machine: no randomness,
 * no wall clock, decisions depend only on the visible queue states
 * and its own cursors, so simulations replay identically.
 */

#ifndef DSSD_HIL_ARBITER_HH
#define DSSD_HIL_ARBITER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace dssd
{

/** Submission-queue arbitration policy. */
enum class ArbiterPolicy
{
    RoundRobin,
    WeightedRoundRobin,
    StrictPriority,
};

/** Short policy name ("rr", "wrr", "prio"). */
const char *arbiterPolicyName(ArbiterPolicy policy);

/** Parse an --arbiter value; nullopt if unknown. */
std::optional<ArbiterPolicy> parseArbiterPolicy(const std::string &name);

/** One queue's arbitration-visible state for a pick() call. */
struct ArbiterQueueState
{
    /// Head request present and admissible (slots + tokens available).
    bool eligible = false;
    /// Bytes of the head request (the DRR service charge).
    std::uint64_t headBytes = 0;
};

/** Deterministic submission-queue arbiter (see file comment). */
class Arbiter
{
  public:
    /**
     * @param quantumBytes DRR recharge per unit weight per visit.
     *        Must cover typical request sizes within a few visits; the
     *        default equals one 4 KiB page.
     */
    explicit Arbiter(ArbiterPolicy policy,
                     std::uint64_t quantum_bytes = 4 * kKiB);

    /** Register a queue; returns its index. Weight scales the DRR
     *  quantum; priority orders StrictPriority (higher wins). */
    unsigned addQueue(unsigned weight = 1, unsigned priority = 0);

    ArbiterPolicy policy() const { return _policy; }
    unsigned queueCount() const
    {
        return static_cast<unsigned>(_weights.size());
    }

    /**
     * Choose the next queue to serve. @p states must have one entry
     * per registered queue. Returns the queue index and charges its
     * DRR deficit, or -1 when no queue is eligible.
     */
    int pick(const std::vector<ArbiterQueueState> &states);

  private:
    int pickRoundRobin(const std::vector<ArbiterQueueState> &states);
    int pickWeighted(const std::vector<ArbiterQueueState> &states);
    int pickPriority(const std::vector<ArbiterQueueState> &states);

    ArbiterPolicy _policy;
    std::uint64_t _quantum;
    std::vector<unsigned> _weights;
    std::vector<unsigned> _priorities;
    /// DRR byte deficits (WeightedRoundRobin only).
    std::vector<std::uint64_t> _deficit;
    /// Queue the cursor parks on; RR scans start one past it.
    unsigned _cursor = 0;
    /// WRR: whether the cursor's queue was already recharged during
    /// its current service visit.
    bool _charged = false;
};

} // namespace dssd

#endif // DSSD_HIL_ARBITER_HH
