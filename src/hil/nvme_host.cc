#include "hil/nvme_host.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

NvmeHost::NvmeHost(Engine &engine, SubmitFn submit,
                   const NvmeHostParams &params)
    : _engine(engine), _submit(std::move(submit)),
      _arbiter(params.policy, params.quantumBytes),
      _window(params.window), _deviceDepth(0),
      _deviceDepthParam(params.deviceDepth),
      _ioBytes(params.window, "io-bytes")
{
}

unsigned
NvmeHost::addTenant(const TenantParams &params, Generator &source,
                    bool open_loop)
{
    if (_started)
        fatal("cannot add tenants after start()");
    if (params.queueDepth == 0)
        fatal("tenant queue depth must be > 0");
    unsigned idx = tenantCount();
    std::string name =
        params.name.empty() ? strformat("t%u", idx) : params.name;
    _arbiter.addQueue(params.weight, params.priority);
    _tenants.push_back(Tenant{
        params,
        std::move(name),
        &source,
        open_loop,
        TokenBucket(params.rateBytesPerSec, params.burstBytes),
        TenantStats(params, _window),
        {},
        0,
        0,
        false,
    });
    _states.resize(_tenants.size());
    return idx;
}

void
NvmeHost::start()
{
    if (_tenants.empty())
        fatal("host has no tenants");
    _started = true;
    _deviceDepth = _deviceDepthParam;
    if (_deviceDepth == 0) {
        for (const Tenant &t : _tenants)
            _deviceDepth += t.params.queueDepth;
    }
    for (unsigned q = 0; q < tenantCount(); ++q) {
        if (_tenants[q].openLoop)
            scheduleArrival(q);
        else
            pumpTenant(q);
    }
    arbitrate();
}

void
NvmeHost::stop()
{
    if (_stopped)
        return;
    _stopped = true;
    // Drop open-loop backlog (counted per tenant); closed-loop queued
    // and held requests still issue — nothing already admitted to a
    // queue slot is cancelled.
    for (Tenant &t : _tenants) {
        if (!t.openLoop)
            continue;
        while (!t.queue.empty()) {
#if DSSD_TRACING
            if (Tracer *tr = _engine.tracer()) {
                int pid = tr->process("host");
                tr->asyncEnd(pid, "qwait", t.name.c_str(),
                             t.queue.front().spanId, _engine.now());
            }
#endif
            t.stats.recordDrop();
            t.queue.pop_front();
        }
    }
    maybeFinish();
}

void
NvmeHost::pumpTenant(unsigned q)
{
    Tenant &t = _tenants[q];
    while (!_stopped && !t.exhausted &&
           t.queue.size() + t.inflight + t.held < t.params.queueDepth) {
        auto req = t.source->next();
        if (!req) {
            t.exhausted = true;
            break;
        }
        if (req->issueAt > _engine.now()) {
            // Trace replay: hold a queue slot until the timestamp,
            // mirroring QueueDriver (see hil/driver.cc).
            ++t.held;
            _engine.scheduleAbs(req->issueAt, [this, q, r = *req] {
                --_tenants[q].held;
                enqueue(q, r);
                pumpTenant(q);
                arbitrate();
            });
            continue;
        }
        enqueue(q, *req);
    }
}

void
NvmeHost::scheduleArrival(unsigned q)
{
    Tenant &t = _tenants[q];
    if (_stopped || t.exhausted)
        return;
    auto req = t.source->next();
    if (!req) {
        t.exhausted = true;
        maybeFinish();
        return;
    }
    Tick at = std::max(req->issueAt, _engine.now());
    _engine.scheduleAbs(at, [this, q, r = *req] {
        if (_stopped) {
            _tenants[q].stats.recordDrop();
            return;
        }
        enqueue(q, r);
        scheduleArrival(q);
        arbitrate();
    });
}

void
NvmeHost::enqueue(unsigned q, const IoRequest &req)
{
    Tenant &t = _tenants[q];
    SqEntry e{req, _nextReqId++, _engine.now()};
    e.req.tenant = q;
#if DSSD_TRACING
    if (Tracer *tr = _engine.tracer()) {
        int pid = tr->process("host");
        tr->asyncBegin(pid, "qwait", t.name.c_str(), e.spanId,
                       e.enqueued);
    }
#endif
    t.queue.push_back(e);
}

void
NvmeHost::arbitrate()
{
    // Submissions and completions can re-enter (a device that
    // completes synchronously); fold re-entrant calls into the
    // outermost loop instead of nesting.
    if (_arbitrating) {
        _arbitrateAgain = true;
        return;
    }
    _arbitrating = true;
    do {
        _arbitrateAgain = false;
        arbitrateOnce();
    } while (_arbitrateAgain);
    _arbitrating = false;
    maybeFinish();
}

void
NvmeHost::arbitrateOnce()
{
    Tick now = _engine.now();
    while (_deviceOutstanding < _deviceDepth) {
        bool token_blocked = false;
        Tick earliest = maxTick;
        for (unsigned q = 0; q < tenantCount(); ++q) {
            Tenant &t = _tenants[q];
            ArbiterQueueState st;
            if (!t.queue.empty() &&
                t.inflight < t.params.queueDepth) {
                std::uint64_t bytes = t.queue.front().req.bytes;
                if (t.bucket.admits(now, bytes)) {
                    st.eligible = true;
                    st.headBytes = bytes;
                } else {
                    token_blocked = true;
                    earliest = std::min(
                        earliest, t.bucket.nextAdmitTime(now, bytes));
                }
            }
            _states[q] = st;
        }
        int pick = _arbiter.pick(_states);
        if (pick < 0) {
            if (token_blocked)
                scheduleTokenRetry(earliest);
            return;
        }
        submitHead(static_cast<unsigned>(pick));
    }
}

void
NvmeHost::submitHead(unsigned q)
{
    Tenant &t = _tenants[q];
    SqEntry e = t.queue.front();
    t.queue.pop_front();
    t.bucket.consume(e.req.bytes);
    ++t.inflight;
    ++_deviceOutstanding;
    Tick submit_time = _engine.now();
#if DSSD_TRACING
    if (Tracer *tr = _engine.tracer()) {
        int pid = tr->process("host");
        tr->asyncEnd(pid, "qwait", t.name.c_str(), e.spanId,
                     submit_time);
        tr->asyncBegin(pid, "io", e.req.isRead() ? "read" : "write",
                       e.spanId, submit_time);
    }
#endif
    // Latency is end-to-end from SQ entry, not from device submit:
    // under open-loop overload the queue wait IS the latency story.
    // (Closed-loop with free device slots enqueues and submits at the
    // same tick, which is how the QueueDriver-parity test passes.)
    _submit(e.req, [this, q, r = e.req, enq = e.enqueued,
                    id = e.spanId] {
        Tick now = _engine.now();
        Tick lat = now - enq;
        double lat_d = static_cast<double>(lat);
        _allLat.sample(lat_d);
        if (r.isRead())
            _readLat.sample(lat_d);
        else
            _writeLat.sample(lat_d);
        _ioBytes.add(now, static_cast<double>(r.bytes));
        Tenant &t2 = _tenants[q];
        t2.stats.recordCompletion(r, now, lat);
#if DSSD_TRACING
        if (Tracer *tr = _engine.tracer()) {
            int pid = tr->process("host");
            tr->asyncEnd(pid, "io", r.isRead() ? "read" : "write", id,
                         now);
        }
#endif
        ++_completed;
        --_deviceOutstanding;
        --t2.inflight;
        if (!t2.openLoop)
            pumpTenant(q);
        arbitrate();
    });
}

void
NvmeHost::scheduleTokenRetry(Tick at)
{
    // One pending retry at a time; only replace it with an earlier
    // one. A superseded event recognises itself by the mismatched
    // timestamp and does nothing.
    if (_retryAt != 0 && _retryAt <= at)
        return;
    _retryAt = at;
    _engine.scheduleAbs(at, [this, at] {
        if (_retryAt != at)
            return;
        _retryAt = 0;
        arbitrate();
    });
}

void
NvmeHost::maybeFinish()
{
    if (_finished)
        return;
    if (!_stopped) {
        for (const Tenant &t : _tenants) {
            if (!t.exhausted)
                return;
        }
    }
    for (const Tenant &t : _tenants) {
        if (!t.queue.empty() || t.held != 0)
            return;
    }
    if (_deviceOutstanding != 0)
        return;
    _finished = true;
    if (_onFinished)
        _onFinished();
}

const TenantStats &
NvmeHost::tenantStats(unsigned tenant) const
{
    if (tenant >= tenantCount())
        fatal("no tenant %u", tenant);
    return _tenants[tenant].stats;
}

const TenantParams &
NvmeHost::tenantParams(unsigned tenant) const
{
    if (tenant >= tenantCount())
        fatal("no tenant %u", tenant);
    return _tenants[tenant].params;
}

std::size_t
NvmeHost::tenantQueued(unsigned tenant) const
{
    if (tenant >= tenantCount())
        fatal("no tenant %u", tenant);
    return _tenants[tenant].queue.size();
}

void
NvmeHost::registerStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addScalar(prefix + ".completed", [this] {
        return static_cast<double>(_completed);
    });
    reg.addScalar(prefix + ".outstanding", [this] {
        return static_cast<double>(_deviceOutstanding);
    });
    reg.addSample(prefix + ".latency.read", &_readLat);
    reg.addSample(prefix + ".latency.write", &_writeLat);
    reg.addSample(prefix + ".latency.all", &_allLat);
    reg.addRate(prefix + ".io_bytes", &_ioBytes);
    for (unsigned q = 0; q < tenantCount(); ++q) {
        const Tenant &t = _tenants[q];
        std::string tp = strformat("%s.tenant.%u", prefix.c_str(), q);
        t.stats.registerStats(reg, tp);
        reg.addScalar(tp + ".queued", [this, q] {
            return static_cast<double>(_tenants[q].queue.size());
        });
        reg.addScalar(tp + ".inflight", [this, q] {
            return static_cast<double>(_tenants[q].inflight);
        });
    }
}

} // namespace dssd
