/**
 * @file
 * Multi-tenant host front-end: per-tenant parameters, token-bucket
 * rate limiting, and SLO accounting.
 *
 * A tenant is one fleet customer sharing the device through the NVMe
 * host front-end (hil/nvme_host.hh). Each tenant owns a submission
 * queue, an arbitration weight/priority, an optional byte-rate token
 * bucket, and an optional latency SLO. Statistics register under
 * "host.tenant.<id>.*" so per-tenant compliance is visible next to
 * the device-level stats.
 */

#ifndef DSSD_HIL_TENANT_HH
#define DSSD_HIL_TENANT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "workload/request.hh"

namespace dssd
{

class StatRegistry;

/** Static per-tenant configuration. */
struct TenantParams
{
    /// Display name; empty means "t<index>".
    std::string name;
    /// Submission-queue depth (entries the tenant may keep queued or
    /// in flight).
    unsigned queueDepth = 64;
    /// Weighted-round-robin arbitration weight.
    unsigned weight = 1;
    /// Strict-priority arbitration level (higher wins).
    unsigned priority = 0;
    /// Token-bucket rate in bytes/second; 0 = unlimited.
    double rateBytesPerSec = 0.0;
    /// Token-bucket burst in bytes; 0 picks 10 ms worth of rate.
    std::uint64_t burstBytes = 0;
    /// Latency SLO target in microseconds; 0 = no SLO.
    double sloTargetUs = 0.0;
};

/**
 * Parse a --tenants specification: either a plain count ("4", all
 * defaults) or a ';'-separated list of per-tenant "key:value" groups
 * with ','-separated fields:
 *
 *   qd:N       queue depth            w:N       WRR weight
 *   prio:N     priority level         slo:US    latency SLO (us)
 *   rate:B     bytes/sec (k/m/g ok)   burst:B   bucket burst bytes
 *   name:S     display name
 *
 * e.g. "qd:64,w:4,slo:500;qd:64,w:1,rate:200m". Returns nullopt on a
 * malformed spec.
 */
std::optional<std::vector<TenantParams>>
parseTenantSpec(const std::string &spec);

/**
 * Deterministic byte token bucket. Tokens accrue continuously at the
 * configured rate up to the burst cap; a request is admitted when the
 * bucket holds its full byte count. All arithmetic depends only on
 * simulated time, so replays are exact.
 */
class TokenBucket
{
  public:
    /** @param rate_bytes_per_sec 0 disables limiting (always admits).
     *  @param burst_bytes bucket capacity; 0 picks 10 ms of rate. */
    TokenBucket(double rate_bytes_per_sec, std::uint64_t burst_bytes);

    bool limited() const { return _rate > 0.0; }

    /** Accrue tokens up to @p now. */
    void refill(Tick now);

    /** Would a @p bytes request be admitted at @p now? (refills) */
    bool admits(Tick now, std::uint64_t bytes);

    /** Consume @p bytes of tokens (caller checked admits()). */
    void consume(std::uint64_t bytes);

    /**
     * Earliest tick >= @p now at which a @p bytes request could be
     * admitted. Used to schedule a retry when the bucket blocks the
     * queue head.
     */
    Tick nextAdmitTime(Tick now, std::uint64_t bytes);

    double tokens() const { return _tokens; }
    double burst() const { return _burst; }

  private:
    double _rate;   ///< bytes per second; 0 = unlimited
    double _burst;  ///< capacity in bytes
    double _tokens; ///< current fill (starts full)
    Tick _lastRefill = 0;
};

/**
 * Per-tenant runtime statistics: latency distribution, completed
 * bandwidth, and SLO compliance. Owned by the host front-end, one per
 * tenant.
 */
class TenantStats
{
  public:
    /** @param window RateSeries window for the bandwidth series. */
    TenantStats(const TenantParams &params, Tick window);

    /** Record a completion observed at @p now with latency @p lat. */
    void recordCompletion(const IoRequest &req, Tick now, Tick lat);

    /** Record an open-loop arrival dropped at stop(). */
    void recordDrop() { ++_dropped; }

    std::uint64_t completed() const { return _completed; }
    std::uint64_t dropped() const { return _dropped; }
    std::uint64_t sloViolations() const { return _sloViolations; }

    /** Fraction of completions meeting the SLO target (1.0 when no
     *  SLO is configured or nothing completed yet). */
    double sloCompliance() const;

    const SampleStat &latency() const { return _lat; }
    const SampleStat &readLatency() const { return _readLat; }
    const SampleStat &writeLatency() const { return _writeLat; }
    const RateSeries &ioBytes() const { return _ioBytes; }

    /**
     * Register under @p prefix (e.g. "host.tenant.0"): latency
     * samples, bandwidth series, completion/drop counters, and the
     * SLO target/violations/compliance gauges.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    double _sloTargetNs; ///< 0 = no SLO
    std::uint64_t _completed = 0;
    std::uint64_t _dropped = 0;
    std::uint64_t _sloViolations = 0;
    SampleStat _lat{"latency"};
    SampleStat _readLat{"read-latency"};
    SampleStat _writeLat{"write-latency"};
    RateSeries _ioBytes;
};

} // namespace dssd

#endif // DSSD_HIL_TENANT_HH
