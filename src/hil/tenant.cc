#include "hil/tenant.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

namespace
{

/** Parse a non-negative number with an optional k/m/g suffix
 *  (powers of 1000, matching rate units). */
std::optional<double>
parseScaled(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    char *endp = nullptr;
    double v = std::strtod(tok.c_str(), &endp);
    if (endp == tok.c_str() || v < 0.0 || !std::isfinite(v))
        return std::nullopt;
    std::string suffix(endp);
    for (char &c : suffix)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (suffix == "")
        return v;
    if (suffix == "k")
        return v * 1e3;
    if (suffix == "m")
        return v * 1e6;
    if (suffix == "g")
        return v * 1e9;
    return std::nullopt;
}

std::optional<unsigned>
parseUnsigned(const std::string &tok)
{
    if (tok.empty() ||
        tok.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    char *endp = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &endp, 10);
    if (v > 0xffffffffull)
        return std::nullopt;
    return static_cast<unsigned>(v);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

} // namespace

std::optional<std::vector<TenantParams>>
parseTenantSpec(const std::string &spec)
{
    if (spec.empty())
        return std::nullopt;
    // Plain count: N tenants with default parameters.
    if (spec.find_first_not_of("0123456789") == std::string::npos) {
        auto n = parseUnsigned(spec);
        if (!n || *n == 0 || *n > 4096)
            return std::nullopt;
        return std::vector<TenantParams>(*n);
    }
    std::vector<TenantParams> out;
    for (const std::string &group : split(spec, ';')) {
        if (group.empty())
            return std::nullopt;
        TenantParams t;
        for (const std::string &field : split(group, ',')) {
            std::size_t colon = field.find(':');
            if (colon == std::string::npos)
                return std::nullopt;
            std::string key = field.substr(0, colon);
            std::string val = field.substr(colon + 1);
            if (key == "qd") {
                auto v = parseUnsigned(val);
                if (!v || *v == 0)
                    return std::nullopt;
                t.queueDepth = *v;
            } else if (key == "w") {
                auto v = parseUnsigned(val);
                if (!v || *v == 0)
                    return std::nullopt;
                t.weight = *v;
            } else if (key == "prio") {
                auto v = parseUnsigned(val);
                if (!v)
                    return std::nullopt;
                t.priority = *v;
            } else if (key == "rate") {
                auto v = parseScaled(val);
                if (!v)
                    return std::nullopt;
                t.rateBytesPerSec = *v;
            } else if (key == "burst") {
                auto v = parseScaled(val);
                if (!v)
                    return std::nullopt;
                t.burstBytes = static_cast<std::uint64_t>(*v);
            } else if (key == "slo") {
                auto v = parseScaled(val);
                if (!v)
                    return std::nullopt;
                t.sloTargetUs = *v;
            } else if (key == "name") {
                if (val.empty())
                    return std::nullopt;
                t.name = val;
            } else {
                return std::nullopt;
            }
        }
        out.push_back(t);
    }
    if (out.empty())
        return std::nullopt;
    return out;
}

//
// TokenBucket
//

TokenBucket::TokenBucket(double rate_bytes_per_sec,
                         std::uint64_t burst_bytes)
    : _rate(rate_bytes_per_sec)
{
    if (_rate < 0.0 || !std::isfinite(_rate))
        fatal("token bucket rate must be finite and >= 0");
    // Default burst: 10 ms of rate, so short bursts pass while the
    // average holds at the configured rate.
    _burst = burst_bytes != 0 ? static_cast<double>(burst_bytes)
                              : _rate * 0.010;
    if (_rate > 0.0 && _burst <= 0.0)
        fatal("token bucket burst must be > 0 when rate limited");
    _tokens = _burst; // start full
}

void
TokenBucket::refill(Tick now)
{
    if (_rate <= 0.0)
        return;
    if (now <= _lastRefill)
        return;
    double elapsed_s =
        static_cast<double>(now - _lastRefill) / static_cast<double>(tickSec);
    _tokens = std::min(_burst, _tokens + elapsed_s * _rate);
    _lastRefill = now;
}

bool
TokenBucket::admits(Tick now, std::uint64_t bytes)
{
    if (_rate <= 0.0)
        return true;
    refill(now);
    return _tokens >= static_cast<double>(bytes);
}

void
TokenBucket::consume(std::uint64_t bytes)
{
    if (_rate <= 0.0)
        return;
    _tokens -= static_cast<double>(bytes);
}

Tick
TokenBucket::nextAdmitTime(Tick now, std::uint64_t bytes)
{
    if (_rate <= 0.0)
        return now;
    refill(now);
    double deficit = static_cast<double>(bytes) - _tokens;
    if (deficit <= 0.0)
        return now;
    double wait_ns = deficit / _rate * static_cast<double>(tickSec);
    Tick wait = static_cast<Tick>(std::ceil(wait_ns));
    return now + std::max<Tick>(wait, 1);
}

//
// TenantStats
//

TenantStats::TenantStats(const TenantParams &params, Tick window)
    : _sloTargetNs(params.sloTargetUs * 1e3),
      _ioBytes(window, "io-bytes")
{
}

void
TenantStats::recordCompletion(const IoRequest &req, Tick now, Tick lat)
{
    double lat_d = static_cast<double>(lat);
    _lat.sample(lat_d);
    if (req.isRead())
        _readLat.sample(lat_d);
    else
        _writeLat.sample(lat_d);
    _ioBytes.add(now, static_cast<double>(req.bytes));
    ++_completed;
    if (_sloTargetNs > 0.0 && lat_d > _sloTargetNs)
        ++_sloViolations;
}

double
TenantStats::sloCompliance() const
{
    if (_sloTargetNs <= 0.0 || _completed == 0)
        return 1.0;
    return 1.0 - static_cast<double>(_sloViolations) /
                     static_cast<double>(_completed);
}

void
TenantStats::registerStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.addScalar(prefix + ".completed", [this] {
        return static_cast<double>(_completed);
    });
    reg.addScalar(prefix + ".dropped", [this] {
        return static_cast<double>(_dropped);
    });
    reg.addSample(prefix + ".latency.read", &_readLat);
    reg.addSample(prefix + ".latency.write", &_writeLat);
    reg.addSample(prefix + ".latency.all", &_lat);
    reg.addRate(prefix + ".io_bytes", &_ioBytes);
    reg.addScalar(prefix + ".slo.target_us", [this] {
        return _sloTargetNs / 1e3;
    });
    reg.addScalar(prefix + ".slo.violations", [this] {
        return static_cast<double>(_sloViolations);
    });
    reg.addScalar(prefix + ".slo.compliance", [this] {
        return sloCompliance();
    });
}

} // namespace dssd
