/**
 * @file
 * Analytical area-overhead model for the dSSD additions (Sec 6.5).
 *
 * Constants come straight from the paper's sources: an LDPC decoder is
 * 2.56 mm^2 in 90 nm [11] (0.122 mm^2 scaled to 14 nm [38]); a
 * synthesized fNoC router is ~0.02 mm^2 in 45 nm (FreePDK [39]); the
 * reference SSD controller is ~64 mm^2 [30]. dBUF cost is SRAM area;
 * the paper reports 2.46% for two 32 KB dBUFs per controller, which
 * fixes the SRAM density constant.
 */

#ifndef DSSD_OVERHEAD_AREA_HH
#define DSSD_OVERHEAD_AREA_HH

#include <cstdint>

namespace dssd
{

/** Inputs to the area model. */
struct AreaParams
{
    unsigned channels = 8;
    double controllerAreaMm2 = 64.0;     ///< Marvell Bravera-class [30]
    double lpdcAreaMm2 = 0.122;          ///< per engine, 14 nm [11][38]
    double routerAreaMm2 = 0.02;         ///< per router, 45 nm [39]
    double dbufKiBPerController = 64.0;  ///< two 32 KB dBUFs
    double sramMm2PerKiB = 64.0 * 0.0246 / (8 * 64.0); ///< from 2.46%
    std::size_t srtEntries = 1024;
    unsigned srtEntryBits = 32;          ///< 16b source + 16b dest
    unsigned rbtBits = 32;
    double reservedFraction = 0.0;       ///< RESERV RBT provisioning
    std::uint32_t blocksPerChannel = 11072; ///< 1384 x 8 planes
};

/** Computed overheads. */
struct AreaReport
{
    double eccAreaMm2;
    double eccPct;
    double routerAreaMm2;
    double routerPct;
    double dbufAreaMm2;
    double dbufPct;
    double totalPct;
    double srtBytesPerController;
    double rbtBytesPerController;
};

/** Evaluate the model. */
AreaReport computeArea(const AreaParams &params);

} // namespace dssd

#endif // DSSD_OVERHEAD_AREA_HH
