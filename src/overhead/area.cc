#include "overhead/area.hh"

#include <cmath>

namespace dssd
{

AreaReport
computeArea(const AreaParams &p)
{
    AreaReport r{};
    r.eccAreaMm2 = p.lpdcAreaMm2 * p.channels;
    r.eccPct = 100.0 * r.eccAreaMm2 / p.controllerAreaMm2;

    r.routerAreaMm2 = p.routerAreaMm2 * p.channels;
    r.routerPct = 100.0 * r.routerAreaMm2 / p.controllerAreaMm2;

    r.dbufAreaMm2 =
        p.dbufKiBPerController * p.channels * p.sramMm2PerKiB;
    r.dbufPct = 100.0 * r.dbufAreaMm2 / p.controllerAreaMm2;

    r.totalPct = r.eccPct + r.routerPct + r.dbufPct;

    r.srtBytesPerController =
        static_cast<double>(p.srtEntries) * p.srtEntryBits / 8.0;
    // The RBT itself is a few bytes; RESERV provisioning needs one
    // entry per reserved block.
    double reserved_entries =
        p.reservedFraction * static_cast<double>(p.blocksPerChannel);
    r.rbtBytesPerController =
        p.rbtBits / 8.0 + std::ceil(reserved_entries) * p.rbtBits / 8.0;
    return r;
}

} // namespace dssd
