/**
 * @file
 * The decoupled flash controller (C_D) of Fig 4 and its global
 * copyback state machine (Sec 4.2).
 *
 * C_D augments a conventional FlashChannel with:
 *  - an integrated ECC engine (error check at the source controller,
 *    so copyback no longer propagates errors),
 *  - a decoupled buffer (dBUF) for flash-to-flash data, separate from
 *    the page buffer so copybacks do not interfere with general I/O,
 *  - a network interface onto the fNoC (or dedicated bus / system bus
 *    for the dSSD_b / dSSD variants),
 *  - the SRT and RBT tables for dynamic superblock management (Sec 5).
 *
 * The command queue tracks each copyback's stage exactly as the paper
 * describes: R (read done), RE (error check done), T (transferred over
 * the interconnect), W (written).
 */

#ifndef DSSD_CONTROLLER_DECOUPLED_HH
#define DSSD_CONTROLLER_DECOUPLED_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "bus/interconnect.hh"
#include "controller/channel.hh"
#include "controller/remap.hh"
#include "ecc/ecc.hh"
#include "sim/stats.hh"

namespace dssd
{

class StatRegistry;

/** Copyback command execution stage (command-queue "status" field). */
enum class CopybackStage : int
{
    Issued = 0,   ///< command accepted into the queue
    R = 1,        ///< page read out of the source die
    RE = 2,       ///< error detection/correction done
    T = 3,        ///< transferred to the destination controller
    W = 4,        ///< write complete
    numStages = 5,
};

const char *copybackStageName(CopybackStage stage);

/** Configuration of a decoupled controller. */
struct DecoupledParams
{
    EccParams ecc;
    /// Total dBUF entries, in pages. Sec 6.5: *two* 32 KB dBUFs per
    /// controller (16 x 4 KB entries total). The two buffers are split
    /// egress/ingress, which is also what makes cross-channel copyback
    /// deadlock-free: an egress entry never waits on another egress
    /// entry, and ingress entries always drain into the flash array.
    unsigned dbufSlots = 16;
    /// SRT capacity (active remap entries); 0 = unbounded.
    std::size_t srtEntries = 1024;
};

/**
 * A decoupled flash controller. Owns the added components; the
 * conventional datapath stays in the wrapped FlashChannel.
 */
class DecoupledController
{
  public:
    using Callback = Engine::Callback;
    /**
     * Front-end re-read installed by the Ssd: fetch @p src over the
     * conventional path (flash bus + system bus + DRAM + shared ECC)
     * and program it to @p dst, then run @p done. Used when a copyback
     * page is uncorrectable at the channel ECC (Sec 4.2 fallback).
     */
    using CopybackFallback =
        std::function<void(const PhysAddr &src, const PhysAddr &dst,
                           int tag, LatencyBreakdown *bd, Callback done)>;

    DecoupledController(Engine &engine, FlashChannel &channel,
                        const DecoupledParams &params);

    /**
     * Attach the flash-to-flash interconnect and this controller's
     * node id on it.
     */
    void setInterconnect(Interconnect *ic, unsigned node_id);

    /**
     * Execute a global copyback from @p src (on this channel) to
     * @p dst (any channel). For cross-channel destinations @p dst_ctrl
     * names the owning controller. Never uses the ONFI local copyback
     * operation (footnote 6), so ECC always checks the page.
     */
    void globalCopyback(const PhysAddr &src, const PhysAddr &dst,
                        DecoupledController *dst_ctrl, int tag,
                        Callback done, LatencyBreakdown *bd = nullptr);

    /**
     * Filter a command address through the SRT: if the target
     * sub-block was dynamically remapped, redirect to the recycled
     * block. Transparent to the FTL.
     */
    PhysAddr remap(const PhysAddr &addr) const;

    FlashChannel &channel() { return _channel; }
    EccEngine &ecc() { return _ecc; }
    /** Egress dBUF (local reads waiting to ship or program). */
    SlotResource &dbufOut() { return _dbufOut; }
    /** Ingress dBUF (pages arriving off the interconnect). */
    SlotResource &dbufIn() { return _dbufIn; }
    RecycleBlockTable &rbt() { return _rbt; }
    SuperblockRemapTable &srt() { return _srt; }
    const SuperblockRemapTable &srt() const { return _srt; }
    unsigned nodeId() const { return _nodeId; }

    /**
     * Attach the fault model (null = fault-free). Copyback reads then
     * run the full recovery ladder in the channel ECC engine.
     */
    void setFaultModel(FaultModel *fault) { _fault = fault; }

    /** Install the front-end re-read used when a copyback page is
     *  uncorrectable at this controller's ECC engine. */
    void setCopybackFallback(CopybackFallback fb)
    {
        _fallback = std::move(fb);
    }

    std::uint64_t copybacksCompleted() const { return _completed; }
    std::uint64_t copybacksInFlight() const { return _inFlight; }
    /** Copybacks whose R/RE state machine aborted to the front-end
     *  fallback on an uncorrectable page. */
    std::uint64_t copybacksAborted() const { return _aborted; }

    /** Commands that have reached (at least) @p stage. */
    std::uint64_t stageCount(CopybackStage stage) const;

    /** Copyback end-to-end latency distribution (ticks). */
    const SampleStat &copybackLatency() const { return _latency; }

    /**
     * Cross-check this controller's invariants: legality of the
     * global-copyback status machine (stage counters monotone along
     * Issued ≥ R ≥ RE ≥ T ≥ W, in-flight algebra), dBUF slot
     * accounting, and the SRT/RBT consistency rules of
     * auditRemapTables(). See sim/audit.hh.
     */
    void audit(AuditReport &report) const;

    /** Register copyback counters, latency, dBUFs, and the ECC engine
     *  under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Copyback;
    void stageReached(CopybackStage stage);
    /** Close the per-command trace span ending at @p stage (the span
     *  runs from the previous stage boundary to now). */
    void stageTrace(Copyback &cb, CopybackStage stage);
    /** Abort @p cb's state machine (uncorrectable at the channel ECC)
     *  and hand the page to the front-end fallback. */
    void abortCopyback(const std::shared_ptr<Copyback> &cb);

    Engine &_engine;
    FlashChannel &_channel;
    EccEngine _ecc;
    SlotResource _dbufOut;
    SlotResource _dbufIn;
    RecycleBlockTable _rbt;
    SuperblockRemapTable _srt;
    Interconnect *_interconnect = nullptr;
    unsigned _nodeId = 0;
    FaultModel *_fault = nullptr;
    CopybackFallback _fallback;

    std::uint64_t _completed = 0;
    std::uint64_t _inFlight = 0;
    std::uint64_t _aborted = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(CopybackStage::numStages)>
        _stageCounts{};
    SampleStat _latency{"copyback-latency"};
};

} // namespace dssd

#endif // DSSD_CONTROLLER_DECOUPLED_HH
