#include "controller/channel.hh"

#include <utility>

#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

FlashChannel::FlashChannel(Engine &engine, const FlashGeometry &geom,
                           const NandTiming &timing, unsigned channel_id,
                           const ChannelParams &params)
    : _engine(engine), _geom(geom), _timing(timing), _channelId(channel_id),
      _bus(engine, strformat("flash-bus-ch%u", channel_id),
           params.busBandwidth),
      _pageBuffer(engine, strformat("page-buffer-ch%u", channel_id),
                  params.pageBufferSlots)
{
    _dies.reserve(_geom.diesPerChannel());
    for (std::uint32_t i = 0; i < _geom.diesPerChannel(); ++i) {
        _dies.push_back(std::make_unique<FlashDie>(
            engine, geom, timing, strformat("ch%u.d%u", channel_id, i)));
    }
}

FlashDie &
FlashChannel::die(std::uint32_t way, std::uint32_t die_idx)
{
    std::uint32_t flat = way * _geom.diesPerWay + die_idx;
    if (flat >= _dies.size())
        panic("die (%u, %u) out of range on channel %u", way, die_idx,
              _channelId);
    return *_dies[flat];
}

FlashDie &
FlashChannel::dieAt(const PhysAddr &addr)
{
    return die(addr.way, addr.die);
}

std::uint32_t
FlashChannel::planeMask(const PhysAddr &addr, unsigned planes) const
{
    if (planes == 0 || addr.plane + planes > _geom.planesPerDie)
        panic("plane range [%u, %u) out of range", addr.plane,
              addr.plane + planes);
    return ((1u << planes) - 1u) << addr.plane;
}

void
FlashChannel::read(const PhysAddr &addr, unsigned planes, int tag,
                   Callback data_ready, LatencyBreakdown *bd)
{
    ++_reads;
    FlashDie &d = dieAt(addr);
    std::uint32_t mask = planeMask(addr, planes);
    std::uint64_t data_bytes = _geom.multiPlaneBytes(planes);

    Tick t0 = _engine.now();
    Tick cmd_end = _bus.reserve(_timing.commandBytes, tag);
    Tick die_end = d.reserve(NandOp::Read, mask, addr.page, cmd_end);
    bdSpanCloseAt(_engine, bd, bdFlashBus, t0, cmd_end);
    bdSpanCloseAt(_engine, bd, bdFlashMem, cmd_end, die_end);
    // Data-out can only be scheduled once the array read completes;
    // reserve the bus at that point so queueing is ordered correctly.
    _engine.scheduleAbs(die_end,
                        [this, data_bytes, tag, bd,
                         cb = std::move(data_ready)]() mutable {
        Tick t1 = _engine.now();
        Tick xfer_end = _bus.transfer(data_bytes, tag, std::move(cb));
        bdSpanCloseAt(_engine, bd, bdFlashBus, t1, xfer_end);
    });
}

void
FlashChannel::program(const PhysAddr &addr, unsigned planes, int tag,
                      Callback done, LatencyBreakdown *bd,
                      Callback data_taken)
{
    ++_programs;
    FlashDie &d = dieAt(addr);
    std::uint32_t mask = planeMask(addr, planes);
    std::uint64_t xfer_bytes =
        _timing.commandBytes + _geom.multiPlaneBytes(planes);

    Tick t0 = _engine.now();
    Tick xfer_end = _bus.reserve(xfer_bytes, tag);
    Tick die_end = d.reserve(NandOp::Program, mask, addr.page, xfer_end);
    bdSpanCloseAt(_engine, bd, bdFlashBus, t0, xfer_end);
    bdSpanCloseAt(_engine, bd, bdFlashMem, xfer_end, die_end);

    if (_fault) {
        _fault->notifyProgram(addr, die_end);
        if (_fault->programFails(addr)) {
            // Program-status fail: the controller sees the failed
            // status at die_end, escalates the bad block, and
            // re-issues the program (data is still buffered) at full
            // bus + array cost. The re-issue is modeled as succeeding;
            // the block is repaired/retired by the sink.
            ++_programRetries;
            PhysAddr a = addr;
            _engine.scheduleAbs(die_end, [this, a] {
                _fault->reportBlockFault(a, FaultKind::ProgramFail);
            });
            Tick xfer2_end =
                _bus.reserveFrom(die_end, xfer_bytes, tag);
            Tick die2_end =
                d.reserve(NandOp::Program, mask, addr.page, xfer2_end);
            bdSpanCloseAt(_engine, bd, bdFlashBus, die_end, xfer2_end);
            bdSpanCloseAt(_engine, bd, bdFlashMem, xfer2_end, die2_end);
            // The buffered page stays claimed until the retransfer.
            xfer_end = xfer2_end;
            die_end = die2_end;
        }
    }

    if (data_taken)
        _engine.scheduleAbs(xfer_end, std::move(data_taken));
    _engine.scheduleAbs(die_end, std::move(done));
}

void
FlashChannel::erase(const PhysAddr &addr, int tag, Callback done,
                    LatencyBreakdown *bd)
{
    ++_erases;
    FlashDie &d = dieAt(addr);
    std::uint32_t mask = planeMask(addr, 1);

    Tick t0 = _engine.now();
    Tick cmd_end = _bus.reserve(_timing.commandBytes, tag);
    Tick die_end = d.reserve(NandOp::Erase, mask, 0, cmd_end);
    bdSpanCloseAt(_engine, bd, bdFlashBus, t0, cmd_end);
    bdSpanCloseAt(_engine, bd, bdFlashMem, cmd_end, die_end);

    if (_fault) {
        _fault->notifyErase(addr);
        if (_fault->eraseFails(addr)) {
            // Erase-status fail: escalate at die_end and retry once.
            ++_eraseRetries;
            PhysAddr a = addr;
            _engine.scheduleAbs(die_end, [this, a] {
                _fault->reportBlockFault(a, FaultKind::EraseFail);
            });
            Tick cmd2_end =
                _bus.reserveFrom(die_end, _timing.commandBytes, tag);
            Tick die2_end = d.reserve(NandOp::Erase, mask, 0, cmd2_end);
            bdSpanCloseAt(_engine, bd, bdFlashBus, die_end, cmd2_end);
            bdSpanCloseAt(_engine, bd, bdFlashMem, cmd2_end, die2_end);
            die_end = die2_end;
        }
    }

    _engine.scheduleAbs(die_end, std::move(done));
}

void
FlashChannel::localCopyback(const PhysAddr &src, const PhysAddr &dst,
                            int tag, Callback done, LatencyBreakdown *bd)
{
    if (src.way != dst.way || src.die != dst.die || src.plane != dst.plane)
        panic("local copyback must stay within one plane");
    ++_reads;
    ++_programs;
    FlashDie &d = dieAt(src);
    std::uint32_t mask = planeMask(src, 1);

    Tick t0 = _engine.now();
    Tick cmd_end = _bus.reserve(2 * _timing.commandBytes, tag);
    Tick die_end = d.reserve(NandOp::LocalCopyback, mask, src.page, cmd_end);
    bdSpanCloseAt(_engine, bd, bdFlashBus, t0, cmd_end);
    bdSpanCloseAt(_engine, bd, bdFlashMem, cmd_end, die_end);
    _engine.scheduleAbs(die_end, std::move(done));
}

void
FlashChannel::registerStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.addScalar(prefix + ".reads", [this] {
        return static_cast<double>(_reads);
    });
    reg.addScalar(prefix + ".programs", [this] {
        return static_cast<double>(_programs);
    });
    reg.addScalar(prefix + ".erases", [this] {
        return static_cast<double>(_erases);
    });
    reg.addScalar(prefix + ".program_retries", [this] {
        return static_cast<double>(_programRetries);
    });
    reg.addScalar(prefix + ".erase_retries", [this] {
        return static_cast<double>(_eraseRetries);
    });
    _bus.registerStats(reg, prefix + ".bus");
    _pageBuffer.registerStats(reg, prefix + ".page_buffer");
    for (std::size_t i = 0; i < _dies.size(); ++i) {
        _dies[i]->registerStats(reg,
                                prefix + strformat(".die%zu", i));
    }
}

} // namespace dssd
