#include "controller/decoupled.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

const char *
copybackStageName(CopybackStage stage)
{
    switch (stage) {
      case CopybackStage::Issued:
        return "Issued";
      case CopybackStage::R:
        return "R";
      case CopybackStage::RE:
        return "RE";
      case CopybackStage::T:
        return "T";
      case CopybackStage::W:
        return "W";
      case CopybackStage::numStages:
        break;
    }
    return "?";
}

/** In-flight global copyback bookkeeping. */
struct DecoupledController::Copyback
{
    PhysAddr src;
    PhysAddr dst;
    DecoupledController *dstCtrl = nullptr;
    int tag = tagGc;
    Tick start = 0;
    Tick stageStart = 0; ///< when the currently running stage began
    LatencyBreakdown *bd = nullptr;
    Callback done;
};

DecoupledController::DecoupledController(Engine &engine,
                                         FlashChannel &channel,
                                         const DecoupledParams &params)
    : _engine(engine), _channel(channel),
      _ecc(engine, strformat("ecc-ch%u", channel.channelId()), params.ecc),
      _dbufOut(engine, strformat("dbuf-out-ch%u", channel.channelId()),
               std::max(1u, params.dbufSlots / 2)),
      _dbufIn(engine, strformat("dbuf-in-ch%u", channel.channelId()),
              std::max(1u, params.dbufSlots - params.dbufSlots / 2)),
      _srt(params.srtEntries)
{
}

void
DecoupledController::setInterconnect(Interconnect *ic, unsigned node_id)
{
    _interconnect = ic;
    _nodeId = node_id;
}

void
DecoupledController::stageReached(CopybackStage stage)
{
    ++_stageCounts[static_cast<std::size_t>(stage)];
}

void
DecoupledController::stageTrace(Copyback &cb, CopybackStage stage)
{
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        int pid = tr->process("copyback");
        std::uint64_t id = tr->nextSpanId();
        const char *name = copybackStageName(stage);
        tr->asyncBegin(pid, "cbstage", name, id, cb.stageStart);
        tr->asyncEnd(pid, "cbstage", name, id, _engine.now());
    }
#endif
    cb.stageStart = _engine.now();
}

std::uint64_t
DecoupledController::stageCount(CopybackStage stage) const
{
    return _stageCounts[static_cast<std::size_t>(stage)];
}

void
DecoupledController::audit(AuditReport &r) const
{
    // The per-command status machine only ever advances Issued -> R ->
    // RE -> T -> W, so the cumulative counters must be monotone along
    // that order: a command counted at stage N was counted at N-1.
    constexpr auto n = static_cast<std::size_t>(CopybackStage::numStages);
    for (std::size_t s = 1; s < n; ++s) {
        if (_stageCounts[s] > _stageCounts[s - 1]) {
            r.fail("channel %u copyback status machine: %llu commands "
                   "reached stage %s but only %llu reached %s",
                   _channel.channelId(),
                   static_cast<unsigned long long>(_stageCounts[s]),
                   copybackStageName(static_cast<CopybackStage>(s)),
                   static_cast<unsigned long long>(_stageCounts[s - 1]),
                   copybackStageName(static_cast<CopybackStage>(s - 1)));
        }
    }
    std::uint64_t issued =
        _stageCounts[static_cast<std::size_t>(CopybackStage::Issued)];
    std::uint64_t written =
        _stageCounts[static_cast<std::size_t>(CopybackStage::W)];
    if (written != _completed) {
        r.fail("channel %u: %llu copybacks reached W but %llu "
               "completed",
               _channel.channelId(),
               static_cast<unsigned long long>(written),
               static_cast<unsigned long long>(_completed));
    }
    if (_inFlight != issued - written) {
        r.fail("channel %u: %llu copybacks in flight but issued %llu - "
               "written %llu = %llu",
               _channel.channelId(),
               static_cast<unsigned long long>(_inFlight),
               static_cast<unsigned long long>(issued),
               static_cast<unsigned long long>(written),
               static_cast<unsigned long long>(issued - written));
    }

    // dBUF slot accounting.
    if (_dbufOut.freeSlots() > _dbufOut.capacity()) {
        r.fail("channel %u egress dBUF: %u free slots exceed capacity "
               "%u",
               _channel.channelId(), _dbufOut.freeSlots(),
               _dbufOut.capacity());
    }
    if (_dbufIn.freeSlots() > _dbufIn.capacity()) {
        r.fail("channel %u ingress dBUF: %u free slots exceed capacity "
               "%u",
               _channel.channelId(), _dbufIn.freeSlots(),
               _dbufIn.capacity());
    }
    if (_inFlight == 0 && _dbufOut.freeSlots() != _dbufOut.capacity()) {
        r.fail("channel %u egress dBUF leak: %u of %u slots held with "
               "no copyback in flight",
               _channel.channelId(),
               _dbufOut.capacity() - _dbufOut.freeSlots(),
               _dbufOut.capacity());
    }

    auditRemapTables(_srt, _rbt, r);
}

PhysAddr
DecoupledController::remap(const PhysAddr &addr) const
{
    const FlashGeometry &g = _channel.geometry();
    ChannelBlockId id = channelBlockId(g, addr);
    auto hit = _srt.lookup(id);
    if (!hit)
        return addr;
    PhysAddr out = channelBlockAddr(g, addr.channel, *hit);
    out.page = addr.page;
    return out;
}

void
DecoupledController::globalCopyback(const PhysAddr &src, const PhysAddr &dst,
                                    DecoupledController *dst_ctrl, int tag,
                                    Callback done, LatencyBreakdown *bd)
{
    if (src.channel != _channel.channelId())
        panic("copyback source must live on this controller's channel");
    bool cross_channel = dst.channel != src.channel;
    if (cross_channel && (!dst_ctrl || !_interconnect))
        panic("cross-channel copyback needs a destination controller and "
              "an interconnect");

    auto cb = std::make_shared<Copyback>();
    cb->src = remap(src);
    cb->dst = cross_channel ? dst_ctrl->remap(dst) : remap(dst);
    cb->dstCtrl = dst_ctrl;
    cb->tag = tag;
    cb->start = _engine.now();
    cb->stageStart = cb->start;
    cb->bd = bd;
    cb->done = std::move(done);
    ++_inFlight;
    stageReached(CopybackStage::Issued);

    // Stage 1: claim an egress dBUF entry, then read the page out of
    // the die.
    _dbufOut.acquire([this, cb] {
        _channel.read(cb->src, 1, cb->tag, [this, cb] {
            stageReached(CopybackStage::R);
            stageTrace(*cb, CopybackStage::R);
            // Stage 2: error detection/correction in the local engine.
            // Under faults this runs the full recovery ladder; an
            // uncorrectable page aborts the state machine and re-reads
            // through the front-end.
            runReadRecovery(
                _engine, _ecc, _fault, cb->src,
                _channel.geometry().pageBytes, cb->tag, cb->bd,
                [this, cb](Callback rr) {
                    _channel.read(cb->src, 1, cb->tag, std::move(rr),
                                  cb->bd);
                },
                [this, cb](ReadSeverity sev) {
                if (sev == ReadSeverity::Uncorrectable) {
                    abortCopyback(cb);
                    return;
                }
                stageReached(CopybackStage::RE);
                stageTrace(*cb, CopybackStage::RE);

                auto finish = [this, cb] {
                    stageReached(CopybackStage::W);
                    stageTrace(*cb, CopybackStage::W);
                    ++_completed;
                    --_inFlight;
                    _latency.sample(
                        static_cast<double>(_engine.now() - cb->start));
                    cb->done();
                };

                if (cb->dst.channel == _channel.channelId()) {
                    // Same-channel destination: write directly; the
                    // page never leaves this controller. The dBUF
                    // entry frees as soon as the page streams onto
                    // the flash bus (the die programs from its own
                    // page register).
                    stageReached(CopybackStage::T);
                    stageTrace(*cb, CopybackStage::T);
                    _channel.program(cb->dst, 1, cb->tag, finish,
                                     cb->bd,
                                     [this] { _dbufOut.release(); });
                } else {
                    // Cross-channel: claim an ingress dBUF entry at
                    // the destination, then packetize and traverse
                    // the interconnect. Ingress entries always drain
                    // (the program below has no further dependency),
                    // so egress-waits-for-ingress cannot cycle.
                    DecoupledController *dc = cb->dstCtrl;
                    dc->_dbufIn.acquire([this, cb, dc, finish] {
                        Tick t1 = _engine.now();
                        _interconnect->send(
                            _nodeId, dc->nodeId(),
                            _channel.geometry().pageBytes, cb->tag,
                            [this, cb, dc, finish, t1] {
                            bdSpanClose(_engine, cb->bd, bdNoc, t1);
                            stageReached(CopybackStage::T);
                            stageTrace(*cb, CopybackStage::T);
                            // Source dBUF drains once the transfer is
                            // complete.
                            _dbufOut.release();
                            // The destination command queue issues the
                            // write; no re-check of ECC is needed. The
                            // ingress dBUF entry frees once the page
                            // streams onto the destination flash bus.
                            dc->channel().program(cb->dst, 1, cb->tag,
                                                  finish, cb->bd,
                                                  [dc] {
                                dc->_dbufIn.release();
                            });
                        });
                    });
                }
            });
        }, cb->bd);
    });
}

void
DecoupledController::abortCopyback(const std::shared_ptr<Copyback> &cb)
{
    // The channel ECC ladder gave up on the page: the command aborts
    // its R/RE state machine, drops its egress dBUF claim, and the
    // page is re-read through the front-end (system bus + DRAM +
    // shared ECC) by the Ssd-installed fallback. The command still
    // retires through the normal stage accounting once the fallback
    // lands the page, so the status-machine audit invariants hold.
    if (!_fallback)
        panic("channel %u: uncorrectable copyback page but no "
              "front-end fallback installed",
              _channel.channelId());
    ++_aborted;
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        int pid = tr->process("fault");
        std::uint64_t id = tr->nextSpanId();
        tr->asyncBegin(pid, "fault", "abort", id, cb->stageStart);
        tr->asyncEnd(pid, "fault", "abort", id, _engine.now());
    }
#endif
    cb->stageStart = _engine.now();
    _dbufOut.release();
    if (_fault)
        _fault->reportBlockFault(cb->src, FaultKind::UncorrectableRead);
    _fallback(cb->src, cb->dst, cb->tag, cb->bd, [this, cb] {
        stageReached(CopybackStage::RE);
        stageTrace(*cb, CopybackStage::RE);
        stageReached(CopybackStage::T);
        stageTrace(*cb, CopybackStage::T);
        stageReached(CopybackStage::W);
        stageTrace(*cb, CopybackStage::W);
        ++_completed;
        --_inFlight;
        _latency.sample(static_cast<double>(_engine.now() - cb->start));
        cb->done();
    });
}

void
DecoupledController::registerStats(StatRegistry &reg,
                                   const std::string &prefix) const
{
    reg.addScalar(prefix + ".copybacks_completed", [this] {
        return static_cast<double>(_completed);
    });
    reg.addScalar(prefix + ".copybacks_in_flight", [this] {
        return static_cast<double>(_inFlight);
    });
    reg.addScalar(prefix + ".copybacks_aborted", [this] {
        return static_cast<double>(_aborted);
    });
    constexpr auto n = static_cast<std::size_t>(CopybackStage::numStages);
    for (std::size_t s = 0; s < n; ++s) {
        auto stage = static_cast<CopybackStage>(s);
        reg.addScalar(
            prefix + ".stage." + copybackStageName(stage), [this, s] {
                return static_cast<double>(_stageCounts[s]);
            });
    }
    reg.addSample(prefix + ".latency", &_latency);
    _dbufOut.registerStats(reg, prefix + ".dbuf_out");
    _dbufIn.registerStats(reg, prefix + ".dbuf_in");
    _ecc.registerStats(reg, prefix + ".ecc");
}

} // namespace dssd
