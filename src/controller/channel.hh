/**
 * @file
 * Flash channel controller: the conventional datapath of Fig 4.
 *
 * One FlashChannel owns a flash-bus channel (1 GB/s, Table 1), the
 * dies behind it (ways x diesPerWay), and a page buffer. It sequences
 * ONFI-style operations: command/address cycles and data transfers on
 * the channel bus, array time on the die. Multi-plane operations scale
 * the data transfer and occupy several planes.
 */

#ifndef DSSD_CONTROLLER_CHANNEL_HH
#define DSSD_CONTROLLER_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/latency.hh"
#include "fault/fault.hh"
#include "nand/die.hh"
#include "nand/geometry.hh"
#include "nand/timing.hh"
#include "sim/resource.hh"

namespace dssd
{

/** FlashChannel configuration. */
struct ChannelParams
{
    BytesPerTick busBandwidth = gbPerSec(1.0);
    /// Page-buffer entries (footnote 4: 16 pages to cover multi-plane
    /// operations across 8 ways).
    unsigned pageBufferSlots = 16;
};

/** One flash channel: bus + dies + page buffer. */
class FlashChannel
{
  public:
    using Callback = Engine::Callback;

    FlashChannel(Engine &engine, const FlashGeometry &geom,
                 const NandTiming &timing, unsigned channel_id,
                 const ChannelParams &params);

    /**
     * Read @p planes pages starting at @p addr (multi-plane when >1).
     * Sequence: cmd on bus -> tR on die -> data out on bus.
     * @p data_ready fires when the data sits in the controller.
     */
    void read(const PhysAddr &addr, unsigned planes, int tag,
              Callback data_ready, LatencyBreakdown *bd = nullptr);

    /**
     * Program @p planes pages at @p addr. Data is assumed present in
     * the controller. Sequence: cmd+data on bus -> tPROG on die.
     *
     * @param data_taken Optional; fires when the channel-bus data
     *        transfer completes and the controller-side buffer holding
     *        the page may be recycled (the die programs from its own
     *        page register).
     */
    void program(const PhysAddr &addr, unsigned planes, int tag,
                 Callback done, LatencyBreakdown *bd = nullptr,
                 Callback data_taken = nullptr);

    /** Erase the block at @p addr (single plane). */
    void erase(const PhysAddr &addr, int tag, Callback done,
               LatencyBreakdown *bd = nullptr);

    /**
     * ONFI local copyback: read-for-copy + program inside one die,
     * no data on the channel bus (cmd cycles only). Source and
     * destination must share die and plane.
     */
    void localCopyback(const PhysAddr &src, const PhysAddr &dst, int tag,
                       Callback done, LatencyBreakdown *bd = nullptr);

    FlashDie &die(std::uint32_t way, std::uint32_t die_idx);
    FlashDie &dieAt(const PhysAddr &addr);

    BandwidthResource &bus() { return _bus; }
    const BandwidthResource &bus() const { return _bus; }
    SlotResource &pageBuffer() { return _pageBuffer; }

    unsigned channelId() const { return _channelId; }
    const FlashGeometry &geometry() const { return _geom; }
    const NandTiming &timing() const { return _timing; }

    std::uint64_t reads() const { return _reads; }
    std::uint64_t programs() const { return _programs; }
    std::uint64_t erases() const { return _erases; }
    std::uint64_t programRetries() const { return _programRetries; }
    std::uint64_t eraseRetries() const { return _eraseRetries; }

    /**
     * Attach the fault model (null = fault-free). Program/erase ops
     * then sample status failures: a failing op is re-issued once at
     * full bus + array cost and the terminal fault is escalated via
     * FaultModel::reportBlockFault at the tick the status read would
     * see it.
     */
    void setFaultModel(FaultModel *fault) { _fault = fault; }

    /** Register op counters, bus, page buffer, and every die under
     *  @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    std::uint32_t planeMask(const PhysAddr &addr, unsigned planes) const;

    Engine &_engine;
    FlashGeometry _geom;
    NandTiming _timing;
    unsigned _channelId;
    BandwidthResource _bus;
    SlotResource _pageBuffer;
    std::vector<std::unique_ptr<FlashDie>> _dies;
    FaultModel *_fault = nullptr;
    std::uint64_t _reads = 0;
    std::uint64_t _programs = 0;
    std::uint64_t _erases = 0;
    std::uint64_t _programRetries = 0;
    std::uint64_t _eraseRetries = 0;
};

} // namespace dssd

#endif // DSSD_CONTROLLER_CHANNEL_HH
