#include "controller/remap.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/audit.hh"

namespace dssd
{

std::vector<std::pair<ChannelBlockId, ChannelBlockId>>
SuperblockRemapTable::entriesSorted() const
{
    std::vector<std::pair<ChannelBlockId, ChannelBlockId>> out;
    out.reserve(_map.size());
    // The only sanctioned walk of the hash map: the result is sorted
    // before anyone can observe it. lint:allow unordered-iteration
    for (const auto &kv : _map)
        out.emplace_back(kv.first, kv.second);
    std::sort(out.begin(), out.end());
    return out;
}

void
auditRemapTables(const SuperblockRemapTable &srt,
                 const RecycleBlockTable &rbt, AuditReport &r)
{
    auto entries = srt.entriesSorted();

    if (srt.capacity() != 0 && entries.size() > srt.capacity()) {
        r.fail("SRT holds %zu entries beyond its capacity %zu",
               entries.size(), srt.capacity());
    }
    if (entries.size() > srt.highWater()) {
        r.fail("SRT high-water %zu below current size %zu",
               srt.highWater(), entries.size());
    }

    std::unordered_set<ChannelBlockId> targets;
    targets.reserve(entries.size());
    for (const auto &[from, to] : entries) {
        if (from == to)
            r.fail("SRT self-remap: block %u mapped to itself", from);
        if (!targets.insert(to).second) {
            r.fail("SRT injectivity: replacement block %u serves two "
                   "remapped sources",
                   to);
        }
    }
    for (const auto &[from, to] : entries) {
        if (targets.count(from)) {
            r.fail("SRT remap chain: source block %u is also an "
                   "active replacement",
                   from);
        }
    }

    std::unordered_set<ChannelBlockId> binned;
    for (ChannelBlockId b : rbt.contents()) {
        if (!binned.insert(b).second)
            r.fail("RBT holds block %u twice", b);
        if (targets.count(b)) {
            r.fail("block %u is an active SRT replacement and also "
                   "sits in the RBT",
                   b);
        }
    }
    if (rbt.size() > rbt.highWater()) {
        r.fail("RBT high-water %zu below current size %zu",
               rbt.highWater(), rbt.size());
    }
}

} // namespace dssd
