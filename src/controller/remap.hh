/**
 * @file
 * Hardware remapping tables for dynamic superblock management (Sec 5).
 *
 *  - RecycleBlockTable (RBT): the per-controller "recycling bin" of
 *    still-good sub-blocks salvaged from dead superblocks (or reserved
 *    up front in the RESERV scheme).
 *  - SuperblockRemapTable (SRT): the capacity-limited remapping from a
 *    dead sub-block's physical id to the recycled block that replaced
 *    it. Every command address is filtered through the SRT, which is
 *    what keeps the remapping invisible to the FTL.
 *
 * Sub-blocks are identified by their flat block index within the
 * controller's channel (die/plane/block linearized).
 */

#ifndef DSSD_CONTROLLER_REMAP_HH
#define DSSD_CONTROLLER_REMAP_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nand/geometry.hh"

namespace dssd
{

class AuditReport;

/** Flat block id within one channel. */
using ChannelBlockId = std::uint32_t;

/** Linearize (way, die, plane, block) within a channel. */
inline ChannelBlockId
channelBlockId(const FlashGeometry &g, const PhysAddr &a)
{
    return ((a.way * g.diesPerWay + a.die) * g.planesPerDie + a.plane) *
               g.blocksPerPlane +
           a.block;
}

/** Invert channelBlockId (channel field left as given). */
inline PhysAddr
channelBlockAddr(const FlashGeometry &g, std::uint32_t channel,
                 ChannelBlockId id)
{
    PhysAddr a;
    a.channel = channel;
    a.block = id % g.blocksPerPlane;
    std::uint32_t rest = id / g.blocksPerPlane;
    a.plane = rest % g.planesPerDie;
    rest /= g.planesPerDie;
    a.die = rest % g.diesPerWay;
    a.way = rest / g.diesPerWay;
    return a;
}

/**
 * The RBT: a FIFO of recycled (still good) blocks on this channel.
 * Hardware cost is tiny (Sec 6.5: ~32 bits) because entries are only
 * created when a superblock dies; the RESERV variant pre-fills it.
 */
class RecycleBlockTable
{
  public:
    /** Add a salvaged (or reserved) block. */
    void
    add(ChannelBlockId block)
    {
        _blocks.push_back(block);
        if (_blocks.size() > _highWater)
            _highWater = _blocks.size();
    }

    bool empty() const { return _blocks.empty(); }
    std::size_t size() const { return _blocks.size(); }

    /** Take the oldest recycled block. @pre !empty() */
    ChannelBlockId
    take()
    {
        ChannelBlockId b = _blocks.front();
        _blocks.pop_front();
        ++_taken;
        return b;
    }

    std::size_t highWater() const { return _highWater; }
    std::uint64_t taken() const { return _taken; }

    /**
     * Snapshot of the queued blocks in FIFO (take) order. The deque
     * order is insertion order, so this is deterministic across runs.
     */
    std::vector<ChannelBlockId> contents() const
    {
        return {_blocks.begin(), _blocks.end()};
    }

  private:
    std::deque<ChannelBlockId> _blocks;
    std::size_t _highWater = 0;
    std::uint64_t _taken = 0;
};

/**
 * The SRT: source sub-block -> replacement block, with a hardware
 * capacity limit. When full, no further dynamic superblocks can be
 * created on this channel (the endurance/cost trade-off of Fig 15/16).
 */
class SuperblockRemapTable
{
  public:
    /** @param capacity Max active entries; 0 means unbounded. */
    explicit SuperblockRemapTable(std::size_t capacity = 0)
        : _capacity(capacity)
    {
    }

    bool
    full() const
    {
        return _capacity != 0 && _map.size() >= _capacity;
    }

    /**
     * Insert a remapping @p from -> @p to.
     * @retval false if the table is full or @p from already remapped.
     */
    bool
    insert(ChannelBlockId from, ChannelBlockId to)
    {
        if (full() || _map.contains(from))
            return false;
        _map.emplace(from, to);
        ++_inserts;
        if (_map.size() > _highWater)
            _highWater = _map.size();
        return true;
    }

    /** Resolve @p from if remapped. */
    std::optional<ChannelBlockId>
    lookup(ChannelBlockId from) const
    {
        auto it = _map.find(from);
        if (it == _map.end())
            return std::nullopt;
        return it->second;
    }

    /** Drop a remapping (the dynamic superblock itself died). */
    bool
    erase(ChannelBlockId from)
    {
        return _map.erase(from) > 0;
    }

    std::size_t activeEntries() const { return _map.size(); }
    std::size_t capacity() const { return _capacity; }
    std::size_t highWater() const { return _highWater; }
    std::uint64_t inserts() const { return _inserts; }

    /**
     * Stable snapshot of the active remappings: (from, to) pairs
     * sorted by source id. Anything that iterates the table — stats
     * printing, auditing, cross-run comparison — must go through this:
     * the hash map's own iteration order depends on its rehash history
     * and may never leak into simulation results or output
     * (tools/lint/dssd_lint.py enforces the ban on direct iteration).
     */
    std::vector<std::pair<ChannelBlockId, ChannelBlockId>>
    entriesSorted() const;

  private:
    std::size_t _capacity;
    std::unordered_map<ChannelBlockId, ChannelBlockId> _map;
    std::size_t _highWater = 0;
    std::uint64_t _inserts = 0;
};

/**
 * Cross-check one controller's remap-table pair: SRT injectivity (no
 * two sources share a replacement), no self-remaps, no remap chains
 * (a replacement block is never itself a remapped source), capacity
 * and high-water accounting, and SRT∩RBT emptiness (a block cannot be
 * an active replacement and sit in the recycling bin at once). See
 * sim/audit.hh.
 */
void auditRemapTables(const SuperblockRemapTable &srt,
                      const RecycleBlockTable &rbt, AuditReport &report);

} // namespace dssd

#endif // DSSD_CONTROLLER_REMAP_HH
