/**
 * @file
 * Per-request latency breakdown accumulator.
 *
 * Fig 9 of the paper decomposes I/O and copyback latency into flash
 * memory (cell array), flash bus, system bus, and fNoC components.
 * Datapath phases add their (queueing + service) time into one of
 * these buckets as the request flows through the model.
 */

#ifndef DSSD_CONTROLLER_LATENCY_HH
#define DSSD_CONTROLLER_LATENCY_HH

#include "sim/types.hh"

namespace dssd
{

/** Accumulated time per datapath component for one request. */
struct LatencyBreakdown
{
    Tick flashMem = 0;   ///< cell-array time (tR / tPROG / tBERS + wait)
    Tick flashBus = 0;   ///< flash channel bus (cmd + data, incl. queue)
    Tick systemBus = 0;  ///< SSD-internal system bus
    Tick dram = 0;       ///< DRAM port
    Tick ecc = 0;        ///< ECC pipeline
    Tick noc = 0;        ///< fNoC / dedicated interconnect
    Tick other = 0;      ///< host interface, firmware, misc

    Tick
    total() const
    {
        return flashMem + flashBus + systemBus + dram + ecc + noc + other;
    }

    LatencyBreakdown &
    operator+=(const LatencyBreakdown &o)
    {
        flashMem += o.flashMem;
        flashBus += o.flashBus;
        systemBus += o.systemBus;
        dram += o.dram;
        ecc += o.ecc;
        noc += o.noc;
        other += o.other;
        return *this;
    }
};

} // namespace dssd

#endif // DSSD_CONTROLLER_LATENCY_HH
