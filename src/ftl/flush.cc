#include "ftl/flush.hh"

#include <utility>

#include "sim/trace.hh"

namespace dssd
{

FlushEngine::FlushEngine(Engine &engine, PageMapping &mapping,
                         WriteBuffer &buffer, unsigned in_flight,
                         ResolveFn resolve, WriteBackFn write_back,
                         AllocNoteFn note_allocation)
    : _engine(engine), _mapping(mapping), _buffer(buffer),
      _maxInFlight(in_flight), _resolve(std::move(resolve)),
      _writeBack(std::move(write_back)),
      _note(std::move(note_allocation))
{
}

void
FlushEngine::traceOccupancy()
{
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        if (_tracePid < 0)
            _tracePid = tr->process("occupancy");
        tr->counter(_tracePid, "write-buffer", _engine.now(),
                    static_cast<double>(_buffer.occupancy()));
    }
#endif
}

void
FlushEngine::maybeStart()
{
    if (_buffer.mode() != BufferMode::Real)
        return;
    if (_active || !_buffer.flushNeeded())
        return;
    _active = true;
    pump();
}

void
FlushEngine::pump()
{
    while (_inFlight < _maxInFlight) {
        if (_buffer.flushSatisfied())
            break;
        auto batch = _buffer.drainForFlush(1);
        if (batch.empty())
            break;
        traceOccupancy();
        ++_inFlight;
        flushOne(batch.front(), [this] {
            --_inFlight;
            ++_flushedPages;
            pump();
        });
    }
    if (_inFlight == 0)
        _active = false;
}

void
FlushEngine::flushOne(Lpn lpn, Callback done)
{
    if (!_mapping.hostCanAllocate()) {
        // Free pool exhausted: hold this flush until GC reclaims.
        _engine.schedule(usToTicks(2),
                         [this, lpn, done = std::move(done)]() mutable {
            flushOne(lpn, std::move(done));
        });
        return;
    }
    PhysAddr addr = _mapping.allocate(lpn);
    std::uint32_t unit = _mapping.unitOf(addr);
    PhysAddr target = _resolve(addr);

    _writeBack(target, std::move(done));
    _note(unit);
}

} // namespace dssd
