/**
 * @file
 * Garbage-collection and allocation policy interfaces.
 *
 * Two orthogonal policy axes live here:
 *
 *  1. GcPolicy / GcParams — the *scheduling* of GC copies relative to
 *     host I/O, from the paper's comparison (Table 3): PaGC [35]
 *     parallel baseline, PreemptiveGC [24], TinyTail [42]. The dSSD
 *     variants change the *datapath* of the copies (copyback over the
 *     decoupled controllers), orthogonal to the scheduling policy; the
 *     paper pairs dSSD with parallel GC. GcParams::preemptible layers
 *     partial/preemptible rounds ("Time-efficient Garbage Collection
 *     in SSDs") on top of any scheduling policy: the engine yields to
 *     pending host I/O at page-copy granularity and resumes
 *     deterministically.
 *
 *  2. VictimPolicy / AllocPolicy — *which block to collect* and
 *     *where host writes land*, modeled as interchangeable strategy
 *     objects behind a string-keyed factory (the EagleTree
 *     Garbage_Collector shape). PageMapping and SuperblockMapping own
 *     one instance each and delegate their pickVictim/allocate
 *     decisions to it; the default pair ("greedy" / "rr") reproduces
 *     the historical hard-coded behavior bit-identically.
 *
 * Ownership/layering: policies are pure-state strategy objects owned
 * by the ftl mapping layers. They may read mapping state through the
 * public PageMapping/SuperblockMapping API but never simulate time;
 * anything they need from upper layers (e.g. whether a unit's GC
 * round is active, known only to core/gc) is injected into the
 * mapping as a probe callback, mirroring the FlushEngine pattern.
 */

#ifndef DSSD_FTL_POLICY_HH
#define DSSD_FTL_POLICY_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dssd
{

class PageMapping;
class SuperblockMapping;
class StatRegistry;

/** GC scheduling policy. */
enum class GcPolicy
{
    Parallel,   ///< PaGC: all units collect concurrently
    Preemptive, ///< postpone while I/O pending, force when critical
    TinyTail,   ///< bounded page-copy slices interleaved with I/O
};

/** GC tuning knobs. */
struct GcParams
{
    GcPolicy policy = GcPolicy::Parallel;
    /// Copies in flight per unit during GC (pipelining depth).
    unsigned copiesInFlightPerUnit = 2;
    /// TinyTail: pages copied per slice before yielding to I/O.
    unsigned tinyTailSlicePages = 4;
    /// TinyTail: pause between slices while I/O is pending.
    std::uint64_t tinyTailYieldNs = 20000;
    /// Preemptive: free blocks at/below which GC can no longer be
    /// postponed regardless of pending I/O.
    std::uint32_t preemptiveForcedFreeBlocks = 1;
    /// Destination selection: allow relocating to any unit (global
    /// free-block selection) rather than the victim's own unit.
    bool globalDestination = true;

    /// Victim-selection policy name (see makeVictimPolicy).
    std::string victimPolicy = "greedy";
    /// Host-write allocation policy name (see makeAllocPolicy).
    std::string allocPolicy = "rr";
    /// Windowed-greedy victim selection: window size in blocks.
    std::uint32_t victimWindow = 8;

    /// Preemptible/partial GC rounds: the engine pauses a unit's round
    /// after each copy quantum while host I/O is outstanding and
    /// resumes it deterministically after preemptResumeNs. Under array
    /// coordination the grant is yielded while every active unit is
    /// paused and re-requested on resume.
    bool preemptible = false;
    /// Copies between preemption checks (>= 1).
    unsigned preemptQuantumPages = 4;
    /// Pause length before a paused unit re-checks for resume.
    std::uint64_t preemptResumeNs = 10000;
};

/** Human-readable policy name. */
inline const char *
gcPolicyName(GcPolicy p)
{
    switch (p) {
      case GcPolicy::Parallel:
        return "PaGC";
      case GcPolicy::Preemptive:
        return "PreemptiveGC";
      case GcPolicy::TinyTail:
        return "TinyTail";
    }
    return "?";
}

/**
 * Incrementally maintained victim-candidate index of one allocation
 * unit (see PageMapping). Replaces the historical O(blocks) victim
 * scan: eligibility transitions (block fills, page invalidated, GC
 * reservation drains, erase, retire) move blocks between valid-count
 * buckets in O(log blocks), and greedy selection reads the first
 * non-empty bucket.
 *
 * Eligibility matches the old scan exactly: fully written, not free,
 * not bad, no GC copies pending into the block. std::set keeps each
 * bucket in ascending block-id order, so min-element selection
 * reproduces the scan's lowest-block-id tie-break bit-identically and
 * is stable across histories.
 */
struct VictimIndex
{
    /// buckets[v] = eligible blocks with v valid pages.
    std::vector<std::set<std::uint32_t>> buckets;
    /// Fully-written, non-free, non-bad blocks in the order they
    /// filled (oldest first); superset of the bucketed blocks (a
    /// block with pending GC copies is listed here but not yet
    /// eligible). Drives windowed-greedy selection.
    std::deque<std::uint32_t> fillOrder;
};

/**
 * Victim-selection strategy: which block (or superblock) to collect
 * next. Implementations must be deterministic pure functions of the
 * mapping state (plus their own state), with a documented tie-break,
 * so figure outputs stay byte-identical across runs, rebuilds and
 * engine-thread counts.
 */
class VictimPolicy
{
  public:
    virtual ~VictimPolicy() = default;

    /** Factory-registered policy name. */
    virtual const char *name() const = 0;

    /**
     * Pick a victim block of @p unit, or nullopt when no eligible
     * block would free space.
     */
    virtual std::optional<std::uint32_t>
    pickVictim(const PageMapping &map, std::uint32_t unit) = 0;

    /** Superblock-granularity pick over Full superblocks. */
    virtual std::optional<std::uint32_t>
    pickVictim(const SuperblockMapping &map) = 0;

    /** Register policy-specific counters under @p prefix. */
    virtual void
    registerStats(StatRegistry &reg, const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }
};

/**
 * Host-write allocation strategy: which unit takes the next host
 * page. Owns any striping cursor state; the default "rr" policy is
 * the historical round-robin loop, cursor semantics and all.
 */
class AllocPolicy
{
  public:
    virtual ~AllocPolicy() = default;

    /** Factory-registered policy name. */
    virtual const char *name() const = 0;

    /**
     * Unit of the next host write, or nullopt when no unit can take a
     * host allocation (every unit is down to its GC-reserve block).
     */
    virtual std::optional<std::uint32_t>
    chooseUnit(const PageMapping &map) = 0;

    /** Register policy-specific counters under @p prefix. */
    virtual void
    registerStats(StatRegistry &reg, const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }
};

/** Knobs forwarded to policy constructors by the factory. */
struct PolicyConfig
{
    /// Windowed-greedy: how many of the oldest full blocks compete.
    std::uint32_t victimWindow = 8;
};

/**
 * String-keyed policy factories. Every concrete policy class is
 * registered here (enforced by lint rule R7); fatal() on unknown
 * names, listing the registered ones.
 */
std::unique_ptr<VictimPolicy>
makeVictimPolicy(const std::string &name, const PolicyConfig &cfg = {});
std::unique_ptr<AllocPolicy>
makeAllocPolicy(const std::string &name, const PolicyConfig &cfg = {});

/** Registered policy names, in registration order. */
std::vector<std::string> victimPolicyNames();
std::vector<std::string> allocPolicyNames();

/** Whether @p name is a registered policy. */
bool isVictimPolicy(const std::string &name);
bool isAllocPolicy(const std::string &name);

} // namespace dssd

#endif // DSSD_FTL_POLICY_HH
