/**
 * @file
 * Garbage-collection policy descriptors.
 *
 * Three schemes from the paper's comparison (Table 3):
 *  - PaGC [35]: the baseline. When the free-block threshold trips, GC
 *    runs in parallel across all flash memory; valid-page copies
 *    compete head-on with I/O for the shared resources.
 *  - PreemptiveGC [24]: GC is postponed while I/O is pending and only
 *    forced when free blocks become critically low.
 *  - TinyTail [42]: GC proceeds in small slices per channel so I/O can
 *    interleave, bounding tail latency (but still sharing the bus).
 *
 * The dSSD variants change the *datapath* of the copies (copyback over
 * the decoupled controllers), orthogonal to the scheduling policy; the
 * paper pairs dSSD with parallel GC.
 */

#ifndef DSSD_FTL_POLICY_HH
#define DSSD_FTL_POLICY_HH

#include <cstdint>
#include <string>

namespace dssd
{

/** GC scheduling policy. */
enum class GcPolicy
{
    Parallel,   ///< PaGC: all units collect concurrently
    Preemptive, ///< postpone while I/O pending, force when critical
    TinyTail,   ///< bounded page-copy slices interleaved with I/O
};

/** GC tuning knobs. */
struct GcParams
{
    GcPolicy policy = GcPolicy::Parallel;
    /// Copies in flight per unit during GC (pipelining depth).
    unsigned copiesInFlightPerUnit = 2;
    /// TinyTail: pages copied per slice before yielding to I/O.
    unsigned tinyTailSlicePages = 4;
    /// TinyTail: pause between slices while I/O is pending.
    std::uint64_t tinyTailYieldNs = 20000;
    /// Preemptive: free blocks at/below which GC can no longer be
    /// postponed regardless of pending I/O.
    std::uint32_t preemptiveForcedFreeBlocks = 1;
    /// Destination selection: allow relocating to any unit (global
    /// free-block selection) rather than the victim's own unit.
    bool globalDestination = true;
};

/** Human-readable policy name. */
inline const char *
gcPolicyName(GcPolicy p)
{
    switch (p) {
      case GcPolicy::Parallel:
        return "PaGC";
      case GcPolicy::Preemptive:
        return "PreemptiveGC";
      case GcPolicy::TinyTail:
        return "TinyTail";
    }
    return "?";
}

} // namespace dssd

#endif // DSSD_FTL_POLICY_HH
