#include "ftl/superblock.hh"

#include <algorithm>

#include "sim/audit.hh"
#include "sim/log.hh"

namespace dssd
{

SuperblockMapping::SuperblockMapping(const FlashGeometry &geom,
                                     double over_provision,
                                     const std::string &victim_policy,
                                     std::uint32_t victim_window)
    : _geom(geom)
{
    _geom.validate();
    if (over_provision < 0.0 || over_provision >= 1.0)
        fatal("over-provision ratio must be in [0, 1)");

    _unitCount = _geom.channels * _geom.ways * _geom.diesPerWay *
                 _geom.planesPerDie;
    _pagesPerSb = _unitCount * _geom.pagesPerBlock;
    _lpnCount = static_cast<Lpn>(
        static_cast<double>(_geom.totalPages()) * (1.0 - over_provision));

    _sbs.resize(_geom.blocksPerPlane);
    for (auto &sb : _sbs)
        sb.valid.assign(_pagesPerSb, false);
    for (std::uint32_t s = 0; s < _geom.blocksPerPlane; ++s)
        _freeList.push_back(s);

    _l2p.assign(_lpnCount, invalidPpn);
    _p2l.assign(static_cast<std::size_t>(_geom.blocksPerPlane) *
                    _pagesPerSb,
                invalidLpn);

    PolicyConfig pc;
    pc.victimWindow = victim_window;
    _victim = makeVictimPolicy(victim_policy, pc);
}

SuperblockMapping::~SuperblockMapping() = default;

std::uint32_t
SuperblockMapping::stripeSlotOf(const PhysAddr &a) const
{
    std::uint32_t unit =
        ((a.channel * _geom.ways + a.way) * _geom.diesPerWay + a.die) *
            _geom.planesPerDie +
        a.plane;
    return a.page * _unitCount + unit;
}

PhysAddr
SuperblockMapping::slotAddr(std::uint32_t sb, std::uint32_t slot) const
{
    std::uint32_t unit = slot % _unitCount;
    PhysAddr a;
    a.plane = unit % _geom.planesPerDie;
    std::uint32_t rest = unit / _geom.planesPerDie;
    a.die = rest % _geom.diesPerWay;
    rest /= _geom.diesPerWay;
    a.way = rest % _geom.ways;
    a.channel = rest / _geom.ways;
    a.block = sb;
    a.page = slot / _unitCount;
    return a;
}

std::optional<PhysAddr>
SuperblockMapping::translate(Lpn lpn) const
{
    if (lpn >= _lpnCount)
        panic("LPN %llu out of range", (unsigned long long)lpn);
    Ppn p = _l2p[lpn];
    if (p == invalidPpn)
        return std::nullopt;
    return slotAddr(static_cast<std::uint32_t>(p / _pagesPerSb),
                    static_cast<std::uint32_t>(p % _pagesPerSb));
}

void
SuperblockMapping::openActive()
{
    if (_freeList.empty())
        panic("no free superblock to open");
    _active = _freeList.front();
    _freeList.pop_front();
    _hasActive = true;
    SuperblockInfo &sb = _sbs[_active];
    sb.state = SuperblockState::Active;
    sb.writePtr = 0;
}

PhysAddr
SuperblockMapping::allocate(Lpn lpn)
{
    if (lpn >= _lpnCount)
        panic("LPN %llu out of range", (unsigned long long)lpn);
    if (!_hasActive)
        openActive();

    SuperblockInfo &sb = _sbs[_active];
    std::uint32_t slot = sb.writePtr++;
    std::uint32_t sbid = _active;
    sb.lastWriteSeq = ++_allocSeq;
    if (sb.writePtr == _pagesPerSb) {
        sb.state = SuperblockState::Full;
        _hasActive = false;
        _fullOrder.push_back(sbid);
    }

    invalidate(lpn);
    Ppn p = static_cast<Ppn>(sbid) * _pagesPerSb + slot;
    _l2p[lpn] = p;
    _p2l[p] = lpn;
    _sbs[sbid].valid[slot] = true;
    ++_sbs[sbid].validCount;
    ++_validPages;
    ++_hostWrites;
    return slotAddr(sbid, slot);
}

void
SuperblockMapping::invalidate(Lpn lpn)
{
    if (lpn >= _lpnCount)
        panic("LPN %llu out of range", (unsigned long long)lpn);
    Ppn old = _l2p[lpn];
    if (old == invalidPpn)
        return;
    std::uint32_t sbid = static_cast<std::uint32_t>(old / _pagesPerSb);
    std::uint32_t slot = static_cast<std::uint32_t>(old % _pagesPerSb);
    SuperblockInfo &sb = _sbs[sbid];
    if (!sb.valid[slot])
        panic("invalidate of already-invalid slot");
    sb.valid[slot] = false;
    --sb.validCount;
    --_validPages;
    _p2l[old] = invalidLpn;
    _l2p[lpn] = invalidPpn;
}

std::optional<std::uint32_t>
SuperblockMapping::pickVictim()
{
    return _victim->pickVictim(*this);
}

std::vector<Lpn>
SuperblockMapping::validLpns(std::uint32_t sb) const
{
    const SuperblockInfo &info = _sbs[sb];
    std::vector<Lpn> out;
    out.reserve(info.validCount);
    Ppn base = static_cast<Ppn>(sb) * _pagesPerSb;
    for (std::uint32_t slot = 0; slot < _pagesPerSb; ++slot) {
        if (info.valid[slot])
            out.push_back(_p2l[base + slot]);
    }
    return out;
}

std::vector<Lpn>
SuperblockMapping::validLpnsOnChannel(std::uint32_t sb,
                                      std::uint32_t channel) const
{
    const SuperblockInfo &info = _sbs[sb];
    std::vector<Lpn> out;
    Ppn base = static_cast<Ppn>(sb) * _pagesPerSb;
    for (std::uint32_t slot = 0; slot < _pagesPerSb; ++slot) {
        if (!info.valid[slot])
            continue;
        if (slotAddr(sb, slot).channel == channel)
            out.push_back(_p2l[base + slot]);
    }
    return out;
}

void
SuperblockMapping::eraseSuperblock(std::uint32_t sb)
{
    SuperblockInfo &info = _sbs[sb];
    if (info.validCount != 0)
        panic("erase of superblock with %u valid pages",
              info.validCount);
    if (info.state == SuperblockState::Dead)
        panic("erase of dead superblock");
    if (info.state == SuperblockState::Free)
        panic("erase of free superblock");
    if (_hasActive && sb == _active)
        panic("erase of the active superblock");
    std::fill(info.valid.begin(), info.valid.end(), false);
    info.writePtr = 0;
    ++info.eraseCount;
    ++_erases;
    info.state = SuperblockState::Free;
    fullOrderRemove(sb);
    _freeList.push_back(sb);
}

void
SuperblockMapping::fullOrderRemove(std::uint32_t sb)
{
    auto it = std::find(_fullOrder.begin(), _fullOrder.end(), sb);
    if (it != _fullOrder.end())
        _fullOrder.erase(it);
}

void
SuperblockMapping::retireSuperblock(std::uint32_t sb)
{
    SuperblockInfo &info = _sbs[sb];
    // Idempotent: concurrent failure paths (wear check + fault
    // escalation) may both retire the same superblock; counting it
    // dead twice would corrupt the capacity accounting.
    if (info.state == SuperblockState::Dead)
        return;
    if (info.validCount != 0)
        panic("retire of superblock still holding %u valid pages",
              info.validCount);
    if (info.state == SuperblockState::Free) {
        auto it = std::find(_freeList.begin(), _freeList.end(), sb);
        if (it != _freeList.end())
            _freeList.erase(it);
    }
    if (_hasActive && sb == _active)
        _hasActive = false;
    info.state = SuperblockState::Dead;
    fullOrderRemove(sb);
    ++_dead;
}

void
SuperblockMapping::reserveSuperblock(std::uint32_t sb)
{
    SuperblockInfo &info = _sbs[sb];
    if (info.state != SuperblockState::Free)
        panic("only free superblocks can be reserved");
    auto it = std::find(_freeList.begin(), _freeList.end(), sb);
    if (it == _freeList.end())
        panic("reserved superblock missing from free list");
    _freeList.erase(it);
    info.state = SuperblockState::Reserved;
    ++_reserved;
}

void
SuperblockMapping::fillAll(std::uint32_t sb, Lpn base)
{
    SuperblockInfo &info = _sbs[sb];
    if (info.state != SuperblockState::Free)
        panic("fillAll needs a free superblock");
    if (base + _pagesPerSb > _lpnCount)
        panic("fillAll LPN range out of bounds");
    auto it = std::find(_freeList.begin(), _freeList.end(), sb);
    if (it == _freeList.end())
        panic("free superblock missing from free list");
    _freeList.erase(it);

    Ppn p_base = static_cast<Ppn>(sb) * _pagesPerSb;
    for (std::uint32_t slot = 0; slot < _pagesPerSb; ++slot) {
        Lpn lpn = base + slot;
        invalidate(lpn);
        _l2p[lpn] = p_base + slot;
        _p2l[p_base + slot] = lpn;
        info.valid[slot] = true;
    }
    info.validCount = _pagesPerSb;
    info.writePtr = _pagesPerSb;
    _allocSeq += _pagesPerSb;
    info.lastWriteSeq = _allocSeq;
    info.state = SuperblockState::Full;
    _fullOrder.push_back(sb);
    _validPages += _pagesPerSb;
    _hostWrites += _pagesPerSb;
}

void
SuperblockMapping::invalidateAll(std::uint32_t sb)
{
    SuperblockInfo &info = _sbs[sb];
    Ppn base = static_cast<Ppn>(sb) * _pagesPerSb;
    for (std::uint32_t slot = 0; slot < _pagesPerSb; ++slot) {
        if (!info.valid[slot])
            continue;
        Lpn lpn = _p2l[base + slot];
        invalidate(lpn);
    }
}

const SuperblockInfo &
SuperblockMapping::info(std::uint32_t sb) const
{
    return _sbs[sb];
}

void
SuperblockMapping::audit(AuditReport &r) const
{
    // L2P -> P2L bijectivity.
    for (Lpn l = 0; l < _lpnCount; ++l) {
        Ppn p = _l2p[l];
        if (p == invalidPpn)
            continue;
        if (p >= _p2l.size()) {
            r.fail("L2P bijectivity: L2P[lpn %llu] = slot %llu out of "
                   "range (%zu slots)",
                   static_cast<unsigned long long>(l),
                   static_cast<unsigned long long>(p), _p2l.size());
            continue;
        }
        if (_p2l[p] != l) {
            r.fail("L2P bijectivity: L2P[lpn %llu] = slot %llu but "
                   "P2L[slot] = lpn %llu",
                   static_cast<unsigned long long>(l),
                   static_cast<unsigned long long>(p),
                   static_cast<unsigned long long>(_p2l[p]));
        }
    }
    for (Ppn p = 0; p < _p2l.size(); ++p) {
        Lpn l = _p2l[p];
        if (l == invalidLpn)
            continue;
        if (l >= _lpnCount || _l2p[l] != p) {
            r.fail("P2L bijectivity: P2L[slot %llu] = lpn %llu but "
                   "L2P[lpn] = slot %llu",
                   static_cast<unsigned long long>(p),
                   static_cast<unsigned long long>(l),
                   static_cast<unsigned long long>(
                       l < _lpnCount ? _l2p[l] : invalidPpn));
        }
    }

    // Per-superblock counters, state legality and global totals.
    std::uint64_t valid_total = 0;
    std::uint32_t dead = 0;
    std::uint32_t reserved = 0;
    std::vector<bool> on_free_list(_sbs.size(), false);
    for (std::uint32_t s : _freeList) {
        if (s >= _sbs.size()) {
            r.fail("free-list entry %u out of range", s);
            continue;
        }
        if (on_free_list[s])
            r.fail("superblock %u on the free list twice", s);
        on_free_list[s] = true;
    }
    for (std::uint32_t s = 0; s < _sbs.size(); ++s) {
        const SuperblockInfo &sb = _sbs[s];
        std::uint32_t count = 0;
        Ppn base = static_cast<Ppn>(s) * _pagesPerSb;
        for (std::uint32_t slot = 0; slot < _pagesPerSb; ++slot) {
            if (!sb.valid[slot])
                continue;
            ++count;
            if (slot >= sb.writePtr) {
                r.fail("superblock %u: slot %u valid beyond write "
                       "pointer %u",
                       s, slot, sb.writePtr);
            }
            if (_p2l[base + slot] == invalidLpn) {
                r.fail("superblock %u: slot %u valid but has no "
                       "reverse mapping",
                       s, slot);
            }
        }
        if (count != sb.validCount) {
            r.fail("superblock %u: validCount %u != %u valid bits", s,
                   sb.validCount, count);
        }
        valid_total += sb.validCount;
        if (sb.writePtr > _pagesPerSb) {
            r.fail("superblock %u: write pointer %u beyond capacity %u",
                   s, sb.writePtr, _pagesPerSb);
        }

        bool expect_free = sb.state == SuperblockState::Free;
        if (on_free_list[s] != expect_free) {
            r.fail("superblock %u: state %d %s the free list", s,
                   static_cast<int>(sb.state),
                   on_free_list[s] ? "but on" : "but missing from");
        }
        switch (sb.state) {
          case SuperblockState::Free:
            if (sb.validCount != 0 || sb.writePtr != 0) {
                r.fail("superblock %u: Free with %u valid pages, "
                       "write pointer %u",
                       s, sb.validCount, sb.writePtr);
            }
            break;
          case SuperblockState::Active:
            if (!_hasActive || _active != s) {
                r.fail("superblock %u: Active but the mapping's "
                       "active superblock is %u",
                       s, _hasActive ? _active : ~0u);
            }
            break;
          case SuperblockState::Full:
            break;
          case SuperblockState::Dead:
            ++dead;
            if (sb.validCount != 0)
                r.fail("superblock %u: Dead with %u valid pages", s,
                       sb.validCount);
            break;
          case SuperblockState::Reserved:
            ++reserved;
            if (sb.validCount != 0)
                r.fail("superblock %u: Reserved with %u valid pages",
                       s, sb.validCount);
            break;
        }
    }
    if (_hasActive &&
        (_active >= _sbs.size() ||
         _sbs[_active].state != SuperblockState::Active)) {
        r.fail("active superblock %u is not in the Active state",
               _active);
    }
    if (dead != _dead)
        r.fail("dead total %u != %u counted superblocks", _dead, dead);
    if (reserved != _reserved) {
        r.fail("reserved total %u != %u counted superblocks", _reserved,
               reserved);
    }
    if (valid_total != _validPages) {
        r.fail("valid-page total %llu != %llu summed over superblocks",
               static_cast<unsigned long long>(_validPages),
               static_cast<unsigned long long>(valid_total));
    }

    // Fill-order list: exactly the Full superblocks, each once.
    std::vector<std::uint32_t> order_seen(_sbs.size(), 0);
    for (std::uint32_t s : _fullOrder) {
        if (s >= _sbs.size()) {
            r.fail("fill-order entry %u out of range", s);
            continue;
        }
        ++order_seen[s];
    }
    for (std::uint32_t s = 0; s < _sbs.size(); ++s) {
        std::uint32_t expect =
            _sbs[s].state == SuperblockState::Full ? 1 : 0;
        if (order_seen[s] != expect) {
            r.fail("superblock %u: state %d but %u fill-order entries",
                   s, static_cast<int>(_sbs[s].state), order_seen[s]);
        }
    }
}

} // namespace dssd
