/**
 * @file
 * Write-buffer flush engine.
 *
 * Drains dirty pages from the WriteBuffer to flash in the background,
 * keeping a bounded number of write-backs in flight. Flushing starts
 * when the buffer crosses its high watermark and stops at the low one;
 * a flush that cannot allocate (free pool exhausted) holds its page
 * and retries until GC reclaims a block. The host-visible effect is
 * write-cache backpressure: when the buffer is full, host writes stall
 * on this engine's progress.
 *
 * The engine owns flush *policy and pacing* only. Address resolution
 * and the timed write-back route (DRAM -> system bus -> flash program)
 * are injected by the Ssd shell as callbacks, so this layer depends
 * only on the FTL state it drains — not on buses, channels, or
 * architecture strategies.
 */

#ifndef DSSD_FTL_FLUSH_HH
#define DSSD_FTL_FLUSH_HH

#include <cstdint>
#include <functional>

#include "ftl/mapping.hh"
#include "ftl/writebuffer.hh"
#include "sim/engine.hh"

namespace dssd
{

/** Background write-buffer drain with bounded in-flight write-backs. */
class FlushEngine
{
  public:
    using Callback = Engine::Callback;
    /** Architecture address filter applied to allocated targets. */
    using ResolveFn = std::function<PhysAddr(const PhysAddr &)>;
    /** Timed write-back of one page to @p target (DRAM -> system bus
     *  -> program); the callback fires when the program completes. */
    using WriteBackFn =
        std::function<void(const PhysAddr &target, Callback done)>;
    /** Allocation notice for the GC trigger (unit index). */
    using AllocNoteFn = std::function<void(std::uint32_t unit)>;

    FlushEngine(Engine &engine, PageMapping &mapping, WriteBuffer &buffer,
                unsigned in_flight, ResolveFn resolve,
                WriteBackFn write_back, AllocNoteFn note_allocation);

    /** Start draining if the high watermark tripped (idempotent). */
    void maybeStart();

    /** Pages written back to flash so far. */
    std::uint64_t flushedPages() const { return _flushedPages; }

    /** Write-backs currently in flight. */
    unsigned inFlight() const { return _inFlight; }

    /** Whether a drain round is active. */
    bool active() const { return _active; }

    /** Emit the buffer fill level as a trace counter sample. */
    void traceOccupancy();

  private:
    void pump();
    void flushOne(Lpn lpn, Callback done);

    Engine &_engine;
    PageMapping &_mapping;
    WriteBuffer &_buffer;
    unsigned _maxInFlight;
    ResolveFn _resolve;
    WriteBackFn _writeBack;
    AllocNoteFn _note;

    bool _active = false;
    unsigned _inFlight = 0;
    std::uint64_t _flushedPages = 0;
    int _tracePid = -1; ///< cached trace row (write-buffer counter)
};

} // namespace dssd

#endif // DSSD_FTL_FLUSH_HH
