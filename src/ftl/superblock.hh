/**
 * @file
 * Superblock-organized mapping (Sec 5, Fig 5).
 *
 * A superblock groups the same block id across every parallel unit
 * (channel/way/die/plane), so one superblock-granularity allocation
 * stripes pages across the whole array — smaller mapping tables and
 * cheap GC, at the cost of the whole group dying with its first bad
 * sub-block (the problem dynamic superblock management solves).
 *
 * Pure state, like PageMapping; the event-driven datapaths charge
 * time separately.
 */

#ifndef DSSD_FTL_SUPERBLOCK_HH
#define DSSD_FTL_SUPERBLOCK_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ftl/mapping.hh"
#include "nand/geometry.hh"

namespace dssd
{

/** Lifecycle of one superblock. */
enum class SuperblockState
{
    Free,     ///< erased, on the free list
    Active,   ///< currently taking writes
    Full,     ///< fully programmed
    Dead,     ///< retired (bad)
    Reserved, ///< provisioned as recycled blocks (RESERV scheme)
};

/** Per-superblock bookkeeping. */
struct SuperblockInfo
{
    SuperblockState state = SuperblockState::Free;
    std::uint32_t writePtr = 0;    ///< next stripe slot
    std::uint32_t validCount = 0;  ///< live pages
    std::uint32_t eraseCount = 0;  ///< P/E cycles
    std::vector<bool> valid;       ///< per stripe slot
    /// Allocation sequence number of the last write into this
    /// superblock; cost-benefit ages by allocSeq() - lastWriteSeq.
    std::uint64_t lastWriteSeq = 0;
};

/** Superblock-granularity address mapping. */
class SuperblockMapping
{
  public:
    /**
     * @param geom Flash geometry; the superblock count equals
     *        blocksPerPlane.
     * @param over_provision Fraction of capacity hidden from the host.
     * @param victim_policy Victim-selection policy name (see
     *        ftl/policy.hh); the default reproduces the historical
     *        greedy scan bit-identically.
     * @param victim_window Window size for "windowed" selection.
     */
    SuperblockMapping(const FlashGeometry &geom, double over_provision,
                      const std::string &victim_policy = "greedy",
                      std::uint32_t victim_window = 8);
    ~SuperblockMapping();

    const FlashGeometry &geometry() const { return _geom; }

    /** Parallel units striped by one superblock. */
    std::uint32_t unitCount() const { return _unitCount; }

    /** Pages one superblock holds. */
    std::uint32_t pagesPerSuperblock() const { return _pagesPerSb; }

    std::uint32_t superblockCount() const { return _geom.blocksPerPlane; }

    Lpn lpnCount() const { return _lpnCount; }

    /** Current physical location of @p lpn, if mapped. */
    std::optional<PhysAddr> translate(Lpn lpn) const;

    /**
     * Allocate the next stripe slot for @p lpn in the active
     * superblock (opening a new one as needed), invalidating any
     * previous copy.
     */
    PhysAddr allocate(Lpn lpn);

    /** Drop the mapping for @p lpn. */
    void invalidate(Lpn lpn);

    /** Superblock id and stripe slot of a physical address. */
    std::uint32_t superblockOf(const PhysAddr &a) const { return a.block; }
    std::uint32_t stripeSlotOf(const PhysAddr &a) const;

    /** Physical address of stripe slot @p slot of superblock @p sb. */
    PhysAddr slotAddr(std::uint32_t sb, std::uint32_t slot) const;

    /**
     * Pick the next GC victim through the configured VictimPolicy
     * (default "greedy": fewest valid pages among Full superblocks).
     */
    std::optional<std::uint32_t> pickVictim();

    /** Monotonic slot-allocation sequence number. */
    std::uint64_t allocSeq() const { return _allocSeq; }

    /**
     * Full superblocks in the order they filled (oldest first);
     * drives windowed-greedy selection. May transiently list ids
     * whose state has since left Full — consumers re-check state.
     */
    const std::deque<std::uint32_t> &fullOrder() const
    {
        return _fullOrder;
    }

    const VictimPolicy &victimPolicy() const { return *_victim; }

    /** Valid LPNs of superblock @p sb in stripe order. */
    std::vector<Lpn> validLpns(std::uint32_t sb) const;

    /** Valid LPNs of @p sb whose stripe slot lives on @p channel. */
    std::vector<Lpn> validLpnsOnChannel(std::uint32_t sb,
                                        std::uint32_t channel) const;

    /**
     * Erase @p sb and return it to the free list.
     * @pre no valid pages remain.
     */
    void eraseSuperblock(std::uint32_t sb);

    /** Retire @p sb (bad superblock); never reused. */
    void retireSuperblock(std::uint32_t sb);

    /**
     * Remove a free superblock from FTL visibility so its blocks can
     * pre-fill the RBTs (the RESERV scheme of Sec 5.3).
     */
    void reserveSuperblock(std::uint32_t sb);

    std::uint32_t reservedSuperblocks() const { return _reserved; }

    /**
     * Mark every slot of the free superblock @p sb valid, mapped to
     * LPNs base..base+pagesPerSuperblock-1 (invalidating any previous
     * copies). A bulk write used by wear-cycling drivers.
     */
    void fillAll(std::uint32_t sb, Lpn base);

    /** Invalidate every valid page of @p sb. */
    void invalidateAll(std::uint32_t sb);

    std::uint32_t freeSuperblocks() const
    {
        return static_cast<std::uint32_t>(_freeList.size());
    }

    std::uint32_t deadSuperblocks() const { return _dead; }

    const SuperblockInfo &info(std::uint32_t sb) const;

    std::uint64_t totalValidPages() const { return _validPages; }

    std::uint64_t hostWrites() const { return _hostWrites; }
    std::uint64_t erases() const { return _erases; }

    /**
     * Cross-check every internal invariant: L2P↔P2L bijectivity,
     * per-superblock valid bitmaps vs counters, state legality
     * (Free/Active/Full/Dead/Reserved) against the free list and the
     * dead/reserved totals. See sim/audit.hh.
     */
    void audit(AuditReport &report) const;

    /**
     * Fault-injection hook for auditor tests ONLY: overwrite the L2P
     * entry of @p lpn with @p ppn, bypassing all bookkeeping.
     */
    void debugCorruptL2p(Lpn lpn, Ppn ppn) { _l2p.at(lpn) = ppn; }

  private:
    void openActive();
    /** Drop @p sb from the fill-order list (erase/retire). */
    void fullOrderRemove(std::uint32_t sb);

    FlashGeometry _geom;
    std::uint32_t _unitCount;
    std::uint32_t _pagesPerSb;
    Lpn _lpnCount;
    std::vector<SuperblockInfo> _sbs;
    std::vector<Ppn> _l2p;   ///< lpn -> sb * pagesPerSb + slot
    std::vector<Lpn> _p2l;
    std::deque<std::uint32_t> _freeList;
    /// Full superblocks in fill-chronological order (see fullOrder()).
    std::deque<std::uint32_t> _fullOrder;
    std::unique_ptr<VictimPolicy> _victim;
    std::uint64_t _allocSeq = 0;
    std::uint32_t _active = 0;
    bool _hasActive = false;
    std::uint32_t _dead = 0;
    std::uint32_t _reserved = 0;
    std::uint64_t _validPages = 0;
    std::uint64_t _hostWrites = 0;
    std::uint64_t _erases = 0;
};

} // namespace dssd

#endif // DSSD_FTL_SUPERBLOCK_HH
