/**
 * @file
 * DRAM write-buffer cache model (logical state).
 *
 * A significant fraction of SSD DRAM serves as a write-back buffer
 * cache hiding flash latency (Sec 2.1). The model tracks which LPNs
 * are resident/dirty; the datapath charges DRAM-port and system-bus
 * time for hits and flushes. Modes force all-hit / all-miss behaviour
 * for the paper's "DRAM hit" and "DRAM miss" synthetic inputs.
 */

#ifndef DSSD_FTL_WRITEBUFFER_HH
#define DSSD_FTL_WRITEBUFFER_HH

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "ftl/mapping.hh"

namespace dssd
{

class StatRegistry;

/** Hit behaviour of the buffer cache. */
enum class BufferMode
{
    Real,       ///< actual residency decides hits
    AlwaysHit,  ///< every access is served by DRAM (paper: "DRAM hit")
    AlwaysMiss, ///< every access goes to flash (paper: "DRAM miss")
};

/** Write-buffer parameters. */
struct WriteBufferParams
{
    std::uint64_t capacityPages = 4096;
    BufferMode mode = BufferMode::Real;
    /// Flushing starts above this occupancy fraction...
    double flushHighWatermark = 0.8;
    /// ...and stops below this one.
    double flushLowWatermark = 0.5;
};

/** FIFO dirty-page write buffer. */
class WriteBuffer
{
  public:
    explicit WriteBuffer(const WriteBufferParams &params);

    /** Would a read of @p lpn be served from DRAM? */
    bool readHit(Lpn lpn) const;

    /**
     * Record a host write of @p lpn into the buffer.
     * @retval true if the page was already resident (overwrite hit).
     */
    bool insert(Lpn lpn);

    /** Whether flushing should start/continue. */
    bool flushNeeded() const;

    /** Whether flushing may stop. */
    bool flushSatisfied() const;

    /**
     * Remove and return up to @p count oldest dirty pages for
     * writeback to flash.
     */
    std::vector<Lpn> drainForFlush(std::size_t count);

    /** Drop a page (e.g., trimmed). */
    void evict(Lpn lpn);

    std::uint64_t occupancy() const { return _fifo.size(); }
    std::uint64_t capacity() const { return _params.capacityPages; }
    BufferMode mode() const { return _params.mode; }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    /** Record a read probe outcome (for hit-rate stats). */
    void recordProbe(bool hit);

    /** Register occupancy/capacity/hit stats under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /**
     * Cross-check the FIFO against the residency set: same size, no
     * duplicate FIFO entries, every queued LPN resident. See
     * sim/audit.hh.
     */
    void audit(AuditReport &report) const;

  private:
    WriteBufferParams _params;
    std::deque<Lpn> _fifo;
    std::unordered_set<Lpn> _resident;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace dssd

#endif // DSSD_FTL_WRITEBUFFER_HH
