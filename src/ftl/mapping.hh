/**
 * @file
 * Page-level address mapping and block bookkeeping.
 *
 * The FTL maps logical page numbers (LPNs) to physical pages and
 * tracks per-block validity for garbage collection. Allocation stripes
 * writes round-robin across parallel units (one unit per plane), which
 * is how the paper's SSD reaches channel x way x plane parallelism.
 *
 * This layer is pure state (no simulated time); the datapath in
 * src/core drives it and charges time to the right resources.
 */

#ifndef DSSD_FTL_MAPPING_HH
#define DSSD_FTL_MAPPING_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ftl/policy.hh"
#include "nand/geometry.hh"
#include "sim/rng.hh"

namespace dssd
{

class AuditReport;
class StatRegistry;

/** Logical page number. */
using Lpn = std::uint64_t;
/** Physical page number (flat index, see FlashGeometry::pageIndex). */
using Ppn = std::uint64_t;

constexpr Lpn invalidLpn = ~static_cast<Lpn>(0);
constexpr Ppn invalidPpn = ~static_cast<Ppn>(0);

/**
 * Per-block state. Page-validity bits live in a flat per-unit bitmap
 * (structure-of-arrays, see PageMapping::pageValid) rather than a
 * per-block vector, so the hot invalidate/allocate paths touch one
 * contiguous allocation per unit.
 */
struct BlockState
{
    std::uint32_t writePtr = 0;        ///< next free page index
    std::uint32_t validCount = 0;      ///< live pages
    std::uint32_t pending = 0;         ///< GC copies in flight to here
    std::uint32_t eraseCount = 0;      ///< P/E cycles
    bool isFree = true;                ///< on the free list
    bool isBad = false;                ///< retired
    /// Allocation sequence number of the last write into this block
    /// (host or GC); cost-benefit victim selection ages blocks by
    /// allocSeq() - lastWriteSeq.
    std::uint64_t lastWriteSeq = 0;
};

/** Parameters of the mapping layer. */
struct MappingParams
{
    FlashGeometry geom;
    /// Over-provisioning ratio (Table 1: 7%); the logical space is
    /// (1 - ratio) of physical capacity.
    double overProvision = 0.07;
    /// GC trigger: free blocks per unit at/below this starts GC.
    std::uint32_t gcFreeBlockThreshold = 2;
    /// GC stops once free blocks per unit recover to this.
    std::uint32_t gcFreeBlockTarget = 4;
    /// Static wear-leveling: open the least-erased free block instead
    /// of FIFO order.
    bool wearLeveling = false;
    /// Victim-selection policy (string-keyed; see ftl/policy.hh).
    std::string victimPolicy = "greedy";
    /// Host-write allocation policy.
    std::string allocPolicy = "rr";
    /// Windowed-greedy victim selection: window size in blocks.
    std::uint32_t victimWindow = 8;
};

/**
 * The mapping table plus free-list/validity bookkeeping.
 *
 * A "unit" is one plane (the smallest independently programmable
 * resource); units are addressed by flat index.
 */
class PageMapping
{
  public:
    explicit PageMapping(const MappingParams &params);
    ~PageMapping();

    const FlashGeometry &geometry() const { return _geom; }
    const MappingParams &params() const { return _params; }

    /** Number of logical pages exposed to the host. */
    Lpn lpnCount() const { return _lpnCount; }

    /** Number of parallel allocation units (planes). */
    std::uint32_t unitCount() const { return _unitCount; }

    /** Flat unit index of a physical address. */
    std::uint32_t unitOf(const PhysAddr &a) const;

    /** Address of block @p block in unit @p unit (page 0). */
    PhysAddr unitBlockAddr(std::uint32_t unit, std::uint32_t block) const;

    /** Current physical location of @p lpn, if mapped. */
    std::optional<Ppn> translate(Lpn lpn) const;

    /** LPN stored at @p ppn, if any. */
    std::optional<Lpn> reverseLookup(Ppn ppn) const;

    /**
     * Allocate a physical page for a (re)write of @p lpn, invalidating
     * any previous location. Stripes across units round-robin.
     * @return the new physical address.
     */
    PhysAddr allocate(Lpn lpn);

    /**
     * Allocate specifically within @p unit (used by GC relocation when
     * the policy wants a same-plane or chosen-unit destination).
     */
    PhysAddr allocateInUnit(Lpn lpn, std::uint32_t unit);

    /** Drop the mapping for @p lpn (trim). */
    void invalidate(Lpn lpn);

    /**
     * Move @p lpn to @p dst (GC relocation bookkeeping). @p dst must
     * have been returned by allocate*() for this LPN.
     */
    void commitRelocation(Lpn lpn, const PhysAddr &dst);

    /** Free blocks currently available in @p unit. */
    std::uint32_t freeBlockCount(std::uint32_t unit) const;

    /** Whether @p unit can currently take another page allocation. */
    bool canAllocate(std::uint32_t unit) const;

    /** Whether any unit can take another page allocation. */
    bool canAllocateAny() const;

    /**
     * Whether a *host* write may allocate now. Host writes keep one
     * free block per unit in reserve so in-flight GC relocations
     * always find a destination.
     */
    bool hostCanAllocate() const;

    /** Whether GC should run for @p unit (threshold crossed). */
    bool gcNeeded(std::uint32_t unit) const;

    /** Whether GC for @p unit may stop (target restored). */
    bool gcSatisfied(std::uint32_t unit) const;

    /**
     * Free-block pressure of @p unit: how many blocks below the GC
     * free-block target it currently sits (0 when at or above the
     * target). Array-level GC schedulers rank shards by their worst
     * unit's pressure (see core/array_gc.hh).
     */
    std::uint32_t freeBlockPressure(std::uint32_t unit) const;

    /**
     * Pick the next GC victim of @p unit through the configured
     * VictimPolicy (default "greedy": fewest valid pages among full
     * blocks, lowest block id on ties).
     */
    std::optional<std::uint32_t> pickVictim(std::uint32_t unit);

    /**
     * Whether @p block of @p unit is currently victim-eligible: fully
     * written, not free, not bad, and no GC copies pending into it.
     */
    bool victimEligible(std::uint32_t unit, std::uint32_t block) const;

    /** Victim-candidate index of @p unit (see ftl/policy.hh). */
    const VictimIndex &victimIndex(std::uint32_t unit) const
    {
        return _units[unit].index;
    }

    /** Whether a *host* write may allocate in @p unit right now
     *  (keeps the one-block GC reserve; see hostCanAllocate). */
    bool hostCanAllocateIn(std::uint32_t unit) const;

    /** Monotonic page-allocation sequence number (host + GC). */
    std::uint64_t allocSeq() const { return _allocSeq; }

    /** GC copies currently reserved into @p unit. */
    std::uint32_t gcPendingPages(std::uint32_t unit) const
    {
        return _units[unit].gcPending;
    }

    /**
     * Whether @p unit is busy with GC/copyback traffic: GC copies
     * pending into it, or the injected probe (a GC round active on
     * the unit, known only to core/gc) reports busy. Drives the
     * conflict-aware allocation policy.
     */
    bool unitGcBusy(std::uint32_t unit) const;

    /** Inject the upper-layer GC-activity probe (see unitGcBusy). */
    void setGcBusyProbe(std::function<bool(std::uint32_t)> probe)
    {
        _gcBusyProbe = std::move(probe);
    }

    const VictimPolicy &victimPolicy() const { return *_victim; }
    const AllocPolicy &allocPolicy() const { return *_alloc; }

    /**
     * Register policy-tagged counters (victim picks plus any
     * policy-specific stats) under "<prefix>.<policy name>". Callers
     * gate this on a non-default policy configuration so default runs
     * keep their historical --stats output byte-identical.
     */
    void registerPolicyStats(StatRegistry &reg,
                             const std::string &prefix) const;

    /** Valid LPNs inside block @p block of @p unit, in page order. */
    std::vector<Lpn> validLpns(std::uint32_t unit,
                               std::uint32_t block) const;

    /**
     * Erase @p block of @p unit and return it to the free list.
     * @pre the block has no valid pages.
     */
    void eraseBlock(std::uint32_t unit, std::uint32_t block);

    /** Retire a block (bad block management); never reused. */
    void retireBlock(std::uint32_t unit, std::uint32_t block);

    const BlockState &blockState(std::uint32_t unit,
                                 std::uint32_t block) const;

    /** Validity of page @p page of @p block in @p unit. */
    bool pageValid(std::uint32_t unit, std::uint32_t block,
                   std::uint32_t page) const
    {
        return _units[unit]
                   .valid[block * _geom.pagesPerBlock + page] != 0;
    }

    /** Total valid pages across the device. */
    std::uint64_t totalValidPages() const { return _validPages; }

    /** Host-visible utilization in [0, 1]. */
    double utilization() const;

    /**
     * Logically fill the device: write LPNs 0..count-1, then rewrite a
     * random @p invalid_fraction of them so GC has work to do. Mirrors
     * the paper's setup ("SSD is fully utilized and some random
     * fraction of the pages are invalidated").
     */
    void prefill(double fill_fraction, double invalid_fraction, Rng &rng);

    std::uint64_t hostWrites() const { return _hostWrites; }
    std::uint64_t gcRelocations() const { return _gcRelocations; }
    std::uint64_t erases() const { return _erases; }

    /** Write amplification factor so far. */
    double waf() const;

    /**
     * Cross-check every internal invariant: L2P↔P2L bijectivity,
     * per-block valid bitmaps vs counters, free-list consistency and
     * the global valid-page total. See sim/audit.hh.
     */
    void audit(AuditReport &report) const;

    /**
     * Fault-injection hook for auditor tests ONLY: overwrite the L2P
     * entry of @p lpn with @p ppn, bypassing all bookkeeping.
     */
    void debugCorruptL2p(Lpn lpn, Ppn ppn) { _l2p.at(lpn) = ppn; }

  private:
    struct Unit
    {
        std::vector<BlockState> blocks;
        /// Flat per-page validity bitmap, block-major (SoA layout).
        std::vector<std::uint8_t> valid;
        std::deque<std::uint32_t> freeList;
        VictimIndex index;
        /// Bucket each block currently sits in (-1 = not eligible).
        std::vector<std::int32_t> bucketOf;
        std::uint32_t activeBlock = 0;
        bool hasActive = false;
        /// GC copies reserved into this unit (pending commits).
        std::uint32_t gcPending = 0;
    };

    PhysAddr allocateRaw(Lpn lpn, std::uint32_t unit);
    void openActiveBlock(Unit &u, std::uint32_t unit);
    void invalidatePpn(Ppn ppn);

    /**
     * Reconcile @p block's victim-index membership after a mutation:
     * compares current eligibility/valid count against the recorded
     * bucket and inserts/moves/removes as needed.
     */
    void indexReconcile(std::uint32_t unit, std::uint32_t block);
    /** Drop @p block from the fill-order list (erase/retire). */
    void fillOrderRemove(Unit &u, std::uint32_t block);

    MappingParams _params;
    FlashGeometry _geom;
    Lpn _lpnCount;
    std::uint32_t _unitCount;
    std::vector<Ppn> _l2p;
    std::vector<Lpn> _p2l;
    std::vector<Unit> _units;
    std::unique_ptr<VictimPolicy> _victim;
    std::unique_ptr<AllocPolicy> _alloc;
    std::function<bool(std::uint32_t)> _gcBusyProbe;
    std::uint64_t _allocSeq = 0;
    std::uint64_t _victimPicks = 0;
    std::uint64_t _validPages = 0;
    std::uint64_t _hostWrites = 0;
    std::uint64_t _gcRelocations = 0;
    std::uint64_t _erases = 0;
};

} // namespace dssd

#endif // DSSD_FTL_MAPPING_HH
