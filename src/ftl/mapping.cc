#include "ftl/mapping.hh"

#include <algorithm>

#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

PageMapping::PageMapping(const MappingParams &params)
    : _params(params), _geom(params.geom)
{
    _geom.validate();
    if (params.overProvision < 0.0 || params.overProvision >= 1.0)
        fatal("over-provision ratio must be in [0, 1)");
    if (params.gcFreeBlockTarget < params.gcFreeBlockThreshold)
        fatal("GC target must be >= GC threshold");

    _unitCount = _geom.channels * _geom.ways * _geom.diesPerWay *
                 _geom.planesPerDie;
    _lpnCount = static_cast<Lpn>(
        static_cast<double>(_geom.totalPages()) *
        (1.0 - params.overProvision));

    _l2p.assign(_lpnCount, invalidPpn);
    _p2l.assign(_geom.totalPages(), invalidLpn);

    _units.resize(_unitCount);
    for (auto &u : _units) {
        u.blocks.resize(_geom.blocksPerPlane);
        u.valid.assign(static_cast<std::size_t>(_geom.blocksPerPlane) *
                           _geom.pagesPerBlock,
                       0);
        u.index.buckets.resize(_geom.pagesPerBlock + 1);
        u.bucketOf.assign(_geom.blocksPerPlane, -1);
        for (std::uint32_t b = 0; b < _geom.blocksPerPlane; ++b)
            u.freeList.push_back(b);
    }

    PolicyConfig pc;
    pc.victimWindow = params.victimWindow;
    _victim = makeVictimPolicy(params.victimPolicy, pc);
    _alloc = makeAllocPolicy(params.allocPolicy, pc);
}

PageMapping::~PageMapping() = default;

std::uint32_t
PageMapping::unitOf(const PhysAddr &a) const
{
    return ((a.channel * _geom.ways + a.way) * _geom.diesPerWay + a.die) *
               _geom.planesPerDie +
           a.plane;
}

PhysAddr
PageMapping::unitBlockAddr(std::uint32_t unit, std::uint32_t block) const
{
    PhysAddr a;
    a.plane = unit % _geom.planesPerDie;
    std::uint32_t rest = unit / _geom.planesPerDie;
    a.die = rest % _geom.diesPerWay;
    rest /= _geom.diesPerWay;
    a.way = rest % _geom.ways;
    a.channel = rest / _geom.ways;
    a.block = block;
    a.page = 0;
    return a;
}

std::optional<Ppn>
PageMapping::translate(Lpn lpn) const
{
    if (lpn >= _lpnCount)
        panic("LPN %llu out of range", (unsigned long long)lpn);
    Ppn p = _l2p[lpn];
    if (p == invalidPpn)
        return std::nullopt;
    return p;
}

std::optional<Lpn>
PageMapping::reverseLookup(Ppn ppn) const
{
    if (ppn >= _p2l.size())
        panic("PPN %llu out of range", (unsigned long long)ppn);
    Lpn l = _p2l[ppn];
    if (l == invalidLpn)
        return std::nullopt;
    return l;
}

bool
PageMapping::victimEligible(std::uint32_t unit,
                            std::uint32_t block) const
{
    const BlockState &b = _units[unit].blocks[block];
    return !b.isFree && !b.isBad &&
           b.writePtr == _geom.pagesPerBlock && b.pending == 0;
}

void
PageMapping::indexReconcile(std::uint32_t unit, std::uint32_t block)
{
    Unit &u = _units[unit];
    BlockState &b = u.blocks[block];
    bool should = victimEligible(unit, block);
    std::int32_t cur = u.bucketOf[block];
    if (should) {
        std::int32_t want = static_cast<std::int32_t>(b.validCount);
        if (cur == want)
            return;
        if (cur >= 0)
            u.index.buckets[cur].erase(block);
        u.index.buckets[want].insert(block);
        u.bucketOf[block] = want;
    } else if (cur >= 0) {
        u.index.buckets[cur].erase(block);
        u.bucketOf[block] = -1;
    }
}

void
PageMapping::fillOrderRemove(Unit &u, std::uint32_t block)
{
    auto it = std::find(u.index.fillOrder.begin(),
                        u.index.fillOrder.end(), block);
    if (it != u.index.fillOrder.end())
        u.index.fillOrder.erase(it);
}

void
PageMapping::openActiveBlock(Unit &u, std::uint32_t unit)
{
    if (u.freeList.empty())
        panic("unit %u has no free blocks to open", unit);
    auto pick = u.freeList.begin();
    if (_params.wearLeveling) {
        // Static wear-leveling: the least-erased free block goes next.
        for (auto it = u.freeList.begin(); it != u.freeList.end(); ++it) {
            if (u.blocks[*it].eraseCount <
                u.blocks[*pick].eraseCount) {
                pick = it;
            }
        }
    }
    u.activeBlock = *pick;
    u.freeList.erase(pick);
    u.hasActive = true;
    BlockState &b = u.blocks[u.activeBlock];
    b.isFree = false;
    b.writePtr = 0;
}

PhysAddr
PageMapping::allocateRaw(Lpn lpn, std::uint32_t unit)
{
    (void)lpn;
    Unit &u = _units[unit];
    if (!u.hasActive)
        openActiveBlock(u, unit);
    BlockState &b = u.blocks[u.activeBlock];
    PhysAddr a = unitBlockAddr(unit, u.activeBlock);
    a.page = b.writePtr++;
    b.lastWriteSeq = ++_allocSeq;
    if (b.writePtr == _geom.pagesPerBlock) {
        u.hasActive = false;
        u.index.fillOrder.push_back(u.activeBlock);
    }
    return a;
}

PhysAddr
PageMapping::allocate(Lpn lpn)
{
    if (lpn >= _lpnCount)
        panic("LPN %llu out of range", (unsigned long long)lpn);

    // The allocation policy stripes over units that still have room.
    // Host allocation never consumes a unit's last free block: that
    // block is reserved so the unit's own GC can always relocate a
    // full victim locally (the classic GC forward-progress invariant).
    auto unit_opt = _alloc->chooseUnit(*this);
    if (!unit_opt)
        panic("device full: no unit can allocate a page");
    std::uint32_t unit = *unit_opt;
    PhysAddr a = allocateRaw(lpn, unit);
    // Host write: retire the previous copy, then map the new one.
    invalidate(lpn);
    Ppn p = _geom.pageIndex(a);
    _l2p[lpn] = p;
    _p2l[p] = lpn;
    Unit &u = _units[unit];
    BlockState &b = u.blocks[a.block];
    u.valid[a.block * _geom.pagesPerBlock + a.page] = 1;
    ++b.validCount;
    ++_validPages;
    ++_hostWrites;
    indexReconcile(unit, a.block);
    return a;
}

PhysAddr
PageMapping::allocateInUnit(Lpn lpn, std::uint32_t unit)
{
    if (unit >= _unitCount)
        panic("unit %u out of range", unit);
    Unit &u = _units[unit];
    if (!u.hasActive && u.freeList.empty())
        panic("unit %u full during GC allocation", unit);
    (void)lpn;
    PhysAddr a = allocateRaw(lpn, unit);
    // GC reservation: the page is claimed but not yet valid; the copy
    // commits via commitRelocation() when the data lands. Until then
    // the block is pinned against victim selection and erase.
    ++u.blocks[a.block].pending;
    ++u.gcPending;
    indexReconcile(unit, a.block);
    return a;
}

void
PageMapping::invalidatePpn(Ppn ppn)
{
    Lpn l = _p2l[ppn];
    if (l == invalidLpn)
        return;
    PhysAddr a = _geom.pageAddr(ppn);
    std::uint32_t unit = unitOf(a);
    Unit &u = _units[unit];
    BlockState &b = u.blocks[a.block];
    std::uint8_t &bit =
        u.valid[a.block * _geom.pagesPerBlock + a.page];
    if (!bit)
        panic("invalidate of already-invalid page");
    bit = 0;
    --b.validCount;
    --_validPages;
    _p2l[ppn] = invalidLpn;
    indexReconcile(unit, a.block);
}

void
PageMapping::invalidate(Lpn lpn)
{
    if (lpn >= _lpnCount)
        panic("LPN %llu out of range", (unsigned long long)lpn);
    Ppn old = _l2p[lpn];
    if (old == invalidPpn)
        return;
    invalidatePpn(old);
    _l2p[lpn] = invalidPpn;
}

void
PageMapping::commitRelocation(Lpn lpn, const PhysAddr &dst)
{
    if (lpn >= _lpnCount)
        panic("LPN %llu out of range", (unsigned long long)lpn);
    // The source may have been overwritten by the host while the copy
    // was in flight; in that case the relocated copy is stale and the
    // destination page is simply left invalid (dead on arrival).
    Ppn dstPpn = _geom.pageIndex(dst);
    std::uint32_t unit = unitOf(dst);
    Unit &u = _units[unit];
    BlockState &b = u.blocks[dst.block];
    if (b.pending == 0)
        panic("relocation commit without a pending reservation");
    --b.pending;
    if (u.gcPending == 0)
        panic("unit GC-pending counter underflow");
    --u.gcPending;

    Ppn old = _l2p[lpn];
    if (old == invalidPpn) {
        ++_gcRelocations;
        indexReconcile(unit, dst.block);
        return;
    }
    invalidatePpn(old);
    _l2p[lpn] = dstPpn;
    _p2l[dstPpn] = lpn;
    u.valid[dst.block * _geom.pagesPerBlock + dst.page] = 1;
    ++b.validCount;
    ++_validPages;
    ++_gcRelocations;
    indexReconcile(unit, dst.block);
}

std::uint32_t
PageMapping::freeBlockCount(std::uint32_t unit) const
{
    return static_cast<std::uint32_t>(_units[unit].freeList.size());
}

bool
PageMapping::canAllocate(std::uint32_t unit) const
{
    const Unit &u = _units[unit];
    return u.hasActive || !u.freeList.empty();
}

bool
PageMapping::canAllocateAny() const
{
    for (std::uint32_t u = 0; u < _unitCount; ++u) {
        if (canAllocate(u))
            return true;
    }
    return false;
}

bool
PageMapping::hostCanAllocateIn(std::uint32_t unit) const
{
    const Unit &u = _units[unit];
    return u.hasActive || u.freeList.size() > 1;
}

bool
PageMapping::hostCanAllocate() const
{
    for (std::uint32_t u = 0; u < _unitCount; ++u) {
        if (hostCanAllocateIn(u))
            return true;
    }
    return false;
}

bool
PageMapping::unitGcBusy(std::uint32_t unit) const
{
    if (_units[unit].gcPending > 0)
        return true;
    return _gcBusyProbe && _gcBusyProbe(unit);
}

bool
PageMapping::gcNeeded(std::uint32_t unit) const
{
    return freeBlockCount(unit) <= _params.gcFreeBlockThreshold;
}

bool
PageMapping::gcSatisfied(std::uint32_t unit) const
{
    return freeBlockCount(unit) >= _params.gcFreeBlockTarget;
}

std::uint32_t
PageMapping::freeBlockPressure(std::uint32_t unit) const
{
    std::uint32_t free = freeBlockCount(unit);
    if (free >= _params.gcFreeBlockTarget)
        return 0;
    return _params.gcFreeBlockTarget - free;
}

std::optional<std::uint32_t>
PageMapping::pickVictim(std::uint32_t unit)
{
    auto victim = _victim->pickVictim(*this, unit);
    if (victim)
        ++_victimPicks;
    return victim;
}

std::vector<Lpn>
PageMapping::validLpns(std::uint32_t unit, std::uint32_t block) const
{
    const Unit &u = _units[unit];
    const BlockState &bs = u.blocks[block];
    std::vector<Lpn> out;
    out.reserve(bs.validCount);
    PhysAddr a = unitBlockAddr(unit, block);
    const std::uint8_t *bits =
        u.valid.data() +
        static_cast<std::size_t>(block) * _geom.pagesPerBlock;
    for (std::uint32_t p = 0; p < _geom.pagesPerBlock; ++p) {
        if (!bits[p])
            continue;
        a.page = p;
        Lpn l = _p2l[_geom.pageIndex(a)];
        if (l == invalidLpn)
            panic("valid page with no reverse mapping");
        out.push_back(l);
    }
    return out;
}

void
PageMapping::eraseBlock(std::uint32_t unit, std::uint32_t block)
{
    Unit &u = _units[unit];
    BlockState &bs = u.blocks[block];
    if (bs.validCount != 0)
        panic("erase of block with %u valid pages", bs.validCount);
    if (bs.pending != 0)
        panic("erase of block with %u pending GC copies", bs.pending);
    if (bs.isFree)
        panic("erase of free block");
    if (u.hasActive && block == u.activeBlock)
        panic("erase of the active block");
    std::uint8_t *bits =
        u.valid.data() +
        static_cast<std::size_t>(block) * _geom.pagesPerBlock;
    std::fill(bits, bits + _geom.pagesPerBlock, 0);
    bs.writePtr = 0;
    ++bs.eraseCount;
    ++_erases;
    if (!bs.isBad) {
        bs.isFree = true;
        u.freeList.push_back(block);
    }
    fillOrderRemove(u, block);
    indexReconcile(unit, block);
}

void
PageMapping::retireBlock(std::uint32_t unit, std::uint32_t block)
{
    Unit &u = _units[unit];
    BlockState &bs = u.blocks[block];
    bs.isBad = true;
    if (bs.isFree) {
        bs.isFree = false;
        auto it = std::find(u.freeList.begin(), u.freeList.end(), block);
        if (it != u.freeList.end())
            u.freeList.erase(it);
    }
    // A retired block can no longer take writes; runtime retirement
    // (fault escalation) may hit the unit's open block.
    if (u.hasActive && u.activeBlock == block)
        u.hasActive = false;
    fillOrderRemove(u, block);
    indexReconcile(unit, block);
}

const BlockState &
PageMapping::blockState(std::uint32_t unit, std::uint32_t block) const
{
    return _units[unit].blocks[block];
}

double
PageMapping::utilization() const
{
    return static_cast<double>(_validPages) /
           static_cast<double>(_lpnCount);
}

void
PageMapping::prefill(double fill_fraction, double invalid_fraction,
                     Rng &rng)
{
    if (fill_fraction < 0.0 || fill_fraction > 1.0 ||
        invalid_fraction < 0.0 || invalid_fraction > 1.0) {
        fatal("prefill fractions must be in [0, 1]");
    }
    Lpn fill = static_cast<Lpn>(static_cast<double>(_lpnCount) *
                                fill_fraction);
    for (Lpn l = 0; l < fill; ++l)
        allocate(l);
    // Random trim creates the "some random fraction of the pages are
    // invalidated" precondition without consuming more free blocks.
    for (Lpn l = 0; l < fill; ++l) {
        if (rng.chance(invalid_fraction))
            invalidate(l);
    }
    // Prefill is setup, not workload: exclude it from WAF accounting.
    _hostWrites = 0;
}

double
PageMapping::waf() const
{
    if (_hostWrites == 0)
        return 1.0;
    return static_cast<double>(_hostWrites + _gcRelocations) /
           static_cast<double>(_hostWrites);
}

void
PageMapping::registerPolicyStats(StatRegistry &reg,
                                 const std::string &prefix) const
{
    std::string vp = prefix + ".victim." + _victim->name();
    reg.addScalar(vp + ".picks", [this] {
        return static_cast<double>(_victimPicks);
    });
    _victim->registerStats(reg, vp);
    std::string ap = prefix + ".alloc." + _alloc->name();
    _alloc->registerStats(reg, ap);
}

void
PageMapping::audit(AuditReport &r) const
{
    // L2P -> P2L: every mapped LPN's physical page must point back.
    for (Lpn l = 0; l < _lpnCount; ++l) {
        Ppn p = _l2p[l];
        if (p == invalidPpn)
            continue;
        if (p >= _p2l.size()) {
            r.fail("L2P bijectivity: L2P[lpn %llu] = ppn %llu is out of "
                   "range (%zu physical pages)",
                   static_cast<unsigned long long>(l),
                   static_cast<unsigned long long>(p), _p2l.size());
            continue;
        }
        if (_p2l[p] != l) {
            r.fail("L2P bijectivity: L2P[lpn %llu] = ppn %llu but "
                   "P2L[ppn %llu] = lpn %llu",
                   static_cast<unsigned long long>(l),
                   static_cast<unsigned long long>(p),
                   static_cast<unsigned long long>(p),
                   static_cast<unsigned long long>(_p2l[p]));
        }
    }

    // P2L -> L2P: every reverse entry must be the current forward map.
    for (Ppn p = 0; p < _p2l.size(); ++p) {
        Lpn l = _p2l[p];
        if (l == invalidLpn)
            continue;
        if (l >= _lpnCount || _l2p[l] != p) {
            r.fail("P2L bijectivity: P2L[ppn %llu] = lpn %llu but "
                   "L2P[lpn] = ppn %llu",
                   static_cast<unsigned long long>(p),
                   static_cast<unsigned long long>(l),
                   static_cast<unsigned long long>(
                       l < _lpnCount ? _l2p[l] : invalidPpn));
        }
    }

    // Per-block bookkeeping and the global valid-page total.
    std::uint64_t valid_total = 0;
    for (std::uint32_t un = 0; un < _unitCount; ++un) {
        const Unit &u = _units[un];
        std::uint32_t free_flags = 0;
        std::uint32_t pending_total = 0;
        for (std::uint32_t b = 0; b < u.blocks.size(); ++b) {
            const BlockState &bs = u.blocks[b];
            std::uint32_t count = 0;
            PhysAddr a = unitBlockAddr(un, b);
            for (std::uint32_t pg = 0; pg < _geom.pagesPerBlock; ++pg) {
                if (!pageValid(un, b, pg))
                    continue;
                ++count;
                if (pg >= bs.writePtr) {
                    r.fail("unit %u block %u: page %u valid beyond "
                           "write pointer %u",
                           un, b, pg, bs.writePtr);
                }
                a.page = pg;
                if (_p2l[_geom.pageIndex(a)] == invalidLpn) {
                    r.fail("unit %u block %u: page %u valid but has "
                           "no reverse mapping",
                           un, b, pg);
                }
            }
            if (count != bs.validCount) {
                r.fail("unit %u block %u: validCount %u != %u valid "
                       "bits",
                       un, b, bs.validCount, count);
            }
            valid_total += bs.validCount;
            pending_total += bs.pending;
            if (bs.writePtr > _geom.pagesPerBlock) {
                r.fail("unit %u block %u: write pointer %u beyond "
                       "block size %u",
                       un, b, bs.writePtr, _geom.pagesPerBlock);
            }
            if (bs.isFree && bs.isBad)
                r.fail("unit %u block %u: both free and bad", un, b);
            if (bs.isFree && (bs.validCount != 0 || bs.writePtr != 0)) {
                r.fail("unit %u block %u: on the free list with %u "
                       "valid pages, write pointer %u",
                       un, b, bs.validCount, bs.writePtr);
            }
            if (bs.isFree)
                ++free_flags;

            // Victim-index consistency: eligibility <-> bucket
            // membership, bucket key = validCount.
            bool eligible = victimEligible(un, b);
            std::int32_t bucket = u.bucketOf[b];
            if (eligible != (bucket >= 0)) {
                r.fail("unit %u block %u: victim-eligible %d but "
                       "bucketOf %d",
                       un, b, eligible ? 1 : 0, bucket);
            } else if (eligible) {
                if (bucket !=
                    static_cast<std::int32_t>(bs.validCount)) {
                    r.fail("unit %u block %u: in bucket %d with "
                           "validCount %u",
                           un, b, bucket, bs.validCount);
                } else if (u.index.buckets[bucket].count(b) == 0) {
                    r.fail("unit %u block %u: bucketOf %d but absent "
                           "from the bucket set",
                           un, b, bucket);
                }
            }
        }
        if (free_flags != u.freeList.size()) {
            r.fail("unit %u: %zu free-list entries but %u blocks "
                   "flagged free",
                   un, u.freeList.size(), free_flags);
        }
        if (pending_total != u.gcPending) {
            r.fail("unit %u: gcPending %u != %u summed over blocks",
                   un, u.gcPending, pending_total);
        }
        std::size_t bucket_total = 0;
        for (const auto &bucket : u.index.buckets)
            bucket_total += bucket.size();
        std::size_t eligible_total = 0;
        for (std::uint32_t b = 0; b < u.blocks.size(); ++b)
            eligible_total += victimEligible(un, b) ? 1 : 0;
        if (bucket_total != eligible_total) {
            r.fail("unit %u: %zu bucketed blocks but %zu eligible",
                   un, bucket_total, eligible_total);
        }
        // fillOrder lists exactly the fully-written, non-free,
        // non-bad blocks, each once.
        std::vector<bool> in_fill(u.blocks.size(), false);
        for (std::uint32_t b : u.index.fillOrder) {
            if (b >= u.blocks.size()) {
                r.fail("unit %u: fill-order entry %u out of range",
                       un, b);
                continue;
            }
            if (in_fill[b])
                r.fail("unit %u: block %u in fill order twice", un, b);
            in_fill[b] = true;
        }
        for (std::uint32_t b = 0; b < u.blocks.size(); ++b) {
            const BlockState &bs = u.blocks[b];
            bool full = !bs.isFree && !bs.isBad &&
                        bs.writePtr == _geom.pagesPerBlock;
            if (full != in_fill[b]) {
                r.fail("unit %u block %u: full %d but fill-order "
                       "membership %d",
                       un, b, full ? 1 : 0, in_fill[b] ? 1 : 0);
            }
        }
        std::vector<bool> seen(u.blocks.size(), false);
        for (std::uint32_t b : u.freeList) {
            if (b >= u.blocks.size()) {
                r.fail("unit %u: free-list entry %u out of range", un, b);
                continue;
            }
            if (seen[b])
                r.fail("unit %u: block %u on the free list twice", un, b);
            seen[b] = true;
            if (!u.blocks[b].isFree)
                r.fail("unit %u: free-list block %u not flagged free",
                       un, b);
        }
        if (u.hasActive) {
            if (u.activeBlock >= u.blocks.size()) {
                r.fail("unit %u: active block %u out of range", un,
                       u.activeBlock);
            } else if (u.blocks[u.activeBlock].isFree ||
                       u.blocks[u.activeBlock].isBad) {
                r.fail("unit %u: active block %u is free or bad", un,
                       u.activeBlock);
            }
        }
    }
    if (valid_total != _validPages) {
        r.fail("valid-page total %llu != %llu summed over blocks",
               static_cast<unsigned long long>(_validPages),
               static_cast<unsigned long long>(valid_total));
    }
}

} // namespace dssd
