#include "ftl/policy.hh"

#include <algorithm>

#include "ftl/mapping.hh"
#include "ftl/superblock.hh"
#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

namespace
{

//
// Victim policies
//

/**
 * Greedy: fewest valid pages, lowest block id on ties. Reads the
 * incrementally maintained VictimIndex, reproducing the historical
 * O(blocks) scan bit-identically at O(buckets) cost.
 */
class GreedyVictim : public VictimPolicy
{
  public:
    const char *name() const override { return "greedy"; }

    std::optional<std::uint32_t>
    pickVictim(const PageMapping &map, std::uint32_t unit) override
    {
        const VictimIndex &ix = map.victimIndex(unit);
        std::uint32_t full = map.geometry().pagesPerBlock;
        // A fully-valid victim frees nothing; never pick bucket[full].
        for (std::uint32_t v = 0; v < full; ++v) {
            if (!ix.buckets[v].empty())
                return *ix.buckets[v].begin();
        }
        return std::nullopt;
    }

    std::optional<std::uint32_t>
    pickVictim(const SuperblockMapping &map) override
    {
        std::optional<std::uint32_t> best;
        std::uint32_t best_valid = map.pagesPerSuperblock();
        for (std::uint32_t sb = 0; sb < map.superblockCount(); ++sb) {
            const SuperblockInfo &i = map.info(sb);
            if (i.state != SuperblockState::Full)
                continue;
            if (i.validCount >= best_valid)
                continue;
            best = sb;
            best_valid = i.validCount;
        }
        if (best && best_valid == map.pagesPerSuperblock())
            return std::nullopt;
        return best;
    }
};

/**
 * Cost-benefit [Rosenblum & Ousterhout]: maximize
 * age * (1 - u) / (1 + u), u = validCount / pagesPerBlock, age =
 * allocation-sequence distance since the block last took a write.
 * Hot blocks get time to shed more validity before being collected;
 * cold, mostly-invalid blocks are taken early. Candidates are walked
 * in (validCount, block id) order with strict-greater replacement, so
 * ties resolve to the lowest valid count then lowest id —
 * deterministic across histories.
 */
class CostBenefitVictim : public VictimPolicy
{
  public:
    const char *name() const override { return "costbenefit"; }

    std::optional<std::uint32_t>
    pickVictim(const PageMapping &map, std::uint32_t unit) override
    {
        const VictimIndex &ix = map.victimIndex(unit);
        std::uint32_t full = map.geometry().pagesPerBlock;
        std::optional<std::uint32_t> best;
        double best_score = 0.0;
        for (std::uint32_t v = 0; v < full; ++v) {
            for (std::uint32_t b : ix.buckets[v]) {
                double score =
                    score_(map.allocSeq(),
                           map.blockState(unit, b).lastWriteSeq, v,
                           full);
                if (!best || score > best_score) {
                    best = b;
                    best_score = score;
                }
            }
        }
        return best;
    }

    std::optional<std::uint32_t>
    pickVictim(const SuperblockMapping &map) override
    {
        std::uint32_t full = map.pagesPerSuperblock();
        std::optional<std::uint32_t> best;
        double best_score = 0.0;
        for (std::uint32_t sb = 0; sb < map.superblockCount(); ++sb) {
            const SuperblockInfo &i = map.info(sb);
            if (i.state != SuperblockState::Full)
                continue;
            if (i.validCount >= full)
                continue;
            double score = score_(map.allocSeq(), i.lastWriteSeq,
                                  i.validCount, full);
            if (!best || score > best_score) {
                best = sb;
                best_score = score;
            }
        }
        return best;
    }

  private:
    static double
    score_(std::uint64_t alloc_seq, std::uint64_t last_write,
           std::uint32_t valid, std::uint32_t full)
    {
        double u = static_cast<double>(valid) /
                   static_cast<double>(full);
        double age = static_cast<double>(alloc_seq - last_write);
        return age * (1.0 - u) / (1.0 + u);
    }
};

/**
 * Windowed greedy: greedy restricted to the W oldest full blocks (by
 * fill order), a cheap age-aware approximation of cost-benefit. Ties
 * on valid count resolve to the earlier-filled block. If every block
 * in the window is fully valid (skewed streams park cold data at the
 * head of the fill order), the scan widens past the window to the
 * oldest block with any invalid page — a victim that frees nothing
 * would livelock GC at high utilization.
 */
class WindowedGreedyVictim : public VictimPolicy
{
  public:
    explicit WindowedGreedyVictim(std::uint32_t window)
        : _window(std::max<std::uint32_t>(1, window))
    {
    }

    const char *name() const override { return "windowed"; }

    std::optional<std::uint32_t>
    pickVictim(const PageMapping &map, std::uint32_t unit) override
    {
        const VictimIndex &ix = map.victimIndex(unit);
        std::uint32_t full = map.geometry().pagesPerBlock;
        std::optional<std::uint32_t> best;
        std::uint32_t best_valid = full;
        std::uint32_t considered = 0;
        for (std::uint32_t b : ix.fillOrder) {
            // fillOrder also lists full blocks still pinned by
            // pending GC copies; only currently-eligible ones count
            // against (or compete in) the window.
            if (!map.victimEligible(unit, b))
                continue;
            ++considered;
            std::uint32_t v = map.blockState(unit, b).validCount;
            // Past the window, only the livelock escape applies: the
            // oldest block that frees at least one page.
            if (considered > _window && best_valid < full)
                break;
            if (v < best_valid) {
                best = b;
                best_valid = v;
                if (considered > _window)
                    break;
            }
        }
        if (best && best_valid == full)
            return std::nullopt;
        return best;
    }

    std::optional<std::uint32_t>
    pickVictim(const SuperblockMapping &map) override
    {
        std::uint32_t full = map.pagesPerSuperblock();
        std::optional<std::uint32_t> best;
        std::uint32_t best_valid = full;
        std::uint32_t considered = 0;
        for (std::uint32_t sb : map.fullOrder()) {
            if (map.info(sb).state != SuperblockState::Full)
                continue;
            ++considered;
            std::uint32_t v = map.info(sb).validCount;
            if (considered > _window && best_valid < full)
                break;
            if (v < best_valid) {
                best = sb;
                best_valid = v;
                if (considered > _window)
                    break;
            }
        }
        if (best && best_valid == full)
            return std::nullopt;
        return best;
    }

  private:
    std::uint32_t _window;
};

//
// Allocation policies
//

/**
 * Round-robin striping over units that can take a host write. The
 * cursor advances on every probe — including skipped units — exactly
 * like the historical PageMapping::allocate loop, so the default
 * policy is bit-identical to the pre-refactor allocator.
 */
class RoundRobinAlloc : public AllocPolicy
{
  public:
    const char *name() const override { return "rr"; }

    std::optional<std::uint32_t>
    chooseUnit(const PageMapping &map) override
    {
        std::uint32_t n = map.unitCount();
        for (std::uint32_t tried = 0; tried < n; ++tried) {
            std::uint32_t unit = _cursor;
            _cursor = (_cursor + 1) % n;
            if (!map.hostCanAllocateIn(unit))
                continue;
            return unit;
        }
        return std::nullopt;
    }

  private:
    std::uint32_t _cursor = 0;
};

/**
 * Conflict-aware allocation (Venice-style): steer host writes away
 * from planes busy with GC/copyback traffic. First pass round-robins
 * over writable units skipping busy ones (active GC round or pending
 * GC copies into the unit); when every writable unit is busy the
 * first writable one is taken anyway, so forward progress matches
 * plain round-robin.
 */
class ConflictAwareAlloc : public AllocPolicy
{
  public:
    const char *name() const override { return "conflict"; }

    std::optional<std::uint32_t>
    chooseUnit(const PageMapping &map) override
    {
        std::uint32_t n = map.unitCount();
        std::optional<std::uint32_t> fallback;
        bool skipped_busy = false;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t unit = (_cursor + i) % n;
            if (!map.hostCanAllocateIn(unit))
                continue;
            if (map.unitGcBusy(unit)) {
                if (!fallback)
                    fallback = unit;
                skipped_busy = true;
                continue;
            }
            _cursor = (unit + 1) % n;
            if (skipped_busy)
                ++_steered;
            return unit;
        }
        if (fallback) {
            _cursor = (*fallback + 1) % n;
            ++_conflicted;
            return fallback;
        }
        return std::nullopt;
    }

    void
    registerStats(StatRegistry &reg,
                  const std::string &prefix) const override
    {
        reg.addScalar(prefix + ".steered", [this] {
            return static_cast<double>(_steered);
        });
        reg.addScalar(prefix + ".conflicted", [this] {
            return static_cast<double>(_conflicted);
        });
    }

  private:
    std::uint32_t _cursor = 0;
    /// Allocations steered around at least one busy unit.
    std::uint64_t _steered = 0;
    /// Allocations that had to land on a busy unit anyway.
    std::uint64_t _conflicted = 0;
};

//
// Factory registry. Every concrete policy above must appear here
// (lint rule R11 cross-checks class definitions against this table
// and the test fixtures).
//

struct VictimEntry
{
    const char *name;
    std::unique_ptr<VictimPolicy> (*make)(const PolicyConfig &);
};

struct AllocEntry
{
    const char *name;
    std::unique_ptr<AllocPolicy> (*make)(const PolicyConfig &);
};

const VictimEntry victimRegistry[] = {
    {"greedy",
     [](const PolicyConfig &) -> std::unique_ptr<VictimPolicy> {
         return std::make_unique<GreedyVictim>();
     }},
    {"costbenefit",
     [](const PolicyConfig &) -> std::unique_ptr<VictimPolicy> {
         return std::make_unique<CostBenefitVictim>();
     }},
    {"windowed",
     [](const PolicyConfig &cfg) -> std::unique_ptr<VictimPolicy> {
         return std::make_unique<WindowedGreedyVictim>(
             cfg.victimWindow);
     }},
};

const AllocEntry allocRegistry[] = {
    {"rr",
     [](const PolicyConfig &) -> std::unique_ptr<AllocPolicy> {
         return std::make_unique<RoundRobinAlloc>();
     }},
    {"conflict",
     [](const PolicyConfig &) -> std::unique_ptr<AllocPolicy> {
         return std::make_unique<ConflictAwareAlloc>();
     }},
};

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += " ";
        out += n;
    }
    return out;
}

} // namespace

std::unique_ptr<VictimPolicy>
makeVictimPolicy(const std::string &name, const PolicyConfig &cfg)
{
    for (const VictimEntry &e : victimRegistry) {
        if (name == e.name)
            return e.make(cfg);
    }
    fatal("unknown victim policy '%s' (registered: %s)", name.c_str(),
          joinNames(victimPolicyNames()).c_str());
}

std::unique_ptr<AllocPolicy>
makeAllocPolicy(const std::string &name, const PolicyConfig &cfg)
{
    for (const AllocEntry &e : allocRegistry) {
        if (name == e.name)
            return e.make(cfg);
    }
    fatal("unknown alloc policy '%s' (registered: %s)", name.c_str(),
          joinNames(allocPolicyNames()).c_str());
}

std::vector<std::string>
victimPolicyNames()
{
    std::vector<std::string> out;
    for (const VictimEntry &e : victimRegistry)
        out.push_back(e.name);
    return out;
}

std::vector<std::string>
allocPolicyNames()
{
    std::vector<std::string> out;
    for (const AllocEntry &e : allocRegistry)
        out.push_back(e.name);
    return out;
}

bool
isVictimPolicy(const std::string &name)
{
    for (const VictimEntry &e : victimRegistry) {
        if (name == e.name)
            return true;
    }
    return false;
}

bool
isAllocPolicy(const std::string &name)
{
    for (const AllocEntry &e : allocRegistry) {
        if (name == e.name)
            return true;
    }
    return false;
}

} // namespace dssd
