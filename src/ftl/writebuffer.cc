#include "ftl/writebuffer.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/registry.hh"

namespace dssd
{

WriteBuffer::WriteBuffer(const WriteBufferParams &params) : _params(params)
{
    if (params.capacityPages == 0)
        fatal("write buffer capacity must be > 0");
    if (params.flushLowWatermark > params.flushHighWatermark)
        fatal("flush low watermark above high watermark");
}

bool
WriteBuffer::readHit(Lpn lpn) const
{
    switch (_params.mode) {
      case BufferMode::AlwaysHit:
        return true;
      case BufferMode::AlwaysMiss:
        return false;
      case BufferMode::Real:
        return _resident.count(lpn) > 0;
    }
    return false;
}

bool
WriteBuffer::insert(Lpn lpn)
{
    if (_resident.count(lpn))
        return true;
    if (_fifo.size() >= _params.capacityPages) {
        // Caller should have flushed; drop the oldest to stay sane.
        Lpn victim = _fifo.front();
        _fifo.pop_front();
        _resident.erase(victim);
    }
    _fifo.push_back(lpn);
    _resident.insert(lpn);
    return false;
}

bool
WriteBuffer::flushNeeded() const
{
    return static_cast<double>(_fifo.size()) >
           _params.flushHighWatermark *
               static_cast<double>(_params.capacityPages);
}

bool
WriteBuffer::flushSatisfied() const
{
    return static_cast<double>(_fifo.size()) <=
           _params.flushLowWatermark *
               static_cast<double>(_params.capacityPages);
}

std::vector<Lpn>
WriteBuffer::drainForFlush(std::size_t count)
{
    std::vector<Lpn> out;
    out.reserve(std::min<std::size_t>(count, _fifo.size()));
    while (out.size() < count && !_fifo.empty()) {
        Lpn l = _fifo.front();
        _fifo.pop_front();
        _resident.erase(l);
        out.push_back(l);
    }
    return out;
}

void
WriteBuffer::evict(Lpn lpn)
{
    if (!_resident.count(lpn))
        return;
    _resident.erase(lpn);
    auto it = std::find(_fifo.begin(), _fifo.end(), lpn);
    if (it != _fifo.end())
        _fifo.erase(it);
}

void
WriteBuffer::recordProbe(bool hit)
{
    if (hit)
        ++_hits;
    else
        ++_misses;
}

void
WriteBuffer::audit(AuditReport &r) const
{
    if (_fifo.size() != _resident.size()) {
        r.fail("write buffer: FIFO holds %zu pages but %zu are "
               "resident",
               _fifo.size(), _resident.size());
    }
    if (_fifo.size() > _params.capacityPages) {
        r.fail("write buffer: %zu pages exceed capacity %llu",
               _fifo.size(),
               static_cast<unsigned long long>(_params.capacityPages));
    }
    std::unordered_set<Lpn> seen;
    seen.reserve(_fifo.size());
    for (Lpn l : _fifo) {
        if (!seen.insert(l).second) {
            r.fail("write buffer: lpn %llu queued twice",
                   static_cast<unsigned long long>(l));
        }
        if (!_resident.count(l)) {
            r.fail("write buffer: queued lpn %llu not in the "
                   "residency set",
                   static_cast<unsigned long long>(l));
        }
    }
}

void
WriteBuffer::registerStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.addScalar(prefix + ".occupancy", [this] {
        return static_cast<double>(occupancy());
    });
    reg.addScalar(prefix + ".capacity", [this] {
        return static_cast<double>(capacity());
    });
    reg.addScalar(prefix + ".hits", [this] {
        return static_cast<double>(hits());
    });
    reg.addScalar(prefix + ".misses", [this] {
        return static_cast<double>(misses());
    });
}

} // namespace dssd
