/**
 * @file
 * Host I/O request type shared by generators, the queue driver, and
 * the SSD front-end.
 */

#ifndef DSSD_WORKLOAD_REQUEST_HH
#define DSSD_WORKLOAD_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace dssd
{

/** One host I/O request (byte-addressed, page-aligned by the HIL). */
struct IoRequest
{
    enum class Kind { Read, Write };

    Kind kind = Kind::Write;
    std::uint64_t offset = 0;  ///< byte offset into the logical space
    std::uint64_t bytes = 0;   ///< request size in bytes
    /// Earliest issue time; 0 means "as soon as a queue slot frees"
    /// (closed-loop). Trace replays may carry absolute timestamps.
    Tick issueAt = 0;
    /// Submitting tenant (multi-tenant host front-end). Single-stream
    /// generators and legacy traces leave it at 0.
    std::uint32_t tenant = 0;

    bool isRead() const { return kind == Kind::Read; }
    bool isWrite() const { return kind == Kind::Write; }
};

} // namespace dssd

#endif // DSSD_WORKLOAD_REQUEST_HH
