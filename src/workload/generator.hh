/**
 * @file
 * Workload generators: synthetic patterns and named trace synthesizers.
 *
 * The paper evaluates with synthetic inputs (4 KB "low bandwidth" and
 * 32/128 KB "high bandwidth" sequential/random accesses at queue depth
 * 64) and with MSR-Cambridge-class enterprise traces (prn_0, src1_2,
 * usr_2, hm_1, ...). We do not ship the proprietary traces; instead,
 * TraceSynthesizer reproduces each named workload's published
 * first-order characteristics (read ratio, request-size mix,
 * sequentiality) deterministically. A plain-text loader replays real
 * traces when the user has them.
 */

#ifndef DSSD_WORKLOAD_GENERATOR_HH
#define DSSD_WORKLOAD_GENERATOR_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "workload/request.hh"

namespace dssd
{

/** Pull-based request source. */
class Generator
{
  public:
    virtual ~Generator() = default;

    /** Next request, or nullopt when the workload is exhausted. */
    virtual std::optional<IoRequest> next() = 0;

    virtual const std::string &name() const = 0;
};

/** Synthetic generator parameters. */
struct SyntheticParams
{
    /// Fraction of requests that are reads.
    double readRatio = 0.0;
    /// true: sequential address stream; false: uniform random.
    bool sequential = true;
    /// Fixed request size in bytes (4 KB = low BW, 32/128 KB = high).
    std::uint64_t requestBytes = 4 * kKiB;
    /// Logical footprint the offsets cover.
    std::uint64_t footprintBytes = 64 * kMiB;
    /// Number of requests to produce; 0 = unbounded.
    std::uint64_t count = 0;
    std::uint64_t seed = 1;
    /// Hot/cold skew (random streams only): hotFraction of the
    /// footprint receives hotAccessRatio of the accesses (e.g. 0.2 /
    /// 0.8 is the classic 80/20 mix). Either at 0 disables skew and
    /// keeps the uniform RNG stream bit-identical to older builds.
    double hotFraction = 0.0;
    double hotAccessRatio = 0.0;
};

/** Fixed-size sequential/random read/write generator. */
class SyntheticGenerator : public Generator
{
  public:
    explicit SyntheticGenerator(const SyntheticParams &params);

    std::optional<IoRequest> next() override;
    const std::string &name() const override { return _name; }

  private:
    SyntheticParams _params;
    std::string _name;
    Rng _rng;
    std::uint64_t _issued = 0;
    std::uint64_t _cursor = 0;
};

/** First-order characteristics of a named enterprise trace. */
struct TraceProfile
{
    std::string name;
    double readRatio;        ///< fraction of read requests
    double seqFraction;      ///< fraction of sequential accesses
    std::uint64_t readBytes; ///< typical read size
    std::uint64_t writeBytes;///< typical write size
    double largeIoFraction;  ///< fraction of 2-8x oversized requests
};

/** Names of the built-in trace profiles. */
std::vector<std::string> knownTraceNames();

/** Look up a built-in profile; fatal() if unknown. */
TraceProfile traceProfile(const std::string &name);

/** Read-intensive classification used by Fig 15(b). */
bool isReadIntensive(const TraceProfile &profile);

/** Deterministic synthesizer matching a TraceProfile. */
class TraceSynthesizer : public Generator
{
  public:
    /**
     * @param iops When non-zero, requests carry Poisson arrival
     *        timestamps at this average rate (open-loop replay, like
     *        a timestamped trace); zero means closed-loop (issue as
     *        fast as the queue allows).
     */
    TraceSynthesizer(const TraceProfile &profile,
                     std::uint64_t footprint_bytes, std::uint64_t count,
                     std::uint64_t seed = 1, double iops = 0.0);

    std::optional<IoRequest> next() override;
    const std::string &name() const override { return _profile.name; }
    const TraceProfile &profile() const { return _profile; }

  private:
    TraceProfile _profile;
    std::uint64_t _footprint;
    std::uint64_t _count;
    Rng _rng;
    double _iops;
    double _clock = 0.0; ///< arrival time accumulator, ns
    std::uint64_t _issued = 0;
    std::uint64_t _cursor = 0;
};

/**
 * Loads a plain-text trace: one request per line,
 * "<timestamp_us> <R|W> <offset_bytes> <size_bytes> [tenant_id]".
 * Lines starting with '#' are ignored. The fifth column is optional
 * and names the submitting tenant for multi-tenant replay; lines
 * without it default to tenant 0, so existing four-column traces load
 * byte-identically.
 *
 * The loader validates as it parses: zero-size requests, malformed or
 * negative tenant ids, and (when @p device_bytes is given) requests
 * extending beyond the device are fatal() with the offending line
 * number; out-of-order timestamps are tolerated — the trace is sorted
 * by issue time with a warning, since multi-initiator captures
 * commonly interleave slightly out of order.
 */
class TraceFileLoader : public Generator
{
  public:
    /** @param device_bytes Device capacity used to bound offsets;
     *         0 disables the bound check. */
    explicit TraceFileLoader(const std::string &path,
                             std::uint64_t device_bytes = 0);

    std::optional<IoRequest> next() override;
    const std::string &name() const override { return _name; }
    std::size_t size() const { return _requests.size(); }

  private:
    std::string _name;
    std::vector<IoRequest> _requests;
    std::size_t _next = 0;
};

} // namespace dssd

#endif // DSSD_WORKLOAD_GENERATOR_HH
