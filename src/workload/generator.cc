#include "workload/generator.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "sim/log.hh"

namespace dssd
{

//
// SyntheticGenerator
//

SyntheticGenerator::SyntheticGenerator(const SyntheticParams &params)
    : _params(params), _rng(params.seed)
{
    if (params.requestBytes == 0 || params.footprintBytes == 0)
        fatal("synthetic generator needs non-zero sizes");
    if (params.requestBytes > params.footprintBytes)
        fatal("request larger than footprint");
    if (params.hotFraction < 0.0 || params.hotFraction >= 1.0 ||
        params.hotAccessRatio < 0.0 || params.hotAccessRatio > 1.0)
        fatal("hot/cold skew fractions out of range");
    _name = strformat("%s-%s-%lluB",
                      params.readRatio >= 0.5 ? "read" : "write",
                      params.sequential ? "seq" : "rand",
                      static_cast<unsigned long long>(params.requestBytes));
    if (params.hotFraction > 0.0 && params.hotAccessRatio > 0.0)
        _name += strformat("-hot%.0f/%.0f", params.hotAccessRatio * 100,
                           params.hotFraction * 100);
}

std::optional<IoRequest>
SyntheticGenerator::next()
{
    if (_params.count != 0 && _issued >= _params.count)
        return std::nullopt;
    ++_issued;

    IoRequest r;
    r.kind = _rng.chance(_params.readRatio) ? IoRequest::Kind::Read
                                            : IoRequest::Kind::Write;
    std::uint64_t slots = _params.footprintBytes / _params.requestBytes;
    if (_params.sequential) {
        r.offset = (_cursor % slots) * _params.requestBytes;
        ++_cursor;
    } else if (_params.hotFraction > 0.0 &&
               _params.hotAccessRatio > 0.0 && slots > 1) {
        // Hot/cold split: the first hotFraction of the footprint takes
        // hotAccessRatio of the accesses. The extra draw only happens
        // when skew is enabled, so the default uniform stream is
        // bit-identical to builds without this feature.
        std::uint64_t hot_slots = std::clamp<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(slots) * _params.hotFraction),
            1, slots - 1);
        if (_rng.chance(_params.hotAccessRatio)) {
            r.offset =
                _rng.uniformInt(0, hot_slots - 1) * _params.requestBytes;
        } else {
            r.offset = (hot_slots +
                        _rng.uniformInt(0, slots - hot_slots - 1)) *
                       _params.requestBytes;
        }
    } else {
        r.offset = _rng.uniformInt(0, slots - 1) * _params.requestBytes;
    }
    r.bytes = _params.requestBytes;
    return r;
}

//
// Trace profiles
//
// First-order characteristics of the MSR-Cambridge-class enterprise
// volumes the paper replays (read ratio / sequentiality / sizes match
// the published workload characterizations; see DESIGN.md for the
// substitution rationale).
//

namespace
{

const TraceProfile traceProfiles[] = {
    // name     readRatio seqFrac readB        writeB       largeIo
    {"prn_0",   0.11,     0.25,   16 * kKiB,   8 * kKiB,    0.20},
    {"prn_1",   0.75,     0.35,   16 * kKiB,   8 * kKiB,    0.10},
    {"src1_2",  0.25,     0.55,   32 * kKiB,   64 * kKiB,   0.30},
    {"src2_0",  0.12,     0.30,   8 * kKiB,    8 * kKiB,    0.10},
    {"usr_0",   0.60,     0.40,   32 * kKiB,   8 * kKiB,    0.15},
    {"usr_1",   0.91,     0.50,   32 * kKiB,   16 * kKiB,   0.15},
    {"usr_2",   0.81,     0.45,   32 * kKiB,   16 * kKiB,   0.15},
    {"hm_0",    0.36,     0.25,   8 * kKiB,    8 * kKiB,    0.10},
    {"hm_1",    0.95,     0.40,   16 * kKiB,   8 * kKiB,    0.05},
    {"proj_0",  0.12,     0.45,   16 * kKiB,   32 * kKiB,   0.25},
    {"proj_3",  0.95,     0.60,   32 * kKiB,   8 * kKiB,    0.10},
    {"web_0",   0.70,     0.40,   16 * kKiB,   8 * kKiB,    0.10},
    {"mds_0",   0.12,     0.25,   16 * kKiB,   8 * kKiB,    0.10},
    {"rsrch_0", 0.09,     0.20,   8 * kKiB,    8 * kKiB,    0.05},
    {"stg_0",   0.15,     0.25,   16 * kKiB,   8 * kKiB,    0.10},
    {"ts_0",    0.18,     0.25,   8 * kKiB,    8 * kKiB,    0.05},
    {"wdev_0",  0.20,     0.25,   8 * kKiB,    8 * kKiB,    0.05},
    {"prxy_0",  0.03,     0.30,   8 * kKiB,    4 * kKiB,    0.05},
};

} // namespace

std::vector<std::string>
knownTraceNames()
{
    std::vector<std::string> out;
    for (const auto &p : traceProfiles)
        out.push_back(p.name);
    return out;
}

TraceProfile
traceProfile(const std::string &name)
{
    for (const auto &p : traceProfiles) {
        if (p.name == name)
            return p;
    }
    fatal("unknown trace profile '%s'", name.c_str());
}

bool
isReadIntensive(const TraceProfile &profile)
{
    return profile.readRatio >= 0.6;
}

//
// TraceSynthesizer
//

TraceSynthesizer::TraceSynthesizer(const TraceProfile &profile,
                                   std::uint64_t footprint_bytes,
                                   std::uint64_t count, std::uint64_t seed,
                                   double iops)
    : _profile(profile), _footprint(footprint_bytes), _count(count),
      _rng(seed), _iops(iops)
{
    if (footprint_bytes < 1 * kMiB)
        fatal("trace footprint too small");
    if (iops < 0.0)
        fatal("negative arrival rate");
}

std::optional<IoRequest>
TraceSynthesizer::next()
{
    if (_count != 0 && _issued >= _count)
        return std::nullopt;
    ++_issued;

    IoRequest r;
    if (_iops > 0.0) {
        _clock += _rng.exponential(1e9 / _iops);
        r.issueAt = static_cast<Tick>(_clock);
    }
    r.kind = _rng.chance(_profile.readRatio) ? IoRequest::Kind::Read
                                             : IoRequest::Kind::Write;
    std::uint64_t base =
        r.isRead() ? _profile.readBytes : _profile.writeBytes;
    // Size mix: mostly the typical size, a tail of 2-8x oversized
    // requests (enterprise traces are strongly bimodal).
    if (_rng.chance(_profile.largeIoFraction))
        base <<= _rng.uniformInt(1, 3);
    r.bytes = std::min(base, _footprint / 2);

    std::uint64_t align = 4 * kKiB;
    std::uint64_t slots = _footprint / align;
    // Aligned slots the request spans (round up: a partial slot still
    // occupies it). Clamp oversized requests to the footprint before
    // computing placement bounds — with the raw arithmetic a request
    // spanning >= slots underflowed the modulo/uniformInt bound.
    std::uint64_t req_slots = (r.bytes + align - 1) / align;
    if (req_slots >= slots) {
        req_slots = slots;
        r.bytes = slots * align;
    }
    // Last legal start slot, inclusive: a request starting there ends
    // exactly at the footprint boundary.
    std::uint64_t max_start = slots - req_slots;
    if (_rng.chance(_profile.seqFraction)) {
        r.offset = (_cursor % (max_start + 1)) * align;
        _cursor += req_slots;
    } else {
        r.offset = _rng.uniformInt(0, max_start) * align;
    }
    return r;
}

//
// TraceFileLoader
//

TraceFileLoader::TraceFileLoader(const std::string &path,
                                 std::uint64_t device_bytes)
    : _name(path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    std::string line;
    std::size_t lineno = 0;
    bool sorted = true;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        double ts_us;
        std::string op;
        std::uint64_t offset, size;
        if (!(ss >> ts_us >> op >> offset >> size)) {
            fatal("trace %s:%zu: malformed line", path.c_str(), lineno);
        }
        IoRequest r;
        if (op == "R" || op == "r")
            r.kind = IoRequest::Kind::Read;
        else if (op == "W" || op == "w")
            r.kind = IoRequest::Kind::Write;
        else
            fatal("trace %s:%zu: bad op '%s'", path.c_str(), lineno,
                  op.c_str());
        if (ts_us < 0.0)
            fatal("trace %s:%zu: negative timestamp", path.c_str(),
                  lineno);
        if (size == 0)
            fatal("trace %s:%zu: zero-size request", path.c_str(),
                  lineno);
        if (device_bytes != 0 &&
            (offset >= device_bytes || size > device_bytes - offset)) {
            fatal("trace %s:%zu: request [%llu, %llu) extends beyond "
                  "the %llu-byte device",
                  path.c_str(), lineno,
                  static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(offset + size),
                  static_cast<unsigned long long>(device_bytes));
        }
        r.offset = offset;
        r.bytes = size;
        r.issueAt = usToTicks(ts_us);
        // Optional fifth column: the submitting tenant. Absent means
        // tenant 0 (legacy four-column traces parse identically).
        std::string tenant_tok;
        if (ss >> tenant_tok) {
            if (tenant_tok.empty() || tenant_tok[0] == '-' ||
                tenant_tok.find_first_not_of("0123456789") !=
                    std::string::npos) {
                fatal("trace %s:%zu: bad tenant id '%s' (expected a "
                      "non-negative integer)",
                      path.c_str(), lineno, tenant_tok.c_str());
            }
            char *endp = nullptr;
            unsigned long long t =
                std::strtoull(tenant_tok.c_str(), &endp, 10);
            if (t > std::numeric_limits<std::uint32_t>::max()) {
                fatal("trace %s:%zu: tenant id %llu out of range",
                      path.c_str(), lineno, t);
            }
            r.tenant = static_cast<std::uint32_t>(t);
            std::string extra;
            if (ss >> extra) {
                fatal("trace %s:%zu: trailing field '%s' after tenant "
                      "id",
                      path.c_str(), lineno, extra.c_str());
            }
        }
        if (!_requests.empty() && r.issueAt < _requests.back().issueAt)
            sorted = false;
        _requests.push_back(r);
    }
    if (!sorted) {
        warn("trace %s: timestamps out of order; sorting by issue time",
             path.c_str());
        // Stable sort keeps the file order of same-timestamp requests.
        std::stable_sort(_requests.begin(), _requests.end(),
                         [](const IoRequest &a, const IoRequest &b) {
                             return a.issueAt < b.issueAt;
                         });
    }
}

std::optional<IoRequest>
TraceFileLoader::next()
{
    if (_next >= _requests.size())
        return std::nullopt;
    return _requests[_next++];
}

} // namespace dssd
