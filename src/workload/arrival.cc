#include "workload/arrival.hh"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "sim/log.hh"

namespace dssd
{

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Closed:
        return "closed";
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Pareto:
        return "pareto";
    }
    return "?";
}

namespace
{

/** Split @p s on @p sep into non-empty fields. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

/** Parse a rate like "80000" or "80k"; nullopt on junk. */
std::optional<double>
parseRate(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || v <= 0.0)
        return std::nullopt;
    if (*end == 'k' || *end == 'K') {
        v *= 1000.0;
        ++end;
    }
    if (*end != '\0')
        return std::nullopt;
    return v;
}

std::optional<double>
parseNum(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return std::nullopt;
    return v;
}

} // namespace

std::optional<ArrivalParams>
parseArrivalSpec(const std::string &spec)
{
    ArrivalParams p;
    std::vector<std::string> clauses = split(spec, ',');
    if (clauses.empty())
        return std::nullopt;

    // First clause: the distribution.
    std::vector<std::string> head = split(clauses[0], ':');
    if (head[0] == "closed") {
        if (head.size() != 1)
            return std::nullopt;
        p.kind = ArrivalKind::Closed;
    } else if (head[0] == "poisson" || head[0] == "pareto") {
        p.kind = head[0] == "poisson" ? ArrivalKind::Poisson
                                      : ArrivalKind::Pareto;
        if (head.size() < 2)
            return std::nullopt;
        auto rate = parseRate(head[1]);
        if (!rate)
            return std::nullopt;
        p.iops = *rate;
        if (p.kind == ArrivalKind::Pareto && head.size() >= 3) {
            auto alpha = parseNum(head[2]);
            if (!alpha || *alpha <= 1.0)
                return std::nullopt;
            p.paretoAlpha = *alpha;
        } else if (p.kind == ArrivalKind::Poisson && head.size() > 2) {
            return std::nullopt;
        }
        if (head.size() > 3)
            return std::nullopt;
    } else {
        return std::nullopt;
    }

    // Modifier clauses.
    for (std::size_t i = 1; i < clauses.size(); ++i) {
        std::vector<std::string> f = split(clauses[i], ':');
        if (f[0] == "diurnal") {
            if (p.kind == ArrivalKind::Closed || f.size() < 2 ||
                f.size() > 3)
                return std::nullopt;
            auto amp = parseNum(f[1]);
            if (!amp || *amp < 0.0 || *amp >= 1.0)
                return std::nullopt;
            p.diurnalAmp = *amp;
            if (f.size() == 3) {
                auto period = parseNum(f[2]);
                if (!period || *period <= 0.0)
                    return std::nullopt;
                p.diurnalPeriod = msToTicks(*period);
            }
        } else if (f[0] == "burst") {
            if (p.kind == ArrivalKind::Closed || f.size() < 2 ||
                f.size() > 4)
                return std::nullopt;
            auto factor = parseNum(f[1]);
            if (!factor || *factor < 1.0)
                return std::nullopt;
            p.burstFactor = *factor;
            if (f.size() >= 3) {
                auto on = parseNum(f[2]);
                if (!on || *on <= 0.0)
                    return std::nullopt;
                p.burstOn = msToTicks(*on);
            }
            if (f.size() == 4) {
                auto off = parseNum(f[3]);
                if (!off || *off <= 0.0)
                    return std::nullopt;
                p.burstOff = msToTicks(*off);
            }
        } else {
            return std::nullopt;
        }
    }
    return p;
}

//
// ArrivalProcess
//

ArrivalProcess::ArrivalProcess(const ArrivalParams &params,
                               std::uint64_t seed)
    : _params(params), _rng(seed)
{
    if (params.kind != ArrivalKind::Closed && params.iops <= 0.0)
        fatal("open-loop arrivals need a positive rate");
    if (params.kind == ArrivalKind::Pareto && params.paretoAlpha <= 1.0)
        fatal("pareto arrivals need alpha > 1 (got %g)",
              params.paretoAlpha);
    if (params.diurnalAmp < 0.0 || params.diurnalAmp >= 1.0)
        fatal("diurnal amplitude must be in [0, 1)");
    if (params.burstFactor < 1.0)
        fatal("burst factor must be >= 1");
}

double
ArrivalProcess::rateFactorAt(double t) const
{
    double f = 1.0;
    if (_params.diurnalAmp > 0.0) {
        double period = static_cast<double>(_params.diurnalPeriod);
        f *= 1.0 + _params.diurnalAmp *
                       std::sin(2.0 * M_PI * t / period);
    }
    if (_params.burstFactor > 1.0) {
        double cycle =
            static_cast<double>(_params.burstOn + _params.burstOff);
        double phase = std::fmod(t, cycle);
        if (phase < static_cast<double>(_params.burstOn))
            f *= _params.burstFactor;
    }
    return f;
}

Tick
ArrivalProcess::next()
{
    // A normalized (mean 1) inter-arrival draw, scaled by the mean
    // period and the instantaneous rate factor at the current clock.
    double unit;
    if (_params.kind == ArrivalKind::Pareto) {
        // Bounded-below Pareto with mean 1: xm = (alpha-1)/alpha,
        // sampled by inverse CDF xm / U^(1/alpha).
        double alpha = _params.paretoAlpha;
        double xm = (alpha - 1.0) / alpha;
        double u = _rng.uniformReal();
        if (u <= 0.0)
            u = 1e-12; // uniformReal is [0,1); guard the open end
        unit = xm / std::pow(u, 1.0 / alpha);
    } else {
        unit = _rng.exponential(1.0);
    }
    double mean_ns = 1e9 / _params.iops;
    _clock += unit * mean_ns / rateFactorAt(_clock);
    return static_cast<Tick>(_clock);
}

//
// OpenLoopGenerator
//

OpenLoopGenerator::OpenLoopGenerator(std::unique_ptr<Generator> inner,
                                     const ArrivalParams &params,
                                     std::uint64_t seed)
    : _inner(std::move(inner)), _arrivals(params, seed)
{
    if (!_inner)
        fatal("open-loop generator needs an inner generator");
    if (params.kind == ArrivalKind::Closed)
        fatal("open-loop generator needs an open-loop arrival kind");
    _name = strformat("%s-%s", arrivalKindName(params.kind),
                      _inner->name().c_str());
}

std::optional<IoRequest>
OpenLoopGenerator::next()
{
    auto req = _inner->next();
    if (!req)
        return std::nullopt;
    req->issueAt = _arrivals.next();
    return req;
}

} // namespace dssd
