/**
 * @file
 * Open-loop arrival processes for fleet-style workloads.
 *
 * The paper evaluates everything through one closed-loop queue at
 * fixed depth 64: a new request is issued the instant a slot frees, so
 * offered load can never exceed service capacity and overload is
 * invisible. Fleet traffic is the opposite — millions of independent
 * clients submit on their own schedule regardless of device state.
 * An ArrivalProcess models that: it stamps a request stream with
 * inter-arrival times drawn from a Poisson or heavy-tailed (bounded
 * Pareto) process, optionally modulated by a diurnal rate swing and
 * an on/off burst profile. The multi-tenant NVMe host (hil/nvme_host)
 * enqueues each request at its arrival time without holding a queue
 * slot for it, so a backlog — and the latency it costs — actually
 * builds when offered load passes capacity.
 *
 * Determinism: every draw comes from a dedicated seeded Rng and the
 * modulation factors are pure functions of the arrival clock, so a
 * given (params, seed) always produces the same timestamp sequence.
 */

#ifndef DSSD_WORKLOAD_ARRIVAL_HH
#define DSSD_WORKLOAD_ARRIVAL_HH

#include <memory>
#include <optional>
#include <string>

#include "sim/rng.hh"
#include "workload/generator.hh"

namespace dssd
{

/** Inter-arrival distribution of an open-loop stream. */
enum class ArrivalKind
{
    Closed,  ///< no timestamps: issue when a queue slot frees
    Poisson, ///< exponential inter-arrivals (memoryless clients)
    Pareto,  ///< bounded-Pareto inter-arrivals (heavy-tailed bursts)
};

/** Short name used in CLI flags and bench tables. */
const char *arrivalKindName(ArrivalKind kind);

/** Open-loop arrival parameters. */
struct ArrivalParams
{
    ArrivalKind kind = ArrivalKind::Closed;
    /// Mean arrival rate in requests per second (Poisson/Pareto).
    double iops = 0.0;
    /// Pareto tail index; must be > 1 so the mean exists. Lower alpha
    /// means heavier tails (more extreme arrival clumps).
    double paretoAlpha = 1.5;
    /// Diurnal modulation: the instantaneous rate is scaled by
    /// 1 + amp * sin(2*pi*t / period). 0 disables it.
    double diurnalAmp = 0.0;
    Tick diurnalPeriod = 10 * tickMs;
    /// Burst modulation: during the first burstOn ticks of every
    /// (burstOn + burstOff) cycle the rate is multiplied by
    /// burstFactor. 1 disables it.
    double burstFactor = 1.0;
    Tick burstOn = 1 * tickMs;
    Tick burstOff = 4 * tickMs;
};

/**
 * Parse an arrival spec string:
 *   "closed"
 *   "poisson:IOPS"
 *   "pareto:IOPS[:ALPHA]"
 * optionally followed by comma-separated modifiers
 *   "diurnal:AMP[:PERIOD_MS]"
 *   "burst:FACTOR[:ON_MS[:OFF_MS]]"
 * e.g. "poisson:80000,burst:8:1:4". IOPS accepts a "k" suffix
 * (thousands). Returns nullopt on malformed input.
 */
std::optional<ArrivalParams> parseArrivalSpec(const std::string &spec);

/** Deterministic arrival-timestamp source (see file comment). */
class ArrivalProcess
{
  public:
    /** @param seed Dedicated stream seed; keep it decoupled from the
     *         request-content seed so arrival draws don't perturb
     *         offsets or sizes. */
    ArrivalProcess(const ArrivalParams &params, std::uint64_t seed);

    /** Advance the clock by one inter-arrival and return the new
     *  absolute arrival tick (non-decreasing). */
    Tick next();

    /** Instantaneous rate multiplier at @p t (diurnal x burst). */
    double rateFactorAt(double t) const;

    const ArrivalParams &params() const { return _params; }

  private:
    ArrivalParams _params;
    Rng _rng;
    double _clock = 0.0; ///< arrival time accumulator, ns
};

/**
 * Wraps any Generator and stamps its requests with open-loop arrival
 * timestamps. The inner generator keeps producing kind/offset/size
 * exactly as before (same draws, same sequence); only issueAt changes.
 */
class OpenLoopGenerator : public Generator
{
  public:
    OpenLoopGenerator(std::unique_ptr<Generator> inner,
                      const ArrivalParams &params, std::uint64_t seed);

    std::optional<IoRequest> next() override;
    const std::string &name() const override { return _name; }

  private:
    std::unique_ptr<Generator> _inner;
    ArrivalProcess _arrivals;
    std::string _name;
};

} // namespace dssd

#endif // DSSD_WORKLOAD_ARRIVAL_HH
