#include "reliability/endurance.hh"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "sim/log.hh"

namespace dssd
{

const char *
schemeName(SuperblockScheme s)
{
    switch (s) {
      case SuperblockScheme::Baseline:
        return "BASELINE";
      case SuperblockScheme::Recycled:
        return "RECYCLED";
      case SuperblockScheme::Reserv:
        return "RESERV";
      case SuperblockScheme::Was:
        return "WAS";
    }
    return "?";
}

double
EnduranceResult::dataUntilFirstBad() const
{
    if (curve.empty())
        return totalDataWritten;
    return curve.front().dataWrittenBytes;
}

double
EnduranceResult::dataUntilBadFraction(double frac,
                                      std::uint32_t total) const
{
    double need = frac * static_cast<double>(total);
    for (const auto &p : curve) {
        if (static_cast<double>(p.badSuperblocks) >= need)
            return p.dataWrittenBytes;
    }
    return totalDataWritten;
}

EnduranceSim::EnduranceSim(const EnduranceParams &params) : _params(params)
{
    if (params.channels == 0 || params.superblocks == 0)
        fatal("endurance sim needs channels and superblocks");
    if (params.reservedFraction < 0.0 || params.reservedFraction >= 1.0)
        fatal("reserved fraction out of range");
}

EnduranceResult
EnduranceSim::run()
{
    const EnduranceParams &p = _params;
    Rng rng(p.seed);
    EnduranceResult res;

    bool recycling = p.scheme == SuperblockScheme::Recycled ||
                     p.scheme == SuperblockScheme::Reserv;

    // Draw per-channel block endurance limits.
    std::vector<std::vector<std::uint32_t>> limits(p.channels);
    for (auto &v : limits) {
        v.resize(p.superblocks);
        for (auto &l : v)
            l = p.wear.sampleLimit(rng);
    }
    if (p.scheme == SuperblockScheme::Was) {
        // WAS groups blocks of similar measured endurance: sort each
        // channel so superblock i holds comparably worn blocks.
        for (auto &v : limits)
            std::sort(v.begin(), v.end());
    }

    // Reserve blocks for the RESERV scheme: the last `reserved`
    // superblock slots per channel pre-fill the RBT and are invisible
    // to the FTL.
    std::uint32_t reserved = 0;
    if (p.scheme == SuperblockScheme::Reserv) {
        reserved = static_cast<std::uint32_t>(
            p.reservedFraction * static_cast<double>(p.superblocks));
    }
    std::uint32_t visible = p.superblocks - reserved;

    std::vector<std::deque<SubBlock>> rbt(p.channels);
    if (reserved > 0) {
        for (unsigned ch = 0; ch < p.channels; ++ch) {
            for (std::uint32_t b = visible; b < p.superblocks; ++b) {
                SubBlock s;
                s.origId = b;
                s.limit = limits[ch][b];
                rbt[ch].push_back(s);
            }
        }
    }

    std::vector<Superblock> sbs(visible);
    for (std::uint32_t i = 0; i < visible; ++i) {
        sbs[i].subs.resize(p.channels);
        for (unsigned ch = 0; ch < p.channels; ++ch) {
            sbs[i].subs[ch].origId = i;
            sbs[i].subs[ch].limit = limits[ch][i];
        }
    }

    std::vector<std::size_t> srtActive(p.channels, 0);
    std::uint64_t remapEventsCh0 = 0;
    const double sb_bytes = static_cast<double>(p.channels) *
                            p.pagesPerBlock *
                            static_cast<double>(p.pageBytes);
    const std::uint32_t stop_bad = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(p.stopBadFraction *
                                      static_cast<double>(visible)));

    if (p.scheme == SuperblockScheme::Was) {
        // WAS [40]: similar-endurance grouping (the sort above) plus
        // wear-aware scheduling — writes are steered to the superblock
        // with the most remaining endurance, so deaths are maximally
        // postponed. Model it exactly: always cycle the alive
        // superblock with the largest remaining life.
        using Entry = std::pair<std::uint32_t, std::uint32_t>;
        std::priority_queue<Entry> pq;
        for (std::uint32_t i = 0; i < visible; ++i) {
            std::uint32_t rem =
                std::numeric_limits<std::uint32_t>::max();
            for (const SubBlock &s : sbs[i].subs)
                rem = std::min(rem, s.limit);
            pq.push({rem, i});
        }
        while (!pq.empty()) {
            auto [rem, i] = pq.top();
            pq.pop();
            res.totalDataWritten += sb_bytes;
            if (rem <= 1) {
                sbs[i].alive = false;
                ++res.badSuperblocks;
                res.curve.push_back(
                    {res.totalDataWritten, res.badSuperblocks});
                if (res.badSuperblocks >= stop_bad)
                    break;
            } else {
                pq.push({rem - 1, i});
            }
        }
        return res;
    }

    std::uint32_t alive = visible;
    bool done = false;
    while (!done && alive > 0) {
        for (std::uint32_t i = 0; i < visible && !done; ++i) {
            Superblock &sb = sbs[i];
            if (!sb.alive)
                continue;

            // One full program/erase cycle of this superblock.
            res.totalDataWritten += sb_bytes;
            bool kill = false;
            for (unsigned ch = 0; ch < p.channels; ++ch) {
                SubBlock &sub = sb.subs[ch];
                ++sub.pe;
                if (sub.pe < sub.limit)
                    continue;
                // Uncorrectable error detected on this sub-block.
                if (!recycling) {
                    kill = true;
                    break;
                }
                // Try to repair with a recycled block from this
                // channel's RBT (skipping any that are themselves
                // worn out).
                SubBlock repl;
                bool found = false;
                while (!rbt[ch].empty()) {
                    repl = rbt[ch].front();
                    rbt[ch].pop_front();
                    if (repl.pe < repl.limit) {
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    kill = true;
                    break;
                }
                if (!sub.remapped) {
                    // A fresh remapping needs a free SRT entry.
                    if (p.srtCapacityPerChannel != 0 &&
                        srtActive[ch] >= p.srtCapacityPerChannel) {
                        ++res.srtRejections;
                        rbt[ch].push_front(repl);
                        kill = true;
                        break;
                    }
                    ++srtActive[ch];
                    if (ch == 0) {
                        res.srtHighWater =
                            std::max(res.srtHighWater, srtActive[0]);
                    }
                }
                // Splice the recycled block in; FTL keeps using the
                // original block id (SRT redirects).
                bool was_remapped = sub.remapped;
                std::uint32_t orig = sub.origId;
                sub = repl;
                sub.origId = orig;
                sub.remapped = true;
                (void)was_remapped;
                ++res.remapEvents;
                if (ch == 0) {
                    ++remapEventsCh0;
                    res.srtActivity.push_back(
                        {remapEventsCh0, srtActive[0]});
                }
            }

            if (kill) {
                sb.alive = false;
                --alive;
                ++res.badSuperblocks;
                res.curve.push_back(
                    {res.totalDataWritten, res.badSuperblocks});
                // Salvage still-good sub-blocks into the RBT and free
                // any SRT entries this superblock held.
                for (unsigned ch = 0; ch < p.channels; ++ch) {
                    SubBlock &sub = sb.subs[ch];
                    if (sub.remapped && srtActive[ch] > 0)
                        --srtActive[ch];
                    if (recycling && sub.pe < sub.limit)
                        rbt[ch].push_back(sub);
                }
                if (res.badSuperblocks >= stop_bad)
                    done = true;
            }
        }
    }
    return res;
}

} // namespace dssd
