/**
 * @file
 * Endurance fast-path simulator for dynamic superblock management.
 *
 * Reproduces the Sec 6.4 methodology: a continuous stream of large
 * write I/O cycles the superblocks; per-block Gaussian P/E limits
 * decide when a sub-block goes uncorrectable. Four schemes:
 *
 *  - Baseline: a static superblock dies with its first bad sub-block.
 *  - Recycled: good sub-blocks of dead superblocks enter the RBT;
 *    later failures are repaired by remapping through the SRT
 *    (hardware, invisible to the FTL).
 *  - Reserv: like Recycled but the RBT starts pre-filled with a
 *    reserved fraction (7%) of the blocks, delaying the first death.
 *  - Was: the software upper-bound comparison [40] — the FTL groups
 *    blocks of similar endurance into superblocks.
 *
 * This simulator is logical (no event engine): lifetime experiments
 * need millions of erase cycles and only care about wear state.
 */

#ifndef DSSD_RELIABILITY_ENDURANCE_HH
#define DSSD_RELIABILITY_ENDURANCE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "reliability/wear.hh"
#include "sim/types.hh"

namespace dssd
{

/** Superblock-management scheme under test. */
enum class SuperblockScheme
{
    Baseline,
    Recycled,
    Reserv,
    Was,
};

const char *schemeName(SuperblockScheme s);

/** Endurance-simulation parameters. */
struct EnduranceParams
{
    /// Sub-blocks per superblock, one per channel (Fig 5).
    unsigned channels = 8;
    /// Superblocks (= block ids per channel).
    std::uint32_t superblocks = 2048;
    std::uint32_t pagesPerBlock = 32;
    std::uint64_t pageBytes = 16 * kKiB;
    WearModel wear;
    SuperblockScheme scheme = SuperblockScheme::Baseline;
    /// Reserv: fraction of superblocks provisioned as recycled blocks.
    double reservedFraction = 0.07;
    /// SRT capacity per channel; 0 = unbounded.
    std::size_t srtCapacityPerChannel = 0;
    /// Stop once this fraction of (visible) superblocks is bad.
    double stopBadFraction = 0.5;
    std::uint64_t seed = 42;
};

/** One (data-written, bad-superblock-count) step of the Fig 14 curve. */
struct EnduranceCurvePoint
{
    double dataWrittenBytes;
    std::uint32_t badSuperblocks;
};

/** One (remap-events, active-SRT-entries) step of the Fig 16(b) curve. */
struct SrtActivityPoint
{
    std::uint64_t remapEvents;
    std::size_t activeEntries;
};

/** Results of one endurance run. */
struct EnduranceResult
{
    std::vector<EnduranceCurvePoint> curve;
    std::vector<SrtActivityPoint> srtActivity; ///< channel 0
    double totalDataWritten = 0.0;
    std::uint32_t badSuperblocks = 0;
    std::uint64_t remapEvents = 0;
    std::size_t srtHighWater = 0;       ///< max active entries, ch 0
    std::uint64_t srtRejections = 0;    ///< remaps refused: SRT full

    /** Data written when the first superblock died. */
    double dataUntilFirstBad() const;

    /** Data written when @p frac of superblocks had died. */
    double dataUntilBadFraction(double frac, std::uint32_t total) const;
};

/** The endurance simulator. */
class EnduranceSim
{
  public:
    explicit EnduranceSim(const EnduranceParams &params);

    /** Run to the stop condition and return the curves. */
    EnduranceResult run();

    const EnduranceParams &params() const { return _params; }

  private:
    struct SubBlock
    {
        std::uint32_t origId;   ///< FTL-visible block id
        std::uint32_t pe = 0;
        std::uint32_t limit = 0;
        bool remapped = false;  ///< holds an SRT entry
    };

    struct Superblock
    {
        std::vector<SubBlock> subs; ///< one per channel
        bool alive = true;
    };

    EnduranceParams _params;
};

} // namespace dssd

#endif // DSSD_RELIABILITY_ENDURANCE_HH
