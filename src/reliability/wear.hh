/**
 * @file
 * Block-level wear (P/E endurance) model.
 *
 * Following WAS [40] and the paper's Sec 6.4, each block's P/E-cycle
 * limit is drawn from a Gaussian (Table 1: E = 5578, sigma = 826.9)
 * capturing process variation; a block becomes uncorrectable once its
 * erase count passes its limit (the page with the highest RBER inside
 * the block triggers the failure, footnote 9).
 */

#ifndef DSSD_RELIABILITY_WEAR_HH
#define DSSD_RELIABILITY_WEAR_HH

#include <algorithm>
#include <cstdint>

#include "sim/rng.hh"

namespace dssd
{

/** P/E-limit distribution parameters. */
struct WearModel
{
    double peMean = 5578.0;
    double peSigma = 826.9;

    /** Draw one block's P/E limit (truncated at >= 1). */
    std::uint32_t
    sampleLimit(Rng &rng) const
    {
        double v = rng.gaussian(peMean, peSigma);
        if (v < 1.0)
            v = 1.0;
        return static_cast<std::uint32_t>(v);
    }
};

} // namespace dssd

#endif // DSSD_RELIABILITY_WEAR_HH
