/**
 * @file
 * Abstract flash-to-flash interconnect interface.
 *
 * The GC/copyback datapath asks an Interconnect to move a page between
 * two flash controllers. The five architecture configurations of
 * Table 2 differ exactly in which implementation is plugged in:
 *
 *  - Baseline/BW: no flash-to-flash path (pages bounce through the
 *    system bus and DRAM; handled by the GC engine itself).
 *  - dSSD: controller-to-controller transfer over the shared system bus.
 *  - dSSD_b: a dedicated, single shared bus between controllers.
 *  - dSSD_f: the fNoC (see src/noc).
 */

#ifndef DSSD_BUS_INTERCONNECT_HH
#define DSSD_BUS_INTERCONNECT_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace dssd
{

/** Moves bytes between two flash controllers identified by index. */
class Interconnect
{
  public:
    using Callback = std::function<void()>;

    virtual ~Interconnect() = default;

    /**
     * Transfer @p bytes from controller @p src to controller @p dst;
     * invoke @p done when the last byte arrives.
     */
    virtual void send(unsigned src, unsigned dst, std::uint64_t bytes,
                      int tag, Callback done) = 0;

    /** Aggregate busy ticks of the interconnect's channels. */
    virtual Tick totalBusyTicks() const = 0;

    /** Total bytes delivered. */
    virtual std::uint64_t bytesDelivered() const = 0;
};

} // namespace dssd

#endif // DSSD_BUS_INTERCONNECT_HH
