/**
 * @file
 * Abstract flash-to-flash interconnect interface.
 *
 * The GC/copyback datapath asks an Interconnect to move a page between
 * two flash controllers. The five architecture configurations of
 * Table 2 differ exactly in which implementation is plugged in:
 *
 *  - Baseline/BW: no flash-to-flash path (pages bounce through the
 *    system bus and DRAM; handled by the GC engine itself).
 *  - dSSD: controller-to-controller transfer over the shared system bus.
 *  - dSSD_b: a dedicated, single shared bus between controllers.
 *  - dSSD_f: the fNoC (see src/noc).
 */

#ifndef DSSD_BUS_INTERCONNECT_HH
#define DSSD_BUS_INTERCONNECT_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace dssd
{

/**
 * Dynamic kind of a concrete Interconnect, so borrowers can query the
 * implementation they are talking to instead of caching a sibling
 * downcast pointer next to the owning unique_ptr (the old Ssd kept a
 * raw NocNetwork* view that could dangle and had to be null-checked in
 * two places). asNoc() in noc/network.hh is the checked accessor.
 */
enum class InterconnectKind
{
    SystemBus,    ///< shared system bus (dSSD)
    DedicatedBus, ///< dedicated flash-controller bus (dSSD_b)
    Noc,          ///< the fNoC (dSSD_f)
};

/** Moves bytes between two flash controllers identified by index. */
class Interconnect
{
  public:
    using Callback = std::function<void()>;

    virtual ~Interconnect() = default;

    /** Which implementation this is (checked-downcast support). */
    virtual InterconnectKind kind() const = 0;

    /**
     * Transfer @p bytes from controller @p src to controller @p dst;
     * invoke @p done when the last byte arrives.
     */
    virtual void send(unsigned src, unsigned dst, std::uint64_t bytes,
                      int tag, Callback done) = 0;

    /** Aggregate busy ticks of the interconnect's channels. */
    virtual Tick totalBusyTicks() const = 0;

    /** Total bytes delivered. */
    virtual std::uint64_t bytesDelivered() const = 0;
};

} // namespace dssd

#endif // DSSD_BUS_INTERCONNECT_HH
