/**
 * @file
 * The SSD-internal system bus and the DRAM port.
 *
 * Per the paper, "system bus" is the interconnect inside the SSD
 * controller linking the flash controllers, cores, DRAM, and host
 * interface (AXI-style). We model it as a FIFO-arbitrated serialized
 * channel at 8 GB/s (Table 1), matching the aggregate flash-channel
 * bandwidth. The DRAM port is a second 8 GB/s channel; buffered writes
 * and buffer-cache hits consume DRAM bandwidth, and conventional GC
 * consumes both (flash -> bus -> DRAM -> bus -> flash).
 */

#ifndef DSSD_BUS_SYSTEM_BUS_HH
#define DSSD_BUS_SYSTEM_BUS_HH

#include <memory>

#include "bus/interconnect.hh"
#include "sim/resource.hh"

namespace dssd
{

/** Shared system bus with per-traffic-class accounting. */
class SystemBus
{
  public:
    SystemBus(Engine &engine, BytesPerTick bandwidth);

    /** The underlying serialized channel. */
    BandwidthResource &channel() { return _channel; }
    const BandwidthResource &channel() const { return _channel; }

    /** Attach a windowed utilization recorder (e.g., 1 ms windows). */
    void attachRecorder(UtilizationRecorder *rec)
    {
        _channel.attachRecorder(rec);
    }

    /** Utilization of the bus by @p tag over [from, to). */
    double utilization(int tag, Tick from, Tick to) const;

    /** Register the channel's transfer/byte stats under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const
    {
        _channel.registerStats(reg, prefix);
    }

  private:
    BandwidthResource _channel;
};

/** DRAM port used for the write buffer and buffer-cache hits. */
class Dram
{
  public:
    Dram(Engine &engine, BytesPerTick bandwidth);

    BandwidthResource &port() { return _port; }
    const BandwidthResource &port() const { return _port; }

    /** Register the port's transfer/byte stats under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const
    {
        _port.registerStats(reg, prefix);
    }

  private:
    BandwidthResource _port;
};

/**
 * dSSD interconnect variant: controller-to-controller transfers ride
 * the shared system bus (a single bus transaction per page instead of
 * the baseline's two), still contending with I/O.
 */
class SystemBusInterconnect : public Interconnect
{
  public:
    explicit SystemBusInterconnect(SystemBus &bus) : _bus(bus) {}

    InterconnectKind kind() const override
    {
        return InterconnectKind::SystemBus;
    }

    void send(unsigned src, unsigned dst, std::uint64_t bytes, int tag,
              Callback done) override;

    Tick totalBusyTicks() const override;
    std::uint64_t bytesDelivered() const override { return _bytes; }

  private:
    SystemBus &_bus;
    std::uint64_t _bytes = 0;
};

/**
 * dSSD_b interconnect variant: one dedicated bus shared by all flash
 * controllers. Fixed, partitioned bandwidth; all flash-to-flash
 * traffic serializes over it.
 */
class DedicatedBusInterconnect : public Interconnect
{
  public:
    DedicatedBusInterconnect(Engine &engine, BytesPerTick bandwidth);

    InterconnectKind kind() const override
    {
        return InterconnectKind::DedicatedBus;
    }

    void send(unsigned src, unsigned dst, std::uint64_t bytes, int tag,
              Callback done) override;

    Tick totalBusyTicks() const override;
    std::uint64_t bytesDelivered() const override { return _bytes; }

    BandwidthResource &channel() { return _channel; }

  private:
    BandwidthResource _channel;
    std::uint64_t _bytes = 0;
};

} // namespace dssd

#endif // DSSD_BUS_SYSTEM_BUS_HH
