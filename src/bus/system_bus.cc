#include "bus/system_bus.hh"

#include <utility>

namespace dssd
{

SystemBus::SystemBus(Engine &engine, BytesPerTick bandwidth)
    : _channel(engine, "system-bus", bandwidth)
{
}

double
SystemBus::utilization(int tag, Tick from, Tick to) const
{
    if (to <= from)
        return 0.0;
    // Without a recorder, fall back to cumulative accounting.
    return static_cast<double>(_channel.busyTicks(tag)) /
           static_cast<double>(to - from);
}

Dram::Dram(Engine &engine, BytesPerTick bandwidth)
    : _port(engine, "dram-port", bandwidth)
{
}

void
SystemBusInterconnect::send(unsigned, unsigned, std::uint64_t bytes,
                            int tag, Callback done)
{
    _bytes += bytes;
    _bus.channel().transfer(bytes, tag, std::move(done));
}

Tick
SystemBusInterconnect::totalBusyTicks() const
{
    return _bus.channel().totalBusyTicks();
}

DedicatedBusInterconnect::DedicatedBusInterconnect(Engine &engine,
                                                   BytesPerTick bandwidth)
    : _channel(engine, "dedicated-bus", bandwidth)
{
}

void
DedicatedBusInterconnect::send(unsigned, unsigned, std::uint64_t bytes,
                               int tag, Callback done)
{
    _bytes += bytes;
    _channel.transfer(bytes, tag, std::move(done));
}

Tick
DedicatedBusInterconnect::totalBusyTicks() const
{
    return _channel.totalBusyTicks();
}

} // namespace dssd
