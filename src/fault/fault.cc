#include "fault/fault.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/latency.hh"
#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

const char *
readSeverityName(ReadSeverity s)
{
    switch (s) {
      case ReadSeverity::Clean:
        return "clean";
      case ReadSeverity::Retry:
        return "retry";
      case ReadSeverity::Soft:
        return "soft";
      case ReadSeverity::Uncorrectable:
        return "uncorrectable";
    }
    return "?";
}

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::UncorrectableRead:
        return "uncorrectable-read";
      case FaultKind::ProgramFail:
        return "program-fail";
      case FaultKind::EraseFail:
        return "erase-fail";
    }
    return "?";
}

FaultModel::FaultModel(const FlashGeometry &geom, const FaultParams &params)
    : _geom(geom), _params(params),
      _nocRng(params.seed * 0x9e3779b97f4a7c15ULL + 0xda3e39cb94b95bdbULL)
{
    std::uint32_t blocks_per_channel = geom.ways * geom.diesPerWay *
                                       geom.planesPerDie *
                                       geom.blocksPerPlane;
    _mediaRng.reserve(geom.channels);
    _wear.resize(geom.channels);
    for (std::uint32_t ch = 0; ch < geom.channels; ++ch) {
        // Distinct, well-separated stream per channel: the sequence of
        // ops on one channel never perturbs another channel's draws.
        _mediaRng.emplace_back(params.seed * 0x9e3779b97f4a7c15ULL + ch);
        _wear[ch].resize(blocks_per_channel);
    }
}

FaultModel::BlockWear &
FaultModel::wearOf(const PhysAddr &addr)
{
    std::uint32_t id = ((addr.way * _geom.diesPerWay + addr.die) *
                            _geom.planesPerDie +
                        addr.plane) *
                           _geom.blocksPerPlane +
                       addr.block;
    return _wear[addr.channel][id];
}

const FaultModel::BlockWear &
FaultModel::wearOf(const PhysAddr &addr) const
{
    return const_cast<FaultModel *>(this)->wearOf(addr);
}

double
FaultModel::stress(const PhysAddr &addr, Tick now) const
{
    const BlockWear &w = wearOf(addr);
    double age_ms =
        now > w.lastProgram ? ticksToMs(now - w.lastProgram) : 0.0;
    return 1.0 + _params.peWeight * static_cast<double>(w.pe) +
           _params.retentionWeight * age_ms;
}

ReadOutcome
FaultModel::readOutcome(const PhysAddr &addr, Tick now)
{
    ReadOutcome out;
    if (!_forcedReads.empty()) {
        out = _forcedReads.front();
        _forcedReads.pop_front();
    } else {
        // One uniform draw against the stress-scaled cumulative tail:
        // uncorrectable is the worst (least likely) outcome, then soft,
        // then retry; everything else decodes clean.
        double s = stress(addr, now) * _params.rberScale;
        double u = _mediaRng[addr.channel].uniformReal();
        double p_uncorr = _params.readUncorrProb * s;
        double p_soft = p_uncorr + _params.readSoftProb * s;
        double p_retry = p_soft + _params.readRetryProb * s;
        if (u < p_uncorr) {
            out.severity = ReadSeverity::Uncorrectable;
            out.retries = _params.maxReadRetries;
        } else if (u < p_soft) {
            out.severity = ReadSeverity::Soft;
            out.retries = _params.maxReadRetries;
        } else if (u < p_retry) {
            out.severity = ReadSeverity::Retry;
            // Scale the residual draw into 1..maxReadRetries rounds.
            double frac = (u - p_soft) / (p_retry - p_soft);
            out.retries = 1 + static_cast<unsigned>(
                                  frac * _params.maxReadRetries) %
                                  std::max(1u, _params.maxReadRetries);
        }
    }

    switch (out.severity) {
      case ReadSeverity::Clean:
        ++_readsClean;
        break;
      case ReadSeverity::Retry:
        _readRetryRounds += out.retries;
        break;
      case ReadSeverity::Soft:
        _readRetryRounds += out.retries;
        ++_readsSoft;
        break;
      case ReadSeverity::Uncorrectable:
        _readRetryRounds += out.retries;
        ++_readsUncorr;
        break;
    }
    return out;
}

bool
FaultModel::programFails(const PhysAddr &addr)
{
    bool fail;
    if (_forcedProgramFails > 0) {
        --_forcedProgramFails;
        fail = true;
    } else {
        fail = _mediaRng[addr.channel].chance(_params.programFailProb *
                                              _params.rberScale);
    }
    if (fail)
        ++_programFails;
    return fail;
}

bool
FaultModel::eraseFails(const PhysAddr &addr)
{
    bool fail;
    if (_forcedEraseFails > 0) {
        --_forcedEraseFails;
        fail = true;
    } else {
        fail = _mediaRng[addr.channel].chance(_params.eraseFailProb *
                                              _params.rberScale);
    }
    if (fail)
        ++_eraseFails;
    return fail;
}

bool
FaultModel::packetCorrupted()
{
    if (_params.nocCrcProb <= 0.0)
        return false;
    bool bad = _nocRng.chance(_params.nocCrcProb);
    if (bad)
        ++_packetsCorrupted;
    return bad;
}

void
FaultModel::notifyProgram(const PhysAddr &addr, Tick when)
{
    wearOf(addr).lastProgram = when;
}

void
FaultModel::notifyErase(const PhysAddr &addr)
{
    BlockWear &w = wearOf(addr);
    ++w.pe;
    w.lastProgram = 0;
}

std::uint32_t
FaultModel::peCount(const PhysAddr &addr) const
{
    return wearOf(addr).pe;
}

void
FaultModel::reportBlockFault(const PhysAddr &addr, FaultKind kind)
{
    ++_blockFaults;
    if (_sink)
        _sink(addr, kind);
}

void
FaultModel::debugForceReadOutcome(ReadSeverity sev, unsigned retries)
{
    ReadOutcome out;
    out.severity = sev;
    out.retries = retries;
    _forcedReads.push_back(out);
}

void
FaultModel::registerStats(StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.addScalar(prefix + ".reads_clean", [this] {
        return static_cast<double>(_readsClean);
    });
    reg.addScalar(prefix + ".read_retry_rounds", [this] {
        return static_cast<double>(_readRetryRounds);
    });
    reg.addScalar(prefix + ".reads_soft", [this] {
        return static_cast<double>(_readsSoft);
    });
    reg.addScalar(prefix + ".reads_uncorrectable", [this] {
        return static_cast<double>(_readsUncorr);
    });
    reg.addScalar(prefix + ".program_fails", [this] {
        return static_cast<double>(_programFails);
    });
    reg.addScalar(prefix + ".erase_fails", [this] {
        return static_cast<double>(_eraseFails);
    });
    reg.addScalar(prefix + ".noc_crc_errors", [this] {
        return static_cast<double>(_packetsCorrupted);
    });
    reg.addScalar(prefix + ".block_faults", [this] {
        return static_cast<double>(_blockFaults);
    });
}

namespace
{

/** Ladder bookkeeping shared across the recovery's event chain. */
struct Recovery
{
    ReadOutcome out;
    unsigned round = 0; ///< retry rounds completed
    PhysAddr addr;
    std::uint64_t bytes = 0;
    int tag = tagIo;
    LatencyBreakdown *bd = nullptr;
    std::function<void(Engine::Callback)> reread;
    std::function<void(ReadSeverity)> done;
};

void
traceRecoverySpan(Engine &engine, const Recovery &rec, const char *name,
                  Tick start)
{
#if DSSD_TRACING
    Tracer *tr = engine.tracer();
    if (tr) {
        int pid = tr->process("fault");
        std::uint64_t id = tr->nextSpanId();
        tr->asyncBegin(pid, "fault", name, id, start);
        tr->asyncEnd(pid, "fault", name, id, engine.now());
    }
#else
    (void)engine;
    (void)rec;
    (void)name;
    (void)start;
#endif
}

void
recoveryStep(Engine &engine, EccEngine &ecc,
             const std::shared_ptr<Recovery> &rec)
{
    if (rec->round < rec->out.retries) {
        // One read-retry round: re-read the die (with tuned reference
        // voltages), then another hard decode attempt.
        ++rec->round;
        Tick r0 = engine.now();
        rec->reread([&engine, &ecc, rec, r0] {
            Tick t0 = engine.now();
            ecc.process(rec->bytes, rec->tag, [&engine, &ecc, rec, r0,
                                               t0] {
                bdSpanClose(engine, rec->bd, bdEcc, t0);
                ecc.noteRetryRound();
                traceRecoverySpan(engine, *rec, "retry", r0);
                recoveryStep(engine, ecc, rec);
            });
        });
        return;
    }

    if (rec->out.severity == ReadSeverity::Retry) {
        // The final retry round recovered the data.
        rec->done(ReadSeverity::Retry);
        return;
    }

    if (rec->out.severity == ReadSeverity::Soft) {
        Tick t0 = engine.now();
        ecc.processSoft(rec->bytes, rec->tag, [&engine, rec, t0] {
            bdSpanClose(engine, rec->bd, bdEcc, t0);
            traceRecoverySpan(engine, *rec, "soft", t0);
            rec->done(ReadSeverity::Soft);
        });
        return;
    }

    // Retries and soft decode exhausted: unrecoverable here. The soft
    // pass still ran (and failed), so its time is charged.
    Tick t0 = engine.now();
    ecc.processSoft(rec->bytes, rec->tag, [&engine, &ecc, rec, t0] {
        bdSpanClose(engine, rec->bd, bdEcc, t0);
        ecc.noteUncorrectable();
        traceRecoverySpan(engine, *rec, "soft", t0);
        rec->done(ReadSeverity::Uncorrectable);
    });
}

} // namespace

void
runReadRecovery(Engine &engine, EccEngine &ecc, FaultModel *fault,
                const PhysAddr &addr, std::uint64_t bytes, int tag,
                LatencyBreakdown *bd,
                std::function<void(Engine::Callback)> reread,
                std::function<void(ReadSeverity)> done)
{
    if (!fault) {
        // Fault-free fast path: exactly the one decode the datapath
        // always charged; no draws, no extra events.
        Tick t0 = engine.now();
        ecc.process(bytes, tag, [&engine, &ecc, bd, t0,
                                 cb = std::move(done)] {
            bdSpanClose(engine, bd, bdEcc, t0);
            ecc.noteClean();
            cb(ReadSeverity::Clean);
        });
        return;
    }

    auto rec = std::make_shared<Recovery>();
    rec->out = fault->readOutcome(addr, engine.now());
    rec->addr = addr;
    rec->bytes = bytes;
    rec->tag = tag;
    rec->bd = bd;
    rec->reread = std::move(reread);
    rec->done = std::move(done);

    // The first hard decode always runs; its success/failure is the
    // sampled severity.
    Tick t0 = engine.now();
    ecc.process(bytes, tag, [&engine, &ecc, rec, t0] {
        bdSpanClose(engine, rec->bd, bdEcc, t0);
        if (rec->out.severity == ReadSeverity::Clean) {
            ecc.noteClean();
            rec->done(ReadSeverity::Clean);
            return;
        }
        recoveryStep(engine, ecc, rec);
    });
}

} // namespace dssd
