#include "fault/recovery.hh"

#include <utility>

#include "sim/log.hh"
#include "sim/resource.hh"
#include "sim/trace.hh"

namespace dssd
{

RecoveryEngine::RecoveryEngine(Engine &engine, const FlashGeometry &geom,
                               PageMapping &mapping, SystemBus &bus,
                               Dram &dram, Tick gc_firmware_latency,
                               Routes routes)
    : _engine(engine), _geom(geom), _mapping(mapping), _bus(bus),
      _dram(dram), _gcFirmwareLatency(gc_firmware_latency),
      _routes(std::move(routes))
{
    std::uint32_t blocks_per_channel = _geom.ways * _geom.diesPerWay *
                                       _geom.planesPerDie *
                                       _geom.blocksPerPlane;
    _faultedBlocks.resize(_geom.channels);
    for (auto &v : _faultedBlocks)
        v.assign(blocks_per_channel, false);
}

std::uint32_t
RecoveryEngine::blockId(const PhysAddr &addr) const
{
    return ((addr.way * _geom.diesPerWay + addr.die) *
                _geom.planesPerDie +
            addr.plane) *
               _geom.blocksPerPlane +
           addr.block;
}

bool
RecoveryEngine::blockFaulted(const PhysAddr &addr) const
{
    return _faultedBlocks[addr.channel][blockId(addr)];
}

void
RecoveryEngine::onBlockFault(const PhysAddr &addr, FaultKind kind)
{
    if (_override) {
        // A DSM engine owns failure handling while attached.
        _override->onBlockFault(addr, kind);
        return;
    }
    // Escalate each physical block once: program retries and repeated
    // uncorrectable reads keep reporting the same block while its
    // repair/retirement is already under way.
    std::uint32_t id = blockId(addr);
    if (_faultedBlocks[addr.channel][id])
        return;
    _faultedBlocks[addr.channel][id] = true;

    if (_routes.hardwareRepair && _routes.hardwareRepair(addr)) {
        ++_blocksRepaired;
        return;
    }
    ++_blocksRetired;
    retireBlock(addr);
}

void
RecoveryEngine::retireBlock(const PhysAddr &addr)
{
    // Conventional bad-block management: find the FTL-visible block
    // (undoing any SRT remapping), retire it, and relocate its valid
    // pages over the timed GC datapath.
    PhysAddr logical = _routes.unremap ? _routes.unremap(addr) : addr;
    std::uint32_t unit = _mapping.unitOf(logical);
    std::uint32_t block = logical.block;
    if (_mapping.blockState(unit, block).isBad)
        return; // already out of FTL circulation (e.g. an RBT spare)

    auto lpns = std::make_shared<std::vector<Lpn>>(
        _mapping.validLpns(unit, block));
    _mapping.retireBlock(unit, block);
    relocateRetired(lpns, 0, unit, block);
}

void
RecoveryEngine::relocateRetired(std::shared_ptr<std::vector<Lpn>> lpns,
                                std::size_t idx, std::uint32_t unit,
                                std::uint32_t block)
{
    PageMapping &map = _mapping;
    while (idx < lpns->size()) {
        // Skip pages the host rewrote since the retirement snapshot.
        Lpn lpn = (*lpns)[idx];
        auto ppn = map.translate(lpn);
        if (!ppn) {
            ++idx;
            continue;
        }
        PhysAddr src = map.geometry().pageAddr(*ppn);
        if (map.unitOf(src) != unit || src.block != block) {
            ++idx;
            continue;
        }
        // Round-robin over units with room; wait for GC if none.
        std::uint32_t n = map.unitCount();
        std::uint32_t dst_unit = n;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t cand = _faultDstCursor;
            _faultDstCursor = (_faultDstCursor + 1) % n;
            if (map.canAllocate(cand)) {
                dst_unit = cand;
                break;
            }
        }
        if (dst_unit == n) {
            _engine.schedule(usToTicks(2),
                             [this, lpns, idx, unit, block] {
                relocateRetired(lpns, idx, unit, block);
            });
            return;
        }
        PhysAddr dst = map.allocateInUnit(lpn, dst_unit);
        ++_retirePagesCopied;
        _routes.copyPage(src, dst,
                         [this, lpns, idx, unit, block, lpn, dst] {
            _mapping.commitRelocation(lpn, dst);
            relocateRetired(lpns, idx + 1, unit, block);
        });
        return;
    }
}

void
RecoveryEngine::copybackFallback(const PhysAddr &src, const PhysAddr &dst,
                                 int tag, LatencyBreakdown *bd,
                                 Callback done)
{
    // Last-resort recovery of a copyback page the channel ECC could
    // not correct: re-read the die, force the page through the slow
    // soft decoder with firmware assistance, then route it the
    // conventional way — system bus, DRAM, FTL firmware, and back out
    // to the destination program. Expensive by design: this is the
    // cost a decoupled copyback pays when it trips over a bad page.
    ++_cbFallbacks;
    std::uint64_t page = _geom.pageBytes;
#if DSSD_TRACING
    std::uint64_t span_id = _cbFallbacks;
    Tracer *tr = _engine.tracer();
    if (tr) {
        tr->asyncBegin(tr->process("fault"), "fault", "fallback",
                       span_id, _engine.now());
    }
    auto trace_end = [this, span_id] {
        Tracer *etr = _engine.tracer();
        if (etr) {
            etr->asyncEnd(etr->process("fault"), "fault", "fallback",
                          span_id, _engine.now());
        }
    };
#else
    auto trace_end = [] {};
#endif

    unsigned src_ch = src.channel;
    _routes.channelRead(src, tag, bd,
                        [this, src_ch, page, dst, tag, bd, done,
                         trace_end] {
        Tick t0 = _engine.now();
        _routes.softDecode(src_ch, page, tag,
                           [this, page, dst, tag, bd, t0, done,
                            trace_end] {
            bdSpanClose(_engine, bd, bdEcc, t0);
            Tick t1 = _engine.now();
            _bus.channel().transfer(page, tag,
                                    [this, page, dst, tag, bd, t1, done,
                                     trace_end] {
                bdSpanClose(_engine, bd, bdSystemBus, t1);
                Tick t2 = _engine.now();
                _dram.port().transfer(page, tag,
                                      [this, page, dst, tag, bd, t2,
                                       done, trace_end] {
                    bdSpanClose(_engine, bd, bdDram, t2);
                    Tick fw0 = _engine.now();
                    bdSpanCloseAt(_engine, bd, bdOther, fw0,
                                  fw0 + _gcFirmwareLatency);
                    _engine.schedule(_gcFirmwareLatency,
                                     [this, page, dst, tag, bd, done,
                                      trace_end] {
                        Tick t3 = _engine.now();
                        _dram.port().transfer(page, tag,
                                              [this, page, dst, tag, bd,
                                               t3, done, trace_end] {
                            bdSpanClose(_engine, bd, bdDram, t3);
                            Tick t4 = _engine.now();
                            _bus.channel().transfer(
                                page, tag,
                                [this, dst, tag, bd, t4, done,
                                 trace_end] {
                                bdSpanClose(_engine, bd, bdSystemBus,
                                            t4);
                                _routes.channelProgram(
                                    dst, tag, bd, [done, trace_end] {
                                    trace_end();
                                    done();
                                });
                            });
                        });
                    });
                });
            });
        });
    });
}

} // namespace dssd
