/**
 * @file
 * Deterministic fault injection for the timing simulator.
 *
 * The FaultModel turns every media operation into a sampled outcome:
 * raw-bit-error severity on reads (a function of the block's P/E count
 * and retention age), program-status failures, erase failures, and
 * fNoC packet CRC corruption. All draws come from per-channel Rng
 * streams seeded from FaultParams::seed, so a run with a fixed
 * --fault-seed reproduces the exact same fault schedule regardless of
 * which figures or stats are being collected.
 *
 * Recovery is modeled where the hardware does it:
 *  - the ECC read-recovery ladder (runReadRecovery): clean decode ->
 *    read retries with a die re-read each round -> slow soft decode ->
 *    uncorrectable;
 *  - uncorrectable/program/erase failures escalate to the block-fault
 *    sink (Ssd by default, DynamicSuperblockEngine when attached),
 *    which repairs via RBT/SRT global copyback or retires the block
 *    through the FTL;
 *  - NocNetwork retransmits CRC-corrupted packets after a NACK delay;
 *  - DecoupledController aborts a copyback whose page its channel ECC
 *    cannot correct and re-reads it through the front-end.
 *
 * When FaultParams::enabled is false no FaultModel is constructed at
 * all: every injection site is nullptr-gated, zero draws happen, and
 * the event schedule is bit-identical to a fault-free build.
 */

#ifndef DSSD_FAULT_FAULT_HH
#define DSSD_FAULT_FAULT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ecc/ecc.hh"
#include "nand/geometry.hh"
#include "sim/rng.hh"

namespace dssd
{

class StatRegistry;
struct LatencyBreakdown;

/** Outcome severity of a page read's first ECC decode. */
enum class ReadSeverity : int
{
    Clean = 0,         ///< hard decode succeeds immediately
    Retry = 1,         ///< recovered after read-retry round(s)
    Soft = 2,          ///< recovered only by the slow soft-decode path
    Uncorrectable = 3, ///< unrecoverable at this engine
};

const char *readSeverityName(ReadSeverity s);

/** Terminal media failure classes escalated to the block-fault sink. */
enum class FaultKind : int
{
    UncorrectableRead = 0,
    ProgramFail = 1,
    EraseFail = 2,
};

const char *faultKindName(FaultKind k);

/** A sampled read outcome: severity plus the retry rounds consumed. */
struct ReadOutcome
{
    ReadSeverity severity = ReadSeverity::Clean;
    /// Re-read rounds the ladder runs (0 for Clean; maxReadRetries for
    /// Soft/Uncorrectable, which exhaust the retry budget first).
    unsigned retries = 0;
};

/** Fault-injection configuration (a block inside SsdConfig). */
struct FaultParams
{
    /// Master switch; when false the Ssd builds no FaultModel at all.
    bool enabled = false;
    /// Seed of the per-component fault streams (independent from the
    /// workload seed so fault schedules can be varied in isolation).
    std::uint64_t seed = 99;

    /// Global RBER multiplier; the fig17 sweep scales this.
    double rberScale = 1.0;
    /// Baseline per-read probabilities at zero stress (fresh block,
    /// just-programmed data). Cumulative tail: a draw first decides
    /// uncorrectable, then soft, then retry.
    double readRetryProb = 0.02;
    double readSoftProb = 0.004;
    double readUncorrProb = 5e-4;
    /// Stress factor: probability scale = 1 + peWeight * (P/E count)
    /// + retentionWeight * (retention age in ms).
    double peWeight = 0.02;
    double retentionWeight = 0.001;
    /// Read-retry rounds before the ladder falls through to soft
    /// decode.
    unsigned maxReadRetries = 3;

    /// Per-operation program-status / erase-failure probabilities.
    double programFailProb = 2e-4;
    double eraseFailProb = 1e-4;

    /// fNoC packet CRC corruption probability (per delivery).
    double nocCrcProb = 0.0;
    /// NACK/timeout before a corrupted packet retransmits.
    Tick nocNackDelay = usToTicks(2);

    /// Spare blocks pre-seeded into each decoupled controller's RBT
    /// (taken out of FTL visibility) for runtime hardware repair.
    unsigned rbtSparesPerChannel = 2;
};

/**
 * Receiver of terminal block faults. The Ssd installs itself (repair
 * via RBT/SRT or FTL retirement); DynamicSuperblockEngine overrides it
 * to merge faults into its wear-cycle state machine.
 */
class FaultSink
{
  public:
    virtual ~FaultSink() = default;
    virtual void onBlockFault(const PhysAddr &addr, FaultKind kind) = 0;
};

/**
 * The seeded fault source. One instance per Ssd, shared by channels,
 * decoupled controllers, and the fNoC. Pure state plus counters; the
 * recovery *timing* lives at the injection sites.
 */
class FaultModel
{
  public:
    using BlockFaultFn = std::function<void(const PhysAddr &, FaultKind)>;

    FaultModel(const FlashGeometry &geom, const FaultParams &params);

    const FaultParams &params() const { return _params; }

    /**
     * Sample the ECC outcome of reading @p addr at time @p now. One
     * uniform draw per call from the channel's media stream.
     */
    ReadOutcome readOutcome(const PhysAddr &addr, Tick now);

    /** Sample a program-status failure for the op at @p addr. */
    bool programFails(const PhysAddr &addr);

    /** Sample an erase failure for the block at @p addr. */
    bool eraseFails(const PhysAddr &addr);

    /** Sample fNoC packet CRC corruption (per delivery attempt). */
    bool packetCorrupted();

    /** Record a completed program (sets the retention clock). */
    void notifyProgram(const PhysAddr &addr, Tick when);

    /** Record a completed erase (bumps P/E, resets retention). */
    void notifyErase(const PhysAddr &addr);

    /** P/E count the model tracks for the block at @p addr. */
    std::uint32_t peCount(const PhysAddr &addr) const;

    /**
     * Escalate a terminal fault: count it and forward to the sink.
     * Injection sites call this at the tick the controller would see
     * the failed status / uncorrectable decode.
     */
    void reportBlockFault(const PhysAddr &addr, FaultKind kind);

    /** Install the block-fault handler (Ssd's repair/retire logic). */
    void setSink(BlockFaultFn sink) { _sink = std::move(sink); }

    std::uint64_t readsClean() const { return _readsClean; }
    std::uint64_t readRetryRounds() const { return _readRetryRounds; }
    std::uint64_t readsSoft() const { return _readsSoft; }
    std::uint64_t readsUncorrectable() const { return _readsUncorr; }
    std::uint64_t programFailures() const { return _programFails; }
    std::uint64_t eraseFailures() const { return _eraseFails; }
    std::uint64_t packetsCorrupted() const { return _packetsCorrupted; }
    std::uint64_t blockFaults() const { return _blockFaults; }

    /**
     * Test hook: force the next readOutcome() calls to return the
     * queued outcome instead of drawing (FIFO). Lets tests exercise
     * the exact ladder escalation order deterministically.
     */
    void debugForceReadOutcome(ReadSeverity sev, unsigned retries);

    /** Test hook: force the next programFails()/eraseFails() to true. */
    void debugForceProgramFail() { ++_forcedProgramFails; }
    void debugForceEraseFail() { ++_forcedEraseFails; }

    /** Register fault.* counters under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct BlockWear
    {
        std::uint32_t pe = 0;
        Tick lastProgram = 0;
    };

    BlockWear &wearOf(const PhysAddr &addr);
    const BlockWear &wearOf(const PhysAddr &addr) const;
    /** Stress multiplier for @p addr at time @p now (>= 1). */
    double stress(const PhysAddr &addr, Tick now) const;

    FlashGeometry _geom;
    FaultParams _params;
    /// One media stream per channel plus a dedicated fNoC stream, so
    /// per-channel op interleaving does not perturb other channels'
    /// fault schedules.
    std::vector<Rng> _mediaRng;
    Rng _nocRng;
    /// _wear[channel][channelBlockId]
    std::vector<std::vector<BlockWear>> _wear;
    BlockFaultFn _sink;

    std::deque<ReadOutcome> _forcedReads;
    unsigned _forcedProgramFails = 0;
    unsigned _forcedEraseFails = 0;

    std::uint64_t _readsClean = 0;
    std::uint64_t _readRetryRounds = 0;
    std::uint64_t _readsSoft = 0;
    std::uint64_t _readsUncorr = 0;
    std::uint64_t _programFails = 0;
    std::uint64_t _eraseFails = 0;
    std::uint64_t _packetsCorrupted = 0;
    std::uint64_t _blockFaults = 0;
};

/**
 * Run the ECC read-recovery ladder over a page that just arrived from
 * the flash array.
 *
 * With no fault model (or faults disabled) this is exactly one
 * EccEngine::process() — identical events, identical timing — so the
 * fault-off datapath stays bit-identical. Under faults the ladder
 * samples a ReadOutcome for @p addr and charges, in order: the failed
 * hard decode, each read-retry round (@p reread, a closure re-reading
 * the die, plus another hard decode), then the slow soft-decode pass.
 *
 * The ladder closes its own bdEcc spans (one per decode attempt); the
 * re-reads charge flash time through @p reread's own breakdown
 * plumbing. @p done receives the final severity; on Uncorrectable the
 * page is unrecoverable at this engine and the caller escalates.
 */
void runReadRecovery(Engine &engine, EccEngine &ecc, FaultModel *fault,
                     const PhysAddr &addr, std::uint64_t bytes, int tag,
                     LatencyBreakdown *bd,
                     std::function<void(Engine::Callback)> reread,
                     std::function<void(ReadSeverity)> done);

} // namespace dssd

#endif // DSSD_FAULT_FAULT_HH
