/**
 * @file
 * Block-fault recovery engine.
 *
 * Terminal media faults (uncorrectable reads, program/erase failures)
 * escalate here from the FaultModel. Each physical block is escalated
 * at most once; the engine then either repairs it in place through the
 * architecture's repair hardware (RBT spare + SRT remap, dSSD family)
 * or retires it through the FTL, relocating its still-valid pages over
 * the timed GC datapath. The engine also implements the front-end
 * copyback fallback: the expensive conventional re-read a decoupled
 * copyback pays when its page is uncorrectable at the channel ECC.
 *
 * Layering: this engine owns fault *policy and bookkeeping* (dedup
 * table, destination cursor, repair/retire counters) plus the timed
 * routes it can express with the resources below it (system bus,
 * DRAM). Everything architecture-specific — flash channel ops, the
 * repair hardware, ECC soft decode, SRT reverse lookup — is injected
 * by the Ssd shell through Routes, so src/fault never depends on
 * src/controller or src/core.
 */

#ifndef DSSD_FAULT_RECOVERY_HH
#define DSSD_FAULT_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bus/system_bus.hh"
#include "fault/fault.hh"
#include "ftl/mapping.hh"
#include "sim/engine.hh"
#include "sim/latency.hh"

namespace dssd
{

/** Repair-or-retire handling of terminal block faults. */
class RecoveryEngine : public FaultSink
{
  public:
    using Callback = Engine::Callback;

    /**
     * Architecture-specific routes injected by the owner. copyPage,
     * channelRead, channelProgram, and softDecode must always be set;
     * hardwareRepair and unremap are left unset on architectures
     * without repair hardware (retirement-only handling).
     */
    struct Routes
    {
        /// Timed GC-datapath copy of one valid page (relocation).
        std::function<void(const PhysAddr &src, const PhysAddr &dst,
                           Callback done)>
            copyPage;
        /// In-place hardware repair of the faulted block; returns
        /// false when no spare/SRT room and the caller must retire.
        std::function<bool(const PhysAddr &addr)> hardwareRepair;
        /// FTL-visible address behind a (possibly remapped) physical
        /// one (SRT reverse lookup). Unset = identity.
        std::function<PhysAddr(const PhysAddr &addr)> unremap;
        /// Timed flash read of one page.
        std::function<void(const PhysAddr &addr, int tag,
                           LatencyBreakdown *bd, Callback done)>
            channelRead;
        /// Slow soft decode in the ECC engine serving @p channel.
        std::function<void(unsigned channel, std::uint64_t bytes,
                           int tag, Callback done)>
            softDecode;
        /// Timed flash program of one page.
        std::function<void(const PhysAddr &addr, int tag,
                           LatencyBreakdown *bd, Callback done)>
            channelProgram;
    };

    RecoveryEngine(Engine &engine, const FlashGeometry &geom,
                   PageMapping &mapping, SystemBus &bus, Dram &dram,
                   Tick gc_firmware_latency, Routes routes);

    /**
     * Terminal-fault entry point (the FaultModel's sink): dedup, then
     * repair in hardware or retire through the FTL.
     */
    void onBlockFault(const PhysAddr &addr, FaultKind kind) override;

    /**
     * Divert faults to @p sink instead of the built-in handling
     * (DynamicSuperblockEngine merges faults into its wear-cycle
     * state machine); null restores the default.
     */
    void setOverrideSink(FaultSink *sink) { _override = sink; }

    /** Whether @p addr's block already escalated here. */
    bool blockFaulted(const PhysAddr &addr) const;

    /** Count @p pages copied by an in-progress hardware repair. */
    void noteRepairPages(std::uint32_t pages)
    {
        _repairPagesCopied += pages;
    }

    /** Count a completed SRT remap installed by a hardware repair. */
    void noteRemap() { ++_remapEvents; }

    /**
     * Front-end re-read of a copyback page the channel ECC could not
     * correct: flash read, soft decode, system bus, DRAM, FTL
     * firmware, and back out to the destination program.
     */
    void copybackFallback(const PhysAddr &src, const PhysAddr &dst,
                          int tag, LatencyBreakdown *bd, Callback done);

    std::uint64_t blocksRepaired() const { return _blocksRepaired; }
    std::uint64_t blocksRetired() const { return _blocksRetired; }
    std::uint64_t repairPagesCopied() const { return _repairPagesCopied; }
    std::uint64_t retirePagesCopied() const { return _retirePagesCopied; }
    std::uint64_t copybackFallbacks() const { return _cbFallbacks; }
    std::uint64_t remapEvents() const { return _remapEvents; }

  private:
    /** FTL bad-block retirement of @p addr's block. */
    void retireBlock(const PhysAddr &addr);
    /** Relocate the remaining @p lpns (from @p idx) of a retiring
     *  block, one at a time. */
    void relocateRetired(std::shared_ptr<std::vector<Lpn>> lpns,
                         std::size_t idx, std::uint32_t unit,
                         std::uint32_t block);
    /** Flat block id within a channel (same linearization as the
     *  controller's ChannelBlockId). */
    std::uint32_t blockId(const PhysAddr &addr) const;

    Engine &_engine;
    FlashGeometry _geom;
    PageMapping &_mapping;
    SystemBus &_bus;
    Dram &_dram;
    Tick _gcFirmwareLatency;
    Routes _routes;

    FaultSink *_override = nullptr;
    /// _faultedBlocks[channel][blockId]: escalate each physical block
    /// at most once (retries keep reporting the same block).
    std::vector<std::vector<bool>> _faultedBlocks;
    std::uint32_t _faultDstCursor = 0;
    std::uint64_t _blocksRepaired = 0;
    std::uint64_t _blocksRetired = 0;
    std::uint64_t _repairPagesCopied = 0;
    std::uint64_t _retirePagesCopied = 0;
    std::uint64_t _cbFallbacks = 0;
    std::uint64_t _remapEvents = 0;
};

} // namespace dssd

#endif // DSSD_FAULT_RECOVERY_HH
