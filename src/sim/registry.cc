#include "sim/registry.hh"

#include <algorithm>
#include <cstring>

#include "sim/log.hh"

namespace dssd
{

namespace
{

/** JSON-number formatting that round-trips doubles and keeps
 *  integral values integral-looking. */
std::string
jsonNumber(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v >= -1e15 && v <= 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

} // namespace

void
StatRegistry::insert(Entry entry)
{
    if (entry.path.empty())
        fatal("StatRegistry: empty stat path");
    if (has(entry.path))
        fatal("StatRegistry: duplicate stat path '%s'",
              entry.path.c_str());
    _entries.push_back(std::move(entry));
}

void
StatRegistry::addCounter(const std::string &path, const Counter *c)
{
    Entry e;
    e.path = path;
    e.kind = Kind::CounterStat;
    e.counter = c;
    insert(std::move(e));
}

void
StatRegistry::addSample(const std::string &path, const SampleStat *s)
{
    Entry e;
    e.path = path;
    e.kind = Kind::Sample;
    e.sample = s;
    insert(std::move(e));
}

void
StatRegistry::addRate(const std::string &path, const RateSeries *r)
{
    Entry e;
    e.path = path;
    e.kind = Kind::Rate;
    e.rate = r;
    insert(std::move(e));
}

void
StatRegistry::addScalar(const std::string &path, ScalarFn fn)
{
    Entry e;
    e.path = path;
    e.kind = Kind::Scalar;
    e.scalar = std::move(fn);
    insert(std::move(e));
}

const StatRegistry::Entry *
StatRegistry::find(const std::string &path) const
{
    for (const auto &e : _entries)
        if (e.path == path)
            return &e;
    return nullptr;
}

bool
StatRegistry::has(const std::string &path) const
{
    return find(path) != nullptr;
}

double
StatRegistry::value(const std::string &path) const
{
    const Entry *e = find(path);
    if (!e)
        fatal("StatRegistry: no stat registered at '%s'", path.c_str());
    switch (e->kind) {
      case Kind::CounterStat:
        return static_cast<double>(e->counter->value());
      case Kind::Sample:
        return static_cast<double>(e->sample->count());
      case Kind::Rate:
        return e->rate->total();
      case Kind::Scalar:
        return e->scalar();
    }
    return 0.0;
}

std::vector<std::size_t>
StatRegistry::sortedIndex() const
{
    std::vector<std::size_t> order(_entries.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  return _entries[a].path < _entries[b].path;
              });
    return order;
}

std::vector<std::string>
StatRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (std::size_t i : sortedIndex())
        out.push_back(_entries[i].path);
    return out;
}

void
StatRegistry::dumpText(std::FILE *out) const
{
    std::size_t width = 0;
    for (const auto &e : _entries)
        width = std::max(width, e.path.size());
    for (std::size_t i : sortedIndex()) {
        const Entry &e = _entries[i];
        std::fprintf(out, "%-*s = ", static_cast<int>(width),
                     e.path.c_str());
        switch (e.kind) {
          case Kind::CounterStat:
            std::fprintf(out, "%llu\n",
                         static_cast<unsigned long long>(
                             e.counter->value()));
            break;
          case Kind::Sample:
            std::fprintf(out,
                         "count=%llu mean=%.3f p50=%.3f p99=%.3f "
                         "max=%.3f\n",
                         static_cast<unsigned long long>(
                             e.sample->count()),
                         e.sample->mean(), e.sample->percentile(50.0),
                         e.sample->percentile(99.0), e.sample->max());
            break;
          case Kind::Rate:
            std::fprintf(out, "total=%.3f windows=%zu\n",
                         e.rate->total(), e.rate->windows().size());
            break;
          case Kind::Scalar:
            std::fprintf(out, "%s\n", jsonNumber(e.scalar()).c_str());
            break;
        }
    }
}

std::string
StatRegistry::json() const
{
    std::string out = "{\n";
    bool first = true;
    for (std::size_t i : sortedIndex()) {
        const Entry &e = _entries[i];
        if (!first)
            out += ",\n";
        first = false;
        out += "  \"" + e.path + "\": ";
        switch (e.kind) {
          case Kind::CounterStat:
            out += jsonNumber(static_cast<double>(e.counter->value()));
            break;
          case Kind::Sample:
            out += "{\"count\": " +
                   jsonNumber(
                       static_cast<double>(e.sample->count())) +
                   ", \"mean\": " + jsonNumber(e.sample->mean()) +
                   ", \"min\": " + jsonNumber(e.sample->min()) +
                   ", \"p50\": " +
                   jsonNumber(e.sample->percentile(50.0)) +
                   ", \"p99\": " +
                   jsonNumber(e.sample->percentile(99.0)) +
                   ", \"p999\": " +
                   jsonNumber(e.sample->percentile(99.9)) +
                   ", \"max\": " + jsonNumber(e.sample->max()) + "}";
            break;
          case Kind::Rate:
            out += "{\"total\": " + jsonNumber(e.rate->total()) +
                   ", \"window_ticks\": " +
                   jsonNumber(static_cast<double>(e.rate->window())) +
                   ", \"windows\": " +
                   jsonNumber(
                       static_cast<double>(e.rate->windows().size())) +
                   "}";
            break;
          case Kind::Scalar:
            out += jsonNumber(e.scalar());
            break;
        }
    }
    out += "\n}\n";
    return out;
}

void
StatRegistry::writeJson(const std::string &path) const
{
    std::string doc = json();
    if (path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open stats file '%s' for writing", path.c_str());
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace dssd
