#include "sim/resource.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

namespace
{

#if DSSD_TRACING
/** Slice label for a traffic tag. */
const char *
tagName(int tag)
{
    switch (tag) {
      case tagIo:
        return "io";
      case tagGc:
        return "gc";
      case tagMeta:
        return "meta";
      default:
        return "other";
    }
}
#endif

} // namespace

//
// UtilizationRecorder
//

UtilizationRecorder::UtilizationRecorder(Tick window, int num_tags)
    : _window(window), _numTags(num_tags), _busy(num_tags)
{
    if (window == 0)
        fatal("UtilizationRecorder window must be > 0");
    if (num_tags <= 0)
        fatal("UtilizationRecorder needs at least one tag");
}

void
UtilizationRecorder::ensureWindows(std::size_t count)
{
    for (auto &v : _busy) {
        if (v.size() < count)
            v.resize(count, 0);
    }
}

void
UtilizationRecorder::addBusy(Tick start, Tick end, int tag)
{
    if (tag < 0 || tag >= _numTags || end <= start)
        return;
    std::size_t last = static_cast<std::size_t>((end - 1) / _window);
    ensureWindows(last + 1);
    Tick t = start;
    while (t < end) {
        std::size_t w = static_cast<std::size_t>(t / _window);
        Tick w_end = (static_cast<Tick>(w) + 1) * _window;
        Tick seg_end = std::min(end, w_end);
        _busy[tag][w] += seg_end - t;
        t = seg_end;
    }
}

std::vector<double>
UtilizationRecorder::series(int tag) const
{
    std::vector<double> out;
    if (tag < 0 || tag >= _numTags)
        return out;
    out.reserve(_busy[tag].size());
    for (Tick b : _busy[tag])
        out.push_back(static_cast<double>(b) / static_cast<double>(_window));
    return out;
}

double
UtilizationRecorder::busyFraction(int tag, Tick from, Tick to) const
{
    if (tag < 0 || tag >= _numTags || to <= from)
        return 0.0;
    // Sum whole windows that overlap [from, to); window-granular since
    // busy time inside a window is not further localized.
    std::size_t w0 = static_cast<std::size_t>(from / _window);
    std::size_t w1 = static_cast<std::size_t>((to - 1) / _window);
    Tick busy = 0;
    for (std::size_t w = w0; w <= w1 && w < _busy[tag].size(); ++w)
        busy += _busy[tag][w];
    return static_cast<double>(busy) / static_cast<double>(to - from);
}

std::size_t
UtilizationRecorder::numWindows() const
{
    std::size_t n = 0;
    for (const auto &v : _busy)
        n = std::max(n, v.size());
    return n;
}

//
// BandwidthResource
//

BandwidthResource::BandwidthResource(Engine &engine, std::string name,
                                     BytesPerTick bw)
    : _engine(engine), _name(std::move(name)), _bandwidth(bw),
      _busyTicks(numTrafficTags, 0), _bytes(numTrafficTags, 0)
{
    if (bw <= 0.0)
        fatal("BandwidthResource %s: bandwidth must be positive",
              _name.c_str());
}

Tick
BandwidthResource::duration(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0;
    double d = static_cast<double>(bytes) / _bandwidth;
    return std::max<Tick>(1, static_cast<Tick>(std::ceil(d)));
}

Tick
BandwidthResource::queueDelay() const
{
    Tick now = _engine.now();
    return _busyUntil > now ? _busyUntil - now : 0;
}

Tick
BandwidthResource::reserve(std::uint64_t bytes, int tag)
{
    return reserveFrom(0, bytes, tag);
}

Tick
BandwidthResource::reserveFrom(Tick earliest, std::uint64_t bytes, int tag)
{
    Tick now = _engine.now();
    Tick start = std::max({now, earliest, _busyUntil});
    Tick dur = duration(bytes);
    Tick end = start + dur;
    _busyUntil = end;
    ++_transfers;
    if (tag >= 0 && tag < static_cast<int>(_busyTicks.size())) {
        _busyTicks[static_cast<std::size_t>(tag)] += dur;
        _bytes[static_cast<std::size_t>(tag)] += bytes;
    }
    if (_recorder)
        _recorder->addBusy(start, end, tag);
#if DSSD_TRACING
    // Every bus-like resource in the model reserves through here, so
    // this single site traces all transfer occupancy.
    Tracer *tr = _engine.tracer();
    if (tr && dur > 0) {
        if (_tracePid < 0) {
            _tracePid = tr->process("bus");
            _traceTid = tr->lane(_tracePid, _name);
        }
        tr->slice(_tracePid, _traceTid, tagName(tag), "bus", start, end);
    }
#endif
    return end;
}

Tick
BandwidthResource::transfer(std::uint64_t bytes, int tag, Callback done)
{
    Tick end = reserve(bytes, tag);
    _engine.scheduleAbs(end, std::move(done));
    return end;
}

void
BandwidthResource::setBandwidth(BytesPerTick bw)
{
    if (bw <= 0.0)
        fatal("BandwidthResource %s: bandwidth must be positive",
              _name.c_str());
    _bandwidth = bw;
}

Tick
BandwidthResource::busyTicks(int tag) const
{
    if (tag < 0 || tag >= static_cast<int>(_busyTicks.size()))
        return 0;
    return _busyTicks[static_cast<std::size_t>(tag)];
}

Tick
BandwidthResource::totalBusyTicks() const
{
    Tick sum = 0;
    for (Tick t : _busyTicks)
        sum += t;
    return sum;
}

std::uint64_t
BandwidthResource::bytesMoved(int tag) const
{
    if (tag < 0 || tag >= static_cast<int>(_bytes.size()))
        return 0;
    return _bytes[static_cast<std::size_t>(tag)];
}

void
BandwidthResource::resetStats()
{
    _transfers = 0;
    std::fill(_busyTicks.begin(), _busyTicks.end(), 0);
    std::fill(_bytes.begin(), _bytes.end(), 0);
}

void
BandwidthResource::registerStats(StatRegistry &reg,
                                 const std::string &prefix) const
{
    reg.addScalar(prefix + ".transfers", [this] {
        return static_cast<double>(_transfers);
    });
    reg.addScalar(prefix + ".busy_ticks", [this] {
        return static_cast<double>(totalBusyTicks());
    });
    reg.addScalar(prefix + ".bytes.io", [this] {
        return static_cast<double>(bytesMoved(tagIo));
    });
    reg.addScalar(prefix + ".bytes.gc", [this] {
        return static_cast<double>(bytesMoved(tagGc));
    });
    reg.addScalar(prefix + ".bytes.meta", [this] {
        return static_cast<double>(bytesMoved(tagMeta));
    });
}

//
// SlotResource
//

SlotResource::SlotResource(Engine &engine, std::string name, unsigned slots)
    : _engine(engine), _name(std::move(name)), _capacity(slots), _free(slots)
{
    if (slots == 0)
        fatal("SlotResource %s: capacity must be > 0", _name.c_str());
}

void
SlotResource::traceOccupancy()
{
#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr) {
        if (_tracePid < 0)
            _tracePid = tr->process("occupancy");
        tr->counter(_tracePid, _name.c_str(), _engine.now(),
                    static_cast<double>(_capacity - _free));
    }
#endif
}

bool
SlotResource::tryAcquire()
{
    if (_free == 0)
        return false;
    --_free;
    _maxHeld = std::max(_maxHeld, _capacity - _free);
    traceOccupancy();
    return true;
}

void
SlotResource::acquire(Callback granted)
{
    if (tryAcquire()) {
        // Run at the current tick but outside the caller's frame to keep
        // grant ordering FIFO with any queued waiters released this tick.
        _engine.schedule(0, std::move(granted));
    } else {
        _waiters.push_back(std::move(granted));
    }
}

void
SlotResource::release()
{
    if (_free == _capacity && _waiters.empty())
        panic("SlotResource %s: release without acquire", _name.c_str());
    if (!_waiters.empty()) {
        // Hand the slot directly to the oldest waiter.
        Callback cb = std::move(_waiters.front());
        _waiters.pop_front();
        _engine.schedule(0, std::move(cb));
    } else {
        ++_free;
        traceOccupancy();
    }
}

void
SlotResource::registerStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.addScalar(prefix + ".capacity", [this] {
        return static_cast<double>(_capacity);
    });
    reg.addScalar(prefix + ".max_held", [this] {
        return static_cast<double>(_maxHeld);
    });
    reg.addScalar(prefix + ".held", [this] {
        return static_cast<double>(_capacity - _free);
    });
    reg.addScalar(prefix + ".waiters", [this] {
        return static_cast<double>(_waiters.size());
    });
}

} // namespace dssd
