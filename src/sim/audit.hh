/**
 * @file
 * Debug-gated simulator invariant auditor.
 *
 * Model components expose `audit(AuditReport &) const` methods that
 * cross-check internal invariants (mapping bijectivity, remap-table
 * consistency, copyback stage legality, NoC credit conservation, ...).
 * An Auditor collects such checks by name and runs them periodically
 * from the event loop via Engine::setAuditHook, so every figure run
 * and test exercises the checks at event-boundary granularity.
 *
 * Two modes:
 *  - Abort (the DSSD_AUDIT build default): the first violation
 *    panic()s with a precise diagnostic naming the check, the
 *    simulation tick and the broken invariant.
 *  - Report: violations accumulate and are queryable, which is what
 *    the auditor's own unit tests use to assert that seeded
 *    corruptions are detected with the expected diagnostics.
 *
 * The framework is always compiled; only the automatic wiring inside
 * Ssd / DynamicSuperblockEngine is gated by the DSSD_AUDIT CMake
 * option, so production builds pay nothing beyond one dead branch per
 * event.
 */

#ifndef DSSD_SIM_AUDIT_HH
#define DSSD_SIM_AUDIT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hh"

namespace dssd
{

/** What the auditor does on a violated invariant. */
enum class AuditMode
{
    Abort,  ///< panic() with the diagnostic on first violation
    Report, ///< record the violation and keep checking
};

/** One detected invariant violation. */
struct AuditViolation
{
    std::string check;  ///< name the check was registered under
    std::string detail; ///< human-readable diagnostic
    Tick tick = 0;      ///< simulation time of detection (0 if detached)
};

class Auditor;

/**
 * Sink a check writes violations into. In Abort mode the first fail()
 * terminates the simulation; in Report mode failures accumulate on the
 * owning Auditor.
 */
class AuditReport
{
  public:
    /** Report a violated invariant (printf-style diagnostic). */
    void fail(const char *fmt, ...) __attribute__((format(printf, 2, 3)));

    /** Violations recorded so far by the current run. */
    std::size_t failures() const { return _failures; }

  private:
    friend class Auditor;
    AuditReport(Auditor &auditor, const std::string &check)
        : _auditor(auditor), _check(check)
    {
    }

    Auditor &_auditor;
    const std::string &_check;
    std::size_t _failures = 0;
};

/**
 * A registry of named invariant checks plus the engine plumbing that
 * runs them every N executed events.
 */
class Auditor
{
  public:
    using Check = std::function<void(AuditReport &)>;

    explicit Auditor(AuditMode mode = AuditMode::Abort) : _mode(mode) {}
    ~Auditor();
    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    /**
     * Register @p fn under @p name.
     * @return an id usable with removeCheck().
     */
    std::size_t addCheck(std::string name, Check fn);

    /** Unregister a check (no-op if already removed). */
    void removeCheck(std::size_t id);

    /**
     * Run every registered check once.
     * @return violations found by this run (Abort mode never returns
     *         on a violation).
     */
    std::size_t run();

    /**
     * Hook this auditor into @p engine so run() fires every
     * @p every_events executed events. Replaces any hook previously
     * installed on the engine.
     */
    void attach(Engine &engine, std::uint64_t every_events = 8192);

    /** Remove the engine hook installed by attach(). */
    void detach();

    AuditMode mode() const { return _mode; }
    std::size_t checkCount() const { return _checks.size(); }

    /** Times run() has executed (manually or via the engine hook). */
    std::uint64_t runs() const { return _runs; }

    /** Violations accumulated in Report mode. */
    const std::vector<AuditViolation> &violations() const
    {
        return _violations;
    }

    void clearViolations() { _violations.clear(); }

  private:
    friend class AuditReport;
    void recordFailure(const std::string &check, std::string detail);

    struct Entry
    {
        std::size_t id;
        std::string name;
        Check fn;
    };

    AuditMode _mode;
    std::vector<Entry> _checks;
    std::vector<AuditViolation> _violations;
    std::size_t _nextId = 0;
    std::uint64_t _runs = 0;
    Engine *_engine = nullptr;
};

} // namespace dssd

#endif // DSSD_SIM_AUDIT_HH
