/**
 * @file
 * Fixed-size block recycling for per-request hot-path state.
 *
 * The host datapath allocates one shared LatencyBreakdown per page
 * operation; with plain make_shared every page op pays a heap
 * round-trip. BlockPool recycles the shared_ptr control-block-plus-
 * payload nodes through a freelist backed by chunked slabs, and
 * PoolAllocator adapts it to std::allocate_shared, so steady-state
 * allocation is a pointer pop/push.
 *
 * Ownership: allocator copies stored in control blocks hold the pool
 * through PoolPtr, a deliberately non-atomic refcounted handle, so a
 * pooled shared_ptr parked in a pending engine event can outlive the
 * component that minted it without paying an atomic pair per
 * allocation (the reason this beats std::shared_ptr<BlockPool>).
 *
 * Not thread-safe by design: a pool belongs to one model component
 * (e.g. one Ssd) and is only touched from that component's engine
 * events. Under the engine group (sim/engine_group.hh) a shard's
 * events all run inside its barrier-ordered phase, so a per-shard
 * pool — refcount included — never sees two threads at once.
 */

#ifndef DSSD_SIM_POOL_HH
#define DSSD_SIM_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace dssd
{

/**
 * Freelist of equally-sized blocks, grown in chunks and never shrunk.
 * The block size locks in on first use; a request for any other size
 * (never hit through PoolAllocator in practice) falls through to the
 * global heap.
 */
class BlockPool
{
  public:
    BlockPool() = default;
    BlockPool(const BlockPool &) = delete;
    BlockPool &operator=(const BlockPool &) = delete;

    void *
    allocate(std::size_t bytes)
    {
        if (_blockBytes == 0)
            _blockBytes = bytes;
        if (bytes != _blockBytes)
            return ::operator new(bytes);
        if (_free.empty())
            grow();
        void *p = _free.back();
        _free.pop_back();
        return p;
    }

    void
    deallocate(void *p, std::size_t bytes)
    {
        if (bytes != _blockBytes) {
            ::operator delete(p);
            return;
        }
        _free.push_back(p);
    }

    /** Total blocks owned (free + in flight); grows on demand. */
    std::size_t capacity() const { return _capacity; }

  private:
    friend class PoolPtr;

    static constexpr std::size_t kChunkBlocks = 256;

    void
    grow()
    {
        // Respect max_align_t like operator new does; the shared_ptr
        // control node has no stricter requirement.
        std::size_t stride =
            (_blockBytes + alignof(std::max_align_t) - 1) /
            alignof(std::max_align_t) * alignof(std::max_align_t);
        _chunks.push_back(
            std::make_unique<unsigned char[]>(stride * kChunkBlocks));
        unsigned char *base = _chunks.back().get();
        for (std::size_t i = 0; i < kChunkBlocks; ++i)
            _free.push_back(base + i * stride);
        _capacity += kChunkBlocks;
    }

    std::size_t _blockBytes = 0;
    std::size_t _capacity = 0;
    std::vector<void *> _free;
    std::vector<std::unique_ptr<unsigned char[]>> _chunks;

    std::size_t _refs = 0; ///< managed by PoolPtr (single-threaded)
};

/**
 * Non-atomic shared handle to a BlockPool. Copies are plain integer
 * bumps, which is what keeps the pooled-allocation fast path cheaper
 * than malloc; the single-threaded-confinement contract above is what
 * makes that sound.
 */
class PoolPtr
{
  public:
    /** A handle to a fresh pool (refcount 1). */
    static PoolPtr
    make()
    {
        return PoolPtr(new BlockPool);
    }

    PoolPtr(const PoolPtr &o) : _p(o._p) { ++_p->_refs; }

    PoolPtr &
    operator=(const PoolPtr &o)
    {
        PoolPtr tmp(o);
        std::swap(_p, tmp._p);
        return *this;
    }

    ~PoolPtr()
    {
        if (--_p->_refs == 0)
            delete _p;
    }

    BlockPool &operator*() const { return *_p; }
    BlockPool *operator->() const { return _p; }
    BlockPool *get() const { return _p; }

  private:
    explicit PoolPtr(BlockPool *p) : _p(p) { _p->_refs = 1; }

    BlockPool *_p;
};

/**
 * Minimal allocator over a PoolPtr, for std::allocate_shared. The
 * allocator copy stored in each control block pins the pool until the
 * last pooled node is destroyed.
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    explicit PoolAllocator(PoolPtr pool) : _pool(std::move(pool)) {}

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) : _pool(other._pool)
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(_pool->allocate(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        _pool->deallocate(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &other) const
    {
        return _pool.get() == other._pool.get();
    }

    template <typename U>
    bool
    operator!=(const PoolAllocator<U> &other) const
    {
        return _pool.get() != other._pool.get();
    }

    /// public so the rebind converting ctor sees it across T/U
    PoolPtr _pool;
};

/** allocate_shared from @p pool: pooled control block + payload. */
template <typename T, typename... Args>
std::shared_ptr<T>
makePooled(const PoolPtr &pool, Args &&...args)
{
    return std::allocate_shared<T>(PoolAllocator<T>(pool),
                                   std::forward<Args>(args)...);
}

} // namespace dssd

#endif // DSSD_SIM_POOL_HH
