#include "sim/trace.hh"

#include <cstdarg>

#include "sim/log.hh"

namespace dssd
{

namespace
{

/** Ticks (ns) to the trace_event microsecond timebase. */
double
toUs(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

} // namespace

Tracer::Tracer(const std::string &path)
{
    _file = std::fopen(path.c_str(), "w");
    if (!_file)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", _file);
}

Tracer::~Tracer()
{
    finish();
}

void
Tracer::emit(const char *fmt, ...)
{
    if (!_file)
        panic("trace emission after finish()");
    std::fputs(_first ? "\n" : ",\n", _file);
    _first = false;
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(_file, fmt, args);
    va_end(args);
    ++_events;
}

int
Tracer::process(const std::string &name)
{
    auto it = _pids.find(name);
    if (it != _pids.end())
        return it->second;
    int pid = _nextPid++;
    _pids.emplace(name, pid);
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,"
         "\"args\":{\"name\":\"%s\"}}",
         pid, name.c_str());
    return pid;
}

int
Tracer::lane(int pid, const std::string &name)
{
    auto key = std::make_pair(pid, name);
    auto it = _lanes.find(key);
    if (it != _lanes.end())
        return it->second;
    int tid = ++_nextTid[pid];
    _lanes.emplace(std::move(key), tid);
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,"
         "\"args\":{\"name\":\"%s\"}}",
         pid, tid, name.c_str());
    return tid;
}

void
Tracer::slice(int pid, int tid, const char *name, const char *cat,
              Tick start, Tick end)
{
    emit("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
         "\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
         pid, tid, name, cat, toUs(start),
         toUs(end >= start ? end - start : 0));
}

void
Tracer::asyncBegin(int pid, const char *cat, const char *name,
                   std::uint64_t id, Tick when)
{
    emit("{\"ph\":\"b\",\"pid\":%d,\"tid\":0,\"name\":\"%s\","
         "\"cat\":\"%s\",\"id\":\"0x%llx\",\"ts\":%.3f}",
         pid, name, cat, static_cast<unsigned long long>(id),
         toUs(when));
}

void
Tracer::asyncEnd(int pid, const char *cat, const char *name,
                 std::uint64_t id, Tick when)
{
    emit("{\"ph\":\"e\",\"pid\":%d,\"tid\":0,\"name\":\"%s\","
         "\"cat\":\"%s\",\"id\":\"0x%llx\",\"ts\":%.3f}",
         pid, name, cat, static_cast<unsigned long long>(id),
         toUs(when));
}

void
Tracer::counter(int pid, const char *name, Tick when, double value)
{
    emit("{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"name\":\"%s\","
         "\"ts\":%.3f,\"args\":{\"value\":%.17g}}",
         pid, name, toUs(when), value);
}

void
Tracer::finish()
{
    if (!_file)
        return;
    std::fputs("\n]}\n", _file);
    std::fclose(_file);
    _file = nullptr;
}

} // namespace dssd
