#include "sim/trace.hh"

#include <cstdarg>

#include "sim/log.hh"

namespace dssd
{

namespace
{

/** Ticks (ns) to the trace_event microsecond timebase. */
double
toUs(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

} // namespace

Tracer::Tracer(const std::string &path)
{
    _file = std::fopen(path.c_str(), "w");
    if (!_file)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", _file);
}

Tracer::Tracer() : _buffered(true) {}

Tracer::~Tracer()
{
    finish();
}

void
Tracer::emit(const char *fmt, ...)
{
    if (!_file)
        panic("trace emission after finish()");
    std::fputs(_first ? "\n" : ",\n", _file);
    _first = false;
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(_file, fmt, args);
    va_end(args);
    ++_events;
}

int
Tracer::process(const std::string &name)
{
    auto it = _pids.find(name);
    if (it != _pids.end())
        return it->second;
    int pid = _nextPid++;
    _pids.emplace(name, pid);
    if (_buffered) {
        _pidNames.push_back(name);
        return pid;
    }
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,"
         "\"args\":{\"name\":\"%s\"}}",
         pid, name.c_str());
    return pid;
}

int
Tracer::lane(int pid, const std::string &name)
{
    auto key = std::make_pair(pid, name);
    auto it = _lanes.find(key);
    if (it != _lanes.end())
        return it->second;
    int tid = ++_nextTid[pid];
    _lanes.emplace(key, tid);
    if (_buffered) {
        _laneNames.emplace(std::make_pair(pid, tid), name);
        return tid;
    }
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,"
         "\"args\":{\"name\":\"%s\"}}",
         pid, tid, name.c_str());
    return tid;
}

void
Tracer::slice(int pid, int tid, const char *name, const char *cat,
              Tick start, Tick end)
{
    if (_buffered) {
        ++_events;
        _records.push_back(Record{Record::Kind::Slice, pid, tid, name,
                                  cat, 0, start, end, 0.0});
        return;
    }
    emit("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
         "\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
         pid, tid, name, cat, toUs(start),
         toUs(end >= start ? end - start : 0));
}

void
Tracer::asyncBegin(int pid, const char *cat, const char *name,
                   std::uint64_t id, Tick when)
{
    if (_buffered) {
        ++_events;
        _records.push_back(Record{Record::Kind::AsyncBegin, pid, 0,
                                  name, cat, id, when, 0, 0.0});
        return;
    }
    emit("{\"ph\":\"b\",\"pid\":%d,\"tid\":0,\"name\":\"%s\","
         "\"cat\":\"%s\",\"id\":\"0x%llx\",\"ts\":%.3f}",
         pid, name, cat, static_cast<unsigned long long>(id),
         toUs(when));
}

void
Tracer::asyncEnd(int pid, const char *cat, const char *name,
                 std::uint64_t id, Tick when)
{
    if (_buffered) {
        ++_events;
        _records.push_back(Record{Record::Kind::AsyncEnd, pid, 0,
                                  name, cat, id, when, 0, 0.0});
        return;
    }
    emit("{\"ph\":\"e\",\"pid\":%d,\"tid\":0,\"name\":\"%s\","
         "\"cat\":\"%s\",\"id\":\"0x%llx\",\"ts\":%.3f}",
         pid, name, cat, static_cast<unsigned long long>(id),
         toUs(when));
}

void
Tracer::counter(int pid, const char *name, Tick when, double value)
{
    if (_buffered) {
        ++_events;
        _records.push_back(Record{Record::Kind::Counter, pid, 0, name,
                                  std::string(), 0, when, 0, value});
        return;
    }
    emit("{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"name\":\"%s\","
         "\"ts\":%.3f,\"args\":{\"value\":%.17g}}",
         pid, name, toUs(when), value);
}

void
Tracer::drainInto(Tracer &dst)
{
    if (!_buffered)
        panic("drainInto() on a file-backed tracer");
    for (const Record &r : _records) {
        // Rebuild the destination's track ids by name. pid 0 means
        // the emitter never named a process (it passed a raw id);
        // keep it verbatim so such events stay greppable.
        int pid = r.pid;
        if (r.pid >= 1 &&
            r.pid <= static_cast<int>(_pidNames.size()))
            pid = dst.process(_pidNames[r.pid - 1]);
        int tid = r.tid;
        auto lane_it = _laneNames.find({r.pid, r.tid});
        if (lane_it != _laneNames.end())
            tid = dst.lane(pid, lane_it->second);
        switch (r.kind) {
        case Record::Kind::Slice:
            dst.slice(pid, tid, r.name.c_str(), r.cat.c_str(),
                      r.start, r.end);
            break;
        case Record::Kind::AsyncBegin:
            dst.asyncBegin(pid, r.cat.c_str(), r.name.c_str(), r.id,
                           r.start);
            break;
        case Record::Kind::AsyncEnd:
            dst.asyncEnd(pid, r.cat.c_str(), r.name.c_str(), r.id,
                         r.start);
            break;
        case Record::Kind::Counter:
            dst.counter(pid, r.name.c_str(), r.start, r.value);
            break;
        }
    }
    _records.clear();
}

void
Tracer::finish()
{
    if (!_file)
        return;
    std::fputs("\n]}\n", _file);
    std::fclose(_file);
    _file = nullptr;
}

} // namespace dssd
