/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user/configuration errors, warn()/inform()
 * for status messages that never stop the simulation.
 */

#ifndef DSSD_SIM_LOG_HH
#define DSSD_SIM_LOG_HH

#include <cstdarg>
#include <string>

namespace dssd
{

/** Verbosity levels for inform()/debug() output. */
enum class LogLevel { Quiet, Normal, Verbose, Debug };

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

/** Get the global log verbosity. */
LogLevel logLevel();

/**
 * Terminate due to an internal simulator bug. Prints the message to
 * stderr and aborts (may dump core).
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to a user/configuration error. Prints the message to
 * stderr and exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but non-fatal behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informative status message (suppressed under Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dssd

#endif // DSSD_SIM_LOG_HH
