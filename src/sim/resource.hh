/**
 * @file
 * Shared-resource primitives for the discrete-event models.
 *
 * Two primitives cover every shared component in the SSD model:
 *
 *  - BandwidthResource: a serialized channel (system bus, flash channel
 *    bus, NoC link, DRAM port, ECC pipeline). Transfers are granted in
 *    FIFO order; each occupies the resource for bytes/bandwidth ticks.
 *    Per-tag busy accounting lets us attribute utilization to I/O vs GC
 *    traffic, which is what Fig 2(c,d) and Fig 7(b) of the paper plot.
 *
 *  - SlotResource: a counting semaphore with FIFO wakeup (router input
 *    buffers, dBUF entries, page-buffer entries, outstanding-command
 *    limits).
 */

#ifndef DSSD_SIM_RESOURCE_HH
#define DSSD_SIM_RESOURCE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/types.hh"

namespace dssd
{

class StatRegistry;

/** Traffic tags used for per-class utilization accounting. */
enum TrafficTag : int
{
    tagIo = 0,     ///< host I/O traffic
    tagGc = 1,     ///< garbage-collection / copyback traffic
    tagMeta = 2,   ///< metadata / control traffic
    numTrafficTags = 3,
};

/**
 * Records busy intervals into fixed-size windows so that per-window
 * utilization (busy fraction) can be reported as a time series.
 */
class UtilizationRecorder
{
  public:
    /**
     * @param window Window width in ticks (e.g., 1 ms for Fig 2).
     * @param num_tags Number of traffic tags tracked.
     */
    explicit UtilizationRecorder(Tick window, int num_tags = numTrafficTags);

    /** Account a busy interval [start, end) for @p tag. */
    void addBusy(Tick start, Tick end, int tag);

    /** Busy fraction per window for @p tag. */
    std::vector<double> series(int tag) const;

    /** Busy fraction over [from, to) for @p tag. */
    double busyFraction(int tag, Tick from, Tick to) const;

    Tick window() const { return _window; }

    /** Number of windows with any recorded activity. */
    std::size_t numWindows() const;

  private:
    void ensureWindows(std::size_t count);

    Tick _window;
    int _numTags;
    /// _busy[tag][w] = busy ticks of window w attributed to tag.
    std::vector<std::vector<Tick>> _busy;
};

/**
 * A FIFO-arbitrated serialized channel with finite bandwidth.
 *
 * The grant discipline is first-come-first-served: a transfer begins at
 * max(now, busyUntil) and holds the channel for ceil(bytes/bandwidth)
 * ticks. This is the classic "busy-until" bus model used by
 * SimpleSSD-style simulators.
 */
class BandwidthResource
{
  public:
    using Callback = Engine::Callback;

    BandwidthResource(Engine &engine, std::string name, BytesPerTick bw);

    /**
     * Reserve the channel for a @p bytes transfer and invoke @p done at
     * completion time.
     * @return the completion tick.
     */
    Tick transfer(std::uint64_t bytes, int tag, Callback done);

    /**
     * Reserve the channel without a completion callback.
     * @return the completion tick (caller schedules dependents).
     */
    Tick reserve(std::uint64_t bytes, int tag);

    /**
     * Reserve the channel but start no earlier than @p earliest (used
     * to coordinate simultaneous multi-resource reservations, e.g. the
     * crossbar's input+output ports).
     * @return the completion tick.
     */
    Tick reserveFrom(Tick earliest, std::uint64_t bytes, int tag);

    /** Duration the channel would be held for a @p bytes transfer. */
    Tick duration(std::uint64_t bytes) const;

    /** Time at which the channel becomes free. */
    Tick busyUntil() const { return _busyUntil; }

    /** Queueing delay a transfer issued now would see before starting. */
    Tick queueDelay() const;

    void setBandwidth(BytesPerTick bw);
    BytesPerTick bandwidth() const { return _bandwidth; }

    /** Attach a windowed utilization recorder (not owned). */
    void attachRecorder(UtilizationRecorder *rec) { _recorder = rec; }

    /** Total ticks the channel was held for @p tag transfers. */
    Tick busyTicks(int tag) const;

    /** Total ticks the channel was held, all tags. */
    Tick totalBusyTicks() const;

    /** Total bytes moved for @p tag. */
    std::uint64_t bytesMoved(int tag) const;

    /** Number of transfers granted. */
    std::uint64_t transfers() const { return _transfers; }

    const std::string &name() const { return _name; }

    /** Reset accounting (not the busy-until horizon). */
    void resetStats();

    /** Register transfer/byte/busy accounting under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    Engine &_engine;
    std::string _name;
    BytesPerTick _bandwidth;
    Tick _busyUntil = 0;
    std::uint64_t _transfers = 0;
    std::vector<Tick> _busyTicks;
    std::vector<std::uint64_t> _bytes;
    UtilizationRecorder *_recorder = nullptr;
    mutable int _tracePid = -1; ///< cached trace rows (see reserveFrom)
    mutable int _traceTid = -1;
};

/**
 * Counting semaphore with FIFO wakeup. Used for finite buffers: router
 * input buffers (credits), dBUF entries and page-buffer entries.
 */
class SlotResource
{
  public:
    using Callback = Engine::Callback;

    SlotResource(Engine &engine, std::string name, unsigned slots);

    /** Grab a slot now if one is free. */
    bool tryAcquire();

    /**
     * Request a slot; @p granted runs as soon as one is available
     * (immediately, at the current tick, if free).
     */
    void acquire(Callback granted);

    /** Return a slot; wakes the oldest waiter, if any. */
    void release();

    unsigned capacity() const { return _capacity; }
    unsigned freeSlots() const { return _free; }
    std::size_t waiters() const { return _waiters.size(); }

    /** High-water mark of concurrently held slots. */
    unsigned maxHeld() const { return _maxHeld; }

    const std::string &name() const { return _name; }

    /** Register capacity/occupancy accounting under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    /** Trace the current held-slot count as a counter sample. */
    void traceOccupancy();

    Engine &_engine;
    std::string _name;
    unsigned _capacity;
    unsigned _free;
    unsigned _maxHeld = 0;
    std::deque<Callback> _waiters;
    mutable int _tracePid = -1; ///< cached trace row (see traceOccupancy)
};

} // namespace dssd

#endif // DSSD_SIM_RESOURCE_HH
