/**
 * @file
 * Statistics collection: scalar counters, sample distributions with
 * exact percentiles, and windowed rate series (bandwidth-over-time).
 */

#ifndef DSSD_SIM_STATS_HH
#define DSSD_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace dssd
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    explicit Counter(std::string name = "") : _name(std::move(name)) {}

    void inc(std::uint64_t by = 1) { _value += by; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::uint64_t _value = 0;
};

/**
 * A distribution of samples with exact order statistics.
 *
 * Samples are stored verbatim with reserve-ahead growth; percentile()
 * runs nth_element selection on a cached scratch copy (refreshed lazily
 * after new samples) instead of fully sorting. Exact percentiles matter
 * here: the paper's headline results are p99/p99.9 tail latencies.
 * mean()/min()/max() are O(1) streaming accumulators, so per-window
 * bookkeeping never touches the sample vector.
 *
 * On an empty distribution every accessor deterministically returns
 * 0.0 (never reads the backing storage).
 */
class SampleStat
{
  public:
    explicit SampleStat(std::string name = "") : _name(std::move(name)) {}

    void sample(double v);

    /** Pre-size storage for @p n samples (optional; growth is automatic). */
    void reserve(std::size_t n) { _samples.reserve(n); }

    std::uint64_t count() const { return _samples.size(); }
    double sum() const { return _sum; }
    double mean() const;
    double min() const;
    double max() const;

    /**
     * Exact percentile via nearest-rank.
     * @param p in [0, 100].
     */
    double percentile(double p) const;

    /** Population standard deviation. */
    double stddev() const;

    void reset();
    const std::string &name() const { return _name; }
    const std::vector<double> &samples() const { return _samples; }

  private:
    std::string _name;
    std::vector<double> _samples;
    mutable std::vector<double> _scratch; ///< selection workspace
    mutable bool _scratchValid = false;
    double _sum = 0.0;
    double _min = 0.0; ///< streaming; valid iff !_samples.empty()
    double _max = 0.0;
};

/**
 * Accumulates event "weights" (e.g., bytes completed) into fixed time
 * windows, yielding a rate series such as I/O bandwidth per millisecond
 * (the y-axis of Fig 2(a,b)).
 */
class RateSeries
{
  public:
    /** @param window Window width in ticks. */
    explicit RateSeries(Tick window, std::string name = "");

    /** Add @p weight at time @p when. */
    void add(Tick when, double weight);

    /** Sum of weights per window. */
    const std::vector<double> &windows() const { return _sums; }

    /** Rate per window in weight-units per second. */
    std::vector<double> ratePerSec() const;

    /** Total weight over [from, to) divided by the interval in seconds. */
    double averageRate(Tick from, Tick to) const;

    double total() const { return _total; }
    Tick window() const { return _window; }
    const std::string &name() const { return _name; }

  private:
    Tick _window;
    std::string _name;
    std::vector<double> _sums;
    double _total = 0.0;
};

/** Format helper: "12.3 GB/s"-style bandwidth string. */
std::string formatBandwidth(double bytes_per_sec);

/** Format helper: latency in the most readable unit (ns/us/ms). */
std::string formatLatency(double ns);

} // namespace dssd

#endif // DSSD_SIM_STATS_HH
