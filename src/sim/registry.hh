/**
 * @file
 * Hierarchical statistics registry.
 *
 * Modules register their Counters, SampleStats, RateSeries, and scalar
 * gauges under dotted paths ("ssd0.ch3.cd.dbuf_out.max_held"); one
 * call then dumps every registered statistic as an aligned text table
 * or a JSON document. The registry borrows the registered objects —
 * it must not outlive the model it describes — and never copies
 * sample data, so registration is free until a dump is requested.
 *
 * This is the SimpleSSD-style per-component stat tree: benches and
 * the CLI build a registry after a run (Ssd::registerStats,
 * QueueDriver::registerStats) and dump it behind --stats FILE.
 */

#ifndef DSSD_SIM_REGISTRY_HH
#define DSSD_SIM_REGISTRY_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace dssd
{

/** Borrowing registry of named statistics (see file comment). */
class StatRegistry
{
  public:
    /** Gauge callback sampled at dump time. */
    using ScalarFn = std::function<double()>;

    /** Register @p c under @p path. Paths are dotted, unique, and
     *  non-empty; duplicates are fatal(). */
    void addCounter(const std::string &path, const Counter *c);
    void addSample(const std::string &path, const SampleStat *s);
    void addRate(const std::string &path, const RateSeries *r);

    /** Register a scalar gauge evaluated when the registry is
     *  dumped (wraps plain integer accessors of model classes). */
    void addScalar(const std::string &path, ScalarFn fn);

    std::size_t size() const { return _entries.size(); }
    bool has(const std::string &path) const;

    /**
     * Value of the scalar/counter at @p path (SampleStats report
     * their count; RateSeries their total). Fatal() when absent —
     * intended for tests and spot checks.
     */
    double value(const std::string &path) const;

    /** All registered paths, sorted. */
    std::vector<std::string> paths() const;

    /** Aligned "path = value" table, sorted by path. */
    void dumpText(std::FILE *out) const;

    /** The JSON document written by writeJson(). */
    std::string json() const;

    /** Write the JSON document to @p path ("-" = stdout);
     *  fatal() if the file cannot be opened. */
    void writeJson(const std::string &path) const;

  private:
    enum class Kind { CounterStat, Sample, Rate, Scalar };

    struct Entry
    {
        std::string path;
        Kind kind;
        const Counter *counter = nullptr;
        const SampleStat *sample = nullptr;
        const RateSeries *rate = nullptr;
        ScalarFn scalar;
    };

    void insert(Entry entry);
    const Entry *find(const std::string &path) const;
    /** Indices of _entries sorted by path. */
    std::vector<std::size_t> sortedIndex() const;

    std::vector<Entry> _entries;
};

} // namespace dssd

#endif // DSSD_SIM_REGISTRY_HH
