#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dssd
{

namespace
{

LogLevel globalLevel = LogLevel::Normal;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace dssd
