#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/log.hh"

namespace dssd
{

//
// SampleStat
//

void
SampleStat::sample(double v)
{
    // Reserve ahead in large steps so steady sampling amortizes to a
    // handful of reallocations over a whole run.
    if (_samples.size() == _samples.capacity())
        _samples.reserve(
            _samples.empty() ? 1024 : _samples.capacity() * 2);
    if (_samples.empty()) {
        _min = v;
        _max = v;
    } else {
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }
    _samples.push_back(v);
    _sum += v;
    _scratchValid = false;
}

double
SampleStat::mean() const
{
    if (_samples.empty())
        return 0.0;
    return _sum / static_cast<double>(_samples.size());
}

double
SampleStat::min() const
{
    if (_samples.empty())
        return 0.0;
    return _min;
}

double
SampleStat::max() const
{
    if (_samples.empty())
        return 0.0;
    return _max;
}

double
SampleStat::percentile(double p) const
{
    if (_samples.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile %f out of range", p);
    if (!_scratchValid) {
        _scratch = _samples;
        _scratchValid = true;
    }
    // Nearest-rank: smallest value with at least ceil(p/100*N) samples
    // at or below it. Selection, not a full sort: each query is O(n),
    // and the partially ordered scratch persists across queries.
    std::size_t n = _scratch.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    auto nth = _scratch.begin() + static_cast<std::ptrdiff_t>(rank - 1);
    std::nth_element(_scratch.begin(), nth, _scratch.end());
    return *nth;
}

double
SampleStat::stddev() const
{
    if (_samples.size() < 2)
        return 0.0;
    double m = mean();
    double acc = 0.0;
    for (double v : _samples)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(_samples.size()));
}

void
SampleStat::reset()
{
    _samples.clear();
    _scratch.clear();
    _scratchValid = false;
    _sum = 0.0;
    _min = 0.0;
    _max = 0.0;
}

//
// RateSeries
//

RateSeries::RateSeries(Tick window, std::string name)
    : _window(window), _name(std::move(name))
{
    if (window == 0)
        fatal("RateSeries window must be > 0");
}

void
RateSeries::add(Tick when, double weight)
{
    std::size_t w = static_cast<std::size_t>(when / _window);
    if (_sums.size() <= w)
        _sums.resize(w + 1, 0.0);
    _sums[w] += weight;
    _total += weight;
}

std::vector<double>
RateSeries::ratePerSec() const
{
    std::vector<double> out;
    out.reserve(_sums.size());
    double window_sec = ticksToSec(_window);
    for (double s : _sums)
        out.push_back(s / window_sec);
    return out;
}

double
RateSeries::averageRate(Tick from, Tick to) const
{
    if (to <= from)
        return 0.0;
    std::size_t w0 = static_cast<std::size_t>(from / _window);
    std::size_t w1 = static_cast<std::size_t>((to - 1) / _window);
    double sum = 0.0;
    for (std::size_t w = w0; w <= w1 && w < _sums.size(); ++w)
        sum += _sums[w];
    return sum / ticksToSec(to - from);
}

//
// Formatting helpers
//

std::string
formatBandwidth(double bytes_per_sec)
{
    if (bytes_per_sec >= 1e9)
        return strformat("%.2f GB/s", bytes_per_sec / 1e9);
    if (bytes_per_sec >= 1e6)
        return strformat("%.2f MB/s", bytes_per_sec / 1e6);
    if (bytes_per_sec >= 1e3)
        return strformat("%.2f KB/s", bytes_per_sec / 1e3);
    return strformat("%.2f B/s", bytes_per_sec);
}

std::string
formatLatency(double ns)
{
    if (ns >= 1e6)
        return strformat("%.2f ms", ns / 1e6);
    if (ns >= 1e3)
        return strformat("%.2f us", ns / 1e3);
    return strformat("%.0f ns", ns);
}

} // namespace dssd
