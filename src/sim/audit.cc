#include "sim/audit.hh"

#include <cstdarg>
#include <cstdio>
#include <utility>

#include "sim/log.hh"

namespace dssd
{

void
AuditReport::fail(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    ++_failures;
    _auditor.recordFailure(_check, buf);
}

Auditor::~Auditor()
{
    detach();
}

std::size_t
Auditor::addCheck(std::string name, Check fn)
{
    std::size_t id = _nextId++;
    _checks.push_back(Entry{id, std::move(name), std::move(fn)});
    return id;
}

void
Auditor::removeCheck(std::size_t id)
{
    for (auto it = _checks.begin(); it != _checks.end(); ++it) {
        if (it->id == id) {
            _checks.erase(it);
            return;
        }
    }
}

void
Auditor::recordFailure(const std::string &check, std::string detail)
{
    Tick t = _engine ? _engine->now() : 0;
    if (_mode == AuditMode::Abort) {
        panic("invariant audit '%s' failed at tick %llu: %s",
              check.c_str(), static_cast<unsigned long long>(t),
              detail.c_str());
    }
    _violations.push_back(AuditViolation{check, std::move(detail), t});
}

std::size_t
Auditor::run()
{
    std::size_t before = _violations.size();
    ++_runs;
    for (const Entry &e : _checks) {
        AuditReport report(*this, e.name);
        e.fn(report);
    }
    return _violations.size() - before;
}

void
Auditor::attach(Engine &engine, std::uint64_t every_events)
{
    detach();
    _engine = &engine;
    engine.setAuditHook(every_events, [this] { run(); });
}

void
Auditor::detach()
{
    if (_engine) {
        _engine->clearAuditHook();
        _engine = nullptr;
    }
}

} // namespace dssd
