#include "sim/engine_group.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

EngineGroup::EngineGroup(Engine &host, unsigned shards, Tick lookahead,
                         unsigned threads)
    : _host(host), _lookahead(lookahead)
{
    if (shards == 0)
        fatal("EngineGroup needs at least one shard engine");
    if (lookahead == 0)
        fatal("EngineGroup needs a positive lookahead (the minimum "
              "host-to-shard latency); zero would let the host reach "
              "into windows the shards have already simulated");
    _shards.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        _shards.push_back(std::make_unique<Shard>());
    _mergePos.resize(shards, 0);

    unsigned workers = std::min(threads, shards);
    if (workers > 1) {
        _threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            _threads.emplace_back(
                [this, w, workers] { workerMain(w, workers); });
        }
    }
}

EngineGroup::~EngineGroup()
{
    if (!_threads.empty()) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _shutdown = true;
        }
        _wake.notify_all();
        for (std::thread &t : _threads)
            t.join();
    }
}

Engine &
EngineGroup::shardEngine(unsigned s)
{
    if (s >= _shards.size())
        panic("shard engine %u out of range (%zu shards)", s,
              _shards.size());
    return _shards[s]->engine;
}

void
EngineGroup::postToShard(unsigned s, Tick delay, Callback fn)
{
    if (s >= _shards.size())
        panic("postToShard: shard %u out of range", s);
    if (delay < _lookahead) {
        panic("postToShard: delay %llu below the lookahead %llu; a "
              "shorter cross-domain latency would require a smaller "
              "epoch window",
              static_cast<unsigned long long>(delay),
              static_cast<unsigned long long>(_lookahead));
    }
    ++_toShards;
    _shards[s]->inbox.push_back(
        Message{_host.now() + delay, std::move(fn)});
}

void
EngineGroup::postToHost(unsigned s, Callback fn)
{
    // Runs on shard s's phase; the outbox is private to that shard
    // until the barrier publishes it to the coordinator.
    Shard &sh = *_shards[s];
    sh.outbox.push_back(Completion{sh.engine.now(), std::move(fn)});
}

void
EngineGroup::shardPhase(Shard &sh, Tick bound)
{
    for (Message &m : sh.inbox)
        sh.engine.scheduleAbs(m.due, std::move(m.fn));
    sh.inbox.clear();
    sh.engine.runUntil(bound);
}

void
EngineGroup::workerMain(unsigned worker, unsigned stride)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _wake.wait(lock, [this, seen] {
            return _shutdown || _generation != seen;
        });
        if (_shutdown)
            return;
        seen = _generation;
        Tick bound = _phaseBound;
        lock.unlock();
        // Static shard-to-worker assignment: determinism never depends
        // on it (shards are isolated), but it keeps each engine's pool
        // memory on one thread.
        for (unsigned s = worker; s < _shards.size();
             s += stride)
            shardPhase(*_shards[s], bound);
        lock.lock();
        if (--_running == 0)
            _idle.notify_all();
    }
}

void
EngineGroup::parallelPhase(Tick bound)
{
    if (_threads.empty()) {
        // Serial reference: same protocol, shard order 0..N-1.
        for (auto &sh : _shards)
            shardPhase(*sh, bound);
        return;
    }
    std::unique_lock<std::mutex> lock(_mutex);
    _phaseBound = bound;
    _running = static_cast<unsigned>(_threads.size());
    ++_generation;
    _wake.notify_all();
    _idle.wait(lock, [this] { return _running == 0; });
}

void
EngineGroup::mergeCompletions()
{
    // Deterministic k-way merge of the shard outboxes into the host
    // engine. Each outbox is already time-sorted (a shard's clock is
    // monotone), so repeatedly taking the earliest head — breaking
    // tick ties by the lowest shard index — schedules completions in
    // (tick, shard, emission order). The host engine's FIFO-per-tick
    // ordering then replays them identically for any worker count.
    std::fill(_mergePos.begin(), _mergePos.end(), 0);
    for (;;) {
        std::size_t best = _shards.size();
        Tick best_when = maxTick;
        for (std::size_t s = 0; s < _shards.size(); ++s) {
            const std::vector<Completion> &out = _shards[s]->outbox;
            std::size_t pos = _mergePos[s];
            if (pos < out.size() && out[pos].when < best_when) {
                best_when = out[pos].when;
                best = s;
            }
        }
        if (best == _shards.size())
            break;
        Completion &c = _shards[best]->outbox[_mergePos[best]++];
        ++_toHost;
        _host.scheduleAbs(c.when, std::move(c.fn));
    }
    for (auto &sh : _shards)
        sh->outbox.clear();
}

void
EngineGroup::attachTracer(Tracer *host)
{
    if (!host)
        panic("attachTracer: null host tracer");
    if (_hostTracer)
        panic("attachTracer: group already has a tracer");
    _hostTracer = host;
    _shardTracers.reserve(_shards.size());
    for (auto &sh : _shards) {
        _shardTracers.push_back(std::make_unique<Tracer>());
        sh->engine.setTracer(_shardTracers.back().get());
    }
}

void
EngineGroup::drainTracers()
{
    if (!_hostTracer)
        return;
    // Runs on the coordinator thread after the phase barrier, which
    // is what publishes the shard buffers; shard order keeps the
    // merged file byte-identical for any worker count.
    for (auto &t : _shardTracers)
        t->drainInto(*_hostTracer);
}

void
EngineGroup::runEpoch(Tick bound)
{
    parallelPhase(bound);
    drainTracers();
    mergeCompletions();
    _host.runUntil(bound);
    ++_epochs;
}

Tick
EngineGroup::nextTime()
{
    Tick next = _host.nextEventTick();
    for (auto &sh : _shards) {
        next = std::min(next, sh->engine.nextEventTick());
        for (const Message &m : sh->inbox)
            next = std::min(next, m.due);
    }
    return next;
}

void
EngineGroup::runUntil(Tick until)
{
    for (;;) {
        Tick next = nextTime();
        if (next == maxTick || next > until)
            return;
        // The epoch window containing the earliest pending tick,
        // aligned to the lookahead grid; the final epoch is trimmed to
        // `until` (events at exactly `until` still run, matching
        // Engine::runUntil).
        Tick start = next - next % _lookahead;
        Tick bound = start + (_lookahead - 1);
        if (bound < start)
            bound = maxTick; // overflow near the end of time
        runEpoch(std::min(bound, until));
    }
}

void
EngineGroup::run()
{
    runUntil(maxTick);
}

void
EngineGroup::registerStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.addScalar(prefix + ".epochs", [this] {
        return static_cast<double>(_epochs);
    });
    reg.addScalar(prefix + ".msgs_to_shards", [this] {
        return static_cast<double>(_toShards);
    });
    reg.addScalar(prefix + ".msgs_to_host", [this] {
        return static_cast<double>(_toHost);
    });
    reg.addScalar(prefix + ".lookahead_ticks", [this] {
        return static_cast<double>(_lookahead);
    });
}

} // namespace dssd
