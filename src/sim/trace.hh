/**
 * @file
 * Event tracing: Chrome/Perfetto trace_event JSON emission.
 *
 * A Tracer streams trace events to a file as the model emits them:
 * complete slices for resource occupancy (die array operations, bus
 * and link transfers), async spans for logical operations that hop
 * between components (host requests, copyback R/RE/T/W stages, GC
 * rounds, NoC packets), and counter samples for buffer occupancy.
 * Open the resulting file in https://ui.perfetto.dev or
 * chrome://tracing.
 *
 * Tracing is opt-in per Engine (Engine::setTracer) and costs one
 * pointer null-check per emission site when idle. Building with
 * -DDSSD_TRACE_DISABLED (CMake -DDSSD_TRACE=OFF) compiles every
 * emission site out entirely; the Tracer class itself remains so CLI
 * wiring stays buildable. Emission never schedules events or touches
 * model state, so simulation results are identical with tracing on,
 * off, or compiled out.
 *
 * Track naming: a Perfetto "process" groups one component family
 * ("nand", "bus", "counters", ...) and each lane within it is a
 * "thread" named after the concrete resource ("flash-bus-ch3",
 * "ch0.d2"). Async spans attach to the process row and are matched by
 * (category, id, name).
 *
 * Parallel runs: a Tracer is deliberately single-threaded (no locks
 * on the emission path). For EngineGroup mode each shard engine gets
 * its own *buffered* Tracer (the default constructor) that records
 * events into a private vector instead of a file; the group drains
 * every shard buffer into the host tracer — in shard order, at the
 * epoch barrier, on the coordinator thread — via drainInto(). The
 * barrier's mutex handoff publishes the buffers, so no emission site
 * ever takes a lock, and the merged file is byte-identical for any
 * worker count.
 */

#ifndef DSSD_SIM_TRACE_HH
#define DSSD_SIM_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

#if defined(DSSD_TRACE_DISABLED)
#define DSSD_TRACING 0
#else
/** Compile gate for every emission site (see file comment). */
#define DSSD_TRACING 1
#endif

namespace dssd
{

/** Streams Chrome trace_event JSON to a file, or buffers events for
 *  a later drainInto() when default-constructed. */
class Tracer
{
  public:
    /** Opens @p path and writes the document header; fatal() if the
     *  file cannot be created. */
    explicit Tracer(const std::string &path);

    /**
     * A buffered tracer: every emission is recorded (with its track
     * names) into a private vector instead of a file, to be replayed
     * into a file-backed tracer with drainInto(). This is the
     * per-shard span sink for parallel engine groups; it is still
     * single-thread at a time, but buffer and drain may happen on
     * different threads as long as something orders them (the
     * group's epoch barrier does).
     */
    Tracer();

    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Id of the process row named @p name (created on first use, with
     * process_name metadata).
     */
    int process(const std::string &name);

    /** Id of the lane (thread row) @p name within process @p pid. */
    int lane(int pid, const std::string &name);

    /** A complete slice [start, end) on a lane (ph "X"). */
    void slice(int pid, int tid, const char *name, const char *cat,
               Tick start, Tick end);

    /**
     * Async span delimiters (ph "b"/"e"), matched by (cat, id, name)
     * within the process row. Spans with distinct ids may overlap.
     */
    void asyncBegin(int pid, const char *cat, const char *name,
                    std::uint64_t id, Tick when);
    void asyncEnd(int pid, const char *cat, const char *name,
                  std::uint64_t id, Tick when);

    /** A counter sample (ph "C"): the track @p name in process @p pid
     *  steps to @p value at @p when. */
    void counter(int pid, const char *name, Tick when, double value);

    /**
     * A fresh async-span id for emission sites that have no natural
     * request id (emitted-together begin/end pairs). A per-tracer
     * sequence — never an object address — so trace files are a pure
     * function of the simulated schedule: byte-identical run to run
     * and, through the buffered drain path, across worker counts.
     */
    std::uint64_t nextSpanId() { return ++_nextSpanId; }

    /** Write the footer and close the file; idempotent (the
     *  destructor calls it). No-op on a buffered tracer. */
    void finish();

    /** Events emitted so far (metadata records included). */
    std::uint64_t events() const { return _events; }

    /** True when default-constructed (recording, not streaming). */
    bool buffered() const { return _buffered; }

    /** Buffered events not yet drained (0 on a file tracer). */
    std::size_t pending() const { return _records.size(); }

    /**
     * Replay every buffered event into @p dst and clear the buffer.
     * Track ids are remapped by name (dst.process()/lane() allocate
     * or reuse rows in @p dst), so tracks merge with the
     * destination's own. Caller must order this against emissions
     * into *this; only meaningful on a buffered tracer.
     */
    void drainInto(Tracer &dst);

  private:
    /** One buffered emission (buffered mode only). Track ids are
     *  private to this tracer; names travel along for remapping. */
    struct Record
    {
        enum class Kind : std::uint8_t
        {
            Slice,
            AsyncBegin,
            AsyncEnd,
            Counter,
        };
        Kind kind;
        int pid = 0;
        int tid = 0;
        std::string name;
        std::string cat;
        std::uint64_t id = 0;
        Tick start = 0;
        Tick end = 0;
        double value = 0.0;
    };

    void emit(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    std::FILE *_file = nullptr;
    bool _first = true;
    bool _buffered = false;
    std::uint64_t _events = 0;
    std::uint64_t _nextSpanId = 0;
    int _nextPid = 1;
    std::map<std::string, int> _pids;
    std::map<std::pair<int, std::string>, int> _lanes;
    std::map<int, int> _nextTid;

    // Buffered mode: the recorded events plus reverse name maps so
    // drainInto() can rebuild tracks in the destination.
    std::vector<Record> _records;
    std::vector<std::string> _pidNames;          ///< index pid-1
    std::map<std::pair<int, int>, std::string> _laneNames;
};

} // namespace dssd

#endif // DSSD_SIM_TRACE_HH
