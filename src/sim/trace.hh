/**
 * @file
 * Event tracing: Chrome/Perfetto trace_event JSON emission.
 *
 * A Tracer streams trace events to a file as the model emits them:
 * complete slices for resource occupancy (die array operations, bus
 * and link transfers), async spans for logical operations that hop
 * between components (host requests, copyback R/RE/T/W stages, GC
 * rounds, NoC packets), and counter samples for buffer occupancy.
 * Open the resulting file in https://ui.perfetto.dev or
 * chrome://tracing.
 *
 * Tracing is opt-in per Engine (Engine::setTracer) and costs one
 * pointer null-check per emission site when idle. Building with
 * -DDSSD_TRACE_DISABLED (CMake -DDSSD_TRACE=OFF) compiles every
 * emission site out entirely; the Tracer class itself remains so CLI
 * wiring stays buildable. Emission never schedules events or touches
 * model state, so simulation results are identical with tracing on,
 * off, or compiled out.
 *
 * Track naming: a Perfetto "process" groups one component family
 * ("nand", "bus", "counters", ...) and each lane within it is a
 * "thread" named after the concrete resource ("flash-bus-ch3",
 * "ch0.d2"). Async spans attach to the process row and are matched by
 * (category, id, name).
 */

#ifndef DSSD_SIM_TRACE_HH
#define DSSD_SIM_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include "sim/types.hh"

#if defined(DSSD_TRACE_DISABLED)
#define DSSD_TRACING 0
#else
/** Compile gate for every emission site (see file comment). */
#define DSSD_TRACING 1
#endif

namespace dssd
{

/** Streams Chrome trace_event JSON to a file. */
class Tracer
{
  public:
    /** Opens @p path and writes the document header; fatal() if the
     *  file cannot be created. */
    explicit Tracer(const std::string &path);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Id of the process row named @p name (created on first use, with
     * process_name metadata).
     */
    int process(const std::string &name);

    /** Id of the lane (thread row) @p name within process @p pid. */
    int lane(int pid, const std::string &name);

    /** A complete slice [start, end) on a lane (ph "X"). */
    void slice(int pid, int tid, const char *name, const char *cat,
               Tick start, Tick end);

    /**
     * Async span delimiters (ph "b"/"e"), matched by (cat, id, name)
     * within the process row. Spans with distinct ids may overlap.
     */
    void asyncBegin(int pid, const char *cat, const char *name,
                    std::uint64_t id, Tick when);
    void asyncEnd(int pid, const char *cat, const char *name,
                  std::uint64_t id, Tick when);

    /** A counter sample (ph "C"): the track @p name in process @p pid
     *  steps to @p value at @p when. */
    void counter(int pid, const char *name, Tick when, double value);

    /** Write the footer and close the file; idempotent (the
     *  destructor calls it). */
    void finish();

    /** Events emitted so far (metadata records included). */
    std::uint64_t events() const { return _events; }

  private:
    void emit(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    std::FILE *_file = nullptr;
    bool _first = true;
    std::uint64_t _events = 0;
    int _nextPid = 1;
    std::map<std::string, int> _pids;
    std::map<std::pair<int, std::string>, int> _lanes;
    std::map<int, int> _nextTid;
};

} // namespace dssd

#endif // DSSD_SIM_TRACE_HH
