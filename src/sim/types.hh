/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The simulator models time in integer nanoseconds (Tick). Helpers are
 * provided to convert between human units (us, ms, MB/s, GB/s) and the
 * internal representation so that configuration code reads like the
 * parameter tables in the paper.
 */

#ifndef DSSD_SIM_TYPES_HH
#define DSSD_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace dssd
{

/** Simulation time in nanoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "never" / unbounded time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** One microsecond in ticks. */
constexpr Tick tickUs = 1000;

/** One millisecond in ticks. */
constexpr Tick tickMs = 1000 * tickUs;

/** One second in ticks. */
constexpr Tick tickSec = 1000 * tickMs;

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(tickUs));
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(tickMs));
}

/** Convert ticks to microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickUs);
}

/** Convert ticks to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickMs);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickSec);
}

/**
 * Bandwidth expressed as bytes per tick (i.e., bytes per nanosecond,
 * which conveniently equals GB/s).
 */
using BytesPerTick = double;

/** Convert MB/s (10^6 bytes per second) to bytes-per-tick. */
constexpr BytesPerTick
mbPerSec(double mb)
{
    return mb * 1e6 / static_cast<double>(tickSec);
}

/** Convert GB/s (10^9 bytes per second) to bytes-per-tick. */
constexpr BytesPerTick
gbPerSec(double gb)
{
    return gb * 1e9 / static_cast<double>(tickSec);
}

/** Convert bytes-per-tick back to GB/s for reporting. */
constexpr double
toGbPerSec(BytesPerTick bpt)
{
    return bpt * static_cast<double>(tickSec) / 1e9;
}

/** Common power-of-two sizes. */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

} // namespace dssd

#endif // DSSD_SIM_TYPES_HH
