/**
 * @file
 * Per-request latency breakdown accumulator.
 *
 * Fig 9 of the paper decomposes I/O and copyback latency into flash
 * memory (cell array), flash bus, system bus, and fNoC components.
 * Datapath phases close a breakdown span (bdSpanClose) when they finish,
 * which both adds the (queueing + service) time into the right bucket
 * and emits a trace span, so Fig 9 derives from the same instrumentation
 * the trace shows.
 */

#ifndef DSSD_SIM_LATENCY_HH
#define DSSD_SIM_LATENCY_HH

#include <cstdint>

#include "sim/engine.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace dssd
{

/** Accumulated time per datapath component for one request. */
struct LatencyBreakdown
{
    Tick flashMem = 0;   ///< cell-array time (tR / tPROG / tBERS + wait)
    Tick flashBus = 0;   ///< flash channel bus (cmd + data, incl. queue)
    Tick systemBus = 0;  ///< SSD-internal system bus
    Tick dram = 0;       ///< DRAM port
    Tick ecc = 0;        ///< ECC pipeline
    Tick noc = 0;        ///< fNoC / dedicated interconnect
    Tick other = 0;      ///< host interface, firmware, misc

    Tick
    total() const
    {
        return flashMem + flashBus + systemBus + dram + ecc + noc + other;
    }

    LatencyBreakdown &
    operator+=(const LatencyBreakdown &o)
    {
        flashMem += o.flashMem;
        flashBus += o.flashBus;
        systemBus += o.systemBus;
        dram += o.dram;
        ecc += o.ecc;
        noc += o.noc;
        other += o.other;
        return *this;
    }

    /** The bucket for @p c (see BdComp). */
    Tick &component(int c);
};

/** Breakdown components, indexing LatencyBreakdown::component(). */
enum BdComp : int
{
    bdFlashMem = 0,
    bdFlashBus,
    bdSystemBus,
    bdDram,
    bdEcc,
    bdNoc,
    bdOther,
    numBdComps,
};

/** Trace span label for breakdown component @p c. */
const char *bdCompName(int c);

inline Tick &
LatencyBreakdown::component(int c)
{
    switch (c) {
      case bdFlashMem:
        return flashMem;
      case bdFlashBus:
        return flashBus;
      case bdSystemBus:
        return systemBus;
      case bdDram:
        return dram;
      case bdEcc:
        return ecc;
      case bdNoc:
        return noc;
      default:
        return other;
    }
}

inline const char *
bdCompName(int c)
{
    switch (c) {
      case bdFlashMem:
        return "flash-mem";
      case bdFlashBus:
        return "flash-bus";
      case bdSystemBus:
        return "system-bus";
      case bdDram:
        return "dram";
      case bdEcc:
        return "ecc";
      case bdNoc:
        return "noc";
      default:
        return "other";
    }
}

/**
 * Close a breakdown span: the phase of request @p bd attributed to
 * component @p comp ran over [t0, t1]. Adds t1 - t0 into the bucket
 * and, when a tracer is attached, emits an async "breakdown" span so
 * Fig 9's decomposition is visible per-request on the timeline. Call
 * sites only carry the 8-byte @p t0 through their callback chains.
 * No-op when @p bd is null (datapaths without breakdown tracking).
 */
inline void
bdSpanCloseAt(Engine &engine, LatencyBreakdown *bd, int comp, Tick t0,
              Tick t1)
{
    if (!bd || t1 < t0)
        return;
    bd->component(comp) += t1 - t0;
#if DSSD_TRACING
    Tracer *tr = engine.tracer();
    if (tr && t1 > t0) {
        int pid = tr->process("breakdown");
        std::uint64_t id = tr->nextSpanId();
        tr->asyncBegin(pid, "breakdown", bdCompName(comp), id, t0);
        tr->asyncEnd(pid, "breakdown", bdCompName(comp), id, t1);
    }
#endif
}

/** bdSpanCloseAt with the span ending now. */
inline void
bdSpanClose(Engine &engine, LatencyBreakdown *bd, int comp, Tick t0)
{
    bdSpanCloseAt(engine, bd, comp, t0, engine.now());
}

} // namespace dssd

#endif // DSSD_SIM_LATENCY_HH
