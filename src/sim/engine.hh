/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single Engine owns the event queue and the simulation clock. Model
 * components hold a reference to the Engine and schedule callbacks at
 * future ticks. Events scheduled for the same tick fire in FIFO order
 * (insertion order), which keeps simulations deterministic.
 *
 * The hot path is allocation-free: events are fixed-size pooled nodes
 * with the callback stored inline (no std::function, no per-event heap
 * allocation), and the queue is two-level — a calendar of one-tick
 * near-future buckets backed by a far-future binary heap. Events pop
 * in exact (when, seq) order, so schedules are bit-identical to the
 * old priority-queue engine.
 */

#ifndef DSSD_SIM_ENGINE_HH
#define DSSD_SIM_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace dssd
{

class Tracer;

/**
 * The discrete-event engine: an event queue plus the simulation clock.
 *
 * Typical driving loop:
 * @code
 *   Engine engine;
 *   engine.schedule(100, []{ ... });
 *   engine.run();             // drain all events
 * @endcode
 */
class Engine
{
  public:
    /**
     * Completion-callback type used by module APIs (e.g. Ssd::submit).
     * The engine itself never wraps scheduled callables in this: any
     * callable small enough for the inline event buffer is stored
     * directly.
     */
    using Callback = std::function<void()>;

    /** Inline storage per event; callables must fit (checked at compile time). */
    static constexpr std::size_t kInlineCallbackBytes = 128;

    Engine();
    ~Engine();
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulation time. */
    Tick now() const { return _now; }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&fn)
    {
        scheduleAbs(_now + delay, std::forward<F>(fn));
    }

    /**
     * Schedule @p fn at absolute time @p when.
     * @pre when >= now()
     */
    template <typename F>
    void
    scheduleAbs(Tick when, F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kInlineCallbackBytes,
                      "event callback exceeds inline storage; shrink the "
                      "capture or raise Engine::kInlineCallbackBytes");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event callback");
        Event *ev = prepare(when);
        ::new (static_cast<void *>(ev->storage)) Fn(std::forward<F>(fn));
        ev->manage = &manageImpl<Fn>;
        insert(ev);
    }

    /**
     * Execute the next pending event.
     * @retval false if the queue was empty.
     */
    bool step();

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run until the queue is empty or the clock passes @p until.
     * Events at exactly @p until are executed; the clock never advances
     * beyond the last executed event.
     */
    void runUntil(Tick until);

    /** Number of events waiting in the queue. */
    std::size_t pendingEvents() const { return _pending; }

    /**
     * Tick of the earliest pending event, or maxTick when the queue is
     * empty. Non-const because probing may rotate the calendar window;
     * the schedule itself is unchanged. The conservative engine-group
     * coordinator (sim/engine_group.hh) uses this to size its epochs.
     */
    Tick nextEventTick();

    /** Total number of events executed since construction. */
    std::uint64_t executedEvents() const { return _executed; }

    /**
     * Total event nodes owned by the pool (free + in flight). Grows in
     * chunks on demand and never shrinks; a steady-state simulation
     * stops growing it once the free list covers the peak event
     * population.
     */
    std::size_t poolCapacity() const { return _poolCapacity; }

    /**
     * Install @p hook to run after every @p every executed events
     * (the invariant-auditor tap; see sim/audit.hh). At most one hook
     * is installed at a time; @p every == 0 disables it. The hook runs
     * between events, when model invariants must hold.
     */
    void setAuditHook(std::uint64_t every, std::function<void()> hook);

    /** Remove any installed audit hook. */
    void clearAuditHook();

    /**
     * Attach @p t (borrowed, may be null) so components driven by this
     * engine emit trace events; see sim/trace.hh. Purely observational:
     * the engine itself never consults the tracer, so the hot path is
     * unchanged and results are identical with or without one.
     */
    void setTracer(Tracer *t) { _tracer = t; }

    /** The attached tracer, or null when tracing is off. */
    Tracer *tracer() const { return _tracer; }

  private:
    enum class EventOp { InvokeDestroy, Destroy };

    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Event *next;
        /** Type-erased callable ops on @ref storage. */
        void (*manage)(void *storage, EventOp op);
        alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
    };

    static_assert(sizeof(Event) == 160,
                  "event node layout drifted; keep it compact — header "
                  "plus inline callback storage, nothing else");

    template <typename Fn>
    static void
    manageImpl(void *storage, EventOp op)
    {
        Fn *fn = std::launder(reinterpret_cast<Fn *>(storage));
        if (op == EventOp::InvokeDestroy)
            (*fn)();
        fn->~Fn();
    }

    /** Intrusive FIFO of events at one tick. */
    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /** Allocate a pool node stamped with @p when and the next seq. */
    Event *prepare(Tick when);
    /** File a prepared node into the near buckets or the far heap. */
    void insert(Event *ev);
    /** Detach the earliest (when, seq) event; null when empty. */
    Event *popMin();
    /** Move the near window to the earliest far event and drain. */
    void rotateWindow();
    /** Index of the first non-empty bucket from @p from, or npos. */
    std::size_t scanBuckets(std::size_t from);
    void appendToBucket(std::size_t idx, Event *ev);
    void growPool();
    void release(Event *ev) { ev->next = _freeList; _freeList = ev; }

    /** Near-future calendar width in ticks (buckets allocate lazily). */
    static constexpr std::size_t kMaxBuckets = 8192;
    static constexpr std::size_t kChunkEvents = 512;
    static constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::size_t _pending = 0;

    // Near-future calendar: bucket i holds tick _windowStart + i.
    Tick _windowStart = 0;
    std::size_t _cursor = 0;     ///< first possibly non-empty bucket
    std::size_t _nearCount = 0;  ///< events currently in buckets
    std::vector<Bucket> _buckets;
    std::vector<std::uint64_t> _bitmap; ///< occupancy, one bit per bucket

    // Far-future events (when >= _windowStart + kMaxBuckets): binary
    // min-heap ordered by (when, seq).
    std::vector<Event *> _far;

    // Free-list event pool, backed by chunk allocations.
    Event *_freeList = nullptr;
    std::size_t _poolCapacity = 0;
    std::vector<std::unique_ptr<Event[]>> _chunks;

    // Periodic audit tap: countdown of events until the next hook run
    // (0 = disabled, so the hot path pays one predictable branch).
    std::uint64_t _auditEvery = 0;
    std::uint64_t _auditCountdown = 0;
    std::function<void()> _auditHook;

    Tracer *_tracer = nullptr; ///< borrowed; see setTracer()

};

} // namespace dssd

#endif // DSSD_SIM_ENGINE_HH
