/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single Engine owns the event queue and the simulation clock. Model
 * components hold a reference to the Engine and schedule callbacks at
 * future ticks. Events scheduled for the same tick fire in FIFO order
 * (insertion order), which keeps simulations deterministic.
 */

#ifndef DSSD_SIM_ENGINE_HH
#define DSSD_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace dssd
{

/**
 * The discrete-event engine: an event queue plus the simulation clock.
 *
 * Typical driving loop:
 * @code
 *   Engine engine;
 *   engine.schedule(100, []{ ... });
 *   engine.run();             // drain all events
 * @endcode
 */
class Engine
{
  public:
    using Callback = std::function<void()>;

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulation time. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay ticks from now. */
    void schedule(Tick delay, Callback cb);

    /**
     * Schedule @p cb at absolute time @p when.
     * @pre when >= now()
     */
    void scheduleAbs(Tick when, Callback cb);

    /**
     * Execute the next pending event.
     * @retval false if the queue was empty.
     */
    bool step();

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run until the queue is empty or the clock passes @p until.
     * Events at exactly @p until are executed; the clock never advances
     * beyond the last executed event.
     */
    void runUntil(Tick until);

    /** Number of events waiting in the queue. */
    std::size_t pendingEvents() const { return _queue.size(); }

    /** Total number of events executed since construction. */
    std::uint64_t executedEvents() const { return _executed; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::priority_queue<Event, std::vector<Event>, Later> _queue;
};

} // namespace dssd

#endif // DSSD_SIM_ENGINE_HH
