/**
 * @file
 * Conservatively-synchronized parallel discrete-event engine group.
 *
 * An EngineGroup coordinates one shard Engine per array shard plus the
 * caller's host Engine. Shards never touch each other's state; they
 * interact with the host only through two explicitly-ordered message
 * channels:
 *
 *  - host -> shard: per-shard inbox mailboxes. A message carries an
 *    absolute due tick at least @ref lookahead past the posting time
 *    and is drained into the shard's engine at the next window
 *    boundary, in posting order.
 *  - shard -> host: per-shard outbox mailboxes. A completion is
 *    stamped with the shard clock at emission and delivered to the
 *    host engine at the window barrier through a deterministic k-way
 *    merge keyed by (tick, shard index, per-shard emission order) —
 *    never by thread arrival order.
 *
 * Time advances in epochs of at most @ref lookahead ticks, aligned to
 * the lookahead grid. Each epoch runs the shard engines (in parallel
 * on the worker pool, or serially in shard order when threads <= 1)
 * up to the window bound, barriers, merges completions, then runs the
 * host engine over the same window. Because every host->shard message
 * is due at least one full window ahead, a shard can never receive
 * work for a tick it has already passed: the schedule is identical
 * for any worker count, so results are bit-identical to the serial
 * execution of the same protocol.
 */

#ifndef DSSD_SIM_ENGINE_GROUP_HH
#define DSSD_SIM_ENGINE_GROUP_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hh"
#include "sim/types.hh"

namespace dssd
{

class StatRegistry;
class Tracer;

/** One engine per shard, conservatively synchronized with the host. */
class EngineGroup
{
  public:
    using Callback = Engine::Callback;

    /**
     * @param host      The host-side engine (front-end, drivers).
     *                  Borrowed; must outlive the group.
     * @param shards    Number of shard engines to own (>= 1).
     * @param lookahead Minimum host->shard latency in ticks (> 0);
     *                  also the epoch width. For an SsdArray this is
     *                  the firmware fan-out latency.
     * @param threads   Worker threads for the shard phase. <= 1 runs
     *                  shards serially on the calling thread (the
     *                  deterministic reference the parallel runs are
     *                  proven against); higher counts are clamped to
     *                  the shard count.
     */
    EngineGroup(Engine &host, unsigned shards, Tick lookahead,
                unsigned threads);
    ~EngineGroup();

    EngineGroup(const EngineGroup &) = delete;
    EngineGroup &operator=(const EngineGroup &) = delete;

    Engine &hostEngine() { return _host; }
    Engine &shardEngine(unsigned s);
    unsigned shardCount() const
    {
        return static_cast<unsigned>(_shards.size());
    }
    Tick lookahead() const { return _lookahead; }
    /** Worker threads actually running shard phases (0 = serial). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(_threads.size());
    }

    /**
     * Post @p fn to shard @p s, to run @p delay ticks from the host
     * clock. Must be called from the host side (construction time or a
     * host-engine event), with @p delay >= lookahead(): that is the
     * conservative bound that lets shards run a full window ahead of
     * the host. Messages are delivered in posting order.
     */
    void postToShard(unsigned s, Tick delay, Callback fn);

    /**
     * Post @p fn back to the host from shard @p s, stamped with the
     * shard's current clock. Must be called from shard @p s's phase
     * (i.e. from an event on its engine). The host runs it at the
     * stamped tick, ordered against other shards' completions by
     * (tick, shard index, emission order).
     */
    void postToHost(unsigned s, Callback fn);

    /**
     * Run epochs until every engine and mailbox is past @p until.
     * Events at exactly @p until are executed (same contract as
     * Engine::runUntil).
     */
    void runUntil(Tick until);

    /** Run epochs until no engine or mailbox holds any work. */
    void run();

    /** Earliest pending tick across engines and mailboxes
     *  (maxTick when fully drained). */
    Tick nextTime();

    /** Epochs executed so far (identical for any worker count). */
    std::uint64_t epochsRun() const { return _epochs; }
    /** host->shard messages posted so far. */
    std::uint64_t messagesToShards() const { return _toShards; }
    /** shard->host completions merged so far. */
    std::uint64_t messagesToHost() const { return _toHost; }

    /**
     * Register the group's coordination counters under @p prefix.
     * Every value is a pure function of the simulated schedule, so the
     * stat dump stays bit-identical across worker counts.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /**
     * Route shard-engine trace emissions into @p host (the host
     * engine's file-backed tracer; borrowed, must outlive the group).
     * Each shard engine gets a private buffered Tracer; the buffers
     * are drained into @p host in shard order at every epoch barrier,
     * on the coordinator thread, so no emission site ever takes a
     * lock and the merged file is byte-identical for any worker
     * count. Call before building the shard component trees so
     * construction-time track registration lands on the shard
     * tracers. Once per group; @p host must not be null.
     */
    void attachTracer(Tracer *host);

  private:
    struct Message
    {
        Tick due;
        Callback fn;
    };

    struct Completion
    {
        Tick when;
        Callback fn;
    };

    /**
     * A shard engine plus its two mailboxes. The inbox is written by
     * the host between phases and drained by the shard at its phase
     * start; the outbox is written by the shard during its phase and
     * drained by the coordinator at the barrier. The phase barrier is
     * the synchronization point for both, so neither needs a lock.
     */
    struct Shard
    {
        Engine engine;
        std::vector<Message> inbox;
        std::vector<Completion> outbox;
    };

    /** Drain the inbox into the engine, then run it to @p bound. */
    void shardPhase(Shard &sh, Tick bound);
    /** Run all shard phases up to @p bound (pool or serial). */
    void parallelPhase(Tick bound);
    /** Deterministically merge outboxes into the host engine. */
    void mergeCompletions();
    /** Drain shard trace buffers into the host tracer (shard order,
     *  coordinator thread; no-op without attachTracer). */
    void drainTracers();
    /** One whole epoch: shards to @p bound, barrier, host to it. */
    void runEpoch(Tick bound);
    void workerMain(unsigned worker, unsigned stride);

    Engine &_host;
    Tick _lookahead;
    std::vector<std::unique_ptr<Shard>> _shards;

    Tracer *_hostTracer = nullptr; ///< borrowed; see attachTracer()
    std::vector<std::unique_ptr<Tracer>> _shardTracers;

    std::uint64_t _epochs = 0;
    std::uint64_t _toShards = 0;
    std::uint64_t _toHost = 0;
    std::vector<std::size_t> _mergePos; ///< per-shard merge cursors

    // Worker pool: generation-counted barrier. The coordinator bumps
    // _generation with _phaseBound set, workers run their statically
    // assigned shards (shard s belongs to worker s % workerCount) and
    // the last one out wakes the coordinator. The mutex handoff is
    // what publishes mailbox contents across threads.
    std::vector<std::thread> _threads;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _idle;
    std::uint64_t _generation = 0;
    unsigned _running = 0;
    Tick _phaseBound = 0;
    bool _shutdown = false;
};

} // namespace dssd

#endif // DSSD_SIM_ENGINE_GROUP_HH
