/**
 * @file
 * Deterministic random-number generation for workloads and wear models.
 *
 * Every stochastic component takes an explicit Rng (or seed) so that a
 * given configuration always reproduces the same trace of events.
 */

#ifndef DSSD_SIM_RNG_HH
#define DSSD_SIM_RNG_HH

#include <cstdint>
#include <random>

namespace dssd
{

/** A seeded wrapper around std::mt19937_64 with the draws we need. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : _gen(seed) {}

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> d(lo, hi);
        return d(_gen);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(_gen);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        std::normal_distribution<double> d(mean, sigma);
        return d(_gen);
    }

    /** Exponential with the given mean. */
    double
    exponential(double mean)
    {
        std::exponential_distribution<double> d(1.0 / mean);
        return d(_gen);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniformReal() < p;
    }

    std::mt19937_64 &raw() { return _gen; }

  private:
    std::mt19937_64 _gen;
};

} // namespace dssd

#endif // DSSD_SIM_RNG_HH
