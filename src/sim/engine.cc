#include "sim/engine.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"

namespace dssd
{

Engine::Engine() = default;

Engine::~Engine()
{
    // Destroy the callables of events that never fired. The pool chunks
    // themselves are freed by the unique_ptrs.
    for (std::size_t idx = 0; idx < _buckets.size(); ++idx) {
        for (Event *ev = _buckets[idx].head; ev;) {
            Event *next = ev->next;
            ev->manage(ev->storage, EventOp::Destroy);
            ev = next;
        }
    }
    for (Event *ev : _far)
        ev->manage(ev->storage, EventOp::Destroy);
}

void
Engine::growPool()
{
    auto chunk = std::make_unique<Event[]>(kChunkEvents);
    for (std::size_t i = kChunkEvents; i-- > 0;)
        release(&chunk[i]);
    _poolCapacity += kChunkEvents;
    _chunks.push_back(std::move(chunk));
}

Engine::Event *
Engine::prepare(Tick when)
{
    if (when < _now)
        panic("scheduleAbs into the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    if (!_freeList)
        growPool();
    Event *ev = _freeList;
    _freeList = ev->next;
    ev->when = when;
    ev->seq = _nextSeq++;
    ev->next = nullptr;
    return ev;
}

void
Engine::appendToBucket(std::size_t idx, Event *ev)
{
    if (idx >= _buckets.size()) {
        _buckets.resize(idx + 1);
        _bitmap.resize((_buckets.size() + 63) / 64, 0);
    }
    Bucket &b = _buckets[idx];
    if (b.tail)
        b.tail->next = ev;
    else
        b.head = ev;
    b.tail = ev;
    _bitmap[idx / 64] |= std::uint64_t{1} << (idx % 64);
    ++_nearCount;
    if (idx < _cursor)
        _cursor = idx;
}

void
Engine::insert(Event *ev)
{
    ++_pending;
    if (ev->when - _windowStart < kMaxBuckets) {
        appendToBucket(static_cast<std::size_t>(ev->when - _windowStart), ev);
        return;
    }
    _far.push_back(ev);
    std::push_heap(_far.begin(), _far.end(), [](const Event *a, const Event *b) {
        if (a->when != b->when)
            return a->when > b->when;
        return a->seq > b->seq;
    });
}

std::size_t
Engine::scanBuckets(std::size_t from)
{
    std::size_t nwords = _bitmap.size();
    std::size_t word = from / 64;
    if (word >= nwords)
        return kNoBucket;
    std::uint64_t w = _bitmap[word] & (~std::uint64_t{0} << (from % 64));
    while (true) {
        if (w)
            return word * 64 +
                   static_cast<std::size_t>(std::countr_zero(w));
        if (++word >= nwords)
            return kNoBucket;
        w = _bitmap[word];
    }
}

void
Engine::rotateWindow()
{
    // Precondition: the calendar is empty, the far heap is not, and its
    // top lies within a window starting at _now. Rebase the window at
    // _now — never ahead of it, so callbacks and post-runUntil callers
    // can still schedule at any tick >= now() into the calendar — and
    // drain every far event that falls inside it, in (when, seq) order
    // so per-tick FIFOs stay seq-sorted.
    auto later = [](const Event *a, const Event *b) {
        if (a->when != b->when)
            return a->when > b->when;
        return a->seq > b->seq;
    };
    _windowStart = _now;
    _cursor = 0;
    while (!_far.empty() &&
           _far.front()->when - _windowStart < kMaxBuckets) {
        std::pop_heap(_far.begin(), _far.end(), later);
        Event *ev = _far.back();
        _far.pop_back();
        ev->next = nullptr;
        appendToBucket(static_cast<std::size_t>(ev->when - _windowStart),
                       ev);
    }
}

Engine::Event *
Engine::popMin()
{
    if (_nearCount == 0) {
        if (_far.empty())
            return nullptr;
        if (_far.front()->when - _now >= kMaxBuckets) {
            // Sparse region: the next event is beyond any window rooted
            // at now, so pop straight off the heap.
            auto later = [](const Event *a, const Event *b) {
                if (a->when != b->when)
                    return a->when > b->when;
                return a->seq > b->seq;
            };
            std::pop_heap(_far.begin(), _far.end(), later);
            Event *ev = _far.back();
            _far.pop_back();
            --_pending;
            return ev;
        }
        rotateWindow();
    }
    std::size_t idx = scanBuckets(_cursor);
    // _nearCount > 0 guarantees a set bit.
    _cursor = idx;
    Bucket &b = _buckets[idx];
    Event *ev = b.head;
    b.head = ev->next;
    if (!b.head) {
        b.tail = nullptr;
        _bitmap[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
    }
    --_nearCount;
    --_pending;
    return ev;
}

Tick
Engine::nextEventTick()
{
    if (_nearCount == 0) {
        if (_far.empty())
            return maxTick;
        if (_far.front()->when - _now >= kMaxBuckets)
            return _far.front()->when;
        rotateWindow();
    }
    return _windowStart + scanBuckets(_cursor);
}

bool
Engine::step()
{
    Event *ev = popMin();
    if (!ev)
        return false;
    _now = ev->when;
    ++_executed;
    // Run the callback in place, then recycle the node: the event is
    // already detached, so anything it schedules allocates other nodes.
    ev->manage(ev->storage, EventOp::InvokeDestroy);
    release(ev);
    if (_auditCountdown != 0 && --_auditCountdown == 0) {
        _auditCountdown = _auditEvery;
        _auditHook();
    }
    return true;
}

void
Engine::setAuditHook(std::uint64_t every, std::function<void()> hook)
{
    _auditEvery = hook ? every : 0;
    _auditCountdown = _auditEvery;
    _auditHook = std::move(hook);
}

void
Engine::clearAuditHook()
{
    _auditEvery = 0;
    _auditCountdown = 0;
    _auditHook = nullptr;
}

void
Engine::run()
{
    while (step()) {
    }
}

void
Engine::runUntil(Tick until)
{
    while (nextEventTick() <= until)
        step();
}

} // namespace dssd
