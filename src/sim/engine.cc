#include "sim/engine.hh"

#include <utility>

#include "sim/log.hh"

namespace dssd
{

void
Engine::schedule(Tick delay, Callback cb)
{
    scheduleAbs(_now + delay, std::move(cb));
}

void
Engine::scheduleAbs(Tick when, Callback cb)
{
    if (when < _now)
        panic("scheduleAbs into the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    _queue.push(Event{when, _nextSeq++, std::move(cb)});
}

bool
Engine::step()
{
    if (_queue.empty())
        return false;
    // Move the callback out before popping so that the event may
    // safely schedule new events (which mutate the queue).
    Event ev = _queue.top();
    _queue.pop();
    _now = ev.when;
    ++_executed;
    ev.cb();
    return true;
}

void
Engine::run()
{
    while (step()) {
    }
}

void
Engine::runUntil(Tick until)
{
    while (!_queue.empty() && _queue.top().when <= until)
        step();
}

} // namespace dssd
