/**
 * @file
 * ECC engine timing model.
 *
 * An LDPC-class engine is modeled as a pipeline: finite throughput
 * (codewords stream through back-to-back) plus a fixed decode latency.
 * The baseline SSD places engines at the front-end, so GC/read data
 * must cross the system bus before decoding; dSSD integrates one
 * engine into each decoupled flash controller (Fig 4), so copyback
 * error checking happens without touching the front-end.
 */

#ifndef DSSD_ECC_ECC_HH
#define DSSD_ECC_ECC_HH

#include <cstdint>
#include <string>

#include "sim/resource.hh"

namespace dssd
{

class StatRegistry;

/** ECC engine timing parameters. */
struct EccParams
{
    /// Fixed decode/encode pipeline latency per page.
    Tick latency = usToTicks(1);
    /// Sustained decode throughput.
    BytesPerTick throughput = gbPerSec(4.0);
    /// Soft-decision (recovery ladder) decode latency, as a multiple
    /// of the hard-decode latency.
    double softLatencyFactor = 8.0;
};

/** A single ECC engine (pipeline) shared by whoever is wired to it. */
class EccEngine
{
  public:
    using Callback = Engine::Callback;

    EccEngine(Engine &engine, std::string name, const EccParams &params);

    /**
     * Stream @p bytes through the decoder; @p done runs when the last
     * codeword leaves the pipeline.
     * @return the completion tick.
     */
    Tick process(std::uint64_t bytes, int tag, Callback done);

    /** Reservation-only variant. @return completion tick. */
    Tick reserve(std::uint64_t bytes, int tag);

    /**
     * Soft-decision decode (the recovery ladder's slow path): same
     * pipeline occupancy, softLatencyFactor x the fixed latency.
     * @return the completion tick.
     */
    Tick processSoft(std::uint64_t bytes, int tag, Callback done);

    //
    // Recovery-ladder stage accounting (fed by runReadRecovery).
    //
    void noteClean() { ++_cleanDecodes; }
    void noteRetryRound() { ++_retryRounds; }
    void noteUncorrectable() { ++_uncorrectable; }

    std::uint64_t pagesProcessed() const { return _pages; }
    std::uint64_t cleanDecodes() const { return _cleanDecodes; }
    std::uint64_t retryRounds() const { return _retryRounds; }
    std::uint64_t softDecodes() const { return _softDecodes; }
    std::uint64_t uncorrectable() const { return _uncorrectable; }
    /** Codewords currently inside the pipeline (occupancy gauge). */
    unsigned inFlight() const { return _inFlight; }
    unsigned maxInFlight() const { return _maxInFlight; }
    /** Backlog ahead of a decode issued now, in ticks. */
    Tick queueDelay() const;
    Tick totalBusyTicks() const { return _pipe.totalBusyTicks(); }
    const EccParams &params() const { return _params; }

    /** Register page/ladder counters, occupancy gauges, and pipeline
     *  accounting under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    /** Track pipeline occupancy around a decode ending at @p end. */
    void scheduleCompletion(Tick end, Callback done);

    Engine &_engine;
    EccParams _params;
    BandwidthResource _pipe;
    std::uint64_t _pages = 0;
    std::uint64_t _cleanDecodes = 0;
    std::uint64_t _retryRounds = 0;
    std::uint64_t _softDecodes = 0;
    std::uint64_t _uncorrectable = 0;
    unsigned _inFlight = 0;
    unsigned _maxInFlight = 0;
};

} // namespace dssd

#endif // DSSD_ECC_ECC_HH
