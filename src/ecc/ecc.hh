/**
 * @file
 * ECC engine timing model.
 *
 * An LDPC-class engine is modeled as a pipeline: finite throughput
 * (codewords stream through back-to-back) plus a fixed decode latency.
 * The baseline SSD places engines at the front-end, so GC/read data
 * must cross the system bus before decoding; dSSD integrates one
 * engine into each decoupled flash controller (Fig 4), so copyback
 * error checking happens without touching the front-end.
 */

#ifndef DSSD_ECC_ECC_HH
#define DSSD_ECC_ECC_HH

#include <cstdint>
#include <string>

#include "sim/resource.hh"

namespace dssd
{

class StatRegistry;

/** ECC engine timing parameters. */
struct EccParams
{
    /// Fixed decode/encode pipeline latency per page.
    Tick latency = usToTicks(1);
    /// Sustained decode throughput.
    BytesPerTick throughput = gbPerSec(4.0);
};

/** A single ECC engine (pipeline) shared by whoever is wired to it. */
class EccEngine
{
  public:
    using Callback = Engine::Callback;

    EccEngine(Engine &engine, std::string name, const EccParams &params);

    /**
     * Stream @p bytes through the decoder; @p done runs when the last
     * codeword leaves the pipeline.
     * @return the completion tick.
     */
    Tick process(std::uint64_t bytes, int tag, Callback done);

    /** Reservation-only variant. @return completion tick. */
    Tick reserve(std::uint64_t bytes, int tag);

    std::uint64_t pagesProcessed() const { return _pages; }
    Tick totalBusyTicks() const { return _pipe.totalBusyTicks(); }
    const EccParams &params() const { return _params; }

    /** Register page counter and pipeline accounting under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    Engine &_engine;
    EccParams _params;
    BandwidthResource _pipe;
    std::uint64_t _pages = 0;
};

} // namespace dssd

#endif // DSSD_ECC_ECC_HH
