#include "ecc/ecc.hh"

#include <utility>

#include "sim/registry.hh"

namespace dssd
{

EccEngine::EccEngine(Engine &engine, std::string name,
                     const EccParams &params)
    : _engine(engine), _params(params),
      _pipe(engine, std::move(name), params.throughput)
{
}

Tick
EccEngine::reserve(std::uint64_t bytes, int tag)
{
    ++_pages;
    return _pipe.reserve(bytes, tag) + _params.latency;
}

void
EccEngine::scheduleCompletion(Tick end, Callback done)
{
    ++_inFlight;
    if (_inFlight > _maxInFlight)
        _maxInFlight = _inFlight;
    _engine.scheduleAbs(end, [this, cb = std::move(done)] {
        --_inFlight;
        cb();
    });
}

Tick
EccEngine::process(std::uint64_t bytes, int tag, Callback done)
{
    Tick end = reserve(bytes, tag);
    scheduleCompletion(end, std::move(done));
    return end;
}

Tick
EccEngine::processSoft(std::uint64_t bytes, int tag, Callback done)
{
    ++_softDecodes;
    Tick soft_latency = static_cast<Tick>(
        static_cast<double>(_params.latency) * _params.softLatencyFactor);
    Tick end = _pipe.reserve(bytes, tag) + soft_latency;
    scheduleCompletion(end, std::move(done));
    return end;
}

Tick
EccEngine::queueDelay() const
{
    Tick busy = _pipe.busyUntil();
    Tick now = _engine.now();
    return busy > now ? busy - now : 0;
}

void
EccEngine::registerStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addScalar(prefix + ".pages", [this] {
        return static_cast<double>(_pages);
    });
    reg.addScalar(prefix + ".clean_decodes", [this] {
        return static_cast<double>(_cleanDecodes);
    });
    reg.addScalar(prefix + ".retry_rounds", [this] {
        return static_cast<double>(_retryRounds);
    });
    reg.addScalar(prefix + ".soft_decodes", [this] {
        return static_cast<double>(_softDecodes);
    });
    reg.addScalar(prefix + ".uncorrectable", [this] {
        return static_cast<double>(_uncorrectable);
    });
    reg.addScalar(prefix + ".in_flight", [this] {
        return static_cast<double>(_inFlight);
    });
    reg.addScalar(prefix + ".max_in_flight", [this] {
        return static_cast<double>(_maxInFlight);
    });
    reg.addScalar(prefix + ".queue_delay", [this] {
        return static_cast<double>(queueDelay());
    });
    _pipe.registerStats(reg, prefix + ".pipe");
}

} // namespace dssd
