#include "ecc/ecc.hh"

#include <utility>

#include "sim/registry.hh"

namespace dssd
{

EccEngine::EccEngine(Engine &engine, std::string name,
                     const EccParams &params)
    : _engine(engine), _params(params),
      _pipe(engine, std::move(name), params.throughput)
{
}

Tick
EccEngine::reserve(std::uint64_t bytes, int tag)
{
    ++_pages;
    return _pipe.reserve(bytes, tag) + _params.latency;
}

Tick
EccEngine::process(std::uint64_t bytes, int tag, Callback done)
{
    Tick end = reserve(bytes, tag);
    _engine.scheduleAbs(end, std::move(done));
    return end;
}

void
EccEngine::registerStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addScalar(prefix + ".pages", [this] {
        return static_cast<double>(_pages);
    });
    _pipe.registerStats(reg, prefix + ".pipe");
}

} // namespace dssd
