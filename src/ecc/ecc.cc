#include "ecc/ecc.hh"

#include <utility>

namespace dssd
{

EccEngine::EccEngine(Engine &engine, std::string name,
                     const EccParams &params)
    : _engine(engine), _params(params),
      _pipe(engine, std::move(name), params.throughput)
{
}

Tick
EccEngine::reserve(std::uint64_t bytes, int tag)
{
    ++_pages;
    return _pipe.reserve(bytes, tag) + _params.latency;
}

Tick
EccEngine::process(std::uint64_t bytes, int tag, Callback done)
{
    Tick end = reserve(bytes, tag);
    _engine.scheduleAbs(end, std::move(done));
    return end;
}

} // namespace dssd
