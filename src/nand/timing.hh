/**
 * @file
 * NAND operation timing parameter sets.
 *
 * Two device classes from Table 1 of the paper:
 *  - ULL ("Flash (ULL)"):  read 5 us, program 50 us, erase 1 ms, 4 KB page
 *  - TLC ("Memory (TLC)"): read 60-95 us, program 200-500 us, erase 2 ms,
 *    16 KB page
 *
 * TLC latencies vary with the page's position inside a wordline (LSB,
 * CSB, MSB pages). We spread the published range deterministically over
 * the page index so that a given address always sees the same latency.
 */

#ifndef DSSD_NAND_TIMING_HH
#define DSSD_NAND_TIMING_HH

#include <cstdint>

#include "sim/types.hh"

namespace dssd
{

/** NAND array-operation timing for one device class. */
struct NandTiming
{
    Tick readMin = usToTicks(5);
    Tick readMax = usToTicks(5);
    Tick programMin = usToTicks(50);
    Tick programMax = usToTicks(50);
    Tick erase = msToTicks(1);
    /// Command/address cycle overhead on the flash bus per operation.
    std::uint64_t commandBytes = 8;

    /** Deterministic per-page read latency within [readMin, readMax]. */
    Tick
    readLatency(std::uint32_t page_in_block, std::uint32_t pages_per_block)
        const
    {
        return spread(readMin, readMax, page_in_block, pages_per_block);
    }

    /** Deterministic per-page program latency. */
    Tick
    programLatency(std::uint32_t page_in_block,
                   std::uint32_t pages_per_block) const
    {
        return spread(programMin, programMax, page_in_block,
                      pages_per_block);
    }

    static Tick
    spread(Tick lo, Tick hi, std::uint32_t idx, std::uint32_t count)
    {
        if (hi <= lo || count <= 1)
            return lo;
        // Cycle through thirds of the range, mimicking LSB/CSB/MSB pages.
        std::uint32_t phase = idx % 3;
        return lo + (hi - lo) * phase / 2;
    }
};

/** Ultra-low-latency flash (Z-NAND class), Table 1 "Flash (ULL)". */
inline NandTiming
ullTiming()
{
    NandTiming t;
    t.readMin = usToTicks(5);
    t.readMax = usToTicks(5);
    t.programMin = usToTicks(50);
    t.programMax = usToTicks(50);
    t.erase = msToTicks(1);
    return t;
}

/** Triple-level-cell flash, Table 1 "Memory (TLC)". */
inline NandTiming
tlcTiming()
{
    NandTiming t;
    t.readMin = usToTicks(60);
    t.readMax = usToTicks(95);
    t.programMin = usToTicks(200);
    t.programMax = usToTicks(500);
    t.erase = msToTicks(2);
    return t;
}

} // namespace dssd

#endif // DSSD_NAND_TIMING_HH
