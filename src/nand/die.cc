#include "nand/die.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{

namespace
{

#if DSSD_TRACING
/** Slice label for an array operation. */
const char *
opName(NandOp op)
{
    switch (op) {
      case NandOp::Read:
        return "read";
      case NandOp::Program:
        return "program";
      case NandOp::Erase:
        return "erase";
      case NandOp::LocalCopyback:
        return "local-copyback";
    }
    return "?";
}
#endif

} // namespace

FlashDie::FlashDie(Engine &engine, const FlashGeometry &geom,
                   const NandTiming &timing, std::string name)
    : _engine(engine), _geom(geom), _timing(timing),
      _name(std::move(name)), _planeBusyUntil(geom.planesPerDie, 0)
{
}

Tick
FlashDie::planeBusyUntil(std::uint32_t plane) const
{
    if (plane >= _planeBusyUntil.size())
        panic("plane %u out of range", plane);
    return _planeBusyUntil[plane];
}

Tick
FlashDie::planesBusyUntil(std::uint32_t plane_mask) const
{
    Tick latest = 0;
    for (std::uint32_t p = 0; p < _planeBusyUntil.size(); ++p) {
        if (plane_mask & (1u << p))
            latest = std::max(latest, _planeBusyUntil[p]);
    }
    return latest;
}

Tick
FlashDie::opLatency(NandOp op, std::uint32_t page_in_block) const
{
    switch (op) {
      case NandOp::Read:
        return _timing.readLatency(page_in_block, _geom.pagesPerBlock);
      case NandOp::Program:
        return _timing.programLatency(page_in_block, _geom.pagesPerBlock);
      case NandOp::Erase:
        return _timing.erase;
      case NandOp::LocalCopyback:
        return _timing.readLatency(page_in_block, _geom.pagesPerBlock) +
               _timing.programLatency(page_in_block, _geom.pagesPerBlock);
    }
    panic("unknown NandOp");
}

Tick
FlashDie::reserve(NandOp op, std::uint32_t plane_mask,
                  std::uint32_t page_in_block, Tick earliest)
{
    if (plane_mask == 0)
        panic("reserve with empty plane mask");
    if (op == NandOp::LocalCopyback &&
        __builtin_popcount(plane_mask) != 1) {
        panic("local copyback is restricted to a single plane");
    }

    Tick start = std::max({_engine.now(), earliest,
                           planesBusyUntil(plane_mask)});
    Tick dur = opLatency(op, page_in_block);
    Tick end = start + dur;

    std::uint32_t planes = 0;
    for (std::uint32_t p = 0; p < _planeBusyUntil.size(); ++p) {
        if (plane_mask & (1u << p)) {
            _planeBusyUntil[p] = end;
            ++planes;
        }
    }
    _busyTicks += dur * planes;

    switch (op) {
      case NandOp::Read:
        ++_reads;
        break;
      case NandOp::Program:
        ++_programs;
        break;
      case NandOp::Erase:
        ++_erases;
        break;
      case NandOp::LocalCopyback:
        ++_reads;
        ++_programs;
        break;
    }

#if DSSD_TRACING
    Tracer *tr = _engine.tracer();
    if (tr && !_name.empty()) {
        if (_tracePid < 0) {
            _tracePid = tr->process("nand");
            _traceTid = tr->lane(_tracePid, _name);
        }
        tr->slice(_tracePid, _traceTid, opName(op), "die", start, end);
    }
#endif
    return end;
}

void
FlashDie::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addScalar(prefix + ".reads", [this] {
        return static_cast<double>(_reads);
    });
    reg.addScalar(prefix + ".programs", [this] {
        return static_cast<double>(_programs);
    });
    reg.addScalar(prefix + ".erases", [this] {
        return static_cast<double>(_erases);
    });
    reg.addScalar(prefix + ".busy_ticks", [this] {
        return static_cast<double>(_busyTicks);
    });
}

} // namespace dssd
