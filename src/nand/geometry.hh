/**
 * @file
 * Flash geometry: the channel/way/die/plane/block/page hierarchy and
 * physical addressing.
 *
 * Default geometry follows Table 1 of the paper: 8 channels x 8 ways x
 * 1 die x 8 planes, 1384 blocks/plane, 384 pages/block, 4 KB pages
 * (ULL). The superblock study uses 8 channels x 4 ways x 2 dies x
 * 2 planes with 32 pages/block (TLC), as the paper notes it simplified
 * pages/block for feasible simulation time.
 */

#ifndef DSSD_NAND_GEOMETRY_HH
#define DSSD_NAND_GEOMETRY_HH

#include <cstdint>

#include "sim/log.hh"
#include "sim/types.hh"

namespace dssd
{

/** Physical page address within the SSD. */
struct PhysAddr
{
    std::uint32_t channel = 0;
    std::uint32_t way = 0;
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    bool
    operator==(const PhysAddr &o) const
    {
        return channel == o.channel && way == o.way && die == o.die &&
               plane == o.plane && block == o.block && page == o.page;
    }
};

/** Flash array geometry and derived counts. */
struct FlashGeometry
{
    std::uint32_t channels = 8;
    std::uint32_t ways = 8;           ///< packages per channel
    std::uint32_t diesPerWay = 1;
    std::uint32_t planesPerDie = 8;
    std::uint32_t blocksPerPlane = 1384;
    std::uint32_t pagesPerBlock = 384;
    std::uint64_t pageBytes = 4 * kKiB;

    std::uint32_t
    diesPerChannel() const
    {
        return ways * diesPerWay;
    }

    std::uint64_t
    totalDies() const
    {
        return static_cast<std::uint64_t>(channels) * diesPerChannel();
    }

    std::uint64_t
    blocksPerDie() const
    {
        return static_cast<std::uint64_t>(planesPerDie) * blocksPerPlane;
    }

    std::uint64_t
    pagesPerDie() const
    {
        return blocksPerDie() * pagesPerBlock;
    }

    std::uint64_t
    totalBlocks() const
    {
        return totalDies() * blocksPerDie();
    }

    std::uint64_t
    totalPages() const
    {
        return totalDies() * pagesPerDie();
    }

    std::uint64_t
    capacityBytes() const
    {
        return totalPages() * pageBytes;
    }

    /** Bytes moved by an N-plane multi-plane operation. */
    std::uint64_t
    multiPlaneBytes(std::uint32_t planes) const
    {
        return pageBytes * planes;
    }

    /** Flat die index within the SSD. */
    std::uint64_t
    dieIndex(const PhysAddr &a) const
    {
        return (static_cast<std::uint64_t>(a.channel) * ways + a.way) *
                   diesPerWay +
               a.die;
    }

    /** Flat die index within one channel. */
    std::uint32_t
    dieIndexInChannel(const PhysAddr &a) const
    {
        return a.way * diesPerWay + a.die;
    }

    /** Flat page index within the SSD (for mapping tables). */
    std::uint64_t
    pageIndex(const PhysAddr &a) const
    {
        std::uint64_t in_die =
            (static_cast<std::uint64_t>(a.plane) * blocksPerPlane + a.block) *
                pagesPerBlock +
            a.page;
        return dieIndex(a) * pagesPerDie() + in_die;
    }

    /** Inverse of pageIndex(). */
    PhysAddr
    pageAddr(std::uint64_t index) const
    {
        PhysAddr a;
        std::uint64_t in_die = index % pagesPerDie();
        std::uint64_t die_flat = index / pagesPerDie();
        a.page = static_cast<std::uint32_t>(in_die % pagesPerBlock);
        std::uint64_t blk_flat = in_die / pagesPerBlock;
        a.block = static_cast<std::uint32_t>(blk_flat % blocksPerPlane);
        a.plane = static_cast<std::uint32_t>(blk_flat / blocksPerPlane);
        a.die = static_cast<std::uint32_t>(die_flat % diesPerWay);
        std::uint64_t way_flat = die_flat / diesPerWay;
        a.way = static_cast<std::uint32_t>(way_flat % ways);
        a.channel = static_cast<std::uint32_t>(way_flat / ways);
        return a;
    }

    /** Sanity-check the geometry; fatal() on nonsense. */
    void
    validate() const
    {
        if (channels == 0 || ways == 0 || diesPerWay == 0 ||
            planesPerDie == 0 || blocksPerPlane == 0 || pagesPerBlock == 0 ||
            pageBytes == 0) {
            fatal("FlashGeometry: all dimensions must be non-zero");
        }
    }
};

} // namespace dssd

#endif // DSSD_NAND_GEOMETRY_HH
