/**
 * @file
 * Flash die model: per-plane occupancy for array operations.
 *
 * A die executes one array operation per plane at a time. Multi-plane
 * commands occupy several planes for the duration of a single
 * operation, which is how the paper models "high bandwidth" flash
 * (8-plane multi-plane programs). The flash-bus data transfer is
 * modeled separately by the flash controller; the die only accounts
 * for cell-array time (tR / tPROG / tBERS).
 */

#ifndef DSSD_NAND_DIE_HH
#define DSSD_NAND_DIE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nand/geometry.hh"
#include "nand/timing.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"

namespace dssd
{

class StatRegistry;

/** Kinds of array operations a die can perform. */
enum class NandOp
{
    Read,
    Program,
    Erase,
    /// ONFI local copyback: read-for-copy + program without leaving the
    /// die. Restricted to one plane; no data leaves the chip.
    LocalCopyback,
};

/**
 * One flash die with planesPerDie independent planes.
 *
 * Planes are FIFO resources: an operation on plane set M starts at
 * max(earliest, busyUntil of all planes in M) and occupies them all.
 */
class FlashDie
{
  public:
    /** @param name Trace/stat lane label ("ch0.d2"); unnamed dies
     *         still simulate but do not emit trace slices. */
    FlashDie(Engine &engine, const FlashGeometry &geom,
             const NandTiming &timing, std::string name = "");

    /**
     * Reserve the planes in @p plane_mask for an array operation.
     *
     * @param op Operation kind.
     * @param plane_mask Bitmask of planes occupied (multi-plane ops set
     *        several bits; all planes see the same duration).
     * @param page_in_block Page index, used for deterministic latency
     *        spread on TLC devices.
     * @param earliest Do not start before this tick (e.g., after the
     *        flash-bus data transfer for a program).
     * @return completion tick of the array operation.
     */
    Tick reserve(NandOp op, std::uint32_t plane_mask,
                 std::uint32_t page_in_block, Tick earliest);

    /** Earliest tick at which @p plane is free. */
    Tick planeBusyUntil(std::uint32_t plane) const;

    /** Earliest tick at which all planes in @p plane_mask are free. */
    Tick planesBusyUntil(std::uint32_t plane_mask) const;

    /** Latency of @p op on this device class (single operation). */
    Tick opLatency(NandOp op, std::uint32_t page_in_block) const;

    std::uint64_t reads() const { return _reads; }
    std::uint64_t programs() const { return _programs; }
    std::uint64_t erases() const { return _erases; }

    /** Total plane-busy ticks (for utilization accounting). */
    Tick busyTicks() const { return _busyTicks; }

    const FlashGeometry &geometry() const { return _geom; }
    const NandTiming &timing() const { return _timing; }
    const std::string &name() const { return _name; }

    /** Register op counters and busy accounting under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    Engine &_engine;
    FlashGeometry _geom;
    NandTiming _timing;
    std::string _name;
    std::vector<Tick> _planeBusyUntil;
    int _tracePid = -1; ///< cached trace rows (see reserve)
    int _traceTid = -1;
    std::uint64_t _reads = 0;
    std::uint64_t _programs = 0;
    std::uint64_t _erases = 0;
    Tick _busyTicks = 0;
};

} // namespace dssd

#endif // DSSD_NAND_DIE_HH
