/** Unit tests for the system bus, DRAM port, and bus interconnects. */

#include <gtest/gtest.h>

#include "bus/system_bus.hh"

namespace dssd
{
namespace
{

TEST(SystemBusTest, TransferAtConfiguredBandwidth)
{
    Engine e;
    SystemBus bus(e, gbPerSec(8.0)); // 8 bytes per ns
    Tick done = 0;
    bus.channel().transfer(8192, tagIo, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 1024u);
}

TEST(SystemBusTest, IoAndGcShareTheChannel)
{
    Engine e;
    SystemBus bus(e, 1.0);
    Tick io_done = 0, gc_done = 0;
    bus.channel().transfer(100, tagGc, [&] { gc_done = e.now(); });
    bus.channel().transfer(100, tagIo, [&] { io_done = e.now(); });
    e.run();
    EXPECT_EQ(gc_done, 100u);
    EXPECT_EQ(io_done, 200u); // I/O queued behind GC: the interference
}

TEST(SystemBusTest, RecorderSplitsTraffic)
{
    Engine e;
    SystemBus bus(e, 1.0);
    UtilizationRecorder rec(1000);
    bus.attachRecorder(&rec);
    bus.channel().reserve(400, tagIo);
    bus.channel().reserve(100, tagGc);
    EXPECT_DOUBLE_EQ(rec.series(tagIo)[0], 0.4);
    EXPECT_DOUBLE_EQ(rec.series(tagGc)[0], 0.1);
}

TEST(DramTest, PortIsIndependentOfBus)
{
    Engine e;
    SystemBus bus(e, 1.0);
    Dram dram(e, 1.0);
    bus.channel().reserve(1000, tagIo);
    Tick end = dram.port().reserve(1000, tagIo);
    EXPECT_EQ(end, 1000u); // no serialization against the bus
}

TEST(SystemBusInterconnectTest, SendRidesTheSharedBus)
{
    Engine e;
    SystemBus bus(e, 1.0);
    SystemBusInterconnect ic(bus);
    Tick done = 0;
    // Pre-existing I/O backlog delays the copyback transfer.
    bus.channel().reserve(500, tagIo);
    ic.send(0, 5, 100, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 600u);
    EXPECT_EQ(ic.bytesDelivered(), 100u);
}

TEST(DedicatedBusInterconnectTest, SendAvoidsTheSystemBus)
{
    Engine e;
    SystemBus bus(e, 1.0);
    DedicatedBusInterconnect ic(e, 2.0);
    bus.channel().reserve(500, tagIo); // irrelevant backlog
    Tick done = 0;
    ic.send(0, 1, 100, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 50u);
}

TEST(DedicatedBusInterconnectTest, AllTrafficSerializes)
{
    Engine e;
    DedicatedBusInterconnect ic(e, 1.0);
    Tick d1 = 0, d2 = 0;
    ic.send(0, 1, 100, tagGc, [&] { d1 = e.now(); });
    ic.send(2, 3, 100, tagGc, [&] { d2 = e.now(); });
    e.run();
    EXPECT_EQ(d1, 100u);
    EXPECT_EQ(d2, 200u); // the dSSD_b serialization bottleneck
    EXPECT_EQ(ic.totalBusyTicks(), 200u);
}

} // namespace
} // namespace dssd
