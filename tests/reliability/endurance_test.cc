/** Unit tests for the endurance simulator (dynamic superblocks). */

#include <gtest/gtest.h>

#include "reliability/endurance.hh"

namespace dssd
{
namespace
{

EnduranceParams
base()
{
    EnduranceParams p;
    p.channels = 8;
    p.superblocks = 256;
    p.pagesPerBlock = 32;
    p.pageBytes = 16 * kKiB;
    // Scaled-down wear keeps tests fast; sigma/mean ratio matches the
    // paper's (826.9 / 5578 = 0.148).
    p.wear.peMean = 500.0;
    p.wear.peSigma = 74.0;
    p.stopBadFraction = 0.5;
    p.seed = 11;
    return p;
}

TEST(EnduranceTest, BaselineProducesMonotoneCurve)
{
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Baseline;
    EnduranceResult r = EnduranceSim(p).run();
    ASSERT_FALSE(r.curve.empty());
    for (std::size_t i = 1; i < r.curve.size(); ++i) {
        EXPECT_GE(r.curve[i].dataWrittenBytes,
                  r.curve[i - 1].dataWrittenBytes);
        EXPECT_EQ(r.curve[i].badSuperblocks,
                  r.curve[i - 1].badSuperblocks + 1);
    }
    EXPECT_EQ(r.remapEvents, 0u);
}

TEST(EnduranceTest, RecycledFirstDeathMatchesBaseline)
{
    // Sec 5.3: "dynamic superblock does not delay the occurrence of
    // the first bad superblock" — a superblock must be sacrificed.
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Baseline;
    double base_first = EnduranceSim(p).run().dataUntilFirstBad();
    p.scheme = SuperblockScheme::Recycled;
    double rec_first = EnduranceSim(p).run().dataUntilFirstBad();
    EXPECT_DOUBLE_EQ(base_first, rec_first);
}

TEST(EnduranceTest, RecycledExtendsLifetime)
{
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Baseline;
    EnduranceResult rb = EnduranceSim(p).run();
    p.scheme = SuperblockScheme::Recycled;
    EnduranceResult rr = EnduranceSim(p).run();
    // At a small bad-superblock fraction (10%), recycling must win.
    double d_base = rb.dataUntilBadFraction(0.10, p.superblocks);
    double d_rec = rr.dataUntilBadFraction(0.10, p.superblocks);
    EXPECT_GT(d_rec, d_base);
    EXPECT_GT(rr.remapEvents, 0u);
}

TEST(EnduranceTest, ReservDelaysFirstDeathSubstantially)
{
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Recycled;
    double rec_first = EnduranceSim(p).run().dataUntilFirstBad();
    p.scheme = SuperblockScheme::Reserv;
    p.reservedFraction = 0.07;
    double res_first = EnduranceSim(p).run().dataUntilFirstBad();
    EXPECT_GT(res_first, rec_first * 1.2);
}

TEST(EnduranceTest, WasOutperformsRecycledOnEndurance)
{
    // WAS groups similar-endurance blocks in software (Sec 6.4: "WAS
    // is able to achieve higher endurance").
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Recycled;
    EnduranceResult rec = EnduranceSim(p).run();
    p.scheme = SuperblockScheme::Was;
    EnduranceResult was = EnduranceSim(p).run();
    EXPECT_GT(was.dataUntilBadFraction(0.25, p.superblocks),
              rec.dataUntilBadFraction(0.25, p.superblocks));
}

TEST(EnduranceTest, SrtCapacityLimitsRecycling)
{
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Recycled;
    p.srtCapacityPerChannel = 0; // unbounded
    EnduranceResult unb = EnduranceSim(p).run();
    p.srtCapacityPerChannel = 2; // tiny SRT
    EnduranceResult cap = EnduranceSim(p).run();
    EXPECT_GT(cap.srtRejections, 0u);
    EXPECT_LE(cap.remapEvents, unb.remapEvents);
    EXPECT_LE(cap.dataUntilBadFraction(0.25, p.superblocks),
              unb.dataUntilBadFraction(0.25, p.superblocks));
}

TEST(EnduranceTest, SrtActivitySaturates)
{
    // Fig 16(b): active entries stop growing once no static
    // superblocks remain.
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Recycled;
    p.stopBadFraction = 0.9;
    EnduranceResult r = EnduranceSim(p).run();
    ASSERT_FALSE(r.srtActivity.empty());
    std::size_t peak = 0;
    for (const auto &a : r.srtActivity)
        peak = std::max(peak, a.activeEntries);
    EXPECT_EQ(peak, r.srtHighWater);
    EXPECT_LE(peak, static_cast<std::size_t>(p.superblocks));
}

TEST(EnduranceTest, HigherVariationHurtsBaselineMore)
{
    // Fig 14(b): the benefit of RECYCLED grows with block-wear sigma.
    auto gain = [](double sigma) {
        EnduranceParams p = base();
        p.wear.peSigma = sigma;
        p.scheme = SuperblockScheme::Baseline;
        double b = EnduranceSim(p).run().dataUntilBadFraction(0.10, 256);
        p.scheme = SuperblockScheme::Recycled;
        double r = EnduranceSim(p).run().dataUntilBadFraction(0.10, 256);
        return r / b;
    };
    EXPECT_GT(gain(100.0), gain(25.0));
}

TEST(EnduranceTest, DeterministicForSeed)
{
    EnduranceParams p = base();
    p.scheme = SuperblockScheme::Reserv;
    EnduranceResult a = EnduranceSim(p).run();
    EnduranceResult b = EnduranceSim(p).run();
    EXPECT_EQ(a.curve.size(), b.curve.size());
    EXPECT_DOUBLE_EQ(a.totalDataWritten, b.totalDataWritten);
    EXPECT_EQ(a.remapEvents, b.remapEvents);
}

TEST(EnduranceTest, SchemeNames)
{
    EXPECT_STREQ(schemeName(SuperblockScheme::Baseline), "BASELINE");
    EXPECT_STREQ(schemeName(SuperblockScheme::Recycled), "RECYCLED");
    EXPECT_STREQ(schemeName(SuperblockScheme::Reserv), "RESERV");
    EXPECT_STREQ(schemeName(SuperblockScheme::Was), "WAS");
}

TEST(WearModelTest, LimitsArepositiveAndNearMean)
{
    WearModel w;
    w.peMean = 1000;
    w.peSigma = 100;
    Rng rng(3);
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        std::uint32_t l = w.sampleLimit(rng);
        EXPECT_GE(l, 1u);
        sum += l;
    }
    EXPECT_NEAR(sum / n, 1000.0, 10.0);
}

} // namespace
} // namespace dssd
