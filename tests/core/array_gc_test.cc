/**
 * Unit tests for the array-level GC scheduler (grant policies, token
 * pacing, grant-order determinism across engine-thread counts) and the
 * rotating-parity layer (layout, parity writes, degraded reads, the
 * parity-group audit).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/array.hh"
#include "core/array_gc.hh"
#include "core/gc.hh"
#include "sim/audit.hh"
#include "sim/registry.hh"
#include "sim/rng.hh"

namespace dssd
{
namespace
{

SsdConfig
testConfig(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    c.writeBuffer.capacityPages = 64;
    return c;
}

TEST(ArrayGcPolicyTest, NamesRoundTrip)
{
    for (ArrayGcPolicy p :
         {ArrayGcPolicy::Uncoordinated, ArrayGcPolicy::Staggered,
          ArrayGcPolicy::TokenBucket, ArrayGcPolicy::GlobalGreedy}) {
        auto parsed = parseArrayGcPolicy(arrayGcPolicyName(p));
        ASSERT_TRUE(parsed.has_value()) << arrayGcPolicyName(p);
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_FALSE(parseArrayGcPolicy("nonsense").has_value());
}

/** Bare scheduler on a bare engine; deliveries recorded in order. */
struct SchedFixture
{
    Engine e;
    std::vector<unsigned> delivered;
    std::vector<Tick> deliveredAt;
    std::unique_ptr<ArrayGcScheduler> s;

    explicit SchedFixture(const ArrayGcParams &p, unsigned shards = 4)
    {
        s = std::make_unique<ArrayGcScheduler>(
            e, p, shards, [this](unsigned shard) {
                delivered.push_back(shard);
                deliveredAt.push_back(e.now());
            });
    }
};

TEST(ArrayGcSchedulerTest, UncoordinatedGrantsEveryRequestAtOnce)
{
    ArrayGcParams p;
    p.policy = ArrayGcPolicy::Uncoordinated;
    SchedFixture f(p);
    for (unsigned s = 0; s < 4; ++s)
        f.s->requestGrant(s, 1);
    EXPECT_EQ(f.delivered, (std::vector<unsigned>{0, 1, 2, 3}));
    EXPECT_EQ(f.s->activeGrants(), 4u);
    EXPECT_EQ(f.s->waits(), 0u);
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_TRUE(f.s->granted(s)) << s;
}

TEST(ArrayGcSchedulerTest, StaggeredRotatesFifoUnderTheCap)
{
    ArrayGcParams p;
    p.policy = ArrayGcPolicy::Staggered;
    p.maxConcurrent = 1;
    SchedFixture f(p);
    for (unsigned s = 0; s < 4; ++s)
        f.s->requestGrant(s, 1);
    EXPECT_EQ(f.delivered, (std::vector<unsigned>{0}));
    EXPECT_EQ(f.s->waits(), 3u);
    EXPECT_TRUE(f.s->granted(0));
    EXPECT_FALSE(f.s->granted(1));

    f.s->releaseGrant(0, 10, 1);
    EXPECT_EQ(f.delivered, (std::vector<unsigned>{0, 1}));
    f.s->releaseGrant(1, 10, 1);
    f.s->releaseGrant(2, 10, 1);
    EXPECT_EQ(f.s->grantLog(), (std::vector<unsigned>{0, 1, 2, 3}));
    EXPECT_EQ(f.s->releases(), 3u);
    EXPECT_EQ(f.s->activeGrants(), 1u);
}

TEST(ArrayGcSchedulerTest, StaggeredHonorsMaxConcurrent)
{
    ArrayGcParams p;
    p.policy = ArrayGcPolicy::Staggered;
    p.maxConcurrent = 2;
    SchedFixture f(p);
    for (unsigned s = 0; s < 4; ++s)
        f.s->requestGrant(s, 1);
    EXPECT_EQ(f.delivered, (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(f.s->activeGrants(), 2u);
    f.s->releaseGrant(1, 0, 0);
    EXPECT_EQ(f.delivered, (std::vector<unsigned>{0, 1, 2}));
}

TEST(ArrayGcSchedulerTest, GreedyPicksTheWorstPressureFirst)
{
    ArrayGcParams p;
    p.policy = ArrayGcPolicy::GlobalGreedy;
    p.maxConcurrent = 1;
    SchedFixture f(p);
    // The first requester is granted immediately (nothing queued to
    // compare against); the rest queue with distinct pressures.
    f.s->requestGrant(0, 1);
    f.s->requestGrant(1, 5);
    f.s->requestGrant(2, 3);
    f.s->requestGrant(3, 5); // ties with shard 1 -> lower index wins
    f.s->releaseGrant(0, 0, 0);
    f.s->releaseGrant(1, 0, 0);
    f.s->releaseGrant(3, 0, 0);
    EXPECT_EQ(f.s->grantLog(), (std::vector<unsigned>{0, 1, 3, 2}));
}

TEST(ArrayGcSchedulerTest, TokenBucketPacesGrantsByEpoch)
{
    ArrayGcParams p;
    p.policy = ArrayGcPolicy::TokenBucket;
    p.tokensPerEpoch = 10;
    p.tokenEpoch = 1000;
    p.tokenCap = 20;
    SchedFixture f(p);
    // The bucket starts with one epoch of credit: the first grant
    // reserves all of it, so the second requester must wait for the
    // next refill.
    f.s->requestGrant(0, 1);
    ASSERT_EQ(f.delivered, (std::vector<unsigned>{0}));
    EXPECT_EQ(f.s->tokens(), 0);
    f.s->requestGrant(1, 1);
    EXPECT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(f.s->waits(), 1u);
    f.e.run();
    ASSERT_EQ(f.delivered, (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(f.deliveredAt[1], 1000u); // the first epoch boundary
}

TEST(ArrayGcSchedulerTest, TokenBucketDebtDelaysTheNextGrant)
{
    ArrayGcParams p;
    p.policy = ArrayGcPolicy::TokenBucket;
    p.tokensPerEpoch = 10;
    p.tokenEpoch = 1000;
    p.tokenCap = 20;
    SchedFixture f(p);
    f.s->requestGrant(0, 1);
    // An expensive window: 25 copies against a 10-token reservation
    // leaves the bucket 15 in debt.
    f.s->releaseGrant(0, 25, 0);
    EXPECT_EQ(f.s->tokens(), -15);
    EXPECT_EQ(f.s->tokensSpent(), 25u);
    f.s->requestGrant(1, 1);
    EXPECT_EQ(f.delivered.size(), 1u);
    f.e.run();
    ASSERT_EQ(f.delivered.size(), 2u);
    // -15 + 10/epoch: positive only at the second boundary.
    EXPECT_EQ(f.deliveredAt[1], 2000u);
}

TEST(ArrayGcSchedulerDeathTest, DoubleRequestIsRejected)
{
    ArrayGcParams p;
    p.policy = ArrayGcPolicy::Staggered;
    SchedFixture f(p);
    f.s->requestGrant(0, 1);
    EXPECT_DEATH(f.s->requestGrant(0, 1), "requested a grant");
}

//
// SsdArray integration: coordinated GC end to end, in legacy and
// group mode, plus the parity layer.
//

SsdArrayParams
coordParams(unsigned shards, ArrayGcPolicy policy, bool parity,
            unsigned engineThreads = 0)
{
    SsdArrayParams p;
    p.shards = shards;
    p.engineThreads = engineThreads;
    p.gc.policy = policy;
    p.parity = parity;
    return p;
}

TEST(ArrayCoordinationTest, CoordinatedForcedGcRotatesGrants)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline),
                 coordParams(2, ArrayGcPolicy::Staggered, false));
    arr.prefill(0.8, 0.5);
    ASSERT_NE(arr.gcScheduler(), nullptr);
    bool done = false;
    arr.forceAllGc(1, [&done] { done = true; });
    arr.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(arr.gcScheduler()->grants(), 2u);
    EXPECT_EQ(arr.gcScheduler()->releases(), 2u);
    EXPECT_EQ(arr.gcScheduler()->activeGrants(), 0u);
    // maxConcurrent=1 made the second shard wait for the first.
    EXPECT_EQ(arr.gcScheduler()->waits(), 1u);
    for (unsigned s = 0; s < 2; ++s) {
        EXPECT_GT(arr.shard(s).gc().blocksErased(), 0u) << s;
        EXPECT_FALSE(arr.gcScheduler()->granted(s)) << s;
    }
}

TEST(ArrayCoordinationTest, GroupModeCoordinatedForcedGcCompletes)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::DSSDNoc),
                 coordParams(2, ArrayGcPolicy::Staggered, false, 1));
    arr.prefill(0.8, 0.5);
    bool done = false;
    arr.forceAllGc(1, [&done] { done = true; });
    arr.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(arr.gcScheduler()->grants(), 2u);
    EXPECT_EQ(arr.gcScheduler()->releases(), 2u);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_GT(arr.shard(s).gc().blocksErased(), 0u) << s;
}

TEST(ArrayCoordinationTest, SchedulerStatsAreRegistered)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline),
                 coordParams(2, ArrayGcPolicy::TokenBucket, true));
    StatRegistry reg;
    arr.registerStats(reg, "arr");
    for (const char *k :
         {"arr.array.gc.requests", "arr.array.gc.grants",
          "arr.array.gc.waits", "arr.array.gc.releases",
          "arr.array.gc.active", "arr.array.gc.tokens_spent",
          "arr.array.gc.tokens", "arr.array.parity.degraded_reads",
          "arr.array.parity.reconstruction_reads",
          "arr.array.parity.parity_writes",
          "arr.array.parity.stolen_bytes",
          "arr.array.parity.in_flight"}) {
        EXPECT_TRUE(reg.has(k)) << k;
    }
}

/**
 * Seeded closed-loop workload over a coordinated parity array — the
 * same shape as the group determinism stress in array_test.cc, with
 * periodic array-wide forced GC so grants actually rotate. Returns
 * the scheduler's grant log and the full stats JSON.
 */
struct CoordRun
{
    std::string grantLog;
    std::string stats;
};

CoordRun
coordStressRun(unsigned threads, std::uint64_t seed)
{
    Engine e;
    SsdConfig cfg = testConfig(ArchKind::DSSDNoc);
    cfg.seed = seed;
    SsdArray arr(e, cfg,
                 coordParams(4, ArrayGcPolicy::Staggered, true,
                             threads));
    arr.prefill(0.7, 0.4);

    struct Loop
    {
        SsdArray &arr;
        Rng rng;
        std::uint64_t page;
        Lpn lpns;
        std::uint64_t issued = 0, completed = 0, limit;
        unsigned inflight = 0;
        bool gcBusy = false;

        void
        fill()
        {
            while (inflight < 12 && issued < limit) {
                ++inflight;
                ++issued;
                IoRequest req;
                req.kind = rng.uniformReal() < 0.5
                               ? IoRequest::Kind::Read
                               : IoRequest::Kind::Write;
                Lpn first = rng.uniformInt(0, lpns - 1);
                req.offset = first * page;
                // Clamp at the device end (out-of-range is fatal).
                req.bytes = page * std::min<std::uint64_t>(
                                       1 + rng.uniformInt(0, 3),
                                       lpns - first);
                arr.submit(req, [this] {
                    --inflight;
                    ++completed;
                    if (completed % 24 == 0 && !gcBusy) {
                        gcBusy = true;
                        arr.forceAllGc(1,
                                       [this] { gcBusy = false; });
                    }
                    fill();
                });
            }
        }
    };
    Loop loop{arr, Rng(seed + 17), cfg.geom.pageBytes,
              arr.lpnCount(), /*issued=*/0, /*completed=*/0,
              /*limit=*/240};
    loop.fill();
    arr.run();

    CoordRun out;
    for (unsigned s : arr.gcScheduler()->grantLog())
        out.grantLog += std::to_string(s) + ",";
    StatRegistry reg;
    arr.registerStats(reg, "arr");
    out.stats = reg.json();
    out.stats += "\ncompleted=" + std::to_string(loop.completed);
    return out;
}

// Grant decisions live on the host engine, so the grant ORDER must be
// identical in legacy shared-engine mode (0) and for any group worker
// count; the full stats additionally match across group worker counts
// (legacy mode is a different timing model, as for fig18).
TEST(ArrayCoordinationTest, GrantOrderIdenticalAcrossEngineModes)
{
    CoordRun legacy = coordStressRun(0, 4242);
    CoordRun serial = coordStressRun(1, 4242);
    CoordRun wide = coordStressRun(4, 4242);
    // The workload really rotated grants over the shards.
    EXPECT_GE(serial.grantLog.size(), 8u);
    EXPECT_EQ(legacy.grantLog, serial.grantLog);
    EXPECT_EQ(wide.grantLog, serial.grantLog);
    EXPECT_EQ(wide.stats, serial.stats);
}

TEST(ArrayCoordinationTest, StressRespondsToTheSeed)
{
    EXPECT_NE(coordStressRun(1, 4242).stats,
              coordStressRun(1, 2424).stats);
}

//
// Parity layout and the degraded-read path.
//

TEST(ArrayParityTest, LayoutRotatesParityAndShrinksTheLpnSpace)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline),
                 coordParams(4, ArrayGcPolicy::Uncoordinated, true));
    ASSERT_TRUE(arr.parityEnabled());
    // N-1 data shards per stripe: the host space drops accordingly.
    EXPECT_EQ(arr.lpnCount(),
              3 * arr.shard(0).mapping().lpnCount());
    for (Lpn lpn = 0; lpn < arr.lpnCount(); ++lpn) {
        Lpn stripe = arr.stripeOf(lpn);
        EXPECT_EQ(stripe, lpn / 3);
        unsigned data = arr.shardOf(lpn);
        unsigned parity = arr.parityShardOf(stripe);
        EXPECT_LT(data, 4u);
        EXPECT_NE(data, parity) << lpn;
        EXPECT_EQ(arr.localLpn(lpn), stripe);
    }
    // Parity rotates over every shard.
    EXPECT_EQ(arr.parityShardOf(0), 0u);
    EXPECT_EQ(arr.parityShardOf(1), 1u);
    EXPECT_EQ(arr.parityShardOf(5), 1u);
}

TEST(ArrayParityTest, EveryWriteAlsoWritesItsParityPage)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline),
                 coordParams(4, ArrayGcPolicy::Uncoordinated, true));
    Lpn lpn = 0;
    unsigned data = arr.shardOf(lpn);
    unsigned parity = arr.parityShardOf(arr.stripeOf(lpn));
    bool done = false;
    arr.writePage(lpn, [&done] { done = true; });
    EXPECT_EQ(arr.parityWritesInFlight(), 1u);
    arr.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(arr.parityWrites(), 1u);
    EXPECT_EQ(arr.parityWritesInFlight(), 0u);
    EXPECT_EQ(arr.shard(data).hostWrites(), 1u);
    EXPECT_EQ(arr.shard(parity).hostWrites(), 1u);
}

TEST(ArrayParityTest, ReadsDegradeWhileTheirShardHoldsAGrant)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline),
                 coordParams(4, ArrayGcPolicy::Staggered, true));
    arr.prefill(0.8, 0.5);
    arr.forceAllGc(1, [] {});
    // Step until the scheduler has handed out the first grant.
    while (arr.gcScheduler()->activeGrants() == 0 && e.step()) {
    }
    ASSERT_EQ(arr.gcScheduler()->activeGrants(), 1u);
    unsigned busy = 0;
    while (!arr.gcScheduler()->granted(busy))
        ++busy;

    // A read whose data shard is collecting reconstructs from the
    // N-1 peers; a read to an idle shard stays direct.
    Lpn degraded_lpn = 0;
    while (arr.shardOf(degraded_lpn) != busy)
        ++degraded_lpn;
    Lpn direct_lpn = 0;
    while (arr.shardOf(direct_lpn) == busy)
        ++direct_lpn;

    unsigned done = 0;
    arr.readPage(degraded_lpn, [&done] { ++done; });
    EXPECT_EQ(arr.degradedReads(), 1u);
    EXPECT_EQ(arr.reconstructionReads(), 3u);
    arr.readPage(direct_lpn, [&done] { ++done; });
    EXPECT_EQ(arr.degradedReads(), 1u);
    EXPECT_EQ(arr.reconstructionReads(), 3u);
    arr.run();
    EXPECT_EQ(done, 2u);
    EXPECT_EQ(arr.ioOutstanding(), 0u);
}

TEST(ArrayParityTest, ParityGroupAuditPassesUnderLoad)
{
    Engine e;
    SsdConfig cfg = testConfig(ArchKind::Baseline);
    SsdArray arr(e, cfg,
                 coordParams(4, ArrayGcPolicy::Staggered, true));
    arr.prefill(0.7, 0.4);
    Auditor auditor(AuditMode::Report);
    arr.registerAudits(auditor);
    EXPECT_GE(auditor.checkCount(), 1u);

    Rng rng(11);
    unsigned done = 0;
    for (int i = 0; i < 64; ++i) {
        Lpn lpn = rng.uniformInt(0, arr.lpnCount() - 1);
        if (i % 3 == 0)
            arr.readPage(lpn, [&done] { ++done; });
        else
            arr.writePage(lpn, [&done] { ++done; });
    }
    arr.forceAllGc(1, [] {});
    // Parity lags data mid-flight; the audit must hold at event
    // granularity, not just at quiescence.
    auditor.attach(e, 64);
    arr.run();
    auditor.detach();
    auditor.run();
    EXPECT_EQ(done, 64u);
    EXPECT_GT(auditor.runs(), 1u);
    EXPECT_TRUE(auditor.violations().empty());
}

} // namespace
} // namespace dssd
