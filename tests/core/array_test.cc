/**
 * Unit tests for the sharded SsdArray front-end: LPN-to-shard maps,
 * request fan-out, per-shard seeding, array-wide GC forcing, aggregate
 * accounting, and stat registration.
 */

#include <gtest/gtest.h>

#include "core/array.hh"
#include "core/gc.hh"
#include "sim/registry.hh"

namespace dssd
{
namespace
{

SsdConfig
testConfig(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    c.writeBuffer.capacityPages = 64;
    return c;
}

SsdArrayParams
arrayParams(unsigned shards,
            ShardingKind kind = ShardingKind::Modulo)
{
    SsdArrayParams p;
    p.shards = shards;
    p.sharding = kind;
    return p;
}

TEST(SsdArrayTest, ModuloShardingStripesTheLpnSpace)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(4));
    EXPECT_EQ(arr.shardCount(), 4u);
    for (Lpn lpn : {Lpn(0), Lpn(1), Lpn(7), Lpn(42)}) {
        EXPECT_EQ(arr.shardOf(lpn), lpn % 4);
        EXPECT_EQ(arr.localLpn(lpn), lpn / 4);
    }
}

TEST(SsdArrayTest, RangeShardingPartitionsTheLpnSpace)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline),
                 arrayParams(4, ShardingKind::Range));
    Lpn per_shard = arr.lpnCount() / 4;
    ASSERT_GT(per_shard, 0u);
    EXPECT_EQ(arr.shardOf(0), 0u);
    EXPECT_EQ(arr.shardOf(per_shard - 1), 0u);
    EXPECT_EQ(arr.shardOf(per_shard), 1u);
    EXPECT_EQ(arr.localLpn(per_shard + 5), 5u);
    EXPECT_EQ(arr.shardOf(3 * per_shard), 3u);
}

TEST(SsdArrayTest, LpnCountScalesWithShardCount)
{
    Engine e1, e4;
    SsdArray one(e1, testConfig(ArchKind::Baseline), arrayParams(1));
    SsdArray four(e4, testConfig(ArchKind::Baseline), arrayParams(4));
    EXPECT_EQ(one.lpnCount(), one.shard(0).mapping().lpnCount());
    EXPECT_EQ(four.lpnCount(), 4 * one.lpnCount());
}

TEST(SsdArrayTest, ShardSeedsDecorrelate)
{
    Engine e;
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.seed = 17;
    SsdArray arr(e, c, arrayParams(3));
    for (unsigned s = 0; s < 3; ++s)
        EXPECT_EQ(arr.shard(s).config().seed, 17u + s);
}

TEST(SsdArrayTest, WritePageRoutesToTheOwningShard)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    bool done = false;
    arr.writePage(3, [&done] { done = true; }); // 3 % 2 == shard 1
    e.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(arr.shard(0).hostWrites(), 0u);
    EXPECT_EQ(arr.shard(1).hostWrites(), 1u);
    EXPECT_EQ(arr.hostWrites(), 1u);
}

TEST(SsdArrayTest, SubmitFansOutAndCompletesExactlyOnce)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    IoRequest r;
    r.kind = IoRequest::Kind::Write;
    r.offset = 0;
    r.bytes = 32 * kKiB; // 8 pages, striped 4/4 over the two shards
    unsigned completions = 0;
    arr.submit(r, [&completions] { ++completions; });
    e.run();
    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(arr.hostWrites(), 8u);
    EXPECT_EQ(arr.shard(0).hostWrites(), 4u);
    EXPECT_EQ(arr.shard(1).hostWrites(), 4u);
}

TEST(SsdArrayTest, ReadsAggregateAcrossShards)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    arr.prefill(0.5, 0.0);
    unsigned done = 0;
    for (Lpn lpn = 0; lpn < 6; ++lpn)
        arr.readPage(lpn, [&done] { ++done; });
    e.run();
    EXPECT_EQ(done, 6u);
    EXPECT_EQ(arr.hostReads(), 6u);
    EXPECT_EQ(arr.shard(0).hostReads() + arr.shard(1).hostReads(), 6u);
    EXPECT_EQ(arr.ioOutstanding(), 0u);
}

TEST(SsdArrayTest, ForceAllGcCoversEveryShard)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    arr.prefill(0.8, 0.5);
    bool done = false;
    arr.forceAllGc(1, [&done] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_GT(arr.shard(s).gc().pagesMoved(), 0u) << "shard " << s;
    EXPECT_EQ(arr.gcPagesMoved(), arr.shard(0).gc().pagesMoved() +
                                      arr.shard(1).gc().pagesMoved());
    EXPECT_LT(arr.gcFirstStart(), maxTick);
    EXPECT_GT(arr.gcLastEnd(), 0u);
}

TEST(SsdArrayTest, RegisterStatsExportsAggregatesAndShards)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    StatRegistry reg;
    arr.registerStats(reg, "arr");
    EXPECT_DOUBLE_EQ(reg.value("arr.shards"), 2.0);
    EXPECT_TRUE(reg.has("arr.host.writes"));
    EXPECT_TRUE(reg.has("arr.shard0.host.writes"));
    EXPECT_TRUE(reg.has("arr.shard1.gc.pages_moved"));

    bool done = false;
    arr.writePage(2, [&done] { done = true; }); // shard 0
    e.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(reg.value("arr.host.writes"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("arr.shard0.host.writes"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("arr.shard1.host.writes"), 0.0);
}

} // namespace
} // namespace dssd
