/**
 * Unit tests for the sharded SsdArray front-end: LPN-to-shard maps,
 * request fan-out, per-shard seeding, array-wide GC forcing, aggregate
 * accounting, and stat registration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/array.hh"
#include "core/gc.hh"
#include "sim/registry.hh"
#include "sim/rng.hh"
#include "sim/trace.hh"

namespace dssd
{
namespace
{

SsdConfig
testConfig(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    c.writeBuffer.capacityPages = 64;
    return c;
}

SsdArrayParams
arrayParams(unsigned shards,
            ShardingKind kind = ShardingKind::Modulo)
{
    SsdArrayParams p;
    p.shards = shards;
    p.sharding = kind;
    return p;
}

TEST(SsdArrayTest, ModuloShardingStripesTheLpnSpace)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(4));
    EXPECT_EQ(arr.shardCount(), 4u);
    for (Lpn lpn : {Lpn(0), Lpn(1), Lpn(7), Lpn(42)}) {
        EXPECT_EQ(arr.shardOf(lpn), lpn % 4);
        EXPECT_EQ(arr.localLpn(lpn), lpn / 4);
    }
}

TEST(SsdArrayTest, RangeShardingPartitionsTheLpnSpace)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline),
                 arrayParams(4, ShardingKind::Range));
    Lpn per_shard = arr.lpnCount() / 4;
    ASSERT_GT(per_shard, 0u);
    EXPECT_EQ(arr.shardOf(0), 0u);
    EXPECT_EQ(arr.shardOf(per_shard - 1), 0u);
    EXPECT_EQ(arr.shardOf(per_shard), 1u);
    EXPECT_EQ(arr.localLpn(per_shard + 5), 5u);
    EXPECT_EQ(arr.shardOf(3 * per_shard), 3u);
}

TEST(SsdArrayTest, LpnCountScalesWithShardCount)
{
    Engine e1, e4;
    SsdArray one(e1, testConfig(ArchKind::Baseline), arrayParams(1));
    SsdArray four(e4, testConfig(ArchKind::Baseline), arrayParams(4));
    EXPECT_EQ(one.lpnCount(), one.shard(0).mapping().lpnCount());
    EXPECT_EQ(four.lpnCount(), 4 * one.lpnCount());
}

TEST(SsdArrayTest, ShardSeedsDecorrelate)
{
    Engine e;
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.seed = 17;
    SsdArray arr(e, c, arrayParams(3));
    for (unsigned s = 0; s < 3; ++s)
        EXPECT_EQ(arr.shard(s).config().seed, 17u + s);
}

TEST(SsdArrayTest, WritePageRoutesToTheOwningShard)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    bool done = false;
    arr.writePage(3, [&done] { done = true; }); // 3 % 2 == shard 1
    e.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(arr.shard(0).hostWrites(), 0u);
    EXPECT_EQ(arr.shard(1).hostWrites(), 1u);
    EXPECT_EQ(arr.hostWrites(), 1u);
}

TEST(SsdArrayTest, SubmitFansOutAndCompletesExactlyOnce)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    IoRequest r;
    r.kind = IoRequest::Kind::Write;
    r.offset = 0;
    r.bytes = 32 * kKiB; // 8 pages, striped 4/4 over the two shards
    unsigned completions = 0;
    arr.submit(r, [&completions] { ++completions; });
    e.run();
    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(arr.hostWrites(), 8u);
    EXPECT_EQ(arr.shard(0).hostWrites(), 4u);
    EXPECT_EQ(arr.shard(1).hostWrites(), 4u);
}

TEST(SsdArrayTest, SubmitAcceptsTheLastPageOfTheDevice)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    IoRequest r;
    r.kind = IoRequest::Kind::Write;
    r.offset = (arr.lpnCount() - 1) * arr.config().geom.pageBytes;
    r.bytes = arr.config().geom.pageBytes;
    bool done = false;
    arr.submit(r, [&done] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(arr.hostWrites(), 1u);
}

TEST(SsdArrayDeathTest, SubmitPastTheEndIsFatal)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    // One page in range, one page past the end: must be rejected
    // loudly instead of silently wrapping around the LPN space.
    IoRequest r;
    r.kind = IoRequest::Kind::Write;
    r.offset = (arr.lpnCount() - 1) * arr.config().geom.pageBytes;
    r.bytes = 2 * arr.config().geom.pageBytes;
    EXPECT_DEATH(arr.submit(r, [] {}), "extends beyond");
}

TEST(SsdArrayDeathTest, SubmitWithOffsetBeyondTheEndIsFatal)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    IoRequest r;
    r.kind = IoRequest::Kind::Read;
    r.offset = arr.lpnCount() * arr.config().geom.pageBytes;
    r.bytes = arr.config().geom.pageBytes;
    EXPECT_DEATH(arr.submit(r, [] {}), "extends beyond");
}

TEST(SsdArrayTest, ReadsAggregateAcrossShards)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    arr.prefill(0.5, 0.0);
    unsigned done = 0;
    for (Lpn lpn = 0; lpn < 6; ++lpn)
        arr.readPage(lpn, [&done] { ++done; });
    e.run();
    EXPECT_EQ(done, 6u);
    EXPECT_EQ(arr.hostReads(), 6u);
    EXPECT_EQ(arr.shard(0).hostReads() + arr.shard(1).hostReads(), 6u);
    EXPECT_EQ(arr.ioOutstanding(), 0u);
}

TEST(SsdArrayTest, ForceAllGcCoversEveryShard)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    arr.prefill(0.8, 0.5);
    bool done = false;
    arr.forceAllGc(1, [&done] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_GT(arr.shard(s).gc().pagesMoved(), 0u) << "shard " << s;
    EXPECT_EQ(arr.gcPagesMoved(), arr.shard(0).gc().pagesMoved() +
                                      arr.shard(1).gc().pagesMoved());
    EXPECT_LT(arr.gcFirstStart(), maxTick);
    EXPECT_GT(arr.gcLastEnd(), 0u);
}

TEST(SsdArrayTest, RegisterStatsExportsAggregatesAndShards)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), arrayParams(2));
    StatRegistry reg;
    arr.registerStats(reg, "arr");
    EXPECT_DOUBLE_EQ(reg.value("arr.shards"), 2.0);
    EXPECT_TRUE(reg.has("arr.host.writes"));
    EXPECT_TRUE(reg.has("arr.shard0.host.writes"));
    EXPECT_TRUE(reg.has("arr.shard1.gc.pages_moved"));

    bool done = false;
    arr.writePage(2, [&done] { done = true; }); // shard 0
    e.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(reg.value("arr.host.writes"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("arr.shard0.host.writes"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("arr.shard1.host.writes"), 0.0);
}

//
// Engine-group mode (params.engineThreads >= 1): per-shard engines
// under the conservative EngineGroup, driven through arr.run().
//

SsdArrayParams
groupParams(unsigned shards, unsigned threads)
{
    SsdArrayParams p;
    p.shards = shards;
    p.engineThreads = threads;
    return p;
}

TEST(SsdArrayGroupTest, GroupModeCompletesHostIo)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), groupParams(2, 1));
    ASSERT_NE(arr.engineGroup(), nullptr);
    EXPECT_EQ(arr.engineGroup()->shardCount(), 2u);

    unsigned done = 0;
    for (Lpn lpn = 0; lpn < 8; ++lpn)
        arr.writePage(lpn, [&done] { ++done; });
    arr.run();
    EXPECT_EQ(done, 8u);
    EXPECT_EQ(arr.hostWrites(), 8u);
    EXPECT_EQ(arr.shard(0).hostWrites(), 4u);
    EXPECT_EQ(arr.shard(1).hostWrites(), 4u);
    EXPECT_EQ(arr.ioOutstanding(), 0u);
}

TEST(SsdArrayGroupTest, GroupSubmitFansOutAndCompletesOnce)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), groupParams(4, 1));
    IoRequest req;
    req.kind = IoRequest::Kind::Write;
    req.offset = 0;
    req.bytes = 16 * arr.config().geom.pageBytes;
    unsigned completions = 0;
    arr.submit(req, [&completions] { ++completions; });
    arr.run();
    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(arr.hostWrites(), 16u);
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(arr.shard(s).hostWrites(), 4u) << "shard " << s;
}

TEST(SsdArrayGroupTest, GroupForceAllGcCoversEveryShard)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), groupParams(2, 1));
    arr.prefill(0.8, 0.5);
    bool done = false;
    arr.forceAllGc(1, [&done] { done = true; });
    arr.run();
    EXPECT_TRUE(done);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_GT(arr.shard(s).gc().pagesMoved(), 0u) << "shard " << s;
}

TEST(SsdArrayGroupTest, GroupStatsAreRegistered)
{
    Engine e;
    SsdArray arr(e, testConfig(ArchKind::Baseline), groupParams(2, 1));
    StatRegistry reg;
    arr.registerStats(reg, "arr");
    EXPECT_TRUE(reg.has("arr.group.epochs"));
    EXPECT_TRUE(reg.has("arr.group.msgs_to_shards"));
    EXPECT_TRUE(reg.has("arr.group.msgs_to_host"));
    EXPECT_DOUBLE_EQ(
        reg.value("arr.group.lookahead_ticks"),
        static_cast<double>(arr.config().firmwareLatency));
}

/**
 * Seeded closed-loop workload that interleaves host fan-out (mixed
 * read/write submits at a fixed queue depth) with periodic array-wide
 * forced GC, then returns the complete stats JSON. Pure function of
 * (seed, shards) — the engine-thread count must not leak into it.
 */
std::string
stressRun(unsigned shards, unsigned threads, std::uint64_t seed)
{
    Engine e;
    SsdConfig cfg = testConfig(ArchKind::DSSDNoc);
    cfg.seed = seed;
    SsdArray arr(e, cfg, groupParams(shards, threads));
    arr.prefill(0.7, 0.4);

    struct Loop
    {
        SsdArray &arr;
        Rng rng;
        std::uint64_t page;
        Lpn lpns;
        std::uint64_t issued = 0, completed = 0, limit;
        unsigned inflight = 0;
        bool gcBusy = false;

        void
        fill()
        {
            while (inflight < 12 && issued < limit) {
                ++inflight;
                ++issued;
                IoRequest req;
                req.kind = rng.uniformReal() < 0.3
                               ? IoRequest::Kind::Read
                               : IoRequest::Kind::Write;
                Lpn first = rng.uniformInt(0, lpns - 1);
                req.offset = first * page;
                // Clamp at the device end: out-of-range requests are
                // a fatal host error, not silent wraparound.
                req.bytes = page * std::min<std::uint64_t>(
                                       1 + rng.uniformInt(0, 3),
                                       lpns - first);
                arr.submit(req, [this] {
                    --inflight;
                    ++completed;
                    // Interleave shard-local GC with the host stream:
                    // every 32nd completion kicks every shard's GC.
                    if (completed % 32 == 0 && !gcBusy) {
                        gcBusy = true;
                        arr.forceAllGc(1,
                                       [this] { gcBusy = false; });
                    }
                    fill();
                });
            }
        }
    };
    Loop loop{arr, Rng(seed + 17), cfg.geom.pageBytes,
              arr.lpnCount(), /*issued=*/0, /*completed=*/0,
              /*limit=*/400};
    loop.fill();
    arr.run();

    StatRegistry reg;
    arr.registerStats(reg, "arr");
    std::string out = reg.json();
    out += "\ncompleted=" + std::to_string(loop.completed);
    out += "\nnow=" + std::to_string(e.now());
    return out;
}

// The cross-thread determinism bar: the same seeded stress workload
// must produce byte-identical stats for 1, 2, and 8 worker threads.
TEST(SsdArrayGroupTest, StressStatsIdenticalAcrossWorkerCounts)
{
    std::string serial = stressRun(4, 1, 12345);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(stressRun(4, 2, 12345), serial);
    EXPECT_EQ(stressRun(4, 8, 12345), serial);
}

TEST(SsdArrayGroupTest, StressStatsRespondToTheSeed)
{
    // Sanity check that the comparison above is not vacuous.
    EXPECT_NE(stressRun(4, 1, 12345), stressRun(4, 1, 54321));
}

/**
 * Group-mode tracing: a tracer attached to the host engine before
 * construction is propagated to the shard engines (per-shard buffers
 * drained at the epoch barriers), and the resulting trace file is
 * byte-identical for any worker count.
 */
std::string
traceRun(unsigned shards, unsigned threads, std::uint64_t seed)
{
    std::string path = "/tmp/dssd_array_trace_" +
                       std::to_string(threads) + ".json";
    {
        Engine e;
        Tracer tracer(path);
        e.setTracer(&tracer);
        SsdConfig cfg = testConfig(ArchKind::DSSDNoc);
        cfg.seed = seed;
        SsdArray arr(e, cfg, groupParams(shards, threads));
        arr.prefill(0.5, 0.3);
        Rng rng(seed + 17);
        std::uint64_t page = cfg.geom.pageBytes;
        for (int i = 0; i < 48; ++i) {
            IoRequest req;
            req.kind = i % 3 == 0 ? IoRequest::Kind::Read
                                  : IoRequest::Kind::Write;
            req.offset =
                rng.uniformInt(0, arr.lpnCount() - 1) * page;
            req.bytes = page;
            arr.submit(req, [] {});
        }
        arr.run();
        tracer.finish();
    }
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::remove(path.c_str());
    return ss.str();
}

TEST(SsdArrayGroupTest, TraceIsIdenticalAcrossWorkerCounts)
{
    std::string serial = traceRun(4, 1, 777);
    EXPECT_FALSE(serial.empty());
#if DSSD_TRACING
    // Shard-side emission families actually crossed the buffers.
    EXPECT_NE(serial.find("\"ph\":\"X\""), std::string::npos);
#endif
    EXPECT_EQ(traceRun(4, 2, 777), serial);
    EXPECT_EQ(traceRun(4, 8, 777), serial);
}

} // namespace
} // namespace dssd
