/** Unit tests for the SSD top-level datapaths. */

#include <gtest/gtest.h>

#include "core/gc.hh"
#include "core/ssd.hh"

namespace dssd
{
namespace
{

SsdConfig
testConfig(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    c.writeBuffer.capacityPages = 64;
    return c;
}

TEST(SsdTest, ConstructsEveryArch)
{
    for (ArchKind k : {ArchKind::Baseline, ArchKind::BW, ArchKind::DSSD,
                       ArchKind::DSSDBus, ArchKind::DSSDNoc}) {
        Engine e;
        Ssd ssd(e, testConfig(k));
        EXPECT_EQ(ssd.channelCount(), 4u) << archName(k);
        if (isDecoupled(k)) {
            EXPECT_NE(ssd.decoupledController(0), nullptr);
            EXPECT_NE(ssd.interconnect(), nullptr);
        } else {
            EXPECT_EQ(ssd.decoupledController(0), nullptr);
            EXPECT_EQ(ssd.interconnect(), nullptr);
        }
        EXPECT_EQ(ssd.noc() != nullptr, k == ArchKind::DSSDNoc);
    }
}

TEST(SsdTest, NocBisectionMatchesExtraBandwidth)
{
    Engine e;
    Ssd ssd(e, testConfig(ArchKind::DSSDNoc));
    ASSERT_NE(ssd.noc(), nullptr);
    double link = toGbPerSec(ssd.noc()->params().linkBandwidth);
    double bisection = link * ssd.noc()->topology().bisectionLinks();
    EXPECT_DOUBLE_EQ(bisection,
                     toGbPerSec(ssd.config().interconnectBandwidth()));
}

TEST(SsdTest, WritePageBufferedCompletesWithoutFlash)
{
    Engine e;
    Ssd ssd(e, testConfig(ArchKind::Baseline));
    bool done = false;
    ssd.writePage(0, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    // Buffered write: ack after DRAM, no flash program yet.
    EXPECT_EQ(ssd.channel(0).programs(), 0u);
    EXPECT_TRUE(ssd.writeBuffer().readHit(0));
}

TEST(SsdTest, ReadMissGoesToFlash)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.5, 0.0);
    bool done = false;
    ssd.readPage(0, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    std::uint64_t reads = 0;
    for (unsigned ch = 0; ch < ssd.channelCount(); ++ch)
        reads += ssd.channel(ch).reads();
    EXPECT_EQ(reads, 1u);
    // Miss path crossed the system bus once.
    EXPECT_GT(ssd.systemBus().channel().busyTicks(tagIo), 0u);
}

TEST(SsdTest, ReadHitServedByDram)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysHit;
    Engine e;
    Ssd ssd(e, c);
    bool done = false;
    ssd.readPage(0, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    EXPECT_GT(ssd.dram().port().busyTicks(tagIo), 0u);
    std::uint64_t reads = 0;
    for (unsigned ch = 0; ch < ssd.channelCount(); ++ch)
        reads += ssd.channel(ch).reads();
    EXPECT_EQ(reads, 0u);
}

TEST(SsdTest, ReadUnwrittenPageCompletesInstantly)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    bool done = false;
    ssd.readPage(5, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(ssd.channel(0).reads(), 0u);
}

TEST(SsdTest, DirectWriteProgramsFlash)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    bool done = false;
    ssd.writePage(9, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    std::uint64_t programs = 0;
    for (unsigned ch = 0; ch < ssd.channelCount(); ++ch)
        programs += ssd.channel(ch).programs();
    EXPECT_EQ(programs, 1u);
    EXPECT_TRUE(ssd.mapping().translate(9).has_value());
}

TEST(SsdTest, BufferedWritesFlushAtWatermark)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.capacityPages = 16;
    Engine e;
    Ssd ssd(e, c);
    unsigned done = 0;
    for (Lpn l = 0; l < 15; ++l)
        ssd.writePage(l, [&] { ++done; });
    e.run();
    EXPECT_EQ(done, 15u);
    EXPECT_GT(ssd.flushedPages(), 0u);
    std::uint64_t programs = 0;
    for (unsigned ch = 0; ch < ssd.channelCount(); ++ch)
        programs += ssd.channel(ch).programs();
    EXPECT_EQ(programs, ssd.flushedPages());
}

TEST(SsdTest, SubmitSplitsRequestIntoPages)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    IoRequest r;
    r.kind = IoRequest::Kind::Write;
    r.offset = 0;
    r.bytes = 32 * kKiB; // 8 pages
    bool done = false;
    ssd.submit(r, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    std::uint64_t programs = 0;
    for (unsigned ch = 0; ch < ssd.channelCount(); ++ch)
        programs += ssd.channel(ch).programs();
    EXPECT_EQ(programs, 8u);
    EXPECT_EQ(ssd.hostWrites(), 8u);
}

TEST(SsdTest, UnalignedRequestCoversStraddledPages)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    Engine e;
    Ssd ssd(e, c);
    IoRequest r;
    r.kind = IoRequest::Kind::Write;
    r.offset = 2 * kKiB;   // middle of page 0
    r.bytes = 4 * kKiB;    // spills into page 1
    bool done = false;
    ssd.submit(r, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(ssd.hostWrites(), 2u);
}

TEST(SsdTest, GcCopyBaselineUsesBusTwiceAndDramTwice)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.5, 0.0);
    PhysAddr src = ssd.mapping().geometry().pageAddr(
        *ssd.mapping().translate(0));
    PhysAddr dst = ssd.mapping().allocateInUnit(0, 0);
    bool done = false;
    ssd.gcCopyPage(src, dst, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    std::uint64_t page = c.geom.pageBytes;
    EXPECT_EQ(ssd.systemBus().channel().bytesMoved(tagGc), 2 * page);
    EXPECT_EQ(ssd.dram().port().bytesMoved(tagGc), 2 * page);
}

TEST(SsdTest, GcCopyDssdNeverTouchesFrontEnd)
{
    for (ArchKind k :
         {ArchKind::DSSDBus, ArchKind::DSSDNoc}) {
        SsdConfig c = testConfig(k);
        Engine e;
        Ssd ssd(e, c);
        ssd.prefill(0.5, 0.0);
        PhysAddr src = ssd.mapping().geometry().pageAddr(
            *ssd.mapping().translate(0));
        PhysAddr dst = ssd.mapping().allocateInUnit(0, 12);
        bool done = false;
        ssd.gcCopyPage(src, dst, [&] { done = true; });
        e.run();
        EXPECT_TRUE(done) << archName(k);
        EXPECT_EQ(ssd.systemBus().channel().bytesMoved(tagGc), 0u)
            << archName(k);
        EXPECT_EQ(ssd.dram().port().bytesMoved(tagGc), 0u)
            << archName(k);
    }
}

TEST(SsdTest, GcCopyDssdVariantRidesSystemBusOnce)
{
    SsdConfig c = testConfig(ArchKind::DSSD);
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.5, 0.0);
    PhysAddr src = ssd.mapping().geometry().pageAddr(
        *ssd.mapping().translate(0));
    // Cross-channel destination so the interconnect is used.
    PhysAddr dst = ssd.mapping().allocateInUnit(0, 12);
    ASSERT_NE(ssd.mapping().unitOf(dst) / 4, src.channel);
    bool done = false;
    ssd.gcCopyPage(src, dst, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    // One bus crossing (ctrl to ctrl), not two, and no DRAM.
    EXPECT_EQ(ssd.systemBus().channel().bytesMoved(tagGc),
              c.geom.pageBytes);
    EXPECT_EQ(ssd.dram().port().bytesMoved(tagGc), 0u);
}

TEST(SsdTest, DirectWriteStallsUntilSpaceIsReclaimed)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    // Overwrite-churn a small LPN set until a host write can no longer
    // allocate: each rewrite consumes a fresh page and only
    // invalidates the old one, so the free pool drains with nothing
    // erased.
    Lpn l = 0;
    while (ssd.mapping().hostCanAllocate())
        ssd.mapping().allocate(l++ % 8);

    bool done = false;
    ssd.writePage(0, [&done] { done = true; });
    e.runUntil(usToTicks(100));
    EXPECT_FALSE(done); // write-through path is blocked on space

    // Reclaim fully-invalid blocks, as GC would.
    const FlashGeometry &g = ssd.mapping().geometry();
    for (std::uint32_t u = 0; u < ssd.mapping().unitCount(); ++u) {
        for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b) {
            const BlockState &s = ssd.mapping().blockState(u, b);
            if (!s.isFree && !s.isBad && s.validCount == 0 &&
                s.writePtr == g.pagesPerBlock) {
                ssd.mapping().eraseBlock(u, b);
            }
        }
    }
    e.run();
    EXPECT_TRUE(done);
    // The stall was charged to the request's firmware/other bucket.
    EXPECT_GE(ssd.ioBreakdown().mean().other, usToTicks(100));
}

TEST(SsdTest, BufferedWriteStallsWhileFullAndResumesAfterDrain)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::Real;
    c.writeBuffer.capacityPages = 4;
    Engine e;
    Ssd ssd(e, c);
    // Fill the write cache to capacity (state-level: no timing).
    for (Lpn lpn = 100; lpn < 104; ++lpn)
        ssd.writeBuffer().insert(lpn);
    ASSERT_EQ(ssd.writeBuffer().occupancy(),
              ssd.writeBuffer().capacity());

    // A write to a non-resident page must stall on the flusher, which
    // the stall path itself kicks off; it resumes as soon as a page is
    // pulled for write-back.
    bool done = false;
    ssd.writePage(0, [&done] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    // Backpressure engaged (stall time accumulated) and the flusher
    // made room by writing pages to flash.
    EXPECT_GT(ssd.ioBreakdown().mean().other, 0u);
    EXPECT_GT(ssd.flushedPages(), 0u);
    EXPECT_LE(ssd.writeBuffer().occupancy(),
              ssd.writeBuffer().capacity());
    EXPECT_TRUE(ssd.writeBuffer().readHit(0)); // the write landed
    std::uint64_t programs = 0;
    for (unsigned ch = 0; ch < ssd.channelCount(); ++ch)
        programs += ssd.channel(ch).programs();
    EXPECT_EQ(programs, ssd.flushedPages());
}

TEST(SsdTest, IoBreakdownAccumulates)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.5, 0.0);
    for (Lpn l = 0; l < 4; ++l)
        ssd.readPage(l, [] {});
    e.run();
    EXPECT_EQ(ssd.ioBreakdown().count, 4u);
    LatencyBreakdown m = ssd.ioBreakdown().mean();
    EXPECT_GT(m.flashMem, 0u);
    EXPECT_GT(m.flashBus, 0u);
    EXPECT_GT(m.systemBus, 0u);
}

} // namespace
} // namespace dssd
