/** Unit tests for the GC engine and its scheduling policies. */

#include <gtest/gtest.h>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "sim/registry.hh"

namespace dssd
{
namespace
{

SsdConfig
gcConfig(ArchKind arch, GcPolicy policy = GcPolicy::Parallel)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    c.gc.policy = policy;
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    return c;
}

TEST(GcEngineTest, ForcedGcReclaimsBlocks)
{
    Engine e;
    Ssd ssd(e, gcConfig(ArchKind::Baseline));
    ssd.prefill(0.8, 0.3);
    bool done = false;
    ssd.gc().forceAll(1, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    EXPECT_GT(ssd.gc().blocksErased(), 0u);
    EXPECT_GT(ssd.gc().pagesMoved(), 0u);
    EXPECT_FALSE(ssd.gc().anyActive());
}

TEST(GcEngineTest, ForcedGcWorksOnEveryArch)
{
    for (ArchKind k : {ArchKind::Baseline, ArchKind::BW, ArchKind::DSSD,
                       ArchKind::DSSDBus, ArchKind::DSSDNoc}) {
        Engine e;
        Ssd ssd(e, gcConfig(k));
        ssd.prefill(0.8, 0.3);
        bool done = false;
        ssd.gc().forceAll(2, [&] { done = true; });
        e.run();
        EXPECT_TRUE(done) << archName(k);
        EXPECT_GT(ssd.gc().blocksErased(), 0u) << archName(k);
    }
}

TEST(GcEngineTest, ValidDataSurvivesGc)
{
    Engine e;
    Ssd ssd(e, gcConfig(ArchKind::DSSDNoc));
    ssd.prefill(0.8, 0.3);
    std::uint64_t valid_before = ssd.mapping().totalValidPages();
    // Record where a handful of LPNs live.
    std::vector<Lpn> probes;
    for (Lpn l = 0; l < ssd.mapping().lpnCount(); l += 97) {
        if (ssd.mapping().translate(l))
            probes.push_back(l);
    }
    ssd.gc().forceAll(2, [] {});
    e.run();
    EXPECT_EQ(ssd.mapping().totalValidPages(), valid_before);
    for (Lpn l : probes)
        EXPECT_TRUE(ssd.mapping().translate(l).has_value()) << l;
}

TEST(GcEngineTest, ThresholdTriggersGcUnderWritePressure)
{
    SsdConfig c = gcConfig(ArchKind::Baseline);
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.85, 0.3);
    // Rewrite pages until allocations push units to the GC threshold.
    unsigned done = 0;
    for (Lpn l = 0; l < 600; ++l)
        ssd.writePage(l % ssd.mapping().lpnCount(), [&] { ++done; });
    e.run();
    EXPECT_EQ(done, 600u);
    EXPECT_GT(ssd.gc().blocksErased(), 0u);
    EXPECT_LT(ssd.gc().firstGcStart(), maxTick);
    EXPECT_GT(ssd.gc().lastGcEnd(), 0u);
}

TEST(GcEngineTest, GcFreesSpaceIndefinitely)
{
    // Sustained random overwrites must never run out of blocks.
    SsdConfig c = gcConfig(ArchKind::DSSDNoc);
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.85, 0.2);
    unsigned done = 0;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        Lpn l = rng.uniformInt(0, ssd.mapping().lpnCount() - 1);
        ssd.writePage(l, [&] { ++done; });
        // Interleave event processing so GC keeps up.
        if (i % 64 == 63)
            e.run();
    }
    e.run();
    EXPECT_EQ(done, 2000u);
    for (std::uint32_t u = 0; u < ssd.mapping().unitCount(); ++u)
        EXPECT_TRUE(ssd.mapping().canAllocate(u)) << u;
}

TEST(GcEngineTest, CopyLatencyRecorded)
{
    Engine e;
    Ssd ssd(e, gcConfig(ArchKind::Baseline));
    ssd.prefill(0.8, 0.3);
    ssd.gc().forceAll(1, [] {});
    e.run();
    EXPECT_EQ(ssd.gc().copyLatency().count(), ssd.gc().pagesMoved());
    EXPECT_GT(ssd.gc().copyLatency().mean(), 0.0);
}

TEST(GcEngineTest, PreemptivePostponesWhileIoPending)
{
    // With permanently pending I/O and threshold-triggered GC,
    // preemptive GC should move fewer pages than parallel GC in the
    // same window (it keeps postponing copies).
    auto run = [](GcPolicy pol) {
        SsdConfig c = gcConfig(ArchKind::Baseline, pol);
        c.gcFreeBlockTarget = 6; // keep GC hungry once triggered
        Engine e;
        Ssd ssd(e, c);
        ssd.prefill(0.85, 0.3);
        // Keep I/O pending the whole time.
        std::function<void()> keep_reading = [&] {
            // Re-issue with a small delay: an unmapped LPN completes
            // instantly and would otherwise spin at one tick.
            ssd.readPage(1, [&] { e.schedule(100, keep_reading); });
        };
        keep_reading();
        // A burst of writes pushes the units over the GC threshold.
        for (Lpn l = 0; l < 200; ++l)
            ssd.writePage(l, [] {});
        e.runUntil(20 * tickMs);
        return ssd.gc().pagesMoved();
    };
    std::uint64_t parallel = run(GcPolicy::Parallel);
    std::uint64_t preempt = run(GcPolicy::Preemptive);
    EXPECT_GT(parallel, 0u);
    EXPECT_LT(preempt, parallel);
}

TEST(GcEngineTest, TinyTailSlicesYieldToIo)
{
    SsdConfig c = gcConfig(ArchKind::Baseline, GcPolicy::TinyTail);
    c.gc.tinyTailSlicePages = 2;
    c.gc.tinyTailYieldNs = 50000;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.8, 0.3);
    // Pending I/O forces slicing.
    std::function<void()> keep_reading = [&] {
        // Re-issue with a small delay: an unmapped LPN completes
        // instantly and would otherwise spin at one tick.
        ssd.readPage(1, [&] { e.schedule(100, keep_reading); });
    };
    keep_reading();
    bool done = false;
    ssd.gc().forceAll(1, [&] { done = true; });
    e.runUntil(50 * tickMs);
    EXPECT_TRUE(done);
    EXPECT_GT(ssd.gc().pagesMoved(), 0u);
}

TEST(GcEngineTest, StraddlingThresholdVictimKeepsTheForcedBudget)
{
    Engine e;
    Ssd ssd(e, gcConfig(ArchKind::Baseline));
    ssd.prefill(0.85, 0.3);
    // Rewrite pages one at a time until a threshold-triggered round
    // is mid-victim, keeping no other host work in flight so the
    // forced round below is the only erase source.
    Lpn lpns = ssd.mapping().lpnCount();
    std::uint64_t issued = 0, completed = 0;
    while (!ssd.gc().anyActive()) {
        if (issued == completed)
            ssd.writePage(issued++ % lpns, [&] { ++completed; });
        ASSERT_TRUE(e.step()) << "GC never triggered";
    }
    ASSERT_TRUE(ssd.gc().anyActive());
    EXPECT_EQ(ssd.gc().activeUnits(), 1u);

    // forceAll lands while the threshold victim is still draining:
    // that victim must not consume the forced budget, so the round
    // erases one forced victim per unit ON TOP of the straddler —
    // unitCount + 1 erases, not unitCount.
    std::uint64_t before = ssd.gc().blocksErased();
    unsigned done = 0;
    std::uint64_t erased_at_done = 0;
    ssd.gc().forceAll(1, [&] {
        ++done;
        erased_at_done = ssd.gc().blocksErased();
    });
    e.run();
    EXPECT_EQ(done, 1u);
    EXPECT_EQ(erased_at_done - before, ssd.mapping().unitCount() + 1);
    EXPECT_FALSE(ssd.gc().anyActive());
}

TEST(GcEngineTest, RoundTimingTracksEveryRound)
{
    Engine e;
    Ssd ssd(e, gcConfig(ArchKind::Baseline));
    ssd.prefill(0.8, 0.3);
    ssd.gc().forceAll(1, [] {});
    e.run();
    ASSERT_EQ(ssd.gc().roundsStarted(), 1u);
    ASSERT_EQ(ssd.gc().roundDuration().count(), 1u);
    Tick first_start = ssd.gc().firstGcStart();
    ASSERT_LT(first_start, maxTick);

    // A second round after an idle gap: its span must be measured
    // from its own start tick, not the first round's.
    Tick rearm = e.now() + 5 * tickMs;
    bool second_done = false;
    e.schedule(5 * tickMs, [&] {
        ssd.gc().forceAll(1, [&second_done] { second_done = true; });
    });
    e.run();
    EXPECT_TRUE(second_done);
    EXPECT_EQ(ssd.gc().roundsStarted(), 2u);
    EXPECT_EQ(ssd.gc().roundDuration().count(), 2u);
    EXPECT_GE(ssd.gc().lastRoundStart(), rearm);
    // Neither sampled span covers the idle gap between the rounds.
    EXPECT_LT(ssd.gc().roundDuration().max(),
              static_cast<double>(5 * tickMs));
    // The set-once first-start marker is unchanged by later rounds.
    EXPECT_EQ(ssd.gc().firstGcStart(), first_start);
}

TEST(GcEngineDeathTest, DoubleForceIsRejected)
{
    Engine e;
    Ssd ssd(e, gcConfig(ArchKind::Baseline));
    ssd.prefill(0.8, 0.3);
    ssd.gc().forceAll(1, [] {});
    EXPECT_DEATH(ssd.gc().forceAll(1, [] {}), "forceAll");
}

//
// Preemptible GC rounds (GcParams::preemptible): pause at copy-quantum
// boundaries while host I/O is outstanding, resume deterministically.
//

SsdConfig
preemptConfig(ArchKind arch)
{
    SsdConfig c = gcConfig(arch);
    c.gc.preemptible = true;
    c.gc.preemptQuantumPages = 2;
    c.gc.preemptResumeNs = 5000;
    return c;
}

TEST(PreemptibleGcTest, YieldsToHostIoAndStillCompletes)
{
    Engine e;
    Ssd ssd(e, preemptConfig(ArchKind::Baseline));
    ssd.prefill(0.85, 0.3);
    // Paced overwrites keep host I/O outstanding while threshold
    // rounds run without driving free blocks to the livelock floor
    // (an unpaced burst would pin free <= 1, where pausing is
    // correctly forbidden).
    unsigned done = 0;
    for (Lpn l = 0; l < 900; ++l) {
        ssd.writePage(l % ssd.mapping().lpnCount(), [&] { ++done; });
        if (l % 64 == 63)
            e.run();
    }
    e.run();
    EXPECT_EQ(done, 900u);
    EXPECT_GT(ssd.gc().preemptYields(), 0u);
    EXPECT_EQ(ssd.gc().preemptResumes(), ssd.gc().preemptYields());
    EXPECT_EQ(ssd.gc().pausedUnits(), 0u);
    EXPECT_FALSE(ssd.gc().anyActive());
    for (std::uint32_t u = 0; u < ssd.mapping().unitCount(); ++u)
        EXPECT_TRUE(ssd.mapping().canAllocate(u)) << u;
}

TEST(PreemptibleGcTest, SustainedPressureNeverStalls)
{
    // The livelock guard: a unit down to its last reserve blocks must
    // finish its round instead of pausing, so sustained random
    // overwrites keep completing under preemption.
    Engine e;
    Ssd ssd(e, preemptConfig(ArchKind::DSSDNoc));
    ssd.prefill(0.85, 0.2);
    unsigned done = 0;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        Lpn l = rng.uniformInt(0, ssd.mapping().lpnCount() - 1);
        ssd.writePage(l, [&] { ++done; });
        if (i % 64 == 63)
            e.run();
    }
    e.run();
    EXPECT_EQ(done, 2000u);
    EXPECT_FALSE(ssd.gc().anyActive());
    for (std::uint32_t u = 0; u < ssd.mapping().unitCount(); ++u)
        EXPECT_TRUE(ssd.mapping().canAllocate(u)) << u;
}

TEST(PreemptibleGcTest, ForcedRoundsIgnoreThePauseGate)
{
    // forceAll runs with no host I/O outstanding, so a forced round
    // never pauses and the preempt counters stay at zero.
    Engine e;
    Ssd ssd(e, preemptConfig(ArchKind::Baseline));
    ssd.prefill(0.8, 0.3);
    bool fdone = false;
    ssd.gc().forceAll(2, [&] { fdone = true; });
    e.run();
    EXPECT_TRUE(fdone);
    EXPECT_EQ(ssd.gc().preemptYields(), 0u);
}

TEST(PreemptibleGcTest, CoordinatedRoundYieldsAndReacquiresTheGrant)
{
    // Under array coordination a fully-paused engine gives the grant
    // back (reporting the partial round's work) and re-requests it
    // when the resume timer fires.
    Engine e;
    Ssd ssd(e, preemptConfig(ArchKind::Baseline));
    ssd.prefill(0.85, 0.3);

    unsigned requests = 0;
    unsigned releases = 0;
    std::uint64_t released_copies = 0;
    GcCoordinationHooks hooks;
    hooks.request = [&](std::uint32_t) {
        ++requests;
        // Grant immediately, off the call stack like the scheduler.
        e.schedule(0, [&] { ssd.gc().grantCollection(); });
    };
    hooks.release = [&](std::uint64_t copies, std::uint64_t) {
        ++releases;
        released_copies += copies;
    };
    ssd.gc().setCoordination(hooks);

    unsigned done = 0;
    for (Lpn l = 0; l < 900; ++l) {
        ssd.writePage(l % ssd.mapping().lpnCount(), [&] { ++done; });
        if (l % 64 == 63)
            e.run();
    }
    e.run();
    EXPECT_EQ(done, 900u);
    EXPECT_FALSE(ssd.gc().anyActive());
    EXPECT_GT(ssd.gc().preemptYields(), 0u);
    // Every grant taken was given back, and at least one extra
    // request/release pair came from a preempted (partial) round.
    EXPECT_EQ(requests, releases);
    EXPECT_GT(requests, 1u);
    EXPECT_EQ(released_copies, ssd.gc().pagesMoved());
}

TEST(PreemptibleGcTest, PreemptStatsRegisterOnlyWhenEnabled)
{
    Engine e1;
    Ssd plain(e1, gcConfig(ArchKind::Baseline));
    StatRegistry r1;
    plain.registerStats(r1, "ssd");
    EXPECT_FALSE(r1.has("ssd.gc.preempt_yields"));

    Engine e2;
    Ssd pre(e2, preemptConfig(ArchKind::Baseline));
    StatRegistry r2;
    pre.registerStats(r2, "ssd");
    EXPECT_TRUE(r2.has("ssd.gc.preempt_yields"));
    EXPECT_TRUE(r2.has("ssd.gc.preempt_resumes"));
}

} // namespace
} // namespace dssd
