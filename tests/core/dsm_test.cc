/** Tests for the timed dynamic-superblock engine (Sec 5 in the loop). */

#include <gtest/gtest.h>

#include "core/dsm.hh"

namespace dssd
{
namespace
{

SsdConfig
dsmSsdConfig()
{
    SsdConfig c = makeConfig(ArchKind::DSSDNoc);
    c.geom = paperTlcGeometry();
    c.geom.blocksPerPlane = 12; // 12 superblocks for quick tests
    c.geom.pagesPerBlock = 4;
    c.timing = tlcTiming();
    return c;
}

DsmParams
dsmParams(DsmScheme scheme)
{
    DsmParams p;
    p.scheme = scheme;
    p.wear.peMean = 30;
    p.wear.peSigma = 6;
    p.reservedFraction = 0.2; // 2 of 12 superblocks
    p.seed = 5;
    return p;
}

struct Rig
{
    Engine engine;
    SsdConfig cfg = dsmSsdConfig();
    Ssd ssd{engine, cfg};
    SuperblockMapping map{cfg.geom, 0.0};
};

TEST(DsmTest, StaticSchemeDiesOnFirstFailure)
{
    Rig rig;
    DynamicSuperblockEngine eng(rig.ssd, rig.map,
                                dsmParams(DsmScheme::Static));
    bool done = false;
    eng.run(2000, [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    EXPECT_GT(eng.stats().deadSuperblocks, 0u);
    EXPECT_EQ(eng.stats().remapEvents, 0u);
    EXPECT_EQ(eng.stats().repairPagesCopied, 0u);
    // Deaths relocate data through the conventional path.
    EXPECT_GT(eng.stats().deathPagesCopied, 0u);
}

TEST(DsmTest, RecycledRepairsWithSrtAndRbt)
{
    Rig rig;
    DynamicSuperblockEngine eng(rig.ssd, rig.map,
                                dsmParams(DsmScheme::Recycled));
    bool done = false;
    eng.run(2000, [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    // Recycling happened: remap events with copyback repairs.
    EXPECT_GT(eng.stats().remapEvents, 0u);
    EXPECT_GT(eng.stats().repairPagesCopied, 0u);
    // Some SRT entries were created on some controller.
    std::size_t active = 0;
    for (unsigned ch = 0; ch < rig.cfg.geom.channels; ++ch)
        active += rig.ssd.decoupledController(ch)->srt().highWater();
    EXPECT_GT(active, 0u);
}

TEST(DsmTest, RecycledOutlivesStatic)
{
    auto run = [](DsmScheme scheme) {
        Rig rig;
        DynamicSuperblockEngine eng(rig.ssd, rig.map, dsmParams(scheme));
        eng.run(4000, [] {});
        rig.engine.run();
        return eng.stats().bytesWritten;
    };
    // Same wear limits (same seed): recycling must sustain at least
    // as many written bytes before the pool collapses.
    EXPECT_GE(run(DsmScheme::Recycled), run(DsmScheme::Static));
}

TEST(DsmTest, ReservDelaysFirstDeath)
{
    auto first_death_bytes = [](DsmScheme scheme) {
        Rig rig;
        DynamicSuperblockEngine eng(rig.ssd, rig.map, dsmParams(scheme));
        eng.run(4000, [] {});
        rig.engine.run();
        if (eng.stats().curve.empty())
            return -1.0; // never died
        return eng.stats().curve.front().first;
    };
    double rec = first_death_bytes(DsmScheme::Recycled);
    double res = first_death_bytes(DsmScheme::Reserv);
    // RESERV either never died within the cycle budget or died later.
    if (res >= 0.0 && rec >= 0.0)
        EXPECT_GT(res, rec);
    else
        EXPECT_LT(res, 0.0);
}

TEST(DsmTest, RepairIsInvisibleToTheMapping)
{
    Rig rig;
    DynamicSuperblockEngine eng(rig.ssd, rig.map,
                                dsmParams(DsmScheme::Recycled));
    eng.run(2000, [] {});
    rig.engine.run();
    ASSERT_GT(eng.stats().remapEvents, 0u);
    // Dynamic superblocks stay usable: dead count excludes repaired
    // ones, and every live superblock still erases/cycles, i.e., the
    // map's dead count matches the engine's.
    EXPECT_EQ(rig.map.deadSuperblocks(), eng.stats().deadSuperblocks);
    // Remapped sub-blocks resolve to a different physical block while
    // the FTL-visible address is unchanged.
    bool found_remap = false;
    for (std::uint32_t sb = 0; sb < rig.map.superblockCount() && !found_remap; ++sb) {
        for (std::uint32_t u = 0; u < rig.map.unitCount(); ++u) {
            PhysAddr a = rig.map.slotAddr(sb, u);
            ChannelBlockId orig = channelBlockId(rig.cfg.geom, a);
            if (eng.physicalBlock(sb, u) != orig) {
                found_remap = true;
                break;
            }
        }
    }
    EXPECT_TRUE(found_remap);
}

TEST(DsmTest, SimulatedTimeAdvancesWithWear)
{
    Rig rig;
    DynamicSuperblockEngine eng(rig.ssd, rig.map,
                                dsmParams(DsmScheme::Recycled));
    eng.run(100, [] {});
    rig.engine.run();
    EXPECT_EQ(eng.stats().cycles, 100u);
    // 100 cycles x (program 200-500us + erase 2ms) must be at least
    // ~hundreds of ms of simulated time.
    EXPECT_GT(rig.engine.now(), 100 * msToTicks(2));
}

TEST(DsmDeathTest, RecycledNeedsDecoupledArch)
{
    Engine e;
    SsdConfig c = dsmSsdConfig();
    c.arch = ArchKind::Baseline;
    Ssd ssd(e, c);
    SuperblockMapping map(c.geom, 0.0);
    EXPECT_DEATH(DynamicSuperblockEngine(ssd, map,
                                         dsmParams(DsmScheme::Recycled)),
                 "decoupled");
}

} // namespace
} // namespace dssd
