/**
 * Unit tests for the architecture datapath strategies: the factory's
 * family selection, the SRT address filter and its inverse, per-channel
 * ECC ownership, and the shared host-read-miss route.
 */

#include <gtest/gtest.h>

#include <memory>

#include "controller/decoupled.hh"
#include "controller/remap.hh"
#include "core/datapath.hh"
#include "core/ssd.hh"

namespace dssd
{
namespace
{

SsdConfig
testConfig(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    c.writeBuffer.capacityPages = 64;
    return c;
}

TEST(DatapathTest, FactoryPicksTheArchitectureFamily)
{
    for (ArchKind k : {ArchKind::Baseline, ArchKind::BW, ArchKind::DSSD,
                       ArchKind::DSSDBus, ArchKind::DSSDNoc}) {
        Engine e;
        Ssd ssd(e, testConfig(k));
        Datapath &dp = ssd.datapath();
        if (isDecoupled(k)) {
            EXPECT_NE(dp.controller(0), nullptr) << archName(k);
            EXPECT_NE(dp.interconnect(), nullptr) << archName(k);
        } else {
            EXPECT_EQ(dp.controller(0), nullptr) << archName(k);
            EXPECT_EQ(dp.interconnect(), nullptr) << archName(k);
        }
    }
}

TEST(DatapathTest, FrontEndResolveIsIdentity)
{
    Engine e;
    Ssd ssd(e, testConfig(ArchKind::Baseline));
    PhysAddr a;
    a.channel = 2;
    a.way = 1;
    a.plane = 1;
    a.block = 7;
    a.page = 3;
    PhysAddr r = ssd.datapath().resolve(a);
    EXPECT_EQ(r.channel, a.channel);
    EXPECT_EQ(r.way, a.way);
    EXPECT_EQ(r.plane, a.plane);
    EXPECT_EQ(r.block, a.block);
    EXPECT_EQ(r.page, a.page);
}

TEST(DatapathTest, FrontEndOwnsOneEccEnginePerChannel)
{
    Engine e;
    Ssd ssd(e, testConfig(ArchKind::Baseline));
    Datapath &dp = ssd.datapath();
    EXPECT_NE(&dp.eccFor(0), &dp.eccFor(1));
    EXPECT_NE(&dp.eccFor(1), &dp.eccFor(2));
}

TEST(DatapathTest, DecoupledResolveFollowsSrtRemap)
{
    Engine e;
    SsdConfig c = testConfig(ArchKind::DSSDNoc);
    Ssd ssd(e, c);
    DecoupledController *dc = ssd.decoupledController(1);
    ASSERT_NE(dc, nullptr);

    PhysAddr from;
    from.channel = 1;
    from.way = 1;
    from.block = 5;
    from.page = 2;
    PhysAddr to = from;
    to.block = 9;
    ASSERT_TRUE(dc->srt().insert(channelBlockId(c.geom, from),
                                 channelBlockId(c.geom, to)));

    PhysAddr r = ssd.datapath().resolve(from);
    EXPECT_EQ(channelBlockId(c.geom, r), channelBlockId(c.geom, to));
    EXPECT_EQ(r.channel, from.channel);
    EXPECT_EQ(r.page, from.page); // page offset rides along unchanged

    // Addresses without an SRT entry pass through untouched.
    PhysAddr other = from;
    other.block = 6;
    PhysAddr ro = ssd.datapath().resolve(other);
    EXPECT_EQ(channelBlockId(c.geom, ro),
              channelBlockId(c.geom, other));
}

TEST(DatapathTest, DecoupledUnresolveInvertsResolve)
{
    Engine e;
    SsdConfig c = testConfig(ArchKind::DSSDNoc);
    Ssd ssd(e, c);
    DecoupledController *dc = ssd.decoupledController(0);
    ASSERT_NE(dc, nullptr);

    PhysAddr from;
    from.block = 3;
    from.page = 1;
    PhysAddr to = from;
    to.block = 12;
    ASSERT_TRUE(dc->srt().insert(channelBlockId(c.geom, from),
                                 channelBlockId(c.geom, to)));

    // unresolve() is block-granular (it serves block retirement), so
    // only the block identity must round-trip.
    PhysAddr fwd = ssd.datapath().resolve(from);
    PhysAddr back = ssd.datapath().unresolve(fwd);
    EXPECT_EQ(channelBlockId(c.geom, back),
              channelBlockId(c.geom, from));
}

TEST(DatapathTest, FrontEndUnresolveIsIdentity)
{
    Engine e;
    Ssd ssd(e, testConfig(ArchKind::BW));
    PhysAddr a;
    a.channel = 3;
    a.block = 11;
    PhysAddr r = ssd.datapath().unresolve(a);
    EXPECT_EQ(r.channel, a.channel);
    EXPECT_EQ(r.block, a.block);
}

TEST(DatapathTest, HostReadMissChargesFlashEccAndBus)
{
    SsdConfig c = testConfig(ArchKind::Baseline);
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.5, 0.0);

    auto ppn = ssd.mapping().translate(0);
    ASSERT_TRUE(ppn.has_value());
    PhysAddr addr = c.geom.pageAddr(*ppn);

    auto bd = std::make_shared<LatencyBreakdown>();
    bool done = false;
    ssd.datapath().hostReadMiss(addr, bd, [&done] { done = true; });
    e.run();

    EXPECT_TRUE(done);
    EXPECT_GT(bd->flashMem, 0u);
    EXPECT_GT(bd->flashBus, 0u);
    EXPECT_GT(bd->ecc, 0u);
    EXPECT_GT(bd->systemBus, 0u);
}

} // namespace
} // namespace dssd
