/** Unit tests for configuration and bandwidth accounting (Table 2). */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace dssd
{
namespace
{

TEST(ConfigTest, ArchNames)
{
    EXPECT_STREQ(archName(ArchKind::Baseline), "Baseline");
    EXPECT_STREQ(archName(ArchKind::BW), "BW");
    EXPECT_STREQ(archName(ArchKind::DSSD), "dSSD");
    EXPECT_STREQ(archName(ArchKind::DSSDBus), "dSSD_b");
    EXPECT_STREQ(archName(ArchKind::DSSDNoc), "dSSD_f");
}

TEST(ConfigTest, DecoupledClassification)
{
    EXPECT_FALSE(isDecoupled(ArchKind::Baseline));
    EXPECT_FALSE(isDecoupled(ArchKind::BW));
    EXPECT_TRUE(isDecoupled(ArchKind::DSSD));
    EXPECT_TRUE(isDecoupled(ArchKind::DSSDBus));
    EXPECT_TRUE(isDecoupled(ArchKind::DSSDNoc));
}

TEST(ConfigTest, BaselineBusBandwidthIsBase)
{
    SsdConfig c = makeConfig(ArchKind::Baseline);
    EXPECT_DOUBLE_EQ(toGbPerSec(c.effectiveSystemBusBandwidth()), 8.0);
}

TEST(ConfigTest, BwAndDssdWidenTheSystemBus)
{
    SsdConfig bw = makeConfig(ArchKind::BW);
    EXPECT_DOUBLE_EQ(toGbPerSec(bw.effectiveSystemBusBandwidth()), 10.0);
    SsdConfig d = makeConfig(ArchKind::DSSD);
    EXPECT_DOUBLE_EQ(toGbPerSec(d.effectiveSystemBusBandwidth()), 10.0);
}

TEST(ConfigTest, DedicatedConfigsKeepBaseBusAndGetExtraInterconnect)
{
    for (ArchKind k : {ArchKind::DSSDBus, ArchKind::DSSDNoc}) {
        SsdConfig c = makeConfig(k);
        EXPECT_DOUBLE_EQ(toGbPerSec(c.effectiveSystemBusBandwidth()),
                         8.0);
        EXPECT_DOUBLE_EQ(toGbPerSec(c.interconnectBandwidth()), 2.0);
    }
}

TEST(ConfigTest, TotalOnChipBandwidthEqualAcrossNonBaseline)
{
    // The fair-comparison constraint of Fig 7.
    for (ArchKind k : {ArchKind::BW, ArchKind::DSSD, ArchKind::DSSDBus,
                       ArchKind::DSSDNoc}) {
        SsdConfig c = makeConfig(k);
        double total;
        if (k == ArchKind::BW || k == ArchKind::DSSD)
            total = toGbPerSec(c.effectiveSystemBusBandwidth());
        else
            total = toGbPerSec(c.effectiveSystemBusBandwidth()) +
                    toGbPerSec(c.interconnectBandwidth());
        EXPECT_DOUBLE_EQ(total, 10.0) << archName(k);
    }
}

TEST(ConfigTest, Table1Defaults)
{
    SsdConfig c = makeConfig(ArchKind::Baseline, false);
    EXPECT_EQ(c.geom.channels, 8u);
    EXPECT_EQ(c.geom.ways, 8u);
    EXPECT_EQ(c.geom.planesPerDie, 8u);
    EXPECT_EQ(c.geom.blocksPerPlane, 1384u);
    EXPECT_EQ(c.geom.pagesPerBlock, 384u);
    EXPECT_DOUBLE_EQ(toGbPerSec(c.systemBusBandwidth), 8.0);
    EXPECT_DOUBLE_EQ(toGbPerSec(c.dramBandwidth), 8.0);
    EXPECT_DOUBLE_EQ(toGbPerSec(c.channel.busBandwidth), 1.0);
    EXPECT_DOUBLE_EQ(c.overProvision, 0.07);
    EXPECT_EQ(c.timing.readMin, usToTicks(5));
}

TEST(ConfigTest, ReducedGeometryKeepsRatios)
{
    FlashGeometry full = paperUllGeometry();
    FlashGeometry red = reducedUllGeometry();
    EXPECT_EQ(red.channels, full.channels);
    EXPECT_EQ(red.ways, full.ways);
    EXPECT_EQ(red.planesPerDie, full.planesPerDie);
    EXPECT_EQ(red.pageBytes, full.pageBytes);
    EXPECT_LT(red.totalPages(), full.totalPages());
}

} // namespace
} // namespace dssd
