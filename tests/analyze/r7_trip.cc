// Fixture: R7 shard-confinement violations (seeded, self-contained).
//
// Analyzed standalone by dssd_analyze --self-test; the stubs below
// mirror the shapes of sim/pool.hh and sim/engine_group.hh so both
// frontends see the same facts without include paths. Lines that must
// fire carry a trailing trip marker naming the rule.

#include <cstdint>
#include <functional>

struct PoolPtr {
    void *raw = nullptr;
};

PoolPtr makePooled();

struct EngineGroup {
    void postToShard(unsigned shard, std::uint64_t delay,
                     std::function<void()> fn);
    void postToHost(std::uint64_t when, std::function<void()> fn);
    void *shardEngine(unsigned shard);
};

// File-scope pooled state: reachable from every shard thread.
PoolPtr gScratch;  // trip:R7

void
crossShardEscape(EngineGroup &group)
{
    PoolPtr page = makePooled();
    // Non-atomic refcount handed to another shard's thread.
    group.postToShard(1, 100, [page] { (void)page.raw; });  // trip:R7
    group.postToHost(200, [page] { (void)page.raw; });      // trip:R7
}

void
directShardAccess(EngineGroup &group)
{
    // Model code reaching into a shard engine behind the group's back.
    void *eng = group.shardEngine(0);  // trip:R7
    (void)eng;
}
