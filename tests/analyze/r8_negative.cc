// Fixture: R8 near-miss negative control — every stat member is
// registered (via an out-of-line registerStats) and every span pair
// closes, including a dynamic-name pair matched symmetrically.

#include <cstdint>
#include <string>

struct Counter {
    std::uint64_t value = 0;
};
struct SampleStat {
    explicit SampleStat(const char *) {}
};

struct StatRegistry {
    void addCounter(const std::string &, Counter *);
    void addSample(const std::string &, SampleStat *);
};

struct Tracer {
    void asyncBegin(int pid, const char *cat, const char *name,
                    std::uint64_t id, std::uint64_t when);
    void asyncEnd(int pid, const char *cat, const char *name,
                  std::uint64_t id, std::uint64_t when);
};

class TidyStats {
  public:
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    Counter _served;
    SampleStat _queueLat{"queue-latency"};
};

void
TidyStats::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".served", &_served);
    reg.addSample(prefix + ".queue-latency", &_queueLat);
}

void
pairedSpans(Tracer &tracer, const char *stage)
{
    tracer.asyncBegin(1, "io", "read", 7, 100);
    tracer.asyncEnd(1, "io", "read", 7, 160);

    // Dynamic span names resolve to <dyn>; a begin/end pair through
    // the same variable stays matched.
    tracer.asyncBegin(1, stage, stage, 9, 200);
    tracer.asyncEnd(1, stage, stage, 9, 260);
}
