// Fixture: R8 completeness violations — an unregistered stat member
// and an async trace span opened but never closed.

#include <cstdint>
#include <string>

struct Counter {
    std::uint64_t value = 0;
};
struct SampleStat {
    explicit SampleStat(const char *) {}
};
struct RateSeries {};

struct StatRegistry {
    void addCounter(const std::string &, Counter *);
    void addSample(const std::string &, SampleStat *);
    void addRate(const std::string &, RateSeries *);
};

struct Tracer {
    void asyncBegin(int pid, const char *cat, const char *name,
                    std::uint64_t id, std::uint64_t when);
    void asyncEnd(int pid, const char *cat, const char *name,
                  std::uint64_t id, std::uint64_t when);
};

class LeakyStats {
  public:
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    Counter _served;
    SampleStat _queueLat{"queue-latency"};  // trip:R8
    RateSeries _bytes;                      // trip:R8
};

void
LeakyStats::registerStats(StatRegistry &reg, const std::string &prefix)
{
    // _queueLat and _bytes are missing: invisible in every --stats dump.
    reg.addCounter(prefix + ".served", &_served);
}

void
danglingSpan(Tracer &tracer)
{
    tracer.asyncBegin(1, "io", "compaction", 7, 100);  // trip:R8
    // ... no asyncEnd("io", "compaction") anywhere in the program.
    tracer.asyncEnd(1, "io", "flush", 8, 200);  // trip:R8
    // ... and this end has no matching begin.
}
