// Fixture: R10 violations — the alias-laundered shapes the regex
// lint cannot see: unordered iteration behind a typedef chain, a
// default-capture lambda, and libc randomness behind a using-decl.

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <unordered_map>

using L2pTable = std::unordered_map<std::uint64_t, std::uint64_t>;
using Mapping = L2pTable;  // second hop in the alias chain

struct Engine {
    void schedule(std::uint64_t delay, std::function<void()> fn);
};

std::uint64_t
sumMappings(const Mapping &table)
{
    Mapping shadow = table;
    std::uint64_t sum = 0;
    for (const auto &kv : shadow)  // trip:R10
        sum += kv.second;
    return sum;
}

void
hiddenCaptures(Engine &engine, std::uint64_t lba)
{
    std::uint64_t page = lba / 4;
    engine.schedule(100, [=] { (void)page; });  // trip:R10
}

using std::rand;  // trip:R10

int
launderedRandom()
{
    return rand();  // trip:R10
}
