// Fixture: R7 near-miss negative control — every shape here skirts
// the rule without violating it, and must produce zero findings.

#include <cstdint>
#include <functional>

struct PoolPtr {
    void *raw = nullptr;
};

struct Engine {
    void schedule(std::uint64_t delay, std::function<void()> fn);
};

struct EngineGroup {
    void postToShard(unsigned shard, std::uint64_t delay,
                     std::function<void()> fn);
};

PoolPtr makePooled();

void
confinedUse(Engine &engine, EngineGroup &group)
{
    // Pooled handle captured into a SAME-shard schedule(): the
    // callback runs on the owning shard's thread, so no escape.
    PoolPtr page = makePooled();
    engine.schedule(100, [page] { (void)page.raw; });

    // Crossing the message path with plain values is the sanctioned
    // pattern: copy the payload out, capture no pooled handles.
    std::uint64_t lba = 42;
    unsigned shard = 1;
    group.postToShard(shard, 100, [lba] { (void)lba; });
}

void
localPooledState()
{
    // Function-local pooled object, never captured anywhere: fine.
    PoolPtr scratch = makePooled();
    (void)scratch.raw;
}
