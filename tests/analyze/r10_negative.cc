// Fixture: R10 near-miss negative control — an alias chain that
// lands on an ORDERED map, spelled-out captures, and qualified
// std::rand with no using-decl (that is lint R1's beat, not ours).

#include <cstdint>
#include <functional>
#include <map>

using L2pTable = std::map<std::uint64_t, std::uint64_t>;
using Mapping = L2pTable;

struct Engine {
    void schedule(std::uint64_t delay, std::function<void()> fn);
};

std::uint64_t
sumMappings(const Mapping &table)
{
    Mapping shadow = table;
    std::uint64_t sum = 0;
    // std::map iterates in key order: deterministic, no finding.
    for (const auto &kv : shadow)
        sum += kv.second;
    return sum;
}

void
explicitCaptures(Engine &engine, std::uint64_t lba)
{
    std::uint64_t page = lba / 4;
    engine.schedule(100, [page] { (void)page; });
}
