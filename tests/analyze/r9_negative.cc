// Fixture: R9 near-miss negative control — the same shapes done
// safely: 64-bit-wide targets, reporting-edge double conversion, and
// a guarded subtraction.

#include <cstdint>

using Tick = std::uint64_t;

Tick now();

void
wideTicks()
{
    Tick start = now();
    std::uint64_t t64 = static_cast<std::uint64_t>(now());
    Tick elapsed = now() - start;
    // double is a sanctioned reporting-edge conversion (loses
    // precision, not range).
    double ms = static_cast<double>(elapsed) / 1.0e6;
    (void)t64;
    (void)ms;
}

Tick
guardedLatency(Tick issued)
{
    Tick done = now();
    if (done < issued)
        return 0;
    return done - issued;
}
