// Fixture: R9 tick-safety violations — narrowing casts and
// declarations that truncate a u64 nanosecond count, plus an
// unguarded latency subtraction (advisory).

#include <cstdint>

using Tick = std::uint64_t;

Tick now();

void
truncateTicks()
{
    Tick start = now();
    std::uint32_t t32 = static_cast<std::uint32_t>(now());  // trip:R9
    int delta = static_cast<int>(now() - start);            // trip:R9
    long span = now() - start;                              // trip:R9
    (void)t32;
    (void)delta;
    (void)span;
}

Tick
unguardedLatency(Tick issued)
{
    Tick done = now();
    // No visible ordering guard between the operands: wraps if the
    // pair is ever reversed (advisory warning, not an error).
    return done - issued;  // trip:R9
}
