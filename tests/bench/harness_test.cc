/** Unit tests for the bench harness: parallel sweep runner + options. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/harness.hh"

namespace dssd
{
namespace bench
{
namespace
{

/** Small, fast experiment point that still moves I/O and GC. */
ExpParams
tinyParams(std::uint64_t seed)
{
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    p.channels = 4;
    p.ways = 2;
    p.planes = 2;
    p.blocksPerPlane = 8;
    p.pagesPerBlock = 8;
    p.window = 2 * tickMs;
    p.seed = seed;
    return p;
}

bool
sameResult(const ExpResult &a, const ExpResult &b)
{
    return a.ioBytesPerSec == b.ioBytesPerSec &&
           a.gcPagesPerSec == b.gcPagesPerSec &&
           a.avgLatencyUs == b.avgLatencyUs &&
           a.p99LatencyUs == b.p99LatencyUs &&
           a.p999LatencyUs == b.p999LatencyUs &&
           a.ioCompleted == b.ioCompleted &&
           a.gcPagesMoved == b.gcPagesMoved &&
           a.hostPageWrites == b.hostPageWrites &&
           a.gcRelocated == b.gcRelocated && a.waf == b.waf &&
           a.ioBwSeries == b.ioBwSeries &&
           a.busIoSeries == b.busIoSeries;
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    parallelFor(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroThreadsMeansHardwareConcurrency)
{
    std::atomic<int> count{0};
    parallelFor(10, 0, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
}

TEST(RunExperimentsTest, SingleAndMultiThreadResultsAreIdentical)
{
    std::vector<ExpParams> ps;
    for (std::uint64_t s = 1; s <= 5; ++s)
        ps.push_back(tinyParams(s));

    std::vector<ExpResult> seq = runExperiments(ps, 1);
    std::vector<ExpResult> par = runExperiments(ps, 4);
    ASSERT_EQ(seq.size(), ps.size());
    ASSERT_EQ(par.size(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
        EXPECT_TRUE(sameResult(seq[i], par[i]))
            << "experiment " << i << " diverged across thread counts";
        // ... and both match a direct single run of the same point.
        ExpResult direct = runExperiment(ps[i]);
        EXPECT_TRUE(sameResult(seq[i], direct))
            << "experiment " << i << " diverged from a direct run";
    }
}

TEST(PolicyDeterminismTest, EveryPolicyComboIsStableAcrossEngineThreads)
{
    // For every {victim, alloc, preempt} combination: the same point
    // re-run at the same engine-thread count is identical (run-to-run
    // determinism, including the legacy shared-engine mode 0), and
    // thread counts 1 and 8 are identical to each other (the engine
    // group's conservative schedule is thread-count-invariant).
    // Mode 0 uses a single shared engine with different event timing,
    // so it is only required to agree with itself.
    for (const char *victim : {"greedy", "costbenefit", "windowed"}) {
        for (const char *alloc : {"rr", "conflict"}) {
            for (bool pre : {false, true}) {
                ExpParams p = tinyParams(11);
                p.gcForced = false;
                p.victimPolicy = victim;
                p.allocPolicy = alloc;
                p.gcPreempt = pre;
                std::string tag = std::string(victim) + "/" + alloc +
                                  (pre ? "+pre" : "");

                for (unsigned threads : {0u, 1u, 8u}) {
                    p.engineThreads = threads;
                    ExpResult once = runExperiment(p);
                    ExpResult twice = runExperiment(p);
                    EXPECT_TRUE(sameResult(once, twice))
                        << tag << " not deterministic at "
                        << threads << " engine threads";
                }

                p.engineThreads = 1;
                ExpResult serial = runExperiment(p);
                p.engineThreads = 8;
                ExpResult wide = runExperiment(p);
                EXPECT_TRUE(sameResult(serial, wide))
                    << tag << " diverged between 1 and 8 engine "
                    << "threads";
            }
        }
    }
}

TEST(PolicyDeterminismTest, VictimPicksAreStableAcrossIdenticalRuns)
{
    // The policy seam must not introduce history- or address-ordering
    // dependence: identical experiment points produce identical WAF
    // and relocation counts for every victim policy.
    for (const char *victim : {"greedy", "costbenefit", "windowed"}) {
        ExpParams p = tinyParams(23);
        p.gcForced = false;
        p.victimPolicy = victim;
        ExpResult a = runExperiment(p);
        ExpResult b = runExperiment(p);
        EXPECT_EQ(a.gcRelocated, b.gcRelocated) << victim;
        EXPECT_EQ(a.waf, b.waf) << victim;
    }
}

TEST(RunExperimentsTest, ResultsComeBackInInputOrder)
{
    // Distinct seeds give distinct results; order must follow input.
    std::vector<ExpParams> ps = {tinyParams(3), tinyParams(1),
                                 tinyParams(2)};
    std::vector<ExpResult> rs = runExperiments(ps, 3);
    for (std::size_t i = 0; i < ps.size(); ++i) {
        ExpResult direct = runExperiment(ps[i]);
        EXPECT_TRUE(sameResult(rs[i], direct)) << "slot " << i;
    }
}

TEST(BenchOptsTest, ParsesThreadsAndJsonInBothForms)
{
    const char *argv1[] = {"bench", "--threads=7", "--json=/tmp/x.json",
                           "--seed=9"};
    BenchOpts o1 = BenchOpts::parse(4, const_cast<char **>(argv1));
    EXPECT_EQ(o1.threads, 7u);
    EXPECT_EQ(o1.json, "/tmp/x.json");
    EXPECT_EQ(o1.seed, 9u);

    const char *argv2[] = {"bench", "--threads", "3", "--json",
                           "out.json", "--full"};
    BenchOpts o2 = BenchOpts::parse(6, const_cast<char **>(argv2));
    EXPECT_EQ(o2.threads, 3u);
    EXPECT_EQ(o2.json, "out.json");
    EXPECT_TRUE(o2.full);
    EXPECT_GE(o2.resolvedThreads(), 1u);
}

TEST(JsonSeriesWriterTest, WritesOrderedSeries)
{
    JsonSeriesWriter w;
    w.add("a/io", 1.5);
    w.add("b/gc", 2.0);
    w.add("a/io", 2.5);
    std::string path = testing::TempDir() + "harness_json_test.json";
    w.write(path, "unit");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string doc = ss.str();
    EXPECT_NE(doc.find("\"bench\": \"unit\""), std::string::npos);
    EXPECT_NE(doc.find("\"a/io\": [1.5, 2.5]"), std::string::npos);
    EXPECT_NE(doc.find("\"b/gc\": [2]"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace bench
} // namespace dssd
