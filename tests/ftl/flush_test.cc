/**
 * Unit tests for the write-buffer flush engine: watermark policy,
 * in-flight pacing, the injected resolve/write-back/allocation-note
 * routes, and the allocation-stall retry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ftl/flush.hh"

namespace dssd
{
namespace
{

FlashGeometry
smallGeom()
{
    FlashGeometry g;
    g.channels = 2;
    g.ways = 2;
    g.diesPerWay = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    g.pageBytes = 4 * kKiB;
    return g;
}

/**
 * FlushEngine over a real mapping/buffer with an instrumented
 * write-back route: fixed service time, concurrency high-water mark,
 * and a record of every resolved target and noted unit.
 */
struct FlushRig
{
    Engine engine;
    PageMapping mapping;
    WriteBuffer buffer;
    unsigned inFlight = 0;
    unsigned maxInFlight = 0;
    std::vector<PhysAddr> targets;
    std::vector<std::uint32_t> notedUnits;
    FlushEngine flush;

    explicit FlushRig(unsigned in_flight = 2, Tick service = 100,
                      std::uint64_t capacity = 10)
        : mapping(MappingParams{smallGeom()}),
          buffer(WriteBufferParams{capacity, BufferMode::Real, 0.8, 0.5}),
          flush(
              engine, mapping, buffer, in_flight,
              [](const PhysAddr &a) { return a; },
              [this, service](const PhysAddr &target,
                              Engine::Callback done) {
                  targets.push_back(target);
                  ++inFlight;
                  maxInFlight = std::max(maxInFlight, inFlight);
                  engine.schedule(service,
                                  [this, done = std::move(done)] {
                      --inFlight;
                      done();
                  });
              },
              [this](std::uint32_t unit) { notedUnits.push_back(unit); })
    {
    }

    void
    insert(Lpn count)
    {
        for (Lpn l = 0; l < count; ++l)
            buffer.insert(l);
    }
};

TEST(FlushEngineTest, IdleAtOrBelowHighWatermark)
{
    FlushRig rig;
    rig.insert(8); // high watermark is >80% of 10, i.e. 9+
    rig.flush.maybeStart();
    EXPECT_FALSE(rig.flush.active());
    rig.engine.run();
    EXPECT_EQ(rig.flush.flushedPages(), 0u);
    EXPECT_EQ(rig.buffer.occupancy(), 8u);
}

TEST(FlushEngineTest, DrainsToLowWatermarkThenStops)
{
    FlushRig rig;
    rig.insert(9);
    rig.flush.maybeStart();
    EXPECT_TRUE(rig.flush.active());
    rig.engine.run();
    // Drains until occupancy reaches the 50% low watermark.
    EXPECT_EQ(rig.buffer.occupancy(), 5u);
    EXPECT_EQ(rig.flush.flushedPages(), 4u);
    EXPECT_FALSE(rig.flush.active());
    EXPECT_EQ(rig.flush.inFlight(), 0u);
}

TEST(FlushEngineTest, BoundsConcurrentWritebacks)
{
    FlushRig rig(2);
    rig.insert(10);
    rig.flush.maybeStart();
    rig.engine.run();
    EXPECT_EQ(rig.maxInFlight, 2u);
    EXPECT_EQ(rig.flush.flushedPages(), 5u);
}

TEST(FlushEngineTest, NotesAllocationUnitOncePerFlush)
{
    FlushRig rig;
    rig.insert(9);
    rig.flush.maybeStart();
    rig.engine.run();
    ASSERT_EQ(rig.notedUnits.size(), rig.flush.flushedPages());
    for (std::uint32_t unit : rig.notedUnits)
        EXPECT_LT(unit, rig.mapping.unitCount());
}

TEST(FlushEngineTest, ResolveFilterRewritesWritebackTargets)
{
    Engine engine;
    PageMapping mapping(MappingParams{smallGeom()});
    WriteBuffer buffer(
        WriteBufferParams{10, BufferMode::Real, 0.8, 0.5});
    std::vector<PhysAddr> targets;
    FlushEngine flush(
        engine, mapping, buffer, 2,
        [](const PhysAddr &a) {
            PhysAddr out = a;
            out.channel = 1; // architecture filter (e.g. SRT remap)
            return out;
        },
        [&targets, &engine](const PhysAddr &target,
                            Engine::Callback done) {
            targets.push_back(target);
            engine.schedule(10, std::move(done));
        },
        [](std::uint32_t) {});
    for (Lpn l = 0; l < 9; ++l)
        buffer.insert(l);
    flush.maybeStart();
    engine.run();
    ASSERT_FALSE(targets.empty());
    for (const PhysAddr &t : targets)
        EXPECT_EQ(t.channel, 1u);
}

TEST(FlushEngineTest, HoldsFlushWhileFreePoolExhausted)
{
    FlushRig rig;
    // Overwrite-churn a small LPN set until host allocation stalls:
    // each allocate() consumes a fresh page and only invalidates the
    // old one, so the free pool drains with nothing erased.
    Lpn l = 0;
    while (rig.mapping.hostCanAllocate())
        rig.mapping.allocate(l++ % 8);

    rig.insert(9);
    rig.flush.maybeStart();
    EXPECT_TRUE(rig.flush.active());

    // Nothing can flush yet; reclaim space (as GC would) at t = 50 us.
    rig.engine.schedule(usToTicks(50), [&rig] {
        const FlashGeometry &g = rig.mapping.geometry();
        for (std::uint32_t u = 0; u < rig.mapping.unitCount(); ++u) {
            for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b) {
                const BlockState &s = rig.mapping.blockState(u, b);
                if (!s.isFree && !s.isBad && s.validCount == 0 &&
                    s.writePtr == g.pagesPerBlock) {
                    rig.mapping.eraseBlock(u, b);
                }
            }
        }
    });
    rig.engine.run();
    EXPECT_EQ(rig.flush.flushedPages(), 4u);
    // The first write-back could not start before space came back.
    ASSERT_FALSE(rig.targets.empty());
    EXPECT_GE(rig.engine.now(), usToTicks(50));
}

} // namespace
} // namespace dssd
