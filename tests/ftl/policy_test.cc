/**
 * Unit tests for the pluggable GC victim-selection and allocation
 * policies (ftl/policy.hh). Every name in the factory registry is
 * exercised here — lint rule R11 cross-checks the registry against
 * this fixture.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ftl/mapping.hh"
#include "ftl/policy.hh"
#include "ftl/superblock.hh"
#include "sim/audit.hh"
#include "sim/registry.hh"

namespace dssd
{
namespace
{

MappingParams
params(const char *victim = "greedy", const char *alloc = "rr")
{
    MappingParams p;
    p.geom.channels = 2;
    p.geom.ways = 2;
    p.geom.diesPerWay = 1;
    p.geom.planesPerDie = 2;
    p.geom.blocksPerPlane = 8;
    p.geom.pagesPerBlock = 4;
    p.geom.pageBytes = 4 * kKiB;
    p.overProvision = 0.25;
    p.gcFreeBlockThreshold = 1;
    p.gcFreeBlockTarget = 2;
    p.victimPolicy = victim;
    p.allocPolicy = alloc;
    return p;
}

/// Write `n` pages then rewrite every `stride`-th of them, leaving a
/// mix of partially-valid blocks behind.
void
churn(PageMapping &m, Lpn n, Lpn stride)
{
    for (Lpn l = 0; l < n; ++l)
        m.allocate(l);
    for (Lpn l = 0; l < n; l += stride)
        m.allocate(l);
}

//
// Factory registry
//

TEST(PolicyFactoryTest, EveryRegisteredVictimPolicyConstructs)
{
    PolicyConfig cfg;
    for (const std::string &name : victimPolicyNames()) {
        auto p = makeVictimPolicy(name, cfg);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->name(), name);
        EXPECT_TRUE(isVictimPolicy(name));
    }
}

TEST(PolicyFactoryTest, EveryRegisteredAllocPolicyConstructs)
{
    PolicyConfig cfg;
    for (const std::string &name : allocPolicyNames()) {
        auto p = makeAllocPolicy(name, cfg);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->name(), name);
        EXPECT_TRUE(isAllocPolicy(name));
    }
}

TEST(PolicyFactoryTest, KnownNamesAreRegistered)
{
    // The concrete zoo, by name: greedy / costbenefit / windowed
    // victims, rr / conflict allocators.
    EXPECT_TRUE(isVictimPolicy("greedy"));
    EXPECT_TRUE(isVictimPolicy("costbenefit"));
    EXPECT_TRUE(isVictimPolicy("windowed"));
    EXPECT_TRUE(isAllocPolicy("rr"));
    EXPECT_TRUE(isAllocPolicy("conflict"));
    EXPECT_FALSE(isVictimPolicy("nope"));
    EXPECT_FALSE(isAllocPolicy("nope"));
}

TEST(PolicyFactoryDeathTest, UnknownPolicyNameIsFatal)
{
    PolicyConfig cfg;
    EXPECT_DEATH(makeVictimPolicy("bogus", cfg), "unknown victim");
    EXPECT_DEATH(makeAllocPolicy("bogus", cfg), "unknown alloc");
}

//
// Greedy: bucketed index vs the reference linear scan
//

TEST(GreedyVictimTest, MatchesReferenceLinearScan)
{
    PageMapping m(params("greedy"));
    churn(m, m.lpnCount() / 2, 3);
    for (std::uint32_t unit = 0; unit < m.unitCount(); ++unit) {
        // Reference: lowest valid count, lowest block id on ties,
        // over victim-eligible blocks that free at least one page.
        std::optional<std::uint32_t> ref;
        std::uint32_t ref_valid = m.geometry().pagesPerBlock;
        for (std::uint32_t b = 0; b < m.geometry().blocksPerPlane;
             ++b) {
            if (!m.victimEligible(unit, b))
                continue;
            std::uint32_t v = m.blockState(unit, b).validCount;
            if (v < ref_valid) {
                ref = b;
                ref_valid = v;
            }
        }
        EXPECT_EQ(m.pickVictim(unit), ref) << "unit " << unit;
    }
}

TEST(GreedyVictimTest, PickSequenceIsStableAcrossIdenticalHistories)
{
    auto run = [] {
        PageMapping m(params("greedy"));
        churn(m, m.lpnCount() / 2, 3);
        std::vector<std::uint32_t> picks;
        for (std::uint32_t unit = 0; unit < m.unitCount(); ++unit) {
            auto v = m.pickVictim(unit);
            picks.push_back(v ? *v : ~0u);
        }
        return picks;
    };
    EXPECT_EQ(run(), run());
}

//
// Cost-benefit: age breaks the greedy tie
//

TEST(CostBenefitVictimTest, PrefersTheOlderBlockAtEqualValidCount)
{
    PageMapping m(params("costbenefit"));
    churn(m, m.lpnCount() / 2, 2);
    std::uint32_t unit = 0;
    auto pick = m.pickVictim(unit);
    ASSERT_TRUE(pick.has_value());
    // No eligible block with the same valid count may be older than
    // the chosen victim (equal-cost candidates resolve by age).
    std::uint32_t pick_valid = m.blockState(unit, *pick).validCount;
    std::uint64_t pick_seq = m.blockState(unit, *pick).lastWriteSeq;
    for (std::uint32_t b = 0; b < m.geometry().blocksPerPlane; ++b) {
        if (b == *pick || !m.victimEligible(unit, b))
            continue;
        if (m.blockState(unit, b).validCount != pick_valid)
            continue;
        EXPECT_GE(m.blockState(unit, b).lastWriteSeq, pick_seq)
            << "block " << b;
    }
}

TEST(CostBenefitVictimTest, NeverPicksAFullyValidBlockWhenAvoidable)
{
    PageMapping m(params("costbenefit"));
    churn(m, m.lpnCount() / 2, 3);
    for (std::uint32_t unit = 0; unit < m.unitCount(); ++unit) {
        auto pick = m.pickVictim(unit);
        if (!pick)
            continue;
        EXPECT_LT(m.blockState(unit, *pick).validCount,
                  m.geometry().pagesPerBlock)
            << "unit " << unit;
    }
}

//
// Windowed greedy: window restriction + livelock escape
//

TEST(WindowedVictimTest, PicksMinValidWithinTheWindow)
{
    MappingParams p = params("windowed");
    p.victimWindow = 2;
    PageMapping m(p);
    churn(m, m.lpnCount() / 2, 3);
    std::uint32_t unit = 0;
    const VictimIndex &ix = m.victimIndex(unit);
    // Reference: min valid over the first two eligible fill-order
    // blocks, ties to the earlier-filled one.
    std::optional<std::uint32_t> ref;
    std::uint32_t ref_valid = m.geometry().pagesPerBlock;
    std::uint32_t considered = 0;
    for (std::uint32_t b : ix.fillOrder) {
        if (!m.victimEligible(unit, b))
            continue;
        if (++considered > 2)
            break;
        std::uint32_t v = m.blockState(unit, b).validCount;
        if (v < ref_valid) {
            ref = b;
            ref_valid = v;
        }
    }
    ASSERT_TRUE(ref.has_value());
    EXPECT_EQ(m.pickVictim(unit), ref);
}

TEST(WindowedVictimTest, EscapesAnAllValidWindow)
{
    // Sequential fill with no rewrites: every full block is entirely
    // valid, so the window [0, W) frees nothing. Then invalidate one
    // page far past the window; windowed must widen to reach it
    // instead of returning a zero-reclaim victim (GC livelock).
    MappingParams p = params("windowed");
    p.victimWindow = 1;
    PageMapping m(p);
    for (Lpn l = 0; l < m.lpnCount() / 2; ++l)
        m.allocate(l);
    std::uint32_t unit = 0;
    const VictimIndex &ix = m.victimIndex(unit);
    ASSERT_GT(ix.fillOrder.size(), 2u);
    std::uint32_t late = ix.fillOrder.back();
    // Invalidate one page of the youngest full block.
    bool invalidated = false;
    for (Lpn l = 0; l < m.lpnCount() / 2 && !invalidated; ++l) {
        auto ppn = m.translate(l);
        if (!ppn)
            continue;
        PhysAddr a = m.geometry().pageAddr(*ppn);
        if (m.unitOf(a) == unit && a.block == late) {
            m.invalidate(l);
            invalidated = true;
        }
    }
    ASSERT_TRUE(invalidated);
    auto pick = m.pickVictim(unit);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, late);
}

//
// Allocation policies
//

TEST(RoundRobinAllocTest, StripesUnitsLikeTheHistoricalCursor)
{
    PageMapping m(params("greedy", "rr"));
    std::vector<std::uint32_t> units;
    for (Lpn l = 0; l < m.unitCount() * 2; ++l) {
        PhysAddr a = m.allocate(l);
        units.push_back(m.unitOf(a));
    }
    for (std::size_t i = 0; i < units.size(); ++i)
        EXPECT_EQ(units[i], i % m.unitCount()) << "write " << i;
}

TEST(ConflictAwareAllocTest, SteersAroundGcBusyUnits)
{
    PageMapping m(params("greedy", "conflict"));
    std::uint32_t busy = 0;
    m.setGcBusyProbe(
        [&busy](std::uint32_t unit) { return unit == busy; });
    for (Lpn l = 0; l < 16; ++l) {
        PhysAddr a = m.allocate(l);
        EXPECT_NE(m.unitOf(a), busy) << "write " << l;
    }
}

TEST(ConflictAwareAllocTest, FallsBackWhenEveryUnitIsBusy)
{
    PageMapping m(params("greedy", "conflict"));
    m.setGcBusyProbe([](std::uint32_t) { return true; });
    // All units report GC-busy: allocation must still make progress.
    PhysAddr a = m.allocate(0);
    EXPECT_TRUE(m.translate(0).has_value());
    (void)a;

    StatRegistry reg;
    m.registerPolicyStats(reg, "p");
    EXPECT_GE(reg.value("p.alloc.conflict.conflicted"), 1.0);
}

//
// Policy-tagged stats
//

TEST(PolicyStatsTest, VictimPicksAreCountedUnderThePolicyName)
{
    PageMapping m(params("costbenefit"));
    churn(m, m.lpnCount() / 2, 3);
    StatRegistry reg;
    m.registerPolicyStats(reg, "p");
    ASSERT_TRUE(reg.has("p.victim.costbenefit.picks"));
    EXPECT_DOUBLE_EQ(reg.value("p.victim.costbenefit.picks"), 0.0);
    m.pickVictim(0);
    EXPECT_DOUBLE_EQ(reg.value("p.victim.costbenefit.picks"), 1.0);
}

//
// Index consistency under every victim policy
//

TEST(VictimIndexTest, AuditPassesAfterChurnUnderEveryPolicy)
{
    for (const std::string &name : victimPolicyNames()) {
        MappingParams p = params(name.c_str());
        PageMapping m(p);
        churn(m, m.lpnCount() / 2, 3);
        // Drain one victim per unit the way GC would.
        for (std::uint32_t unit = 0; unit < m.unitCount(); ++unit) {
            auto v = m.pickVictim(unit);
            if (!v)
                continue;
            for (Lpn l : m.validLpns(unit, *v)) {
                PhysAddr dst = m.allocateInUnit(l, unit);
                m.commitRelocation(l, dst);
            }
            if (m.validLpns(unit, *v).empty())
                m.eraseBlock(unit, *v);
        }
        Auditor auditor(AuditMode::Report);
        auditor.addCheck("ftl",
                         [&m](AuditReport &rep) { m.audit(rep); });
        EXPECT_EQ(auditor.run(), 0u) << name;
    }
}

//
// Superblock-level policies
//

TEST(SuperblockPolicyTest, EveryPolicyPicksAReclaimableSuperblock)
{
    FlashGeometry geom;
    geom.channels = 2;
    geom.ways = 2;
    geom.diesPerWay = 1;
    geom.planesPerDie = 1;
    geom.blocksPerPlane = 8;
    geom.pagesPerBlock = 4;
    for (const std::string &name : victimPolicyNames()) {
        SuperblockMapping m(geom, 0.0, name);
        Lpn per_sb = m.pagesPerSuperblock();
        // Two full superblocks, holes punched in both.
        for (Lpn l = 0; l < 2 * per_sb; ++l)
            m.allocate(l);
        for (Lpn l = 0; l < per_sb / 2; ++l)
            m.invalidate(l);
        m.invalidate(per_sb);
        auto v = m.pickVictim();
        ASSERT_TRUE(v.has_value()) << name;
        EXPECT_EQ(m.info(*v).state, SuperblockState::Full) << name;
        EXPECT_LT(m.info(*v).validCount, m.pagesPerSuperblock())
            << name;
    }
}

} // namespace
} // namespace dssd
