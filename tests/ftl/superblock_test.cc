/** Unit tests for the superblock-organized mapping. */

#include <gtest/gtest.h>

#include "ftl/superblock.hh"

namespace dssd
{
namespace
{

FlashGeometry
geom()
{
    FlashGeometry g;
    g.channels = 4;
    g.ways = 2;
    g.diesPerWay = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8; // 8 superblocks
    g.pagesPerBlock = 4;
    g.pageBytes = 4 * kKiB;
    return g;
}

TEST(SuperblockMappingTest, DerivedCounts)
{
    SuperblockMapping m(geom(), 0.0);
    EXPECT_EQ(m.unitCount(), 16u);
    EXPECT_EQ(m.pagesPerSuperblock(), 64u);
    EXPECT_EQ(m.superblockCount(), 8u);
    EXPECT_EQ(m.lpnCount(), 8u * 64u);
    EXPECT_EQ(m.freeSuperblocks(), 8u);
}

TEST(SuperblockMappingTest, AllocationStripesAcrossUnits)
{
    SuperblockMapping m(geom(), 0.0);
    // The first unitCount allocations hit distinct units of one
    // superblock at page 0.
    std::set<std::uint32_t> units;
    std::uint32_t sb = 0;
    for (Lpn l = 0; l < 16; ++l) {
        PhysAddr a = m.allocate(l);
        sb = a.block;
        EXPECT_EQ(a.page, 0u);
        units.insert(m.stripeSlotOf(a) % m.unitCount());
    }
    EXPECT_EQ(units.size(), 16u);
    EXPECT_EQ(m.info(sb).state, SuperblockState::Active);
}

TEST(SuperblockMappingTest, SlotAddrRoundTrips)
{
    SuperblockMapping m(geom(), 0.0);
    for (std::uint32_t sb = 0; sb < 8; ++sb) {
        for (std::uint32_t slot = 0; slot < 64; ++slot) {
            PhysAddr a = m.slotAddr(sb, slot);
            EXPECT_EQ(m.superblockOf(a), sb);
            EXPECT_EQ(m.stripeSlotOf(a), slot);
        }
    }
}

TEST(SuperblockMappingTest, TranslateFollowsAllocation)
{
    SuperblockMapping m(geom(), 0.0);
    PhysAddr a = m.allocate(42);
    auto t = m.translate(42);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->block, a.block);
    EXPECT_EQ(t->page, a.page);
    EXPECT_EQ(t->channel, a.channel);
}

TEST(SuperblockMappingTest, RewriteInvalidatesOldCopy)
{
    SuperblockMapping m(geom(), 0.0);
    m.allocate(7);
    m.allocate(7);
    EXPECT_EQ(m.totalValidPages(), 1u);
}

TEST(SuperblockMappingTest, FullSuperblockThenNextOpens)
{
    SuperblockMapping m(geom(), 0.0);
    for (Lpn l = 0; l < 64; ++l)
        m.allocate(l);
    EXPECT_EQ(m.info(0).state, SuperblockState::Full);
    PhysAddr a = m.allocate(64);
    EXPECT_EQ(a.block, 1u);
    EXPECT_EQ(m.freeSuperblocks(), 6u);
}

TEST(SuperblockMappingTest, GreedyVictimFewestValid)
{
    SuperblockMapping m(geom(), 0.0);
    for (Lpn l = 0; l < 128; ++l)
        m.allocate(l); // fills superblocks 0 and 1
    // Punch more holes in superblock 1.
    for (Lpn l = 64; l < 64 + 40; ++l)
        m.invalidate(l);
    m.invalidate(0);
    auto v = m.pickVictim();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1u);
}

TEST(SuperblockMappingTest, FullyValidNotAVictim)
{
    SuperblockMapping m(geom(), 0.0);
    for (Lpn l = 0; l < 64; ++l)
        m.allocate(l);
    EXPECT_FALSE(m.pickVictim().has_value());
}

TEST(SuperblockMappingTest, ValidLpnsPerChannel)
{
    SuperblockMapping m(geom(), 0.0);
    m.fillAll(0, 0);
    auto all = m.validLpns(0);
    EXPECT_EQ(all.size(), 64u);
    std::size_t sum = 0;
    for (std::uint32_t ch = 0; ch < 4; ++ch) {
        auto per = m.validLpnsOnChannel(0, ch);
        EXPECT_EQ(per.size(), 16u); // 64 slots / 4 channels
        sum += per.size();
    }
    EXPECT_EQ(sum, 64u);
}

TEST(SuperblockMappingTest, FillInvalidateEraseCycle)
{
    SuperblockMapping m(geom(), 0.0);
    m.fillAll(3, 0);
    EXPECT_EQ(m.info(3).state, SuperblockState::Full);
    EXPECT_EQ(m.totalValidPages(), 64u);
    m.invalidateAll(3);
    EXPECT_EQ(m.totalValidPages(), 0u);
    m.eraseSuperblock(3);
    EXPECT_EQ(m.info(3).state, SuperblockState::Free);
    EXPECT_EQ(m.info(3).eraseCount, 1u);
    EXPECT_EQ(m.freeSuperblocks(), 8u);
}

TEST(SuperblockMappingTest, FillAllInvalidatesPreviousCopies)
{
    SuperblockMapping m(geom(), 0.0);
    m.fillAll(0, 0);
    // Refilling the same LPN range elsewhere retires sb 0's copies.
    m.fillAll(1, 0);
    EXPECT_EQ(m.info(0).validCount, 0u);
    EXPECT_EQ(m.info(1).validCount, 64u);
    EXPECT_EQ(m.totalValidPages(), 64u);
}

TEST(SuperblockMappingTest, RetireRemovesFromPool)
{
    SuperblockMapping m(geom(), 0.0);
    m.retireSuperblock(5);
    EXPECT_EQ(m.info(5).state, SuperblockState::Dead);
    EXPECT_EQ(m.deadSuperblocks(), 1u);
    EXPECT_EQ(m.freeSuperblocks(), 7u);
}

TEST(SuperblockMappingTest, ReserveRemovesFromPoolSeparately)
{
    SuperblockMapping m(geom(), 0.0);
    m.reserveSuperblock(7);
    EXPECT_EQ(m.info(7).state, SuperblockState::Reserved);
    EXPECT_EQ(m.reservedSuperblocks(), 1u);
    EXPECT_EQ(m.deadSuperblocks(), 0u);
    EXPECT_EQ(m.freeSuperblocks(), 7u);
}

TEST(SuperblockMappingDeathTest, EraseWithValidPagesPanics)
{
    SuperblockMapping m(geom(), 0.0);
    m.fillAll(0, 0);
    EXPECT_DEATH(m.eraseSuperblock(0), "valid pages");
}

TEST(SuperblockMappingDeathTest, FillNonFreePanics)
{
    SuperblockMapping m(geom(), 0.0);
    m.fillAll(0, 0);
    EXPECT_DEATH(m.fillAll(0, 64), "free superblock");
}

} // namespace
} // namespace dssd
