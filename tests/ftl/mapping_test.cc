/** Unit tests for the page-mapping FTL layer. */

#include <gtest/gtest.h>

#include "ftl/mapping.hh"

namespace dssd
{
namespace
{

MappingParams
params()
{
    MappingParams p;
    p.geom.channels = 2;
    p.geom.ways = 2;
    p.geom.diesPerWay = 1;
    p.geom.planesPerDie = 2;
    p.geom.blocksPerPlane = 8;
    p.geom.pagesPerBlock = 4;
    p.geom.pageBytes = 4 * kKiB;
    p.overProvision = 0.25;
    p.gcFreeBlockThreshold = 1;
    p.gcFreeBlockTarget = 2;
    return p;
}

TEST(MappingTest, LpnSpaceRespectsOverProvision)
{
    PageMapping m(params());
    // 2*2*2 units * 8 blocks * 4 pages = 256 pages; 25% OP -> 192.
    EXPECT_EQ(m.lpnCount(), 192u);
    EXPECT_EQ(m.unitCount(), 8u);
}

TEST(MappingTest, TranslateUnmappedIsEmpty)
{
    PageMapping m(params());
    EXPECT_FALSE(m.translate(0).has_value());
}

TEST(MappingTest, AllocateMapsAndTranslates)
{
    PageMapping m(params());
    PhysAddr a = m.allocate(42);
    auto ppn = m.translate(42);
    ASSERT_TRUE(ppn.has_value());
    EXPECT_EQ(*ppn, m.geometry().pageIndex(a));
    auto lpn = m.reverseLookup(*ppn);
    ASSERT_TRUE(lpn.has_value());
    EXPECT_EQ(*lpn, 42u);
    EXPECT_EQ(m.totalValidPages(), 1u);
}

TEST(MappingTest, AllocationStripesAcrossUnits)
{
    PageMapping m(params());
    std::set<std::uint32_t> units;
    for (Lpn l = 0; l < 8; ++l)
        units.insert(m.unitOf(m.allocate(l)));
    EXPECT_EQ(units.size(), 8u); // one allocation per unit
}

TEST(MappingTest, RewriteInvalidatesOldCopy)
{
    PageMapping m(params());
    PhysAddr a1 = m.allocate(7);
    PhysAddr a2 = m.allocate(7);
    EXPECT_FALSE(a1 == a2);
    EXPECT_EQ(m.totalValidPages(), 1u);
    Ppn old = m.geometry().pageIndex(a1);
    EXPECT_FALSE(m.reverseLookup(old).has_value());
}

TEST(MappingTest, InvalidateDropsMapping)
{
    PageMapping m(params());
    m.allocate(5);
    m.invalidate(5);
    EXPECT_FALSE(m.translate(5).has_value());
    EXPECT_EQ(m.totalValidPages(), 0u);
    // Double invalidate is a no-op.
    m.invalidate(5);
}

TEST(MappingTest, FreeBlockCountDecreasesAsBlocksOpen)
{
    PageMapping m(params());
    std::uint32_t before = m.freeBlockCount(0);
    // Fill one whole unit-0 block (4 pages land on unit 0 if we
    // allocate 4 * unitCount pages round-robin).
    for (Lpn l = 0; l < 4u * m.unitCount(); ++l)
        m.allocate(l);
    EXPECT_LT(m.freeBlockCount(0), before);
}

TEST(MappingTest, GreedyVictimPicksFewestValid)
{
    PageMapping m(params());
    // Fill two full blocks worth of pages on every unit.
    std::uint32_t per_round = m.unitCount();
    for (Lpn l = 0; l < 8 * per_round; ++l)
        m.allocate(l);
    // Invalidate 3 of the 4 pages of the first block of unit 0.
    // Unit-0 pages are LPNs 0, 8, 16, 24 (stride = unitCount).
    m.invalidate(0);
    m.invalidate(8);
    m.invalidate(16);
    auto victim = m.pickVictim(0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(m.blockState(0, *victim).validCount, 1u);
}

TEST(MappingTest, FullyValidBlocksAreNotVictims)
{
    PageMapping m(params());
    for (Lpn l = 0; l < 8u * m.unitCount(); ++l)
        m.allocate(l);
    // Nothing invalidated: GC would gain nothing.
    EXPECT_FALSE(m.pickVictim(0).has_value());
}

TEST(MappingTest, ValidLpnsListsExactlyTheLiveOnes)
{
    PageMapping m(params());
    for (Lpn l = 0; l < 8u * m.unitCount(); ++l)
        m.allocate(l);
    m.invalidate(0);
    m.invalidate(16);
    auto victim = m.pickVictim(0);
    ASSERT_TRUE(victim.has_value());
    auto lpns = m.validLpns(0, *victim);
    EXPECT_EQ(lpns.size(), 2u);
    for (Lpn l : lpns) {
        EXPECT_TRUE(l == 8 || l == 24) << l;
    }
}

TEST(MappingTest, RelocationMovesMapping)
{
    PageMapping m(params());
    for (Lpn l = 0; l < 8u * m.unitCount(); ++l)
        m.allocate(l);
    Ppn before = *m.translate(8);
    PhysAddr dst = m.allocateInUnit(8, 1);
    m.commitRelocation(8, dst);
    Ppn after = *m.translate(8);
    EXPECT_NE(before, after);
    EXPECT_EQ(after, m.geometry().pageIndex(dst));
    EXPECT_EQ(*m.reverseLookup(after), 8u);
    EXPECT_FALSE(m.reverseLookup(before).has_value());
    EXPECT_EQ(m.gcRelocations(), 1u);
}

TEST(MappingTest, StaleRelocationLeavesNewCopyAlone)
{
    PageMapping m(params());
    m.allocate(3);
    PhysAddr dst = m.allocateInUnit(3, 1);
    // Host overwrites LPN 3 while the GC copy is in flight...
    m.invalidate(3);
    // ...so the commit is dead-on-arrival.
    m.commitRelocation(3, dst);
    EXPECT_FALSE(m.translate(3).has_value());
    EXPECT_EQ(m.blockState(1, dst.block).pending, 0u);
}

TEST(MappingTest, EraseReturnsBlockToFreeList)
{
    PageMapping m(params());
    for (Lpn l = 0; l < 8u * m.unitCount(); ++l)
        m.allocate(l);
    // Kill all pages of unit 0's first block.
    for (Lpn l : {0, 8, 16, 24})
        m.invalidate(static_cast<Lpn>(l));
    auto victim = m.pickVictim(0);
    ASSERT_TRUE(victim.has_value());
    std::uint32_t before = m.freeBlockCount(0);
    m.eraseBlock(0, *victim);
    EXPECT_EQ(m.freeBlockCount(0), before + 1);
    EXPECT_EQ(m.blockState(0, *victim).eraseCount, 1u);
    EXPECT_EQ(m.erases(), 1u);
}

TEST(MappingTest, RetiredBlockNeverReturnsToFreeList)
{
    PageMapping m(params());
    m.retireBlock(0, 5);
    std::uint32_t frees = m.freeBlockCount(0);
    for (std::uint32_t b = 0; b < 8; ++b) {
        if (m.blockState(0, b).isBad) {
            EXPECT_EQ(b, 5u);
        }
    }
    EXPECT_EQ(frees, 7u);
}

TEST(MappingTest, GcThresholds)
{
    MappingParams p = params();
    PageMapping m(p);
    EXPECT_FALSE(m.gcNeeded(0)); // 8 free blocks initially
    EXPECT_TRUE(m.gcSatisfied(0));
}

TEST(MappingTest, PrefillReachesRequestedState)
{
    PageMapping m(params());
    Rng rng(1);
    m.prefill(0.5, 0.2, rng);
    EXPECT_NEAR(m.utilization(), 0.5 * 0.8, 0.1);
    EXPECT_EQ(m.hostWrites(), 0u); // prefill excluded from WAF
}

TEST(MappingTest, WafStartsAtOne)
{
    PageMapping m(params());
    m.allocate(1);
    EXPECT_DOUBLE_EQ(m.waf(), 1.0);
}

TEST(MappingDeathTest, EraseActiveBlockPanics)
{
    PageMapping m(params());
    PhysAddr a = m.allocate(0);
    std::uint32_t unit = m.unitOf(a);
    m.invalidate(0);
    EXPECT_DEATH(m.eraseBlock(unit, a.block), "active");
}

TEST(MappingDeathTest, EraseWithValidPagesPanics)
{
    PageMapping m(params());
    for (Lpn l = 0; l < 8u * m.unitCount(); ++l)
        m.allocate(l);
    auto addr = m.geometry().pageAddr(*m.translate(0));
    std::uint32_t unit = m.unitOf(addr);
    EXPECT_DEATH(m.eraseBlock(unit, addr.block), "valid pages");
}

TEST(MappingDeathTest, PendingGcCopyBlocksErase)
{
    PageMapping m(params());
    // Fill one destination block with uncommitted GC reservations so
    // it is closed (not active) but still has copies in flight.
    PhysAddr dst{};
    for (Lpn l = 0; l < 4; ++l)
        dst = m.allocateInUnit(l, 2);
    EXPECT_DEATH(m.eraseBlock(2, dst.block), "pending");
}

} // namespace
} // namespace dssd
