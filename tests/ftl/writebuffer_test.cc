/** Unit tests for the DRAM write-buffer model. */

#include <gtest/gtest.h>

#include "ftl/writebuffer.hh"

namespace dssd
{
namespace
{

WriteBufferParams
params()
{
    WriteBufferParams p;
    p.capacityPages = 10;
    p.mode = BufferMode::Real;
    p.flushHighWatermark = 0.8;
    p.flushLowWatermark = 0.5;
    return p;
}

TEST(WriteBufferTest, MissThenHitAfterInsert)
{
    WriteBuffer wb(params());
    EXPECT_FALSE(wb.readHit(5));
    EXPECT_FALSE(wb.insert(5));
    EXPECT_TRUE(wb.readHit(5));
}

TEST(WriteBufferTest, OverwriteHitDoesNotGrow)
{
    WriteBuffer wb(params());
    wb.insert(1);
    EXPECT_TRUE(wb.insert(1));
    EXPECT_EQ(wb.occupancy(), 1u);
}

TEST(WriteBufferTest, FlushWatermarks)
{
    WriteBuffer wb(params());
    for (Lpn l = 0; l < 8; ++l)
        wb.insert(l);
    EXPECT_FALSE(wb.flushNeeded()); // 8 == 0.8*10, not above
    wb.insert(8);
    EXPECT_TRUE(wb.flushNeeded());
    auto drained = wb.drainForFlush(4);
    EXPECT_EQ(drained.size(), 4u);
    EXPECT_EQ(wb.occupancy(), 5u);
    EXPECT_TRUE(wb.flushSatisfied());
}

TEST(WriteBufferTest, DrainIsFifoOldestFirst)
{
    WriteBuffer wb(params());
    wb.insert(10);
    wb.insert(20);
    wb.insert(30);
    auto d = wb.drainForFlush(2);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0], 10u);
    EXPECT_EQ(d[1], 20u);
    EXPECT_FALSE(wb.readHit(10));
    EXPECT_TRUE(wb.readHit(30));
}

TEST(WriteBufferTest, AlwaysHitModeIgnoresResidency)
{
    WriteBufferParams p = params();
    p.mode = BufferMode::AlwaysHit;
    WriteBuffer wb(p);
    EXPECT_TRUE(wb.readHit(999));
}

TEST(WriteBufferTest, AlwaysMissModeIgnoresResidency)
{
    WriteBufferParams p = params();
    p.mode = BufferMode::AlwaysMiss;
    WriteBuffer wb(p);
    wb.insert(7);
    EXPECT_FALSE(wb.readHit(7));
}

TEST(WriteBufferTest, CapacityOverflowDropsOldest)
{
    WriteBuffer wb(params());
    for (Lpn l = 0; l < 12; ++l)
        wb.insert(l);
    EXPECT_EQ(wb.occupancy(), 10u);
    EXPECT_FALSE(wb.readHit(0));
    EXPECT_TRUE(wb.readHit(11));
}

TEST(WriteBufferTest, EvictRemovesSpecificPage)
{
    WriteBuffer wb(params());
    wb.insert(1);
    wb.insert(2);
    wb.evict(1);
    EXPECT_FALSE(wb.readHit(1));
    EXPECT_TRUE(wb.readHit(2));
    EXPECT_EQ(wb.occupancy(), 1u);
}

TEST(WriteBufferTest, ProbeStats)
{
    WriteBuffer wb(params());
    wb.recordProbe(true);
    wb.recordProbe(true);
    wb.recordProbe(false);
    EXPECT_EQ(wb.hits(), 2u);
    EXPECT_EQ(wb.misses(), 1u);
}

} // namespace
} // namespace dssd
