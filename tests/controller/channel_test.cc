/** Unit tests for the conventional flash-channel controller. */

#include <gtest/gtest.h>

#include "controller/channel.hh"

namespace dssd
{
namespace
{

FlashGeometry
geom()
{
    FlashGeometry g;
    g.channels = 1;
    g.ways = 2;
    g.diesPerWay = 1;
    g.planesPerDie = 4;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 16;
    g.pageBytes = 4 * kKiB;
    return g;
}

ChannelParams
cparams()
{
    ChannelParams p;
    p.busBandwidth = 1.0; // 1 byte per ns: easy math
    return p;
}

TEST(ChannelTest, ReadSequencesCmdArrayData)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr a{};
    Tick done = 0;
    LatencyBreakdown bd;
    ch.read(a, 1, tagIo, [&] { done = e.now(); }, &bd);
    e.run();
    // cmd 8B (8 ticks) + tR 5us + data 4096 ticks.
    EXPECT_EQ(done, 8u + usToTicks(5) + 4096u);
    EXPECT_EQ(bd.flashMem, usToTicks(5));
    EXPECT_EQ(bd.flashBus, 8u + 4096u);
    EXPECT_EQ(ch.reads(), 1u);
}

TEST(ChannelTest, ProgramTransfersDataThenBusy)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr a{};
    Tick done = 0;
    LatencyBreakdown bd;
    ch.program(a, 1, tagIo, [&] { done = e.now(); }, &bd);
    e.run();
    EXPECT_EQ(done, 8u + 4096u + usToTicks(50));
    EXPECT_EQ(bd.flashMem, usToTicks(50));
}

TEST(ChannelTest, EraseIsCommandOnly)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr a{};
    Tick done = 0;
    ch.erase(a, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 8u + msToTicks(1));
    EXPECT_EQ(ch.erases(), 1u);
}

TEST(ChannelTest, MultiPlaneReadScalesDataTransfer)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr a{};
    Tick done = 0;
    ch.read(a, 4, tagIo, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 8u + usToTicks(5) + 4u * 4096u);
}

TEST(ChannelTest, TwoWaysOverlapArrayTime)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr a{}, b{};
    b.way = 1;
    Tick d1 = 0, d2 = 0;
    ch.program(a, 1, tagIo, [&] { d1 = e.now(); });
    ch.program(b, 1, tagIo, [&] { d2 = e.now(); });
    e.run();
    // Data transfers serialize on the channel bus but the 50us array
    // programs overlap across ways.
    Tick xfer = 8u + 4096u;
    EXPECT_EQ(d1, xfer + usToTicks(50));
    EXPECT_EQ(d2, 2 * xfer + usToTicks(50));
}

TEST(ChannelTest, SameDieOpsSerializeOnPlanes)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr a{};
    Tick d1 = 0, d2 = 0;
    ch.program(a, 1, tagIo, [&] { d1 = e.now(); });
    ch.program(a, 1, tagIo, [&] { d2 = e.now(); });
    e.run();
    EXPECT_GE(d2, d1 + usToTicks(50));
}

TEST(ChannelTest, LocalCopybackNeverMovesDataOnBus)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr src{}, dst{};
    dst.block = 3;
    Tick done = 0;
    ch.localCopyback(src, dst, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 16u + usToTicks(55));
    // Only command cycles crossed the channel bus.
    EXPECT_EQ(ch.bus().bytesMoved(tagGc), 16u);
}

TEST(ChannelDeathTest, LocalCopybackAcrossPlanesPanics)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr src{}, dst{};
    dst.plane = 1;
    EXPECT_DEATH(ch.localCopyback(src, dst, tagGc, [] {}),
                 "within one plane");
}

TEST(ChannelDeathTest, PlaneOutOfRangePanics)
{
    Engine e;
    FlashChannel ch(e, geom(), ullTiming(), 0, cparams());
    PhysAddr a{};
    a.plane = 3;
    EXPECT_DEATH(ch.read(a, 2, tagIo, [] {}), "out of range");
}

} // namespace
} // namespace dssd
