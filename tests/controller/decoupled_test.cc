/** Unit tests for the decoupled controller and global copyback. */

#include <gtest/gtest.h>

#include <memory>

#include "controller/decoupled.hh"
#include "noc/network.hh"

namespace dssd
{
namespace
{

FlashGeometry
geom()
{
    FlashGeometry g;
    g.channels = 4;
    g.ways = 2;
    g.diesPerWay = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 16;
    g.pageBytes = 4 * kKiB;
    return g;
}

struct Rig
{
    Engine engine;
    std::vector<std::unique_ptr<FlashChannel>> channels;
    std::vector<std::unique_ptr<DecoupledController>> ctrls;
    std::unique_ptr<NocNetwork> noc;

    explicit Rig(unsigned dbuf_slots = 16)
    {
        ChannelParams cp;
        cp.busBandwidth = 1.0;
        DecoupledParams dp;
        dp.dbufSlots = dbuf_slots;
        NocParams np;
        np.linkBandwidth = 2.0;
        np.hopLatency = 10;
        FlashGeometry g = geom();
        for (unsigned ch = 0; ch < g.channels; ++ch) {
            channels.push_back(std::make_unique<FlashChannel>(
                engine, g, ullTiming(), ch, cp));
            ctrls.push_back(std::make_unique<DecoupledController>(
                engine, *channels[ch], dp));
        }
        noc = std::make_unique<NocNetwork>(
            engine, std::make_unique<Mesh1D>(g.channels), np);
        for (unsigned ch = 0; ch < g.channels; ++ch)
            ctrls[ch]->setInterconnect(noc.get(), ch);
    }
};

TEST(DecoupledTest, SameChannelCopybackCompletes)
{
    Rig rig;
    PhysAddr src{}, dst{};
    dst.block = 3;
    bool done = false;
    rig.ctrls[0]->globalCopyback(src, dst, nullptr, tagGc,
                                 [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.ctrls[0]->copybacksCompleted(), 1u);
    // The page never entered the network.
    EXPECT_EQ(rig.noc->packetsDelivered(), 0u);
}

TEST(DecoupledTest, CrossChannelCopybackUsesNoc)
{
    Rig rig;
    PhysAddr src{}, dst{};
    dst.channel = 3;
    bool done = false;
    rig.ctrls[0]->globalCopyback(src, dst, rig.ctrls[3].get(), tagGc,
                                 [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.noc->packetsDelivered(), 1u);
    EXPECT_EQ(rig.channels[3]->programs(), 1u);
    EXPECT_EQ(rig.channels[0]->reads(), 1u);
}

TEST(DecoupledTest, StageMachineProgression)
{
    Rig rig;
    PhysAddr src{}, dst{};
    dst.channel = 2;
    rig.ctrls[0]->globalCopyback(src, dst, rig.ctrls[2].get(), tagGc,
                                 [] {});
    rig.engine.run();
    auto &c = *rig.ctrls[0];
    EXPECT_EQ(c.stageCount(CopybackStage::Issued), 1u);
    EXPECT_EQ(c.stageCount(CopybackStage::R), 1u);
    EXPECT_EQ(c.stageCount(CopybackStage::RE), 1u);
    EXPECT_EQ(c.stageCount(CopybackStage::T), 1u);
    EXPECT_EQ(c.stageCount(CopybackStage::W), 1u);
    EXPECT_EQ(c.copybacksInFlight(), 0u);
}

TEST(DecoupledTest, EccAlwaysChecksTheData)
{
    // Footnote 6: even same-die destinations go through ECC (no ONFI
    // local copyback), so error propagation cannot happen.
    Rig rig;
    PhysAddr src{}, dst{};
    dst.block = 1;
    rig.ctrls[0]->globalCopyback(src, dst, nullptr, tagGc, [] {});
    rig.engine.run();
    EXPECT_EQ(rig.ctrls[0]->ecc().pagesProcessed(), 1u);
}

TEST(DecoupledTest, CopybackLatencyRecorded)
{
    Rig rig;
    PhysAddr src{}, dst{};
    dst.channel = 1;
    rig.ctrls[0]->globalCopyback(src, dst, rig.ctrls[1].get(), tagGc,
                                 [] {});
    rig.engine.run();
    EXPECT_EQ(rig.ctrls[0]->copybackLatency().count(), 1u);
    // At minimum: read 5us + program 50us.
    EXPECT_GT(rig.ctrls[0]->copybackLatency().mean(),
              static_cast<double>(usToTicks(55)));
}

TEST(DecoupledTest, BreakdownAttributesNocTime)
{
    Rig rig;
    PhysAddr src{}, dst{};
    dst.channel = 3;
    LatencyBreakdown bd;
    rig.ctrls[0]->globalCopyback(src, dst, rig.ctrls[3].get(), tagGc,
                                 [] {}, &bd);
    rig.engine.run();
    EXPECT_GT(bd.noc, 0u);
    EXPECT_GT(bd.ecc, 0u);
    EXPECT_GT(bd.flashMem, 0u);
    EXPECT_EQ(bd.systemBus, 0u); // the whole point of dSSD
}

TEST(DecoupledTest, DbufBackpressureBoundsConcurrency)
{
    Rig rig(2); // 2 dBUF slots total: 1 egress + 1 ingress
    unsigned done = 0;
    PhysAddr src{}, dst{};
    dst.channel = 1;
    for (int i = 0; i < 8; ++i) {
        src.page = static_cast<std::uint32_t>(i);
        dst.page = static_cast<std::uint32_t>(i);
        rig.ctrls[0]->globalCopyback(src, dst, rig.ctrls[1].get(), tagGc,
                                     [&] { ++done; });
    }
    rig.engine.run();
    EXPECT_EQ(done, 8u);
    EXPECT_LE(rig.ctrls[0]->dbufOut().maxHeld(), 1u);
    EXPECT_LE(rig.ctrls[1]->dbufIn().maxHeld(), 1u);
}

TEST(DecoupledTest, BidirectionalCopybackStormIsDeadlockFree)
{
    // Saturate every controller with cross-channel copybacks in both
    // directions; the egress/ingress dBUF split must prevent the
    // cyclic wait.
    Rig rig(2);
    unsigned done = 0;
    const unsigned per_pair = 32;
    for (unsigned i = 0; i < per_pair; ++i) {
        for (unsigned ch = 0; ch < 4; ++ch) {
            PhysAddr src{}, dst{};
            src.channel = ch;
            src.page = i % 16;
            dst.channel = (ch + 1 + i) % 4;
            dst.page = i % 16;
            rig.ctrls[ch]->globalCopyback(
                src, dst, rig.ctrls[dst.channel].get(), tagGc,
                [&] { ++done; });
        }
    }
    rig.engine.run();
    EXPECT_EQ(done, per_pair * 4);
    for (unsigned ch = 0; ch < 4; ++ch)
        EXPECT_EQ(rig.ctrls[ch]->copybacksInFlight(), 0u) << ch;
}

TEST(DecoupledTest, RemapRedirectsCommands)
{
    Rig rig;
    FlashGeometry g = geom();
    PhysAddr orig{};
    orig.block = 2;
    PhysAddr repl{};
    repl.way = 1;
    repl.block = 5;
    rig.ctrls[0]->srt().insert(channelBlockId(g, orig),
                               channelBlockId(g, repl));
    PhysAddr probe = orig;
    probe.page = 7;
    PhysAddr out = rig.ctrls[0]->remap(probe);
    EXPECT_EQ(out.way, 1u);
    EXPECT_EQ(out.block, 5u);
    EXPECT_EQ(out.page, 7u);   // page offset preserved
    EXPECT_EQ(out.channel, 0u);
}

TEST(DecoupledTest, RemapPassThroughWhenNoEntry)
{
    Rig rig;
    PhysAddr a{};
    a.block = 4;
    a.page = 3;
    PhysAddr out = rig.ctrls[0]->remap(a);
    EXPECT_EQ(out.block, 4u);
    EXPECT_EQ(out.page, 3u);
}

TEST(DecoupledDeathTest, CrossChannelWithoutControllerPanics)
{
    Rig rig;
    PhysAddr src{}, dst{};
    dst.channel = 1;
    EXPECT_DEATH(
        rig.ctrls[0]->globalCopyback(src, dst, nullptr, tagGc, [] {}),
        "destination controller");
}

TEST(DecoupledDeathTest, WrongSourceChannelPanics)
{
    Rig rig;
    PhysAddr src{}, dst{};
    src.channel = 2;
    EXPECT_DEATH(
        rig.ctrls[0]->globalCopyback(src, dst, nullptr, tagGc, [] {}),
        "source");
}

} // namespace
} // namespace dssd
