/** Unit tests for the SRT and RBT hardware tables. */

#include <gtest/gtest.h>

#include "controller/remap.hh"

namespace dssd
{
namespace
{

FlashGeometry
geom()
{
    FlashGeometry g;
    g.channels = 2;
    g.ways = 2;
    g.diesPerWay = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 16;
    g.pagesPerBlock = 8;
    return g;
}

TEST(ChannelBlockIdTest, RoundTrips)
{
    FlashGeometry g = geom();
    PhysAddr a{};
    a.channel = 1;
    a.way = 1;
    a.die = 0;
    a.plane = 1;
    a.block = 7;
    ChannelBlockId id = channelBlockId(g, a);
    PhysAddr back = channelBlockAddr(g, 1, id);
    EXPECT_EQ(back.channel, a.channel);
    EXPECT_EQ(back.way, a.way);
    EXPECT_EQ(back.die, a.die);
    EXPECT_EQ(back.plane, a.plane);
    EXPECT_EQ(back.block, a.block);
}

TEST(ChannelBlockIdTest, DistinctBlocksDistinctIds)
{
    FlashGeometry g = geom();
    std::set<ChannelBlockId> ids;
    PhysAddr a{};
    for (a.way = 0; a.way < g.ways; ++a.way)
        for (a.die = 0; a.die < g.diesPerWay; ++a.die)
            for (a.plane = 0; a.plane < g.planesPerDie; ++a.plane)
                for (a.block = 0; a.block < g.blocksPerPlane; ++a.block)
                    ids.insert(channelBlockId(g, a));
    EXPECT_EQ(ids.size(),
              static_cast<std::size_t>(g.ways * g.diesPerWay *
                                       g.planesPerDie * g.blocksPerPlane));
}

TEST(RbtTest, FifoOrder)
{
    RecycleBlockTable rbt;
    rbt.add(10);
    rbt.add(20);
    rbt.add(30);
    EXPECT_EQ(rbt.size(), 3u);
    EXPECT_EQ(rbt.take(), 10u);
    EXPECT_EQ(rbt.take(), 20u);
    EXPECT_EQ(rbt.size(), 1u);
    EXPECT_EQ(rbt.taken(), 2u);
    EXPECT_EQ(rbt.highWater(), 3u);
}

TEST(RbtTest, StartsEmpty)
{
    RecycleBlockTable rbt;
    EXPECT_TRUE(rbt.empty());
    EXPECT_EQ(rbt.size(), 0u);
}

TEST(SrtTest, InsertAndLookup)
{
    SuperblockRemapTable srt(4);
    EXPECT_TRUE(srt.insert(5, 99));
    auto hit = srt.lookup(5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 99u);
    EXPECT_FALSE(srt.lookup(6).has_value());
}

TEST(SrtTest, CapacityLimitEnforced)
{
    SuperblockRemapTable srt(2);
    EXPECT_TRUE(srt.insert(1, 10));
    EXPECT_TRUE(srt.insert(2, 20));
    EXPECT_TRUE(srt.full());
    EXPECT_FALSE(srt.insert(3, 30));
    EXPECT_EQ(srt.activeEntries(), 2u);
}

TEST(SrtTest, EraseFreesCapacity)
{
    SuperblockRemapTable srt(1);
    EXPECT_TRUE(srt.insert(1, 10));
    EXPECT_FALSE(srt.insert(2, 20));
    EXPECT_TRUE(srt.erase(1));
    EXPECT_FALSE(srt.erase(1));
    EXPECT_TRUE(srt.insert(2, 20));
    EXPECT_EQ(srt.highWater(), 1u);
    EXPECT_EQ(srt.inserts(), 2u);
}

TEST(SrtTest, DuplicateSourceRejected)
{
    SuperblockRemapTable srt(8);
    EXPECT_TRUE(srt.insert(1, 10));
    EXPECT_FALSE(srt.insert(1, 11));
    EXPECT_EQ(*srt.lookup(1), 10u);
}

TEST(SrtTest, ZeroCapacityMeansUnbounded)
{
    SuperblockRemapTable srt(0);
    for (ChannelBlockId i = 0; i < 10000; ++i)
        EXPECT_TRUE(srt.insert(i, i + 1));
    EXPECT_FALSE(srt.full());
    EXPECT_EQ(srt.activeEntries(), 10000u);
}

TEST(SrtTest, EntriesSortedIsSortedBySource)
{
    SuperblockRemapTable srt(0);
    srt.insert(42, 1);
    srt.insert(7, 2);
    srt.insert(1000, 3);
    auto e = srt.entriesSorted();
    ASSERT_EQ(e.size(), 3u);
    EXPECT_EQ(e[0], (std::pair<ChannelBlockId, ChannelBlockId>{7, 2}));
    EXPECT_EQ(e[1], (std::pair<ChannelBlockId, ChannelBlockId>{42, 1}));
    EXPECT_EQ(e[2],
              (std::pair<ChannelBlockId, ChannelBlockId>{1000, 3}));
}

/**
 * Determinism regression for the unordered_map behind the SRT: two
 * tables with identical *logical* contents but different insertion
 * orders and rehash histories must expose identical entries through
 * entriesSorted(). This pins the property dssd_lint's
 * unordered-iteration ban exists to protect — simulator output must
 * never depend on hash-bucket traversal order.
 */
TEST(SrtTest, EntriesSortedIdenticalAcrossRehashHistories)
{
    const ChannelBlockId n = 64;

    // Plain history: ascending inserts into a fresh table.
    SuperblockRemapTable a(0);
    for (ChannelBlockId i = 0; i < n; ++i)
        a.insert(i * 3, i * 3 + 1);

    // Scrambled history: force a very different bucket layout by
    // growing the table with hundreds of transient entries (multiple
    // rehashes) before erasing them, then insert the same final
    // mapping in descending order.
    SuperblockRemapTable b(0);
    for (ChannelBlockId i = 0; i < 500; ++i)
        b.insert(100000 + i, 200000 + i);
    for (ChannelBlockId i = 0; i < 500; ++i)
        b.erase(100000 + i);
    for (ChannelBlockId i = n; i-- > 0;)
        b.insert(i * 3, i * 3 + 1);

    EXPECT_EQ(a.activeEntries(), b.activeEntries());
    EXPECT_EQ(a.entriesSorted(), b.entriesSorted());
}

} // namespace
} // namespace dssd
