/** Unit tests for fNoC topologies and routing. */

#include <gtest/gtest.h>

#include "noc/topology.hh"

namespace dssd
{
namespace
{

void
checkRouteConnectivity(const Topology &t, unsigned src, unsigned dst)
{
    auto route = t.route(src, dst);
    unsigned at = src;
    for (unsigned link_id : route) {
        const NocLink &l = t.link(link_id);
        EXPECT_EQ(l.from, at) << t.name() << " " << src << "->" << dst;
        at = l.to;
    }
    EXPECT_EQ(at, dst);
}

TEST(Mesh1DTest, LinkCount)
{
    Mesh1D m(8);
    EXPECT_EQ(m.numNodes(), 8u);
    EXPECT_EQ(m.numLinks(), 14u); // 7 forward + 7 backward
    EXPECT_EQ(m.bisectionLinks(), 2u);
}

TEST(Mesh1DTest, RoutesAreMinimalAndConnected)
{
    Mesh1D m(8);
    for (unsigned s = 0; s < 8; ++s) {
        for (unsigned d = 0; d < 8; ++d) {
            auto r = m.route(s, d);
            EXPECT_EQ(r.size(),
                      static_cast<std::size_t>(
                          s > d ? s - d : d - s));
            if (s != d)
                checkRouteConnectivity(m, s, d);
        }
    }
}

TEST(Mesh1DTest, SelfRouteIsEmpty)
{
    Mesh1D m(4);
    EXPECT_TRUE(m.route(2, 2).empty());
}

TEST(RingTest, TakesShorterDirection)
{
    Ring r(8);
    EXPECT_EQ(r.route(0, 3).size(), 3u);
    EXPECT_EQ(r.route(0, 5).size(), 3u); // wraps the other way
    EXPECT_EQ(r.route(0, 4).size(), 4u);
    EXPECT_EQ(r.bisectionLinks(), 4u);
}

TEST(RingTest, RoutesConnected)
{
    Ring r(8);
    for (unsigned s = 0; s < 8; ++s)
        for (unsigned d = 0; d < 8; ++d)
            if (s != d)
                checkRouteConnectivity(r, s, d);
}

TEST(RingTest, DatelineLinksAreTheWrapLinks)
{
    Ring r(8);
    unsigned count = 0;
    for (unsigned l = 0; l < r.numLinks(); ++l) {
        if (r.datelineLink(l))
            ++count;
    }
    EXPECT_EQ(count, 2u);
    EXPECT_TRUE(r.datelineLink(7));  // cw wrap 7 -> 0
    EXPECT_TRUE(r.datelineLink(8));  // ccw wrap 0 -> 7
}

TEST(CrossbarTest, TwoPortRoute)
{
    Crossbar x(8);
    auto r = x.route(2, 5);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], 2u);      // node 2's output port
    EXPECT_EQ(r[1], 8u + 5u); // node 5's input port
    EXPECT_TRUE(x.simultaneousLinks());
    EXPECT_EQ(x.bisectionLinks(), 8u);
}

TEST(TopologyTest, AverageHopsOrdering)
{
    Mesh1D m(8);
    Ring r(8);
    Crossbar x(8);
    // mesh avg 3, ring avg ~2.29, crossbar "2" ports but simultaneous.
    EXPECT_NEAR(m.averageHops(), 3.0, 0.01);
    EXPECT_LT(r.averageHops(), m.averageHops());
    EXPECT_NEAR(x.averageHops(), 2.0, 0.01);
}

TEST(TopologyFactoryTest, KnownNames)
{
    EXPECT_EQ(makeTopology("mesh", 8)->name(), "mesh1d");
    EXPECT_EQ(makeTopology("ring", 8)->name(), "ring");
    EXPECT_EQ(makeTopology("crossbar", 8)->name(), "crossbar");
}

TEST(TopologyFactoryDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)makeTopology("torus", 8), "unknown topology");
}

} // namespace
} // namespace dssd
