/** Unit tests for the fNoC network model. */

#include <gtest/gtest.h>

#include <memory>

#include "noc/network.hh"

namespace dssd
{
namespace
{

NocParams
params()
{
    NocParams p;
    p.linkBandwidth = 1.0; // 1 byte/ns
    p.hopLatency = 10;
    p.bufferPackets = 4;
    p.headerBytes = 0; // keep arithmetic exact in tests
    return p;
}

TEST(NocTest, SingleHopLatency)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(4), params());
    Tick done = 0;
    net.send(0, 1, 100, tagGc, [&] { done = e.now(); });
    e.run();
    // serialization 100 + hop latency 10
    EXPECT_EQ(done, 110u);
    EXPECT_EQ(net.packetsDelivered(), 1u);
}

TEST(NocTest, MultiHopCutThroughLatency)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(4), params());
    Tick done = 0;
    net.send(0, 3, 100, tagGc, [&] { done = e.now(); });
    e.run();
    // Head pipelines: 3 hops x 10 + one serialization of 100.
    EXPECT_EQ(done, 130u);
}

TEST(NocTest, DisjointPathsRunInParallel)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(8), params());
    Tick d1 = 0, d2 = 0;
    net.send(0, 1, 1000, tagGc, [&] { d1 = e.now(); });
    net.send(4, 5, 1000, tagGc, [&] { d2 = e.now(); });
    e.run();
    EXPECT_EQ(d1, 1010u);
    EXPECT_EQ(d2, 1010u); // no shared link: same finish time
}

TEST(NocTest, SharedLinkSerializes)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(4), params());
    Tick d1 = 0, d2 = 0;
    net.send(0, 2, 1000, tagGc, [&] { d1 = e.now(); });
    net.send(1, 2, 1000, tagGc, [&] { d2 = e.now(); });
    e.run();
    // Both need link 1->2 and must serialize over it. The single-hop
    // packet (1->2) grabs the link first (the 0->2 head is still in
    // flight), so it lands at ~1010 and the other waits out a full
    // serialization: ~2010.
    Tick first = std::min(d1, d2);
    Tick second = std::max(d1, d2);
    EXPECT_EQ(first, 1010u);
    EXPECT_GE(second, first + 1000 - 20);
}

TEST(NocTest, HeaderBytesAddOverhead)
{
    Engine e;
    NocParams p = params();
    p.headerBytes = 32;
    NocNetwork net(e, std::make_unique<Mesh1D>(4), p);
    Tick done = 0;
    net.send(0, 1, 100, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 142u);
    EXPECT_EQ(net.bytesDelivered(), 132u);
}

TEST(NocTest, CrossbarOccupiesBothPortsSimultaneously)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Crossbar>(4), params());
    Tick done = 0;
    net.send(0, 3, 100, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 110u); // one serialization, one hop
}

TEST(NocTest, CrossbarNonBlockingAcrossDistinctPairs)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Crossbar>(4), params());
    Tick d1 = 0, d2 = 0;
    net.send(0, 1, 1000, tagGc, [&] { d1 = e.now(); });
    net.send(2, 3, 1000, tagGc, [&] { d2 = e.now(); });
    e.run();
    EXPECT_EQ(d1, d2);
}

TEST(NocTest, CrossbarOutputPortContention)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Crossbar>(4), params());
    Tick d1 = 0, d2 = 0;
    net.send(0, 3, 1000, tagGc, [&] { d1 = e.now(); });
    net.send(1, 3, 1000, tagGc, [&] { d2 = e.now(); });
    e.run();
    EXPECT_EQ(d1, 1010u);
    EXPECT_GE(d2, 2000u); // destination input port serializes
}

TEST(NocTest, RingDeliversAcrossTheDateline)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Ring>(8), params());
    Tick done = 0;
    net.send(6, 1, 100, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(net.packetsDelivered(), 1u);
}

TEST(NocTest, ManyPacketsAllDeliveredWithTinyBuffers)
{
    Engine e;
    NocParams p = params();
    p.bufferPackets = 1;
    NocNetwork net(e, std::make_unique<Ring>(8), p);
    unsigned delivered = 0;
    for (unsigned i = 0; i < 64; ++i) {
        net.send(i % 8, (i * 5 + 3) % 8, 512, tagGc,
                 [&] { ++delivered; });
    }
    e.run();
    EXPECT_EQ(delivered, 64u);
    EXPECT_EQ(net.packetsInFlight(), 0u);
}

TEST(NocTest, LatencyStatMatchesDeliveries)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(8), params());
    for (unsigned i = 0; i < 10; ++i)
        net.send(0, 7, 100, tagGc, [] {});
    e.run();
    EXPECT_EQ(net.latency().count(), 10u);
    EXPECT_GT(net.latency().mean(), 0.0);
}

TEST(NocTest, SetLinkBandwidthSpeedsUpTransfers)
{
    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(4), params());
    net.setLinkBandwidth(10.0);
    Tick done = 0;
    net.send(0, 1, 1000, tagGc, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 110u);
}

TEST(NocTest, BufferBackpressureDelaysInjection)
{
    Engine e;
    NocParams small = params();
    small.bufferPackets = 1;
    NocNetwork slow(e, std::make_unique<Mesh1D>(8), small);
    Tick last_small = 0;
    for (int i = 0; i < 16; ++i)
        slow.send(0, 7, 4096, tagGc, [&] { last_small = e.now(); });
    e.run();

    Engine e2;
    NocParams big = params();
    big.bufferPackets = 16;
    NocNetwork fast(e2, std::make_unique<Mesh1D>(8), big);
    Tick last_big = 0;
    for (int i = 0; i < 16; ++i)
        fast.send(0, 7, 4096, tagGc, [&] { last_big = e2.now(); });
    e2.run();

    EXPECT_LE(last_big, last_small);
}

} // namespace
} // namespace dssd
