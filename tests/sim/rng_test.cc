/** Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace dssd
{
namespace
{

TEST(RngTest, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniformInt(0, 1u << 30) == b.uniformInt(0, 1u << 30))
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(RngTest, GaussianMeanConverges)
{
    Rng r(5);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.gaussian(100.0, 15.0);
    EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, ChanceExtremes)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
} // namespace dssd
