/** Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hh"

namespace dssd
{
namespace
{

TEST(EngineTest, StartsAtTimeZero)
{
    Engine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_EQ(e.pendingEvents(), 0u);
}

TEST(EngineTest, ScheduleAdvancesClock)
{
    Engine e;
    Tick seen = 0;
    e.schedule(100, [&] { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, EventsFireInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(300, [&] { order.push_back(3); });
    e.schedule(100, [&] { order.push_back(1); });
    e.schedule(200, [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, SameTickEventsFireFifo)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        e.schedule(50, [&, i] { order.push_back(i); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, EventsMayScheduleMoreEvents)
{
    Engine e;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            e.schedule(10, chain);
    };
    e.schedule(10, chain);
    e.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, RunUntilStopsAtBoundary)
{
    Engine e;
    int fired = 0;
    e.schedule(100, [&] { ++fired; });
    e.schedule(200, [&] { ++fired; });
    e.schedule(300, [&] { ++fired; });
    e.runUntil(200);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(e.pendingEvents(), 1u);
    e.run();
    EXPECT_EQ(fired, 3);
}

TEST(EngineTest, StepReturnsFalseWhenEmpty)
{
    Engine e;
    EXPECT_FALSE(e.step());
    e.schedule(1, [] {});
    EXPECT_TRUE(e.step());
    EXPECT_FALSE(e.step());
}

TEST(EngineTest, ZeroDelayFiresAtCurrentTick)
{
    Engine e;
    Tick when = 1;
    e.schedule(40, [&] {
        e.schedule(0, [&] { when = e.now(); });
    });
    e.run();
    EXPECT_EQ(when, 40u);
}

TEST(EngineTest, ExecutedEventsCounts)
{
    Engine e;
    for (int i = 0; i < 7; ++i)
        e.schedule(static_cast<Tick>(i), [] {});
    e.run();
    EXPECT_EQ(e.executedEvents(), 7u);
}

TEST(EngineDeathTest, SchedulingIntoPastPanics)
{
    Engine e;
    e.schedule(100, [&] {
        EXPECT_DEATH(e.scheduleAbs(50, [] {}), "past");
    });
    e.run();
}

} // namespace
} // namespace dssd
