/** Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hh"

namespace dssd
{
namespace
{

TEST(EngineTest, StartsAtTimeZero)
{
    Engine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_EQ(e.pendingEvents(), 0u);
}

TEST(EngineTest, ScheduleAdvancesClock)
{
    Engine e;
    Tick seen = 0;
    e.schedule(100, [&] { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, EventsFireInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(300, [&] { order.push_back(3); });
    e.schedule(100, [&] { order.push_back(1); });
    e.schedule(200, [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, SameTickEventsFireFifo)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        e.schedule(50, [&, i] { order.push_back(i); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, EventsMayScheduleMoreEvents)
{
    Engine e;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            e.schedule(10, chain);
    };
    e.schedule(10, chain);
    e.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, RunUntilStopsAtBoundary)
{
    Engine e;
    int fired = 0;
    e.schedule(100, [&] { ++fired; });
    e.schedule(200, [&] { ++fired; });
    e.schedule(300, [&] { ++fired; });
    e.runUntil(200);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(e.pendingEvents(), 1u);
    e.run();
    EXPECT_EQ(fired, 3);
}

TEST(EngineTest, StepReturnsFalseWhenEmpty)
{
    Engine e;
    EXPECT_FALSE(e.step());
    e.schedule(1, [] {});
    EXPECT_TRUE(e.step());
    EXPECT_FALSE(e.step());
}

TEST(EngineTest, ZeroDelayFiresAtCurrentTick)
{
    Engine e;
    Tick when = 1;
    e.schedule(40, [&] {
        e.schedule(0, [&] { when = e.now(); });
    });
    e.run();
    EXPECT_EQ(when, 40u);
}

TEST(EngineTest, ExecutedEventsCounts)
{
    Engine e;
    for (int i = 0; i < 7; ++i)
        e.schedule(static_cast<Tick>(i), [] {});
    e.run();
    EXPECT_EQ(e.executedEvents(), 7u);
}

TEST(EngineTest, EventPoolIsReusedAcrossWaves)
{
    // Repeated schedule/run waves must recycle nodes through the free
    // list instead of growing the pool.
    Engine e;
    int sink = 0;
    for (int wave = 0; wave < 50; ++wave) {
        for (int i = 0; i < 100; ++i)
            e.schedule(static_cast<Tick>(i), [&] { ++sink; });
        e.run();
    }
    EXPECT_EQ(sink, 5000);
    EXPECT_EQ(e.poolCapacity(), 512u); // one chunk covers 100 in flight
}

TEST(EngineTest, PoolGrowsInChunksUnderLoad)
{
    Engine e;
    for (int i = 0; i < 600; ++i)
        e.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(e.pendingEvents(), 600u);
    EXPECT_EQ(e.poolCapacity(), 1024u); // two chunks
    e.run();
    EXPECT_EQ(e.pendingEvents(), 0u);
    EXPECT_EQ(e.poolCapacity(), 1024u); // retained for reuse
}

TEST(EngineTest, OrderingAcrossBucketWindowBoundaries)
{
    // Delays straddle the near-future calendar many times over, so
    // events migrate far-heap -> buckets across several window
    // rotations and must still fire in (when, seq) order.
    Engine e;
    std::vector<Tick> order;
    const Tick delays[] = {70000, 3, 8191, 8192, 8193,
                           0,     1, 65536, 24576, 16384};
    for (Tick d : delays)
        e.schedule(d, [&, d] { order.push_back(d); });
    e.run();
    std::vector<Tick> sorted(order);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(order, sorted);
    EXPECT_EQ(order.size(), std::size(delays));
}

TEST(EngineTest, SameTickFifoAcrossRotation)
{
    // Same-tick events split between the far heap (scheduled while the
    // tick was outside the window) and direct bucket inserts must
    // still fire in seq order.
    Engine e;
    std::vector<int> order;
    const Tick target = 100000; // far beyond the initial window
    e.schedule(target, [&] { order.push_back(0); });
    e.schedule(target, [&] { order.push_back(1); });
    e.schedule(50, [&] {
        // Still outside the window relative to now=50.
        e.scheduleAbs(target, [&] { order.push_back(2); });
    });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(e.now(), target);
}

TEST(EngineTest, ScheduleEarlierThanRotatedWindow)
{
    // runUntil can leave the calendar rotated ahead of now; scheduling
    // between now and the window must still fire first (regression
    // test for window-rebasing).
    Engine e;
    std::vector<Tick> order;
    e.schedule(10, [&] { order.push_back(10); });
    e.schedule(9000, [&] { order.push_back(9000); });
    e.schedule(10000000, [&] { order.push_back(10000000); });
    // Executes the tick-10 event, then peeks tick 9000 — rotating the
    // calendar window past now in the process.
    e.runUntil(100);
    EXPECT_EQ(e.now(), 10u);
    e.schedule(40, [&] { order.push_back(50); }); // abs 50 < 9000
    e.run();
    EXPECT_EQ(order, (std::vector<Tick>{10, 50, 9000, 10000000}));
}

TEST(EngineTest, ClockIsMonotonicOverSparseFarEvents)
{
    // Events spaced far beyond any window exercise the direct
    // heap-pop path; the clock must never move backwards.
    Engine e;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 20; i >= 1; --i) {
        e.schedule(static_cast<Tick>(i) * 1000000, [&] {
            monotonic = monotonic && e.now() >= last;
            last = e.now();
        });
    }
    e.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(last, 20000000u);
}

TEST(EngineTest, DeterministicOrderMatchesSeqSort)
{
    // Pseudo-random schedule pattern: execution order must equal a
    // stable sort by (when, seq) — the contract the simulator's
    // determinism rests on.
    Engine e;
    std::vector<std::pair<Tick, int>> fired;
    std::uint64_t x = 12345;
    int seq = 0;
    for (int i = 0; i < 500; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Tick when = static_cast<Tick>(x >> 40) % 20000;
        int id = seq++;
        e.schedule(when, [&fired, &e, id] {
            fired.emplace_back(e.now(), id);
        });
    }
    e.run();
    std::vector<std::pair<Tick, int>> expect(fired);
    std::stable_sort(expect.begin(), expect.end());
    EXPECT_EQ(fired, expect);
}

TEST(EngineTest, DestructorReleasesUnfiredEvents)
{
    // Leak check (run under ASan in CI): pending callables owning heap
    // state must be destroyed with the engine.
    auto token = std::make_shared<int>(7);
    {
        Engine e;
        e.schedule(5, [token] { (void)*token; });
        e.schedule(500000, [token] { (void)*token; });
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EngineDeathTest, SchedulingIntoPastPanics)
{
    Engine e;
    e.schedule(100, [&] {
        EXPECT_DEATH(e.scheduleAbs(50, [] {}), "past");
    });
    e.run();
}

} // namespace
} // namespace dssd
