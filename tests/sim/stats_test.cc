/** Unit tests for statistics collection. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/stats.hh"

namespace dssd
{
namespace
{

TEST(SampleStatTest, MeanMinMax)
{
    SampleStat s("lat");
    s.sample(10);
    s.sample(20);
    s.sample(30);
    EXPECT_DOUBLE_EQ(s.mean(), 20.0);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 30.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(SampleStatTest, EmptyStatIsZero)
{
    // Every accessor must be safe and deterministically 0.0 on an
    // empty distribution (no reads of the backing storage).
    SampleStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(SampleStatTest, EmptyAfterResetIsZero)
{
    SampleStat s;
    s.sample(42.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SampleStatTest, StreamingMinMaxTracksNegatives)
{
    SampleStat s;
    s.sample(-5);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), -5.0);
    s.sample(-20);
    s.sample(3);
    EXPECT_DOUBLE_EQ(s.min(), -20.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    // min/max survive reset + refill.
    s.reset();
    s.sample(1);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

TEST(SampleStatTest, InterleavedPercentileQueriesStayExact)
{
    // The selection scratch persists across queries and must be
    // refreshed when samples arrive between them.
    SampleStat s;
    for (int i = 1; i <= 1000; ++i)
        s.sample(1001 - i);
    EXPECT_DOUBLE_EQ(s.percentile(99), 990.0);
    EXPECT_DOUBLE_EQ(s.percentile(1), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 500.0);
    // 99.9/100*1000 rounds up past 999 in binary floating point, so
    // nearest-rank lands on the maximum (same as the seed behavior).
    EXPECT_DOUBLE_EQ(s.percentile(99.9), 1000.0);
    for (int i = 0; i < 10; ++i)
        s.sample(2000 + i);
    EXPECT_DOUBLE_EQ(s.percentile(100), 2009.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 505.0);
}

TEST(SampleStatTest, ExactPercentilesNearestRank)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.sample(i);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
}

TEST(SampleStatTest, PercentileCacheInvalidatedBySample)
{
    SampleStat s;
    s.sample(5);
    EXPECT_DOUBLE_EQ(s.percentile(99), 5.0);
    s.sample(50);
    EXPECT_DOUBLE_EQ(s.percentile(99), 50.0);
}

TEST(SampleStatTest, TailDominatedByOutlier)
{
    SampleStat s;
    for (int i = 0; i < 99; ++i)
        s.sample(1.0);
    s.sample(1000.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.5), 1000.0);
}

TEST(SampleStatTest, StddevOfConstantIsZero)
{
    SampleStat s;
    s.sample(7);
    s.sample(7);
    s.sample(7);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStatTest, ResetClearsEverything)
{
    SampleStat s;
    s.sample(1);
    s.sample(2);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(SampleStatTest, SingleSampleIsEveryPercentile)
{
    SampleStat s;
    s.sample(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(SampleStatTest, PercentileZeroIsMinimum)
{
    // p=0 gives rank 0; nearest-rank clamps to the first order
    // statistic rather than reading before the array.
    SampleStat s;
    s.sample(30);
    s.sample(10);
    s.sample(20);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
}

TEST(SampleStatTest, PercentileOutOfRangeIsFatal)
{
    SampleStat s;
    s.sample(1.0);
    EXPECT_DEATH((void)s.percentile(-0.1), "out of range");
    EXPECT_DEATH((void)s.percentile(100.1), "out of range");
}

TEST(SampleStatTest, NearestRankMatchesSortOracle)
{
    // Selection on the persistent scratch must agree with the naive
    // full-sort nearest-rank definition at every integer percentile.
    SampleStat s;
    std::vector<double> vals;
    std::uint64_t x = 12345;
    for (int i = 0; i < 257; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        double v = static_cast<double>(x >> 33);
        vals.push_back(v);
        s.sample(v);
    }
    std::vector<double> sorted = vals;
    std::sort(sorted.begin(), sorted.end());
    for (int p = 0; p <= 100; ++p) {
        std::size_t rank = static_cast<std::size_t>(std::ceil(
            p / 100.0 * static_cast<double>(sorted.size())));
        if (rank == 0)
            rank = 1;
        EXPECT_DOUBLE_EQ(s.percentile(p), sorted[rank - 1])
            << "percentile " << p;
    }
}

TEST(RateSeriesTest, WindowsAccumulate)
{
    RateSeries rs(1000);
    rs.add(10, 4096);
    rs.add(900, 4096);
    rs.add(1100, 4096);
    ASSERT_EQ(rs.windows().size(), 2u);
    EXPECT_DOUBLE_EQ(rs.windows()[0], 8192.0);
    EXPECT_DOUBLE_EQ(rs.windows()[1], 4096.0);
    EXPECT_DOUBLE_EQ(rs.total(), 3 * 4096.0);
}

TEST(RateSeriesTest, BoundaryTickLandsInNextWindow)
{
    // Windows are [k*w, (k+1)*w): a weight at exactly the boundary
    // tick belongs to the following window, and tick 0 to window 0.
    RateSeries rs(1000);
    rs.add(0, 1);
    rs.add(999, 2);
    rs.add(1000, 4);
    rs.add(1999, 8);
    rs.add(2000, 16);
    ASSERT_EQ(rs.windows().size(), 3u);
    EXPECT_DOUBLE_EQ(rs.windows()[0], 3.0);
    EXPECT_DOUBLE_EQ(rs.windows()[1], 12.0);
    EXPECT_DOUBLE_EQ(rs.windows()[2], 16.0);
}

TEST(RateSeriesTest, SparseAdditionsZeroFillSkippedWindows)
{
    RateSeries rs(1000);
    rs.add(100, 5);
    rs.add(4500, 7); // windows 1-3 stay zero
    ASSERT_EQ(rs.windows().size(), 5u);
    EXPECT_DOUBLE_EQ(rs.windows()[0], 5.0);
    EXPECT_DOUBLE_EQ(rs.windows()[1], 0.0);
    EXPECT_DOUBLE_EQ(rs.windows()[2], 0.0);
    EXPECT_DOUBLE_EQ(rs.windows()[3], 0.0);
    EXPECT_DOUBLE_EQ(rs.windows()[4], 7.0);
    EXPECT_DOUBLE_EQ(rs.total(), 12.0);
}

TEST(RateSeriesTest, RatePerSecond)
{
    RateSeries rs(tickMs); // 1 ms windows
    rs.add(0, 1e6);        // 1 MB in the first millisecond
    auto rate = rs.ratePerSec();
    ASSERT_EQ(rate.size(), 1u);
    EXPECT_DOUBLE_EQ(rate[0], 1e9); // = 1 GB/s
}

TEST(RateSeriesTest, AverageRateOverRange)
{
    RateSeries rs(tickMs);
    rs.add(0, 1000);
    rs.add(tickMs, 3000);
    // 4000 units over 2 ms -> 2,000,000 units/s.
    EXPECT_DOUBLE_EQ(rs.averageRate(0, 2 * tickMs), 2e6);
}

TEST(FormatTest, Bandwidth)
{
    EXPECT_EQ(formatBandwidth(2.5e9), "2.50 GB/s");
    EXPECT_EQ(formatBandwidth(51.2e6), "51.20 MB/s");
}

TEST(FormatTest, Latency)
{
    EXPECT_EQ(formatLatency(5000.0), "5.00 us");
    EXPECT_EQ(formatLatency(1.5e6), "1.50 ms");
    EXPECT_EQ(formatLatency(42.0), "42 ns");
}

} // namespace
} // namespace dssd
