/** Unit tests for statistics collection. */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace dssd
{
namespace
{

TEST(SampleStatTest, MeanMinMax)
{
    SampleStat s("lat");
    s.sample(10);
    s.sample(20);
    s.sample(30);
    EXPECT_DOUBLE_EQ(s.mean(), 20.0);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 30.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(SampleStatTest, EmptyStatIsZero)
{
    // Every accessor must be safe and deterministically 0.0 on an
    // empty distribution (no reads of the backing storage).
    SampleStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(SampleStatTest, EmptyAfterResetIsZero)
{
    SampleStat s;
    s.sample(42.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SampleStatTest, StreamingMinMaxTracksNegatives)
{
    SampleStat s;
    s.sample(-5);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), -5.0);
    s.sample(-20);
    s.sample(3);
    EXPECT_DOUBLE_EQ(s.min(), -20.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    // min/max survive reset + refill.
    s.reset();
    s.sample(1);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

TEST(SampleStatTest, InterleavedPercentileQueriesStayExact)
{
    // The selection scratch persists across queries and must be
    // refreshed when samples arrive between them.
    SampleStat s;
    for (int i = 1; i <= 1000; ++i)
        s.sample(1001 - i);
    EXPECT_DOUBLE_EQ(s.percentile(99), 990.0);
    EXPECT_DOUBLE_EQ(s.percentile(1), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 500.0);
    // 99.9/100*1000 rounds up past 999 in binary floating point, so
    // nearest-rank lands on the maximum (same as the seed behavior).
    EXPECT_DOUBLE_EQ(s.percentile(99.9), 1000.0);
    for (int i = 0; i < 10; ++i)
        s.sample(2000 + i);
    EXPECT_DOUBLE_EQ(s.percentile(100), 2009.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 505.0);
}

TEST(SampleStatTest, ExactPercentilesNearestRank)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.sample(i);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
}

TEST(SampleStatTest, PercentileCacheInvalidatedBySample)
{
    SampleStat s;
    s.sample(5);
    EXPECT_DOUBLE_EQ(s.percentile(99), 5.0);
    s.sample(50);
    EXPECT_DOUBLE_EQ(s.percentile(99), 50.0);
}

TEST(SampleStatTest, TailDominatedByOutlier)
{
    SampleStat s;
    for (int i = 0; i < 99; ++i)
        s.sample(1.0);
    s.sample(1000.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.5), 1000.0);
}

TEST(SampleStatTest, StddevOfConstantIsZero)
{
    SampleStat s;
    s.sample(7);
    s.sample(7);
    s.sample(7);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStatTest, ResetClearsEverything)
{
    SampleStat s;
    s.sample(1);
    s.sample(2);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RateSeriesTest, WindowsAccumulate)
{
    RateSeries rs(1000);
    rs.add(10, 4096);
    rs.add(900, 4096);
    rs.add(1100, 4096);
    ASSERT_EQ(rs.windows().size(), 2u);
    EXPECT_DOUBLE_EQ(rs.windows()[0], 8192.0);
    EXPECT_DOUBLE_EQ(rs.windows()[1], 4096.0);
    EXPECT_DOUBLE_EQ(rs.total(), 3 * 4096.0);
}

TEST(RateSeriesTest, RatePerSecond)
{
    RateSeries rs(tickMs); // 1 ms windows
    rs.add(0, 1e6);        // 1 MB in the first millisecond
    auto rate = rs.ratePerSec();
    ASSERT_EQ(rate.size(), 1u);
    EXPECT_DOUBLE_EQ(rate[0], 1e9); // = 1 GB/s
}

TEST(RateSeriesTest, AverageRateOverRange)
{
    RateSeries rs(tickMs);
    rs.add(0, 1000);
    rs.add(tickMs, 3000);
    // 4000 units over 2 ms -> 2,000,000 units/s.
    EXPECT_DOUBLE_EQ(rs.averageRate(0, 2 * tickMs), 2e6);
}

TEST(FormatTest, Bandwidth)
{
    EXPECT_EQ(formatBandwidth(2.5e9), "2.50 GB/s");
    EXPECT_EQ(formatBandwidth(51.2e6), "51.20 MB/s");
}

TEST(FormatTest, Latency)
{
    EXPECT_EQ(formatLatency(5000.0), "5.00 us");
    EXPECT_EQ(formatLatency(1.5e6), "1.50 ms");
    EXPECT_EQ(formatLatency(42.0), "42 ns");
}

} // namespace
} // namespace dssd
