/** Unit tests for the hierarchical statistics registry. */

#include <gtest/gtest.h>

#include "sim/registry.hh"

namespace dssd
{
namespace
{

TEST(StatRegistryTest, CounterValueRoundTrips)
{
    Counter c("reads");
    c.inc(41);
    StatRegistry reg;
    reg.addCounter("ssd0.ch0.reads", &c);
    EXPECT_TRUE(reg.has("ssd0.ch0.reads"));
    EXPECT_DOUBLE_EQ(reg.value("ssd0.ch0.reads"), 41.0);
    c.inc(); // borrowed: later increments are visible
    EXPECT_DOUBLE_EQ(reg.value("ssd0.ch0.reads"), 42.0);
}

TEST(StatRegistryTest, SampleReportsCountAsValue)
{
    SampleStat s("lat");
    s.sample(10);
    s.sample(20);
    StatRegistry reg;
    reg.addSample("host.latency", &s);
    EXPECT_DOUBLE_EQ(reg.value("host.latency"), 2.0);
}

TEST(StatRegistryTest, RateReportsTotalAsValue)
{
    RateSeries r(tickMs);
    r.add(0, 4096);
    r.add(tickMs, 4096);
    StatRegistry reg;
    reg.addRate("host.io_bytes", &r);
    EXPECT_DOUBLE_EQ(reg.value("host.io_bytes"), 8192.0);
}

TEST(StatRegistryTest, ScalarGaugeSampledAtDumpTime)
{
    int held = 3;
    StatRegistry reg;
    reg.addScalar("ssd0.dbuf.held",
                  [&held] { return static_cast<double>(held); });
    EXPECT_DOUBLE_EQ(reg.value("ssd0.dbuf.held"), 3.0);
    held = 7; // gauges are live, not snapshots
    EXPECT_DOUBLE_EQ(reg.value("ssd0.dbuf.held"), 7.0);
}

TEST(StatRegistryTest, PathsComeBackSorted)
{
    Counter a, b, c;
    StatRegistry reg;
    reg.addCounter("z.last", &a);
    reg.addCounter("a.first", &b);
    reg.addCounter("m.middle", &c);
    auto paths = reg.paths();
    ASSERT_EQ(paths.size(), 3u);
    EXPECT_EQ(paths[0], "a.first");
    EXPECT_EQ(paths[1], "m.middle");
    EXPECT_EQ(paths[2], "z.last");
    EXPECT_EQ(reg.size(), 3u);
}

TEST(StatRegistryTest, JsonContainsEveryKindOfEntry)
{
    Counter c;
    c.inc(5);
    SampleStat s;
    s.sample(1.5);
    RateSeries r(1000);
    r.add(0, 10);
    StatRegistry reg;
    reg.addCounter("x.counter", &c);
    reg.addSample("x.sample", &s);
    reg.addRate("x.rate", &r);
    reg.addScalar("x.gauge", [] { return 2.5; });
    std::string doc = reg.json();
    EXPECT_NE(doc.find("\"x.counter\": 5"), std::string::npos);
    EXPECT_NE(doc.find("\"x.sample\": {\"count\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"p99\""), std::string::npos);
    EXPECT_NE(doc.find("\"x.rate\": {\"total\": 10"), std::string::npos);
    EXPECT_NE(doc.find("\"x.gauge\": 2.5"), std::string::npos);
    // The document is brace-balanced (cheap well-formedness check;
    // the CI Python checker parses the real dumps).
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
}

TEST(StatRegistryDeathTest, DuplicatePathIsFatal)
{
    Counter c;
    StatRegistry reg;
    reg.addCounter("dup.path", &c);
    EXPECT_DEATH(reg.addCounter("dup.path", &c), "duplicate stat path");
}

TEST(StatRegistryDeathTest, EmptyPathIsFatal)
{
    Counter c;
    StatRegistry reg;
    EXPECT_DEATH(reg.addCounter("", &c), "empty stat path");
}

TEST(StatRegistryDeathTest, MissingPathValueIsFatal)
{
    StatRegistry reg;
    EXPECT_DEATH((void)reg.value("no.such.stat"), "no stat registered");
}

} // namespace
} // namespace dssd
