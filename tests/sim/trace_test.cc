/** Unit tests for the Chrome trace_event emitter. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/engine.hh"
#include "sim/trace.hh"

namespace dssd
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++n;
    return n;
}

class TracerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _path = std::string("/tmp/dssd_trace_test_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".json";
    }
    void TearDown() override { std::remove(_path.c_str()); }

    std::string _path;
};

TEST_F(TracerTest, DocumentHasHeaderAndFooter)
{
    {
        Tracer tr(_path);
        int pid = tr.process("bus");
        int tid = tr.lane(pid, "system-bus");
        tr.slice(pid, tid, "io", "bus", 1000, 2000);
        tr.finish();
    }
    std::string doc = slurp(_path);
    EXPECT_EQ(doc.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(doc.find("\"traceEvents\":"), std::string::npos);
    ASSERT_GE(doc.size(), 4u);
    EXPECT_EQ(doc.substr(doc.size() - 4), "\n]}\n");
    // Braces and brackets balance: the document is structurally sound
    // (the CI Python checker does a full parse of real traces).
    EXPECT_EQ(countOccurrences(doc, "{"), countOccurrences(doc, "}"));
    EXPECT_EQ(countOccurrences(doc, "["), countOccurrences(doc, "]"));
}

TEST_F(TracerTest, ProcessAndLaneIdsAreDeduplicated)
{
    Tracer tr(_path);
    int p1 = tr.process("nand");
    int p2 = tr.process("nand");
    int p3 = tr.process("bus");
    EXPECT_EQ(p1, p2);
    EXPECT_NE(p1, p3);
    int l1 = tr.lane(p1, "ch0.d0");
    int l2 = tr.lane(p1, "ch0.d0");
    int l3 = tr.lane(p1, "ch0.d1");
    int l4 = tr.lane(p3, "ch0.d0"); // same name, other process
    EXPECT_EQ(l1, l2);
    EXPECT_NE(l1, l3);
    tr.finish();
    std::string doc = slurp(_path);
    // Each unique row emits exactly one metadata record.
    EXPECT_EQ(countOccurrences(doc, "\"process_name\""), 2u);
    EXPECT_EQ(countOccurrences(doc, "\"thread_name\""), 3u);
    (void)l4;
}

TEST_F(TracerTest, SliceCarriesMicrosecondTimes)
{
    Tracer tr(_path);
    int pid = tr.process("nand");
    int tid = tr.lane(pid, "ch0.d0");
    // 1500 ns -> 1.5 us, duration 2500 ns -> 2.5 us.
    tr.slice(pid, tid, "read", "die", 1500, 4000);
    tr.finish();
    std::string doc = slurp(_path);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"read\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":1.500"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":2.500"), std::string::npos);
}

TEST_F(TracerTest, AsyncSpansMatchByIdAndCounterSteps)
{
    Tracer tr(_path);
    int pid = tr.process("copyback");
    tr.asyncBegin(pid, "cbstage", "R", 0xabc, 100);
    tr.asyncEnd(pid, "cbstage", "R", 0xabc, 900);
    tr.counter(pid, "dbuf", 500, 3.0);
    tr.finish();
    std::string doc = slurp(_path);
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"b\""), 1u);
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"e\""), 1u);
    EXPECT_EQ(countOccurrences(doc, "\"id\":\"0xabc\""), 2u);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(TracerTest, EventCountTracksEmissions)
{
    Tracer tr(_path);
    EXPECT_EQ(tr.events(), 0u);
    int pid = tr.process("gc"); // 1 metadata event
    int tid = tr.lane(pid, "unit0"); // 1 metadata event
    tr.slice(pid, tid, "round", "gc", 0, 10);
    tr.counter(pid, "active", 0, 1.0);
    EXPECT_EQ(tr.events(), 4u);
    tr.finish();
    EXPECT_EQ(tr.events(), 4u);
}

TEST_F(TracerTest, FinishIsIdempotentAndDestructorFinishes)
{
    {
        Tracer tr(_path);
        tr.process("host");
        tr.finish();
        tr.finish(); // second call is a no-op
    } // destructor runs after finish(): still safe
    std::string doc = slurp(_path);
    EXPECT_EQ(countOccurrences(doc, "]}"), 1u);
}

TEST_F(TracerTest, EngineTracerHookIsOptional)
{
    Engine e;
    EXPECT_EQ(e.tracer(), nullptr);
    Tracer tr(_path);
    e.setTracer(&tr);
    EXPECT_EQ(e.tracer(), &tr);
    e.setTracer(nullptr);
    EXPECT_EQ(e.tracer(), nullptr);
}

TEST_F(TracerTest, BufferedTracerRecordsWithoutAFile)
{
    Tracer buf;
    EXPECT_TRUE(buf.buffered());
    EXPECT_EQ(buf.pending(), 0u);
    int pid = buf.process("nand");
    int tid = buf.lane(pid, "ch0.d0");
    buf.slice(pid, tid, "read", "die", 100, 200);
    buf.asyncBegin(pid, "io", "req", 1, 100);
    buf.asyncEnd(pid, "io", "req", 1, 300);
    buf.counter(pid, "depth", 150, 2.0);
    EXPECT_EQ(buf.pending(), 4u);
    EXPECT_EQ(buf.events(), 4u);
    buf.finish(); // no-op in buffered mode; records stay drainable
    EXPECT_EQ(buf.pending(), 4u);
}

TEST_F(TracerTest, DrainedBufferMatchesDirectEmissionByteForByte)
{
    std::string direct_path = _path + ".direct";
    auto emitAll = [](Tracer &tr) {
        int pid = tr.process("nand");
        int tid = tr.lane(pid, "ch0.d0");
        tr.slice(pid, tid, "read", "die", 1500, 4000);
        tr.asyncBegin(pid, "io", "req", 0xabc, 100);
        tr.asyncEnd(pid, "io", "req", 0xabc, 900);
        tr.counter(pid, "depth", 500, 3.0);
    };
    {
        Tracer tr(direct_path);
        emitAll(tr);
        tr.finish();
    }
    {
        Tracer dst(_path);
        Tracer buf;
        emitAll(buf);
        buf.drainInto(dst);
        EXPECT_EQ(buf.pending(), 0u);
        dst.finish();
    }
    EXPECT_EQ(slurp(_path), slurp(direct_path));
    std::remove(direct_path.c_str());
}

TEST_F(TracerTest, DrainMergesTracksByName)
{
    Tracer dst(_path);
    int host_pid = dst.process("nand");
    Tracer buf;
    // The buffer names the same process family: the drain must land
    // on the destination's existing row, not allocate a second one.
    int pid = buf.process("nand");
    buf.slice(pid, buf.lane(pid, "ch0.d0"), "read", "die", 0, 10);
    buf.drainInto(dst);
    dst.finish();
    std::string doc = slurp(_path);
    EXPECT_EQ(countOccurrences(doc, "\"process_name\""), 1u);
    (void)host_pid;
}

TEST_F(TracerTest, RepeatedDrainsAppendWithoutDuplicateMetadata)
{
    Tracer dst(_path);
    Tracer buf;
    int pid = buf.process("gc");
    buf.counter(pid, "active", 0, 1.0);
    buf.drainInto(dst);
    buf.counter(pid, "active", 10, 0.0);
    buf.drainInto(dst);
    dst.finish();
    std::string doc = slurp(_path);
    EXPECT_EQ(countOccurrences(doc, "\"process_name\""), 1u);
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"C\""), 2u);
}

TEST(TracerDeathTest, UnwritablePathIsFatal)
{
    EXPECT_DEATH(Tracer("/nonexistent-dir/trace.json"), "cannot open");
}

TEST(TracerDeathTest, DrainFromAFileTracerIsFatal)
{
    Tracer a("/tmp/dssd_trace_test_drain_a.json");
    Tracer b("/tmp/dssd_trace_test_drain_b.json");
    EXPECT_DEATH(a.drainInto(b), "file-backed");
    std::remove("/tmp/dssd_trace_test_drain_a.json");
    std::remove("/tmp/dssd_trace_test_drain_b.json");
}

} // namespace
} // namespace dssd
