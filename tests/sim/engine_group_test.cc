/**
 * Unit tests for the conservatively-synchronized EngineGroup: the
 * epoch/window protocol, lookahead-boundary behaviour, the
 * deterministic shard->host completion merge, worker-count
 * independence, and the lookahead guard rails.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hh"
#include "sim/engine_group.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{
namespace
{

constexpr Tick kLookahead = 1000;

TEST(EngineGroupTest, ConstructionAndAccessors)
{
    Engine host;
    EngineGroup g(host, 4, kLookahead, 1);
    EXPECT_EQ(g.shardCount(), 4u);
    EXPECT_EQ(g.lookahead(), kLookahead);
    EXPECT_EQ(g.workerCount(), 0u); // 1 thread = serial on the caller
    EXPECT_EQ(g.epochsRun(), 0u);
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(g.shardEngine(s).now(), 0u);
}

TEST(EngineGroupTest, ThreadCountClampsToShards)
{
    Engine host;
    EngineGroup g(host, 2, kLookahead, 16);
    EXPECT_EQ(g.workerCount(), 2u);
}

TEST(EngineGroupTest, MessageRoundTrip)
{
    Engine host;
    EngineGroup g(host, 2, kLookahead, 1);

    Tick shard_saw = 0, host_saw = 0;
    g.postToShard(1, kLookahead, [&g, &shard_saw, &host_saw] {
        shard_saw = g.shardEngine(1).now();
        g.postToHost(1, [&g, &host_saw] { host_saw = g.hostEngine().now(); });
    });
    g.run();

    EXPECT_EQ(shard_saw, kLookahead);
    // The completion is stamped with the shard clock at emission and
    // runs on the host at that same simulated tick.
    EXPECT_EQ(host_saw, kLookahead);
    EXPECT_EQ(g.messagesToShards(), 1u);
    EXPECT_EQ(g.messagesToHost(), 1u);
}

TEST(EngineGroupTest, PostBelowLookaheadPanics)
{
    Engine host;
    EngineGroup g(host, 1, kLookahead, 1);
    EXPECT_DEATH(g.postToShard(0, kLookahead - 1, [] {}),
                 "below the lookahead");
}

TEST(EngineGroupTest, ZeroLookaheadIsFatal)
{
    Engine host;
    EXPECT_DEATH(EngineGroup(host, 1, 0, 1), "positive lookahead");
}

TEST(EngineGroupTest, ZeroShardsIsFatal)
{
    Engine host;
    EXPECT_DEATH(EngineGroup(host, 0, kLookahead, 1),
                 "at least one shard");
}

// An event landing exactly on a window boundary (tick k*L) must run in
// epoch k, never epoch k-1: the epoch over [0, L-1] must not execute
// an event at tick L.
TEST(EngineGroupTest, EventExactlyAtWindowEdge)
{
    Engine host;
    EngineGroup g(host, 1, kLookahead, 1);

    std::vector<std::pair<std::uint64_t, Tick>> runs; // (epoch, when)
    g.shardEngine(0).schedule(kLookahead - 1, [&g, &runs] {
        runs.emplace_back(g.epochsRun(), g.shardEngine(0).now());
    });
    g.shardEngine(0).schedule(kLookahead, [&g, &runs] {
        runs.emplace_back(g.epochsRun(), g.shardEngine(0).now());
    });
    g.run();

    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].first, 0u); // epoch 0 covers [0, L-1]
    EXPECT_EQ(runs[0].second, kLookahead - 1);
    EXPECT_EQ(runs[1].first, 1u); // epoch 1 covers [L, 2L-1]
    EXPECT_EQ(runs[1].second, kLookahead);
    EXPECT_EQ(g.epochsRun(), 2u);
}

// runUntil shares Engine::runUntil's contract: an event at exactly
// `until` executes, one tick later does not.
TEST(EngineGroupTest, RunUntilIsInclusive)
{
    Engine host;
    EngineGroup g(host, 1, kLookahead, 1);

    bool at = false, after = false;
    Tick until = 3 * kLookahead + kLookahead / 2;
    g.shardEngine(0).schedule(until, [&at] { at = true; });
    g.shardEngine(0).schedule(until + 1, [&after] { after = true; });
    g.runUntil(until);
    EXPECT_TRUE(at);
    EXPECT_FALSE(after);
    g.run();
    EXPECT_TRUE(after);
}

// Completions from different shards at the same host tick must merge
// in shard-index order, regardless of which shard emitted first in
// wall-clock terms.
TEST(EngineGroupTest, TieBreakMergesByShardIndex)
{
    Engine host;
    EngineGroup g(host, 4, kLookahead, 1);

    std::vector<unsigned> order;
    // Post in reverse shard order so arrival order != shard order.
    for (unsigned s = 4; s-- > 0;) {
        g.postToShard(s, kLookahead, [&g, &order, s] {
            g.postToHost(s, [&order, s] { order.push_back(s); });
        });
    }
    g.run();
    ASSERT_EQ(order.size(), 4u);
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(order[s], s);
}

// Per-shard emission order is preserved through the merge even when
// interleaved with another shard's same-tick completions.
TEST(EngineGroupTest, EmissionOrderPreservedWithinShard)
{
    Engine host;
    EngineGroup g(host, 2, kLookahead, 1);

    std::vector<std::string> order;
    for (unsigned s = 0; s < 2; ++s) {
        g.postToShard(s, kLookahead, [&g, &order, s] {
            for (int i = 0; i < 3; ++i) {
                g.postToHost(s, [&order, s, i] {
                    order.push_back(std::to_string(s) + "." +
                                    std::to_string(i));
                });
            }
        });
    }
    g.run();
    std::vector<std::string> want = {"0.0", "0.1", "0.2",
                                     "1.0", "1.1", "1.2"};
    EXPECT_EQ(order, want);
}

// The full observable schedule — host merge order, per-shard event
// times and order, epoch count — must be identical for any worker
// count. Shard-side logging is confined to a per-shard vector (shards
// in the same epoch run concurrently, so their relative wall-clock
// interleaving is meaningless and must not be observed).
TEST(EngineGroupTest, WorkerCountDoesNotChangeTheSchedule)
{
    auto trace = [](unsigned threads) {
        Engine host;
        EngineGroup g(host, 4, kLookahead, threads);
        std::vector<std::vector<std::string>> shardLog(4);
        std::vector<std::string> hostLog;

        // A little cross-domain ping-pong web: the host seeds each
        // shard, shards reply, the host re-posts a few rounds.
        struct Pinger
        {
            EngineGroup &g;
            std::vector<std::vector<std::string>> &shardLog;
            std::vector<std::string> &hostLog;
            void
            ping(unsigned s, int round)
            {
                if (round >= 3)
                    return;
                g.postToShard(s, kLookahead + 37 * s, [this, s, round] {
                    shardLog[s].push_back(
                        "@" + std::to_string(g.shardEngine(s).now()));
                    g.postToHost(s, [this, s, round] {
                        hostLog.push_back(
                            "host" + std::to_string(s) + "@" +
                            std::to_string(g.hostEngine().now()));
                        ping(s, round + 1);
                    });
                });
            }
        };
        Pinger p{g, shardLog, hostLog};
        for (unsigned s = 0; s < 4; ++s)
            p.ping(s, 0);
        g.run();

        std::vector<std::string> log = hostLog;
        for (unsigned s = 0; s < 4; ++s)
            for (const std::string &e : shardLog[s])
                log.push_back("shard" + std::to_string(s) + e);
        log.push_back("epochs=" + std::to_string(g.epochsRun()));
        log.push_back("toHost=" + std::to_string(g.messagesToHost()));
        return log;
    };

    std::vector<std::string> serial = trace(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(trace(2), serial);
    EXPECT_EQ(trace(4), serial);
    EXPECT_EQ(trace(16), serial);
}

// Shard-engine trace emissions flow through per-shard buffered
// Tracers drained at the epoch barriers (attachTracer): the merged
// file must be byte-identical for any worker count, and must carry
// both the shard-side and host-side events.
TEST(EngineGroupTest, AttachedTracerMergesShardSpansDeterministically)
{
    auto traceRun = [](unsigned threads) {
        std::string path = "/tmp/dssd_group_trace_" +
                           std::to_string(threads) + ".json";
        {
            Engine host;
            Tracer tracer(path);
            host.setTracer(&tracer);
            EngineGroup g(host, 4, kLookahead, threads);
            g.attachTracer(&tracer);
            for (unsigned s = 0; s < 4; ++s) {
                g.postToShard(s, kLookahead + 11 * s, [&g, s] {
                    Engine &e = g.shardEngine(s);
                    Tracer *t = e.tracer();
                    EXPECT_NE(t, nullptr);
                    EXPECT_TRUE(t->buffered());
                    int pid =
                        t->process("shard" + std::to_string(s));
                    int tid = t->lane(pid, "unit");
                    t->slice(pid, tid, "work", "test", e.now(),
                             e.now() + 10);
                    t->asyncBegin(pid, "op", "round", s, e.now());
                    t->asyncEnd(pid, "op", "round", s, e.now() + 5);
                    g.postToHost(s, [&g, s] {
                        Tracer *ht = g.hostEngine().tracer();
                        int hpid = ht->process("host");
                        ht->counter(hpid, "completions",
                                    g.hostEngine().now(),
                                    static_cast<double>(s));
                    });
                });
            }
            g.run();
            tracer.finish();
        }
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        std::remove(path.c_str());
        return ss.str();
    };

    std::string serial = traceRun(1);
    // All four shard process rows, the host row, and paired spans.
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_NE(serial.find("shard" + std::to_string(s)),
                  std::string::npos);
    EXPECT_NE(serial.find("\"host\""), std::string::npos);
    EXPECT_NE(serial.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(serial.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_EQ(traceRun(2), serial);
    EXPECT_EQ(traceRun(4), serial);
}

TEST(EngineGroupDeathTest, AttachTracerTwiceIsFatal)
{
    Engine host;
    Tracer tracer;
    EngineGroup g(host, 2, kLookahead, 1);
    g.attachTracer(&tracer);
    EXPECT_DEATH(g.attachTracer(&tracer), "already has a tracer");
}

// Epochs are skipped across idle gaps: two bursts separated by a long
// quiet period cost epochs proportional to the bursts, not the gap.
TEST(EngineGroupTest, IdleGapsDoNotBurnEpochs)
{
    Engine host;
    EngineGroup g(host, 2, kLookahead, 1);
    unsigned ran = 0;
    g.shardEngine(0).schedule(10, [&ran] { ++ran; });
    g.shardEngine(1).schedule(1000 * kLookahead + 5, [&ran] { ++ran; });
    g.run();
    EXPECT_EQ(ran, 2u);
    EXPECT_EQ(g.epochsRun(), 2u);
}

TEST(EngineGroupTest, HostOnlyWorkRunsWithoutShardActivity)
{
    Engine host;
    EngineGroup g(host, 2, kLookahead, 1);
    Tick saw = 0;
    host.schedule(kLookahead / 2, [&host, &saw] { saw = host.now(); });
    g.run();
    EXPECT_EQ(saw, kLookahead / 2);
}

TEST(EngineGroupTest, RegisterStatsExportsCounters)
{
    Engine host;
    EngineGroup g(host, 2, kLookahead, 1);
    StatRegistry reg;
    g.registerStats(reg, "grp");
    g.postToShard(0, kLookahead, [&g] { g.postToHost(0, [] {}); });
    g.run();
    EXPECT_DOUBLE_EQ(reg.value("grp.msgs_to_shards"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("grp.msgs_to_host"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("grp.lookahead_ticks"),
                     static_cast<double>(kLookahead));
    EXPECT_GT(reg.value("grp.epochs"), 0.0);
}

} // namespace
} // namespace dssd
