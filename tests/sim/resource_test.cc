/** Unit tests for BandwidthResource / SlotResource / utilization. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.hh"

namespace dssd
{
namespace
{

TEST(BandwidthResourceTest, TransferDurationMatchesBandwidth)
{
    Engine e;
    // 1 byte per tick.
    BandwidthResource r(e, "bus", 1.0);
    Tick done_at = 0;
    r.transfer(1000, tagIo, [&] { done_at = e.now(); });
    e.run();
    EXPECT_EQ(done_at, 1000u);
}

TEST(BandwidthResourceTest, BackToBackTransfersSerialize)
{
    Engine e;
    BandwidthResource r(e, "bus", 1.0);
    std::vector<Tick> ends;
    r.transfer(100, tagIo, [&] { ends.push_back(e.now()); });
    r.transfer(100, tagIo, [&] { ends.push_back(e.now()); });
    r.transfer(100, tagGc, [&] { ends.push_back(e.now()); });
    e.run();
    ASSERT_EQ(ends.size(), 3u);
    EXPECT_EQ(ends[0], 100u);
    EXPECT_EQ(ends[1], 200u);
    EXPECT_EQ(ends[2], 300u);
}

TEST(BandwidthResourceTest, PerTagAccounting)
{
    Engine e;
    BandwidthResource r(e, "bus", 1.0);
    r.reserve(100, tagIo);
    r.reserve(300, tagGc);
    e.run();
    EXPECT_EQ(r.busyTicks(tagIo), 100u);
    EXPECT_EQ(r.busyTicks(tagGc), 300u);
    EXPECT_EQ(r.totalBusyTicks(), 400u);
    EXPECT_EQ(r.bytesMoved(tagIo), 100u);
    EXPECT_EQ(r.bytesMoved(tagGc), 300u);
}

TEST(BandwidthResourceTest, ZeroByteTransferIsInstant)
{
    Engine e;
    BandwidthResource r(e, "bus", 1.0);
    EXPECT_EQ(r.reserve(0, tagIo), 0u);
}

TEST(BandwidthResourceTest, ReserveFromHonorsEarliestStart)
{
    Engine e;
    BandwidthResource r(e, "bus", 1.0);
    Tick end = r.reserveFrom(500, 100, tagIo);
    EXPECT_EQ(end, 600u);
    // FIFO still applies afterward.
    EXPECT_EQ(r.reserve(100, tagIo), 700u);
}

TEST(BandwidthResourceTest, QueueDelayReflectsBacklog)
{
    Engine e;
    BandwidthResource r(e, "bus", 1.0);
    EXPECT_EQ(r.queueDelay(), 0u);
    r.reserve(250, tagIo);
    EXPECT_EQ(r.queueDelay(), 250u);
}

TEST(BandwidthResourceTest, BandwidthChangeAffectsLaterTransfers)
{
    Engine e;
    BandwidthResource r(e, "bus", 1.0);
    EXPECT_EQ(r.duration(100), 100u);
    r.setBandwidth(2.0);
    EXPECT_EQ(r.duration(100), 50u);
}

TEST(UtilizationRecorderTest, SingleWindowFraction)
{
    UtilizationRecorder rec(1000);
    rec.addBusy(0, 250, tagIo);
    auto s = rec.series(tagIo);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s[0], 0.25);
}

TEST(UtilizationRecorderTest, IntervalSpanningWindowsIsSplit)
{
    UtilizationRecorder rec(1000);
    rec.addBusy(500, 2500, tagGc);
    auto s = rec.series(tagGc);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[0], 0.5);
    EXPECT_DOUBLE_EQ(s[1], 1.0);
    EXPECT_DOUBLE_EQ(s[2], 0.5);
}

TEST(UtilizationRecorderTest, TagsAreIndependent)
{
    UtilizationRecorder rec(100);
    rec.addBusy(0, 50, tagIo);
    rec.addBusy(50, 100, tagGc);
    EXPECT_DOUBLE_EQ(rec.series(tagIo)[0], 0.5);
    EXPECT_DOUBLE_EQ(rec.series(tagGc)[0], 0.5);
}

TEST(UtilizationRecorderTest, BusyFractionOverRange)
{
    UtilizationRecorder rec(100);
    rec.addBusy(0, 100, tagIo);
    rec.addBusy(100, 150, tagIo);
    EXPECT_DOUBLE_EQ(rec.busyFraction(tagIo, 0, 200), 0.75);
}

TEST(BandwidthResourceTest, RecorderSeesTransfers)
{
    Engine e;
    UtilizationRecorder rec(1000);
    BandwidthResource r(e, "bus", 1.0);
    r.attachRecorder(&rec);
    r.reserve(500, tagIo);
    EXPECT_DOUBLE_EQ(rec.series(tagIo)[0], 0.5);
}

TEST(SlotResourceTest, TryAcquireUntilExhausted)
{
    Engine e;
    SlotResource s(e, "buf", 2);
    EXPECT_TRUE(s.tryAcquire());
    EXPECT_TRUE(s.tryAcquire());
    EXPECT_FALSE(s.tryAcquire());
    EXPECT_EQ(s.freeSlots(), 0u);
    s.release();
    EXPECT_TRUE(s.tryAcquire());
}

TEST(SlotResourceTest, WaitersWakeFifo)
{
    Engine e;
    SlotResource s(e, "buf", 1);
    std::vector<int> order;
    s.acquire([&] { order.push_back(0); });
    s.acquire([&] { order.push_back(1); });
    s.acquire([&] { order.push_back(2); });
    e.run();
    // Only the first grant fires; others wait for releases.
    EXPECT_EQ(order, (std::vector<int>{0}));
    s.release();
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    s.release();
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SlotResourceTest, MaxHeldHighWaterMark)
{
    Engine e;
    SlotResource s(e, "buf", 4);
    s.tryAcquire();
    s.tryAcquire();
    s.tryAcquire();
    s.release();
    EXPECT_EQ(s.maxHeld(), 3u);
}

TEST(SlotResourceDeathTest, ReleaseWithoutAcquirePanics)
{
    Engine e;
    SlotResource s(e, "buf", 1);
    EXPECT_DEATH(s.release(), "release without acquire");
}

} // namespace
} // namespace dssd
