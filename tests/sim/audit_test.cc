/**
 * Tests for the invariant auditor: the framework itself (check
 * registry, report/abort modes, engine hook) and the subsystem checks'
 * ability to detect seeded corruptions with precise diagnostics.
 */

#include <gtest/gtest.h>

#include <string>

#include "controller/remap.hh"
#include "core/gc.hh"
#include "core/ssd.hh"
#include "sim/audit.hh"

namespace dssd
{
namespace
{

bool
anyViolationContains(const Auditor &a, const std::string &needle)
{
    for (const AuditViolation &v : a.violations()) {
        if (v.detail.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(AuditorTest, RunsEveryRegisteredCheck)
{
    Auditor a(AuditMode::Report);
    int first = 0;
    int second = 0;
    a.addCheck("first", [&](AuditReport &) { ++first; });
    a.addCheck("second", [&](AuditReport &) { ++second; });
    EXPECT_EQ(a.checkCount(), 2u);
    EXPECT_EQ(a.run(), 0u);
    EXPECT_EQ(a.run(), 0u);
    EXPECT_EQ(first, 2);
    EXPECT_EQ(second, 2);
    EXPECT_EQ(a.runs(), 2u);
}

TEST(AuditorTest, ReportModeAccumulatesViolations)
{
    Auditor a(AuditMode::Report);
    a.addCheck("broken", [](AuditReport &r) {
        r.fail("thing %d is wrong", 1);
        r.fail("thing %d is wrong", 2);
    });
    EXPECT_EQ(a.run(), 2u);
    ASSERT_EQ(a.violations().size(), 2u);
    EXPECT_EQ(a.violations()[0].check, "broken");
    EXPECT_EQ(a.violations()[0].detail, "thing 1 is wrong");
    EXPECT_EQ(a.violations()[1].detail, "thing 2 is wrong");
    a.clearViolations();
    EXPECT_TRUE(a.violations().empty());
}

TEST(AuditorTest, RemovedChecksStopRunning)
{
    Auditor a(AuditMode::Report);
    int calls = 0;
    std::size_t id = a.addCheck("gone", [&](AuditReport &) { ++calls; });
    a.run();
    a.removeCheck(id);
    a.run();
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(a.checkCount(), 0u);
}

TEST(AuditorTest, EngineHookFiresEveryNEvents)
{
    Engine e;
    Auditor a(AuditMode::Report);
    a.addCheck("noop", [](AuditReport &) {});
    a.attach(e, 4);
    for (int i = 0; i < 16; ++i)
        e.schedule(static_cast<Tick>(i + 1), [] {});
    e.run();
    EXPECT_EQ(a.runs(), 4u);
    a.detach();
    for (int i = 0; i < 8; ++i)
        e.schedule(static_cast<Tick>(i + 1), [] {});
    e.run();
    EXPECT_EQ(a.runs(), 4u);
}

TEST(AuditorDeathTest, AbortModePanicsWithCheckNameAndDetail)
{
    Auditor a(AuditMode::Abort);
    a.addCheck("boom", [](AuditReport &r) {
        r.fail("counter went backwards");
    });
    EXPECT_DEATH(a.run(),
                 "invariant audit 'boom' failed.*counter went backwards");
}

//
// Seeded-corruption detection through the real subsystem checks.
//

TEST(AuditCorruptionTest, CorruptedL2pEntryIsDetected)
{
    Engine e;
    Ssd ssd(e, makeConfig(ArchKind::Baseline));
    ssd.prefill(0.5, 0.0);

    Auditor a(AuditMode::Report);
    ssd.registerAudits(a);
    EXPECT_EQ(a.run(), 0u) << "pristine SSD must audit clean";

    // Point lpn 0 at a nonsense physical page.
    ssd.mapping().debugCorruptL2p(0, ~static_cast<Ppn>(0) / 2);
    EXPECT_GT(a.run(), 0u);
    EXPECT_TRUE(anyViolationContains(a, "L2P bijectivity"));
}

TEST(AuditCorruptionTest, CrossLinkedL2pEntriesAreDetected)
{
    Engine e;
    Ssd ssd(e, makeConfig(ArchKind::Baseline));
    ssd.prefill(0.5, 0.0);

    Auditor a(AuditMode::Report);
    ssd.registerAudits(a);

    // Alias lpn 0 onto lpn 1's physical page: P2L can only name one
    // of them, so bijectivity must flag the other.
    ssd.mapping().debugCorruptL2p(0, *ssd.mapping().translate(1));
    EXPECT_GT(a.run(), 0u);
    EXPECT_TRUE(anyViolationContains(a, "bijectivity"));
}

TEST(AuditCorruptionTest, SrtDoubleTargetIsDetected)
{
    SuperblockRemapTable srt(8);
    RecycleBlockTable rbt;
    srt.insert(1, 7);
    srt.insert(2, 7); // two sources claiming replacement block 7

    Auditor a(AuditMode::Report);
    a.addCheck("remap", [&](AuditReport &r) {
        auditRemapTables(srt, rbt, r);
    });
    EXPECT_GT(a.run(), 0u);
    EXPECT_TRUE(anyViolationContains(a, "SRT injectivity"));
}

TEST(AuditCorruptionTest, SrtEntryInRbtIsDetected)
{
    SuperblockRemapTable srt(8);
    RecycleBlockTable rbt;
    srt.insert(1, 7);
    rbt.add(7); // replacement block also sitting in the recycle bin

    Auditor a(AuditMode::Report);
    a.addCheck("remap", [&](AuditReport &r) {
        auditRemapTables(srt, rbt, r);
    });
    EXPECT_GT(a.run(), 0u);
    EXPECT_TRUE(anyViolationContains(a, "sits in the RBT"));
}

TEST(AuditCorruptionTest, DroppedNocCreditIsDetected)
{
    Engine e;
    Ssd ssd(e, makeConfig(ArchKind::DSSDNoc));
    ASSERT_NE(ssd.noc(), nullptr);

    Auditor a(AuditMode::Report);
    ssd.registerAudits(a);
    EXPECT_EQ(a.run(), 0u) << "idle fNoC must audit clean";

    ssd.noc()->debugDropCredit(0, 0);
    EXPECT_GT(a.run(), 0u);
    EXPECT_TRUE(anyViolationContains(a, "credit leak"));
}

//
// A real timed run audits clean at event-boundary granularity.
//

TEST(AuditEndToEndTest, DecoupledRunWithGcAuditsClean)
{
    Engine e;
    Ssd ssd(e, makeConfig(ArchKind::DSSDNoc));
    ssd.prefill(0.8, 0.4);

    Auditor a(AuditMode::Report);
    ssd.registerAudits(a);
    a.attach(e, 512);

    // Host writes racing a forced GC round exercises the mapping, the
    // write buffer, global copyback, and the fNoC together.
    bool gc_done = false;
    ssd.gc().forceAll(1, [&] { gc_done = true; });
    for (Lpn lpn = 0; lpn < 64; ++lpn)
        ssd.writePage(lpn, [] {});
    e.run();

    EXPECT_TRUE(gc_done);
    EXPECT_GT(a.runs(), 0u);
    EXPECT_TRUE(a.violations().empty())
        << a.violations().size() << " violation(s), first: "
        << a.violations().front().detail;
}

TEST(AuditWiringTest, AutoAttachMatchesBuildConfiguration)
{
    Engine e;
    Ssd ssd(e, makeConfig(ArchKind::DSSD));
#ifdef DSSD_AUDIT
    ASSERT_NE(ssd.auditor(), nullptr);
    EXPECT_EQ(ssd.auditor()->mode(), AuditMode::Abort);
    EXPECT_GT(ssd.auditor()->checkCount(), 0u);
#else
    EXPECT_EQ(ssd.auditor(), nullptr);
#endif
}

} // namespace
} // namespace dssd
