/**
 * Unit tests for the hot-path block pool (sim/pool.hh): block reuse,
 * chunked growth, odd-size fallback, and pooled shared_ptrs keeping
 * the pool alive past the owning handle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/pool.hh"

namespace dssd
{
namespace
{

TEST(BlockPoolTest, RecyclesFreedBlocks)
{
    PoolPtr pool = PoolPtr::make();
    void *a = pool->allocate(64);
    pool->deallocate(a, 64);
    void *b = pool->allocate(64);
    EXPECT_EQ(a, b); // LIFO freelist hands the same block back
    pool->deallocate(b, 64);
    EXPECT_GT(pool->capacity(), 0u);
}

TEST(BlockPoolTest, GrowsInChunksAndNeverShrinks)
{
    PoolPtr pool = PoolPtr::make();
    std::vector<void *> blocks;
    for (int i = 0; i < 1000; ++i)
        blocks.push_back(pool->allocate(32));
    std::size_t peak = pool->capacity();
    EXPECT_GE(peak, 1000u);
    for (void *p : blocks)
        pool->deallocate(p, 32);
    EXPECT_EQ(pool->capacity(), peak);
}

TEST(BlockPoolTest, OddSizesFallThroughToTheHeap)
{
    PoolPtr pool = PoolPtr::make();
    void *fixed = pool->allocate(48); // locks the block size
    std::size_t cap = pool->capacity();
    void *odd = pool->allocate(4096); // heap fallback, pool untouched
    EXPECT_EQ(pool->capacity(), cap);
    pool->deallocate(odd, 4096);
    pool->deallocate(fixed, 48);
}

TEST(PoolAllocatorTest, MakePooledConstructsAndRecycles)
{
    PoolPtr pool = PoolPtr::make();
    struct Payload
    {
        std::uint64_t a = 1, b = 2, c = 3;
    };
    Payload *first;
    {
        std::shared_ptr<Payload> p = makePooled<Payload>(pool);
        first = p.get();
        EXPECT_EQ(p->a, 1u);
        p->a = 42;
    }
    // The node went back to the freelist; the next allocation reuses it
    // and re-runs the constructor.
    std::shared_ptr<Payload> q = makePooled<Payload>(pool);
    EXPECT_EQ(q.get(), first);
    EXPECT_EQ(q->a, 1u);
}

TEST(PoolAllocatorTest, PooledNodesOutliveTheOwningHandle)
{
    std::shared_ptr<int> survivor;
    {
        PoolPtr pool = PoolPtr::make();
        survivor = makePooled<int>(pool, 7);
        // `pool` handle dies here; the allocator copy in the control
        // block keeps the BlockPool itself alive.
    }
    EXPECT_EQ(*survivor, 7);
    survivor.reset(); // last ref frees the node and then the pool
}

TEST(PoolAllocatorTest, ManyLiveNodesAcrossChunks)
{
    PoolPtr pool = PoolPtr::make();
    std::vector<std::shared_ptr<std::uint64_t>> live;
    for (std::uint64_t i = 0; i < 600; ++i)
        live.push_back(makePooled<std::uint64_t>(pool, i));
    for (std::uint64_t i = 0; i < 600; ++i)
        EXPECT_EQ(*live[i], i);
}

} // namespace
} // namespace dssd
