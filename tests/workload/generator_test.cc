/** Unit tests for workload generators and trace synthesizers. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/generator.hh"

namespace dssd
{
namespace
{

TEST(SyntheticTest, SequentialOffsetsAdvance)
{
    SyntheticParams p;
    p.sequential = true;
    p.requestBytes = 4 * kKiB;
    p.footprintBytes = 64 * kKiB;
    p.count = 20;
    SyntheticGenerator g(p);
    std::uint64_t expect = 0;
    for (int i = 0; i < 16; ++i) {
        auto r = g.next();
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->offset, expect);
        expect = (expect + 4 * kKiB) % (64 * kKiB);
    }
}

TEST(SyntheticTest, CountBoundsOutput)
{
    SyntheticParams p;
    p.count = 3;
    SyntheticGenerator g(p);
    EXPECT_TRUE(g.next().has_value());
    EXPECT_TRUE(g.next().has_value());
    EXPECT_TRUE(g.next().has_value());
    EXPECT_FALSE(g.next().has_value());
}

TEST(SyntheticTest, ReadRatioHonored)
{
    SyntheticParams p;
    p.readRatio = 0.7;
    p.count = 10000;
    p.sequential = false;
    SyntheticGenerator g(p);
    int reads = 0;
    while (auto r = g.next())
        reads += r->isRead();
    EXPECT_NEAR(reads / 10000.0, 0.7, 0.03);
}

TEST(SyntheticTest, RandomOffsetsAlignedAndInRange)
{
    SyntheticParams p;
    p.sequential = false;
    p.requestBytes = 8 * kKiB;
    p.footprintBytes = 1 * kMiB;
    p.count = 1000;
    SyntheticGenerator g(p);
    while (auto r = g.next()) {
        EXPECT_EQ(r->offset % (8 * kKiB), 0u);
        EXPECT_LE(r->offset + r->bytes, 1 * kMiB);
    }
}

TEST(SyntheticTest, DeterministicForSameSeed)
{
    SyntheticParams p;
    p.sequential = false;
    p.readRatio = 0.5;
    p.count = 100;
    SyntheticGenerator a(p), b(p);
    while (true) {
        auto ra = a.next(), rb = b.next();
        ASSERT_EQ(ra.has_value(), rb.has_value());
        if (!ra)
            break;
        EXPECT_EQ(ra->offset, rb->offset);
        EXPECT_EQ(ra->kind, rb->kind);
    }
}

TEST(TraceProfileTest, KnownNamesResolve)
{
    auto names = knownTraceNames();
    EXPECT_GE(names.size(), 15u);
    for (const auto &n : names) {
        TraceProfile p = traceProfile(n);
        EXPECT_EQ(p.name, n);
        EXPECT_GE(p.readRatio, 0.0);
        EXPECT_LE(p.readRatio, 1.0);
    }
}

TEST(TraceProfileTest, Prn0IsWriteIntensive)
{
    TraceProfile p = traceProfile("prn_0");
    EXPECT_LT(p.readRatio, 0.5);
    EXPECT_FALSE(isReadIntensive(p));
}

TEST(TraceProfileTest, Usr2AndHm1AreReadIntensive)
{
    EXPECT_TRUE(isReadIntensive(traceProfile("usr_2")));
    EXPECT_TRUE(isReadIntensive(traceProfile("hm_1")));
    // ...but not purely reads: "these workloads contain some fraction
    // of write operations" (Sec 6.4).
    EXPECT_LT(traceProfile("usr_2").readRatio, 1.0);
}

TEST(TraceProfileDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)traceProfile("no_such_trace"), "unknown trace");
}

TEST(TraceSynthesizerTest, MatchesProfileReadRatio)
{
    TraceSynthesizer g(traceProfile("usr_2"), 256 * kMiB, 20000);
    int reads = 0, total = 0;
    while (auto r = g.next()) {
        reads += r->isRead();
        ++total;
    }
    EXPECT_EQ(total, 20000);
    EXPECT_NEAR(reads / 20000.0, traceProfile("usr_2").readRatio, 0.02);
}

TEST(TraceSynthesizerTest, Src12HasLargeWrites)
{
    TraceSynthesizer g(traceProfile("src1_2"), 256 * kMiB, 5000);
    double wbytes = 0;
    int writes = 0;
    while (auto r = g.next()) {
        if (r->isWrite()) {
            wbytes += static_cast<double>(r->bytes);
            ++writes;
        }
    }
    ASSERT_GT(writes, 0);
    EXPECT_GE(wbytes / writes, 48.0 * kKiB); // large write sizes
}

TEST(TraceSynthesizerTest, OffsetsPageAlignedWithinFootprint)
{
    TraceSynthesizer g(traceProfile("prn_0"), 64 * kMiB, 5000);
    while (auto r = g.next()) {
        EXPECT_EQ(r->offset % (4 * kKiB), 0u);
        EXPECT_LE(r->offset + r->bytes, 64 * kMiB);
    }
}

// Regression tests for the placement arithmetic: the synthesizer used
// floor division for the slots a request spans and an exclusive upper
// bound, so the last aligned slot was never a start position and a
// request spanning the whole footprint underflowed the bound.

TEST(TraceSynthesizerTest, RandomPlacementReachesLastSlot)
{
    // Half-footprint requests (the size clamp's maximum): the only
    // in-bounds starts are slots 0..128 of 256. The old exclusive
    // bound stopped at 127, so offset + bytes == footprint never
    // happened.
    TraceProfile prof{"boundary", 0.5, 0.0, 512 * kKiB, 512 * kKiB,
                      0.0};
    TraceSynthesizer g(prof, 1 * kMiB, 4000);
    bool hit_end = false;
    while (auto r = g.next()) {
        EXPECT_EQ(r->bytes, 512 * kKiB);
        EXPECT_LE(r->offset + r->bytes, 1 * kMiB);
        if (r->offset + r->bytes == 1 * kMiB)
            hit_end = true;
    }
    EXPECT_TRUE(hit_end);
}

TEST(TraceSynthesizerTest, SequentialCursorCoversEveryStart)
{
    // Pure-sequential 4 KiB stream over a 1 MiB footprint: all 256
    // slots are legal starts. The old modulo wrapped at slots-1 and
    // skipped the final slot forever.
    TraceProfile prof{"seq", 0.0, 1.0, 4 * kKiB, 4 * kKiB, 0.0};
    TraceSynthesizer g(prof, 1 * kMiB, 512);
    std::uint64_t last_slot_hits = 0;
    while (auto r = g.next()) {
        EXPECT_LE(r->offset + r->bytes, 1 * kMiB);
        if (r->offset == 1 * kMiB - 4 * kKiB)
            ++last_slot_hits;
    }
    // 512 draws over a 256-slot cycle pass the last slot twice.
    EXPECT_EQ(last_slot_hits, 2u);
}

TEST(TraceSynthesizerTest, OversizedBaseSizesStayClampedAndInBounds)
{
    // largeIoFraction = 1 shifts every request 2-8x above an already
    // half-footprint base; the size clamp plus the round-up placement
    // bound must keep every request inside the footprint.
    TraceProfile prof{"huge", 0.5, 0.5, 512 * kKiB, 512 * kKiB, 1.0};
    TraceSynthesizer g(prof, 1 * kMiB, 2000);
    while (auto r = g.next()) {
        EXPECT_GT(r->bytes, 0u);
        EXPECT_LE(r->offset + r->bytes, 1 * kMiB);
        EXPECT_EQ(r->offset % (4 * kKiB), 0u);
    }
}

TEST(TraceFileLoaderTest, ParsesAndReplays)
{
    const char *path = "/tmp/dssd_test_trace.txt";
    {
        std::ofstream out(path);
        out << "# comment line\n";
        out << "0.0 W 0 4096\n";
        out << "100.5 R 8192 8192\n";
    }
    TraceFileLoader g(path);
    EXPECT_EQ(g.size(), 2u);
    auto r1 = g.next();
    ASSERT_TRUE(r1.has_value());
    EXPECT_TRUE(r1->isWrite());
    EXPECT_EQ(r1->offset, 0u);
    auto r2 = g.next();
    ASSERT_TRUE(r2.has_value());
    EXPECT_TRUE(r2->isRead());
    EXPECT_EQ(r2->bytes, 8192u);
    EXPECT_EQ(r2->issueAt, usToTicks(100.5));
    EXPECT_FALSE(g.next().has_value());
    std::remove(path);
}

TEST(TraceFileLoaderDeathTest, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceFileLoader("/nonexistent/trace.txt"),
                 "cannot open");
}

namespace
{

/** Write @p body to a temp trace file and return its path. */
std::string
writeTrace(const char *tag, const std::string &body)
{
    std::string path =
        std::string("/tmp/dssd_test_trace_") + tag + ".txt";
    std::ofstream out(path);
    out << body;
    return path;
}

} // namespace

TEST(TraceFileLoaderTest, OutOfOrderTimestampsAreSorted)
{
    std::string path = writeTrace("unsorted", "200 W 0 4096\n"
                                              "100 R 4096 4096\n"
                                              "300 W 8192 4096\n");
    TraceFileLoader g(path); // warns, then sorts by issue time
    ASSERT_EQ(g.size(), 3u);
    Tick prev = 0;
    while (auto r = g.next()) {
        EXPECT_GE(r->issueAt, prev);
        prev = r->issueAt;
    }
    std::remove(path.c_str());
}

TEST(TraceFileLoaderTest, SortIsStableForEqualTimestamps)
{
    std::string path = writeTrace("ties", "200 W 0 4096\n"
                                          "100 R 4096 4096\n"
                                          "100 W 8192 4096\n");
    TraceFileLoader g(path);
    auto r1 = g.next();
    auto r2 = g.next();
    ASSERT_TRUE(r1 && r2);
    // The two t=100 requests keep their file order.
    EXPECT_TRUE(r1->isRead());
    EXPECT_TRUE(r2->isWrite());
    EXPECT_EQ(r2->offset, 8192u);
    std::remove(path.c_str());
}

TEST(TraceFileLoaderTest, BoundCheckAcceptsExactFit)
{
    // A request ending exactly at the device boundary is legal.
    std::string path = writeTrace("fit", "0 W 61440 4096\n");
    TraceFileLoader g(path, 64 * kKiB);
    EXPECT_EQ(g.size(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, ZeroSizeRequestIsFatal)
{
    std::string path = writeTrace("zero", "0 W 0 4096\n"
                                          "10 R 4096 0\n");
    EXPECT_DEATH({ TraceFileLoader g(path); }, ":2: zero-size");
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, NegativeTimestampIsFatal)
{
    std::string path = writeTrace("negts", "-5 W 0 4096\n");
    EXPECT_DEATH({ TraceFileLoader g(path); },
                 ":1: negative timestamp");
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, OutOfBoundsRequestIsFatal)
{
    // Starts in range but runs past the device end; the overflow-safe
    // check (size > device - offset) must catch it.
    std::string path = writeTrace("oob", "0 W 61440 8192\n");
    EXPECT_DEATH({ TraceFileLoader g(path, 64 * kKiB); },
                 "extends beyond");
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, OffsetPastDeviceEndIsFatal)
{
    std::string path = writeTrace("far", "0 R 65536 4096\n");
    EXPECT_DEATH({ TraceFileLoader g(path, 64 * kKiB); },
                 "extends beyond");
    std::remove(path.c_str());
}

// Optional fifth column: the submitting tenant id.

TEST(TraceFileLoaderTest, TenantColumnParsed)
{
    std::string path = writeTrace("tenant", "0 W 0 4096 3\n"
                                            "10 R 4096 4096\n"
                                            "20 W 8192 4096 0\n");
    TraceFileLoader g(path);
    auto r1 = g.next();
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->tenant, 3u);
    auto r2 = g.next();
    ASSERT_TRUE(r2.has_value());
    // Legacy four-column lines default to tenant 0.
    EXPECT_EQ(r2->tenant, 0u);
    auto r3 = g.next();
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->tenant, 0u);
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, NonNumericTenantIsFatal)
{
    std::string path = writeTrace("badtenant", "0 W 0 4096 db\n");
    EXPECT_DEATH({ TraceFileLoader g(path); }, ":1: bad tenant id");
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, NegativeTenantIsFatal)
{
    std::string path = writeTrace("negtenant", "0 W 0 4096 4\n"
                                               "10 R 4096 4096 -1\n");
    EXPECT_DEATH({ TraceFileLoader g(path); }, ":2: bad tenant id");
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, OutOfRangeTenantIsFatal)
{
    std::string path =
        writeTrace("bigtenant", "0 W 0 4096 4294967296\n");
    EXPECT_DEATH({ TraceFileLoader g(path); }, "out of range");
    std::remove(path.c_str());
}

TEST(TraceFileLoaderDeathTest, TrailingFieldAfterTenantIsFatal)
{
    std::string path = writeTrace("trailing", "0 W 0 4096 1 junk\n");
    EXPECT_DEATH({ TraceFileLoader g(path); }, "trailing field");
    std::remove(path.c_str());
}

} // namespace
} // namespace dssd
