/** Unit tests for open-loop arrival processes. */

#include <gtest/gtest.h>

#include "workload/arrival.hh"

namespace dssd
{
namespace
{

TEST(ArrivalSpecTest, ParsesKinds)
{
    auto c = parseArrivalSpec("closed");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->kind, ArrivalKind::Closed);

    auto p = parseArrivalSpec("poisson:100k");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->kind, ArrivalKind::Poisson);
    EXPECT_DOUBLE_EQ(p->iops, 1e5);

    auto pa = parseArrivalSpec("pareto:50000:1.2");
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(pa->kind, ArrivalKind::Pareto);
    EXPECT_DOUBLE_EQ(pa->iops, 5e4);
    EXPECT_DOUBLE_EQ(pa->paretoAlpha, 1.2);
}

TEST(ArrivalSpecTest, ParsesModifiers)
{
    auto b = parseArrivalSpec("poisson:80000,burst:8:1:4");
    ASSERT_TRUE(b.has_value());
    EXPECT_DOUBLE_EQ(b->burstFactor, 8.0);
    EXPECT_EQ(b->burstOn, 1 * tickMs);
    EXPECT_EQ(b->burstOff, 4 * tickMs);

    auto d = parseArrivalSpec("poisson:10k,diurnal:0.5:20");
    ASSERT_TRUE(d.has_value());
    EXPECT_DOUBLE_EQ(d->diurnalAmp, 0.5);
    EXPECT_EQ(d->diurnalPeriod, 20 * tickMs);
}

TEST(ArrivalSpecTest, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseArrivalSpec("").has_value());
    EXPECT_FALSE(parseArrivalSpec("poisson").has_value());
    EXPECT_FALSE(parseArrivalSpec("poisson:").has_value());
    EXPECT_FALSE(parseArrivalSpec("poisson:-5").has_value());
    EXPECT_FALSE(parseArrivalSpec("poisson:0").has_value());
    EXPECT_FALSE(parseArrivalSpec("uniform:100").has_value());
    // Pareto alpha <= 1 has no finite mean rate.
    EXPECT_FALSE(parseArrivalSpec("pareto:1000:0.5").has_value());
    EXPECT_FALSE(parseArrivalSpec("poisson:1k,burst").has_value());
    EXPECT_FALSE(parseArrivalSpec("poisson:1k,bogus:2").has_value());
}

TEST(ArrivalProcessTest, TimestampsAreNonDecreasing)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Pareto;
    p.iops = 1e6;
    p.paretoAlpha = 1.2;
    ArrivalProcess ap(p, 7);
    Tick prev = 0;
    for (int i = 0; i < 5000; ++i) {
        Tick t = ap.next();
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(ArrivalProcessTest, PoissonMeanMatchesConfiguredRate)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Poisson;
    p.iops = 1e6; // mean inter-arrival 1 us = 1000 ticks
    ArrivalProcess ap(p, 11);
    const int n = 20000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = ap.next();
    double mean = static_cast<double>(last) / n;
    EXPECT_NEAR(mean, 1000.0, 50.0);
}

TEST(ArrivalProcessTest, ParetoMeanMatchesConfiguredRate)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Pareto;
    p.iops = 1e6;
    p.paretoAlpha = 1.5;
    ArrivalProcess ap(p, 11);
    const int n = 50000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = ap.next();
    double mean = static_cast<double>(last) / n;
    // Heavy tails converge slowly; just pin the right decade.
    EXPECT_GT(mean, 500.0);
    EXPECT_LT(mean, 2000.0);
}

TEST(ArrivalProcessTest, DeterministicBySeed)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Poisson;
    p.iops = 1e5;
    ArrivalProcess a(p, 3), b(p, 3), c(p, 4);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        Tick ta = a.next();
        Tick tc = c.next();
        ASSERT_EQ(ta, b.next());
        diverged = diverged || ta != tc;
    }
    EXPECT_TRUE(diverged);
}

TEST(ArrivalProcessTest, BurstWindowScalesRate)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Poisson;
    p.iops = 1e5;
    p.burstFactor = 8.0;
    p.burstOn = 1 * tickMs;
    p.burstOff = 4 * tickMs;
    ArrivalProcess ap(p, 1);
    // Inside the on-window of every 5 ms cycle.
    EXPECT_DOUBLE_EQ(ap.rateFactorAt(0.5 * tickMs), 8.0);
    EXPECT_DOUBLE_EQ(ap.rateFactorAt(5.5 * tickMs), 8.0);
    // Inside the off-window.
    EXPECT_DOUBLE_EQ(ap.rateFactorAt(3.0 * tickMs), 1.0);
    EXPECT_DOUBLE_EQ(ap.rateFactorAt(9.0 * tickMs), 1.0);
}

TEST(ArrivalProcessTest, DiurnalSwingModulatesRate)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Poisson;
    p.iops = 1e5;
    p.diurnalAmp = 0.5;
    p.diurnalPeriod = 10 * tickMs;
    ArrivalProcess ap(p, 1);
    // Peak at a quarter period, trough at three quarters.
    EXPECT_NEAR(ap.rateFactorAt(2.5 * tickMs), 1.5, 1e-9);
    EXPECT_NEAR(ap.rateFactorAt(7.5 * tickMs), 0.5, 1e-9);
    EXPECT_NEAR(ap.rateFactorAt(0.0), 1.0, 1e-9);
}

TEST(OpenLoopGeneratorTest, StampsTimesWithoutPerturbingContent)
{
    SyntheticParams sp;
    sp.count = 500;
    sp.readRatio = 0.5;
    sp.sequential = false;
    SyntheticGenerator bare(sp);
    ArrivalParams ap;
    ap.kind = ArrivalKind::Poisson;
    ap.iops = 1e6;
    OpenLoopGenerator open(std::make_unique<SyntheticGenerator>(sp), ap,
                           99);
    Tick prev = 0;
    int n = 0;
    while (true) {
        auto rb = bare.next();
        auto ro = open.next();
        ASSERT_EQ(rb.has_value(), ro.has_value());
        if (!rb)
            break;
        // Same draws, same sequence: only issueAt changes.
        EXPECT_EQ(ro->offset, rb->offset);
        EXPECT_EQ(ro->bytes, rb->bytes);
        EXPECT_EQ(ro->kind, rb->kind);
        EXPECT_GE(ro->issueAt, prev);
        prev = ro->issueAt;
        ++n;
    }
    EXPECT_EQ(n, 500);
    EXPECT_GT(prev, 0u);
}

TEST(OpenLoopGeneratorDeathTest, ClosedKindIsFatal)
{
    SyntheticParams sp;
    sp.count = 10;
    ArrivalParams ap; // kind = Closed
    EXPECT_DEATH(OpenLoopGenerator(
                     std::make_unique<SyntheticGenerator>(sp), ap, 1),
                 "open-loop arrival kind");
}

} // namespace
} // namespace dssd
