/** Integration tests: full workloads through the whole stack. */

#include <gtest/gtest.h>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "hil/driver.hh"

namespace dssd
{
namespace
{

SsdConfig
cfg(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 8;
    c.geom.ways = 4;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 16;
    c.writeBuffer.capacityPages = 256;
    return c;
}

void
runWorkload(Ssd &ssd, Engine &e, Generator &gen, unsigned qd,
            QueueDriver **out_drv)
{
    static thread_local std::unique_ptr<QueueDriver> driver;
    driver = std::make_unique<QueueDriver>(
        e, gen,
        [&ssd](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        qd);
    *out_drv = driver.get();
    driver->start();
    e.run();
}

TEST(EndToEndTest, SequentialWriteWorkloadCompletes)
{
    Engine e;
    Ssd ssd(e, cfg(ArchKind::Baseline));
    SyntheticParams p;
    p.requestBytes = 4 * kKiB;
    p.footprintBytes = 4 * kMiB;
    p.count = 500;
    SyntheticGenerator gen(p);
    QueueDriver *drv = nullptr;
    runWorkload(ssd, e, gen, 64, &drv);
    EXPECT_EQ(drv->completed(), 500u);
    EXPECT_GT(drv->allLatency().mean(), 0.0);
}

TEST(EndToEndTest, MixedWorkloadOnAllArchitectures)
{
    for (ArchKind k : {ArchKind::Baseline, ArchKind::BW, ArchKind::DSSD,
                       ArchKind::DSSDBus, ArchKind::DSSDNoc}) {
        Engine e;
        Ssd ssd(e, cfg(k));
        ssd.prefill(0.5, 0.1);
        SyntheticParams p;
        p.readRatio = 0.5;
        p.sequential = false;
        p.requestBytes = 8 * kKiB;
        p.footprintBytes = 8 * kMiB;
        p.count = 300;
        SyntheticGenerator gen(p);
        QueueDriver *drv = nullptr;
        runWorkload(ssd, e, gen, 32, &drv);
        EXPECT_EQ(drv->completed(), 300u) << archName(k);
        EXPECT_GT(drv->readLatency().count(), 0u) << archName(k);
        EXPECT_GT(drv->writeLatency().count(), 0u) << archName(k);
    }
}

TEST(EndToEndTest, WritePressureTriggersGcAndSurvives)
{
    SsdConfig c = cfg(ArchKind::DSSDNoc);
    c.writeBuffer.capacityPages = 64;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.85, 0.2);
    SyntheticParams p;
    p.sequential = false;
    p.requestBytes = 4 * kKiB;
    p.footprintBytes =
        ssd.mapping().lpnCount() * c.geom.pageBytes / 2;
    p.count = 3000;
    SyntheticGenerator gen(p);
    QueueDriver *drv = nullptr;
    runWorkload(ssd, e, gen, 64, &drv);
    EXPECT_EQ(drv->completed(), 3000u);
    EXPECT_GT(ssd.gc().blocksErased(), 0u);
    EXPECT_GT(ssd.gc().pagesMoved(), 0u);
    // WAF is sane: amplification exists but is bounded.
    EXPECT_GE(ssd.mapping().waf(), 1.0);
    EXPECT_LT(ssd.mapping().waf(), 10.0);
}

TEST(EndToEndTest, TraceSynthesizerRunsThroughTheStack)
{
    Engine e;
    Ssd ssd(e, cfg(ArchKind::DSSDNoc));
    ssd.prefill(0.5, 0.1);
    TraceSynthesizer gen(traceProfile("prn_0"), 8 * kMiB, 400, 3);
    QueueDriver *drv = nullptr;
    runWorkload(ssd, e, gen, 64, &drv);
    EXPECT_EQ(drv->completed(), 400u);
    EXPECT_GT(drv->allLatency().percentile(99), 0.0);
}

TEST(EndToEndTest, DramHitWorkloadNeverTouchesFlash)
{
    SsdConfig c = cfg(ArchKind::DSSDNoc);
    c.writeBuffer.mode = BufferMode::AlwaysHit;
    Engine e;
    Ssd ssd(e, c);
    SyntheticParams p;
    p.readRatio = 1.0;
    p.requestBytes = 4 * kKiB;
    p.footprintBytes = 4 * kMiB;
    p.count = 200;
    SyntheticGenerator gen(p);
    QueueDriver *drv = nullptr;
    runWorkload(ssd, e, gen, 16, &drv);
    EXPECT_EQ(drv->completed(), 200u);
    for (unsigned ch = 0; ch < ssd.channelCount(); ++ch)
        EXPECT_EQ(ssd.channel(ch).reads(), 0u);
}

TEST(EndToEndTest, BandwidthSeriesCoversTheRun)
{
    Engine e;
    Ssd ssd(e, cfg(ArchKind::Baseline));
    SyntheticParams p;
    p.requestBytes = 16 * kKiB;
    p.footprintBytes = 16 * kMiB;
    p.count = 400;
    SyntheticGenerator gen(p);
    QueueDriver *drv = nullptr;
    runWorkload(ssd, e, gen, 64, &drv);
    EXPECT_DOUBLE_EQ(drv->ioBytes().total(), 400.0 * 16 * kKiB);
    EXPECT_GE(drv->ioBytes().windows().size(), 1u);
}

} // namespace
} // namespace dssd
