/**
 * Integration tests asserting the paper's qualitative results: the
 * architecture ordering under GC/I-O interference (Fig 7, Fig 10).
 * These are shape checks — who wins — not absolute-number matches.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "hil/driver.hh"

namespace dssd
{
namespace
{

SsdConfig
cfg(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 8;
    c.geom.ways = 4;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 4;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 16;
    return c;
}

struct RunResult
{
    double ioBytesPerSec = 0;
    double gcPagesPerSec = 0;
    double p99 = 0;
    double busGcBytes = 0;
};

/**
 * Run a fixed window of DRAM-hit I/O at QD 64 while a forced GC round
 * executes, and measure I/O bandwidth, GC throughput, and tail
 * latency. DRAM-hit I/O isolates front-end contention, which is the
 * effect the paper's Fig 10(a) measures.
 */
RunResult
runInterference(ArchKind arch)
{
    SsdConfig c = cfg(arch);
    c.writeBuffer.mode = BufferMode::AlwaysHit;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.8, 0.4);

    SyntheticParams p;
    p.readRatio = 0.0;
    p.sequential = true;
    p.requestBytes = 4 * kKiB;
    p.footprintBytes = 8 * kMiB;
    p.count = 0; // unbounded; the window bounds the run
    SyntheticGenerator gen(p);
    QueueDriver drv(
        e, gen,
        [&ssd](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        64);
    drv.start();

    bool gc_done = false;
    ssd.gc().forceAll(2, [&] { gc_done = true; });

    const Tick window = 40 * tickMs;
    e.runUntil(window);
    drv.stop();
    e.run();

    RunResult r;
    r.ioBytesPerSec = drv.ioBytes().averageRate(0, window);
    Tick gc_span = std::min(ssd.gc().lastGcEnd(), window);
    if (gc_span == 0)
        gc_span = window;
    r.gcPagesPerSec = static_cast<double>(ssd.gc().pagesMoved()) /
                      ticksToSec(gc_span);
    r.p99 = drv.allLatency().percentile(99);
    r.busGcBytes =
        static_cast<double>(ssd.systemBus().channel().bytesMoved(tagGc));
    EXPECT_TRUE(gc_done) << archName(arch);
    return r;
}

class ArchComparison : public ::testing::Test
{
  protected:
    static std::map<ArchKind, RunResult> results;

    static void
    SetUpTestSuite()
    {
        for (ArchKind k :
             {ArchKind::Baseline, ArchKind::BW, ArchKind::DSSD,
              ArchKind::DSSDBus, ArchKind::DSSDNoc}) {
            results[k] = runInterference(k);
        }
    }
};

std::map<ArchKind, RunResult> ArchComparison::results;

TEST_F(ArchComparison, DssdFamilyKeepsGcOffTheSystemBus)
{
    EXPECT_GT(results[ArchKind::Baseline].busGcBytes, 0.0);
    EXPECT_GT(results[ArchKind::BW].busGcBytes, 0.0);
    // dSSD routes copybacks over the shared bus (one crossing)...
    EXPECT_LT(results[ArchKind::DSSD].busGcBytes,
              results[ArchKind::Baseline].busGcBytes);
    // ...while dSSD_b / dSSD_f avoid it entirely.
    EXPECT_DOUBLE_EQ(results[ArchKind::DSSDBus].busGcBytes, 0.0);
    EXPECT_DOUBLE_EQ(results[ArchKind::DSSDNoc].busGcBytes, 0.0);
}

TEST_F(ArchComparison, DssdNocBeatsBaselineOnIoBandwidthDuringGc)
{
    EXPECT_GT(results[ArchKind::DSSDNoc].ioBytesPerSec,
              results[ArchKind::Baseline].ioBytesPerSec);
}

TEST_F(ArchComparison, ExtraBusBandwidthAloneHelpsLess)
{
    // BW improves on Baseline but less than decoupling does (Fig 7a).
    EXPECT_GE(results[ArchKind::BW].ioBytesPerSec,
              results[ArchKind::Baseline].ioBytesPerSec * 0.99);
    EXPECT_GT(results[ArchKind::DSSDNoc].ioBytesPerSec,
              results[ArchKind::BW].ioBytesPerSec);
}

TEST_F(ArchComparison, TailLatencyCollapsesWithFullDecoupling)
{
    // Fig 10(a): dSSD_f tail-latency is dramatically lower than BW.
    EXPECT_LT(results[ArchKind::DSSDNoc].p99,
              results[ArchKind::BW].p99);
    EXPECT_LT(results[ArchKind::DSSDNoc].p99,
              results[ArchKind::Baseline].p99);
}

TEST(FnocVsDedicatedBus, ParallelLinksBeatTheSerializedBus)
{
    // Fig 7(a): dSSD_b serializes all flash-to-flash traffic on one
    // bus; the fNoC uses multiple links in parallel. Make GC clearly
    // interconnect-bound (small extra bandwidth, no host I/O) so the
    // structural difference dominates.
    auto gc_rate = [](ArchKind k) {
        SsdConfig c = cfg(k);
        c.onChipBandwidthFactor = 1.0625; // 0.5 GB/s extra on-chip BW
        Engine e;
        Ssd ssd(e, c);
        ssd.prefill(0.8, 0.4);
        bool done = false;
        ssd.gc().forceAll(2, [&] { done = true; });
        e.run();
        EXPECT_TRUE(done) << archName(k);
        Tick span = ssd.gc().lastGcEnd() - ssd.gc().firstGcStart();
        return static_cast<double>(ssd.gc().pagesMoved()) /
               ticksToSec(span);
    };
    double bus = gc_rate(ArchKind::DSSDBus);
    double noc = gc_rate(ArchKind::DSSDNoc);
    EXPECT_GT(noc, bus);
}

TEST_F(ArchComparison, EveryArchFinishesItsGcWork)
{
    for (auto &[k, r] : results)
        EXPECT_GT(r.gcPagesPerSec, 0.0) << archName(k);
}

} // namespace
} // namespace dssd
