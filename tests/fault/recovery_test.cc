/**
 * Unit tests for the block-fault recovery engine driven through stub
 * Routes: per-block dedup, repair-vs-retire policy, unremap filtering,
 * the override sink, valid-page relocation, and the front-end copyback
 * fallback route.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/recovery.hh"
#include "sim/rng.hh"

namespace dssd
{
namespace
{

FlashGeometry
smallGeom()
{
    FlashGeometry g;
    g.channels = 4;
    g.ways = 2;
    g.diesPerWay = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 16;
    g.pageBytes = 4 * kKiB;
    return g;
}

/** RecoveryEngine over a real mapping with instant stub routes. */
struct RecoveryRig
{
    Engine engine;
    PageMapping mapping;
    SystemBus bus;
    Dram dram;
    unsigned copies = 0;
    std::vector<std::string> route;
    RecoveryEngine::Routes routes;
    std::unique_ptr<RecoveryEngine> rec;

    RecoveryRig()
        : mapping(MappingParams{smallGeom()}), bus(engine, gbPerSec(8)),
          dram(engine, gbPerSec(16))
    {
        routes.copyPage = [this](const PhysAddr &, const PhysAddr &,
                                 Engine::Callback done) {
            ++copies;
            engine.schedule(10, std::move(done));
        };
        routes.channelRead = [this](const PhysAddr &, int,
                                    LatencyBreakdown *,
                                    Engine::Callback done) {
            route.push_back("read");
            engine.schedule(10, std::move(done));
        };
        routes.softDecode = [this](unsigned, std::uint64_t, int,
                                   Engine::Callback done) {
            route.push_back("ecc");
            engine.schedule(10, std::move(done));
        };
        routes.channelProgram = [this](const PhysAddr &, int,
                                       LatencyBreakdown *,
                                       Engine::Callback done) {
            route.push_back("program");
            engine.schedule(10, std::move(done));
        };
    }

    void
    build()
    {
        rec = std::make_unique<RecoveryEngine>(engine, smallGeom(),
                                               mapping, bus, dram,
                                               usToTicks(1), routes);
    }

    /** Physical address of a mapped LPN. */
    PhysAddr
    mappedAddr(Lpn lpn)
    {
        auto ppn = mapping.translate(lpn);
        EXPECT_TRUE(ppn.has_value());
        return mapping.geometry().pageAddr(*ppn);
    }
};

TEST(RecoveryEngineTest, RetiresBlockAndRelocatesValidPages)
{
    RecoveryRig rig;
    Rng rng(1);
    rig.mapping.prefill(0.5, 0.0, rng);
    rig.build();

    PhysAddr addr = rig.mappedAddr(0);
    std::uint32_t unit = rig.mapping.unitOf(addr);
    std::uint32_t valid =
        static_cast<std::uint32_t>(
            rig.mapping.validLpns(unit, addr.block).size());
    ASSERT_GT(valid, 0u);

    rig.rec->onBlockFault(addr, FaultKind::UncorrectableRead);
    rig.engine.run();

    EXPECT_EQ(rig.rec->blocksRetired(), 1u);
    EXPECT_EQ(rig.rec->blocksRepaired(), 0u);
    EXPECT_TRUE(rig.mapping.blockState(unit, addr.block).isBad);
    EXPECT_EQ(rig.rec->retirePagesCopied(), valid);
    EXPECT_EQ(rig.copies, valid);
    // Every displaced LPN landed somewhere else and stayed mapped.
    EXPECT_EQ(rig.mapping.validLpns(unit, addr.block).size(), 0u);
    EXPECT_TRUE(rig.mapping.translate(0).has_value());
}

TEST(RecoveryEngineTest, EscalatesEachBlockAtMostOnce)
{
    RecoveryRig rig;
    Rng rng(1);
    rig.mapping.prefill(0.5, 0.0, rng);
    rig.build();

    PhysAddr addr = rig.mappedAddr(0);
    rig.rec->onBlockFault(addr, FaultKind::UncorrectableRead);
    EXPECT_TRUE(rig.rec->blockFaulted(addr));
    // A retry reporting the same failing block must not retire twice.
    rig.rec->onBlockFault(addr, FaultKind::ProgramFail);
    rig.engine.run();
    EXPECT_EQ(rig.rec->blocksRetired(), 1u);
}

TEST(RecoveryEngineTest, HardwareRepairShortCircuitsRetirement)
{
    RecoveryRig rig;
    Rng rng(1);
    rig.mapping.prefill(0.5, 0.0, rng);
    rig.routes.hardwareRepair = [](const PhysAddr &) { return true; };
    rig.build();

    PhysAddr addr = rig.mappedAddr(0);
    std::uint32_t unit = rig.mapping.unitOf(addr);
    rig.rec->onBlockFault(addr, FaultKind::ProgramFail);
    rig.engine.run();

    EXPECT_EQ(rig.rec->blocksRepaired(), 1u);
    EXPECT_EQ(rig.rec->blocksRetired(), 0u);
    EXPECT_FALSE(rig.mapping.blockState(unit, addr.block).isBad);
    EXPECT_EQ(rig.copies, 0u);
}

TEST(RecoveryEngineTest, FailedHardwareRepairFallsBackToRetirement)
{
    RecoveryRig rig;
    Rng rng(1);
    rig.mapping.prefill(0.5, 0.0, rng);
    // Repair hardware present but out of spares/SRT room.
    rig.routes.hardwareRepair = [](const PhysAddr &) { return false; };
    rig.build();

    rig.rec->onBlockFault(rig.mappedAddr(0),
                          FaultKind::UncorrectableRead);
    rig.engine.run();
    EXPECT_EQ(rig.rec->blocksRepaired(), 0u);
    EXPECT_EQ(rig.rec->blocksRetired(), 1u);
}

TEST(RecoveryEngineTest, UnremapRedirectsRetirementToFtlAddress)
{
    RecoveryRig rig;
    Rng rng(1);
    rig.mapping.prefill(0.5, 0.0, rng);

    PhysAddr faulted = rig.mappedAddr(0);
    // Pretend `faulted` is a replacement block: the FTL-visible block
    // behind it is the next one over.
    PhysAddr behind = faulted;
    behind.block = (faulted.block + 1) % smallGeom().blocksPerPlane;
    rig.routes.unremap = [faulted, behind](const PhysAddr &a) {
        return a.block == faulted.block ? behind : a;
    };
    rig.build();

    rig.rec->onBlockFault(faulted, FaultKind::EraseFail);
    rig.engine.run();

    std::uint32_t unit = rig.mapping.unitOf(behind);
    EXPECT_TRUE(rig.mapping.blockState(unit, behind.block).isBad);
    EXPECT_FALSE(
        rig.mapping.blockState(unit, faulted.block).isBad);
}

TEST(RecoveryEngineTest, OverrideSinkDivertsEscalations)
{
    struct CountingSink : FaultSink
    {
        unsigned faults = 0;
        void onBlockFault(const PhysAddr &, FaultKind) override
        {
            ++faults;
        }
    } sink;

    RecoveryRig rig;
    Rng rng(1);
    rig.mapping.prefill(0.5, 0.0, rng);
    rig.build();
    rig.rec->setOverrideSink(&sink);

    rig.rec->onBlockFault(rig.mappedAddr(0),
                          FaultKind::UncorrectableRead);
    rig.engine.run();
    EXPECT_EQ(sink.faults, 1u);
    EXPECT_EQ(rig.rec->blocksRetired(), 0u);
    EXPECT_EQ(rig.rec->blocksRepaired(), 0u);
}

TEST(RecoveryEngineTest, CopybackFallbackWalksTheFrontEndRoute)
{
    RecoveryRig rig;
    rig.build();

    PhysAddr src{};
    PhysAddr dst{};
    dst.channel = 1;
    LatencyBreakdown bd;
    bool done = false;
    rig.rec->copybackFallback(src, dst, tagGc, &bd,
                              [&done] { done = true; });
    rig.engine.run();

    EXPECT_TRUE(done);
    EXPECT_EQ(rig.rec->copybackFallbacks(), 1u);
    // Re-read at the source, slow decode, then the destination
    // program — with the bus/DRAM bounce in between.
    ASSERT_EQ(rig.route.size(), 3u);
    EXPECT_EQ(rig.route[0], "read");
    EXPECT_EQ(rig.route[1], "ecc");
    EXPECT_EQ(rig.route[2], "program");
    EXPECT_GT(bd.systemBus, 0u);
    EXPECT_GT(bd.dram, 0u);
}

} // namespace
} // namespace dssd
