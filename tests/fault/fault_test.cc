/**
 * Tests for the fault-injection subsystem: sampled distributions, the
 * ECC recovery ladder, fNoC CRC retransmission, copyback abort +
 * front-end fallback, runtime block retirement/repair, and the
 * determinism / zero-cost-when-disabled guarantees.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "controller/decoupled.hh"
#include "core/dsm.hh"
#include "core/gc.hh"
#include "core/ssd.hh"
#include "fault/fault.hh"
#include "ftl/superblock.hh"
#include "noc/network.hh"

namespace dssd
{
namespace
{

FlashGeometry
smallGeom()
{
    FlashGeometry g;
    g.channels = 4;
    g.ways = 2;
    g.diesPerWay = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 16;
    g.pageBytes = 4 * kKiB;
    return g;
}

//
// FaultModel sampling
//

TEST(FaultModelTest, FixedSeedReproducesTheExactDrawSequence)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 42;
    p.rberScale = 4.0;
    FaultModel a(smallGeom(), p);
    FaultModel b(smallGeom(), p);
    PhysAddr addr{};
    for (int i = 0; i < 5000; ++i) {
        ReadOutcome oa = a.readOutcome(addr, i);
        ReadOutcome ob = b.readOutcome(addr, i);
        ASSERT_EQ(oa.severity, ob.severity) << "draw " << i;
        ASSERT_EQ(oa.retries, ob.retries) << "draw " << i;
    }
    EXPECT_EQ(a.readsClean(), b.readsClean());
    EXPECT_EQ(a.readRetryRounds(), b.readRetryRounds());
    EXPECT_EQ(a.readsSoft(), b.readsSoft());
    EXPECT_EQ(a.readsUncorrectable(), b.readsUncorrectable());
}

TEST(FaultModelTest, OutcomeRatesTrackTheConfiguredProbabilities)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 7;
    FaultModel m(smallGeom(), p);
    PhysAddr addr{};
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        m.readOutcome(addr, 0);
    // Fresh block at zero retention: stress == 1, so the tail is
    // retry 2%, soft 0.4%, uncorrectable 0.05% of draws.
    double clean = static_cast<double>(m.readsClean()) / n;
    EXPECT_GT(clean, 0.96);
    EXPECT_LT(clean, 0.99);
    EXPECT_GT(m.readRetryRounds(), 0u);
    EXPECT_GT(m.readsSoft(), 20u);
    EXPECT_LT(m.readsSoft(), 200u);
    EXPECT_LT(m.readsUncorrectable(), 40u);
}

TEST(FaultModelTest, WearAndRetentionRaiseTheErrorRate)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 7;
    FaultModel fresh(smallGeom(), p);
    FaultModel worn(smallGeom(), p);
    PhysAddr addr{};
    // 200 P/E cycles: stress = 1 + 0.02 * 200 = 5.
    for (int i = 0; i < 200; ++i)
        worn.notifyErase(addr);
    EXPECT_EQ(worn.peCount(addr), 200u);
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        fresh.readOutcome(addr, 0);
        worn.readOutcome(addr, 0);
    }
    EXPECT_LT(worn.readsClean(), fresh.readsClean());
    EXPECT_GT(worn.readsSoft(), fresh.readsSoft());
}

TEST(FaultModelTest, ChannelStreamsAreIndependent)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 11;
    p.rberScale = 4.0;
    FaultModel a(smallGeom(), p);
    FaultModel b(smallGeom(), p);
    PhysAddr ch0{}, ch1{};
    ch1.channel = 1;
    // Interleave draws on channel 0 in model a only; channel 1's
    // sequence must be unperturbed.
    std::vector<ReadSeverity> seq_a, seq_b;
    for (int i = 0; i < 1000; ++i) {
        a.readOutcome(ch0, i);
        a.readOutcome(ch0, i);
        seq_a.push_back(a.readOutcome(ch1, i).severity);
        seq_b.push_back(b.readOutcome(ch1, i).severity);
    }
    EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultModelTest, ForcedFailuresAndBlockFaultEscalation)
{
    FaultParams p;
    p.enabled = true;
    p.programFailProb = 0.0;
    p.eraseFailProb = 0.0;
    FaultModel m(smallGeom(), p);
    PhysAddr addr{};
    EXPECT_FALSE(m.programFails(addr));
    EXPECT_FALSE(m.eraseFails(addr));
    m.debugForceProgramFail();
    m.debugForceEraseFail();
    EXPECT_TRUE(m.programFails(addr));
    EXPECT_TRUE(m.eraseFails(addr));
    EXPECT_EQ(m.programFailures(), 1u);
    EXPECT_EQ(m.eraseFailures(), 1u);

    PhysAddr seen{};
    FaultKind kind = FaultKind::UncorrectableRead;
    int calls = 0;
    m.setSink([&](const PhysAddr &a, FaultKind k) {
        seen = a;
        kind = k;
        ++calls;
    });
    addr.block = 3;
    m.reportBlockFault(addr, FaultKind::ProgramFail);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(seen.block, 3u);
    EXPECT_EQ(kind, FaultKind::ProgramFail);
    EXPECT_EQ(m.blockFaults(), 1u);
}

//
// Recovery ladder
//

struct LadderRig
{
    Engine engine;
    EccEngine ecc{engine, "ecc", EccParams{}};
    FaultParams fp;
    std::unique_ptr<FaultModel> fault;
    unsigned rereads = 0;
    ReadSeverity result = ReadSeverity::Clean;
    Tick doneAt = 0;

    LadderRig()
    {
        fp.enabled = true;
        fault = std::make_unique<FaultModel>(smallGeom(), fp);
    }

    /** Run the ladder over one page; re-reads take 100 ticks each. */
    void
    run(FaultModel *fm)
    {
        PhysAddr addr{};
        runReadRecovery(
            engine, ecc, fm, addr, 4 * kKiB, tagIo, nullptr,
            [this](Engine::Callback cb) {
                ++rereads;
                engine.schedule(100, std::move(cb));
            },
            [this](ReadSeverity sev) {
                result = sev;
                doneAt = engine.now();
            });
        engine.run();
    }
};

TEST(RecoveryLadderTest, CleanIsOneDecode)
{
    LadderRig rig;
    rig.fault->debugForceReadOutcome(ReadSeverity::Clean, 0);
    rig.run(rig.fault.get());
    EXPECT_EQ(rig.result, ReadSeverity::Clean);
    EXPECT_EQ(rig.rereads, 0u);
    EXPECT_EQ(rig.ecc.cleanDecodes(), 1u);
    EXPECT_EQ(rig.ecc.retryRounds(), 0u);
    EXPECT_EQ(rig.ecc.softDecodes(), 0u);
}

TEST(RecoveryLadderTest, NullFaultModelMatchesCleanTiming)
{
    LadderRig none;
    none.run(nullptr);
    LadderRig clean;
    clean.fault->debugForceReadOutcome(ReadSeverity::Clean, 0);
    clean.run(clean.fault.get());
    EXPECT_EQ(none.result, ReadSeverity::Clean);
    EXPECT_EQ(none.doneAt, clean.doneAt);
    EXPECT_EQ(none.rereads, 0u);
}

TEST(RecoveryLadderTest, RetryRunsTheRequestedRounds)
{
    LadderRig rig;
    rig.fault->debugForceReadOutcome(ReadSeverity::Retry, 2);
    rig.run(rig.fault.get());
    EXPECT_EQ(rig.result, ReadSeverity::Retry);
    EXPECT_EQ(rig.rereads, 2u);
    EXPECT_EQ(rig.ecc.retryRounds(), 2u);
    EXPECT_EQ(rig.ecc.softDecodes(), 0u);
    EXPECT_EQ(rig.ecc.uncorrectable(), 0u);
}

TEST(RecoveryLadderTest, SoftExhaustsRetriesThenSlowDecodes)
{
    LadderRig rig;
    rig.fault->debugForceReadOutcome(ReadSeverity::Soft, 3);
    rig.run(rig.fault.get());
    EXPECT_EQ(rig.result, ReadSeverity::Soft);
    EXPECT_EQ(rig.rereads, 3u);
    EXPECT_EQ(rig.ecc.retryRounds(), 3u);
    EXPECT_EQ(rig.ecc.softDecodes(), 1u);
    EXPECT_EQ(rig.ecc.uncorrectable(), 0u);
}

TEST(RecoveryLadderTest, UncorrectableChargesTheWholeLadder)
{
    LadderRig rig;
    rig.fault->debugForceReadOutcome(ReadSeverity::Uncorrectable, 3);
    rig.run(rig.fault.get());
    EXPECT_EQ(rig.result, ReadSeverity::Uncorrectable);
    EXPECT_EQ(rig.rereads, 3u);
    EXPECT_EQ(rig.ecc.uncorrectable(), 1u);
    EXPECT_EQ(rig.ecc.softDecodes(), 1u); // the failed soft pass ran
}

TEST(RecoveryLadderTest, EscalationCostsStrictlyIncrease)
{
    Tick cost[4];
    ReadSeverity sevs[] = {ReadSeverity::Clean, ReadSeverity::Retry,
                           ReadSeverity::Soft,
                           ReadSeverity::Uncorrectable};
    unsigned retries[] = {0, 1, 1, 1};
    for (int i = 0; i < 4; ++i) {
        LadderRig rig;
        rig.fault->debugForceReadOutcome(sevs[i], retries[i]);
        rig.run(rig.fault.get());
        cost[i] = rig.doneAt;
    }
    EXPECT_LT(cost[0], cost[1]); // retry adds a re-read + decode
    EXPECT_LT(cost[1], cost[2]); // soft decode is slower still
    // Uncorrectable charges the same failed ladder as soft.
    EXPECT_EQ(cost[2], cost[3]);
}

TEST(RecoveryLadderTest, EccOccupancyGaugesTrackThePipeline)
{
    Engine e;
    EccEngine ecc(e, "ecc", EccParams{});
    EXPECT_EQ(ecc.inFlight(), 0u);
    ecc.process(4 * kKiB, tagIo, [] {});
    ecc.process(4 * kKiB, tagIo, [] {});
    EXPECT_EQ(ecc.inFlight(), 2u);
    EXPECT_GT(ecc.queueDelay(), 0u);
    e.run();
    EXPECT_EQ(ecc.inFlight(), 0u);
    EXPECT_EQ(ecc.maxInFlight(), 2u);
    EXPECT_EQ(ecc.queueDelay(), 0u);
}

//
// fNoC CRC retransmission
//

NocParams
nocParams()
{
    NocParams p;
    p.linkBandwidth = 1.0;
    p.hopLatency = 10;
    p.bufferPackets = 4;
    p.headerBytes = 0;
    return p;
}

TEST(NocFaultTest, CorruptedPacketRetransmitsAndStillDelivers)
{
    Engine clean_e;
    NocNetwork clean(clean_e, std::make_unique<Mesh1D>(4), nocParams());
    Tick clean_done = 0;
    clean.send(0, 3, 100, tagGc, [&] { clean_done = clean_e.now(); });
    clean_e.run();

    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(4), nocParams());
    net.debugCorruptNext();
    Tick done = 0;
    net.send(0, 3, 100, tagGc, [&] { done = e.now(); });
    e.run();

    EXPECT_EQ(net.packetsDelivered(), 1u);
    EXPECT_EQ(net.crcDrops(), 1u);
    EXPECT_EQ(net.retransmits(), 1u);
    EXPECT_EQ(net.packetsInFlight(), 0u);
    // NACK delay plus a full re-traversal.
    EXPECT_GE(done, clean_done + usToTicks(2) + (clean_done - 0) / 2);
}

TEST(NocFaultTest, RetransmitBurstConservesPacketsAndCredits)
{
    Engine e;
    NocParams p = nocParams();
    p.bufferPackets = 1; // tightest credit budget
    NocNetwork net(e, std::make_unique<Ring>(8), p);
    for (int i = 0; i < 6; ++i)
        net.debugCorruptNext();
    unsigned delivered = 0;
    for (unsigned i = 0; i < 32; ++i) {
        net.send(i % 8, (i * 5 + 3) % 8, 512, tagGc,
                 [&] { ++delivered; });
    }
    e.run();
    EXPECT_EQ(delivered, 32u);
    EXPECT_EQ(net.packetsDelivered(), 32u);
    EXPECT_EQ(net.crcDrops(), 6u);
    EXPECT_EQ(net.retransmits(), 6u);
    EXPECT_EQ(net.packetsInFlight(), 0u);
}

TEST(NocFaultTest, CrcProbabilityDrawsFromTheDedicatedStream)
{
    FaultParams fp;
    fp.enabled = true;
    fp.nocCrcProb = 0.2;
    fp.seed = 3;
    FaultModel fm(smallGeom(), fp);
    Engine e;
    NocNetwork net(e, std::make_unique<Mesh1D>(4), nocParams());
    net.setFaultModel(&fm);
    unsigned delivered = 0;
    for (unsigned i = 0; i < 50; ++i)
        net.send(0, 3, 256, tagGc, [&] { ++delivered; });
    e.run();
    EXPECT_EQ(delivered, 50u);
    EXPECT_GT(net.crcDrops(), 0u);
    EXPECT_EQ(net.crcDrops(), net.retransmits());
    EXPECT_EQ(net.crcDrops(), fm.packetsCorrupted());
    EXPECT_EQ(net.packetsInFlight(), 0u);
}

//
// Copyback abort + front-end fallback
//

TEST(CopybackFaultTest, UncorrectablePageAbortsAndFallsBack)
{
    Engine engine;
    FlashGeometry g = smallGeom();
    ChannelParams cp;
    cp.busBandwidth = 1.0;
    FlashChannel ch(engine, g, ullTiming(), 0, cp);
    DecoupledParams dp;
    DecoupledController dc(engine, ch, dp);

    FaultParams fp;
    fp.enabled = true;
    FaultModel fm(g, fp);
    dc.setFaultModel(&fm);
    unsigned fallbacks = 0;
    Tick fallback_at = 0;
    dc.setCopybackFallback([&](const PhysAddr &, const PhysAddr &, int,
                               LatencyBreakdown *, Engine::Callback done) {
        ++fallbacks;
        fallback_at = engine.now();
        engine.schedule(500, std::move(done));
    });

    fm.debugForceReadOutcome(ReadSeverity::Uncorrectable, 0);
    PhysAddr src{}, dst{};
    dst.block = 3;
    bool done = false;
    dc.globalCopyback(src, dst, nullptr, tagGc, [&] { done = true; });
    engine.run();

    EXPECT_TRUE(done);
    EXPECT_EQ(fallbacks, 1u);
    EXPECT_GT(fallback_at, 0u);
    EXPECT_EQ(dc.copybacksAborted(), 1u);
    EXPECT_EQ(dc.copybacksCompleted(), 1u);
    EXPECT_EQ(dc.copybacksInFlight(), 0u);
    // The fallback completion still walks the remaining stages so the
    // cumulative stage algebra holds.
    EXPECT_EQ(dc.stageCount(CopybackStage::RE), 1u);
    EXPECT_EQ(dc.stageCount(CopybackStage::W), 1u);
    // The unrecoverable source block was escalated.
    EXPECT_EQ(fm.blockFaults(), 1u);
}

TEST(CopybackFaultTest, CleanCopybackIsUntouchedByAnIdleFaultModel)
{
    auto run = [](FaultModel *fm) {
        Engine engine;
        FlashGeometry g = smallGeom();
        ChannelParams cp;
        cp.busBandwidth = 1.0;
        FlashChannel ch(engine, g, ullTiming(), 0, cp);
        DecoupledParams dp;
        DecoupledController dc(engine, ch, dp);
        dc.setFaultModel(fm);
        PhysAddr src{}, dst{};
        dst.block = 3;
        dc.globalCopyback(src, dst, nullptr, tagGc, [] {});
        engine.run();
        return engine.now();
    };
    FaultParams fp;
    fp.enabled = true;
    fp.readRetryProb = 0.0;
    fp.readSoftProb = 0.0;
    fp.readUncorrProb = 0.0;
    FlashGeometry g = smallGeom();
    FaultModel idle(g, fp);
    EXPECT_EQ(run(nullptr), run(&idle));
}

//
// FTL retirement
//

TEST(SuperblockTest, RetireSuperblockIsIdempotent)
{
    FlashGeometry g = smallGeom();
    SuperblockMapping map(g, 0.0);
    std::uint32_t free0 = map.freeSuperblocks();
    map.retireSuperblock(2);
    EXPECT_EQ(map.deadSuperblocks(), 1u);
    EXPECT_EQ(map.info(2).state, SuperblockState::Dead);
    EXPECT_EQ(map.freeSuperblocks(), free0 - 1);
    // A second retirement (e.g. a fault escalating on a block of an
    // already-dead group) must not double-count.
    map.retireSuperblock(2);
    EXPECT_EQ(map.deadSuperblocks(), 1u);
    EXPECT_EQ(map.freeSuperblocks(), free0 - 1);
    EXPECT_EQ(map.info(2).state, SuperblockState::Dead);
}

//
// Ssd-level fault handling
//

SsdConfig
faultSsdConfig(ArchKind arch)
{
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    // Tiny write buffer: host writes overflow it immediately, so the
    // flusher programs the flash within the test window.
    c.writeBuffer.capacityPages = 4;
    c.fault.enabled = true;
    // No random faults; tests force the exact failures they need.
    c.fault.readRetryProb = 0.0;
    c.fault.readSoftProb = 0.0;
    c.fault.readUncorrProb = 0.0;
    c.fault.programFailProb = 0.0;
    c.fault.eraseFailProb = 0.0;
    return c;
}

TEST(SsdFaultTest, ForcedProgramFailRepairsViaRbtOnDecoupled)
{
    Engine e;
    SsdConfig c = faultSsdConfig(ArchKind::DSSDNoc);
    Ssd ssd(e, c);
    ASSERT_NE(ssd.faultModel(), nullptr);
    ssd.prefill(0.5, 0.2);

    std::size_t rbt0 = 0;
    for (unsigned ch = 0; ch < c.geom.channels; ++ch)
        rbt0 += ssd.decoupledController(ch)->rbt().size();
    EXPECT_EQ(rbt0, c.geom.channels * c.fault.rbtSparesPerChannel);

    ssd.faultModel()->debugForceProgramFail();
    unsigned done = 0;
    for (Lpn l = 0; l < 32; ++l)
        ssd.writePage(l, [&] { ++done; });
    e.run();

    EXPECT_EQ(done, 32u);
    EXPECT_EQ(ssd.faultModel()->programFailures(), 1u);
    EXPECT_EQ(ssd.faultModel()->blockFaults(), 1u);
    // The faulted block was remapped to an RBT spare in hardware.
    std::size_t remaps = 0, rbt1 = 0;
    for (unsigned ch = 0; ch < c.geom.channels; ++ch) {
        remaps += ssd.decoupledController(ch)->srt().activeEntries();
        rbt1 += ssd.decoupledController(ch)->rbt().size();
    }
    EXPECT_EQ(remaps, 1u);
    EXPECT_EQ(rbt1, rbt0 - 1);
}

TEST(SsdFaultTest, ForcedProgramFailRetiresBlockOnBaseline)
{
    Engine e;
    SsdConfig c = faultSsdConfig(ArchKind::Baseline);
    Ssd ssd(e, c);
    ASSERT_NE(ssd.faultModel(), nullptr);
    ssd.prefill(0.5, 0.2);

    ssd.faultModel()->debugForceProgramFail();
    unsigned done = 0;
    for (Lpn l = 0; l < 32; ++l)
        ssd.writePage(l, [&] { ++done; });
    e.run();

    EXPECT_EQ(done, 32u);
    EXPECT_EQ(ssd.faultModel()->blockFaults(), 1u);
    // Exactly one block went bad in the FTL; its pages were relocated.
    unsigned bad = 0;
    PageMapping &map = ssd.mapping();
    for (std::uint32_t u = 0; u < map.unitCount(); ++u) {
        for (std::uint32_t b = 0; b < c.geom.blocksPerPlane; ++b)
            bad += map.blockState(u, b).isBad ? 1 : 0;
    }
    EXPECT_EQ(bad, 1u);
}

TEST(SsdFaultTest, SameFaultSeedIsBitwiseDeterministic)
{
    auto run = [] {
        Engine e;
        SsdConfig c = faultSsdConfig(ArchKind::DSSDNoc);
        // Real probabilities, cranked up so faults actually land.
        c.fault = FaultParams{};
        c.fault.enabled = true;
        c.fault.seed = 123;
        c.fault.rberScale = 8.0;
        Ssd ssd(e, c);
        ssd.prefill(0.6, 0.3);
        unsigned done = 0;
        for (Lpn l = 0; l < 64; ++l) {
            ssd.readPage(l, [&] { ++done; });
            ssd.writePage(l + 64, [&] { ++done; });
        }
        ssd.gc().forceAll(2, [] {});
        e.run();
        const FaultModel &f = *ssd.faultModel();
        return std::make_tuple(e.now(), done, f.readsClean(),
                               f.readRetryRounds(), f.readsSoft(),
                               f.readsUncorrectable(), f.blockFaults());
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<3>(a), 0u); // the ladder actually ran
}

TEST(SsdFaultTest, DisabledFaultsMatchEnabledZeroProbabilityTiming)
{
    auto run = [](bool enabled) {
        Engine e;
        SsdConfig c = faultSsdConfig(ArchKind::DSSDNoc);
        c.fault.enabled = enabled;
        c.fault.rbtSparesPerChannel = 0; // identical FTL visibility
        Ssd ssd(e, c);
        ssd.prefill(0.5, 0.2);
        unsigned done = 0;
        for (Lpn l = 0; l < 32; ++l) {
            ssd.readPage(l, [&] { ++done; });
            ssd.writePage(l + 32, [&] { ++done; });
        }
        ssd.gc().forceAll(1, [] {});
        e.run();
        return std::make_pair(e.now(), done);
    };
    // Zero-probability draws never perturb the event schedule, so the
    // enabled-but-quiet run finishes at the identical tick.
    EXPECT_EQ(run(false), run(true));
}

//
// DSM integration: a block dies mid-workload and RECYCLED repairs it
//

TEST(DsmFaultTest, EscalatedFaultMergesIntoWearAndGetsRepaired)
{
    SsdConfig c = makeConfig(ArchKind::DSSDNoc);
    c.geom = paperTlcGeometry();
    c.geom.blocksPerPlane = 12;
    c.geom.pagesPerBlock = 4;
    c.timing = tlcTiming();
    c.fault.enabled = true;
    c.fault.readRetryProb = 0.0;
    c.fault.readSoftProb = 0.0;
    c.fault.readUncorrProb = 0.0;
    c.fault.programFailProb = 0.0;
    c.fault.eraseFailProb = 0.0;

    Engine engine;
    Ssd ssd(engine, c);
    ASSERT_NE(ssd.faultModel(), nullptr);
    SuperblockMapping map(c.geom, 0.0);

    DsmParams p;
    p.scheme = DsmScheme::Recycled;
    p.wear.peMean = 100000; // no wear-out: only the forced fault fails
    p.wear.peSigma = 1;
    p.seed = 5;
    DynamicSuperblockEngine eng(ssd, map, p);

    // The engine installed itself as the fault sink.
    ssd.faultModel()->debugForceProgramFail();
    bool done = false;
    eng.run(60, [&] { done = true; });
    engine.run();

    EXPECT_TRUE(done);
    EXPECT_EQ(eng.stats().faultEvents, 1u);
    // RECYCLED repaired the faulted sub-block from the RBT instead of
    // killing the superblock.
    EXPECT_GE(eng.stats().remapEvents, 1u);
    EXPECT_GT(eng.stats().repairPagesCopied, 0u);
    EXPECT_EQ(eng.stats().deadSuperblocks, 0u);
    EXPECT_EQ(map.deadSuperblocks(), 0u);
}

} // namespace
} // namespace dssd
