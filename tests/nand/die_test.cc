/** Unit tests for the flash die model. */

#include <gtest/gtest.h>

#include "nand/die.hh"

namespace dssd
{
namespace
{

FlashGeometry
geom()
{
    FlashGeometry g;
    g.channels = 1;
    g.ways = 1;
    g.planesPerDie = 4;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 16;
    return g;
}

TEST(DieTest, SinglePlaneReadOccupiesOnePlane)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick end = d.reserve(NandOp::Read, 0b0001, 0, 0);
    EXPECT_EQ(end, usToTicks(5));
    EXPECT_EQ(d.planeBusyUntil(0), usToTicks(5));
    EXPECT_EQ(d.planeBusyUntil(1), 0u);
    EXPECT_EQ(d.reads(), 1u);
}

TEST(DieTest, SamePlaneOpsSerialize)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick end1 = d.reserve(NandOp::Read, 0b0001, 0, 0);
    Tick end2 = d.reserve(NandOp::Read, 0b0001, 0, 0);
    EXPECT_EQ(end2, end1 + usToTicks(5));
}

TEST(DieTest, DifferentPlanesRunInParallel)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick end1 = d.reserve(NandOp::Program, 0b0001, 0, 0);
    Tick end2 = d.reserve(NandOp::Program, 0b0010, 0, 0);
    EXPECT_EQ(end1, end2);
}

TEST(DieTest, MultiPlaneOpOccupiesAllPlanes)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick end = d.reserve(NandOp::Program, 0b1111, 0, 0);
    for (std::uint32_t p = 0; p < 4; ++p)
        EXPECT_EQ(d.planeBusyUntil(p), end);
}

TEST(DieTest, MultiPlaneWaitsForBusiestPlane)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick first = d.reserve(NandOp::Program, 0b0001, 0, 0); // 50us
    Tick multi = d.reserve(NandOp::Read, 0b0011, 0, 0);
    EXPECT_EQ(multi, first + usToTicks(5));
}

TEST(DieTest, EarliestConstraintDelaysStart)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick end = d.reserve(NandOp::Read, 0b0001, 0, usToTicks(100));
    EXPECT_EQ(end, usToTicks(105));
}

TEST(DieTest, EraseTakesMilliseconds)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick end = d.reserve(NandOp::Erase, 0b0001, 0, 0);
    EXPECT_EQ(end, msToTicks(1));
    EXPECT_EQ(d.erases(), 1u);
}

TEST(DieTest, LocalCopybackIsReadPlusProgram)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    Tick end = d.reserve(NandOp::LocalCopyback, 0b0001, 0, 0);
    EXPECT_EQ(end, usToTicks(55));
    EXPECT_EQ(d.reads(), 1u);
    EXPECT_EQ(d.programs(), 1u);
}

TEST(DieTest, BusyTicksAccountPerPlane)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    d.reserve(NandOp::Read, 0b0011, 0, 0); // 2 planes x 5us
    EXPECT_EQ(d.busyTicks(), 2 * usToTicks(5));
}

TEST(DieDeathTest, EmptyPlaneMaskPanics)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    EXPECT_DEATH(d.reserve(NandOp::Read, 0, 0, 0), "empty plane mask");
}

TEST(DieDeathTest, MultiPlaneLocalCopybackPanics)
{
    Engine e;
    FlashDie d(e, geom(), ullTiming());
    EXPECT_DEATH(d.reserve(NandOp::LocalCopyback, 0b0011, 0, 0),
                 "single plane");
}

} // namespace
} // namespace dssd
