/** Unit tests for flash geometry and physical addressing. */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "nand/geometry.hh"

namespace dssd
{
namespace
{

FlashGeometry
smallGeom()
{
    FlashGeometry g;
    g.channels = 2;
    g.ways = 2;
    g.diesPerWay = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 4;
    g.pagesPerBlock = 8;
    g.pageBytes = 4 * kKiB;
    return g;
}

TEST(GeometryTest, DerivedCounts)
{
    FlashGeometry g = smallGeom();
    EXPECT_EQ(g.diesPerChannel(), 4u);
    EXPECT_EQ(g.totalDies(), 8u);
    EXPECT_EQ(g.blocksPerDie(), 8u);
    EXPECT_EQ(g.pagesPerDie(), 64u);
    EXPECT_EQ(g.totalBlocks(), 64u);
    EXPECT_EQ(g.totalPages(), 512u);
    EXPECT_EQ(g.capacityBytes(), 512u * 4 * kKiB);
}

TEST(GeometryTest, PaperUllGeometryMatchesTable1)
{
    FlashGeometry g = paperUllGeometry();
    EXPECT_EQ(g.channels, 8u);
    EXPECT_EQ(g.ways, 8u);
    EXPECT_EQ(g.diesPerWay, 1u);
    EXPECT_EQ(g.planesPerDie, 8u);
    EXPECT_EQ(g.blocksPerPlane, 1384u);
    EXPECT_EQ(g.pagesPerBlock, 384u);
    EXPECT_EQ(g.pageBytes, 4 * kKiB);
}

TEST(GeometryTest, PaperTlcGeometryMatchesFootnote10)
{
    FlashGeometry g = paperTlcGeometry();
    EXPECT_EQ(g.channels, 8u);
    EXPECT_EQ(g.ways, 4u);
    EXPECT_EQ(g.diesPerWay, 2u);
    EXPECT_EQ(g.planesPerDie, 2u);
    EXPECT_EQ(g.pagesPerBlock, 32u);
    EXPECT_EQ(g.pageBytes, 16 * kKiB);
}

TEST(GeometryTest, PageIndexRoundTripsEveryPage)
{
    FlashGeometry g = smallGeom();
    for (std::uint64_t i = 0; i < g.totalPages(); ++i) {
        PhysAddr a = g.pageAddr(i);
        EXPECT_EQ(g.pageIndex(a), i);
        EXPECT_LT(a.channel, g.channels);
        EXPECT_LT(a.way, g.ways);
        EXPECT_LT(a.die, g.diesPerWay);
        EXPECT_LT(a.plane, g.planesPerDie);
        EXPECT_LT(a.block, g.blocksPerPlane);
        EXPECT_LT(a.page, g.pagesPerBlock);
    }
}

TEST(GeometryTest, PageIndexIsDense)
{
    FlashGeometry g = smallGeom();
    PhysAddr a{};
    std::uint64_t prev = g.pageIndex(a);
    EXPECT_EQ(prev, 0u);
    a.page = 1;
    EXPECT_EQ(g.pageIndex(a), 1u);
}

TEST(GeometryTest, DieIndexFlattens)
{
    FlashGeometry g = smallGeom();
    PhysAddr a{};
    a.channel = 1;
    a.way = 1;
    a.die = 1;
    // (1*2 + 1)*2 + 1 = 7
    EXPECT_EQ(g.dieIndex(a), 7u);
    EXPECT_EQ(g.dieIndexInChannel(a), 3u);
}

TEST(GeometryTest, MultiPlaneBytes)
{
    FlashGeometry g = smallGeom();
    EXPECT_EQ(g.multiPlaneBytes(1), 4 * kKiB);
    EXPECT_EQ(g.multiPlaneBytes(2), 8 * kKiB);
}

TEST(GeometryDeathTest, ZeroDimensionIsFatal)
{
    FlashGeometry g = smallGeom();
    g.channels = 0;
    EXPECT_DEATH(g.validate(), "non-zero");
}

} // namespace
} // namespace dssd
