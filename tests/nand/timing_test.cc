/** Unit tests for NAND timing parameter sets. */

#include <gtest/gtest.h>

#include "nand/timing.hh"

namespace dssd
{
namespace
{

TEST(TimingTest, UllMatchesTable1)
{
    NandTiming t = ullTiming();
    EXPECT_EQ(t.readMin, usToTicks(5));
    EXPECT_EQ(t.readMax, usToTicks(5));
    EXPECT_EQ(t.programMin, usToTicks(50));
    EXPECT_EQ(t.programMax, usToTicks(50));
    EXPECT_EQ(t.erase, msToTicks(1));
}

TEST(TimingTest, TlcMatchesTable1)
{
    NandTiming t = tlcTiming();
    EXPECT_EQ(t.readMin, usToTicks(60));
    EXPECT_EQ(t.readMax, usToTicks(95));
    EXPECT_EQ(t.programMin, usToTicks(200));
    EXPECT_EQ(t.programMax, usToTicks(500));
    EXPECT_EQ(t.erase, msToTicks(2));
}

TEST(TimingTest, UllLatencyIsUniform)
{
    NandTiming t = ullTiming();
    for (std::uint32_t p = 0; p < 10; ++p)
        EXPECT_EQ(t.readLatency(p, 384), usToTicks(5));
}

TEST(TimingTest, TlcLatencySpansPublishedRange)
{
    NandTiming t = tlcTiming();
    Tick lo = maxTick, hi = 0;
    for (std::uint32_t p = 0; p < 32; ++p) {
        Tick r = t.readLatency(p, 32);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
        EXPECT_GE(r, t.readMin);
        EXPECT_LE(r, t.readMax);
    }
    EXPECT_EQ(lo, t.readMin);
    EXPECT_EQ(hi, t.readMax);
}

TEST(TimingTest, TlcLatencyIsDeterministicPerPage)
{
    NandTiming t = tlcTiming();
    for (std::uint32_t p = 0; p < 32; ++p)
        EXPECT_EQ(t.programLatency(p, 32), t.programLatency(p, 32));
}

TEST(TimingTest, UnitConversions)
{
    EXPECT_EQ(usToTicks(5), 5000u);
    EXPECT_EQ(msToTicks(1), 1000000u);
    EXPECT_DOUBLE_EQ(ticksToUs(5000), 5.0);
    EXPECT_DOUBLE_EQ(toGbPerSec(gbPerSec(8.0)), 8.0);
    EXPECT_DOUBLE_EQ(mbPerSec(1000.0), gbPerSec(1.0));
}

} // namespace
} // namespace dssd
