/** Unit tests for the Sec 6.5 area-overhead model. */

#include <gtest/gtest.h>

#include "overhead/area.hh"

namespace dssd
{
namespace
{

TEST(AreaTest, MatchesPaperPercentages)
{
    AreaParams p;
    AreaReport r = computeArea(p);
    // "approximately 1.5% overhead of the entire SSD controller"
    EXPECT_NEAR(r.eccPct, 1.5, 0.1);
    // "approximately 0.25% area overhead"
    EXPECT_NEAR(r.routerPct, 0.25, 0.01);
    // "an additional 2.46% area overhead"
    EXPECT_NEAR(r.dbufPct, 2.46, 0.01);
    EXPECT_NEAR(r.totalPct, 1.5 + 0.25 + 2.46, 0.2);
}

TEST(AreaTest, SrtTableIsFourKiB)
{
    AreaParams p;
    p.srtEntries = 1024;
    p.srtEntryBits = 32;
    AreaReport r = computeArea(p);
    // "the SRT table overhead is approximately 4kB"
    EXPECT_DOUBLE_EQ(r.srtBytesPerController, 4096.0);
}

TEST(AreaTest, RbtTinyWithoutReservation)
{
    AreaParams p;
    p.reservedFraction = 0.0;
    AreaReport r = computeArea(p);
    // "approximately 32 bits for each decoupled controller"
    EXPECT_DOUBLE_EQ(r.rbtBytesPerController, 4.0);
}

TEST(AreaTest, ReservRbtAboutOneKiBPerChannel)
{
    AreaParams p;
    p.reservedFraction = 0.07;
    p.blocksPerChannel = 11072 / 4; // per-way share: ~2768 blocks
    AreaReport r = computeArea(p);
    // "around 1KB per channel for 7%"
    EXPECT_NEAR(r.rbtBytesPerController, 1024.0, 300.0);
}

TEST(AreaTest, ScalesWithChannelCount)
{
    AreaParams p8;
    AreaParams p16 = p8;
    p16.channels = 16;
    AreaReport r8 = computeArea(p8);
    AreaReport r16 = computeArea(p16);
    EXPECT_NEAR(r16.eccPct, 2 * r8.eccPct, 1e-9);
    EXPECT_NEAR(r16.routerPct, 2 * r8.routerPct, 1e-9);
}

} // namespace
} // namespace dssd
