/** Unit tests for the host queue driver. */

#include <gtest/gtest.h>

#include "hil/driver.hh"

namespace dssd
{
namespace
{

/** A fake SSD that completes each request after a fixed delay. */
struct FakeSsd
{
    Engine &engine;
    Tick serviceTime;
    unsigned inFlight = 0;
    unsigned maxInFlight = 0;

    void
    submit(const IoRequest &, Engine::Callback done)
    {
        ++inFlight;
        maxInFlight = std::max(maxInFlight, inFlight);
        engine.schedule(serviceTime, [this, done = std::move(done)] {
            --inFlight;
            done();
        });
    }
};

TEST(QueueDriverTest, CompletesAllRequests)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p;
    p.count = 50;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    8);
    bool finished = false;
    drv.onFinished([&] { finished = true; });
    drv.start();
    e.run();
    EXPECT_TRUE(finished);
    EXPECT_TRUE(drv.finished());
    EXPECT_EQ(drv.completed(), 50u);
    EXPECT_EQ(drv.outstanding(), 0u);
}

TEST(QueueDriverTest, RespectsQueueDepth)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    SyntheticParams p;
    p.count = 100;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    16);
    drv.start();
    e.run();
    EXPECT_EQ(ssd.maxInFlight, 16u);
}

TEST(QueueDriverTest, LatencyStatsMatchServiceTime)
{
    Engine e;
    FakeSsd ssd{e, 500};
    SyntheticParams p;
    p.count = 10;
    p.readRatio = 1.0;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    1); // QD 1: no queueing delay
    drv.start();
    e.run();
    EXPECT_EQ(drv.readLatency().count(), 10u);
    EXPECT_DOUBLE_EQ(drv.readLatency().mean(), 500.0);
    EXPECT_EQ(drv.writeLatency().count(), 0u);
}

TEST(QueueDriverTest, BandwidthSeriesAccumulatesBytes)
{
    Engine e;
    FakeSsd ssd{e, 10};
    SyntheticParams p;
    p.count = 8;
    p.requestBytes = 4 * kKiB;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.start();
    e.run();
    EXPECT_DOUBLE_EQ(drv.ioBytes().total(), 8.0 * 4 * kKiB);
}

TEST(QueueDriverTest, TimestampedRequestsWait)
{
    Engine e;
    FakeSsd ssd{e, 1};
    // A tiny trace with a request at t = 5 ms.
    struct OneShot : Generator
    {
        int n = 0;
        std::string nm = "oneshot";
        std::optional<IoRequest> next() override
        {
            if (n++)
                return std::nullopt;
            IoRequest r;
            r.issueAt = 5 * tickMs;
            r.bytes = 4096;
            return r;
        }
        const std::string &name() const override { return nm; }
    } gen;
    Tick completed_at = 0;
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.onFinished([&] { completed_at = e.now(); });
    drv.start();
    e.run();
    EXPECT_GE(completed_at, 5 * tickMs);
}

TEST(QueueDriverTest, StopHaltsIssuing)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p;
    p.count = 0; // unbounded
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.start();
    e.runUntil(10 * tickMs);
    drv.stop();
    e.run();
    EXPECT_TRUE(drv.finished());
    EXPECT_GT(drv.completed(), 0u);
}

} // namespace
} // namespace dssd
