/** Unit tests for the host queue driver. */

#include <gtest/gtest.h>

#include "hil/driver.hh"

namespace dssd
{
namespace
{

/** A fake SSD that completes each request after a fixed delay. */
struct FakeSsd
{
    Engine &engine;
    Tick serviceTime;
    unsigned inFlight = 0;
    unsigned maxInFlight = 0;

    void
    submit(const IoRequest &, Engine::Callback done)
    {
        ++inFlight;
        maxInFlight = std::max(maxInFlight, inFlight);
        engine.schedule(serviceTime, [this, done = std::move(done)] {
            --inFlight;
            done();
        });
    }
};

TEST(QueueDriverTest, CompletesAllRequests)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p;
    p.count = 50;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    8);
    bool finished = false;
    drv.onFinished([&] { finished = true; });
    drv.start();
    e.run();
    EXPECT_TRUE(finished);
    EXPECT_TRUE(drv.finished());
    EXPECT_EQ(drv.completed(), 50u);
    EXPECT_EQ(drv.outstanding(), 0u);
}

TEST(QueueDriverTest, RespectsQueueDepth)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    SyntheticParams p;
    p.count = 100;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    16);
    drv.start();
    e.run();
    EXPECT_EQ(ssd.maxInFlight, 16u);
}

TEST(QueueDriverTest, LatencyStatsMatchServiceTime)
{
    Engine e;
    FakeSsd ssd{e, 500};
    SyntheticParams p;
    p.count = 10;
    p.readRatio = 1.0;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    1); // QD 1: no queueing delay
    drv.start();
    e.run();
    EXPECT_EQ(drv.readLatency().count(), 10u);
    EXPECT_DOUBLE_EQ(drv.readLatency().mean(), 500.0);
    EXPECT_EQ(drv.writeLatency().count(), 0u);
}

TEST(QueueDriverTest, BandwidthSeriesAccumulatesBytes)
{
    Engine e;
    FakeSsd ssd{e, 10};
    SyntheticParams p;
    p.count = 8;
    p.requestBytes = 4 * kKiB;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.start();
    e.run();
    EXPECT_DOUBLE_EQ(drv.ioBytes().total(), 8.0 * 4 * kKiB);
}

TEST(QueueDriverTest, TimestampedRequestsWait)
{
    Engine e;
    FakeSsd ssd{e, 1};
    // A tiny trace with a request at t = 5 ms.
    struct OneShot : Generator
    {
        int n = 0;
        std::string nm = "oneshot";
        std::optional<IoRequest> next() override
        {
            if (n++)
                return std::nullopt;
            IoRequest r;
            r.issueAt = 5 * tickMs;
            r.bytes = 4096;
            return r;
        }
        const std::string &name() const override { return nm; }
    } gen;
    Tick completed_at = 0;
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.onFinished([&] { completed_at = e.now(); });
    drv.start();
    e.run();
    EXPECT_GE(completed_at, 5 * tickMs);
}

/** Replays a fixed request list (offset-free; timestamps matter). */
struct ListGen : Generator
{
    std::vector<IoRequest> reqs;
    std::size_t n = 0;
    std::string nm = "list";
    std::optional<IoRequest> next() override
    {
        if (n >= reqs.size())
            return std::nullopt;
        return reqs[n++];
    }
    const std::string &name() const override { return nm; }
};

// Regression tests for the replay pump: it used to hold a single
// future-timestamped request and stop pulling, which serialized burst
// arrivals behind one timer and stalled out-of-order timestamps
// behind an earlier-but-later-stamped request.

TEST(QueueDriverTest, BurstArrivalsSubmitConcurrently)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    ListGen gen;
    for (int i = 0; i < 4; ++i) {
        IoRequest r;
        r.issueAt = 5 * tickMs;
        r.bytes = 4096;
        gen.reqs.push_back(r);
    }
    std::vector<Tick> submit_at;
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        submit_at.push_back(e.now());
                        ssd.submit(r, std::move(cb));
                    },
                    8);
    drv.start();
    e.run();
    ASSERT_EQ(submit_at.size(), 4u);
    for (Tick t : submit_at)
        EXPECT_EQ(t, 5 * tickMs); // the whole burst fires together
    EXPECT_EQ(ssd.maxInFlight, 4u);
}

TEST(QueueDriverTest, OutOfOrderTimestampsDoNotStallEarlierOnes)
{
    Engine e;
    FakeSsd ssd{e, 10};
    ListGen gen;
    IoRequest late;
    late.issueAt = 10 * tickMs;
    late.bytes = 4096;
    IoRequest early;
    early.issueAt = 5 * tickMs;
    early.bytes = 4096;
    gen.reqs = {late, early}; // generator order != time order
    std::vector<Tick> submit_at;
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        submit_at.push_back(e.now());
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.start();
    e.run();
    ASSERT_EQ(submit_at.size(), 2u);
    // The t=5ms request must not wait behind the held t=10ms one.
    EXPECT_EQ(submit_at[0], 5 * tickMs);
    EXPECT_EQ(submit_at[1], 10 * tickMs);
    EXPECT_EQ(drv.completed(), 2u);
}

TEST(QueueDriverTest, WaitingRequestsHoldQueueSlots)
{
    Engine e;
    FakeSsd ssd{e, 10};
    ListGen gen;
    for (int i = 0; i < 3; ++i) {
        IoRequest r;
        r.issueAt = (5 + i) * tickMs;
        r.bytes = 4096;
        gen.reqs.push_back(r);
    }
    std::vector<Tick> submit_at;
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        submit_at.push_back(e.now());
                        ssd.submit(r, std::move(cb));
                    },
                    2); // QD 2: the third request waits for a slot
    drv.start();
    // Before any timestamp fires, both slots are reserved by waiters.
    e.runUntil(1 * tickMs);
    EXPECT_EQ(drv.outstanding(), 2u);
    e.run();
    ASSERT_EQ(submit_at.size(), 3u);
    EXPECT_EQ(submit_at[0], 5 * tickMs);
    EXPECT_EQ(submit_at[1], 6 * tickMs);
    EXPECT_EQ(submit_at[2], 7 * tickMs);
    EXPECT_LE(ssd.maxInFlight, 2u);
    EXPECT_EQ(drv.completed(), 3u);
}

TEST(QueueDriverTest, QueueDepthGrowsMidRun)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    SyntheticParams p;
    p.count = 40;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    2);
    EXPECT_EQ(drv.queueDepth(), 2u);
    // Widen the queue mid-run; the pump must fill the new slots
    // immediately, not wait for the next completion.
    e.schedule(1500, [&drv] { drv.setQueueDepth(8); });
    drv.start();
    e.runUntil(1400);
    EXPECT_EQ(ssd.maxInFlight, 2u);
    e.run();
    EXPECT_EQ(drv.queueDepth(), 8u);
    EXPECT_EQ(ssd.maxInFlight, 8u);
    EXPECT_EQ(drv.completed(), 40u);
}

TEST(QueueDriverTest, QueueDepthShrinkDrainsNaturally)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    SyntheticParams p;
    p.count = 40;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    8);
    e.schedule(500, [&drv] { drv.setQueueDepth(1); });
    drv.start();
    e.run();
    // In-flight requests finish; only refills are throttled, so the
    // run still completes everything.
    EXPECT_EQ(drv.completed(), 40u);
    EXPECT_EQ(drv.queueDepth(), 1u);
    EXPECT_EQ(ssd.inFlight, 0u);
}

// Regression tests for shrink-while-running: the excess in-flight
// requests must drain naturally — never be cancelled — and the run
// must still finish exactly once.

TEST(QueueDriverTest, ShrinkWhileRunningDrainsExcessInFlight)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    SyntheticParams p;
    p.count = 30;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    8);
    int finish_count = 0;
    drv.onFinished([&] { ++finish_count; });
    e.schedule(500, [&drv] { drv.setQueueDepth(2); });
    drv.start();
    e.runUntil(999);
    // All 8 pre-shrink requests stay in flight to completion.
    EXPECT_EQ(drv.queueDepth(), 2u);
    EXPECT_EQ(drv.outstanding(), 8u);
    e.runUntil(1000);
    // The excess drained in one service round; refills obey the new
    // depth from then on.
    EXPECT_EQ(drv.outstanding(), 2u);
    e.run();
    EXPECT_EQ(ssd.maxInFlight, 8u);
    EXPECT_EQ(drv.completed(), 30u);
    EXPECT_EQ(finish_count, 1);
    EXPECT_TRUE(drv.finished());
}

TEST(QueueDriverTest, StopBeforeFinalCompletionSameTickFinishesOnce)
{
    Engine e;
    FakeSsd ssd{e, 100};
    ListGen gen;
    IoRequest r;
    r.bytes = 4096;
    gen.reqs.push_back(r);
    int finish_count = 0;
    QueueDriver drv(e, gen,
                    [&](const IoRequest &rq, Engine::Callback cb) {
                        ssd.submit(rq, std::move(cb));
                    },
                    1);
    drv.onFinished([&] { ++finish_count; });
    // Scheduled before start(): at t=100 the stop event runs ahead of
    // the completion queued by submit() in the same tick.
    e.scheduleAbs(100, [&drv] { drv.stop(); });
    drv.start();
    e.run();
    EXPECT_EQ(finish_count, 1);
    EXPECT_TRUE(drv.finished());
    EXPECT_EQ(drv.completed(), 1u);
}

TEST(QueueDriverTest, StopAfterFinalCompletionSameTickFinishesOnce)
{
    Engine e;
    FakeSsd ssd{e, 100};
    ListGen gen;
    IoRequest r;
    r.bytes = 4096;
    gen.reqs.push_back(r);
    int finish_count = 0;
    QueueDriver drv(e, gen,
                    [&](const IoRequest &rq, Engine::Callback cb) {
                        ssd.submit(rq, std::move(cb));
                    },
                    1);
    drv.onFinished([&] { ++finish_count; });
    drv.start();
    // Scheduled after start(): the completion fires first at t=100 and
    // finishes the drained run; the stop lands on an already-finished
    // driver and must not re-fire the callback.
    e.scheduleAbs(100, [&drv] { drv.stop(); });
    e.run();
    EXPECT_EQ(finish_count, 1);
    EXPECT_TRUE(drv.finished());
    EXPECT_EQ(drv.completed(), 1u);
}

TEST(QueueDriverTest, StatWindowIsRuntimeConfigurable)
{
    Engine e;
    FakeSsd ssd{e, 10};
    SyntheticParams p;
    p.count = 8;
    p.requestBytes = 4 * kKiB;
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.setStatWindow(2 * tickMs);
    EXPECT_EQ(drv.statWindow(), 2 * tickMs);
    drv.start();
    e.run();
    // Accounting starts fresh with the new window and still sees
    // every completed byte.
    EXPECT_DOUBLE_EQ(drv.ioBytes().total(), 8.0 * 4 * kKiB);
}

TEST(QueueDriverTest, StopHaltsIssuing)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p;
    p.count = 0; // unbounded
    SyntheticGenerator gen(p);
    QueueDriver drv(e, gen,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd.submit(r, std::move(cb));
                    },
                    4);
    drv.start();
    e.runUntil(10 * tickMs);
    drv.stop();
    e.run();
    EXPECT_TRUE(drv.finished());
    EXPECT_GT(drv.completed(), 0u);
}

} // namespace
} // namespace dssd
