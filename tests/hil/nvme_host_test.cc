/** Unit tests for the multi-tenant NVMe host front-end: arbitration
 *  policies, token buckets, tenant specs, SLO accounting, open-loop
 *  overload semantics, and QueueDriver parity. */

#include <gtest/gtest.h>

#include "core/ssd.hh"
#include "hil/driver.hh"
#include "hil/nvme_host.hh"
#include "workload/arrival.hh"

namespace dssd
{
namespace
{

//
// Arbiter
//

std::vector<ArbiterQueueState>
allEligible(unsigned n, std::uint64_t bytes = 4 * kKiB)
{
    std::vector<ArbiterQueueState> s(n);
    for (auto &st : s) {
        st.eligible = true;
        st.headBytes = bytes;
    }
    return s;
}

TEST(ArbiterTest, RoundRobinRotates)
{
    Arbiter a(ArbiterPolicy::RoundRobin);
    for (int i = 0; i < 3; ++i)
        a.addQueue();
    auto s = allEligible(3);
    // The cursor parks on the last pick; scans start one past it.
    EXPECT_EQ(a.pick(s), 1);
    EXPECT_EQ(a.pick(s), 2);
    EXPECT_EQ(a.pick(s), 0);
    EXPECT_EQ(a.pick(s), 1);
}

TEST(ArbiterTest, RoundRobinSkipsIneligibleQueues)
{
    Arbiter a(ArbiterPolicy::RoundRobin);
    for (int i = 0; i < 3; ++i)
        a.addQueue();
    auto s = allEligible(3);
    s[1].eligible = false;
    EXPECT_EQ(a.pick(s), 2);
    EXPECT_EQ(a.pick(s), 0);
    EXPECT_EQ(a.pick(s), 2);
    EXPECT_EQ(a.pick(s), 0);
}

TEST(ArbiterTest, NoEligibleQueueReturnsMinusOne)
{
    Arbiter a(ArbiterPolicy::RoundRobin);
    a.addQueue();
    a.addQueue();
    std::vector<ArbiterQueueState> s(2); // both ineligible
    EXPECT_EQ(a.pick(s), -1);
    Arbiter w(ArbiterPolicy::WeightedRoundRobin);
    w.addQueue(4);
    EXPECT_EQ(w.pick({ArbiterQueueState{}}), -1);
    Arbiter p(ArbiterPolicy::StrictPriority);
    p.addQueue(1, 7);
    EXPECT_EQ(p.pick({ArbiterQueueState{}}), -1);
}

TEST(ArbiterTest, WeightedSharesFollowWeights)
{
    // Equal request sizes, weights 3:1 -> pick counts converge 3:1.
    Arbiter a(ArbiterPolicy::WeightedRoundRobin, 4 * kKiB);
    a.addQueue(3);
    a.addQueue(1);
    auto s = allEligible(2, 4 * kKiB);
    unsigned picks[2] = {0, 0};
    for (int i = 0; i < 400; ++i)
        ++picks[a.pick(s)];
    EXPECT_EQ(picks[0], 300u);
    EXPECT_EQ(picks[1], 100u);
}

TEST(ArbiterTest, WeightedIsByteFairForMixedSizes)
{
    // Equal weights, 16 KiB heads vs 4 KiB heads: DRR equalizes the
    // byte shares, so the small-request queue is picked ~4x as often.
    Arbiter a(ArbiterPolicy::WeightedRoundRobin, 4 * kKiB);
    a.addQueue(1);
    a.addQueue(1);
    std::vector<ArbiterQueueState> s(2);
    s[0].eligible = true;
    s[0].headBytes = 16 * kKiB;
    s[1].eligible = true;
    s[1].headBytes = 4 * kKiB;
    std::uint64_t bytes[2] = {0, 0};
    for (int i = 0; i < 500; ++i) {
        int q = a.pick(s);
        ASSERT_GE(q, 0);
        bytes[q] += s[q].headBytes;
    }
    double ratio = static_cast<double>(bytes[0]) /
                   static_cast<double>(bytes[1]);
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(ArbiterTest, WeightedServesHeadsLargerThanQuantum)
{
    // A head bigger than quantum * weight needs several recharge
    // rounds but must still be served, not starved.
    Arbiter a(ArbiterPolicy::WeightedRoundRobin, 4 * kKiB);
    a.addQueue(1);
    auto s = allEligible(1, 64 * kKiB);
    EXPECT_EQ(a.pick(s), 0);
    EXPECT_EQ(a.pick(s), 0);
}

TEST(ArbiterTest, IneligibleQueueForfeitsDeficit)
{
    // Queue 0 banks deficit, goes idle (ineligible), then returns: its
    // stale deficit must not buy it a burst ahead of queue 1.
    Arbiter a(ArbiterPolicy::WeightedRoundRobin, 4 * kKiB);
    a.addQueue(4);
    a.addQueue(4);
    auto s = allEligible(2, 4 * kKiB);
    EXPECT_EQ(a.pick(s), 0); // recharges 16 KiB, serves 4 KiB
    s[0].eligible = false;   // goes idle with 12 KiB banked
    EXPECT_EQ(a.pick(s), 1);
    s[0].eligible = true;
    // Back with a fresh deficit: queue 1 keeps its turn until its own
    // recharge drains; no 3-pick burst for queue 0 from the old bank.
    unsigned first_q0_run = 0;
    int q;
    while ((q = a.pick(s)) == 1)
        ;
    while (q == 0) {
        ++first_q0_run;
        q = a.pick(s);
    }
    EXPECT_LE(first_q0_run, 4u); // one recharge's worth, not 7
}

TEST(ArbiterTest, PriorityPrefersHigherLevel)
{
    Arbiter a(ArbiterPolicy::StrictPriority);
    a.addQueue(1, 0);
    a.addQueue(1, 2);
    a.addQueue(1, 1);
    auto s = allEligible(3);
    EXPECT_EQ(a.pick(s), 1);
    EXPECT_EQ(a.pick(s), 1);
    s[1].eligible = false;
    EXPECT_EQ(a.pick(s), 2);
    s[2].eligible = false;
    EXPECT_EQ(a.pick(s), 0);
}

TEST(ArbiterTest, PriorityTiesRotateRoundRobin)
{
    Arbiter a(ArbiterPolicy::StrictPriority);
    a.addQueue(1, 1);
    a.addQueue(1, 1);
    a.addQueue(1, 0);
    auto s = allEligible(3);
    EXPECT_EQ(a.pick(s), 1);
    EXPECT_EQ(a.pick(s), 0);
    EXPECT_EQ(a.pick(s), 1);
    EXPECT_EQ(a.pick(s), 0);
}

TEST(ArbiterDeathTest, InvalidConfigIsFatal)
{
    EXPECT_DEATH(Arbiter(ArbiterPolicy::WeightedRoundRobin, 0),
                 "quantum");
    Arbiter a(ArbiterPolicy::RoundRobin);
    EXPECT_DEATH(a.addQueue(0), "weight");
    a.addQueue();
    std::vector<ArbiterQueueState> wrong(3);
    EXPECT_DEATH((void)a.pick(wrong), "states");
}

TEST(ArbiterTest, PolicyNamesRoundTrip)
{
    EXPECT_STREQ(arbiterPolicyName(ArbiterPolicy::RoundRobin), "rr");
    EXPECT_STREQ(arbiterPolicyName(ArbiterPolicy::WeightedRoundRobin),
                 "wrr");
    EXPECT_STREQ(arbiterPolicyName(ArbiterPolicy::StrictPriority),
                 "prio");
    EXPECT_EQ(parseArbiterPolicy("rr"), ArbiterPolicy::RoundRobin);
    EXPECT_EQ(parseArbiterPolicy("weighted"),
              ArbiterPolicy::WeightedRoundRobin);
    EXPECT_EQ(parseArbiterPolicy("priority"),
              ArbiterPolicy::StrictPriority);
    EXPECT_FALSE(parseArbiterPolicy("fifo").has_value());
}

//
// TokenBucket
//

TEST(TokenBucketTest, UnlimitedAlwaysAdmits)
{
    TokenBucket b(0.0, 0);
    EXPECT_FALSE(b.limited());
    EXPECT_TRUE(b.admits(0, 1 << 30));
    b.consume(1 << 30);
    EXPECT_TRUE(b.admits(1, 1 << 30));
}

TEST(TokenBucketTest, StartsFullAndRefillsAtRate)
{
    // 1e9 B/s = 1 byte per tick (tick = 1 ns); burst 1000 bytes.
    TokenBucket b(1e9, 1000);
    EXPECT_TRUE(b.limited());
    EXPECT_DOUBLE_EQ(b.burst(), 1000.0);
    EXPECT_TRUE(b.admits(0, 1000)); // starts full
    b.consume(1000);
    EXPECT_FALSE(b.admits(0, 1));
    EXPECT_EQ(b.nextAdmitTime(0, 500), 500u);
    EXPECT_FALSE(b.admits(499, 500));
    EXPECT_TRUE(b.admits(500, 500));
}

TEST(TokenBucketTest, RefillCapsAtBurst)
{
    TokenBucket b(1e9, 1000);
    b.consume(1000);
    b.refill(1 * tickSec); // a full second >> burst refill time
    EXPECT_DOUBLE_EQ(b.tokens(), 1000.0);
}

TEST(TokenBucketTest, DefaultBurstIsTenMillisecondsOfRate)
{
    TokenBucket b(1e6, 0);
    EXPECT_DOUBLE_EQ(b.burst(), 1e4);
}

TEST(TokenBucketTest, NextAdmitTimeIsImmediateWhenFunded)
{
    TokenBucket b(1e9, 1000);
    EXPECT_EQ(b.nextAdmitTime(42, 100), 42u);
}

//
// parseTenantSpec
//

TEST(TenantSpecTest, PlainCountGivesDefaults)
{
    auto t = parseTenantSpec("4");
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->size(), 4u);
    for (const TenantParams &p : *t) {
        EXPECT_EQ(p.queueDepth, 64u);
        EXPECT_EQ(p.weight, 1u);
        EXPECT_EQ(p.priority, 0u);
        EXPECT_DOUBLE_EQ(p.rateBytesPerSec, 0.0);
        EXPECT_DOUBLE_EQ(p.sloTargetUs, 0.0);
    }
}

TEST(TenantSpecTest, FullSpecParses)
{
    auto t = parseTenantSpec(
        "qd:8,w:4,prio:2,rate:200m,burst:1m,slo:500,name:db;qd:16");
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->size(), 2u);
    EXPECT_EQ((*t)[0].queueDepth, 8u);
    EXPECT_EQ((*t)[0].weight, 4u);
    EXPECT_EQ((*t)[0].priority, 2u);
    EXPECT_DOUBLE_EQ((*t)[0].rateBytesPerSec, 200e6);
    EXPECT_EQ((*t)[0].burstBytes, 1000000u);
    EXPECT_DOUBLE_EQ((*t)[0].sloTargetUs, 500.0);
    EXPECT_EQ((*t)[0].name, "db");
    EXPECT_EQ((*t)[1].queueDepth, 16u);
    EXPECT_EQ((*t)[1].weight, 1u);
}

TEST(TenantSpecTest, MalformedSpecsRejected)
{
    EXPECT_FALSE(parseTenantSpec("").has_value());
    EXPECT_FALSE(parseTenantSpec("0").has_value());
    EXPECT_FALSE(parseTenantSpec("5000").has_value()); // count cap
    EXPECT_FALSE(parseTenantSpec("qd:0").has_value());
    EXPECT_FALSE(parseTenantSpec("w:0").has_value());
    EXPECT_FALSE(parseTenantSpec("qd:8,bogus:1").has_value());
    EXPECT_FALSE(parseTenantSpec("qd").has_value());
    EXPECT_FALSE(parseTenantSpec("qd:8;").has_value());
    EXPECT_FALSE(parseTenantSpec("rate:-5").has_value());
    EXPECT_FALSE(parseTenantSpec("name:").has_value());
}

//
// TenantStats / SLO accounting
//

TEST(TenantStatsTest, SloComplianceCountsViolations)
{
    TenantParams p;
    p.sloTargetUs = 10.0;
    TenantStats s(p, tickMs);
    IoRequest r;
    r.bytes = 4 * kKiB;
    s.recordCompletion(r, 1, 5 * tickUs);
    s.recordCompletion(r, 2, 15 * tickUs);
    s.recordCompletion(r, 3, 10 * tickUs); // exactly on target: meets
    s.recordCompletion(r, 4, 40 * tickUs);
    EXPECT_EQ(s.completed(), 4u);
    EXPECT_EQ(s.sloViolations(), 2u);
    EXPECT_DOUBLE_EQ(s.sloCompliance(), 0.5);
}

TEST(TenantStatsTest, NoSloIsAlwaysCompliant)
{
    TenantParams p; // sloTargetUs = 0
    TenantStats s(p, tickMs);
    EXPECT_DOUBLE_EQ(s.sloCompliance(), 1.0); // even with no samples
    IoRequest r;
    r.bytes = 4 * kKiB;
    s.recordCompletion(r, 1, 1 * tickSec);
    EXPECT_EQ(s.sloViolations(), 0u);
    EXPECT_DOUBLE_EQ(s.sloCompliance(), 1.0);
}

//
// NvmeHost
//

/** A fake SSD that completes each request after a fixed delay. */
struct FakeSsd
{
    Engine &engine;
    Tick serviceTime;
    unsigned inFlight = 0;
    unsigned maxInFlight = 0;

    void
    submit(const IoRequest &, Engine::Callback done)
    {
        ++inFlight;
        maxInFlight = std::max(maxInFlight, inFlight);
        engine.schedule(serviceTime, [this, done = std::move(done)] {
            --inFlight;
            done();
        });
    }
};

/** Replays a fixed request list (timestamps matter). */
struct ListGen : Generator
{
    std::vector<IoRequest> reqs;
    std::size_t n = 0;
    std::string nm = "list";
    std::optional<IoRequest> next() override
    {
        if (n >= reqs.size())
            return std::nullopt;
        return reqs[n++];
    }
    const std::string &name() const override { return nm; }
};

TEST(NvmeHostTest, CompletesAllRequestsAcrossTenants)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p;
    p.count = 30;
    SyntheticGenerator g0(p), g1(p);
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        NvmeHostParams{});
    TenantParams tp;
    tp.queueDepth = 4;
    host.addTenant(tp, g0);
    host.addTenant(tp, g1);
    bool finished = false;
    host.onFinished([&] { finished = true; });
    host.start();
    e.run();
    EXPECT_TRUE(finished);
    EXPECT_TRUE(host.finished());
    EXPECT_EQ(host.completed(), 60u);
    EXPECT_EQ(host.tenantStats(0).completed(), 30u);
    EXPECT_EQ(host.tenantStats(1).completed(), 30u);
    EXPECT_EQ(host.deviceOutstanding(), 0u);
}

TEST(NvmeHostTest, DeviceDepthGatesAdmission)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    SyntheticParams p;
    p.count = 40;
    SyntheticGenerator g0(p), g1(p);
    NvmeHostParams hp;
    hp.deviceDepth = 3; // below the summed queue depths (16)
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        hp);
    TenantParams tp;
    tp.queueDepth = 8;
    host.addTenant(tp, g0);
    host.addTenant(tp, g1);
    host.start();
    e.run();
    EXPECT_EQ(host.completed(), 80u);
    EXPECT_EQ(ssd.maxInFlight, 3u);
}

TEST(NvmeHostTest, RequestsAreStampedWithTenantIndex)
{
    Engine e;
    SyntheticParams p;
    p.count = 5;
    SyntheticGenerator g0(p), g1(p);
    std::vector<std::uint32_t> seen;
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            seen.push_back(r.tenant);
            e.schedule(10, std::move(cb));
        },
        NvmeHostParams{});
    TenantParams tp;
    tp.queueDepth = 1;
    host.addTenant(tp, g0);
    host.addTenant(tp, g1);
    host.start();
    e.run();
    ASSERT_EQ(seen.size(), 10u);
    unsigned from[2] = {0, 0};
    for (std::uint32_t t : seen) {
        ASSERT_LT(t, 2u);
        ++from[t];
    }
    EXPECT_EQ(from[0], 5u);
    EXPECT_EQ(from[1], 5u);
}

TEST(NvmeHostTest, SingleTenantClosedLoopMatchesQueueDriverExactly)
{
    // The acceptance bar for the front-end: one tenant, round-robin,
    // device depth = queue depth, closed loop, on a real SSD -> the
    // submit schedule and every latency sample match QueueDriver's.
    SsdConfig c = makeConfig(ArchKind::Baseline);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 8;
    c.writeBuffer.capacityPages = 64;

    SyntheticParams sp;
    sp.count = 300;
    sp.readRatio = 0.5;
    sp.sequential = false;
    sp.requestBytes = 4 * kKiB;
    sp.footprintBytes = 4 * kMiB;

    Engine e1;
    Ssd ssd1(e1, c);
    ssd1.prefill(0.5, 0.0);
    SyntheticGenerator gen1(sp);
    QueueDriver drv(e1, gen1,
                    [&](const IoRequest &r, Engine::Callback cb) {
                        ssd1.submit(r, std::move(cb));
                    },
                    64);
    drv.start();
    e1.run();

    Engine e2;
    Ssd ssd2(e2, c);
    ssd2.prefill(0.5, 0.0);
    SyntheticGenerator gen2(sp);
    NvmeHost host(
        e2,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd2.submit(r, std::move(cb));
        },
        NvmeHostParams{}); // deviceDepth 0 = sum of tenant depths
    TenantParams tp;
    tp.queueDepth = 64;
    host.addTenant(tp, gen2);
    host.start();
    e2.run();

    EXPECT_EQ(e1.now(), e2.now());
    ASSERT_EQ(host.completed(), drv.completed());
    EXPECT_DOUBLE_EQ(host.ioBytes().total(), drv.ioBytes().total());
    const auto &a = drv.allLatency().samples();
    const auto &b = host.allLatency().samples();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i], b[i]) << "sample " << i;
    EXPECT_EQ(host.readLatency().count(), drv.readLatency().count());
    EXPECT_EQ(host.writeLatency().count(), drv.writeLatency().count());
}

TEST(NvmeHostTest, WeightedArbitrationSplitsBandwidthByWeight)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p; // unbounded
    SyntheticGenerator g0(p), g1(p);
    NvmeHostParams hp;
    hp.policy = ArbiterPolicy::WeightedRoundRobin;
    hp.deviceDepth = 1; // serialize: the arbiter decides every slot
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        hp);
    TenantParams heavy;
    heavy.queueDepth = 8;
    heavy.weight = 4;
    TenantParams light;
    light.queueDepth = 8;
    light.weight = 1;
    host.addTenant(heavy, g0);
    host.addTenant(light, g1);
    host.start();
    e.runUntil(200000); // 2000 service slots
    host.stop();
    e.run();
    double ratio =
        static_cast<double>(host.tenantStats(0).completed()) /
        static_cast<double>(host.tenantStats(1).completed());
    EXPECT_NEAR(ratio, 4.0, 0.2);
    EXPECT_TRUE(host.finished());
}

TEST(NvmeHostTest, PriorityStarvesLowerLevelWhileContended)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p;
    SyntheticGenerator g0(p), g1(p);
    NvmeHostParams hp;
    hp.policy = ArbiterPolicy::StrictPriority;
    hp.deviceDepth = 1;
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        hp);
    TenantParams low; // priority 0
    low.queueDepth = 4;
    TenantParams high;
    high.queueDepth = 4;
    high.priority = 1;
    host.addTenant(low, g0);
    host.addTenant(high, g1);
    host.start();
    e.runUntil(50000);
    host.stop();
    e.run();
    // The high-priority tenant always has a backlog, so the low one
    // only ever got the pre-start arbitration pass's slots.
    EXPECT_GT(host.tenantStats(1).completed(), 400u);
    EXPECT_LE(host.tenantStats(0).completed(), 8u);
}

TEST(NvmeHostTest, TokenBucketPacesThroughput)
{
    Engine e;
    FakeSsd ssd{e, 10};
    SyntheticParams p;
    p.count = 10;
    p.requestBytes = 4 * kKiB;
    SyntheticGenerator g(p);
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        NvmeHostParams{});
    TenantParams tp;
    tp.queueDepth = 4;
    // One request's bytes per millisecond, burst of exactly one
    // request: completion must pace at 1/ms despite the idle device.
    tp.rateBytesPerSec = 4.0 * kKiB * 1000.0;
    tp.burstBytes = 4 * kKiB;
    host.addTenant(tp, g);
    Tick finished_at = 0;
    host.onFinished([&] { finished_at = e.now(); });
    host.start();
    e.run();
    EXPECT_EQ(host.completed(), 10u);
    // First at t=0 (full bucket), then one per ms: last admits ~9 ms.
    EXPECT_GE(finished_at, 9 * tickMs);
    EXPECT_LT(finished_at, 10 * tickMs);
}

TEST(NvmeHostTest, OpenLoopBacklogIsDroppedAtStop)
{
    Engine e;
    FakeSsd ssd{e, 1000};
    ListGen gen;
    for (int i = 0; i < 100; ++i) {
        IoRequest r;
        r.issueAt = static_cast<Tick>(i) * 10;
        r.bytes = 4 * kKiB;
        gen.reqs.push_back(r);
    }
    NvmeHostParams hp;
    hp.deviceDepth = 1;
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        hp);
    TenantParams tp;
    tp.queueDepth = 4; // open loop: depth caps in-flight, not backlog
    host.addTenant(tp, gen, /*open_loop=*/true);
    host.start();
    e.runUntil(500);
    // Arrivals outpace the 1000-tick service time: a real backlog.
    EXPECT_GT(host.tenantQueued(0), 10u);
    host.stop();
    e.run();
    EXPECT_TRUE(host.finished());
    EXPECT_EQ(host.tenantQueued(0), 0u);
    // Only the lone in-flight request completes; the queued backlog
    // and the one scheduled arrival are dropped, not cancelled I/O.
    EXPECT_EQ(host.completed(), 1u);
    EXPECT_EQ(host.tenantStats(0).dropped(), 51u);
}

TEST(NvmeHostTest, StopDoesNotCancelClosedLoopQueued)
{
    Engine e;
    FakeSsd ssd{e, 100};
    SyntheticParams p; // unbounded
    SyntheticGenerator g(p);
    NvmeHostParams hp;
    hp.deviceDepth = 2;
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        hp);
    TenantParams tp;
    tp.queueDepth = 8;
    host.addTenant(tp, g);
    host.start();
    e.runUntil(450);
    host.stop();
    std::uint64_t at_stop = host.completed();
    std::size_t queued = host.tenantQueued(0);
    unsigned inflight = host.deviceOutstanding();
    EXPECT_GT(queued, 0u);
    e.run();
    EXPECT_TRUE(host.finished());
    // Everything admitted to the queue still reaches the device.
    EXPECT_EQ(host.completed(), at_stop + queued + inflight);
    EXPECT_EQ(host.tenantStats(0).dropped(), 0u);
}

TEST(NvmeHostTest, OpenLoopLatencyIncludesQueueWait)
{
    // Two same-tick arrivals into a serial device: the second request
    // waits a full service time in the SQ, and that wait must appear
    // in its latency sample.
    Engine e;
    FakeSsd ssd{e, 1000};
    ListGen gen;
    for (int i = 0; i < 2; ++i) {
        IoRequest r;
        r.issueAt = 0;
        r.bytes = 4 * kKiB;
        gen.reqs.push_back(r);
    }
    NvmeHostParams hp;
    hp.deviceDepth = 1;
    NvmeHost host(
        e,
        [&](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        hp);
    TenantParams tp;
    tp.queueDepth = 4;
    host.addTenant(tp, gen, /*open_loop=*/true);
    host.start();
    e.run();
    const auto &s = host.allLatency().samples();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 1000.0);
    EXPECT_DOUBLE_EQ(s[1], 2000.0); // 1000 queued + 1000 service
}

TEST(NvmeHostTest, OpenLoopRunsAreDeterministic)
{
    auto run = [](std::vector<double> &samples) {
        Engine e;
        FakeSsd ssd{e, 700};
        SyntheticParams sp;
        sp.count = 200;
        sp.readRatio = 0.5;
        sp.sequential = false;
        ArrivalParams ap;
        ap.kind = ArrivalKind::Pareto;
        ap.iops = 2e6;
        ap.burstFactor = 4.0;
        OpenLoopGenerator gen(std::make_unique<SyntheticGenerator>(sp),
                              ap, 42);
        NvmeHostParams hp;
        hp.deviceDepth = 2;
        NvmeHost host(
            e,
            [&](const IoRequest &r, Engine::Callback cb) {
                ssd.submit(r, std::move(cb));
            },
            hp);
        TenantParams tp;
        tp.queueDepth = 8;
        host.addTenant(tp, gen, /*open_loop=*/true);
        host.start();
        e.run();
        samples = host.allLatency().samples();
    };
    std::vector<double> a, b;
    run(a);
    run(b);
    ASSERT_EQ(a.size(), 200u);
    EXPECT_EQ(a, b);
}

TEST(NvmeHostDeathTest, MisconfigurationIsFatal)
{
    Engine e;
    NvmeHost host(
        e, [](const IoRequest &, Engine::Callback cb) { cb(); },
        NvmeHostParams{});
    EXPECT_DEATH(host.start(), "no tenants");
    SyntheticParams p;
    p.count = 1;
    SyntheticGenerator g(p);
    TenantParams bad;
    bad.queueDepth = 0;
    EXPECT_DEATH(host.addTenant(bad, g), "queue depth");
    EXPECT_DEATH((void)host.tenantStats(5), "no tenant");
}

} // namespace
} // namespace dssd
