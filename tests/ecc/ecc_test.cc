/** Unit tests for the ECC engine timing model. */

#include <gtest/gtest.h>

#include "ecc/ecc.hh"

namespace dssd
{
namespace
{

TEST(EccTest, LatencyPlusThroughput)
{
    Engine e;
    EccParams p;
    p.latency = 1000;
    p.throughput = 1.0; // 1 byte/ns
    EccEngine ecc(e, "ecc", p);
    Tick done = 0;
    ecc.process(4096, tagIo, [&] { done = e.now(); });
    e.run();
    EXPECT_EQ(done, 4096u + 1000u);
}

TEST(EccTest, PipelineOverlapsLatency)
{
    Engine e;
    EccParams p;
    p.latency = 1000;
    p.throughput = 1.0;
    EccEngine ecc(e, "ecc", p);
    Tick d1 = 0, d2 = 0;
    ecc.process(100, tagIo, [&] { d1 = e.now(); });
    ecc.process(100, tagIo, [&] { d2 = e.now(); });
    e.run();
    // Second page streams right behind the first; only the pipe
    // serializes, not the fixed latency.
    EXPECT_EQ(d1, 1100u);
    EXPECT_EQ(d2, 1200u);
}

TEST(EccTest, CountsPages)
{
    Engine e;
    EccEngine ecc(e, "ecc", EccParams{});
    for (int i = 0; i < 5; ++i)
        ecc.reserve(4096, tagGc);
    EXPECT_EQ(ecc.pagesProcessed(), 5u);
    EXPECT_GT(ecc.totalBusyTicks(), 0u);
}

TEST(EccTest, DefaultsAreSane)
{
    EccParams p;
    EXPECT_GT(p.latency, 0u);
    EXPECT_GT(p.throughput, 0.0);
}

} // namespace
} // namespace dssd
