/**
 * Additional property suites: analytic bounds and reference-model
 * checks for the NoC, the copyback machine, GC policies, and the
 * statistics kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "noc/network.hh"

namespace dssd
{
namespace
{

//
// NoC latency bounds: an uncontended packet's latency equals
// hops * hopLatency + one serialization (cut-through), for every
// src/dst pair and every topology.
//

class NocLatencyBound
    : public ::testing::TestWithParam<std::tuple<const char *, unsigned>>
{
};

TEST_P(NocLatencyBound, UncontendedLatencyIsExact)
{
    auto [topo_name, dst] = GetParam();
    NocParams np;
    np.linkBandwidth = 2.0;
    np.hopLatency = 15;
    np.headerBytes = 0;
    Engine e;
    NocNetwork net(e, makeTopology(topo_name, 8), np);
    const std::uint64_t bytes = 4096;
    Tick done = 0;
    net.send(0, dst, bytes, tagGc, [&] { done = e.now(); });
    e.run();

    std::size_t hops = net.topology().route(0, dst).size();
    Tick ser = static_cast<Tick>(bytes / np.linkBandwidth);
    Tick expect;
    if (net.topology().simultaneousLinks())
        expect = ser + np.hopLatency;
    else if (hops == 0)
        expect = np.hopLatency;
    else
        expect = hops * np.hopLatency + ser;
    EXPECT_EQ(done, expect) << topo_name << " ->" << dst;
}

INSTANTIATE_TEST_SUITE_P(
    AllDst, NocLatencyBound,
    ::testing::Combine(::testing::Values("mesh", "ring", "crossbar"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u)));

//
// NoC throughput cap: streaming many packets between the two halves
// cannot exceed bisection bandwidth (with small overhead slack).
//

class NocBisection : public ::testing::TestWithParam<const char *>
{
};

TEST_P(NocBisection, CrossTrafficBoundedByBisection)
{
    NocParams np;
    np.linkBandwidth = 1.0;
    np.headerBytes = 0;
    np.bufferPackets = 8;
    Engine e;
    NocNetwork net(e, makeTopology(GetParam(), 8), np);
    double bisection_bw =
        np.linkBandwidth * net.topology().bisectionLinks();

    const unsigned packets = 400;
    const std::uint64_t bytes = 4096;
    unsigned done = 0;
    Tick last = 0;
    // All traffic crosses the middle: left half -> right half and back.
    for (unsigned i = 0; i < packets; ++i) {
        unsigned src = i % 4;
        unsigned dst = 4 + (i % 4);
        if (i % 2)
            std::swap(src, dst);
        net.send(src, dst, bytes, tagGc, [&] {
            ++done;
            last = e.now();
        });
    }
    e.run();
    ASSERT_EQ(done, packets);
    double achieved =
        static_cast<double>(packets) * bytes / static_cast<double>(last);
    EXPECT_LE(achieved, bisection_bw * 1.05) << GetParam();
    // And parallel links must provide a reasonable fraction of it
    // (the ring's minimal tie-breaking concentrates flows on shared
    // clockwise links, so the floor is loose).
    EXPECT_GE(achieved, bisection_bw * 0.25) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topos, NocBisection,
                         ::testing::Values("mesh", "ring", "crossbar"));

//
// Copyback completeness over every (src, dst) channel pair.
//

class CopybackPairs
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CopybackPairs, AnySourceAnyDestination)
{
    auto [src_ch, dst_ch] = GetParam();
    SsdConfig c = makeConfig(ArchKind::DSSDNoc);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 8;
    c.geom.pagesPerBlock = 8;
    Engine e;
    Ssd ssd(e, c);

    PhysAddr src{};
    src.channel = src_ch;
    PhysAddr dst{};
    dst.channel = dst_ch;
    dst.block = 3;
    DecoupledController *sc = ssd.decoupledController(src_ch);
    DecoupledController *dc = ssd.decoupledController(dst_ch);
    bool done = false;
    LatencyBreakdown bd;
    sc->globalCopyback(src, dst, dst_ch == src_ch ? nullptr : dc, tagGc,
                       [&] { done = true; }, &bd);
    e.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sc->copybacksCompleted(), 1u);
    // The read and the ECC check always happen at the source.
    EXPECT_GE(bd.flashMem, usToTicks(55)); // tR + tPROG minimum
    EXPECT_GT(bd.ecc, 0u);
    if (src_ch == dst_ch) {
        EXPECT_EQ(bd.noc, 0u);
        EXPECT_EQ(ssd.noc()->packetsDelivered(), 0u);
    } else {
        EXPECT_GT(bd.noc, 0u);
        EXPECT_EQ(ssd.noc()->packetsDelivered(), 1u);
    }
    // Never the front end.
    EXPECT_EQ(bd.systemBus, 0u);
    EXPECT_EQ(bd.dram, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CopybackPairs,
    ::testing::Combine(::testing::Values(0u, 1u, 3u),
                       ::testing::Values(0u, 2u, 3u)));

//
// GC policy sweep: every policy reclaims space and preserves data.
//

class GcPolicySweep : public ::testing::TestWithParam<GcPolicy>
{
};

TEST_P(GcPolicySweep, ReclaimsAndPreservesUnderLoad)
{
    SsdConfig c = makeConfig(ArchKind::DSSDNoc);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 12;
    c.geom.pagesPerBlock = 8;
    c.gc.policy = GetParam();
    c.writeBuffer.capacityPages = 64;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.85, 0.25);

    std::uint64_t valid_before = ssd.mapping().totalValidPages();
    Rng rng(3);
    unsigned done = 0;
    for (int i = 0; i < 1200; ++i) {
        ssd.writePage(rng.uniformInt(0, ssd.mapping().lpnCount() - 1),
                      [&] { ++done; });
        if (i % 64 == 63)
            e.run();
    }
    e.run();
    EXPECT_EQ(done, 1200u);
    EXPECT_GT(ssd.gc().blocksErased(), 0u)
        << gcPolicyName(GetParam());
    // Valid data can only move or grow (new LPNs), never vanish.
    EXPECT_GE(ssd.mapping().totalValidPages() +
                  ssd.writeBuffer().occupancy(),
              valid_before);
    EXPECT_FALSE(ssd.gc().anyActive());
}

INSTANTIATE_TEST_SUITE_P(Policies, GcPolicySweep,
                         ::testing::Values(GcPolicy::Parallel,
                                           GcPolicy::Preemptive,
                                           GcPolicy::TinyTail));

//
// SampleStat percentiles agree with a brute-force reference.
//

class PercentileProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PercentileProperty, MatchesReferenceNearestRank)
{
    Rng rng(GetParam());
    SampleStat s;
    std::vector<double> ref;
    int n = 1 + static_cast<int>(rng.uniformInt(0, 500));
    for (int i = 0; i < n; ++i) {
        double v = rng.uniformReal(0, 1e6);
        s.sample(v);
        ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(ref.size())));
        rank = std::max<std::size_t>(1, std::min(rank, ref.size()));
        EXPECT_DOUBLE_EQ(s.percentile(p), ref[rank - 1]) << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace dssd
