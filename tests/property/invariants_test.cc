/**
 * Property-based tests: parameterized sweeps asserting invariants that
 * must hold for every configuration and random workload.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "noc/network.hh"
#include "reliability/endurance.hh"

namespace dssd
{
namespace
{

//
// Mapping invariant under random operation streams.
//

class MappingProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MappingProperty, MappingStaysBijectiveUnderRandomOps)
{
    MappingParams p;
    p.geom.channels = 2;
    p.geom.ways = 2;
    p.geom.planesPerDie = 2;
    p.geom.blocksPerPlane = 8;
    p.geom.pagesPerBlock = 4;
    p.overProvision = 0.3;
    PageMapping m(p);
    Rng rng(GetParam());

    std::uint64_t expected_valid = 0;
    std::vector<bool> mapped(m.lpnCount(), false);
    for (int op = 0; op < 2000; ++op) {
        Lpn l = rng.uniformInt(0, m.lpnCount() - 1);
        double die_frac =
            static_cast<double>(expected_valid) / m.lpnCount();
        if (rng.chance(0.3) || die_frac > 0.55) {
            // Trim.
            if (mapped[l]) {
                --expected_valid;
                mapped[l] = false;
            }
            m.invalidate(l);
        } else {
            m.allocate(l);
            if (!mapped[l]) {
                ++expected_valid;
                mapped[l] = true;
            }
        }
        // Occasionally collect a unit to keep free blocks around.
        std::uint32_t unit = rng.uniformInt(0, m.unitCount() - 1);
        if (m.gcNeeded(unit)) {
            auto victim = m.pickVictim(unit);
            if (victim) {
                for (Lpn v : m.validLpns(unit, *victim)) {
                    std::uint32_t dst_unit =
                        rng.uniformInt(0, m.unitCount() - 1);
                    if (!m.canAllocate(dst_unit))
                        continue;
                    PhysAddr dst = m.allocateInUnit(v, dst_unit);
                    m.commitRelocation(v, dst);
                }
                if (m.validLpns(unit, *victim).empty())
                    m.eraseBlock(unit, *victim);
            }
        }
    }

    // Invariant 1: valid-page count matches the reference model.
    EXPECT_EQ(m.totalValidPages(), expected_valid);
    // Invariant 2: forward and reverse maps agree (bijectivity).
    for (Lpn l = 0; l < m.lpnCount(); ++l) {
        auto ppn = m.translate(l);
        EXPECT_EQ(ppn.has_value(), mapped[l]) << "lpn " << l;
        if (ppn) {
            EXPECT_EQ(*m.reverseLookup(*ppn), l);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//
// NoC conservation: every injected packet is delivered exactly once,
// for every topology and buffer depth.
//

class NocProperty
    : public ::testing::TestWithParam<std::tuple<const char *, unsigned>>
{
};

TEST_P(NocProperty, PacketsConservedUnderRandomTraffic)
{
    auto [topo_name, buffers] = GetParam();
    Engine e;
    NocParams np;
    np.linkBandwidth = 1.0;
    np.bufferPackets = buffers;
    NocNetwork net(e, makeTopology(topo_name, 8), np);
    Rng rng(99);
    unsigned delivered = 0;
    const unsigned count = 200;
    for (unsigned i = 0; i < count; ++i) {
        unsigned src = rng.uniformInt(0, 7);
        unsigned dst = rng.uniformInt(0, 7);
        net.send(src, dst, 1024 + rng.uniformInt(0, 4096), tagGc,
                 [&] { ++delivered; });
    }
    e.run();
    EXPECT_EQ(delivered, count);
    EXPECT_EQ(net.packetsDelivered(), count);
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_EQ(net.latency().count(), count);
}

INSTANTIATE_TEST_SUITE_P(
    TopoBuffers, NocProperty,
    ::testing::Combine(::testing::Values("mesh", "ring", "crossbar"),
                       ::testing::Values(1u, 2u, 8u)));

//
// Whole-SSD invariant: random write-heavy workloads on any
// architecture never lose data and always drain.
//

class SsdProperty
    : public ::testing::TestWithParam<std::tuple<ArchKind, std::uint64_t>>
{
};

TEST_P(SsdProperty, NoDataLossUnderWritePressure)
{
    auto [arch, seed] = GetParam();
    SsdConfig c = makeConfig(arch);
    c.geom.channels = 4;
    c.geom.ways = 2;
    c.geom.planesPerDie = 2;
    c.geom.blocksPerPlane = 12;
    c.geom.pagesPerBlock = 8;
    c.writeBuffer.capacityPages = 64;
    c.seed = seed;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.8, 0.25);

    Rng rng(seed);
    unsigned done = 0;
    const unsigned count = 800;
    std::set<Lpn> written;
    for (unsigned i = 0; i < count; ++i) {
        Lpn l = rng.uniformInt(0, ssd.mapping().lpnCount() - 1);
        written.insert(l);
        ssd.writePage(l, [&] { ++done; });
        if (i % 32 == 31)
            e.run();
    }
    e.run();
    EXPECT_EQ(done, count);
    // Every written LPN must be resident in the buffer or mapped.
    for (Lpn l : written) {
        bool live = ssd.writeBuffer().readHit(l) ||
                    ssd.mapping().translate(l).has_value();
        EXPECT_TRUE(live) << "lost lpn " << l << " on "
                          << archName(arch);
    }
    // Engine fully drained: no stuck GC or flush.
    EXPECT_FALSE(ssd.gc().anyActive());
    EXPECT_EQ(ssd.ioOutstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ArchSeeds, SsdProperty,
    ::testing::Combine(::testing::Values(ArchKind::Baseline, ArchKind::BW,
                                         ArchKind::DSSD, ArchKind::DSSDBus,
                                         ArchKind::DSSDNoc),
                       ::testing::Values(101u, 202u)));

//
// Endurance monotonicity: more reserved blocks never reduce the time
// to the first bad superblock.
//

class ReservProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(ReservProperty, MoreReservationNeverHurtsFirstDeath)
{
    double frac = GetParam();
    EnduranceParams p;
    p.superblocks = 128;
    p.wear.peMean = 300;
    p.wear.peSigma = 45;
    p.scheme = SuperblockScheme::Reserv;
    p.seed = 7;
    p.reservedFraction = frac;
    double with = EnduranceSim(p).run().dataUntilFirstBad();
    p.reservedFraction = 0.0;
    double without = EnduranceSim(p).run().dataUntilFirstBad();
    EXPECT_GE(with, without);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ReservProperty,
                         ::testing::Values(0.0, 0.03, 0.07, 0.15));

} // namespace
} // namespace dssd
