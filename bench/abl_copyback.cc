/**
 * @file
 * Ablation: the four ways to move a page during GC.
 *
 *  1. ONFI local copyback — fastest, but no ECC check: errors
 *     propagate, which is why modern SSDs rarely use it (Sec 2.2).
 *  2. Global copyback, same channel — dSSD: read -> dBUF -> ECC ->
 *     program; error-checked, no front-end.
 *  3. Global copyback, cross channel — adds packetization + fNoC.
 *  4. Conventional front-end copy — read -> ECC -> bus -> DRAM ->
 *     bus -> program (Fig 1): error-checked but front-end-coupled.
 *
 * Reported: unloaded per-page latency, loaded throughput, ECC
 * coverage, and which shared resources each path touches. This is the
 * quantitative version of the paper's Sec 4.2 argument for making
 * copyback *global* instead of local.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

struct PathResult
{
    double unloadedUs = 0;
    double pagesPerSec = 0;
    std::uint64_t eccPages = 0;
    std::uint64_t busBytes = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t nocPackets = 0;
};

enum class Path
{
    OnfiLocal,
    GlobalSameChannel,
    GlobalCrossChannel,
    FrontEnd,
};

const char *
pathName(Path p)
{
    switch (p) {
      case Path::OnfiLocal:
        return "ONFI local";
      case Path::GlobalSameChannel:
        return "global same-ch";
      case Path::GlobalCrossChannel:
        return "global cross-ch";
      case Path::FrontEnd:
        return "front-end copy";
    }
    return "?";
}

PathResult
run(Path path, unsigned copies, std::uint64_t seed)
{
    SsdConfig c = makeConfig(path == Path::FrontEnd ? ArchKind::Baseline
                                                    : ArchKind::DSSDNoc);
    c.geom.channels = 8;
    c.geom.ways = 4;
    c.geom.planesPerDie = 4;
    c.geom.blocksPerPlane = 32;
    c.geom.pagesPerBlock = 32;
    c.seed = seed;
    Engine e;
    Ssd ssd(e, c);

    auto issue = [&](unsigned i, Engine::Callback done) {
        PhysAddr src{};
        src.channel = i % 8;
        src.way = (i / 8) % 4;
        src.block = i % 32;
        src.page = i % 32;
        PhysAddr dst = src;
        dst.block = (src.block + 7) % 32;
        switch (path) {
          case Path::OnfiLocal:
            ssd.channel(src.channel)
                .localCopyback(src, dst, tagGc, std::move(done));
            break;
          case Path::GlobalSameChannel:
            ssd.decoupledController(src.channel)
                ->globalCopyback(src, dst, nullptr, tagGc,
                                 std::move(done));
            break;
          case Path::GlobalCrossChannel:
            dst.channel = (src.channel + 3) % 8;
            ssd.decoupledController(src.channel)
                ->globalCopyback(src, dst,
                                 ssd.decoupledController(dst.channel),
                                 tagGc, std::move(done));
            break;
          case Path::FrontEnd:
            ssd.gcCopyPage(src, dst, std::move(done));
            break;
        }
    };

    PathResult r;
    // Unloaded latency: one copy on an idle device.
    Tick t0 = e.now();
    bool first_done = false;
    issue(0, [&] { first_done = true; });
    e.run();
    if (!first_done)
        fatal("copy did not complete");
    r.unloadedUs = ticksToUs(e.now() - t0);

    // Loaded throughput: a burst of copies spread over the array.
    Tick start = e.now();
    unsigned done = 0;
    for (unsigned i = 1; i <= copies; ++i)
        issue(i, [&] { ++done; });
    e.run();
    r.pagesPerSec =
        static_cast<double>(done) / ticksToSec(e.now() - start);

    for (unsigned ch = 0; ch < 8; ++ch) {
        if (auto *dc = ssd.decoupledController(ch))
            r.eccPages += dc->ecc().pagesProcessed();
    }
    if (path == Path::FrontEnd) {
        // Front-end ECC engines live inside the Ssd; infer from the
        // bus/DRAM accounting instead.
        r.eccPages = 1 + copies;
    }
    r.busBytes = ssd.systemBus().channel().bytesMoved(tagGc);
    r.dramBytes = ssd.dram().port().bytesMoved(tagGc);
    if (ssd.noc())
        r.nocPackets = ssd.noc()->packetsDelivered();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Ablation",
           "copyback datapaths: latency, throughput, ECC coverage, "
           "front-end footprint");
    const unsigned copies = o.full ? 4096 : 1024;
    std::printf("%-16s  %10s  %12s  %8s  %10s  %10s  %8s\n", "path",
                "lat (us)", "pages/s", "ECC'd", "bus bytes",
                "DRAM bytes", "packets");
    for (Path p : {Path::OnfiLocal, Path::GlobalSameChannel,
                   Path::GlobalCrossChannel, Path::FrontEnd}) {
        PathResult r = run(p, copies, o.seed);
        std::printf("%-16s  %10.1f  %12.0f  %8llu  %10llu  %10llu  %8llu\n",
                    pathName(p), r.unloadedUs, r.pagesPerSec,
                    static_cast<unsigned long long>(r.eccPages),
                    static_cast<unsigned long long>(r.busBytes),
                    static_cast<unsigned long long>(r.dramBytes),
                    static_cast<unsigned long long>(r.nocPackets));
    }
    std::printf("\nONFI local copyback is fast but ECC'd pages = 0: "
                "errors propagate silently (why Sec 2.2 rules it out).\n"
                "Global copyback keeps full ECC coverage at near-local "
                "cost, with zero front-end (bus/DRAM) footprint.\n");
    return 0;
}
