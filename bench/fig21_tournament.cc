/**
 * @file
 * Fig 21: GC policy tournament — victim selection x allocation x
 * preemption, swept over architectures and workloads.
 *
 * The policy seam (ftl/policy.hh) makes victim selection and host
 * allocation interchangeable strategies; this bench races them.
 * Unlike the other figures, GC here is threshold-driven (gcForced
 * off): write amplification is the property under test, and forced
 * rounds would fix the GC rate by fiat. Each {arch, workload} block
 * runs every policy combination at QD 128 and reports the measured
 * WAF next to the latency tail:
 *
 *  - cost-benefit and windowed-greedy victim selection shed WAF on
 *    skewed (hot/cold) streams by giving hot blocks time to
 *    self-invalidate before collection;
 *  - the conflict-aware allocator steers host writes off planes busy
 *    with GC, trading stripe uniformity for tail latency;
 *  - preemptible GC (+pre) pauses rounds at copy-quantum granularity
 *    while host I/O is outstanding, which is where the p99.9 moves.
 *
 * The sweep is deterministic: stdout, --json and --stats are
 * byte-identical for any engine-group worker count >= 1 (CI diffs
 * --engine-threads=1 vs 8 and double-runs the default).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

struct Combo
{
    const char *name;   ///< table row / json key segment
    const char *victim; ///< VictimPolicy factory name
    const char *alloc;  ///< AllocPolicy factory name
    bool preempt;       ///< preemptible GC rounds
};

const Combo kCombos[] = {
    {"greedy+rr", "greedy", "rr", false},
    {"costbenefit+rr", "costbenefit", "rr", false},
    {"windowed+rr", "windowed", "rr", false},
    {"greedy+conflict", "greedy", "conflict", false},
    {"greedy+rr+pre", "greedy", "rr", true},
    {"costbenefit+conflict+pre", "costbenefit", "conflict", true},
};

struct Workload
{
    const char *name;
    double hotFraction;
    double hotAccessRatio;
};

const Workload kWorkloads[] = {
    {"uniform", 0.0, 0.0}, // uniform random, write-heavy
    {"hotcold", 0.2, 0.8}, // 80% of accesses on 20% of the footprint
};

constexpr ArchKind kArchs[] = {ArchKind::Baseline, ArchKind::DSSDNoc};
constexpr unsigned kQueueDepth = 128;

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    JsonSeriesWriter json;
    banner("Fig 21",
           "GC policy tournament: WAF + p99.9 per {policy, arch, "
           "workload}");

    ExpParams base;
    base.channels = 4;
    base.ways = o.full ? 4 : 2;
    base.planes = 4;
    base.blocksPerPlane = 16;
    base.pagesPerBlock = 16;
    base.requestBytes = 4 * kKiB;
    base.readRatio = 0.2;
    base.sequential = false;
    // Always-miss buffering: the hot/cold working set is smaller than
    // the real write buffer, which would absorb the skewed stream
    // before the FTL ever saw it — WAF is an FTL property here.
    base.bufferMode = BufferMode::AlwaysMiss;
    // High utilization (65% of the logical space is live): victim
    // blocks carry enough valid pages that victim choice moves WAF.
    base.footprintFraction = 0.65;
    base.queueDepth = kQueueDepth;
    base.shards = 1;
    // Threshold-driven GC: the policies under test decide when and
    // what to collect; forced rounds would pin the GC rate.
    base.gcForced = false;
    base.window = 10 * tickMs;
    base.seed = o.seed;
    if (o.faults) {
        base.fault.enabled = true;
        base.fault.seed = o.faultSeed;
    }

    std::vector<ExpParams> ps;
    for (ArchKind k : kArchs) {
        for (const Workload &w : kWorkloads) {
            for (const Combo &c : kCombos) {
                ExpParams p = base;
                p.arch = k;
                p.hotFraction = w.hotFraction;
                p.hotAccessRatio = w.hotAccessRatio;
                p.victimPolicy = c.victim;
                p.allocPolicy = c.alloc;
                p.gcPreempt = c.preempt;
                p.engineThreads = o.engineThreads;
                ps.push_back(p);
            }
        }
    }
    // Observability hooks go to one representative point: dSSD_f,
    // hot/cold, the full-zoo combination — the configuration whose
    // policy-tagged ftl.policy.* stats the docs reference.
    for (ExpParams &p : ps) {
        if (p.arch == ArchKind::DSSDNoc && p.hotAccessRatio > 0.0 &&
            p.victimPolicy == std::string("costbenefit") &&
            p.gcPreempt) {
            p.tracePath = o.trace;
            p.statsPath = o.stats;
        }
    }

    std::vector<ExpResult> rs;
    std::vector<double> wall_ms(ps.size(), 0.0);
    if (o.timing) {
        rs.resize(ps.size());
        for (std::size_t i = 0; i < ps.size(); ++i) {
            auto t0 = std::chrono::steady_clock::now();
            rs[i] = runExperiment(ps[i]);
            auto t1 = std::chrono::steady_clock::now();
            wall_ms[i] =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            std::fprintf(stderr,
                         "[timing] %s %s/%s%s engine-threads=%u: "
                         "%.1f ms\n",
                         archName(ps[i].arch),
                         ps[i].victimPolicy.c_str(),
                         ps[i].allocPolicy.c_str(),
                         ps[i].gcPreempt ? "+pre" : "",
                         ps[i].engineThreads, wall_ms[i]);
        }
    } else {
        rs = runExperiments(ps, o.resolvedThreads());
    }

    std::size_t idx = 0;
    for (ArchKind k : kArchs) {
        for (const Workload &w : kWorkloads) {
            std::printf("\n%s, %s workload, QD %u\n", archName(k),
                        w.name, kQueueDepth);
            std::printf("%-26s %8s %10s %10s %12s\n", "policy", "WAF",
                        "p99 us", "p99.9 us", "gc pages");
            for (const Combo &c : kCombos) {
                const ExpResult &r = rs[idx++];
                std::printf("%-26s %8.3f %10.1f %10.1f %12llu\n",
                            c.name, r.waf, r.p99LatencyUs,
                            r.p999LatencyUs,
                            static_cast<unsigned long long>(
                                r.gcPagesMoved));
                json.add(strformat("%s/%s/%s/waf", archName(k), w.name,
                                   c.name),
                         r.waf);
                json.add(strformat("%s/%s/%s/p99_us", archName(k),
                                   w.name, c.name),
                         r.p99LatencyUs);
                json.add(strformat("%s/%s/%s/p999_us", archName(k),
                                   w.name, c.name),
                         r.p999LatencyUs);
                if (o.timing) {
                    json.add(strformat("%s/%s/%s/wall_ms", archName(k),
                                       w.name, c.name),
                             wall_ms[idx - 1]);
                }
            }
            rule();
        }
    }
    json.writeIfRequested(o, "fig21_tournament");
    return 0;
}
